//go:build !race

// Allocation-budget regression tests: hard gates on the simulator's hot
// paths, enforced by plain `go test ./...`. Each test measures
// steady-state heap allocations with testing.AllocsPerRun after one
// warm-up pass (which may fault blocks in, populate event pools, and grow
// staging slices to their steady capacity) and fails on any regression
// past the budget. The budgets are zero: the cache/TLB hit paths, the
// pooled packet-delivery and coherence-event paths, and the barrier
// release path allocate nothing per operation once warm.
//
// The file is excluded under the race detector (instrumentation changes
// allocation behavior); CI runs these gates in the plain test job.
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/apps/em3d"
	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/ni"
	"repro/internal/parmacs"
	"repro/internal/sim"
)

// TestAllocBudgetMemHitPath gates the memory-system fast path: a load or
// store that hits in both the TLB and the cache must not allocate — no map
// operations, no boxing, nothing.
func TestAllocBudgetMemHitPath(t *testing.T) {
	cfg := cost.Default(1)
	eng := sim.NewEngine(cfg.NetLatency)
	var loads, stores float64
	eng.AddProc(func(p *sim.Proc) {
		m := memsim.NewMem(p, &cfg, 1)
		space := memsim.NewAddrSpace(1, cfg.BlockBytes)
		a := space.AllocPrivate(0, 4096)
		m.Read(a) // fault the block and TLB page in
		loads = testing.AllocsPerRun(1000, func() { m.Read(a) })
		stores = testing.AllocsPerRun(1000, func() { m.Write(a) })
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if loads != 0 {
		t.Errorf("load hit path allocates %.1f/op, budget 0", loads)
	}
	if stores != 0 {
		t.Errorf("store hit path allocates %.1f/op, budget 0", stores)
	}
}

// TestAllocBudgetTLBSteadyState gates the TLB on its own, including the
// open-addressed residency table's probe, insert, and backward-shift
// delete: a steady stream of accesses over more pages than the TLB holds
// (constant FIFO refill traffic) must not allocate.
func TestAllocBudgetTLBSteadyState(t *testing.T) {
	tlb := memsim.NewTLB(64, 4096)
	for p := 0; p < 128; p++ { // fill beyond capacity: evictions from here on
		tlb.Access(uint64(p) << 12)
	}
	i := 128
	allocs := testing.AllocsPerRun(1000, func() {
		tlb.Access(uint64(i) << 12)    // miss: evict + insert
		tlb.Access(uint64(i) << 12)    // MRU hit
		tlb.Access(uint64(i-50) << 12) // resident probe or refill
		i++
	})
	if allocs != 0 {
		t.Errorf("TLB steady state allocates %.1f/op, budget 0", allocs)
	}
}

// TestAllocBudgetAMRoundTrip gates the message-passing machine's packet
// path end to end: composing and injecting an active message, the pooled
// delivery event's dispatch through the engine, the receive + handler
// dispatch on the far side, and the reply. Steady state is zero
// allocations per round trip.
func TestAllocBudgetAMRoundTrip(t *testing.T) {
	cfg := cost.Default(2)
	var allocs float64
	res := machine.RunMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
		replies := 0
		stop := false
		var hReq, hRep, hStop int
		hReq = n.AM.Register(func(pkt *ni.Packet) {
			n.AM.Request(pkt.Src, hRep, pkt.Args, 0, nil)
		})
		hRep = n.AM.Register(func(*ni.Packet) { replies++ })
		hStop = n.AM.Register(func(*ni.Packet) { stop = true })
		if n.ID == 0 {
			roundTrip := func() {
				want := replies + 1
				n.AM.Request(1, hReq, [4]uint64{1, 2, 3, 4}, 8, nil)
				n.AM.PollUntil(func() bool { return replies >= want })
			}
			roundTrip() // warm the delivery pools on both NIs
			allocs = testing.AllocsPerRun(100, roundTrip)
			n.AM.Request(1, hStop, [4]uint64{}, 0, nil)
		} else {
			n.AM.PollUntil(func() bool { return stop })
		}
		n.Barrier()
	})
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if allocs != 0 {
		t.Errorf("AM round trip allocates %.1f/op, budget 0", allocs)
	}
}

// TestAllocBudgetCoherenceReadHit gates the shared-memory fast path: a
// shared read whose block is already resident must be served entirely by
// the inline cache lookup, never reaching the protocol.
func TestAllocBudgetCoherenceReadHit(t *testing.T) {
	cfg := cost.Default(2)
	var allocs float64
	res := machine.RunSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			v := n.RT.GMallocFOn(0, 8)
			v.Get(n.Mem, 0) // miss once: directory grant installs the block
			allocs = testing.AllocsPerRun(1000, func() { v.Get(n.Mem, 0) })
		}
		n.Barrier()
	})
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if allocs != 0 {
		t.Errorf("coherence read hit allocates %.1f/op, budget 0", allocs)
	}
}

// TestAllocBudgetBarrierEpisode gates the engine's event machinery —
// staged scheduling, the pooled event heap, the pooled barrier-release
// action, and processor wake — via complete barrier episodes. Every node
// must enter the barrier the same number of times; AllocsPerRun calls its
// function runs+1 times (one warm-up plus runs measured), so the peer
// loops warm+1+runs episodes. A count mismatch deadlocks and the engine
// reports it loudly.
func TestAllocBudgetBarrierEpisode(t *testing.T) {
	const runs = 50
	cfg := cost.Default(2)
	var allocs float64
	res := machine.RunMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
		n.Barrier() // warm the release-event pool
		if n.ID == 0 {
			allocs = testing.AllocsPerRun(runs, func() { n.Barrier() })
		} else {
			for i := 0; i < runs+1; i++ {
				n.Barrier()
			}
		}
	})
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if allocs != 0 {
		t.Errorf("barrier episode allocates %.1f/op, budget 0", allocs)
	}
}

// TestAllocBudgetStepAppMainLoop gates the step (continuation) dispatch
// path on a complete application: once EM3D-MP's step form reaches its
// main loop at P=256, the whole simulator — step dispatch, the cmmd
// channel/poll machines, the NI packet path, batched accounting — must
// allocate nothing. Measured as the host malloc count across the middle
// ~40% of the run's quantum boundaries; the budget is exactly zero, so a
// single escaping closure or per-quantum slice growth in the step stack
// fails loudly.
func TestAllocBudgetStepAppMainLoop(t *testing.T) {
	par := em3d.DefaultParams()
	par.NodesPer, par.Iters = 8, 40

	cfg := cost.Default(256)
	cfg.Workers = 1
	base := em3d.RunMPStep(cfg, cmmd.LopSided, par)
	if base.Res.Err != nil {
		t.Fatalf("sizing run: %v", base.Res.Err)
	}
	start, end := base.Res.Elapsed/2, base.Res.Elapsed*9/10

	cfg = cost.Default(256)
	cfg.Workers = 1
	var m0, m1 runtime.MemStats
	var got0, got1 bool
	var quanta int64
	cfg.OnBuild = func(m any) {
		mm := m.(*machine.MPMachine)
		mm.Eng.AddQuantumHook(func(now sim.Time) {
			switch {
			case !got0 && now >= start:
				runtime.ReadMemStats(&m0)
				got0 = true
			case got0 && !got1 && now >= end:
				runtime.ReadMemStats(&m1)
				got1 = true
			case got0 && !got1:
				quanta++
			}
		})
	}
	out := em3d.RunMPStep(cfg, cmmd.LopSided, par)
	if out.Res.Err != nil {
		t.Fatalf("measured run: %v", out.Res.Err)
	}
	if !got0 || !got1 {
		t.Fatalf("measurement window never closed (start %d end %d)", start, end)
	}
	if quanta < 100 {
		t.Fatalf("window too short: %d quanta", quanta)
	}
	if d := m1.Mallocs - m0.Mallocs; d != 0 {
		t.Errorf("step-form main loop allocates: %d mallocs (%d bytes) over %d quanta, budget 0",
			d, m1.TotalAlloc-m0.TotalAlloc, quanta)
	}
}
