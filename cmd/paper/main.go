// Command paper regenerates the results tables of Chandra, Larus & Rogers,
// "Where is Time Spent in Message-Passing and Shared-Memory Programs?"
// (ASPLOS 1994), printing each measured quantity next to the paper's
// published value.
//
// Usage:
//
//	paper [-quick] [-table N] [-app mse|gauss|em3d|lcp|ablation]
//
// With no flags it regenerates every table (4-23) at the paper's scale
// (32 processors); -quick runs reduced workloads on 8 processors. -table
// selects one table by its paper number; -app selects one application's
// table group.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/tables"
)

func main() {
	quick := flag.Bool("quick", false, "reduced workloads on 8 processors")
	tableNum := flag.Int("table", 0, "regenerate a single table by paper number (4-23)")
	app := flag.String("app", "", "regenerate one application's tables: mse|gauss|em3d|lcp|ablation")
	flag.Parse()

	sc := tables.Full
	if *quick {
		sc = tables.Quick
	}

	start := time.Now()
	var ts []tables.Table
	switch {
	case *tableNum != 0:
		switch {
		case *tableNum >= 4 && *tableNum <= 7:
			ts = tables.MSE(sc)
		case *tableNum >= 8 && *tableNum <= 11:
			ts = tables.Gauss(sc)
		case *tableNum >= 12 && *tableNum <= 17:
			ts = tables.EM3D(sc)
		case *tableNum >= 18 && *tableNum <= 23:
			ts = tables.LCP(sc)
		default:
			fmt.Fprintf(os.Stderr, "no such paper table: %d (valid: 4-23)\n", *tableNum)
			os.Exit(2)
		}
		t := tables.Find(ts, *tableNum)
		t.Render(os.Stdout)
	case *app != "":
		switch *app {
		case "mse":
			ts = tables.MSE(sc)
		case "gauss":
			ts = tables.Gauss(sc)
		case "em3d":
			ts = tables.EM3D(sc)
		case "lcp":
			ts = tables.LCP(sc)
		case "ablation":
			ts = []tables.Table{tables.GaussAblation(sc)}
		default:
			fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
			os.Exit(2)
		}
		tables.RenderAll(ts, os.Stdout)
	default:
		tables.RenderAll(tables.All(sc), os.Stdout)
	}
	fmt.Printf("regenerated in %v\n", time.Since(start).Round(time.Millisecond))
}
