// Command wwtsweep runs a matrix of simulator configurations, sharding the
// runs across host workers, and collects per-run results — stats
// fingerprints, elapsed virtual cycles, per-category breakdowns, wall-clock
// cost — into one machine-readable JSON file. It replaces the hand-run
// shell loops the degradation and ablation sweeps in EXPERIMENTS.md used to
// need.
//
// Usage:
//
//	wwtsweep -matrix FILE.json [-jobs N] [-workers N] [-out FILE]
//	         [-verify-workers N] [-quiet] [-fail-on-error=false]
//	wwtsweep -apps em3d,lcp -machines mp -procs 32
//	         [-droprates 0,0.01,0.05] [-nackrates ...] [-seeds 1,2,3]
//	         [-size N] [-iters N] [-jobs N] [-out FILE]
//	wwtsweep -server http://HOST:PORT -matrix FILE.json [-out FILE]
//	         [-deadline DUR] [-server-patience DUR]
//
// A matrix file is {"runs": [<spec>, ...]} where each spec is the same JSON
// object runner.Spec embeds in snapshots (app, machine, procs, faults, ...).
// Without -matrix, the flag form builds the cross product apps × machines ×
// droprates × nackrates × seeds. Rate and seed lists only apply to the
// machine that models them (droprates → mp network faults, nackrates → sm
// coherence faults); a rate of 0 means a fault-free run, listed once.
//
// Two levels of host parallelism compose:
//
//   - -jobs N shards whole runs across N concurrent workers (default: all
//     host cores) — sweeps are embarrassingly parallel across runs.
//   - -workers N is handed to each run's engine (sim.Engine.Workers) to
//     parallelize the processor phase inside a run. Default 1: with many
//     runs in flight, run-level sharding already saturates the host, and
//     serial runs avoid pool overhead. Use it for a matrix with few, large
//     runs.
//
// Every run's stats fingerprint is recorded. Fingerprints are independent
// of both knobs — the engine's staged-event merge keeps parallel dispatch
// bit-identical to serial — so sweep results are comparable across hosts
// and worker counts. -verify-workers N re-runs each configuration with
// Workers=N and fails loudly if any fingerprint differs from the primary
// run's (a paranoid end-to-end check of that guarantee; it doubles the
// sweep's work).
//
// With -server, the sweep becomes a thin client of a wwtserved instance:
// the matrix is submitted as one durable batch and progress is streamed by
// polling. The daemon's WAL and result cache make the sweep restartable —
// killing and restarting the daemon mid-sweep pauses the client instead of
// failing it, and resubmitted cells come back as cache hits with
// bit-identical fingerprints (marked "cached" in the results file).
//
// Exit status: 0 on a clean sweep, 1 when -fail-on-error (default on) and
// any run aborted, 2 on harness failures or fingerprint mismatches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cost"
	"repro/internal/runner"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

// Matrix is the top-level -matrix file format.
type Matrix struct {
	Runs []runner.Spec `json:"runs"`
}

// RunResult is one run's record in the output file.
type RunResult struct {
	Index int         `json:"index"`
	Spec  runner.Spec `json:"spec"`

	Fingerprint string `json:"fingerprint"` // stats hash, hex (0x…)
	AppLine     string `json:"app_line,omitempty"`
	Elapsed     int64  `json:"elapsed_cycles"`
	WallMS      int64  `json:"wall_ms"`

	// JobID and Cached are set in -server mode: the daemon's job id and
	// whether the result came from its content-addressed cache rather than
	// a fresh run (cached results are bit-identical by construction).
	JobID  string `json:"job_id,omitempty"`
	Cached bool   `json:"cached,omitempty"`

	// Breakdown is the per-processor average cycle count per non-zero time
	// category — the paper's "where is time spent" rows.
	Breakdown map[string]float64 `json:"breakdown,omitempty"`

	// Error is the structured abort, if the run failed (starvation,
	// invariant violation, watchdog stall). Failed runs are data too — the
	// degradation sweeps chart exactly where configurations fall over.
	Error string `json:"error,omitempty"`

	// VerifyFingerprint is the re-run's fingerprint when -verify-workers is
	// set; it must equal Fingerprint.
	VerifyFingerprint string `json:"verify_fingerprint,omitempty"`
}

// Output is the results file schema.
type Output struct {
	StartedAt  string      `json:"started_at"`
	WallMS     int64       `json:"wall_ms"`
	Jobs       int         `json:"jobs"`
	RunWorkers int         `json:"run_workers"`
	Runs       []RunResult `json:"runs"`
}

func main() {
	matrixFile := flag.String("matrix", "", "JSON matrix file ({\"runs\":[spec,...]}); overrides the cross-product flags")
	apps := flag.String("apps", "", "comma-separated apps (mse|gauss|em3d|lcp|alcp)")
	machines := flag.String("machines", "", "comma-separated machines (mp|sm)")
	procs := flag.Int("procs", 32, "processor count for flag-built runs")
	size := flag.Int("size", 0, "problem size override (app-specific)")
	iters := flag.Int("iters", 0, "iteration override")
	hwCombining := flag.Bool("hw-combining", false, "ablation: in-network hardware combining tree for reductions (flag-built runs)")
	step := flag.Bool("step", false, "run every spec in its step (continuation) form; matrix specs may also set \"step_procs\" per run")
	dropRates := flag.String("droprates", "", "comma-separated network drop rates (mp machines)")
	nackRates := flag.String("nackrates", "", "comma-separated directory NACK rates (sm machines)")
	seeds := flag.String("seeds", "1", "comma-separated fault seeds (fault-injected runs only)")
	jobs := flag.Int("jobs", 0, "concurrent runs (0 = all host cores)")
	workers := flag.Int("workers", 1, "engine worker pool inside each run (0 = GOMAXPROCS)")
	verifyWorkers := flag.Int("verify-workers", 0, "re-run each config with this many engine workers and require identical fingerprints")
	out := flag.String("out", "sweep-results.json", "results file")
	quiet := flag.Bool("quiet", false, "suppress per-run progress lines")
	failOnError := flag.Bool("fail-on-error", true, "exit nonzero when any run aborts")
	server := flag.String("server", "", "wwtserved base URL (e.g. http://127.0.0.1:8723): submit the matrix instead of running locally")
	deadline := flag.Duration("deadline", 0, "per-attempt wall-clock deadline for -server jobs (0 = server default)")
	patience := flag.Duration("server-patience", 2*time.Minute, "how long -server mode tolerates consecutive daemon unavailability (restarts, load shedding)")
	flag.Parse()

	var specs []runner.Spec
	var err error
	if *matrixFile != "" {
		specs, err = loadMatrix(*matrixFile)
	} else {
		specs, err = crossProduct(*apps, *machines, *procs, *size, *iters, *hwCombining, *dropRates, *nackRates, *seeds)
	}
	if err != nil {
		fatal("%v", err)
	}
	if len(specs) == 0 {
		fatal("no runs: give -matrix or -apps/-machines")
	}
	if *step {
		for i := range specs {
			specs[i].StepProcs = true
		}
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			fatal("run %d: %v", i, err)
		}
	}

	nj := *jobs
	if nj <= 0 {
		nj = runtime.NumCPU()
	}
	if nj > len(specs) {
		nj = len(specs)
	}

	start := time.Now()
	var results []RunResult
	if *server != "" {
		results, err = serverSweep(*server, specs, *deadline, *patience, *quiet)
		if err != nil {
			fatal("server sweep: %v", err)
		}
	} else {
		results = localSweep(specs, nj, *workers, *verifyWorkers, *quiet)
	}

	mismatches := 0
	for i := range results {
		r := &results[i]
		if r.VerifyFingerprint != "" && r.VerifyFingerprint != r.Fingerprint {
			mismatches++
			fmt.Fprintf(os.Stderr, "FINGERPRINT MISMATCH run %d (%s/%s): workers=%d → %s, workers=%d → %s\n",
				i, r.Spec.App, r.Spec.Machine, *workers, r.Fingerprint, *verifyWorkers, r.VerifyFingerprint)
		}
	}

	output := Output{
		StartedAt:  start.UTC().Format(time.RFC3339),
		WallMS:     time.Since(start).Milliseconds(),
		Jobs:       nj,
		RunWorkers: *workers,
		Runs:       results,
	}
	blob, err := json.MarshalIndent(&output, "", "  ")
	if err != nil {
		fatal("encode results: %v", err)
	}
	blob = append(blob, '\n')
	// Atomic write: a sweep killed mid-write must never leave a truncated
	// results file for a later analysis step to choke on.
	if err := snapshot.AtomicWriteFile(*out, blob); err != nil {
		fatal("write results: %v", err)
	}
	errored := 0
	for i := range results {
		if results[i].Error != "" {
			errored++
		}
	}
	fmt.Printf("%d runs in %v wall (%d jobs), %d with errors -> %s\n",
		len(specs), time.Since(start).Round(time.Millisecond), nj, errored, *out)
	if mismatches > 0 {
		fatal("%d fingerprint mismatches between worker counts", mismatches)
	}
	if errored > 0 && *failOnError {
		fmt.Fprintf(os.Stderr, "%d of %d runs aborted (rerun with -fail-on-error=false to treat aborts as data)\n",
			errored, len(specs))
		os.Exit(1)
	}
}

// localSweep shards the runs across nj host workers, the original one-shot
// mode.
func localSweep(specs []runner.Spec, nj, workers, verifyWorkers int, quiet bool) []RunResult {
	results := make([]RunResult, len(specs))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < nj; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(specs) {
					return
				}
				results[i] = oneRun(i, specs[i], workers, verifyWorkers)
				if !quiet {
					mu.Lock()
					r := &results[i]
					status := r.Fingerprint
					if r.Error != "" {
						status = "ABORTED: " + r.Error
					}
					fmt.Printf("[%d/%d] %s/%s %s (%d ms)\n",
						i+1, len(specs), r.Spec.App, r.Spec.Machine, status, r.WallMS)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// oneRun executes spec and, when verifyWorkers > 0, re-executes it with
// that worker count to cross-check the fingerprint. A panic anywhere in the
// run is isolated to this cell: it is recorded as the run's Error instead
// of crashing the whole sweep and losing every other worker's results.
func oneRun(i int, spec runner.Spec, workers, verifyWorkers int) (result RunResult) {
	r := RunResult{Index: i, Spec: spec}
	defer func() {
		if p := recover(); p != nil {
			r.Error = fmt.Sprintf("panic: %v", p)
			result = r
		}
	}()
	t0 := time.Now()
	out, err := runner.Run(spec, runner.Options{Workers: workers})
	r.WallMS = time.Since(t0).Milliseconds()
	if err != nil {
		// Harness-level failure (should not happen without checkpoint
		// options); record it like a run abort.
		r.Error = err.Error()
		return r
	}
	r.Fingerprint = fmt.Sprintf("%#x", out.Fingerprint)
	r.AppLine = out.AppLine
	if out.Res != nil {
		r.Elapsed = int64(out.Res.Elapsed)
		r.Breakdown = map[string]float64{}
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			if v := out.Res.Summary.CyclesAll(c); v != 0 {
				r.Breakdown[c.String()] = v
			}
		}
		if out.Res.Err != nil {
			r.Error = out.Res.Err.Error()
		}
	}
	if verifyWorkers > 0 {
		vout, verr := runner.Run(spec, runner.Options{Workers: verifyWorkers})
		if verr != nil {
			r.VerifyFingerprint = "error: " + verr.Error()
		} else {
			r.VerifyFingerprint = fmt.Sprintf("%#x", vout.Fingerprint)
		}
	}
	return r
}

func loadMatrix(path string) ([]runner.Spec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Matrix
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m.Runs, nil
}

// crossProduct expands the flag form: apps × machines × (fault rates for
// the matching machine) × seeds. Rate 0 yields one fault-free run (seeds do
// not multiply a run with no randomness).
func crossProduct(apps, machines string, procs, size, iters int, hwCombining bool, dropRates, nackRates, seeds string) ([]runner.Spec, error) {
	if apps == "" || machines == "" {
		return nil, fmt.Errorf("flag form needs -apps and -machines (or use -matrix)")
	}
	drops, err := parseFloats(dropRates)
	if err != nil {
		return nil, fmt.Errorf("-droprates: %w", err)
	}
	nacks, err := parseFloats(nackRates)
	if err != nil {
		return nil, fmt.Errorf("-nackrates: %w", err)
	}
	sds, err := parseUints(seeds)
	if err != nil {
		return nil, fmt.Errorf("-seeds: %w", err)
	}
	if len(sds) == 0 {
		sds = []uint64{1}
	}
	var specs []runner.Spec
	for _, mach := range splitList(machines) {
		rates := []float64{0}
		switch mach {
		case "mp":
			if len(drops) > 0 {
				rates = drops
			}
		case "sm":
			if len(nacks) > 0 {
				rates = nacks
			}
		}
		for _, app := range splitList(apps) {
			for _, rate := range rates {
				sl := sds
				if rate == 0 {
					sl = sds[:1] // no randomness to seed
				}
				for _, seed := range sl {
					sp := runner.Spec{
						App: app, Machine: mach, Procs: procs,
						Size: size, Iters: iters,
						HWCombining: hwCombining,
					}
					if rate > 0 {
						switch mach {
						case "mp":
							sp.Faults = &cost.FaultsConfig{Seed: seed, DropRate: rate}
						case "sm":
							sp.SMFaults = &cost.SMFaultsConfig{Seed: seed, NACKRate: rate}
						}
					}
					specs = append(specs, sp)
				}
			}
		}
	}
	return specs, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("rate %g out of range [0,1]", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseUints(s string) ([]uint64, error) {
	var out []uint64
	for _, f := range splitList(s) {
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
