package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/runner"
	"repro/internal/serve"
)

// Thin-client mode: -server URL hands the matrix to a wwtserved instance
// and streams progress while polling. The client is deliberately patient —
// connection errors, 429 load shedding, and 503 draining all back off and
// retry for up to -server-patience of consecutive failure, so a daemon
// restart (crash recovery, rolling deploy) mid-sweep looks like a pause,
// not a failure. Job durability is the server's problem: once the submit is
// acked the batch is in the WAL, and polling just waits for the queue to
// drain into results.

type client struct {
	base     string // e.g. http://127.0.0.1:8723
	hc       *http.Client
	patience time.Duration // max consecutive failure before giving up
	quiet    bool
}

// serverSweep runs the whole matrix through the service and returns results
// in submit order.
func serverSweep(base string, specs []runner.Spec, deadline, patience time.Duration, quiet bool) ([]RunResult, error) {
	c := &client{
		base:     base,
		hc:       &http.Client{Timeout: 30 * time.Second},
		patience: patience,
		quiet:    quiet,
	}
	var sub serve.SubmitResponse
	req := serve.SubmitRequest{Runs: specs, DeadlineMS: deadline.Milliseconds()}
	if err := c.doRetry("POST", "/v1/batches", &req, &sub); err != nil {
		return nil, fmt.Errorf("submit: %w", err)
	}
	if !quiet {
		fmt.Printf("submitted batch %s: %d jobs to %s\n", sub.Batch, len(sub.Jobs), base)
	}

	finished := make(map[string]bool)
	for {
		var bs serve.BatchStatus
		if err := c.doRetry("GET", "/v1/batches/"+sub.Batch, nil, &bs); err != nil {
			return nil, fmt.Errorf("poll batch %s: %w", sub.Batch, err)
		}
		for _, js := range bs.Jobs {
			if finished[js.ID] || (js.State != serve.StateDone && js.State != serve.StateFailed) {
				continue
			}
			finished[js.ID] = true
			if !quiet {
				spec := specs[js.Index]
				status := js.Fingerprint
				switch {
				case js.State == serve.StateFailed:
					status = "FAILED (" + js.FailKind + "): " + js.FailError
				case js.Error != "":
					status = "ABORTED: " + js.Error
				}
				if js.Cached {
					status += " (cached)"
				}
				fmt.Printf("[%d/%d] %s/%s %s (%d ms)\n",
					len(finished), len(bs.Jobs), spec.App, spec.Machine, status, js.WallMS)
			}
		}
		if bs.Done {
			return resultsFromBatch(specs, &bs), nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// resultsFromBatch maps the server's batch status onto the local results
// schema, so -server and local sweeps produce interchangeable files.
func resultsFromBatch(specs []runner.Spec, bs *serve.BatchStatus) []RunResult {
	results := make([]RunResult, len(specs))
	for _, js := range bs.Jobs {
		r := RunResult{
			Index:       js.Index,
			Spec:        specs[js.Index],
			JobID:       js.ID,
			Cached:      js.Cached,
			Fingerprint: js.Fingerprint,
			AppLine:     js.AppLine,
			Elapsed:     js.Elapsed,
			WallMS:      js.WallMS,
			Breakdown:   js.Breakdown,
			Error:       js.Error,
		}
		if js.State == serve.StateFailed {
			r.Error = fmt.Sprintf("terminal failure (%s, %d attempts): %s",
				js.FailKind, js.Attempts, js.FailError)
		}
		results[js.Index] = r
	}
	return results
}

// doRetry performs one API call, retrying retryable failures (connection
// errors, 429 queue_full, 503 draining, 507 no_space, storage 500s) with
// exponential backoff until c.patience of consecutive failure has elapsed.
func (c *client) doRetry(method, path string, in, out any) error {
	backoff := 100 * time.Millisecond
	var firstFail time.Time
	for {
		err := c.do(method, path, in, out)
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		now := time.Now()
		if firstFail.IsZero() {
			firstFail = now
		}
		if now.Sub(firstFail) > c.patience {
			return fmt.Errorf("gave up after %v of consecutive failure: %w", c.patience, err)
		}
		if !c.quiet {
			fmt.Printf("server unavailable (%v), retrying in %v\n", err, backoff)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

func (c *client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		apiErr := &serve.APIError{}
		if json.Unmarshal(blob, apiErr) == nil && apiErr.Kind != "" {
			return &httpError{code: resp.StatusCode, api: apiErr}
		}
		return &httpError{code: resp.StatusCode, api: &serve.APIError{Kind: "http", Message: string(blob)}}
	}
	return json.Unmarshal(blob, out)
}

type httpError struct {
	code int
	api  *serve.APIError
}

func (e *httpError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.code, e.api.Error())
}

// retryable reports whether an error is worth waiting out: anything
// transport-level (daemon down or restarting), explicit load shedding and
// drain responses, and storage-degradation refusals — the daemon never acks
// a submit it could not make durable, so a 507 (disk full, queue paused) or
// a typed storage 500 is safe to resubmit once the disk recovers.
func retryable(err error) bool {
	if he, ok := err.(*httpError); ok {
		switch he.code {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInsufficientStorage:
			return true
		}
		return he.code == http.StatusInternalServerError && he.api.Kind == serve.ErrStorage
	}
	// Non-HTTP errors are transport failures (connection refused/reset
	// while the daemon is down): always worth retrying within patience.
	return true
}
