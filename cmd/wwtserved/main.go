// Command wwtserved is the fault-tolerant sweep service: a long-running
// daemon that accepts batches of runner specs over HTTP/JSON (the same
// cells wwtsweep runs one-shot) and executes them with durability
// guarantees — a WAL-backed job queue that survives kill -9 with no lost or
// duplicated work, a content-addressed result cache that serves resubmitted
// cells bit-identically from disk, supervised execution (panic isolation,
// wall-clock deadlines that checkpoint-and-resume rather than restart,
// bounded retries), and graceful SIGTERM drain that parks in-flight jobs as
// checkpoints.
//
// Usage:
//
//	wwtserved [-addr HOST:PORT] [-dir DIR] [-jobs N] [-run-workers N]
//	          [-max-queue N] [-retries N] [-max-preempts N]
//	          [-deadline DUR] [-backoff DUR] [-drain-timeout DUR] [-quiet]
//	          [-wal-segment-bytes N] [-fault-fsplan PLAN]
//
// -fault-fsplan installs a seeded, deterministic filesystem fault plan
// under every durable artifact (WAL, cache, checkpoints) — the disk-level
// sibling of wwtsim's -faults/-faultseed — e.g.
// "seed=7,torn=0.02,fsync=0.01,enospc=0.05,crash=123". For testing only.
//
// Drive it with `wwtsweep -server http://HOST:PORT ...` or raw HTTP (see
// internal/serve for the API).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/vfs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8723", "listen address")
	dir := flag.String("dir", "wwtserved-data", "data directory (WAL, result cache, checkpoints)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "worker pool size (concurrent runs)")
	runWorkers := flag.Int("run-workers", 1, "engine workers inside each run (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 4096, "admission bound on pending+running jobs (excess batches get 429)")
	retries := flag.Int("retries", 3, "bounded retries for host-level job failures")
	maxPreempts := flag.Int("max-preempts", 8, "deadline preemptions per job before terminal failure")
	deadline := flag.Duration("deadline", 0, "default per-attempt wall-clock deadline (0 = none); preempts to a checkpoint")
	backoff := flag.Duration("backoff", 250*time.Millisecond, "base retry backoff (doubles per attempt)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max wait for in-flight jobs to checkpoint on SIGTERM")
	quiet := flag.Bool("quiet", false, "suppress per-job progress logs")
	segBytes := flag.Int64("wal-segment-bytes", serve.DefaultSegmentBytes, "WAL segment rotation threshold")
	fsplan := flag.String("fault-fsplan", "", "seeded filesystem fault plan (testing), e.g. seed=7,torn=0.02,fsync=0.01,enospc=0.05,crash=N")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	var fsys vfs.FS
	if *fsplan != "" {
		plan, err := vfs.ParsePlan(*fsplan)
		if err != nil {
			log.Fatalf("wwtserved: %v", err)
		}
		log.Printf("wwtserved: injecting filesystem faults: %s", *fsplan)
		fsys = vfs.NewFaulty(vfs.OS{}, plan)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatalf("wwtserved: %v", err)
	}
	s, err := serve.New(serve.Config{
		Dir:             *dir,
		FS:              fsys,
		WALSegmentBytes: *segBytes,
		Jobs:            *jobs,
		RunWorkers:      *runWorkers,
		MaxQueue:        *maxQueue,
		MaxRetries:      *retries,
		MaxPreempts:     *maxPreempts,
		Deadline:        *deadline,
		Backoff:         *backoff,
		Logf:            logf,
	})
	if err != nil {
		log.Fatalf("wwtserved: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("wwtserved: %v", err)
	}
	hs := &http.Server{Handler: s.Handler()}
	s.Start()
	log.Printf("wwtserved: serving on http://%s (data %s, %d workers)", ln.Addr(), *dir, *jobs)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("wwtserved: %v: draining in-flight jobs to checkpoints", sig)
		if err := s.Drain(*drainTimeout); err != nil {
			log.Printf("wwtserved: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(ctx)
		cancel()
		if err := s.Close(); err != nil {
			log.Fatalf("wwtserved: close: %v", err)
		}
		fmt.Println("wwtserved: drained cleanly; restart resumes from the WAL")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("wwtserved: serve: %v", err)
		}
	}
}
