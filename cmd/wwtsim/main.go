// Command wwtsim runs one application on one simulated machine and prints
// its full time breakdown and event counts — the workhorse for exploring
// configurations beyond the paper's tables (processor counts, cache sizes,
// allocation policies, collective tree shapes).
//
// Usage:
//
//	wwtsim -app mse|gauss|em3d|lcp|alcp -machine mp|sm
//	       [-procs N] [-cache BYTES] [-shape flat|binary|lopsided]
//	       [-policy rr|local] [-size N] [-iters N]
//	       [-faults] [-droprate P] [-duprate P] [-corruptrate P]
//	       [-jitter P] [-faultseed S] [-maxretries N]
//	       [-smcheck] [-smfaults] [-nackrate P] [-reorderrate P]
//	       [-watchdog CYCLES]
//
// -faults enables deterministic fault injection on the message-passing
// machine's network (drops, duplicates, corruption, delay jitter at the
// given per-packet probabilities) and layers a reliable-delivery transport
// under the active-message layer; its costs appear as the "Lib Retrans" row
// and the retransmission/drop/duplicate counters. The same -faultseed
// reproduces the same run bit-for-bit.
//
// The shared-memory machine has the symmetric robustness controls:
// -smcheck arms the runtime coherence invariant checker (single writer,
// directory/cache agreement, message conservation; violations abort with a
// forensic report). -smfaults enables deterministic fault injection on
// coherence traffic — the home directory NACKs requests at -nackrate and
// control messages are reordered past later traffic at -reorderrate — with
// NACK retry/backoff costs on the "Dir Retry" row and the NACK/retry
// counters; -faultseed seeds it. -watchdog N aborts with a stall report if
// requests stay outstanding for N cycles with no transaction granting
// (simulated livelock).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/em3d"
	"repro/internal/apps/gauss"
	"repro/internal/apps/lcp"
	"repro/internal/apps/mse"
	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/parmacs"
	"repro/internal/stats"
)

func main() {
	app := flag.String("app", "em3d", "application: mse|gauss|em3d|lcp|alcp")
	mach := flag.String("machine", "mp", "machine: mp|sm")
	procs := flag.Int("procs", 32, "processor count")
	cache := flag.Int("cache", 256<<10, "cache bytes per node")
	shapeStr := flag.String("shape", "lopsided", "collective tree: flat|binary|lopsided")
	policy := flag.String("policy", "rr", "gmalloc policy: rr|local")
	size := flag.Int("size", 0, "problem size override (app-specific)")
	iters := flag.Int("iters", 0, "iteration override")
	faultsOn := flag.Bool("faults", false, "enable network fault injection (mp only)")
	dropRate := flag.Float64("droprate", 0, "per-packet drop probability")
	dupRate := flag.Float64("duprate", 0, "per-packet duplication probability")
	corruptRate := flag.Float64("corruptrate", 0, "per-packet corruption probability")
	jitter := flag.Float64("jitter", 0, "per-packet extra-delay probability")
	faultSeed := flag.Uint64("faultseed", 1, "fault-injection RNG seed")
	maxRetries := flag.Int("maxretries", 0, "transport retry budget override (0 = default)")
	smCheck := flag.Bool("smcheck", false, "arm the coherence invariant checker (sm only)")
	smFaults := flag.Bool("smfaults", false, "enable coherence-traffic fault injection (sm only)")
	nackRate := flag.Float64("nackrate", 0, "per-request directory NACK probability")
	reorderRate := flag.Float64("reorderrate", 0, "per-message coherence reorder probability")
	watchdog := flag.Int64("watchdog", 0, "coherence stall watchdog window in cycles (sm only, 0 = off)")
	flag.Parse()

	cfg := cost.Default(*procs)
	cfg.CacheBytes = *cache
	for _, r := range []struct {
		name string
		v    float64
	}{{"droprate", *dropRate}, {"duprate", *dupRate}, {"corruptrate", *corruptRate},
		{"jitter", *jitter}, {"nackrate", *nackRate}, {"reorderrate", *reorderRate}} {
		if r.v < 0 || r.v > 1 {
			fatal("-%s %g out of range [0,1]", r.name, r.v)
		}
	}
	if *faultsOn || *dropRate > 0 || *dupRate > 0 || *corruptRate > 0 || *jitter > 0 {
		if *mach != "mp" {
			fatal("fault injection models the message-passing network; use -machine mp")
		}
		cfg.Faults = &cost.FaultsConfig{
			Seed: *faultSeed, DropRate: *dropRate, DupRate: *dupRate,
			CorruptRate: *corruptRate, DelayRate: *jitter,
			MaxRetries: *maxRetries,
		}
	}
	if *smCheck || *smFaults || *nackRate > 0 || *reorderRate > 0 || *watchdog > 0 {
		if *mach != "sm" {
			fatal("coherence robustness controls model the shared-memory machine; use -machine sm")
		}
	}
	cfg.SMCheck = *smCheck
	cfg.SMWatchdog = *watchdog
	if *smFaults || *nackRate > 0 || *reorderRate > 0 {
		cfg.SMFaults = &cost.SMFaultsConfig{
			Seed: *faultSeed, NACKRate: *nackRate, ReorderRate: *reorderRate,
		}
	}
	var shape cmmd.Shape
	switch *shapeStr {
	case "flat":
		shape = cmmd.Flat
	case "binary":
		shape = cmmd.Binary
	case "lopsided":
		shape = cmmd.LopSided
	default:
		fatal("unknown shape %q", *shapeStr)
	}
	pol := parmacs.RoundRobin
	if *policy == "local" {
		pol = parmacs.Local
	}

	start := time.Now()
	var res *machine.Result
	switch *app {
	case "mse":
		par := mse.DefaultParams()
		if *size > 0 {
			par.Bodies = *size
		}
		if *iters > 0 {
			par.Iters = *iters
		}
		if *mach == "mp" {
			out := mse.RunMP(cfg, shape, par)
			res = out.Res
			fmt.Printf("refErr=%.3g residual=%.3g\n", out.RefErr, out.Residual)
		} else {
			out := mse.RunSM(cfg, par)
			res = out.Res
			fmt.Printf("refErr=%.3g residual=%.3g\n", out.RefErr, out.Residual)
		}
	case "gauss":
		par := gauss.Params{N: 512, Seed: 1}
		if *size > 0 {
			par.N = *size
		}
		if *mach == "mp" {
			out := gauss.RunMP(cfg, shape, par)
			res = out.Res
			fmt.Printf("maxErr=%.3g\n", out.MaxErr)
		} else {
			out := gauss.RunSM(cfg, par)
			res = out.Res
			fmt.Printf("maxErr=%.3g\n", out.MaxErr)
		}
	case "em3d":
		par := em3d.DefaultParams()
		if *size > 0 {
			par.NodesPer = *size
		}
		if *iters > 0 {
			par.Iters = *iters
		}
		if *mach == "mp" {
			out := em3d.RunMP(cfg, shape, par)
			res = out.Res
			fmt.Printf("maxErr=%.3g\n", out.MaxErr)
		} else {
			out := em3d.RunSM(cfg, pol, par)
			res = out.Res
			fmt.Printf("maxErr=%.3g\n", out.MaxErr)
		}
	case "lcp", "alcp":
		par := lcp.DefaultParams()
		if *size > 0 {
			par.N = *size
		}
		if *iters > 0 {
			par.MaxSteps = *iters
		}
		var out *lcp.Output
		switch {
		case *app == "lcp" && *mach == "mp":
			out = lcp.RunMP(cfg, shape, par)
		case *app == "lcp":
			out = lcp.RunSM(cfg, par)
		case *mach == "mp":
			out = lcp.RunAMP(cfg, shape, par)
		default:
			out = lcp.RunASM(cfg, par)
		}
		res = out.Res
		fmt.Printf("steps=%d residual=%.3g\n", out.Steps, out.Residual)
	default:
		fatal("unknown app %q", *app)
	}

	fmt.Printf("simulated %d procs in %v wall\n", *procs, time.Since(start).Round(time.Millisecond))
	if res.Err != nil {
		fmt.Printf("\nRUN ABORTED: %v\n(stats below cover the partial execution)\n", res.Err)
	}
	printBreakdown(res)
	if res.Err != nil {
		os.Exit(1)
	}
}

func printBreakdown(res *machine.Result) {
	s := res.Summary
	tot := s.TotalCyclesAll()
	fmt.Printf("\nper-processor average time breakdown (%.1fM cycles total; elapsed %.1fM):\n",
		tot/1e6, float64(res.Elapsed)/1e6)
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		v := s.CyclesAll(c)
		if v == 0 {
			continue
		}
		fmt.Printf("  %-16s %10.1fM  %5.1f%%\n", c, v/1e6, 100*v/tot)
	}
	fmt.Println("\nper-processor average event counts:")
	for c := stats.Count(0); c < stats.NumCounts; c++ {
		v := s.CountsAll(c)
		if v == 0 {
			continue
		}
		fmt.Printf("  %-24s %12.0f\n", c, v)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
