// Command wwtsim runs one application on one simulated machine and prints
// its full time breakdown and event counts — the workhorse for exploring
// configurations beyond the paper's tables (processor counts, cache sizes,
// allocation policies, collective tree shapes).
//
// Usage:
//
//	wwtsim -app mse|gauss|em3d|lcp|alcp -machine mp|sm
//	       [-procs N] [-cache BYTES] [-shape flat|binary|lopsided]
//	       [-policy rr|local] [-size N] [-iters N]
//	       [-faults] [-droprate P] [-duprate P] [-corruptrate P]
//	       [-jitter P] [-faultseed S] [-maxretries N]
//	       [-smcheck] [-smfaults] [-nackrate P] [-reorderrate P]
//	       [-watchdog CYCLES]
//	       [-checkpoint-every CYCLES] [-checkpoint-dir DIR]
//	       [-resume FILE] [-run-until CYCLE] [-workers N]
//
// -faults enables deterministic fault injection on the message-passing
// machine's network (drops, duplicates, corruption, delay jitter at the
// given per-packet probabilities) and layers a reliable-delivery transport
// under the active-message layer; its costs appear as the "Lib Retrans" row
// and the retransmission/drop/duplicate counters. The same -faultseed
// reproduces the same run bit-for-bit.
//
// The shared-memory machine has the symmetric robustness controls:
// -smcheck arms the runtime coherence invariant checker (single writer,
// directory/cache agreement, message conservation; violations abort with a
// forensic report). -smfaults enables deterministic fault injection on
// coherence traffic — the home directory NACKs requests at -nackrate and
// control messages are reordered past later traffic at -reorderrate — with
// NACK retry/backoff costs on the "Dir Retry" row and the NACK/retry
// counters; -faultseed seeds it. -watchdog N aborts with a stall report if
// requests stay outstanding for N cycles with no transaction granting
// (simulated livelock).
//
// -workers N bounds how many simulated processors execute concurrently on
// host cores within each quantum (0 = all cores, 1 = serial). It is a pure
// host-throughput knob: the conservative-window engine stages and merges
// cross-processor events deterministically, so every -workers value prints
// the identical stats fingerprint.
//
// -checkpoint-every N writes a snapshot (ckpt-<cycle>.wws in
// -checkpoint-dir) at the first quantum boundary at or after every N
// cycles. -resume FILE rebuilds the run recorded in the snapshot, replays
// it deterministically, verifies bit-identical machine state and accounting
// at the checkpoint cycle (any divergence aborts loudly), and continues to
// completion. -run-until C stops a run cleanly at the first quantum
// boundary at or after cycle C with partial stats — re-running with tighter
// stop cycles bisects a failing run to its first divergent quantum.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

func main() {
	app := flag.String("app", "em3d", "application: mse|gauss|em3d|lcp|alcp")
	mach := flag.String("machine", "mp", "machine: mp|sm")
	procs := flag.Int("procs", 32, "processor count")
	cache := flag.Int("cache", 256<<10, "cache bytes per node")
	shapeStr := flag.String("shape", "lopsided", "collective tree: flat|binary|lopsided")
	policy := flag.String("policy", "rr", "gmalloc policy: rr|local")
	size := flag.Int("size", 0, "problem size override (app-specific)")
	iters := flag.Int("iters", 0, "iteration override")
	faultsOn := flag.Bool("faults", false, "enable network fault injection (mp only)")
	dropRate := flag.Float64("droprate", 0, "per-packet drop probability")
	dupRate := flag.Float64("duprate", 0, "per-packet duplication probability")
	corruptRate := flag.Float64("corruptrate", 0, "per-packet corruption probability")
	jitter := flag.Float64("jitter", 0, "per-packet extra-delay probability")
	faultSeed := flag.Uint64("faultseed", 1, "fault-injection RNG seed")
	maxRetries := flag.Int("maxretries", 0, "transport retry budget override (0 = default)")
	smCheck := flag.Bool("smcheck", false, "arm the coherence invariant checker (sm only)")
	smFaults := flag.Bool("smfaults", false, "enable coherence-traffic fault injection (sm only)")
	nackRate := flag.Float64("nackrate", 0, "per-request directory NACK probability")
	reorderRate := flag.Float64("reorderrate", 0, "per-message coherence reorder probability")
	watchdog := flag.Int64("watchdog", 0, "coherence stall watchdog window in cycles (sm only, 0 = off)")
	ckEvery := flag.Int64("checkpoint-every", 0, "write a snapshot every N cycles (0 = off)")
	ckDir := flag.String("checkpoint-dir", ".", "directory for checkpoint files")
	resume := flag.String("resume", "", "resume (replay + verify) from a snapshot file")
	runUntil := flag.Int64("run-until", 0, "stop cleanly at the first quantum boundary at or after this cycle (0 = off)")
	workers := flag.Int("workers", 0, "host worker pool for the processor phase (0 = GOMAXPROCS, 1 = serial); fingerprint-neutral")
	hwCombining := flag.Bool("hw-combining", false, "ablation: in-network hardware combining tree for reductions")
	step := flag.Bool("step", false, "run the step (continuation) form of the application; fingerprint-identical to the coroutine form")
	flag.Parse()

	for _, r := range []struct {
		name string
		v    float64
	}{{"droprate", *dropRate}, {"duprate", *dupRate}, {"corruptrate", *corruptRate},
		{"jitter", *jitter}, {"nackrate", *nackRate}, {"reorderrate", *reorderRate}} {
		if r.v < 0 || r.v > 1 {
			fatal("-%s %g out of range [0,1]", r.name, r.v)
		}
	}
	if *ckEvery < 0 || *runUntil < 0 {
		fatal("-checkpoint-every and -run-until must be non-negative")
	}

	if *workers < 0 {
		fatal("-workers must be non-negative")
	}
	opts := runner.Options{
		CheckpointEvery: sim.Time(*ckEvery),
		CheckpointDir:   *ckDir,
		RunUntil:        sim.Time(*runUntil),
		Workers:         *workers,
	}

	var spec runner.Spec
	if *resume != "" {
		snap, err := snapshot.ReadFile(*resume)
		if err != nil {
			fatal("-resume: %v", err)
		}
		sp, err := runner.SpecFromSnapshot(snap)
		if err != nil {
			fatal("-resume: %v", err)
		}
		spec = *sp
		// An explicit -step / -step=false overrides the snapshot's processor
		// form: checkpoints are form-portable, so resuming a coroutine run in
		// step form (or vice versa) is supported and fingerprint-identical.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "step" {
				spec.StepProcs = *step
			}
		})
		if err := spec.Validate(); err != nil {
			fatal("-resume: %v", err)
		}
		opts.Resume = snap
		fmt.Printf("resuming %s on %s from %s (checkpoint cycle %d, step=%v)\n",
			spec.App, spec.Machine, *resume, snap.Cycle, spec.StepProcs)
	} else {
		spec = runner.Spec{
			App: *app, Machine: *mach, Procs: *procs,
			CacheBytes: *cache, Shape: *shapeStr, Policy: *policy,
			Size: *size, Iters: *iters,
			SMCheck: *smCheck, SMWatchdog: *watchdog,
			HWCombining: *hwCombining, StepProcs: *step,
		}
		if *faultsOn || *dropRate > 0 || *dupRate > 0 || *corruptRate > 0 || *jitter > 0 {
			if *mach != "mp" {
				fatal("fault injection models the message-passing network; use -machine mp")
			}
			spec.Faults = &cost.FaultsConfig{
				Seed: *faultSeed, DropRate: *dropRate, DupRate: *dupRate,
				CorruptRate: *corruptRate, DelayRate: *jitter,
				MaxRetries: *maxRetries,
			}
		}
		if *smCheck || *smFaults || *nackRate > 0 || *reorderRate > 0 || *watchdog > 0 {
			if *mach != "sm" {
				fatal("coherence robustness controls model the shared-memory machine; use -machine sm")
			}
		}
		if *smFaults || *nackRate > 0 || *reorderRate > 0 {
			spec.SMFaults = &cost.SMFaultsConfig{
				Seed: *faultSeed, NACKRate: *nackRate, ReorderRate: *reorderRate,
			}
		}
		if err := spec.Validate(); err != nil {
			fatal("%v", err)
		}
	}

	start := time.Now()
	out, err := runner.Run(spec, opts)
	if err != nil {
		// Harness-level failure: replay divergence or a checkpoint write
		// error. Partial stats, when present, still describe the execution.
		fmt.Printf("\nRUN ABORTED: %v\n", err)
		if out != nil && out.Res != nil {
			fmt.Println("(stats below cover the partial execution)")
			printBreakdown(out.Res)
		}
		os.Exit(1)
	}
	fmt.Println(out.AppLine)
	fmt.Printf("simulated %d procs in %v wall\n", spec.Procs, time.Since(start).Round(time.Millisecond))
	for _, cp := range out.Checkpoints {
		fmt.Printf("checkpoint: %s (cycle %d)\n", cp.Path, cp.Cycle)
	}
	if out.Verified {
		fmt.Printf("replay verified: state and stats bit-identical at cycle %d\n", opts.Resume.Cycle)
	}
	switch {
	case out.Stopped:
		fmt.Printf("\nRUN STOPPED at cycle %d (-run-until %d); stats cover the partial execution\n",
			out.StoppedAt, *runUntil)
	case out.Res.Err != nil:
		fmt.Printf("\nRUN ABORTED: %v\n(stats below cover the partial execution)\n", out.Res.Err)
	}
	printBreakdown(out.Res)
	fmt.Printf("\nstats fingerprint: %#x\n", out.Fingerprint)
	if out.Res.Err != nil && !out.Stopped {
		os.Exit(1)
	}
}

func printBreakdown(res *machine.Result) {
	s := res.Summary
	tot := s.TotalCyclesAll()
	fmt.Printf("\nper-processor average time breakdown (%.1fM cycles total; elapsed %.1fM):\n",
		tot/1e6, float64(res.Elapsed)/1e6)
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		v := s.CyclesAll(c)
		if v == 0 {
			continue
		}
		fmt.Printf("  %-16s %10.1fM  %5.1f%%\n", c, v/1e6, 100*v/tot)
	}
	fmt.Println("\nper-processor average event counts:")
	for c := stats.Count(0); c < stats.NumCounts; c++ {
		v := s.CountsAll(c)
		if v == 0 {
			continue
		}
		fmt.Printf("  %-24s %12.0f\n", c, v)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
