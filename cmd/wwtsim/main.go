// Command wwtsim runs one application on one simulated machine and prints
// its full time breakdown and event counts — the workhorse for exploring
// configurations beyond the paper's tables (processor counts, cache sizes,
// allocation policies, collective tree shapes).
//
// Usage:
//
//	wwtsim -app mse|gauss|em3d|lcp|alcp -machine mp|sm
//	       [-procs N] [-cache BYTES] [-shape flat|binary|lopsided]
//	       [-policy rr|local] [-size N] [-iters N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/em3d"
	"repro/internal/apps/gauss"
	"repro/internal/apps/lcp"
	"repro/internal/apps/mse"
	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/parmacs"
	"repro/internal/stats"
)

func main() {
	app := flag.String("app", "em3d", "application: mse|gauss|em3d|lcp|alcp")
	mach := flag.String("machine", "mp", "machine: mp|sm")
	procs := flag.Int("procs", 32, "processor count")
	cache := flag.Int("cache", 256<<10, "cache bytes per node")
	shapeStr := flag.String("shape", "lopsided", "collective tree: flat|binary|lopsided")
	policy := flag.String("policy", "rr", "gmalloc policy: rr|local")
	size := flag.Int("size", 0, "problem size override (app-specific)")
	iters := flag.Int("iters", 0, "iteration override")
	flag.Parse()

	cfg := cost.Default(*procs)
	cfg.CacheBytes = *cache
	var shape cmmd.Shape
	switch *shapeStr {
	case "flat":
		shape = cmmd.Flat
	case "binary":
		shape = cmmd.Binary
	case "lopsided":
		shape = cmmd.LopSided
	default:
		fatal("unknown shape %q", *shapeStr)
	}
	pol := parmacs.RoundRobin
	if *policy == "local" {
		pol = parmacs.Local
	}

	start := time.Now()
	var res *machine.Result
	switch *app {
	case "mse":
		par := mse.DefaultParams()
		if *size > 0 {
			par.Bodies = *size
		}
		if *iters > 0 {
			par.Iters = *iters
		}
		if *mach == "mp" {
			out := mse.RunMP(cfg, shape, par)
			res = out.Res
			fmt.Printf("refErr=%.3g residual=%.3g\n", out.RefErr, out.Residual)
		} else {
			out := mse.RunSM(cfg, par)
			res = out.Res
			fmt.Printf("refErr=%.3g residual=%.3g\n", out.RefErr, out.Residual)
		}
	case "gauss":
		par := gauss.Params{N: 512, Seed: 1}
		if *size > 0 {
			par.N = *size
		}
		if *mach == "mp" {
			out := gauss.RunMP(cfg, shape, par)
			res = out.Res
			fmt.Printf("maxErr=%.3g\n", out.MaxErr)
		} else {
			out := gauss.RunSM(cfg, par)
			res = out.Res
			fmt.Printf("maxErr=%.3g\n", out.MaxErr)
		}
	case "em3d":
		par := em3d.DefaultParams()
		if *size > 0 {
			par.NodesPer = *size
		}
		if *iters > 0 {
			par.Iters = *iters
		}
		if *mach == "mp" {
			out := em3d.RunMP(cfg, shape, par)
			res = out.Res
			fmt.Printf("maxErr=%.3g\n", out.MaxErr)
		} else {
			out := em3d.RunSM(cfg, pol, par)
			res = out.Res
			fmt.Printf("maxErr=%.3g\n", out.MaxErr)
		}
	case "lcp", "alcp":
		par := lcp.DefaultParams()
		if *size > 0 {
			par.N = *size
		}
		if *iters > 0 {
			par.MaxSteps = *iters
		}
		var out *lcp.Output
		switch {
		case *app == "lcp" && *mach == "mp":
			out = lcp.RunMP(cfg, shape, par)
		case *app == "lcp":
			out = lcp.RunSM(cfg, par)
		case *mach == "mp":
			out = lcp.RunAMP(cfg, shape, par)
		default:
			out = lcp.RunASM(cfg, par)
		}
		res = out.Res
		fmt.Printf("steps=%d residual=%.3g\n", out.Steps, out.Residual)
	default:
		fatal("unknown app %q", *app)
	}

	fmt.Printf("simulated %d procs in %v wall\n", *procs, time.Since(start).Round(time.Millisecond))
	printBreakdown(res)
}

func printBreakdown(res *machine.Result) {
	s := res.Summary
	tot := s.TotalCyclesAll()
	fmt.Printf("\nper-processor average time breakdown (%.1fM cycles total; elapsed %.1fM):\n",
		tot/1e6, float64(res.Elapsed)/1e6)
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		v := s.CyclesAll(c)
		if v == 0 {
			continue
		}
		fmt.Printf("  %-16s %10.1fM  %5.1f%%\n", c, v/1e6, 100*v/tot)
	}
	fmt.Println("\nper-processor average event counts:")
	for c := stats.Count(0); c < stats.NumCounts; c++ {
		v := s.CountsAll(c)
		if v == 0 {
			continue
		}
		fmt.Printf("  %-24s %12.0f\n", c, v)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
