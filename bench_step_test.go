// BenchmarkStepApp measures whole-app host cost in both processor forms at
// the scaling-study machine sizes: one benchmark op is one complete
// serial-dispatch run of EM3D-MP (the step-port flagship) at P=256 or
// P=1024, as a coroutine machine and as a step machine. The two forms
// simulate bit-identical runs (TestStepFormEquivalence pins it), so the
// ns/op ratio reads directly as the host-side win of continuation dispatch
// over goroutine dispatch, and the allocs/op gap is the removed per-proc
// stack/channel machinery. Budgets in scripts/bench_budgets.json pin both
// rows; the step rows' budgets are far below the coroutine rows', so the
// win itself is gated, not just remembered.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/runner"
)

func BenchmarkStepApp(b *testing.B) {
	for _, procs := range []int{256, 1024} {
		for _, step := range []bool{false, true} {
			form := "coroutine"
			if step {
				form = "step"
			}
			spec := scalingSpec("em3d", "mp", procs)
			spec.StepProcs = step
			b.Run(fmt.Sprintf("%s-%04d", form, procs), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := runner.Run(spec, runner.Options{Workers: 1})
					if err != nil {
						b.Fatal(err)
					}
					if out.Res.Err != nil {
						b.Fatal(out.Res.Err)
					}
				}
			})
		}
	}
}
