// Serial-vs-parallel host-execution benchmarks for the conservative-window
// worker pool (cost.Config.Workers). Every variant of one app/machine pair
// simulates the identical experiment and — by the engine's staging contract —
// produces the identical fingerprint; only host wall-clock (ns/op) may
// differ. Compare workers=1 against workers=N on a multi-core host to
// measure the processor-phase speedup; on a single-core host the pool
// degrades to a small handshake overhead.
//
//	go test -bench=BenchmarkWorkers -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/apps/em3d"
	"repro/internal/apps/gauss"
	"repro/internal/cmmd"
)

// workerCounts picks the pool sizes worth measuring on this host: serial,
// and — when the host has the cores for it — 2, 4, and NumCPU. Serial is
// always first so benchstat diffs read baseline-first.
func workerCounts() []int {
	counts := []int{1}
	for _, n := range []int{2, 4, runtime.NumCPU()} {
		if n > counts[len(counts)-1] {
			counts = append(counts, n)
		}
	}
	return counts
}

func BenchmarkWorkersEM3D_MP(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := fullCfg()
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				out := em3d.RunMP(cfg, cmmd.LopSided, em3d.DefaultParams())
				report(b, out.Res)
			}
		})
	}
}

func BenchmarkWorkersGauss_SM(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := fullCfg()
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				out := gauss.RunSM(cfg, gaussPar())
				report(b, out.Res)
			}
		})
	}
}
