// Serial-vs-parallel host-execution benchmarks for the conservative-window
// worker pool (runner.Options.Workers). Every variant of one app/machine
// pair simulates the identical experiment — the same runner.TableSpec the
// golden tests verify — and, by the engine's staging contract, produces
// the identical fingerprint; only host wall-clock (ns/op) may differ.
// Compare workers=1 against workers=N on a multi-core host to measure the
// processor-phase speedup; on a single-core host the pool degrades to a
// small handshake overhead.
//
//	go test -bench=BenchmarkWorkers -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/runner"
)

// workerCounts picks the pool sizes worth measuring on this host: serial,
// and — when the host has the cores for it — 2, 4, and NumCPU. Serial is
// always first so benchstat diffs read baseline-first.
func workerCounts() []int {
	counts := []int{1}
	for _, n := range []int{2, 4, runtime.NumCPU()} {
		if n > counts[len(counts)-1] {
			counts = append(counts, n)
		}
	}
	return counts
}

func benchWorkers(b *testing.B, spec runner.Spec) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := runner.Run(spec, runner.Options{Workers: w})
				if err != nil {
					b.Fatalf("runner: %v", err)
				}
				if out.Res.Err != nil {
					b.Fatalf("run aborted: %v", out.Res.Err)
				}
				report(b, out.Res)
			}
		})
	}
}

func BenchmarkWorkersEM3D_MP(b *testing.B) {
	benchWorkers(b, runner.TableSpec("em3d", "mp"))
}

func BenchmarkWorkersGauss_SM(b *testing.B) {
	benchWorkers(b, runner.TableSpec("gauss", "sm"))
}
