// Microbenchmarks of the engine's processor-dispatch cost: the host
// nanoseconds spent per simulated yield/resume round trip, the number the
// PR-9 dispatcher rebuild optimizes. One benchmark iteration is one proc
// switch (a processor yielding at a quantum boundary and being resumed in
// the next quantum), so ns/op reads directly as host ns per switch.
//
// The pre-rebuild engine (goroutine + unbuffered resume/yield channel pair
// per proc, fresh worker goroutines each quantum) measured 561.3 ns/switch
// at P=64 and 726.4 ns/switch at P=1024 on this benchmark — the recorded
// channel-pair baseline in BENCH_PR9.json. The `channelpair` sub-benchmark
// below reproduces that dispatch discipline synthetically (two channel
// handoffs per switch through the Go scheduler, none of the engine's
// bookkeeping) so the baseline stays measurable after the old dispatcher is
// gone; it reads as a lower bound on what the old engine paid.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// benchEngineYields measures the full engine dispatch path for coroutine
// processors: procs processors each compute exactly one quantum and then
// synchronize, so every dispatch costs one baton handoff (one channel
// send + park) plus the engine's per-proc share of batch collection and
// settling.
func benchEngineYields(b *testing.B, procs int) {
	b.ReportAllocs()
	rounds := b.N/procs + 1
	e := sim.NewEngine(100)
	e.Workers = 1
	for i := 0; i < procs; i++ {
		e.AddProc(func(p *sim.Proc) {
			for k := 0; k < rounds; k++ {
				p.Compute(100)
				p.Interact()
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchStepYields is benchEngineYields for step processors: the same
// workload dispatched as direct continuation calls — no goroutine, no
// park/unpark, just a function call per switch.
func benchStepYields(b *testing.B, procs int) {
	b.ReportAllocs()
	rounds := b.N/procs + 1
	e := sim.NewEngine(100)
	e.Workers = 1
	for i := 0; i < procs; i++ {
		k := 0
		e.AddStepProc(func(p *sim.Proc) sim.StepStatus {
			if k >= rounds {
				return sim.StepDone
			}
			k++
			p.Compute(100)
			return sim.StepYield
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchChannelPairYields is the synthetic channel-pair baseline: one
// goroutine per proc, an unbuffered resume and yield channel each, and a
// scheduler loop that round-trips every proc once per round — the exact
// handoff discipline of the pre-PR9 dispatcher, minus all simulation
// bookkeeping.
func benchChannelPairYields(b *testing.B, procs int) {
	b.ReportAllocs()
	rounds := b.N/procs + 1
	type pair struct{ resume, yield chan struct{} }
	ps := make([]pair, procs)
	for i := range ps {
		ps[i] = pair{make(chan struct{}), make(chan struct{})}
		p := ps[i]
		go func() {
			for k := 0; k < rounds; k++ {
				<-p.resume
				p.yield <- struct{}{}
			}
		}()
	}
	b.ResetTimer()
	for k := 0; k < rounds; k++ {
		for _, p := range ps {
			p.resume <- struct{}{}
			<-p.yield
		}
	}
}

// BenchmarkMicroProcSwitch measures one simulated processor switch at
// several machine sizes, for each dispatch discipline: the synthetic
// channel-pair baseline, the baton-chained coroutine path, and the
// direct-call step path.
func BenchmarkMicroProcSwitch(b *testing.B) {
	for _, procs := range []int{64, 1024} {
		b.Run(fmt.Sprintf("channelpair-%04d", procs), func(b *testing.B) {
			benchChannelPairYields(b, procs)
		})
		b.Run(fmt.Sprintf("coroutine-%04d", procs), func(b *testing.B) {
			benchEngineYields(b, procs)
		})
		b.Run(fmt.Sprintf("step-%04d", procs), func(b *testing.B) {
			benchStepYields(b, procs)
		})
	}
}
