// Package repro's benchmark harness: one benchmark per paper table (4-23),
// plus the §5.2 broadcast-tree ablation and microbenchmarks of the
// machines' primitive operations. Each benchmark runs the full simulated
// experiment that the table derives from and reports the simulated cycle
// counts as custom metrics (Mcycles of elapsed virtual time and of
// per-processor average time), alongside Go's wall-clock ns/op for the
// simulator itself.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Reduced-scale variants (suffix /quick) run the same code on 8 processors
// for fast iteration.
package repro_test

import (
	"testing"

	"repro/internal/apps/em3d"
	"repro/internal/apps/gauss"
	"repro/internal/apps/lcp"
	"repro/internal/apps/mse"
	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/ni"
	"repro/internal/parmacs"
	"repro/internal/stats"
)

// report attaches the simulated results to the benchmark output.
func report(b *testing.B, res *machine.Result) {
	b.ReportMetric(float64(res.Elapsed)/1e6, "sim-Mcycles")
	b.ReportMetric(res.Summary.TotalCyclesAll()/1e6, "proc-Mcycles")
}

func fullCfg() cost.Config { return cost.Default(32) }

// --- MSE: Tables 4-7 ---

func BenchmarkTable04_MSE_MP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := mse.RunMP(fullCfg(), cmmd.LopSided, mse.DefaultParams())
		report(b, out.Res)
	}
}

func BenchmarkTable05_MSE_SM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := mse.RunSM(fullCfg(), mse.DefaultParams())
		report(b, out.Res)
	}
}

func BenchmarkTable06_MSE_MP_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := mse.RunMP(fullCfg(), cmmd.LopSided, mse.DefaultParams())
		report(b, out.Res)
		b.ReportMetric(out.Res.Summary.CountsAll(stats.CntBytesData)/1e6, "data-MB")
	}
}

func BenchmarkTable07_MSE_SM_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := mse.RunSM(fullCfg(), mse.DefaultParams())
		report(b, out.Res)
		b.ReportMetric(out.Res.Summary.CountsAll(stats.CntSharedMissRemote), "remote-misses")
	}
}

// --- Gauss: Tables 8-11 and the §5.2 ablation ---

func gaussPar() gauss.Params { return gauss.Params{N: 512, Seed: 1} }

func BenchmarkTable08_Gauss_MP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := gauss.RunMP(fullCfg(), cmmd.LopSided, gaussPar())
		report(b, out.Res)
	}
}

func BenchmarkTable09_Gauss_SM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := gauss.RunSM(fullCfg(), gaussPar())
		report(b, out.Res)
	}
}

func BenchmarkTable10_Gauss_MP_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := gauss.RunMP(fullCfg(), cmmd.LopSided, gaussPar())
		report(b, out.Res)
		b.ReportMetric(out.Res.Summary.CountsAll(stats.CntChannelWrites), "channel-writes")
	}
}

func BenchmarkTable11_Gauss_SM_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := gauss.RunSM(fullCfg(), gaussPar())
		report(b, out.Res)
		b.ReportMetric(out.Res.Summary.CountsAll(stats.CntSharedMissRemote), "remote-misses")
	}
}

// BenchmarkAblationGaussBroadcast reproduces the broadcast/reduction tuning
// study: flat (paper: 119.3M comm cycles), binary tree with CMMD-level
// messages (40.9M), lop-sided tree with active messages and channels
// (30.1M).
func BenchmarkAblationGaussBroadcast(b *testing.B) {
	for _, shape := range []cmmd.Shape{cmmd.Flat, cmmd.Binary, cmmd.LopSided} {
		b.Run(shape.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := gauss.RunMP(fullCfg(), shape, gaussPar())
				report(b, out.Res)
				s := out.Res.Summary
				comm := s.CyclesAll(stats.LibComp) + s.CyclesAll(stats.NetAccess) +
					s.CyclesAll(stats.BarrierWait)
				b.ReportMetric(comm/1e6, "comm-Mcycles")
			}
		})
	}
}

// --- EM3D: Tables 12-17 ---

func BenchmarkTable12_EM3D_MP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := em3d.RunMP(fullCfg(), cmmd.LopSided, em3d.DefaultParams())
		report(b, out.Res)
	}
}

func BenchmarkTable13_EM3D_MP_MainLoopEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := em3d.RunMP(fullCfg(), cmmd.LopSided, em3d.DefaultParams())
		report(b, out.Res)
		b.ReportMetric(out.Res.Summary.Counts(em3d.PhaseMain, stats.CntBytesData)/1e6, "main-data-MB")
	}
}

func BenchmarkTable14_EM3D_SM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := em3d.RunSM(fullCfg(), parmacs.RoundRobin, em3d.DefaultParams())
		report(b, out.Res)
	}
}

func BenchmarkTable15_EM3D_SM_MainLoopEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := em3d.RunSM(fullCfg(), parmacs.RoundRobin, em3d.DefaultParams())
		report(b, out.Res)
		s := out.Res.Summary
		b.ReportMetric(s.Counts(em3d.PhaseMain, stats.CntSharedMissRemote), "main-remote-misses")
		b.ReportMetric(s.Counts(em3d.PhaseMain, stats.CntWriteFaults), "main-write-faults")
	}
}

// BenchmarkTable16_EM3D_SM_1MBCache is the cache-size ablation: the paper's
// main-loop total drops from 130M to 61M cycles with a 1 MB cache.
func BenchmarkTable16_EM3D_SM_1MBCache(b *testing.B) {
	cfg := fullCfg()
	cfg.CacheBytes = 1 << 20
	for i := 0; i < b.N; i++ {
		out := em3d.RunSM(cfg, parmacs.RoundRobin, em3d.DefaultParams())
		report(b, out.Res)
		b.ReportMetric(out.Res.Summary.TotalCycles(em3d.PhaseMain)/1e6, "main-Mcycles")
	}
}

// BenchmarkTable17_EM3D_SM_LocalAlloc is the allocation-policy ablation:
// local placement runs the main loop in about two thirds the round-robin
// time (paper: 86.3M vs 130.0M cycles).
func BenchmarkTable17_EM3D_SM_LocalAlloc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := em3d.RunSM(fullCfg(), parmacs.Local, em3d.DefaultParams())
		report(b, out.Res)
		b.ReportMetric(out.Res.Summary.TotalCycles(em3d.PhaseMain)/1e6, "main-Mcycles")
	}
}

// --- LCP: Tables 18-23 ---

func BenchmarkTable18_LCP_MP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := lcp.RunMP(fullCfg(), cmmd.LopSided, lcp.DefaultParams())
		report(b, out.Res)
		b.ReportMetric(float64(out.Steps), "steps")
	}
}

func BenchmarkTable19_LCP_SM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := lcp.RunSM(fullCfg(), lcp.DefaultParams())
		report(b, out.Res)
		b.ReportMetric(float64(out.Steps), "steps")
	}
}

func BenchmarkTable20_ALCP_MP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := lcp.RunAMP(fullCfg(), cmmd.LopSided, lcp.DefaultParams())
		report(b, out.Res)
		b.ReportMetric(float64(out.Steps), "steps")
	}
}

func BenchmarkTable21_ALCP_SM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := lcp.RunASM(fullCfg(), lcp.DefaultParams())
		report(b, out.Res)
		b.ReportMetric(float64(out.Steps), "steps")
	}
}

func BenchmarkTable22_LCP_MP_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sync := lcp.RunMP(fullCfg(), cmmd.LopSided, lcp.DefaultParams())
		async := lcp.RunAMP(fullCfg(), cmmd.LopSided, lcp.DefaultParams())
		report(b, sync.Res)
		b.ReportMetric(sync.Res.Summary.CountsAll(stats.CntChannelWrites), "sync-channel-writes")
		b.ReportMetric(async.Res.Summary.CountsAll(stats.CntChannelWrites), "async-channel-writes")
	}
}

func BenchmarkTable23_LCP_SM_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sync := lcp.RunSM(fullCfg(), lcp.DefaultParams())
		async := lcp.RunASM(fullCfg(), lcp.DefaultParams())
		report(b, sync.Res)
		shared := func(o *lcp.Output) float64 {
			s := o.Res.Summary
			return s.CountsAll(stats.CntSharedMissLocal) + s.CountsAll(stats.CntSharedMissRemote)
		}
		b.ReportMetric(shared(sync), "sync-shared-misses")
		b.ReportMetric(shared(async), "async-shared-misses")
	}
}

// --- Microbenchmarks of the machines' primitive operations ---

// BenchmarkMicroRemoteMiss measures one idle remote shared-memory miss
// (the paper: ~250 cycles).
func BenchmarkMicroRemoteMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cost.Default(2)
		var cyc int64
		m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
			if n.ID == 1 {
				v := n.RT.GMallocFOn(0, 4)
				before := n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss)
				v.Get(n.Mem, 0)
				cyc = n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss) - before
			}
			n.Barrier()
		})
		m.Run()
		b.ReportMetric(float64(cyc), "sim-cycles")
	}
}

// BenchmarkMicroAMRoundTrip measures an active-message request/reply pair.
func BenchmarkMicroAMRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cost.Default(2)
		m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
			got := 0
			var h int
			h = n.AM.Register(func(pkt ni.Packet) {
				got++
				if n.ID == 1 {
					n.AM.Request(0, h, pkt.Args, 8, nil)
				}
			})
			if n.ID == 0 {
				n.AM.Request(1, h, [4]uint64{42}, 8, nil)
			}
			n.AM.PollUntil(func() bool { return got > 0 })
			n.Barrier()
		})
		res := m.Run()
		b.ReportMetric(float64(res.Elapsed), "sim-cycles")
	}
}

// BenchmarkMicroBarrier measures the hardware barrier with balanced
// arrival (the paper: 100 cycles from last arrival).
func BenchmarkMicroBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cost.Default(32)
		m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
			for k := 0; k < 100; k++ {
				n.Barrier()
			}
		})
		res := m.Run()
		b.ReportMetric(float64(res.Elapsed)/100, "sim-cycles/barrier")
	}
}

// BenchmarkMicroMCSLockHandoff measures contended MCS lock handoff.
func BenchmarkMicroMCSLockHandoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cost.Default(8)
		var lock *parmacs.Lock
		var counter memsim.IVec
		m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
			if n.ID == 0 {
				lock = parmacs.NewLock(n.RT)
				counter = n.RT.GMallocI(0, 1)
				n.RT.Create(n.P)
			} else {
				n.RT.WaitCreate(n.P)
			}
			n.Barrier()
			for k := 0; k < 20; k++ {
				lock.Acquire(n.Mem)
				counter.Set(n.Mem, 0, counter.V[0]+1)
				lock.Release(n.Mem)
			}
			n.Barrier()
		})
		res := m.Run()
		b.ReportMetric(float64(res.Elapsed)/(8*20), "sim-cycles/handoff")
	}
}

// BenchmarkAblationEM3DFlush measures the §5.3.4 software-flush proposal:
// consumers flush remote values after use, sending the directory a
// replacement hint so producers upgrade without invalidation rounds.
func BenchmarkAblationEM3DFlush(b *testing.B) {
	for _, flush := range []bool{false, true} {
		name := "base"
		run := em3d.RunSM
		if flush {
			name = "flush"
			run = em3d.RunSMFlush
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := run(fullCfg(), parmacs.RoundRobin, em3d.DefaultParams())
				report(b, out.Res)
				b.ReportMetric(out.Res.Summary.TotalCycles(em3d.PhaseMain)/1e6, "main-Mcycles")
			}
		})
	}
}

// BenchmarkScalingGaussSM sweeps processor counts (the simulators support
// 1-128; the paper ran 32) to show directory queuing growing with scale —
// "these delays ... will become untenable for larger systems" (§5.2).
func BenchmarkScalingGaussSM(b *testing.B) {
	for _, procs := range []int{8, 16, 32, 64} {
		b.Run(fmtProcs(procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := gauss.RunSM(cost.Default(procs), gauss.Params{N: 512, Seed: 1})
				report(b, out.Res)
			}
		})
	}
}

func fmtProcs(p int) string {
	return "procs-" + string(rune('0'+p/10)) + string(rune('0'+p%10))
}
