// Package repro's benchmark harness: one benchmark per paper table (4-23),
// plus the §5.2 broadcast-tree ablation and microbenchmarks of the
// machines' primitive operations. Each benchmark runs the full simulated
// experiment that the table derives from and reports the simulated cycle
// counts as custom metrics (Mcycles of elapsed virtual time and of
// per-processor average time), alongside Go's wall-clock ns/op for the
// simulator itself.
//
// Table benchmarks execute through internal/runner with the specs from
// runner.TableSpec — the same Spec type the golden replay-equivalence
// tests consume — so a benchmark provably simulates a configuration the
// correctness suite verified.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/ni"
	"repro/internal/parmacs"
	"repro/internal/runner"
	"repro/internal/stats"

	"repro/internal/apps/em3d"
)

// report attaches the simulated results to the benchmark output.
func report(b *testing.B, res *machine.Result) {
	b.ReportMetric(float64(res.Elapsed)/1e6, "sim-Mcycles")
	b.ReportMetric(res.Summary.TotalCyclesAll()/1e6, "proc-Mcycles")
}

// benchRun executes one runner spec and reports the standard metrics,
// returning the outcome for benchmark-specific extras.
func benchRun(b *testing.B, spec runner.Spec) *runner.Outcome {
	b.Helper()
	out, err := runner.Run(spec, runner.Options{})
	if err != nil {
		b.Fatalf("runner: %v", err)
	}
	if out.Res.Err != nil {
		b.Fatalf("run aborted: %v", out.Res.Err)
	}
	report(b, out.Res)
	return out
}

// steps extracts the iteration count from an LCP outcome's application
// answer line ("steps=N residual=...").
func steps(b *testing.B, out *runner.Outcome) float64 {
	b.Helper()
	var n int64
	if _, err := fmt.Sscanf(out.AppLine, "steps=%d", &n); err != nil {
		b.Fatalf("no step count in app line %q: %v", out.AppLine, err)
	}
	return float64(n)
}

// --- MSE: Tables 4-7 ---

func BenchmarkTable04_MSE_MP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, runner.TableSpec("mse", "mp"))
	}
}

func BenchmarkTable05_MSE_SM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, runner.TableSpec("mse", "sm"))
	}
}

func BenchmarkTable06_MSE_MP_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := benchRun(b, runner.TableSpec("mse", "mp"))
		b.ReportMetric(out.Res.Summary.CountsAll(stats.CntBytesData)/1e6, "data-MB")
	}
}

func BenchmarkTable07_MSE_SM_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := benchRun(b, runner.TableSpec("mse", "sm"))
		b.ReportMetric(out.Res.Summary.CountsAll(stats.CntSharedMissRemote), "remote-misses")
	}
}

// --- Gauss: Tables 8-11 and the §5.2 ablation ---

func BenchmarkTable08_Gauss_MP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, runner.TableSpec("gauss", "mp"))
	}
}

func BenchmarkTable09_Gauss_SM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, runner.TableSpec("gauss", "sm"))
	}
}

func BenchmarkTable10_Gauss_MP_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := benchRun(b, runner.TableSpec("gauss", "mp"))
		b.ReportMetric(out.Res.Summary.CountsAll(stats.CntChannelWrites), "channel-writes")
	}
}

func BenchmarkTable11_Gauss_SM_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := benchRun(b, runner.TableSpec("gauss", "sm"))
		b.ReportMetric(out.Res.Summary.CountsAll(stats.CntSharedMissRemote), "remote-misses")
	}
}

// BenchmarkAblationGaussBroadcast reproduces the broadcast/reduction tuning
// study: flat (paper: 119.3M comm cycles), binary tree with CMMD-level
// messages (40.9M), lop-sided tree with active messages and channels
// (30.1M).
func BenchmarkAblationGaussBroadcast(b *testing.B) {
	for _, shape := range []string{"flat", "binary", "lopsided"} {
		b.Run(shape, func(b *testing.B) {
			spec := runner.TableSpec("gauss", "mp")
			spec.Shape = shape
			for i := 0; i < b.N; i++ {
				out := benchRun(b, spec)
				s := out.Res.Summary
				comm := s.CyclesAll(stats.LibComp) + s.CyclesAll(stats.NetAccess) +
					s.CyclesAll(stats.BarrierWait)
				b.ReportMetric(comm/1e6, "comm-Mcycles")
			}
		})
	}
}

// --- EM3D: Tables 12-17 ---

func BenchmarkTable12_EM3D_MP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, runner.TableSpec("em3d", "mp"))
	}
}

func BenchmarkTable13_EM3D_MP_MainLoopEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := benchRun(b, runner.TableSpec("em3d", "mp"))
		b.ReportMetric(out.Res.Summary.Counts(em3d.PhaseMain, stats.CntBytesData)/1e6, "main-data-MB")
	}
}

func BenchmarkTable14_EM3D_SM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, runner.TableSpec("em3d", "sm"))
	}
}

func BenchmarkTable15_EM3D_SM_MainLoopEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := benchRun(b, runner.TableSpec("em3d", "sm"))
		s := out.Res.Summary
		b.ReportMetric(s.Counts(em3d.PhaseMain, stats.CntSharedMissRemote), "main-remote-misses")
		b.ReportMetric(s.Counts(em3d.PhaseMain, stats.CntWriteFaults), "main-write-faults")
	}
}

// BenchmarkTable16_EM3D_SM_1MBCache is the cache-size ablation: the paper's
// main-loop total drops from 130M to 61M cycles with a 1 MB cache.
func BenchmarkTable16_EM3D_SM_1MBCache(b *testing.B) {
	spec := runner.TableSpec("em3d", "sm")
	spec.CacheBytes = 1 << 20
	for i := 0; i < b.N; i++ {
		out := benchRun(b, spec)
		b.ReportMetric(out.Res.Summary.TotalCycles(em3d.PhaseMain)/1e6, "main-Mcycles")
	}
}

// BenchmarkTable17_EM3D_SM_LocalAlloc is the allocation-policy ablation:
// local placement runs the main loop in about two thirds the round-robin
// time (paper: 86.3M vs 130.0M cycles).
func BenchmarkTable17_EM3D_SM_LocalAlloc(b *testing.B) {
	spec := runner.TableSpec("em3d", "sm")
	spec.Policy = "local"
	for i := 0; i < b.N; i++ {
		out := benchRun(b, spec)
		b.ReportMetric(out.Res.Summary.TotalCycles(em3d.PhaseMain)/1e6, "main-Mcycles")
	}
}

// --- LCP: Tables 18-23 ---

func BenchmarkTable18_LCP_MP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := benchRun(b, runner.TableSpec("lcp", "mp"))
		b.ReportMetric(steps(b, out), "steps")
	}
}

func BenchmarkTable19_LCP_SM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := benchRun(b, runner.TableSpec("lcp", "sm"))
		b.ReportMetric(steps(b, out), "steps")
	}
}

func BenchmarkTable20_ALCP_MP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := benchRun(b, runner.TableSpec("alcp", "mp"))
		b.ReportMetric(steps(b, out), "steps")
	}
}

func BenchmarkTable21_ALCP_SM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := benchRun(b, runner.TableSpec("alcp", "sm"))
		b.ReportMetric(steps(b, out), "steps")
	}
}

func BenchmarkTable22_LCP_MP_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sync := benchRun(b, runner.TableSpec("lcp", "mp"))
		async, err := runner.Run(runner.TableSpec("alcp", "mp"), runner.Options{})
		if err != nil || async.Res.Err != nil {
			b.Fatalf("alcp run: %v / %v", err, async.Res.Err)
		}
		b.ReportMetric(sync.Res.Summary.CountsAll(stats.CntChannelWrites), "sync-channel-writes")
		b.ReportMetric(async.Res.Summary.CountsAll(stats.CntChannelWrites), "async-channel-writes")
	}
}

func BenchmarkTable23_LCP_SM_Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sync := benchRun(b, runner.TableSpec("lcp", "sm"))
		async, err := runner.Run(runner.TableSpec("alcp", "sm"), runner.Options{})
		if err != nil || async.Res.Err != nil {
			b.Fatalf("alcp run: %v / %v", err, async.Res.Err)
		}
		shared := func(o *runner.Outcome) float64 {
			s := o.Res.Summary
			return s.CountsAll(stats.CntSharedMissLocal) + s.CountsAll(stats.CntSharedMissRemote)
		}
		b.ReportMetric(shared(sync), "sync-shared-misses")
		b.ReportMetric(shared(async), "async-shared-misses")
	}
}

// --- Microbenchmarks of the machines' primitive operations ---

// BenchmarkMicroRemoteMiss measures one idle remote shared-memory miss
// (the paper: ~250 cycles).
func BenchmarkMicroRemoteMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cost.Default(2)
		var cyc int64
		m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
			if n.ID == 1 {
				v := n.RT.GMallocFOn(0, 4)
				before := n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss)
				v.Get(n.Mem, 0)
				cyc = n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss) - before
			}
			n.Barrier()
		})
		m.Run()
		b.ReportMetric(float64(cyc), "sim-cycles")
	}
}

// BenchmarkMicroAMRoundTrip measures an active-message request/reply pair.
func BenchmarkMicroAMRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cost.Default(2)
		m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
			got := 0
			var h int
			h = n.AM.Register(func(pkt *ni.Packet) {
				got++
				if n.ID == 1 {
					n.AM.Request(0, h, pkt.Args, 8, nil)
				}
			})
			if n.ID == 0 {
				n.AM.Request(1, h, [4]uint64{42}, 8, nil)
			}
			n.AM.PollUntil(func() bool { return got > 0 })
			n.Barrier()
		})
		res := m.Run()
		b.ReportMetric(float64(res.Elapsed), "sim-cycles")
	}
}

// BenchmarkMicroBarrier measures the hardware barrier with balanced
// arrival (the paper: 100 cycles from last arrival).
func BenchmarkMicroBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cost.Default(32)
		m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
			for k := 0; k < 100; k++ {
				n.Barrier()
			}
		})
		res := m.Run()
		b.ReportMetric(float64(res.Elapsed)/100, "sim-cycles/barrier")
	}
}

// BenchmarkMicroBlockTransfer measures a 1 KB synchronous block transfer
// (RTS/CTS handshake plus streamed data packets) end to end.
func BenchmarkMicroBlockTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cost.Default(2)
		m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
			const words = 128
			buf := n.AllocF(words)
			if n.ID == 0 {
				n.EP.RecvBlock(1, &buf, 0, words)
			} else {
				for k := 0; k < words; k++ {
					buf.Set(n.Mem, k, float64(k))
				}
				n.EP.SendBlock(0, 1, &buf, 0, words)
			}
			n.Barrier()
		})
		res := m.Run()
		b.ReportMetric(float64(res.Elapsed), "sim-cycles")
	}
}

// BenchmarkMicroMCSLockHandoff measures contended MCS lock handoff.
func BenchmarkMicroMCSLockHandoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cost.Default(8)
		var lock *parmacs.Lock
		var counter memsim.IVec
		m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
			if n.ID == 0 {
				lock = parmacs.NewLock(n.RT)
				counter = n.RT.GMallocI(0, 1)
				n.RT.Create(n.P)
			} else {
				n.RT.WaitCreate(n.P)
			}
			n.Barrier()
			for k := 0; k < 20; k++ {
				lock.Acquire(n.Mem)
				counter.Set(n.Mem, 0, counter.V[0]+1)
				lock.Release(n.Mem)
			}
			n.Barrier()
		})
		res := m.Run()
		b.ReportMetric(float64(res.Elapsed)/(8*20), "sim-cycles/handoff")
	}
}

// BenchmarkAblationEM3DFlush measures the §5.3.4 software-flush proposal:
// consumers flush remote values after use, sending the directory a
// replacement hint so producers upgrade without invalidation rounds. The
// flush variant has no Spec knob, so this ablation drives the app package
// directly at table scale.
func BenchmarkAblationEM3DFlush(b *testing.B) {
	for _, flush := range []bool{false, true} {
		name := "base"
		run := em3d.RunSM
		if flush {
			name = "flush"
			run = em3d.RunSMFlush
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := run(cost.Default(runner.TableProcs), parmacs.RoundRobin, em3d.DefaultParams())
				report(b, out.Res)
				b.ReportMetric(out.Res.Summary.TotalCycles(em3d.PhaseMain)/1e6, "main-Mcycles")
			}
		})
	}
}

// BenchmarkScalingGaussSM sweeps processor counts (the simulators support
// 1-128; the paper ran 32) to show directory queuing growing with scale —
// "these delays ... will become untenable for larger systems" (§5.2).
func BenchmarkScalingGaussSM(b *testing.B) {
	for _, procs := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("procs-%02d", procs), func(b *testing.B) {
			spec := runner.TableSpec("gauss", "sm")
			spec.Procs = procs
			for i := 0; i < b.N; i++ {
				benchRun(b, spec)
			}
		})
	}
}

var sinkTLB bool

// BenchmarkMicroTLBHit measures the host cost of the simulated TLB's hit
// path (MRU filter plus open-addressed probe) — the single hottest
// operation in the whole simulator.
func BenchmarkMicroTLBHit(b *testing.B) {
	t := memsim.NewTLB(64, 4096)
	for p := 0; p < 64; p++ {
		t.Access(uint64(p) << 12)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate over 8 resident pages: misses the MRU filter half the
		// time, exercising the probe path without ever faulting.
		sinkTLB = t.Access(uint64(i&7) << 12)
	}
}
