// Command benchgate compares allocs/op from a `go test -bench -benchmem`
// output file against checked-in per-benchmark allocation budgets and
// fails (exit 1) on any overrun. It is the CI allocation gate for the
// table-suite benchmarks: the budgets in scripts/bench_budgets.json carry
// generous headroom over the measured steady state (roughly 2x) so host
// noise never trips them, while an accidental re-introduction of
// per-event or per-packet allocation — typically a 10-100x jump —
// fails loudly.
//
// Usage:
//
//	go test -run xxx -bench 'BenchmarkTable' -benchmem -benchtime 1x . | tee bench.txt
//	go run ./scripts -bench bench.txt -budgets scripts/bench_budgets.json
//
// A budgeted benchmark missing from the output is an error too: a gate
// that silently stops running is a gate that silently stops gating.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result line of `go test -bench -benchmem` output,
// e.g. "BenchmarkTable04_MSE_MP-4  1  20472597240 ns/op ... 6303 allocs/op".
// The trailing -N GOMAXPROCS suffix is stripped separately so budgets are
// host-independent; on a GOMAXPROCS=1 host go test appends no suffix, so
// parseBench records the raw name too rather than guessing whether a
// trailing -N is the suffix or part of a sub-benchmark name like step-1024.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+.*?\s(\d+)\s+allocs/op`)

var maxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	benchPath := flag.String("bench", "", "path to `go test -bench -benchmem` output")
	budgetPath := flag.String("budgets", "scripts/bench_budgets.json", "path to allocation budgets JSON")
	flag.Parse()
	if *benchPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -bench output file required")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*budgetPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var budgets map[string]int64
	if err := json.Unmarshal(raw, &budgets); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parse %s: %v\n", *budgetPath, err)
		os.Exit(2)
	}

	measured, err := parseBench(*benchPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		budget := budgets[name]
		got, ok := measured[name]
		switch {
		case !ok:
			fmt.Printf("MISSING  %-40s budget %d, not in bench output\n", name, budget)
			failed = true
		case got > budget:
			fmt.Printf("OVER     %-40s %d allocs/op, budget %d\n", name, got, budget)
			failed = true
		default:
			fmt.Printf("ok       %-40s %d allocs/op (budget %d)\n", name, got, budget)
		}
	}
	if failed {
		fmt.Println("benchgate: FAIL — allocation budget exceeded or gated benchmark missing")
		os.Exit(1)
	}
	fmt.Printf("benchgate: all %d gated benchmarks within budget\n", len(names))
}

// parseBench extracts {benchmark name -> allocs/op} from bench output.
// Sub-benchmarks keep their /sub path; the GOMAXPROCS suffix is dropped.
func parseBench(path string) (map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]int64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %v", sc.Text(), err)
		}
		out[m[1]] = n
		if s := maxprocsSuffix.ReplaceAllString(m[1], ""); s != m[1] {
			if _, taken := out[s]; !taken {
				out[s] = n
			}
		}
	}
	return out, sc.Err()
}
