#!/usr/bin/env bash
# End-to-end crash test for the sweep service: run a matrix locally, run the
# same matrix through wwtserved with a kill -9 in the middle, restart the
# daemon, and require the sweep to complete with every cell present exactly
# once and fingerprints identical to the local (uninterrupted) run. A final
# resubmission must be served entirely from the result cache.
#
# Usage: scripts/sweep_service_e2e.sh [workdir]
#
# Set WWTSERVED_FSPLAN to fault rates (e.g. "enospc=0.03,fsync=0.03") to run
# the daemon over the seeded fault-injecting filesystem: the same invariants
# must hold while fsyncs fail and the disk reports full — the client rides
# out 507/500 refusals exactly like an outage. The script supplies the seed
# (WWTSERVED_FSSEED, default 7), advancing it each time a startup draws a
# fault fatal enough to kill the daemon — an operator restarting until the
# disk behaves. Set WWTSERVED_SEGBYTES to force WAL rotation mid-sweep.
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
addr="127.0.0.1:${WWTSERVED_PORT:-8723}"
echo "== workdir $work, daemon on $addr"

go build -o "$work/wwtserved" ./cmd/wwtserved
go build -o "$work/wwtsweep" ./cmd/wwtsweep

# A matrix of cells big enough (~0.05-0.5s each, serial daemon; a few
# seconds end to end) that the kill below reliably lands mid-sweep.
cat > "$work/matrix.json" <<'EOF'
{"runs": [
  {"app": "gauss", "machine": "mp", "procs": 4, "size": 160},
  {"app": "gauss", "machine": "sm", "procs": 4, "size": 160},
  {"app": "em3d",  "machine": "mp", "procs": 4, "size": 150, "iters": 10},
  {"app": "em3d",  "machine": "sm", "procs": 4, "size": 150, "iters": 10},
  {"app": "lcp",   "machine": "mp", "procs": 4, "size": 512, "iters": 4},
  {"app": "lcp",   "machine": "sm", "procs": 4, "size": 512, "iters": 4},
  {"app": "gauss", "machine": "mp", "procs": 8, "size": 160},
  {"app": "gauss", "machine": "sm", "procs": 8, "size": 160},
  {"app": "em3d",  "machine": "mp", "procs": 8, "size": 150, "iters": 10},
  {"app": "em3d",  "machine": "sm", "procs": 8, "size": 150, "iters": 10},
  {"app": "em3d",  "machine": "mp", "procs": 8, "size": 200, "iters": 12},
  {"app": "em3d",  "machine": "sm", "procs": 8, "size": 200, "iters": 12},
  {"app": "gauss", "machine": "mp", "procs": 8, "size": 192},
  {"app": "gauss", "machine": "sm", "procs": 8, "size": 192},
  {"app": "lcp",   "machine": "mp", "procs": 8, "size": 1024, "iters": 4},
  {"app": "lcp",   "machine": "sm", "procs": 8, "size": 1024, "iters": 4}
]}
EOF

echo "== local baseline sweep"
"$work/wwtsweep" -matrix "$work/matrix.json" -jobs 2 -quiet -out "$work/local.json"

start_daemon() { # $1 = log file
  : >"$work/$1"
  for attempt in $(seq 0 19); do
    args=()
    [ -n "${WWTSERVED_SEGBYTES:-}" ] && args+=(-wal-segment-bytes "$WWTSERVED_SEGBYTES")
    [ -n "${WWTSERVED_FSPLAN:-}" ] && \
      args+=(-fault-fsplan "seed=$((${WWTSERVED_FSSEED:-7} + attempt)),$WWTSERVED_FSPLAN")
    "$work/wwtserved" -addr "$addr" -dir "$work/data" -jobs 1 \
      "${args[@]}" >>"$work/$1" 2>&1 &
    daemon=$!
    for _ in $(seq 100); do
      curl -sf "http://$addr/healthz" >/dev/null 2>&1 && return
      # A fault plan can kill startup itself (e.g. ENOSPC while creating the
      # first WAL segment). That exit is correct — refusing to serve without
      # a durable log — so restart with the next seed, like an operator.
      kill -0 "$daemon" 2>/dev/null || break
      sleep 0.1
    done
    kill -9 "$daemon" 2>/dev/null || true
    wait "$daemon" 2>/dev/null || true
  done
  echo "daemon never became healthy" >&2
  cat "$work/$1" >&2
  exit 1
}

echo "== daemon up; client sweep with a kill -9 mid-run"
start_daemon daemon1.log
"$work/wwtsweep" -server "http://$addr" -matrix "$work/matrix.json" \
  -quiet -out "$work/server1.json" &
client=$!
sleep 0.7
echo "== SIGKILL daemon (pid $daemon)"
kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
sleep 0.5
echo "== daemon restart; recovery from the WAL"
start_daemon daemon2.log
wait "$client"  # client rides out the outage and finishes against daemon #2

# The kill must have landed mid-sweep: the restarted daemon recovered a
# nonempty pending set from the WAL. (If this trips, the matrix finished
# before the kill — grow it or kill sooner.)
grep "recovered" "$work/daemon2.log"
grep -Eq "recovered [1-9][0-9]* pending" "$work/daemon2.log" || {
  echo "kill -9 landed after the sweep finished; not a mid-crash test" >&2
  exit 1
}

echo "== resubmit: must be served entirely from the result cache"
"$work/wwtsweep" -server "http://$addr" -matrix "$work/matrix.json" \
  -quiet -out "$work/server2.json"

stats=$(curl -sf "http://$addr/stats")
echo "$stats"
if [ -n "${WWTSERVED_FSPLAN:-}" ]; then
  # The plan must actually have injected faults, or the pass proved nothing.
  python3 -c "
import json, sys
st = json.loads(sys.argv[1])
assert st.get('fs_faults', 0) > 0, f'fault plan set but no faults injected: {st}'
print(f\"fault plan injected {st['fs_faults']} faults \"
      f\"(storage_errs={st.get('storage_errs', 0)})\")
" "$stats"
fi
kill "$daemon"; wait "$daemon" 2>/dev/null || true

python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
def load(name):
    runs = json.load(open(f"{work}/{name}"))["runs"]
    def ident(r):
        s = r["spec"]
        return (s["app"], s["machine"], s["procs"], s.get("size", 0), s.get("iters", 0))
    return {ident(r): r for r in runs}

local, s1, s2 = load("local.json"), load("server1.json"), load("server2.json")
n = len(json.load(open(f"{work}/matrix.json"))["runs"])
assert len(local) == len(s1) == len(s2) == n, \
    f"lost or duplicated cells: local={len(local)} s1={len(s1)} s2={len(s2)} want {n}"
for k, r in local.items():
    assert not r.get("error"), (k, r["error"])
    assert s1[k]["fingerprint"] == r["fingerprint"], \
        f"{k}: crash-interrupted sweep fingerprint {s1[k]['fingerprint']} != local {r['fingerprint']}"
    assert s2[k]["fingerprint"] == r["fingerprint"], \
        f"{k}: cached fingerprint diverged"
    assert s2[k].get("cached"), f"{k}: resubmitted cell was recomputed, not served from cache"
print(f"OK: {n} cells exactly once, fingerprints bit-identical across "
      f"local / killed+recovered / fully-cached sweeps")
EOF
