// BenchmarkScalingP exercises whole app/machine pairs at the scaling-study
// processor counts (P = 64, 256, 1024) with per-processor-scaled working
// sets, so one benchmark op is one complete simulated run at that machine
// size. Alongside the table-suite benchmarks (fixed P=32, paper workloads)
// this is the regression canary for the large-P path: the batched
// dispatcher, the compacted per-proc state, and the O(P) structures in the
// network, directory, and collectives all sit on its critical path, and the
// bench-gate budgets pin its allocation behavior so a per-proc or per-event
// allocation regression at P=1024 fails CI loudly.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/runner"
)

// scalingSpec builds the per-processor-scaled run for one scaling pair: one
// message-passing and one shared-memory representative whose total work is
// linear in the machine size (em3d's graph is NodesPer per proc; lcp gets
// two matrix rows per proc), so growing P grows the machine, not the
// per-proc work. mse and gauss are excluded deliberately — their total work
// is quadratic/cubic in the problem size, so a per-proc-scaled run at
// P=1024 would measure the application, not the simulator.
func scalingSpec(app, mach string, procs int) runner.Spec {
	switch app {
	case "em3d":
		// NodesPer must be large enough that every node has at least one
		// remote in-edge (an empty receive channel is an app-level error).
		return runner.Spec{App: app, Machine: mach, Procs: procs, Size: 8, Iters: 2}
	case "lcp":
		return runner.Spec{App: app, Machine: mach, Procs: procs, Size: 2 * procs, Iters: 2}
	}
	panic("unknown scaling app " + app)
}

func benchScalingRun(b *testing.B, spec runner.Spec) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := runner.Run(spec, runner.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if out.Res.Err != nil {
			b.Fatal(out.Res.Err)
		}
	}
}

func BenchmarkScalingP(b *testing.B) {
	for _, procs := range []int{64, 256, 1024} {
		for _, pair := range []struct{ app, mach string }{
			{"em3d", "mp"},
			{"lcp", "sm"},
		} {
			spec := scalingSpec(pair.app, pair.mach, procs)
			b.Run(fmt.Sprintf("%s-%s-%04d", pair.app, pair.mach, procs), func(b *testing.B) {
				benchScalingRun(b, spec)
			})
		}
	}
}
