package am

import (
	"sort"

	"repro/internal/snapshot"
)

// EncodeState contributes this node's reliable-transport image to a
// canonical state snapshot: per peer, the sender window (next sequence
// number, unacked packets, retransmit deadline and backoff) and the
// receiver cursor (cumulative ack point, buffered out-of-order sequence
// numbers in sorted order — the buffer is a map, whose iteration order
// must never leak into the bytes).
func (r *Reliable) EncodeState(enc *snapshot.Enc) {
	enc.Section("reliable", func(enc *snapshot.Enc) {
		enc.I64(int64(r.outstanding))
		enc.U32(uint32(len(r.peers)))
		for _, pr := range r.peers {
			if pr == nil {
				enc.Bool(false)
				continue
			}
			enc.Bool(true)
			enc.U64(pr.nextSeq)
			enc.U32(uint32(len(pr.unacked)))
			for _, u := range pr.unacked {
				enc.U64(u.seq)
				enc.I64(u.first)
			}
			enc.I64(pr.deadline)
			enc.I64(pr.rto)
			enc.I64(int64(pr.retries))
			enc.U64(pr.cum)
			seqs := make([]uint64, 0, len(pr.buf))
			for s := range pr.buf {
				seqs = append(seqs, s)
			}
			sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
			enc.U64s(seqs)
		}
	})
}
