// Package am reimplements the Active Message layer (CMAML, von Eicken et
// al. ISCA 1992) on the simulated CM-5 network interface. An active message
// names a handler on the destination node; the handler runs when the
// destination polls the network (the CMMD library "polls heavily" — the
// paper's simulator likewise dispatches handlers without kernel traps).
//
// All software overhead (composing a request, poll-and-dispatch) is charged
// to the library-computation category, and cache misses taken inside
// handlers are charged to library misses — the paper's "Lib Comp" and "Lib
// Misses" rows. When the network injects faults, an optional
// reliable-delivery transport (reliable.go) slots between requests and the
// NI; its overhead is charged to the separate LibRetrans category.
package am

import (
	"errors"
	"fmt"

	"repro/internal/cost"
	"repro/internal/ni"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ErrNoHandler reports a packet whose tag names no registered handler. On
// the lossless machine this is a programmer error and dispatch panics; on a
// faulty network (fault plan attached, e.g. a corrupted tag word) it is
// returned as a typed error through Poll, Drain, and PollUntil.
var ErrNoHandler = errors.New("am: no handler")

// Handler processes a delivered active message on the receiving node. It
// runs in library accounting mode; computation and memory traffic it
// performs are charged as library time.
type Handler func(pkt *ni.Packet)

// AM is one node's active-message layer.
type AM struct {
	NI  *ni.NI
	P   *sim.Proc
	Cfg *cost.Config

	handlers []Handler
	rel      *Reliable

	// recvBuf is the dispatch scratch packet: Poll pops into it and hands
	// handlers a pointer to it. Handlers run to completion before the next
	// pop, so one buffer suffices — and because the handler call is
	// indirect, a stack-local packet would be forced to escape, costing a
	// 128-byte heap allocation per received packet.
	recvBuf ni.Packet
}

// New creates the active-message layer over a network interface.
func New(nif *ni.NI) *AM {
	return &AM{NI: nif, P: nif.P, Cfg: nif.Cfg}
}

// Rel returns the reliable transport layered over this AM, or nil on the
// seed's lossless configuration.
func (a *AM) Rel() *Reliable { return a.rel }

// Register installs a handler and returns its id. Handlers must be
// registered in the same order on every node (SPMD style), so ids agree.
func (a *AM) Register(h Handler) int {
	a.handlers = append(a.handlers, h)
	return len(a.handlers) - 1
}

// Request sends an active message to dst invoking handler there. args are
// the payload words; dataBytes of the payload count as application data
// (0 for pure control/handshake messages). data optionally carries bulk
// payload words for the handler.
func (a *AM) Request(dst, handler int, args [4]uint64, dataBytes int, data []uint64) {
	p := a.P
	p.Interact()
	p.ChargeStall(stats.LibComp, a.Cfg.AMSendCycles)
	p.Acct.Add(stats.CntActiveMessages, 1)
	pkt := ni.Packet{Dst: dst, Tag: handler, Args: args, DataBytes: dataBytes}
	pkt.SetPayload(data)
	a.SendPacket(&pkt)
}

// SendPacket injects a pre-built packet, through the reliable transport when
// one is attached (the CMMD channel layer and the collectives stream data
// packets directly, below the Request call path).
func (a *AM) SendPacket(pkt *ni.Packet) {
	if a.rel != nil {
		a.rel.send(pkt)
		return
	}
	a.NI.Send(pkt)
}

// Poll performs one poll: a status-register read and, if a packet is
// available, a receive plus handler dispatch, then transport progress
// (retransmissions due). Progress runs after the receive so that an
// acknowledgement already sitting in the input queue cancels a pending
// timeout instead of triggering a spurious retransmission. It reports
// whether a packet was handled. A dispatch failure on a faulty network
// (e.g. no handler for a corrupted tag) is returned as a typed error; on
// the lossless machine it panics instead.
func (a *AM) Poll() (bool, error) {
	if !a.NI.Status() {
		if a.rel != nil {
			a.rel.progress()
		}
		return false, nil
	}
	pkt, err := a.NI.TryRecv()
	if err != nil {
		// Status said a packet was there; hardware cannot lose it between
		// the status read and the FIFO load.
		panic(err)
	}
	a.recvBuf = pkt
	derr := a.dispatch(&a.recvBuf)
	if a.rel != nil {
		a.rel.progress()
	}
	return true, derr
}

func (a *AM) dispatch(pkt *ni.Packet) error {
	if a.rel != nil {
		return a.rel.receive(pkt)
	}
	return a.dispatchInner(pkt)
}

// dispatchInner invokes the handler named by the packet tag, bypassing the
// reliable transport (which calls it for packets that clear checksum and
// sequence filtering).
func (a *AM) dispatchInner(pkt *ni.Packet) error {
	if pkt.Tag < 0 || pkt.Tag >= len(a.handlers) {
		err := fmt.Errorf("am: node %d: no handler for tag %d from node %d: %w",
			a.NI.Node, pkt.Tag, pkt.Src, ErrNoHandler)
		if !a.NI.Faulty() && !pkt.Corrupt {
			// Lossless machine: only a program bug reaches here.
			panic(err)
		}
		return err
	}
	p := a.P
	p.ChargeStall(stats.LibComp, a.Cfg.AMDispatchCycles)
	p.PushMode(stats.LibComp, stats.LibMiss, stats.CntLibMisses)
	a.handlers[pkt.Tag](pkt)
	p.PopMode()
	return nil
}

// HandlerFor returns the handler registered under tag, for step-form poll
// machines that run dispatchInner's accounting themselves. The bounds
// panic matches dispatchInner on the lossless machine (step processors
// never run with a faulty network, so the typed-error path cannot apply).
func (a *AM) HandlerFor(tag int) Handler {
	if tag < 0 || tag >= len(a.handlers) {
		panic(fmt.Errorf("am: node %d: no handler for tag %d: %w",
			a.NI.Node, tag, ErrNoHandler))
	}
	return a.handlers[tag]
}

// Drain handles every currently available packet and returns how many were
// dispatched, stopping at the first dispatch error.
func (a *AM) Drain() (int, error) {
	n := 0
	for {
		handled, err := a.Poll()
		if err != nil {
			return n, err
		}
		if !handled {
			return n, nil
		}
		n++
	}
}

// PollUntil polls the network, dispatching handlers, until cond() is true.
// Time spent waiting with no packets available is charged to library
// computation — this is how load-imbalance wait appears as "Lib Comp" in
// the paper's message-passing breakdowns. With the reliable transport
// attached, waits are bounded by the next retransmission deadline so a
// dropped packet cannot park the processor forever.
func (a *AM) PollUntil(cond func() bool) error {
	p := a.P
	p.Interact()
	for !cond() {
		handled, err := a.Poll()
		if err != nil {
			return err
		}
		if handled {
			continue
		}
		if a.rel != nil {
			if dl, ok := a.rel.nextDeadline(); ok {
				a.NI.WaitPacketUntil(stats.LibComp, dl)
				continue
			}
		}
		a.NI.WaitPacket(stats.LibComp)
	}
	return nil
}
