// Package am reimplements the Active Message layer (CMAML, von Eicken et
// al. ISCA 1992) on the simulated CM-5 network interface. An active message
// names a handler on the destination node; the handler runs when the
// destination polls the network (the CMMD library "polls heavily" — the
// paper's simulator likewise dispatches handlers without kernel traps).
//
// All software overhead (composing a request, poll-and-dispatch) is charged
// to the library-computation category, and cache misses taken inside
// handlers are charged to library misses — the paper's "Lib Comp" and "Lib
// Misses" rows.
package am

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/ni"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Handler processes a delivered active message on the receiving node. It
// runs in library accounting mode; computation and memory traffic it
// performs are charged as library time.
type Handler func(pkt ni.Packet)

// AM is one node's active-message layer.
type AM struct {
	NI  *ni.NI
	P   *sim.Proc
	Cfg *cost.Config

	handlers []Handler
}

// New creates the active-message layer over a network interface.
func New(nif *ni.NI) *AM {
	return &AM{NI: nif, P: nif.P, Cfg: nif.Cfg}
}

// Register installs a handler and returns its id. Handlers must be
// registered in the same order on every node (SPMD style), so ids agree.
func (a *AM) Register(h Handler) int {
	a.handlers = append(a.handlers, h)
	return len(a.handlers) - 1
}

// Request sends an active message to dst invoking handler there. args are
// the payload words; dataBytes of the payload count as application data
// (0 for pure control/handshake messages). data optionally carries bulk
// payload words for the handler.
func (a *AM) Request(dst, handler int, args [4]uint64, dataBytes int, data []uint64) {
	p := a.P
	p.Interact()
	p.ChargeStall(stats.LibComp, a.Cfg.AMSendCycles)
	p.Acct.Add(stats.CntActiveMessages, 1)
	a.NI.Send(ni.Packet{Dst: dst, Tag: handler, Args: args,
		DataBytes: dataBytes, Data: data})
}

// Poll performs one poll: a status-register read and, if a packet is
// available, a receive plus handler dispatch. It reports whether a packet
// was handled.
func (a *AM) Poll() bool {
	if !a.NI.Status() {
		return false
	}
	pkt := a.NI.Recv()
	a.dispatch(pkt)
	return true
}

func (a *AM) dispatch(pkt ni.Packet) {
	if pkt.Tag < 0 || pkt.Tag >= len(a.handlers) {
		panic(fmt.Sprintf("am: node %d: no handler %d", a.NI.Node, pkt.Tag))
	}
	p := a.P
	p.ChargeStall(stats.LibComp, a.Cfg.AMDispatchCycles)
	p.PushMode(stats.LibComp, stats.LibMiss, stats.CntLibMisses)
	a.handlers[pkt.Tag](pkt)
	p.PopMode()
}

// Drain handles every currently available packet and returns how many were
// dispatched.
func (a *AM) Drain() int {
	n := 0
	for a.Poll() {
		n++
	}
	return n
}

// PollUntil polls the network, dispatching handlers, until cond() is true.
// Time spent waiting with no packets available is charged to library
// computation — this is how load-imbalance wait appears as "Lib Comp" in
// the paper's message-passing breakdowns.
func (a *AM) PollUntil(cond func() bool) {
	p := a.P
	p.Interact()
	for !cond() {
		if a.Poll() {
			continue
		}
		a.NI.WaitPacket(stats.LibComp)
	}
}
