package am_test

import (
	"testing"

	"repro/internal/am"
	"repro/internal/cost"
	"repro/internal/ni"
	"repro/internal/sim"
	"repro/internal/stats"
)

// rig builds a two-node engine with AM layers.
func rig(t *testing.T, body0, body1 func(p *sim.Proc, a *am.AM)) *sim.Engine {
	t.Helper()
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := ni.NewNetwork(eng, &cfg)
	ams := make([]*am.AM, 2)
	p0 := eng.AddProc(func(p *sim.Proc) { body0(p, ams[0]) })
	p1 := eng.AddProc(func(p *sim.Proc) { body1(p, ams[1]) })
	ams[0] = am.New(net.Attach(p0))
	ams[1] = am.New(net.Attach(p1))
	return eng
}

func TestRegistrationOrderGivesStableIDs(t *testing.T) {
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := ni.NewNetwork(eng, &cfg)
	p := eng.AddProc(func(*sim.Proc) {})
	a := am.New(net.Attach(p))
	h0 := a.Register(func(*ni.Packet) {})
	h1 := a.Register(func(*ni.Packet) {})
	if h0 != 0 || h1 != 1 {
		t.Errorf("handler ids = %d, %d; want 0, 1", h0, h1)
	}
}

func TestDrainDispatchesEverythingAvailable(t *testing.T) {
	var got []uint64
	eng := rig(t,
		func(p *sim.Proc, a *am.AM) {
			h := a.Register(func(*ni.Packet) {})
			for i := 0; i < 5; i++ {
				a.Request(1, h, [4]uint64{uint64(i)}, 0, nil)
			}
		},
		func(p *sim.Proc, a *am.AM) {
			a.Register(func(pkt *ni.Packet) { got = append(got, pkt.Args[0]) })
			// Wait until all five are queued, then drain in one call.
			p.SpinUntil(stats.LibComp, func() bool { return a.NI.Pending() == 5 })
			n, err := a.Drain()
			if err != nil {
				t.Errorf("drain error: %v", err)
			}
			if n != 5 {
				t.Errorf("drain handled %d, want 5", n)
			}
		})
	eng.Run()
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestDispatchChargesLibraryCategories(t *testing.T) {
	var libComp int64
	eng := rig(t,
		func(p *sim.Proc, a *am.AM) {
			h := a.Register(func(*ni.Packet) {})
			a.Request(1, h, [4]uint64{}, 0, nil)
		},
		func(p *sim.Proc, a *am.AM) {
			a.Register(func(*ni.Packet) { p.Compute(37) })
			if err := a.PollUntil(func() bool {
				return p.Acct.Cycles(stats.PhaseDefault, stats.LibComp) > 0
			}); err != nil {
				t.Errorf("poll error: %v", err)
			}
			libComp = p.Acct.Cycles(stats.PhaseDefault, stats.LibComp)
		})
	eng.Run()
	// Handler compute lands in LibComp, not application computation.
	if libComp < 37 {
		t.Errorf("lib comp = %d, want at least the handler's 37", libComp)
	}
}

func TestUnknownHandlerPanics(t *testing.T) {
	// The dispatch panic is raised on the receiving processor's goroutine,
	// so recover there and record it.
	panicked := false
	eng := rig(t,
		func(p *sim.Proc, a *am.AM) {
			a.Register(func(*ni.Packet) {})
			a.Request(1, 3, [4]uint64{}, 0, nil) // node 1 has no handler 3
		},
		func(p *sim.Proc, a *am.AM) {
			a.Register(func(*ni.Packet) {})
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			_ = a.PollUntil(func() bool { return panicked })
		})
	eng.Run()
	if !panicked {
		t.Error("expected a dispatch panic for an unregistered handler")
	}
}
