package am_test

// Behavioral tests for the reliable-delivery transport: drop → timeout
// retransmit, duplicate filtering, reorder under jitter, re-ack after a lost
// acknowledgement, and the structured starvation abort when the retry budget
// runs out.

import (
	"errors"
	"testing"

	"repro/internal/am"
	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/ni"
	"repro/internal/sim"
	"repro/internal/stats"
)

// relRig is a two-node machine with the reliable transport attached and a
// caller-supplied fault plan.
type relRig struct {
	eng  *sim.Engine
	net  *ni.Network
	ams  [2]*am.AM
	rels [2]*am.Reliable
}

func newRelRig(t *testing.T, plan *faults.Plan, body0, body1 func(p *sim.Proc, r *relRig)) *relRig {
	t.Helper()
	cfg := cost.Default(2)
	fc := cost.FaultsConfig{Seed: 1}
	fc = fc.WithDefaults(cfg.NetLatency)
	rig := &relRig{}
	rig.eng = sim.NewEngine(cfg.NetLatency)
	rig.net = ni.NewNetwork(rig.eng, &cfg)
	rig.net.Faults = plan
	grp := am.NewGroup(rig.eng)
	p0 := rig.eng.AddProc(func(p *sim.Proc) {
		body0(p, rig)
		rig.rels[0].Shutdown()
	})
	p1 := rig.eng.AddProc(func(p *sim.Proc) {
		body1(p, rig)
		rig.rels[1].Shutdown()
	})
	for i, p := range []*sim.Proc{p0, p1} {
		a := am.New(rig.net.Attach(p))
		rig.ams[i] = a
		rig.rels[i] = am.NewReliable(a, 2, fc, grp)
	}
	return rig
}

// dropFirstWindow drops every data packet before cycle until, then delivers
// everything (acks included) cleanly.
func dropFirstWindow(until sim.Time) *faults.Plan {
	return faults.NewPlan(1, []faults.Epoch{
		{Start: 0, Rules: []faults.LinkRule{{Src: -1, Dst: -1, Rates: faults.Rates{Drop: 1}}}},
		{Start: until, Rules: nil},
	})
}

func TestDropRecoveredByRetransmission(t *testing.T) {
	delivered := 0
	rig := newRelRig(t, dropFirstWindow(500),
		func(p *sim.Proc, r *relRig) {
			h := r.ams[0].Register(func(*ni.Packet) {})
			_ = h
			r.ams[0].Request(1, h, [4]uint64{42}, 0, nil)
		},
		func(p *sim.Proc, r *relRig) {
			r.ams[1].Register(func(pkt *ni.Packet) {
				if pkt.Args[0] == 42 {
					delivered++
				}
			})
			// Shutdown services the network until the group quiesces; no
			// explicit wait needed.
		})
	if err := rig.eng.Run(); err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if delivered != 1 {
		t.Errorf("message delivered %d times, want exactly 1", delivered)
	}
	retrans := rig.eng.Procs()[0].Acct.Counts(stats.PhaseDefault, stats.CntRetransmissions)
	if retrans == 0 {
		t.Error("expected at least one retransmission after the drop")
	}
	if rig.net.Dropped == 0 {
		t.Error("network should have recorded the drop")
	}
}

func TestNetworkDuplicateFiltered(t *testing.T) {
	// Every data packet is duplicated by the network; handlers must still
	// run exactly once per message.
	plan := faults.Uniform(1, faults.Rates{Dup: 1})
	var got []uint64
	const n = 10
	rig := newRelRig(t, plan,
		func(p *sim.Proc, r *relRig) {
			h := r.ams[0].Register(func(*ni.Packet) {})
			for i := 0; i < n; i++ {
				r.ams[0].Request(1, h, [4]uint64{uint64(i)}, 0, nil)
			}
		},
		func(p *sim.Proc, r *relRig) {
			r.ams[1].Register(func(pkt *ni.Packet) { got = append(got, pkt.Args[0]) })
		})
	if err := rig.eng.Run(); err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if len(got) != n {
		t.Fatalf("delivered %d messages, want %d: %v", len(got), n, got)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	dups := rig.eng.Procs()[1].Acct.Counts(stats.PhaseDefault, stats.CntDuplicates)
	if dups == 0 {
		t.Error("expected duplicate packets to be counted as filtered")
	}
	if rig.net.Injected+rig.net.Duplicated != rig.net.Delivered+rig.net.Dropped {
		t.Errorf("conservation violated: inj %d + dup %d != del %d + drop %d",
			rig.net.Injected, rig.net.Duplicated, rig.net.Delivered, rig.net.Dropped)
	}
}

func TestJitterReorderDeliveredInOrder(t *testing.T) {
	// Heavy jitter reorders arrivals; the sequence layer must still hand
	// packets to handlers in send order.
	plan := faults.Uniform(7, faults.Rates{Delay: 0.8, MaxDelay: 1500})
	var got []uint64
	const n = 40
	rig := newRelRig(t, plan,
		func(p *sim.Proc, r *relRig) {
			h := r.ams[0].Register(func(*ni.Packet) {})
			for i := 0; i < n; i++ {
				r.ams[0].Request(1, h, [4]uint64{uint64(i)}, 0, nil)
			}
		},
		func(p *sim.Proc, r *relRig) {
			r.ams[1].Register(func(pkt *ni.Packet) { got = append(got, pkt.Args[0]) })
		})
	if err := rig.eng.Run(); err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("order violated at %d: %v", i, got[:i+1])
		}
	}
}

func TestCorruptPacketDiscardedAndRecovered(t *testing.T) {
	// Corrupt every packet before cycle 500 (data and acks alike); the
	// checksum discards them and timeouts recover.
	plan := faults.NewPlan(3, []faults.Epoch{
		{Start: 0, Rules: []faults.LinkRule{{Src: -1, Dst: -1, Rates: faults.Rates{Corrupt: 1}}}},
		{Start: 500, Rules: nil},
	})
	delivered := 0
	rig := newRelRig(t, plan,
		func(p *sim.Proc, r *relRig) {
			h := r.ams[0].Register(func(*ni.Packet) {})
			r.ams[0].Request(1, h, [4]uint64{7}, 0, nil)
		},
		func(p *sim.Proc, r *relRig) {
			r.ams[1].Register(func(*ni.Packet) { delivered++ })
		})
	if err := rig.eng.Run(); err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if delivered != 1 {
		t.Errorf("delivered %d times, want 1", delivered)
	}
	discards := rig.eng.Procs()[1].Acct.Counts(stats.PhaseDefault, stats.CntCorrupt)
	if discards == 0 {
		t.Error("expected corrupt packets to be counted as discarded")
	}
}

func TestLostAckTriggersReack(t *testing.T) {
	// Drop only node1->node0 traffic (the acks) early on: node 0's data
	// arrives, node 1 acks into the void, node 0 retransmits, node 1 filters
	// the duplicate and re-acks.
	plan := faults.NewPlan(5, []faults.Epoch{
		{Start: 0, Rules: []faults.LinkRule{
			{Src: 1, Dst: 0, Rates: faults.Rates{Drop: 1}},
			{Src: -1, Dst: -1, Rates: faults.Rates{}},
		}},
		{Start: 2500, Rules: nil},
	})
	delivered := 0
	rig := newRelRig(t, plan,
		func(p *sim.Proc, r *relRig) {
			h := r.ams[0].Register(func(*ni.Packet) {})
			r.ams[0].Request(1, h, [4]uint64{9}, 0, nil)
		},
		func(p *sim.Proc, r *relRig) {
			r.ams[1].Register(func(*ni.Packet) { delivered++ })
		})
	if err := rig.eng.Run(); err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if delivered != 1 {
		t.Errorf("delivered %d times, want exactly 1 (dedup must filter the retransmit)", delivered)
	}
	recv := rig.eng.Procs()[1].Acct
	if recv.Counts(stats.PhaseDefault, stats.CntDuplicates) == 0 {
		t.Error("receiver should have filtered the retransmitted duplicate")
	}
	if recv.Counts(stats.PhaseDefault, stats.CntAcks) < 2 {
		t.Error("receiver should have acked at least twice (original + re-ack)")
	}
}

func TestTotalLossStarvesWithStructuredError(t *testing.T) {
	plan := faults.Uniform(1, faults.Rates{Drop: 1})
	rig := newRelRig(t, plan,
		func(p *sim.Proc, r *relRig) {
			h := r.ams[0].Register(func(*ni.Packet) {})
			r.ams[0].Request(1, h, [4]uint64{1}, 0, nil)
			r.rels[0].Flush() // can never succeed; must abort, not hang
		},
		func(p *sim.Proc, r *relRig) {
			r.ams[1].Register(func(*ni.Packet) {})
		})
	err := rig.eng.Run()
	var se *faults.StarvationError
	if !errors.As(err, &se) {
		t.Fatalf("Run returned %v, want a StarvationError", err)
	}
	if se.Node != 0 || se.Peer != 1 {
		t.Errorf("starved node %d peer %d, want 0 -> 1", se.Node, se.Peer)
	}
	if se.OldestUnacked != 1 {
		t.Errorf("oldest unacked = %d, want 1", se.OldestUnacked)
	}
}

func TestWindowBackpressureBlocksSender(t *testing.T) {
	// With a lossless plan-free network but the transport attached, sending
	// far more packets than the window must still deliver everything in
	// order (the window refills as acks arrive).
	var got []uint64
	const n = 300 // Window defaults to 64
	rig := newRelRig(t, nil,
		func(p *sim.Proc, r *relRig) {
			h := r.ams[0].Register(func(*ni.Packet) {})
			for i := 0; i < n; i++ {
				r.ams[0].Request(1, h, [4]uint64{uint64(i)}, 0, nil)
			}
		},
		func(p *sim.Proc, r *relRig) {
			r.ams[1].Register(func(pkt *ni.Packet) { got = append(got, pkt.Args[0]) })
		})
	if err := rig.eng.Run(); err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("order violated at %d", i)
		}
	}
	// No faults: nothing should ever have been retransmitted.
	if r := rig.eng.Procs()[0].Acct.Counts(stats.PhaseDefault, stats.CntRetransmissions); r != 0 {
		t.Errorf("%d spurious retransmissions on a lossless network", r)
	}
}
