package am

// The reliable-delivery transport: a sliding-window channel layer between
// active messages and the (now possibly faulty) network interface, in the
// style of a classic ARQ link protocol.
//
//   - Every packet to a peer carries a per-peer sequence number (seq 0 marks
//     raw, unsequenced control packets such as acks).
//   - The receiver delivers packets to handlers strictly in per-peer
//     sequence order, buffering out-of-order arrivals in a bounded window,
//     filtering duplicates, and discarding corrupt packets (modeled
//     checksum). Each accepted or duplicate packet is answered with a
//     cumulative acknowledgement.
//   - The sender keeps unacknowledged packets in a window (sends block when
//     it fills), retransmits the oldest on timeout with exponential backoff,
//     and gives up after a bounded retry budget — aborting the run with a
//     structured faults.StarvationError naming the peer and the oldest
//     unacked sequence number, instead of deadlocking the machine.
//
// All software overhead lives in the LibRetrans accounting category so the
// cost of reliability appears as its own row next to the paper's Lib Comp /
// Lib Misses taxonomy. Retransmitted packets pass through ni.Send again, so
// their wire traffic lands in the ordinary message/byte counters exactly
// like first transmissions.

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/ni"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Group tracks every node's transport so shutdown can quiesce the whole
// machine: a node may only stop servicing the network once no peer has
// unacknowledged packets left, or a peer's final retransmissions would
// starve.
//
// Quiet reads the members' counts as published at the last quantum boundary
// rather than live: a shutting-down node polls Quiet from processor context
// while its peers are still executing, and the published snapshot is both
// race-free and identical however the host interleaved the quantum.
type Group struct {
	members []*Reliable
}

// NewGroup creates an empty transport group, registering the
// quantum-boundary publication of members' shutdown progress on eng.
func NewGroup(eng *sim.Engine) *Group {
	g := &Group{}
	eng.AddPublisher(func(sim.Time) {
		for _, r := range g.members {
			r.published = r.outstanding
			r.pubDown = r.down
		}
	})
	return g
}

// Quiet reports whether, as of the last quantum boundary, every member had
// entered Shutdown with no unacknowledged packets outstanding. Requiring
// shutdown arrival — not just empty windows — keeps a node that finishes
// its program early servicing the network until its peers are genuinely
// done, rather than deciding from a moment when they simply had not sent
// anything yet.
func (g *Group) Quiet() bool {
	for _, r := range g.members {
		if !r.pubDown || r.published > 0 {
			return false
		}
	}
	return true
}

// relPkt is one unacknowledged packet awaiting a cumulative ack.
type relPkt struct {
	seq   uint64
	pkt   ni.Packet
	first sim.Time // first injection time, for starvation reports
}

// relPeer is the per-peer transport state, both directions.
type relPeer struct {
	// Sender side: packets we sent to the peer.
	nextSeq  uint64
	unacked  []relPkt
	deadline sim.Time // retransmit deadline for the oldest unacked
	rto      int64    // current timeout (exponential backoff)
	retries  int      // consecutive timeouts without ack progress

	// Receiver side: packets the peer sends us.
	cum uint64               // highest in-order sequence delivered
	buf map[uint64]ni.Packet // out-of-order reorder/dedup window
}

// Reliable is one node's reliable-delivery transport.
type Reliable struct {
	a   *AM
	fc  cost.FaultsConfig // defaulted tuning (RTO, window, retry budget)
	grp *Group

	hAck  int
	peers []*relPeer

	// outstanding is the total unacked packet count across peers, kept so
	// the per-poll progress scan is O(1) when nothing is pending. down is
	// set by the owning processor when it enters Shutdown. published and
	// pubDown are their values at the last quantum boundary (see Group):
	// derived state, recomputed every quantum, that therefore stays out of
	// the snapshot encoders.
	outstanding int
	down        bool
	published   int
	pubDown     bool
}

// NewReliable layers the transport over a, for a machine of nodes
// processors, and registers its ack handler (so it must be constructed at
// the same point on every node, SPMD style). fc must already have its
// tuning defaulted (cost.FaultsConfig.WithDefaults).
func NewReliable(a *AM, nodes int, fc cost.FaultsConfig, grp *Group) *Reliable {
	r := &Reliable{a: a, fc: fc, grp: grp, peers: make([]*relPeer, nodes)}
	r.hAck = a.Register(r.onAck)
	a.rel = r
	if grp != nil {
		grp.members = append(grp.members, r)
	}
	a.P.SetDiagnostic(r.Diagnose)
	return r
}

func (r *Reliable) peer(id int) *relPeer {
	pr := r.peers[id]
	if pr == nil {
		pr = &relPeer{buf: make(map[uint64]ni.Packet)}
		r.peers[id] = pr
	}
	return pr
}

// send assigns the next per-peer sequence number and injects the packet,
// blocking (while servicing the network) when the send window is full.
func (r *Reliable) send(pkt *ni.Packet) {
	pr := r.peer(pkt.Dst)
	for len(pr.unacked) >= r.fc.Window {
		r.step(stats.LibRetrans)
	}
	p := r.a.P
	p.ChargeStall(stats.LibRetrans, r.a.Cfg.RelSeqCycles)
	pr.nextSeq++
	pkt.Seq = pr.nextSeq
	pr.unacked = append(pr.unacked, relPkt{seq: pkt.Seq, pkt: *pkt, first: p.Clock()})
	r.outstanding++
	if len(pr.unacked) == 1 {
		pr.rto = r.fc.RTO
		pr.retries = 0
		pr.deadline = p.Clock() + pr.rto
	}
	r.a.NI.Send(pkt)
}

// progress retransmits any packet whose timeout has expired. Called from
// every Poll, so any code that services the network drives recovery. If a
// peer's retry budget is exhausted the run is aborted with a structured
// starvation report (this does not return).
func (r *Reliable) progress() {
	if r.outstanding == 0 {
		return
	}
	p := r.a.P
	now := p.Clock()
	for id, pr := range r.peers {
		if pr == nil || len(pr.unacked) == 0 || now < pr.deadline {
			continue
		}
		if pr.retries >= r.fc.MaxRetries {
			oldest := pr.unacked[0]
			p.Fail(&faults.StarvationError{
				Node: r.a.NI.Node, Peer: id,
				OldestUnacked: oldest.seq, Retries: pr.retries,
				FirstSent: oldest.first, Now: now,
			})
		}
		pr.retries++
		pr.rto *= 2
		if pr.rto > r.fc.RTOMax {
			pr.rto = r.fc.RTOMax
		}
		// Retransmit the oldest unacked packet only: the receiver's reorder
		// window holds everything that did arrive, so the cumulative ack
		// jumps past it once the hole is plugged. Send gets a private copy —
		// it stamps Arrive and the fault plan may corrupt the transmission,
		// neither of which may touch the stored clean copy.
		p.ChargeStall(stats.LibRetrans, r.a.Cfg.RelRetransCycles)
		p.Acct.Add(stats.CntRetransmissions, 1)
		rp := pr.unacked[0].pkt
		r.a.NI.Send(&rp)
		pr.deadline = p.Clock() + pr.rto
	}
}

// nextDeadline returns the earliest retransmit deadline over all peers with
// unacked packets, and whether one exists. Waiters use it to bound blocking.
func (r *Reliable) nextDeadline() (sim.Time, bool) {
	if r.outstanding == 0 {
		return 0, false
	}
	var dl sim.Time
	found := false
	for _, pr := range r.peers {
		if pr == nil || len(pr.unacked) == 0 {
			continue
		}
		if !found || pr.deadline < dl {
			dl, found = pr.deadline, true
		}
	}
	return dl, found
}

// receive is the transport's receiver half, called for every packet popped
// from the NI: checksum, duplicate filtering, in-order release, cumulative
// acks. Raw packets (seq 0: acks, lossless-era control) dispatch directly.
func (r *Reliable) receive(pkt *ni.Packet) error {
	p := r.a.P
	if pkt.Corrupt {
		// Modeled checksum failure: discard silently; if the packet was
		// sequenced the sender's timeout recovers it.
		p.ChargeStall(stats.LibRetrans, r.a.Cfg.RelSeqCycles)
		p.Acct.Add(stats.CntCorrupt, 1)
		return nil
	}
	if pkt.Seq == 0 {
		return r.a.dispatchInner(pkt)
	}
	// pkt may point at the shared dispatch buffer, which the release loop
	// below overwrites — latch the sender before dispatching anything.
	src := pkt.Src
	pr := r.peer(src)
	p.ChargeStall(stats.LibRetrans, r.a.Cfg.RelSeqCycles)
	switch seq := pkt.Seq; {
	case seq <= pr.cum:
		// Already delivered: a network duplicate, or a retransmission
		// after our ack was lost. Re-ack so the sender stops resending.
		p.Acct.Add(stats.CntDuplicates, 1)
		r.sendAck(src, pr.cum)
		return nil
	case func() bool { _, dup := pr.buf[seq]; return dup }():
		p.Acct.Add(stats.CntDuplicates, 1)
		return nil
	default:
		pr.buf[seq] = *pkt
	}
	// Release the in-order prefix to the handlers, through the dispatch
	// scratch buffer (a stack local would escape into the indirect handler
	// call and allocate per packet).
	var err error
	for {
		nxt, ok := pr.buf[pr.cum+1]
		if !ok {
			break
		}
		delete(pr.buf, pr.cum+1)
		pr.cum++
		r.a.recvBuf = nxt
		if e := r.a.dispatchInner(&r.a.recvBuf); e != nil && err == nil {
			err = e
		}
	}
	r.sendAck(src, pr.cum)
	return err
}

// sendAck transmits a cumulative acknowledgement (a raw 20-byte control
// packet; its bytes count as protocol control traffic).
func (r *Reliable) sendAck(dst int, cum uint64) {
	p := r.a.P
	p.ChargeStall(stats.LibRetrans, r.a.Cfg.RelAckCycles)
	p.Acct.Add(stats.CntAcks, 1)
	ack := ni.Packet{Dst: dst, Tag: r.hAck, Args: [4]uint64{cum}}
	r.a.NI.Send(&ack)
}

// onAck is the ack handler on the sending side: drop acknowledged packets
// from the window and reset the backoff on progress.
func (r *Reliable) onAck(pkt *ni.Packet) {
	pr := r.peer(pkt.Src)
	cum := pkt.Args[0]
	p := r.a.P
	p.ChargeStall(stats.LibRetrans, r.a.Cfg.RelAckCycles)
	n := 0
	for n < len(pr.unacked) && pr.unacked[n].seq <= cum {
		n++
	}
	if n == 0 {
		return
	}
	pr.unacked = pr.unacked[n:]
	r.outstanding -= n
	pr.rto = r.fc.RTO
	pr.retries = 0
	pr.deadline = p.Clock() + pr.rto
}

// step services the network once: a poll (which also drives retransmission)
// and, if nothing was handled, a wait bounded by the next transport
// deadline, charged to cat. Errors abort the run (they only arise on the
// faulty path, where continuing would corrupt the target program).
func (r *Reliable) step(cat stats.Category) {
	handled, err := r.a.Poll()
	if err != nil {
		r.a.P.Fail(err)
	}
	if handled {
		return
	}
	if dl, ok := r.nextDeadline(); ok {
		r.a.NI.WaitPacketUntil(cat, dl)
		return
	}
	r.a.NI.WaitPacket(cat)
}

// Service performs one non-blocking poll step; the barrier's poll-mode wait
// calls it each quantum so acks and retransmissions progress while a node
// waits at a barrier.
func (r *Reliable) Service() {
	if _, err := r.a.Poll(); err != nil {
		r.a.P.Fail(err)
	}
}

// Flush services the network until every packet this node sent has been
// acknowledged. CMMD's barrier calls it on entry so that no node can park
// in the hardware barrier with undelivered data (the message-passing
// analogue of a memory fence).
func (r *Reliable) Flush() {
	for r.outstanding > 0 {
		r.step(stats.LibRetrans)
	}
}

// Shutdown quiesces the node at the end of its program: flush our own
// sends, then keep servicing the network until the whole group has nothing
// outstanding — a peer may still be retransmitting data whose ack was lost,
// and it can only stop once we re-ack. Idle waiting here is charged to
// LibComp like any other end-of-program load imbalance.
func (r *Reliable) Shutdown() {
	r.down = true
	for {
		r.Flush()
		if r.grp == nil || r.grp.Quiet() {
			return
		}
		handled, err := r.a.Poll()
		if err != nil {
			r.a.P.Fail(err)
		}
		if handled {
			continue
		}
		// Nothing pending locally: sleep one timeout interval (or until a
		// packet arrives) and re-check the group.
		r.a.NI.WaitPacketUntil(stats.LibComp, r.a.P.Clock()+r.fc.RTO)
	}
}

// Diagnose renders the transport state for engine stall reports: per-peer
// oldest unacked sequence numbers and receive cursors.
func (r *Reliable) Diagnose() string {
	s := ""
	for id, pr := range r.peers {
		if pr == nil {
			continue
		}
		if len(pr.unacked) > 0 {
			s += fmt.Sprintf("[->%d unacked=%d oldest=%d retries=%d] ",
				id, len(pr.unacked), pr.unacked[0].seq, pr.retries)
		}
		if len(pr.buf) > 0 {
			s += fmt.Sprintf("[<-%d cum=%d buffered=%d] ", id, pr.cum, len(pr.buf))
		}
	}
	if s == "" {
		return ""
	}
	return "transport: " + s
}
