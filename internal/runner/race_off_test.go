//go:build !race

package runner

const raceEnabled = false
