package runner

import (
	"testing"

	"repro/internal/snapshot"
	"repro/internal/stats"
)

// TestHWCombiningAblation checks the in-network combining cost-model
// ablation end to end on Gauss, the reduction-bound application: arming
// hw_combining must shorten the run and strictly cut the reduction
// category (ReductionWait on the shared-memory machine, the LibComp the
// software tree ascent charges on the message-passing machine), stay
// fingerprint-identical across worker counts, and replay-verify from a
// checkpoint (the spec knob and the combiner's state must both survive the
// snapshot round-trip).
func TestHWCombiningAblation(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
		cat  stats.Category
	}{
		{"gauss-sm", Spec{App: "gauss", Machine: "sm", Procs: 8, Size: 64}, stats.ReductionWait},
		{"gauss-mp", Spec{App: "gauss", Machine: "mp", Procs: 8, Size: 64}, stats.LibComp},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			base, err := Run(tc.spec, Options{Workers: 1})
			if err != nil || base.Res.Err != nil {
				t.Fatalf("software run: %v / %v", err, base.Res.Err)
			}
			hwSpec := tc.spec
			hwSpec.HWCombining = true
			hw, err := Run(hwSpec, Options{Workers: 1})
			if err != nil || hw.Res.Err != nil {
				t.Fatalf("hw run: %v / %v", err, hw.Res.Err)
			}

			if hw.AppLine != base.AppLine {
				t.Errorf("answer changed: %q vs %q — combining must be a timing ablation only", hw.AppLine, base.AppLine)
			}
			baseCat := base.Res.Summary.CyclesAll(tc.cat)
			hwCat := hw.Res.Summary.CyclesAll(tc.cat)
			if hwCat >= baseCat {
				t.Errorf("category %v: hw %.0f >= software %.0f — combining reclaimed nothing", tc.cat, hwCat, baseCat)
			}
			if hw.Res.Elapsed >= base.Res.Elapsed {
				t.Errorf("elapsed: hw %d >= software %d", hw.Res.Elapsed, base.Res.Elapsed)
			}
			if hw.Fingerprint == base.Fingerprint {
				t.Errorf("hw and software runs share fingerprint %#x — the ablation changed nothing", hw.Fingerprint)
			}

			// Determinism: the combiner's host-side locking must not leak
			// into the simulated outcome.
			par, err := Run(hwSpec, Options{Workers: 4})
			if err != nil || par.Res.Err != nil {
				t.Fatalf("hw workers=4 run: %v / %v", err, par.Res.Err)
			}
			if par.Fingerprint != hw.Fingerprint {
				t.Errorf("hw fingerprint workers=4 %#x != workers=1 %#x", par.Fingerprint, hw.Fingerprint)
			}

			// Checkpoint/replay: combiner state encodes, spec round-trips.
			dir := t.TempDir()
			ck, err := Run(hwSpec, Options{CheckpointEvery: hw.Res.Elapsed / 3, CheckpointDir: dir})
			if err != nil || len(ck.Checkpoints) == 0 {
				t.Fatalf("checkpointed hw run: %v (%d checkpoints)", err, len(ck.Checkpoints))
			}
			snap, err := snapshot.ReadFile(ck.Checkpoints[0].Path)
			if err != nil {
				t.Fatalf("read checkpoint: %v", err)
			}
			sp, err := SpecFromSnapshot(snap)
			if err != nil {
				t.Fatalf("spec from snapshot: %v", err)
			}
			if !sp.HWCombining {
				t.Fatalf("hw_combining lost in the snapshot spec round-trip")
			}
			re, err := Run(*sp, Options{Resume: snap, Workers: 4})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !re.Verified {
				t.Fatalf("resume never verified")
			}
			if re.Fingerprint != hw.Fingerprint {
				t.Errorf("resumed fingerprint %#x != hw %#x", re.Fingerprint, hw.Fingerprint)
			}
		})
	}
}
