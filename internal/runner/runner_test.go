package runner

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cost"
	"repro/internal/snapshot"
)

// matrix is the shared replay-equivalence acceptance surface (bench.go);
// the benchmark suite consumes the same specs via TableSpec, so golden
// tests and benchmarks provably run identical configurations.
var matrix = EquivalenceMatrix()

// TestReplayEquivalence is the tentpole contract: for every configuration,
// an uninterrupted run, a run that writes checkpoints, and a run resumed
// from each of those checkpoints must produce bit-identical final
// accounting. The resume path verifies the full machine-state image at the
// checkpoint cycle, so any hidden nondeterminism fails loudly here.
func TestReplayEquivalence(t *testing.T) {
	for _, tc := range matrix {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			base, err := Run(tc.Spec, Options{})
			if err != nil {
				t.Fatalf("base run: %v", err)
			}
			if base.Res.Err != nil {
				t.Fatalf("base run aborted: %v", base.Res.Err)
			}
			if base.Fingerprint == 0 || len(base.StatsBytes) == 0 {
				t.Fatalf("base run produced no stats fingerprint")
			}

			every := base.Res.Elapsed / 3
			if every < 1 {
				t.Fatalf("run too short to checkpoint (elapsed %d)", base.Res.Elapsed)
			}
			dir := t.TempDir()
			ck, err := Run(tc.Spec, Options{CheckpointEvery: every, CheckpointDir: dir})
			if err != nil {
				t.Fatalf("checkpointed run: %v", err)
			}
			if ck.Fingerprint != base.Fingerprint {
				t.Fatalf("checkpointing perturbed the run: fingerprint %#x, want %#x",
					ck.Fingerprint, base.Fingerprint)
			}
			if len(ck.Checkpoints) < 2 {
				t.Fatalf("expected at least 2 checkpoints, got %d", len(ck.Checkpoints))
			}

			for _, idx := range []int{0, len(ck.Checkpoints) - 1} {
				cp := ck.Checkpoints[idx]
				snap, err := snapshot.ReadFile(cp.Path)
				if err != nil {
					t.Fatalf("read %s: %v", cp.Path, err)
				}
				sp, err := SpecFromSnapshot(snap)
				if err != nil {
					t.Fatalf("spec from %s: %v", cp.Path, err)
				}
				re, err := Run(*sp, Options{Resume: snap})
				if err != nil {
					t.Fatalf("resume from cycle %d: %v", cp.Cycle, err)
				}
				if !re.Verified {
					t.Fatalf("resume from cycle %d never verified", cp.Cycle)
				}
				if re.Fingerprint != base.Fingerprint {
					t.Fatalf("resume from cycle %d: fingerprint %#x, want %#x",
						cp.Cycle, re.Fingerprint, base.Fingerprint)
				}
				if !bytes.Equal(re.StatsBytes, base.StatsBytes) {
					t.Fatalf("resume from cycle %d: stats bytes differ", cp.Cycle)
				}
				if re.AppLine != base.AppLine {
					t.Fatalf("resume from cycle %d: app answer %q, want %q",
						cp.Cycle, re.AppLine, base.AppLine)
				}
			}
		})
	}
}

// TestRunUntil checks the planned-stop path used for bisection: the run
// halts at the first quantum boundary at or after the requested cycle, with
// partial stats and no error beyond the stop report.
func TestRunUntil(t *testing.T) {
	spec := Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 48}
	base, err := Run(spec, Options{})
	if err != nil || base.Res.Err != nil {
		t.Fatalf("base run: %v / %v", err, base.Res.Err)
	}
	until := base.Res.Elapsed / 2
	got, err := Run(spec, Options{RunUntil: until})
	if err != nil {
		t.Fatalf("run-until: %v", err)
	}
	if !got.Stopped {
		t.Fatalf("run did not stop (err %v)", got.Res.Err)
	}
	if got.StoppedAt < until {
		t.Fatalf("stopped at %d, before requested %d", got.StoppedAt, until)
	}
	if got.Fingerprint == base.Fingerprint {
		t.Fatalf("half-run fingerprint equals full-run fingerprint")
	}
	// Planned stops are deterministic: same request, same boundary.
	again, err := Run(spec, Options{RunUntil: until})
	if err != nil {
		t.Fatalf("run-until again: %v", err)
	}
	if again.StoppedAt != got.StoppedAt || again.Fingerprint != got.Fingerprint {
		t.Fatalf("planned stop not deterministic: %d/%#x vs %d/%#x",
			again.StoppedAt, again.Fingerprint, got.StoppedAt, got.Fingerprint)
	}
}

// TestResumeDetectsTampering checks the divergence detector: a snapshot
// whose recorded cycle or stats no longer match the replay must abort with
// a *ReplayDivergenceError, not continue silently.
func TestResumeDetectsTampering(t *testing.T) {
	spec := Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 48}
	dir := t.TempDir()
	base, err := Run(spec, Options{})
	if err != nil {
		t.Fatalf("base run: %v", err)
	}
	ck, err := Run(spec, Options{CheckpointEvery: base.Res.Elapsed / 3, CheckpointDir: dir})
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	snap, err := snapshot.ReadFile(ck.Checkpoints[0].Path)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}

	var div *ReplayDivergenceError

	// A cycle that is not a quantum boundary of the replay.
	tampered := *snap
	tampered.Cycle++
	if _, err := Run(spec, Options{Resume: &tampered}); !errors.As(err, &div) {
		t.Fatalf("tampered cycle: got %v, want ReplayDivergenceError", err)
	} else if div.What != "boundary" {
		t.Fatalf("tampered cycle: diverged on %q, want boundary", div.What)
	}

	// Stats that do not match the replayed accounting.
	tampered = *snap
	tampered.Stats = append(append([]byte(nil), snap.Stats...), 0)
	if _, err := Run(spec, Options{Resume: &tampered}); !errors.As(err, &div) {
		t.Fatalf("tampered stats: got %v, want ReplayDivergenceError", err)
	} else if div.What != "stats" {
		t.Fatalf("tampered stats: diverged on %q, want stats", div.What)
	}

	// A checkpoint cycle past the end of the run.
	tampered = *snap
	tampered.Cycle = int64(base.Res.Elapsed) * 10
	if _, err := Run(spec, Options{Resume: &tampered}); !errors.As(err, &div) {
		t.Fatalf("cycle past end: got %v, want ReplayDivergenceError", err)
	} else if div.What != "end" {
		t.Fatalf("cycle past end: diverged on %q, want end", div.What)
	}
}

// TestSpecValidate pins the spec-level error paths resume depends on.
func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{App: "nope", Machine: "mp", Procs: 4},
		{App: "gauss", Machine: "vax", Procs: 4},
		{App: "gauss", Machine: "sm", Procs: 4, Faults: &cost.FaultsConfig{Seed: 1}},
		{App: "gauss", Machine: "mp", Procs: 4, SMCheck: true},
		{App: "gauss", Machine: "mp", Procs: 4, Shape: "star"},
		{App: "em3d", Machine: "sm", Procs: 4, Policy: "striped"},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v validated, want error", s)
		}
	}
	if _, err := Run(Spec{App: "nope", Machine: "mp", Procs: 4}, Options{}); err == nil {
		t.Errorf("Run accepted an invalid spec")
	}
}
