package runner

import "repro/internal/cost"

// This file is the single source of run configurations shared by the
// benchmark suite (bench_test.go, bench_parallel_test.go at the repo root)
// and the golden replay-equivalence tests: both consume the same Spec
// values, so a benchmark provably simulates the configuration the
// correctness tests verified, and vice versa.

// NamedSpec pairs a Spec with a stable name for table-driven harnesses.
type NamedSpec struct {
	Name string
	Spec Spec
}

// TableProcs is the processor count of every paper-table experiment
// (Table 1: 32-node machines).
const TableProcs = 32

// TableSpec returns the full-scale spec behind the paper-table benchmark
// for app on machine: 32 processors, paper-default problem sizes (Size and
// Iters zero mean each app's DefaultParams).
func TableSpec(app, machine string) Spec {
	return Spec{App: app, Machine: machine, Procs: TableProcs}
}

// EquivalenceMatrix is the replay-equivalence acceptance surface: every app
// on every machine at test-sized problems, plus one fault-injected
// configuration per machine. TestReplayEquivalence, the batched-accounting
// equivalence test, and the parallel-determinism matrix all iterate it.
func EquivalenceMatrix() []NamedSpec {
	return []NamedSpec{
		{"em3d-mp", Spec{App: "em3d", Machine: "mp", Procs: 4, Size: 40, Iters: 3}},
		{"em3d-sm", Spec{App: "em3d", Machine: "sm", Procs: 4, Size: 40, Iters: 3}},
		{"gauss-mp", Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 48}},
		{"gauss-sm", Spec{App: "gauss", Machine: "sm", Procs: 4, Size: 48}},
		{"lcp-mp", Spec{App: "lcp", Machine: "mp", Procs: 4, Size: 128, Iters: 3}},
		{"lcp-sm", Spec{App: "lcp", Machine: "sm", Procs: 4, Size: 128, Iters: 3}},
		{"mse-mp", Spec{App: "mse", Machine: "mp", Procs: 4, Size: 32, Iters: 2}},
		{"mse-sm", Spec{App: "mse", Machine: "sm", Procs: 4, Size: 32, Iters: 2}},
		{"em3d-mp-faults", Spec{App: "em3d", Machine: "mp", Procs: 4, Size: 40, Iters: 3,
			Faults: &cost.FaultsConfig{Seed: 7, DropRate: 0.02, DupRate: 0.01, DelayRate: 0.05}}},
		{"gauss-sm-faults", Spec{App: "gauss", Machine: "sm", Procs: 4, Size: 48, SMCheck: true,
			SMFaults: &cost.SMFaultsConfig{Seed: 7, NACKRate: 0.02, ReorderRate: 0.02}}},

		// P=64 rows: every app/machine pair at twice the paper's machine
		// size, with per-processor working sets shrunk so replay, parallel
		// determinism, and batched-accounting equivalence all get exercised
		// on the scaling dispatcher's wide-machine path (batch chunking,
		// compacted per-proc state) rather than only at P=4.
		{"em3d-mp-p64", Spec{App: "em3d", Machine: "mp", Procs: 64, Size: 8, Iters: 2}},
		{"em3d-sm-p64", Spec{App: "em3d", Machine: "sm", Procs: 64, Size: 8, Iters: 2}},
		{"gauss-mp-p64", Spec{App: "gauss", Machine: "mp", Procs: 64, Size: 64}},
		{"gauss-sm-p64", Spec{App: "gauss", Machine: "sm", Procs: 64, Size: 64}},
		{"lcp-mp-p64", Spec{App: "lcp", Machine: "mp", Procs: 64, Size: 128, Iters: 2}},
		{"lcp-sm-p64", Spec{App: "lcp", Machine: "sm", Procs: 64, Size: 128, Iters: 2}},
		// mse-mp needs a small body count and several iterations: its long
		// init phase makes quantum boundaries sparse, and the replay test
		// needs enough boundaries in the interactive region for two
		// checkpoints.
		{"mse-mp-p64", Spec{App: "mse", Machine: "mp", Procs: 64, Size: 64, Iters: 6}},
		{"mse-sm-p64", Spec{App: "mse", Machine: "sm", Procs: 64, Size: 64, Iters: 6}},
	}
}
