package runner

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/snapshot"
)

// This file defines the canonical identity of a run: two Specs that provably
// build the identical machine and program must map to the same cache key, so
// a content-addressed result cache (internal/serve) is sound by construction
// — the simulator is deterministic, so equal keys imply bit-identical stats.

// Normalized returns the spec in canonical form: default knob spellings are
// collapsed to their zero values, and knobs the named machine/app ignores
// are cleared. Two specs describe the same run iff their normalized forms
// are equal; Normalized never changes what a spec runs (Config and runApp
// treat the normalized and original forms identically).
func (s Spec) Normalized() Spec {
	n := s
	// Default spellings: shape() maps "" and "lopsided" to the same tree,
	// policy() maps "" and "rr" to round-robin, and Config leaves the
	// paper-default cache size alone whether it is 0 or spelled out.
	if n.Shape == "lopsided" {
		n.Shape = ""
	}
	if n.Policy == "rr" {
		n.Policy = ""
	}
	if n.CacheBytes == cost.Default(n.Procs).CacheBytes {
		n.CacheBytes = 0
	}
	// Knobs no code path reads for this configuration: the network shape
	// only reaches MP machines, and the allocation policy only reaches
	// EM3D-SM (see runApp).
	if n.Machine == "sm" {
		n.Shape = ""
	}
	if !(n.Machine == "sm" && n.App == "em3d") {
		n.Policy = ""
	}
	return n
}

// cacheKeyVersion tags the key encoding; bump it whenever the Spec fields
// or their encoding change so stale cache entries miss instead of aliasing.
const cacheKeyVersion = "wwt-spec-key-v1"

// CacheKey returns the content address of the run this spec describes: the
// FNV-1a hash of a canonical fixed-order encoding of the normalized spec.
// It deliberately does not hash the spec's JSON (field order, omitted
// defaults, and unknown fields would all perturb it).
func (s Spec) CacheKey() uint64 {
	n := s.Normalized()
	var e snapshot.Enc
	e.Str(cacheKeyVersion)
	e.Str(n.App)
	e.Str(n.Machine)
	e.I64(int64(n.Procs))
	e.I64(int64(n.CacheBytes))
	e.Str(n.Shape)
	e.Str(n.Policy)
	e.I64(int64(n.Size))
	e.I64(int64(n.Iters))
	e.Bool(n.Faults != nil)
	if f := n.Faults; f != nil {
		e.U64(f.Seed)
		e.F64(f.DropRate)
		e.F64(f.DupRate)
		e.F64(f.CorruptRate)
		e.F64(f.DelayRate)
		e.I64(f.MaxDelay)
		e.I64(f.RTO)
		e.I64(f.RTOMax)
		e.I64(int64(f.MaxRetries))
		e.I64(int64(f.Window))
	}
	e.Bool(n.SMCheck)
	e.Bool(n.SMFaults != nil)
	if f := n.SMFaults; f != nil {
		e.U64(f.Seed)
		e.F64(f.NACKRate)
		e.F64(f.ReorderRate)
		e.F64(f.DelayRate)
		e.I64(f.MaxDelay)
		e.I64(f.Backoff)
		e.I64(f.BackoffMax)
		e.I64(int64(f.RetryBudget))
	}
	e.I64(n.SMWatchdog)
	return snapshot.Hash(e.Bytes())
}

// KeyString is CacheKey rendered as the fixed-width hex form used in file
// names, job records, and the HTTP API.
func (s Spec) KeyString() string { return fmt.Sprintf("%016x", s.CacheKey()) }
