package runner

import (
	"bytes"
	"testing"

	"repro/internal/snapshot"
)

// TestParallelDeterminismMatrix is the serial≡parallel contract at the
// system level: every configuration in the replay-equivalence matrix —
// including the fault-injected MP and SM entries — must produce the same
// stats fingerprint, the same canonical stats bytes, and the same
// application answer whether the engine dispatches processors serially or
// across a worker pool. Run it under -race to also catch any cross-
// processor access the staging discipline missed.
func TestParallelDeterminismMatrix(t *testing.T) {
	for _, tc := range matrix {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			serial, err := Run(tc.Spec, Options{Workers: 1})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			if serial.Res.Err != nil {
				t.Fatalf("serial run aborted: %v", serial.Res.Err)
			}
			for _, workers := range []int{2, 4} {
				par, err := Run(tc.Spec, Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d run: %v", workers, err)
				}
				if par.Fingerprint != serial.Fingerprint {
					t.Errorf("workers=%d fingerprint %#x, want serial %#x",
						workers, par.Fingerprint, serial.Fingerprint)
				}
				if !bytes.Equal(par.StatsBytes, serial.StatsBytes) {
					t.Errorf("workers=%d canonical stats bytes differ from serial", workers)
				}
				if par.AppLine != serial.AppLine {
					t.Errorf("workers=%d app answer %q, want %q",
						workers, par.AppLine, serial.AppLine)
				}
			}
		})
	}
}

// TestParallelCheckpointEquivalence checks that the checkpoint layer's
// quantum hooks observe serial-equivalent quiescent state under parallel
// dispatch: a parallel run's snapshots must replay-verify in a serial
// resume, and vice versa, landing on the serial run's fingerprint.
func TestParallelCheckpointEquivalence(t *testing.T) {
	for _, name := range []string{"em3d-mp-faults", "gauss-sm-faults"} {
		var spec Spec
		found := false
		for _, tc := range matrix {
			if tc.Name == name {
				spec, found = tc.Spec, true
			}
		}
		if !found {
			t.Fatalf("matrix entry %q missing", name)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial, err := Run(spec, Options{Workers: 1})
			if err != nil || serial.Res.Err != nil {
				t.Fatalf("serial run: %v / %v", err, serial.Res.Err)
			}
			dir := t.TempDir()
			par, err := Run(spec, Options{
				Workers: 4, CheckpointEvery: serial.Res.Elapsed / 3, CheckpointDir: dir,
			})
			if err != nil {
				t.Fatalf("parallel checkpointed run: %v", err)
			}
			if par.Fingerprint != serial.Fingerprint {
				t.Fatalf("parallel checkpointed fingerprint %#x, want %#x",
					par.Fingerprint, serial.Fingerprint)
			}
			if len(par.Checkpoints) == 0 {
				t.Fatal("parallel run wrote no checkpoints")
			}
			cp := par.Checkpoints[len(par.Checkpoints)-1]
			snap, err := snapshot.ReadFile(cp.Path)
			if err != nil {
				t.Fatalf("read %s: %v", cp.Path, err)
			}
			sp, err := SpecFromSnapshot(snap)
			if err != nil {
				t.Fatalf("spec from snapshot: %v", err)
			}
			// Cross-resume: serial replay must byte-match the state image a
			// parallel run captured, and parallel replay the serial image.
			for _, workers := range []int{1, 4} {
				re, err := Run(*sp, Options{Resume: snap, Workers: workers})
				if err != nil {
					t.Fatalf("resume (workers=%d) from parallel snapshot: %v", workers, err)
				}
				if !re.Verified {
					t.Fatalf("resume (workers=%d) never verified", workers)
				}
				if re.Fingerprint != serial.Fingerprint {
					t.Fatalf("resume (workers=%d) fingerprint %#x, want %#x",
						workers, re.Fingerprint, serial.Fingerprint)
				}
			}
		})
	}
}
