package runner

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/snapshot"
)

// This file pins down the canonical identity of a run (Normalized/CacheKey):
// the content-addressed result cache in internal/serve is only sound if
// every pair of specs that provably runs the same simulation shares a key,
// and no pair that runs different simulations does.

// TestNormalizedCollapsesDefaultSpellings: each documented equivalence maps
// to the same normalized form and therefore the same cache key.
func TestNormalizedCollapsesDefaultSpellings(t *testing.T) {
	base := Spec{App: "gauss", Machine: "mp", Procs: 8, Size: 64}
	pairs := []struct {
		name string
		a, b Spec
	}{
		{"lopsided is the default shape",
			base,
			func() Spec { s := base; s.Shape = "lopsided"; return s }()},
		{"rr is the default policy",
			base,
			func() Spec { s := base; s.Policy = "rr"; return s }()},
		{"paper-default cache size spelled out",
			base,
			func() Spec { s := base; s.CacheBytes = cost.Default(8).CacheBytes; return s }()},
		{"shape is ignored on sm",
			Spec{App: "gauss", Machine: "sm", Procs: 8, Size: 64},
			Spec{App: "gauss", Machine: "sm", Procs: 8, Size: 64, Shape: "binary"}},
		{"policy is ignored off em3d-sm",
			Spec{App: "lcp", Machine: "mp", Procs: 8, Size: 64},
			Spec{App: "lcp", Machine: "mp", Procs: 8, Size: 64, Policy: "local"}},
	}
	for _, p := range pairs {
		if err := p.a.Validate(); err != nil {
			t.Fatalf("%s: spec a invalid: %v", p.name, err)
		}
		if err := p.b.Validate(); err != nil {
			t.Fatalf("%s: spec b invalid: %v", p.name, err)
		}
		if !reflect.DeepEqual(p.a.Normalized(), p.b.Normalized()) {
			t.Errorf("%s: normalized forms differ:\n a %+v\n b %+v", p.name, p.a.Normalized(), p.b.Normalized())
		}
		if p.a.CacheKey() != p.b.CacheKey() {
			t.Errorf("%s: keys differ: %s vs %s", p.name, p.a.KeyString(), p.b.KeyString())
		}
	}

	// And the one place policy is real: em3d on sm must NOT collapse it.
	rr := Spec{App: "em3d", Machine: "sm", Procs: 8, Size: 64, Policy: "rr"}
	local := Spec{App: "em3d", Machine: "sm", Procs: 8, Size: 64, Policy: "local"}
	if rr.CacheKey() == local.CacheKey() {
		t.Error("em3d-sm allocation policy was collapsed out of the key")
	}
}

// randSpec draws a valid spec from the full knob space.
func randSpec(rng *rand.Rand) Spec {
	apps := []string{"mse", "gauss", "em3d", "lcp", "alcp"}
	machines := []string{"mp", "sm"}
	shapes := []string{"", "flat", "binary", "lopsided"}
	policies := []string{"", "rr", "local"}
	s := Spec{
		App:     apps[rng.Intn(len(apps))],
		Machine: machines[rng.Intn(len(machines))],
		Procs:   1 + rng.Intn(64),
		Size:    rng.Intn(200),
		Iters:   rng.Intn(8),
	}
	if s.Machine == "mp" {
		s.Shape = shapes[rng.Intn(len(shapes))]
		if rng.Intn(2) == 0 {
			s.Faults = &cost.FaultsConfig{Seed: rng.Uint64(), DropRate: rng.Float64() / 2}
		}
	} else {
		s.SMCheck = rng.Intn(2) == 0
		if rng.Intn(2) == 0 {
			s.SMFaults = &cost.SMFaultsConfig{Seed: rng.Uint64(), NACKRate: rng.Float64() / 2}
		}
	}
	s.Policy = policies[rng.Intn(len(policies))]
	if rng.Intn(4) == 0 {
		s.CacheBytes = cost.Default(s.Procs).CacheBytes // default spelled out
	}
	return s
}

// TestCacheKeyProperties: over a deterministic random corpus, (1)
// normalization is idempotent, (2) a spec and its normalized form share a
// key, (3) normalization survives a JSON round trip, and (4) specs with
// different normalized forms get different keys (FNV collisions over a
// corpus this size would indicate a bug, not bad luck).
func TestCacheKeyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	byKey := map[uint64]Spec{}
	for i := 0; i < 500; i++ {
		s := randSpec(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("corpus %d: invalid spec %+v: %v", i, s, err)
		}
		n := s.Normalized()
		if !reflect.DeepEqual(n, n.Normalized()) {
			t.Fatalf("corpus %d: Normalized not idempotent: %+v vs %+v", i, n, n.Normalized())
		}
		if s.CacheKey() != n.CacheKey() {
			t.Fatalf("corpus %d: spec and normalized form disagree on key", i)
		}

		blob, err := json.Marshal(&s)
		if err != nil {
			t.Fatal(err)
		}
		var rt Spec
		if err := json.Unmarshal(blob, &rt); err != nil {
			t.Fatal(err)
		}
		if rt.CacheKey() != s.CacheKey() {
			t.Fatalf("corpus %d: JSON round trip changed the key", i)
		}

		if prev, dup := byKey[s.CacheKey()]; dup {
			if !reflect.DeepEqual(prev.Normalized(), n) {
				t.Fatalf("corpus %d: key collision between different runs:\n %+v\n %+v", i, prev, s)
			}
		}
		byKey[s.CacheKey()] = s
	}
}

// TestCacheKeyIgnoresUnknownJSONFields: a client sending extra fields (a
// newer client, a hand-written payload) must land on the same cache entry.
func TestCacheKeyIgnoresUnknownJSONFields(t *testing.T) {
	want := Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 48}
	var got Spec
	payload := `{"app":"gauss","machine":"mp","procs":4,"size":48,
		"comment":"added by a future client","priority":9}`
	if err := json.Unmarshal([]byte(payload), &got); err != nil {
		t.Fatal(err)
	}
	if got.CacheKey() != want.CacheKey() {
		t.Fatalf("unknown JSON fields perturbed the key: %s vs %s", got.KeyString(), want.KeyString())
	}
}

// TestEqualKeysEqualFingerprints closes the loop: two differently-spelled
// specs with the same cache key produce bit-identical stats fingerprints,
// which is the property that makes serving one's cached result for the
// other sound.
func TestEqualKeysEqualFingerprints(t *testing.T) {
	a := Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 48}
	b := Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 48,
		Shape: "lopsided", Policy: "rr", CacheBytes: cost.Default(4).CacheBytes}
	if a.CacheKey() != b.CacheKey() {
		t.Fatalf("setup: keys differ: %s vs %s", a.KeyString(), b.KeyString())
	}
	oa, err := Run(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ob, err := Run(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if oa.Fingerprint != ob.Fingerprint {
		t.Fatalf("equal keys, different fingerprints: %#x vs %#x", oa.Fingerprint, ob.Fingerprint)
	}
}

// TestValidateRejects covers every error path, including the bounds that
// protect the sweep service from hostile or fat-fingered HTTP payloads.
func TestValidateRejects(t *testing.T) {
	ok := Spec{App: "gauss", Machine: "mp", Procs: 4}
	if err := ok.Validate(); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"unknown app", func(s *Spec) { s.App = "doom" }},
		{"empty app", func(s *Spec) { s.App = "" }},
		{"unknown machine", func(s *Spec) { s.Machine = "vax" }},
		{"zero procs", func(s *Spec) { s.Procs = 0 }},
		{"negative procs", func(s *Spec) { s.Procs = -4 }},
		{"excessive procs", func(s *Spec) { s.Procs = MaxProcs + 1 }},
		{"negative cache", func(s *Spec) { s.CacheBytes = -1 }},
		{"negative size", func(s *Spec) { s.Size = -8 }},
		{"negative iters", func(s *Spec) { s.Iters = -1 }},
		{"unknown shape", func(s *Spec) { s.Shape = "torus" }},
		{"unknown policy", func(s *Spec) { s.Policy = "numa" }},
		{"network faults on sm", func(s *Spec) { s.Machine = "sm"; s.Faults = &cost.FaultsConfig{DropRate: 0.1} }},
		{"coherence checks on mp", func(s *Spec) { s.SMCheck = true }},
		{"coherence faults on mp", func(s *Spec) { s.SMFaults = &cost.SMFaultsConfig{NACKRate: 0.1} }},
		{"watchdog on mp", func(s *Spec) { s.SMWatchdog = 1000 }},
	}
	for _, c := range cases {
		s := ok
		c.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, s)
		}
	}
}

// TestValidateProcsBoundary pins the procs cap itself: exactly MaxProcs
// validates (the scaling studies need every proc up to the cap), one past
// it does not.
func TestValidateProcsBoundary(t *testing.T) {
	s := Spec{App: "gauss", Machine: "mp", Procs: MaxProcs}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate rejected procs=%d (the documented cap): %v", MaxProcs, err)
	}
	s.Procs = MaxProcs + 1
	if err := s.Validate(); err == nil {
		t.Errorf("Validate accepted procs=%d (cap is %d)", s.Procs, MaxProcs)
	}
	if MaxProcs < 1024 {
		t.Errorf("MaxProcs = %d blocks the roadmap's 1024-proc study", MaxProcs)
	}
}

// TestInterruptPreemptsAndResumes exercises the runner-level preemption
// primitive directly: an interrupt fired mid-run checkpoints at the next
// quantum boundary and aborts with a typed error; a second run resuming
// from that checkpoint verifies the replay and matches the uninterrupted
// fingerprint.
func TestInterruptPreemptsAndResumes(t *testing.T) {
	spec := Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 48}
	base, err := Run(spec, Options{})
	if err != nil || base.Res.Err != nil {
		t.Fatalf("baseline: %v / %v", err, base.Res.Err)
	}

	dir := t.TempDir()
	intr := &Interrupt{}
	intr.Fire() // already pending when the run starts: preempt at the first non-zero boundary
	out, err := Run(spec, Options{CheckpointDir: dir, Interrupt: intr})
	if err != nil {
		t.Fatalf("preempted run errored at the harness level: %v", err)
	}
	if !out.Preempted || out.PreemptPath == "" {
		t.Fatalf("run did not preempt: %+v", out)
	}
	perr, ok := out.Res.Err.(*PreemptedError)
	if !ok {
		t.Fatalf("abort error %T (%v), want *PreemptedError", out.Res.Err, out.Res.Err)
	}
	if perr.Cycle != out.PreemptedAt || perr.Cycle <= 0 {
		t.Fatalf("preempted at cycle %d (outcome says %d), want a positive boundary", perr.Cycle, out.PreemptedAt)
	}

	snap, err := snapshot.ReadFile(out.PreemptPath)
	if err != nil {
		t.Fatalf("reading preempt checkpoint: %v", err)
	}
	res, err := Run(spec, Options{Resume: snap})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.Res.Err != nil {
		t.Fatalf("resumed run aborted: %v", res.Res.Err)
	}
	if !res.Verified {
		t.Fatal("resumed run never verified through the checkpoint")
	}
	if res.Fingerprint != base.Fingerprint {
		t.Fatalf("fingerprint %#x after preempt+resume, want %#x", res.Fingerprint, base.Fingerprint)
	}
}
