// Package runner builds and executes one application/machine configuration
// from a serializable specification, with optional checkpointing, planned
// stops, and replay-verified resume.
//
// This is the layer behind wwtsim's -checkpoint-every/-resume/-run-until
// flags and the replay-equivalence test harness. A Spec round-trips through
// JSON inside every snapshot, so a resume rebuilds the identical machine
// from the file alone. Resume is replay-based (see package snapshot): the
// run re-executes from cycle zero and, at the recorded checkpoint cycle,
// the reconstructed machine state and accounting must be byte-identical to
// the snapshot — any mismatch aborts with a *ReplayDivergenceError naming
// what diverged.
package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync/atomic"

	"repro/internal/apps/em3d"
	"repro/internal/apps/gauss"
	"repro/internal/apps/lcp"
	"repro/internal/apps/mse"
	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/parmacs"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/vfs"
)

// MaxProcs bounds Spec.Procs. 4096 comfortably covers the scaling studies
// on the roadmap (the paper's machines stop at 64; the 1024-proc synthetic
// study needs headroom beyond that) while still rejecting nonsense.
const MaxProcs = 4096

// Spec is a complete, JSON-serializable run description: everything needed
// to rebuild the identical machine and program. It is stored verbatim in
// every snapshot.
type Spec struct {
	App     string `json:"app"`     // mse | gauss | em3d | lcp | alcp
	Machine string `json:"machine"` // mp | sm
	Procs   int    `json:"procs"`

	CacheBytes int    `json:"cache_bytes,omitempty"` // 0 = paper default (256 KB)
	Shape      string `json:"shape,omitempty"`       // flat | binary | lopsided (default)
	Policy     string `json:"policy,omitempty"`      // rr (default) | local
	Size       int    `json:"size,omitempty"`        // app-specific size override
	Iters      int    `json:"iters,omitempty"`       // iteration override

	Faults     *cost.FaultsConfig   `json:"faults,omitempty"`
	SMCheck    bool                 `json:"sm_check,omitempty"`
	SMFaults   *cost.SMFaultsConfig `json:"sm_faults,omitempty"`
	SMWatchdog int64                `json:"sm_watchdog,omitempty"`

	// HWCombining arms the in-network hardware combining tree ablation:
	// reductions deposit at the network port instead of ascending the
	// software tree (cost.Config.HWCombining). Part of Spec — it changes the
	// simulated hardware, so it must survive the snapshot round-trip.
	HWCombining bool `json:"hw_combining,omitempty"`

	// StepProcs selects the step (continuation) form of the application:
	// each node runs as an engine-dispatched state machine instead of a
	// goroutine. Fingerprint-identical to the coroutine form by contract
	// (the cross-form equality tests pin it), so checkpoints written by one
	// form resume under the other; part of Spec because only some apps have
	// step implementations and Validate must reject the rest up front.
	StepProcs bool `json:"step_procs,omitempty"`
}

// StepUnsupportedError reports a spec requesting step processors for a
// configuration without a step implementation (an app that only exists in
// coroutine form, or a robustness layer that must suspend mid-call).
type StepUnsupportedError struct {
	App     string
	Machine string
	Reason  string
}

func (e *StepUnsupportedError) Error() string {
	return fmt.Sprintf("runner: step_procs unsupported for %s/%s: %s",
		e.App, e.Machine, e.Reason)
}

// Validate rejects specs that name no runnable configuration.
func (s *Spec) Validate() error {
	switch s.App {
	case "mse", "gauss", "em3d", "lcp", "alcp":
	default:
		return fmt.Errorf("runner: unknown app %q", s.App)
	}
	switch s.Machine {
	case "mp", "sm":
	default:
		return fmt.Errorf("runner: unknown machine %q", s.Machine)
	}
	if s.Procs < 1 || s.Procs > MaxProcs {
		return fmt.Errorf("runner: procs %d out of supported range [1,%d]", s.Procs, MaxProcs)
	}
	if s.CacheBytes < 0 || s.Size < 0 || s.Iters < 0 {
		return fmt.Errorf("runner: negative size/iteration override")
	}
	switch s.Shape {
	case "", "flat", "binary", "lopsided":
	default:
		return fmt.Errorf("runner: unknown shape %q", s.Shape)
	}
	switch s.Policy {
	case "", "rr", "local":
	default:
		return fmt.Errorf("runner: unknown policy %q", s.Policy)
	}
	if s.Faults != nil && s.Machine != "mp" {
		return fmt.Errorf("runner: network fault injection requires machine mp")
	}
	if (s.SMCheck || s.SMFaults != nil || s.SMWatchdog > 0) && s.Machine != "sm" {
		return fmt.Errorf("runner: coherence robustness controls require machine sm")
	}
	if s.StepProcs {
		switch s.App {
		case "em3d", "lcp":
		default:
			return &StepUnsupportedError{App: s.App, Machine: s.Machine,
				Reason: "app has no step implementation"}
		}
		if s.Faults != nil {
			return &StepUnsupportedError{App: s.App, Machine: s.Machine,
				Reason: "reliable transport suspends inside library calls"}
		}
		if s.SMFaults != nil {
			return &StepUnsupportedError{App: s.App, Machine: s.Machine,
				Reason: "control-fault injection is untested under step dispatch"}
		}
		if s.HWCombining {
			return &StepUnsupportedError{App: s.App, Machine: s.Machine,
				Reason: "the hardware combiner suspends its depositors"}
		}
	}
	return nil
}

// Config derives the hardware configuration the spec implies.
func (s *Spec) Config() cost.Config {
	cfg := cost.Default(s.Procs)
	if s.CacheBytes > 0 {
		cfg.CacheBytes = s.CacheBytes
	}
	cfg.Faults = s.Faults
	cfg.SMCheck = s.SMCheck
	cfg.SMFaults = s.SMFaults
	cfg.SMWatchdog = s.SMWatchdog
	cfg.HWCombining = s.HWCombining
	return cfg
}

func (s *Spec) shape() cmmd.Shape {
	switch s.Shape {
	case "flat":
		return cmmd.Flat
	case "binary":
		return cmmd.Binary
	default:
		return cmmd.LopSided
	}
}

func (s *Spec) policy() parmacs.Policy {
	if s.Policy == "local" {
		return parmacs.Local
	}
	return parmacs.RoundRobin
}

// SpecFromSnapshot recovers the run specification embedded in a snapshot.
func SpecFromSnapshot(snap *snapshot.Snapshot) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(snap.Spec, &s); err != nil {
		return nil, fmt.Errorf("runner: snapshot spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Options controls checkpointing and resume for one run.
type Options struct {
	// CheckpointEvery, when positive, writes a snapshot at the first quantum
	// boundary at or after every multiple of this many cycles.
	CheckpointEvery sim.Time
	// CheckpointDir is where checkpoint files land (default: current
	// directory). Files are named ckpt-<cycle>.wws.
	CheckpointDir string
	// RunUntil, when positive, stops the run at the first quantum boundary
	// at or after this cycle with a clean *sim.RunStopError.
	RunUntil sim.Time
	// Resume, when non-nil, arms replay verification against this snapshot:
	// at the snapshot's cycle the replayed state and stats must be
	// byte-identical, else the run aborts with a *ReplayDivergenceError.
	Resume *snapshot.Snapshot
	// Workers bounds intra-run host parallelism (cost.Config.Workers /
	// sim.Engine.Workers): 0 uses GOMAXPROCS, 1 forces serial dispatch. A
	// host knob, deliberately not part of Spec: any value yields the same
	// fingerprint, so it lives beside the other run-local options.
	Workers int
	// PerAccessStats switches cost accounting to the reference per-access
	// mode (every charge posted to the phase buckets immediately) instead of
	// the default batched per-quantum accumulators. The two modes are
	// fingerprint-identical by contract — TestBatchedStatsEquivalence pins
	// it — so, like Workers, this is a host-side diagnostic knob and not
	// part of Spec.
	PerAccessStats bool
	// Interrupt, when non-nil, arms cooperative preemption: once Fire is
	// called (from any goroutine — a wall-clock deadline timer, a drain
	// signal), the run stops at the next quantum boundary, writes a
	// preemption checkpoint to CheckpointDir, and aborts with a
	// *PreemptedError. The checkpoint is an ordinary snapshot, so a later
	// Run with Resume picks the job up from that cycle (replay-verified)
	// instead of discarding the work.
	Interrupt *Interrupt
	// FS, when non-nil, routes checkpoint writes through an explicit
	// filesystem (the sweep service passes its fault-injectable one). nil
	// means the host filesystem.
	FS vfs.FS
}

func (o *Options) fs() vfs.FS {
	if o.FS != nil {
		return o.FS
	}
	return vfs.OS{}
}

// Interrupt is a one-shot, goroutine-safe preemption request. The zero
// value is ready to use; hand the same value to Options.Interrupt and to
// whatever decides to preempt (deadline timer, SIGTERM drain).
type Interrupt struct{ fired atomic.Bool }

// Fire requests preemption. Safe to call from any goroutine, any number of
// times; the run observes it at its next quantum boundary.
func (i *Interrupt) Fire() { i.fired.Store(true) }

// Fired reports whether Fire has been called.
func (i *Interrupt) Fired() bool { return i.fired.Load() }

// PreemptedError is the planned-abort report of an interrupted run: the
// quantum boundary it stopped on and the checkpoint written there. It is a
// cooperative stop, not a failure — the checkpoint resumes the job.
type PreemptedError struct {
	Cycle sim.Time
	Path  string
}

func (e *PreemptedError) Error() string {
	return fmt.Sprintf("runner: preempted at cycle %d (checkpoint %s)", e.Cycle, e.Path)
}

// Checkpoint records one snapshot written during a run.
type Checkpoint struct {
	Cycle sim.Time
	Path  string
}

// Outcome is the result of one run.
type Outcome struct {
	// Res is the machine-level result (summary, elapsed, per-proc accounting,
	// abort error if any).
	Res *machine.Result
	// AppLine is the application's one-line answer summary, formatted exactly
	// as wwtsim prints it (refErr=… / maxErr=… / steps=…).
	AppLine string
	// StatsBytes is the canonical encoding of the final accounting; two runs
	// of the same spec are bit-identical iff these bytes are equal.
	StatsBytes []byte
	// Fingerprint is Hash(StatsBytes), the run's replay-equivalence digest.
	Fingerprint uint64
	// Checkpoints lists the snapshots written, in cycle order.
	Checkpoints []Checkpoint
	// Stopped reports a planned early stop (-run-until); StoppedAt is the
	// quantum boundary it happened on.
	Stopped   bool
	StoppedAt sim.Time
	// Preempted reports that Options.Interrupt fired and the run stopped at
	// PreemptedAt with a checkpoint at PreemptPath (also appended to
	// Checkpoints).
	Preempted   bool
	PreemptedAt sim.Time
	PreemptPath string
	// Verified reports that resume verification ran and passed.
	Verified bool
}

// ReplayDivergenceError reports a resumed run whose replayed execution did
// not reproduce the snapshot — hidden nondeterminism, a changed binary, or a
// spec that does not match the original run.
type ReplayDivergenceError struct {
	// Cycle is the snapshot's checkpoint cycle.
	Cycle sim.Time
	// What names the first mismatch: "boundary" (the replay's quantum
	// boundaries skipped the checkpoint cycle), "state" (machine image hash),
	// "stats" (accounting bytes), or "end" (the replay finished before
	// reaching the checkpoint cycle).
	What string
	// Want and Got are the snapshot's and the replay's state hashes (zero
	// when What is not "state").
	Want, Got uint64
}

func (e *ReplayDivergenceError) Error() string {
	switch e.What {
	case "state":
		return fmt.Sprintf("runner: replay diverged at cycle %d: state hash %#x, snapshot has %#x",
			e.Cycle, e.Got, e.Want)
	case "end":
		return fmt.Sprintf("runner: replay finished before checkpoint cycle %d", e.Cycle)
	default:
		return fmt.Sprintf("runner: replay diverged at cycle %d: %s mismatch", e.Cycle, e.What)
	}
}

// Run builds the machine the spec describes, installs the requested
// checkpoint/stop/verify hooks, and executes the program to completion (or
// to the planned stop). The returned error covers harness-level failures —
// replay divergence or a checkpoint write error; application-level aborts
// (fault starvation, invariant violations, planned stops) are reported in
// Outcome.Res.Err exactly as a plain run would.
func Run(spec Spec, opts Options) (*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	specJSON, err := json.Marshal(&spec)
	if err != nil {
		return nil, err
	}

	out := &Outcome{}
	var hookErr error
	finalize := func() {}

	cfg := spec.Config()
	cfg.Workers = opts.Workers
	cfg.PerAccessStats = opts.PerAccessStats
	cfg.OnBuild = func(m any) {
		var eng *sim.Engine
		var me interface {
			EncodeState(*snapshot.Enc)
			EncodeStats(*snapshot.Enc)
		}
		switch mm := m.(type) {
		case *machine.MPMachine:
			eng, me = mm.Eng, mm
		case *machine.SMMachine:
			eng, me = mm.Eng, mm
		default:
			return
		}

		capture := func(now sim.Time) *snapshot.Snapshot {
			var se, te snapshot.Enc
			me.EncodeState(&se)
			me.EncodeStats(&te)
			state := se.Bytes()
			return &snapshot.Snapshot{
				Spec:      specJSON,
				Cycle:     int64(now),
				StateHash: snapshot.Hash(state),
				State:     state,
				Stats:     te.Bytes(),
			}
		}
		finalize = func() {
			var te snapshot.Enc
			me.EncodeStats(&te)
			out.StatsBytes = te.Bytes()
			out.Fingerprint = snapshot.Hash(out.StatsBytes)
		}

		// Hook order matters when several fire on the same boundary: verify
		// first (a resumed run must be checked before anything else observes
		// the state), then checkpoint, then the planned stop — so a
		// checkpoint requested at the stop cycle is still written.
		if snap := opts.Resume; snap != nil {
			eng.AddQuantumHook(func(now sim.Time) {
				if out.Verified || hookErr != nil || int64(now) < snap.Cycle {
					return
				}
				div := func(what string, want, got uint64) {
					e := &ReplayDivergenceError{
						Cycle: sim.Time(snap.Cycle), What: what, Want: want, Got: got,
					}
					hookErr = e
					eng.Abort(e)
				}
				// Quantum boundaries are deterministic, so the replay must
				// land on the checkpoint cycle exactly.
				if int64(now) != snap.Cycle {
					div("boundary", 0, 0)
					return
				}
				got := capture(now)
				if got.StateHash != snap.StateHash {
					div("state", snap.StateHash, got.StateHash)
					return
				}
				if !bytes.Equal(got.Stats, snap.Stats) {
					div("stats", 0, 0)
					return
				}
				out.Verified = true
			})
		}
		if every := opts.CheckpointEvery; every > 0 {
			next := every
			eng.AddQuantumHook(func(now sim.Time) {
				if now < next || hookErr != nil {
					return
				}
				for next <= now {
					next += every
				}
				path := filepath.Join(opts.CheckpointDir, fmt.Sprintf("ckpt-%d.wws", now))
				if err := snapshot.WriteFileFS(opts.fs(), path, capture(now)); err != nil {
					hookErr = err
					eng.Abort(err)
					return
				}
				out.Checkpoints = append(out.Checkpoints, Checkpoint{Cycle: now, Path: path})
			})
		}
		if intr := opts.Interrupt; intr != nil {
			eng.AddQuantumHook(func(now sim.Time) {
				// A cycle-0 checkpoint would resume nothing; defer to the
				// first boundary with real progress behind it.
				if now == 0 || hookErr != nil || out.Preempted || !intr.Fired() {
					return
				}
				path := filepath.Join(opts.CheckpointDir, fmt.Sprintf("preempt-%d.wws", now))
				if err := snapshot.WriteFileFS(opts.fs(), path, capture(now)); err != nil {
					hookErr = err
					eng.Abort(err)
					return
				}
				out.Checkpoints = append(out.Checkpoints, Checkpoint{Cycle: now, Path: path})
				out.Preempted, out.PreemptedAt, out.PreemptPath = true, now, path
				eng.Abort(&PreemptedError{Cycle: now, Path: path})
			})
		}
		if opts.RunUntil > 0 {
			eng.StopAt(opts.RunUntil)
		}
	}

	out.Res, out.AppLine = runApp(&spec, cfg)
	finalize()
	if stop, ok := out.Res.Err.(*sim.RunStopError); ok {
		out.Stopped, out.StoppedAt = true, stop.At
	}
	if hookErr != nil {
		return out, hookErr
	}
	if opts.Resume != nil && !out.Verified && !out.Stopped && !out.Preempted {
		e := &ReplayDivergenceError{Cycle: sim.Time(opts.Resume.Cycle), What: "end"}
		return out, e
	}
	return out, nil
}

func runApp(spec *Spec, cfg cost.Config) (*machine.Result, string) {
	shape := spec.shape()
	switch spec.App {
	case "mse":
		par := mse.DefaultParams()
		if spec.Size > 0 {
			par.Bodies = spec.Size
		}
		if spec.Iters > 0 {
			par.Iters = spec.Iters
		}
		var out *mse.Output
		if spec.Machine == "mp" {
			out = mse.RunMP(cfg, shape, par)
		} else {
			out = mse.RunSM(cfg, par)
		}
		return out.Res, fmt.Sprintf("refErr=%.3g residual=%.3g", out.RefErr, out.Residual)
	case "gauss":
		par := gauss.Params{N: 512, Seed: 1}
		if spec.Size > 0 {
			par.N = spec.Size
		}
		var out *gauss.Output
		if spec.Machine == "mp" {
			out = gauss.RunMP(cfg, shape, par)
		} else {
			out = gauss.RunSM(cfg, par)
		}
		return out.Res, fmt.Sprintf("maxErr=%.3g", out.MaxErr)
	case "em3d":
		par := em3d.DefaultParams()
		if spec.Size > 0 {
			par.NodesPer = spec.Size
		}
		if spec.Iters > 0 {
			par.Iters = spec.Iters
		}
		var out *em3d.Output
		switch {
		case spec.Machine == "mp" && spec.StepProcs:
			out = em3d.RunMPStep(cfg, shape, par)
		case spec.Machine == "mp":
			out = em3d.RunMP(cfg, shape, par)
		case spec.StepProcs:
			out = em3d.RunSMStep(cfg, spec.policy(), par)
		default:
			out = em3d.RunSM(cfg, spec.policy(), par)
		}
		return out.Res, fmt.Sprintf("maxErr=%.3g", out.MaxErr)
	default: // lcp | alcp, enforced by Validate
		par := lcp.DefaultParams()
		if spec.Size > 0 {
			par.N = spec.Size
		}
		if spec.Iters > 0 {
			par.MaxSteps = spec.Iters
		}
		var out *lcp.Output
		switch {
		case spec.App == "lcp" && spec.Machine == "mp" && spec.StepProcs:
			out = lcp.RunMPStep(cfg, shape, par)
		case spec.App == "lcp" && spec.Machine == "mp":
			out = lcp.RunMP(cfg, shape, par)
		case spec.App == "lcp" && spec.StepProcs:
			out = lcp.RunSMStep(cfg, par)
		case spec.App == "lcp":
			out = lcp.RunSM(cfg, par)
		case spec.Machine == "mp":
			out = lcp.RunAMP(cfg, shape, par)
		default:
			out = lcp.RunASM(cfg, par)
		}
		return out.Res, fmt.Sprintf("steps=%d residual=%.3g", out.Steps, out.Residual)
	}
}
