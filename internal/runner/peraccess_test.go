package runner

import (
	"bytes"
	"testing"

	"repro/internal/snapshot"
)

// TestBatchedStatsEquivalence is the batched-accounting contract: the
// default per-quantum cost accumulators and the reference per-access mode
// (Options.PerAccessStats) must produce byte-identical canonical stats —
// same fingerprint, same encoded bytes, same application answer — for
// every configuration in the equivalence matrix, serially and across a
// worker pool. Run it under -race to also catch any accumulator access
// outside the flush discipline.
func TestBatchedStatsEquivalence(t *testing.T) {
	for _, tc := range matrix {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			t.Parallel()
			base, err := Run(tc.Spec, Options{Workers: 1})
			if err != nil {
				t.Fatalf("batched run: %v", err)
			}
			if base.Res.Err != nil {
				t.Fatalf("batched run aborted: %v", base.Res.Err)
			}
			variants := []struct {
				name string
				opts Options
			}{
				{"per-access/workers=1", Options{Workers: 1, PerAccessStats: true}},
				{"per-access/workers=4", Options{Workers: 4, PerAccessStats: true}},
				{"batched/workers=4", Options{Workers: 4}},
			}
			for _, v := range variants {
				got, err := Run(tc.Spec, v.opts)
				if err != nil {
					t.Fatalf("%s run: %v", v.name, err)
				}
				if got.Fingerprint != base.Fingerprint {
					t.Errorf("%s fingerprint %#x, want batched serial %#x",
						v.name, got.Fingerprint, base.Fingerprint)
				}
				if !bytes.Equal(got.StatsBytes, base.StatsBytes) {
					t.Errorf("%s canonical stats bytes differ from batched serial", v.name)
				}
				if got.AppLine != base.AppLine {
					t.Errorf("%s app answer %q, want %q", v.name, got.AppLine, base.AppLine)
				}
			}
		})
	}
}

// TestCheckpointAcrossAccountingModes extends the replay-equivalence
// matrix across the accounting-mode boundary: a checkpoint written by a
// batched run — captured at a quantum boundary, immediately after the
// engine flushed every processor's pending accumulator — must
// replay-verify byte-for-byte when resumed in per-access mode (and with a
// worker pool), and land on the batched run's final fingerprint. This
// pins the flush-before-capture ordering: if any cost lingered in a
// pending bucket at the boundary, the snapshot stats would differ between
// modes and resume would abort with a divergence error.
func TestCheckpointAcrossAccountingModes(t *testing.T) {
	for _, name := range []string{"em3d-mp", "gauss-sm", "gauss-sm-faults"} {
		var spec Spec
		found := false
		for _, tc := range matrix {
			if tc.Name == name {
				spec, found = tc.Spec, true
			}
		}
		if !found {
			t.Fatalf("matrix entry %q missing", name)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base, err := Run(spec, Options{})
			if err != nil || base.Res.Err != nil {
				t.Fatalf("base run: %v / %v", err, base.Res.Err)
			}
			dir := t.TempDir()
			ck, err := Run(spec, Options{CheckpointEvery: base.Res.Elapsed / 3, CheckpointDir: dir})
			if err != nil {
				t.Fatalf("checkpointed run: %v", err)
			}
			if len(ck.Checkpoints) == 0 {
				t.Fatalf("no checkpoints written")
			}
			cp := ck.Checkpoints[0]
			snap, err := snapshot.ReadFile(cp.Path)
			if err != nil {
				t.Fatalf("read %s: %v", cp.Path, err)
			}
			for _, opts := range []Options{
				{Resume: snap, PerAccessStats: true},
				{Resume: snap, PerAccessStats: true, Workers: 4},
			} {
				re, err := Run(spec, opts)
				if err != nil {
					t.Fatalf("per-access resume from cycle %d: %v", cp.Cycle, err)
				}
				if !re.Verified {
					t.Fatalf("per-access resume from cycle %d never verified", cp.Cycle)
				}
				if re.Fingerprint != base.Fingerprint {
					t.Fatalf("per-access resume: fingerprint %#x, want %#x",
						re.Fingerprint, base.Fingerprint)
				}
				if !bytes.Equal(re.StatsBytes, base.StatsBytes) {
					t.Fatalf("per-access resume: stats bytes differ")
				}
			}
		})
	}
}
