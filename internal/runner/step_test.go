package runner

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/snapshot"
)

// stepPairs are the app/machine pairs with step (continuation) ports. Sizes
// are kept small: the matrix below multiplies them by three processor
// counts and two worker counts, under the race detector.
var stepPairs = []struct {
	Name string
	Spec Spec
}{
	{"em3d-mp", Spec{App: "em3d", Machine: "mp", Size: 8, Iters: 2}},
	{"em3d-sm", Spec{App: "em3d", Machine: "sm", Size: 8, Iters: 2}},
	{"lcp-mp", Spec{App: "lcp", Machine: "mp", Size: 1024, Iters: 3}},
	{"lcp-sm", Spec{App: "lcp", Machine: "sm", Size: 1024, Iters: 3}},
}

// TestStepFormEquivalence pins the cross-form determinism contract: for
// every ported pair, the step form must produce bit-identical accounting
// (fingerprint, stats bytes, and the app's answer line) to the coroutine
// form, at several processor counts, serial and parallel.
func TestStepFormEquivalence(t *testing.T) {
	for _, pair := range stepPairs {
		for _, procs := range []int{16, 64, 256} {
			for _, workers := range []int{1, 4} {
				pair, procs, workers := pair, procs, workers
				t.Run(fmt.Sprintf("%s/p%d/w%d", pair.Name, procs, workers), func(t *testing.T) {
					t.Parallel()
					spec := pair.Spec
					spec.Procs = procs

					co, err := Run(spec, Options{Workers: workers})
					if err != nil {
						t.Fatalf("coroutine run: %v", err)
					}
					if co.Res.Err != nil {
						t.Fatalf("coroutine run aborted: %v", co.Res.Err)
					}

					spec.StepProcs = true
					st, err := Run(spec, Options{Workers: workers})
					if err != nil {
						t.Fatalf("step run: %v", err)
					}
					if st.Res.Err != nil {
						t.Fatalf("step run aborted: %v", st.Res.Err)
					}

					if st.Fingerprint != co.Fingerprint {
						t.Errorf("fingerprint: step %#x, coroutine %#x", st.Fingerprint, co.Fingerprint)
					}
					if !bytes.Equal(st.StatsBytes, co.StatsBytes) {
						t.Errorf("stats bytes differ between forms")
					}
					if st.AppLine != co.AppLine {
						t.Errorf("app answer: step %q, coroutine %q", st.AppLine, co.AppLine)
					}
					if st.Res.Elapsed != co.Res.Elapsed {
						t.Errorf("elapsed: step %d, coroutine %d", st.Res.Elapsed, co.Res.Elapsed)
					}
				})
			}
		}
	}
}

// TestStepCrossFormResume checks that checkpoints are form-portable: a
// snapshot written by one form resumes (replay-verified) under the other,
// in both directions, with the original fingerprint.
func TestStepCrossFormResume(t *testing.T) {
	for _, pair := range stepPairs {
		for _, fromStep := range []bool{false, true} {
			pair, fromStep := pair, fromStep
			name := fmt.Sprintf("%s/coroutine-to-step", pair.Name)
			if fromStep {
				name = fmt.Sprintf("%s/step-to-coroutine", pair.Name)
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				spec := pair.Spec
				spec.Procs = 16
				spec.StepProcs = fromStep

				base, err := Run(spec, Options{})
				if err != nil || base.Res.Err != nil {
					t.Fatalf("base run: %v / %v", err, base.Res.Err)
				}
				every := base.Res.Elapsed / 7
				if every < 1 {
					t.Fatalf("run too short to checkpoint (elapsed %d)", base.Res.Elapsed)
				}
				dir := t.TempDir()
				ck, err := Run(spec, Options{CheckpointEvery: every, CheckpointDir: dir})
				if err != nil || ck.Res.Err != nil {
					t.Fatalf("checkpointed run: %v / %v", err, ck.Res.Err)
				}
				if len(ck.Checkpoints) == 0 {
					t.Fatalf("no checkpoints written")
				}

				// The first checkpoint lands in the program's setup phase and
				// the last near completion: form-portability must hold at
				// every boundary, and setup is where a step port that
				// front-loads host-side writes to registered state diverges.
				cps := []Checkpoint{ck.Checkpoints[0], ck.Checkpoints[len(ck.Checkpoints)-1]}
				for _, cp := range cps {
					snap, err := snapshot.ReadFile(cp.Path)
					if err != nil {
						t.Fatalf("read %s: %v", cp.Path, err)
					}
					sp, err := SpecFromSnapshot(snap)
					if err != nil {
						t.Fatalf("spec from snapshot: %v", err)
					}
					if sp.StepProcs != fromStep {
						t.Fatalf("snapshot spec step_procs = %v, want %v", sp.StepProcs, fromStep)
					}
					sp.StepProcs = !fromStep // resume under the other form

					re, err := Run(*sp, Options{Resume: snap})
					if err != nil {
						t.Fatalf("cross-form resume from cycle %d: %v", cp.Cycle, err)
					}
					if !re.Verified {
						t.Fatalf("cross-form resume from cycle %d never verified", cp.Cycle)
					}
					if re.Fingerprint != base.Fingerprint {
						t.Fatalf("cross-form resume from cycle %d fingerprint %#x, want %#x",
							cp.Cycle, re.Fingerprint, base.Fingerprint)
					}
					if re.AppLine != base.AppLine {
						t.Fatalf("cross-form resume from cycle %d answer %q, want %q",
							cp.Cycle, re.AppLine, base.AppLine)
					}
				}
			})
		}
	}
}

// TestValidateStepUnsupported pins the typed rejection of step requests for
// configurations without a step implementation.
func TestValidateStepUnsupported(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"em3d-mp", Spec{App: "em3d", Machine: "mp", Procs: 4, StepProcs: true}, true},
		{"lcp-sm", Spec{App: "lcp", Machine: "sm", Procs: 4, StepProcs: true}, true},
		{"gauss", Spec{App: "gauss", Machine: "mp", Procs: 4, StepProcs: true}, false},
		{"mse", Spec{App: "mse", Machine: "sm", Procs: 4, StepProcs: true}, false},
		{"alcp", Spec{App: "alcp", Machine: "mp", Procs: 4, StepProcs: true}, false},
		{"em3d-faults", Spec{App: "em3d", Machine: "mp", Procs: 4, StepProcs: true,
			Faults: &cost.FaultsConfig{Seed: 1}}, false},
		{"lcp-smfaults", Spec{App: "lcp", Machine: "sm", Procs: 4, StepProcs: true,
			SMFaults: &cost.SMFaultsConfig{Seed: 1}}, false},
		{"em3d-hwcomb", Spec{App: "em3d", Machine: "sm", Procs: 4, StepProcs: true,
			HWCombining: true}, false},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.ok {
			if err != nil {
				t.Errorf("%s: unexpected validate error: %v", tc.name, err)
			}
			continue
		}
		var se *StepUnsupportedError
		if !errors.As(err, &se) {
			t.Errorf("%s: want *StepUnsupportedError, got %v", tc.name, err)
			continue
		}
		if se.App != tc.spec.App || se.Reason == "" {
			t.Errorf("%s: malformed error %+v", tc.name, se)
		}
	}
}
