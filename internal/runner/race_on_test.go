//go:build race

package runner

// raceEnabled reports whether this test binary was built with -race, so
// tests whose workloads are too large for the detector's overhead can
// skip themselves while still running in plain test jobs.
const raceEnabled = true
