package runner

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/apps/em3d"
	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// TestScalingSmoke is the CI canary for the large-P dispatcher path: one
// app pair at P=256 must produce the identical fingerprint under serial and
// pooled dispatch (run it under -race — the pooled run then also proves the
// worker handoffs are properly synchronized), and a checkpoint written at
// P=256 must replay-verify, pinning the compacted per-proc state encodings
// at scale.
func TestScalingSmoke(t *testing.T) {
	spec := Spec{App: "em3d", Machine: "mp", Procs: 256, Size: 8, Iters: 2}
	base, err := Run(spec, Options{Workers: 1})
	if err != nil || base.Res.Err != nil {
		t.Fatalf("workers=1 run: %v / %v", err, base.Res.Err)
	}
	par, err := Run(spec, Options{Workers: 4})
	if err != nil || par.Res.Err != nil {
		t.Fatalf("workers=4 run: %v / %v", err, par.Res.Err)
	}
	if par.Fingerprint != base.Fingerprint {
		t.Fatalf("P=256 fingerprint workers=4 %#x != workers=1 %#x", par.Fingerprint, base.Fingerprint)
	}
	if !bytes.Equal(par.StatsBytes, base.StatsBytes) {
		t.Fatalf("P=256 canonical stats differ between worker counts")
	}

	dir := t.TempDir()
	ck, err := Run(spec, Options{Workers: 4, CheckpointEvery: base.Res.Elapsed / 2, CheckpointDir: dir})
	if err != nil || len(ck.Checkpoints) == 0 {
		t.Fatalf("checkpointed P=256 run: %v (%d checkpoints)", err, len(ck.Checkpoints))
	}
	snap, err := snapshot.ReadFile(ck.Checkpoints[0].Path)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	re, err := Run(spec, Options{Workers: 4, Resume: snap})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !re.Verified {
		t.Fatalf("P=256 checkpoint never replay-verified")
	}
	if re.Fingerprint != base.Fingerprint {
		t.Fatalf("resumed fingerprint %#x != base %#x", re.Fingerprint, base.Fingerprint)
	}
}

// TestScalingSmokeGoroutineHighWater samples the host goroutine count at
// every quantum boundary of a P=256 pooled run and bounds the high-water
// mark. Suspended coroutine processors each hold a (small, pooled) goroutine
// stack, so the honest bound is procs + workers + slack: what the check
// proves is that dispatch spawns nothing per quantum — the high-water mark
// is set at startup and stays flat, instead of growing with quanta executed
// as a spawn-per-handoff dispatcher would.
func TestScalingSmokeGoroutineHighWater(t *testing.T) {
	const procs, workers = 256, 4
	before := runtime.NumGoroutine()
	high := 0
	cfg := cost.Default(procs)
	cfg.Workers = workers
	cfg.OnBuild = func(m any) {
		mm, ok := m.(*machine.MPMachine)
		if !ok {
			t.Fatalf("OnBuild got %T", m)
		}
		mm.Eng.AddQuantumHook(func(sim.Time) {
			if n := runtime.NumGoroutine(); n > high {
				high = n
			}
		})
	}
	par := em3d.DefaultParams()
	par.NodesPer, par.Iters = 8, 2
	out := em3d.RunMP(cfg, cmmd.LopSided, par)
	if out.Res.Err != nil {
		t.Fatalf("run aborted: %v", out.Res.Err)
	}
	bound := before + procs + workers + 16
	if high > bound {
		t.Errorf("goroutine high-water %d exceeds %d (base %d + %d procs + %d workers + slack): dispatch is spawning per quantum",
			high, bound, before, procs, workers)
	}

	// Step processors are the O(1)-stack path: a 1024-proc engine made only
	// of step procs must not grow the goroutine count with P at all.
	before = runtime.NumGoroutine()
	high = 0
	eng := sim.NewEngine(100)
	eng.Workers = workers
	eng.AddQuantumHook(func(sim.Time) {
		if n := runtime.NumGoroutine(); n > high {
			high = n
		}
	})
	for i := 0; i < 1024; i++ {
		k := 0
		eng.AddStepProc(func(p *sim.Proc) sim.StepStatus {
			if k == 8 {
				return sim.StepDone
			}
			k++
			p.Compute(100)
			return sim.StepYield
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("step engine: %v", err)
	}
	if bound := before + workers + 8; high > bound {
		t.Errorf("step-proc high-water %d exceeds %d: 1024 step procs must not cost 1024 goroutines", high, bound)
	}
}

// TestScalingSmokeStep1024 is the step-form scaling canary, strong enough
// to run under -race at P=1024: a full step-form app (every node an
// engine-dispatched state machine) must complete with serial/pooled
// fingerprint equality, and its goroutine high-water mark must be
// O(workers) — independent of P — where the coroutine form's is O(P).
func TestScalingSmokeStep1024(t *testing.T) {
	const procs, workers = 1024, 4
	before := runtime.NumGoroutine()
	high := 0
	spec := Spec{App: "em3d", Machine: "mp", Procs: procs, Size: 8, Iters: 2, StepProcs: true}

	cfg := spec.Config()
	cfg.Workers = workers
	cfg.OnBuild = func(m any) {
		mm, ok := m.(*machine.MPMachine)
		if !ok {
			t.Fatalf("OnBuild got %T", m)
		}
		mm.Eng.AddQuantumHook(func(sim.Time) {
			if n := runtime.NumGoroutine(); n > high {
				high = n
			}
		})
	}
	par := em3d.DefaultParams()
	par.NodesPer, par.Iters = 8, 2
	out := em3d.RunMPStep(cfg, cmmd.LopSided, par)
	if out.Res.Err != nil {
		t.Fatalf("step run aborted: %v", out.Res.Err)
	}
	// The tightened bound: workers plus fixed slack. No per-proc term — a
	// step machine parks blocked processors as heap state, not stacks.
	if bound := before + workers + 16; high > bound {
		t.Errorf("step-form goroutine high-water %d exceeds %d (base %d + %d workers + slack): step dispatch must not cost goroutines per proc",
			high, bound, before, workers)
	}

	base, err := Run(spec, Options{Workers: 1})
	if err != nil || base.Res.Err != nil {
		t.Fatalf("workers=1 step run: %v / %v", err, base.Res.Err)
	}
	pooled, err := Run(spec, Options{Workers: workers})
	if err != nil || pooled.Res.Err != nil {
		t.Fatalf("workers=4 step run: %v / %v", err, pooled.Res.Err)
	}
	if pooled.Fingerprint != base.Fingerprint {
		t.Fatalf("P=1024 step fingerprint workers=4 %#x != workers=1 %#x", pooled.Fingerprint, base.Fingerprint)
	}
	if !bytes.Equal(pooled.StatsBytes, base.StatsBytes) {
		t.Fatalf("P=1024 step canonical stats differ between worker counts")
	}
}

// TestProcs4096StepPairsComplete pushes the ported pairs one octave past
// the P=1024 study: every step-ported pair must complete at the Spec limit
// P=4096 with serial/pooled fingerprint equality. Step form only — 4096
// coroutine stacks are exactly the host cost the step port removes. Heavy
// gated: minutes per pair without the race detector.
func TestProcs4096StepPairsComplete(t *testing.T) {
	if raceEnabled {
		t.Skip("P=4096 completion is verified without -race (see scaling-smoke CI job)")
	}
	if os.Getenv("WWT_SCALING_HEAVY") != "1" {
		t.Skip("P=4096 workload; set WWT_SCALING_HEAVY=1")
	}
	pairs := []Spec{
		{App: "em3d", Machine: "mp", Procs: 4096, Size: 8, Iters: 2, StepProcs: true},
		{App: "em3d", Machine: "sm", Procs: 4096, Size: 8, Iters: 2, StepProcs: true},
		{App: "lcp", Machine: "mp", Procs: 4096, Size: 4096, Iters: 2, StepProcs: true},
		{App: "lcp", Machine: "sm", Procs: 4096, Size: 4096, Iters: 2, StepProcs: true},
	}
	for _, spec := range pairs {
		spec := spec
		t.Run(fmt.Sprintf("%s-%s", spec.App, spec.Machine), func(t *testing.T) {
			base, err := Run(spec, Options{Workers: 1})
			if err != nil || base.Res.Err != nil {
				t.Fatalf("workers=1: %v / %v", err, base.Res.Err)
			}
			par, err := Run(spec, Options{Workers: 4})
			if err != nil || par.Res.Err != nil {
				t.Fatalf("workers=4: %v / %v", err, par.Res.Err)
			}
			if par.Fingerprint != base.Fingerprint {
				t.Errorf("P=4096 fingerprint workers=4 %#x != workers=1 %#x", par.Fingerprint, base.Fingerprint)
			}
		})
	}
}

// TestProcs1024AllPairsComplete runs app pairs at Procs=1024 end to end
// with per-processor-scaled working sets and checks serial/pooled
// fingerprint equality at full machine size. The linear-work pairs (em3d,
// lcp) always run; the quadratic/cubic-work pairs (mse's body interactions,
// gauss needing N=1024 at P=1024) take minutes to tens of minutes per run
// and run only with WWT_SCALING_HEAVY=1 — the scaling study in
// EXPERIMENTS.md records their results.
func TestProcs1024AllPairsComplete(t *testing.T) {
	pairs := []struct {
		spec  Spec
		heavy bool
	}{
		{Spec{App: "em3d", Machine: "mp", Procs: 1024, Size: 8, Iters: 2}, false},
		{Spec{App: "em3d", Machine: "sm", Procs: 1024, Size: 8, Iters: 2}, false},
		{Spec{App: "lcp", Machine: "mp", Procs: 1024, Size: 2048, Iters: 2}, false},
		{Spec{App: "lcp", Machine: "sm", Procs: 1024, Size: 2048, Iters: 2}, false},
		{Spec{App: "mse", Machine: "mp", Procs: 1024, Size: 1024, Iters: 1}, true},
		{Spec{App: "mse", Machine: "sm", Procs: 1024, Size: 1024, Iters: 1}, true},
		{Spec{App: "gauss", Machine: "mp", Procs: 1024, Size: 1024}, true},
		{Spec{App: "gauss", Machine: "sm", Procs: 1024, Size: 1024}, true},
	}
	if raceEnabled {
		// The race detector's interleaving overhead makes even the
		// linear-work pairs minutes-long at P=1024; race coverage of the
		// scaling dispatcher comes from TestScalingSmoke at P=256.
		t.Skip("P=1024 completion is verified without -race (see scaling-smoke CI job)")
	}
	heavyOn := os.Getenv("WWT_SCALING_HEAVY") == "1"
	for _, tc := range pairs {
		tc := tc
		name := fmt.Sprintf("%s-%s", tc.spec.App, tc.spec.Machine)
		t.Run(name, func(t *testing.T) {
			if tc.heavy && !heavyOn {
				t.Skip("quadratic/cubic workload at P=1024; set WWT_SCALING_HEAVY=1")
			}
			base, err := Run(tc.spec, Options{Workers: 1})
			if err != nil || base.Res.Err != nil {
				t.Fatalf("workers=1: %v / %v", err, base.Res.Err)
			}
			par, err := Run(tc.spec, Options{Workers: 4})
			if err != nil || par.Res.Err != nil {
				t.Fatalf("workers=4: %v / %v", err, par.Res.Err)
			}
			if par.Fingerprint != base.Fingerprint {
				t.Errorf("P=1024 fingerprint workers=4 %#x != workers=1 %#x", par.Fingerprint, base.Fingerprint)
			}
		})
	}
}
