package parmacs

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Step-processor forms of the parmacs primitives. Each is a phase machine
// over its coroutine twin's suspension points: the caller embeds the frame
// struct, re-invokes the same call with the same arguments after a
// sim.StepYield, and the accounting-mode push survives across yields on
// the processor's own mode stack — so both forms charge every cycle to the
// same category in the same quantum.

// StepWaitCreate is WaitCreate for step processors.
func (rt *Runtime) StepWaitCreate(p *sim.Proc) bool {
	if p.ID == 0 {
		return true
	}
	if p.WakePending() {
		p.WakePayload()
		return true
	}
	if rt.created {
		p.WaitUntil(rt.createTime, stats.StartupWait)
		return true
	}
	rt.mu.Lock()
	rt.startWait = append(rt.startWait, p)
	rt.mu.Unlock()
	p.StepBlock(stats.StartupWait, "waiting for create()")
	return false
}

// StepBarrier is Barrier for step processors.
func (rt *Runtime) StepBarrier(p *sim.Proc) bool {
	return rt.Bar.StepWait(p, stats.BarrierWait)
}

// Fixed spin predicates, package-level so spinning allocates nothing.
func lockFreeCond(v int64) bool { return v == 0 }
func linkDoneCond(v int64) bool { return v >= 0 }

// LockStep is the resumable state of one StepAcquire or StepRelease. Zero
// it (or let completion zero it) before a fresh operation.
type LockStep struct {
	phase uint8
	pred  int64
	succ  int64
	spin  coherence.SpinStep
}

// StepAcquire is Acquire for step processors.
func (l *Lock) StepAcquire(ls *LockStep, m *memsim.Mem) bool {
	p := m.P
	me := p.ID
	for {
		switch ls.phase {
		case 0:
			p.PushModeFull(stats.LockWait, stats.LockWait, stats.CntPrivateMisses,
				stats.LockWait, stats.LockWait)
			p.Compute(lockOpCycles)
			ls.phase = 1
		case 1:
			if !l.next[me].StepSet(m, 0, -1) {
				return false
			}
			ls.phase = 2
		case 2:
			pred, done := l.rt.Pr.StepAtomicSwapI(m, &l.tail, 0, int64(me))
			if !done {
				return false
			}
			if pred < 0 { // lock was free
				p.PopMode()
				*ls = LockStep{}
				return true
			}
			ls.pred = pred
			ls.phase = 3
		case 3:
			if !l.locked[me].StepSet(m, 0, 1) {
				return false
			}
			ls.phase = 4
		case 4:
			if !l.next[ls.pred].StepSet(m, 0, int64(me)) {
				return false
			}
			ls.spin = coherence.SpinStep{}
			ls.phase = 5
		case 5:
			if _, done := l.rt.Pr.StepSpinI(&ls.spin, m, &l.locked[me], 0,
				stats.LockWait, lockFreeCond); !done {
				return false
			}
			p.PopMode()
			*ls = LockStep{}
			return true
		}
	}
}

// StepRelease is Release for step processors.
func (l *Lock) StepRelease(ls *LockStep, m *memsim.Mem) bool {
	p := m.P
	me := p.ID
	for {
		switch ls.phase {
		case 0:
			p.PushModeFull(stats.LockWait, stats.LockWait, stats.CntPrivateMisses,
				stats.LockWait, stats.LockWait)
			p.Compute(lockOpCycles)
			ls.phase = 1
		case 1:
			nx, done := l.next[me].StepGet(m, 0)
			if !done {
				return false
			}
			if nx >= 0 { // successor already linked
				ls.phase = 4
			} else {
				ls.phase = 2
			}
		case 2:
			swapped, done := l.rt.Pr.StepAtomicCASI(m, &l.tail, 0, int64(me), -1)
			if !done {
				return false
			}
			if swapped { // no successor; lock is free
				p.PopMode()
				*ls = LockStep{}
				return true
			}
			ls.spin = coherence.SpinStep{}
			ls.phase = 3
		case 3:
			if _, done := l.rt.Pr.StepSpinI(&ls.spin, m, &l.next[me], 0,
				stats.LockWait, linkDoneCond); !done {
				return false
			}
			ls.phase = 4
		case 4:
			succ, done := l.next[me].StepGet(m, 0)
			if !done {
				return false
			}
			ls.succ = succ
			ls.phase = 5
		case 5:
			if !l.locked[ls.succ].StepSet(m, 0, 0) {
				return false
			}
			p.PopMode()
			*ls = LockStep{}
			return true
		}
	}
}

// RedStep is the resumable state of one StepReduce.
type RedStep struct {
	phase uint8
	child int
	round int64
	val   float64
	idx   int64
	cv    float64
	spin  coherence.SpinStep
}

// StepReduce is Reduce for step processors. The contributed (val, idx) are
// latched on the first call; re-invocations may pass anything. The result
// is valid only when done. Incompatible with the hardware-combining
// ablation (the runner gates the combination off).
func (r *Reduction) StepReduce(rs *RedStep, m *memsim.Mem, val float64, idx int64, op Op, cats Cats) (float64, int64, bool) {
	p := m.P
	me := p.ID
	for {
		switch rs.phase {
		case 0:
			if !op.valid() {
				p.Fail(fmt.Errorf("%w: op %d at node %d", ErrUnknownOp, int(op), p.ID))
			}
			if r.rt.Comb != nil {
				panic("parmacs: step reductions are incompatible with hardware combining")
			}
			p.PushModeFull(cats.Comp, cats.Miss, stats.CntPrivateMisses, cats.Miss, cats.Miss)
			r.round[me]++
			rs.round = r.round[me]
			rs.val, rs.idx = val, idx
			p.Compute(reduceOpCycles)
			rs.child = 0
			rs.spin = coherence.SpinStep{}
			rs.phase = 1
		case 1: // wait for child rs.child's contribution flag
			child := me*r.arity + 1 + rs.child
			if rs.child >= r.arity || child >= r.rt.Cfg.Procs {
				rs.phase = 4
				continue
			}
			if _, done := r.rt.Pr.StepSpinIAtLeast(&rs.spin, m, &r.flags[me],
				rs.child, cats.Wait, rs.round); !done {
				return 0, 0, false
			}
			rs.phase = 2
		case 2:
			cv, done := r.vals[me*r.arity+1+rs.child].StepGet(m, 0)
			if !done {
				return 0, 0, false
			}
			rs.cv = cv
			rs.phase = 3
		case 3:
			ci, done := r.idxs[me*r.arity+1+rs.child].StepGet(m, 0)
			if !done {
				return 0, 0, false
			}
			rs.val, rs.idx = combine(op, rs.val, rs.idx, rs.cv, ci)
			p.Compute(reduceOpCycles)
			rs.child++
			rs.spin = coherence.SpinStep{}
			rs.phase = 1
		case 4:
			if me == 0 {
				p.PopMode()
				v, i := rs.val, rs.idx
				*rs = RedStep{}
				return v, i, true
			}
			if !r.vals[me].StepSet(m, 0, rs.val) {
				return 0, 0, false
			}
			rs.phase = 5
		case 5:
			if !r.idxs[me].StepSet(m, 0, rs.idx) {
				return 0, 0, false
			}
			rs.phase = 6
		case 6:
			parent := (me - 1) / r.arity
			slot := (me - 1) % r.arity
			if !r.flags[parent].StepSet(m, slot, rs.round) {
				return 0, 0, false
			}
			p.PopMode()
			*rs = RedStep{}
			return 0, 0, true
		}
	}
}
