package parmacs_test

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
)

// TestRepeatedReduceStress regression-tests the spin-wait races: a reader
// sleeping on an already-consumed invalidation, a store losing ownership
// between grant and retirement, and the reader/writer upgrade-downgrade
// livelock the directory's settle window breaks.
func TestRepeatedReduceStress(t *testing.T) {
	cfg := cost.Default(8)
	var red *parmacs.Reduction
	sums := make([]float64, 0, 50)
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			red = parmacs.NewReduction(n.RT)
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()
		for round := 0; round < 50; round++ {
			v, _ := red.Reduce(n.Mem, float64(n.ID+round), 0, parmacs.OpSum, parmacs.SyncCats)
			if n.ID == 0 {
				sums = append(sums, v)
			}
			n.Barrier()
			// Skewed compute keeps arrival orders adversarial.
			n.Compute(int64(100 * (n.ID*7%5 + 1)))
		}
	})
	m.Eng.MaxTime = 50_000_000 // catch livelock as well as deadlock
	m.Run()
	for round, got := range sums {
		want := float64(8*round + 28) // sum of ID+round over IDs 0..7
		if got != want {
			t.Errorf("round %d: sum = %v, want %v", round, got, want)
		}
	}
	if len(sums) != 50 {
		t.Fatalf("completed %d rounds, want 50", len(sums))
	}
}

// TestLockHandoffStress hammers a single MCS lock from every node with
// minimal critical sections, the pattern that provoked the grant/recall
// livelock.
func TestLockHandoffStress(t *testing.T) {
	cfg := cost.Default(16)
	const perProc = 20
	var lock *parmacs.Lock
	var counter memsim.IVec
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			lock = parmacs.NewLock(n.RT)
			counter = n.RT.GMallocI(0, 1)
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()
		for k := 0; k < perProc; k++ {
			lock.Acquire(n.Mem)
			counter.Set(n.Mem, 0, counter.Get(n.Mem, 0)+1)
			lock.Release(n.Mem)
		}
		n.Barrier()
	})
	m.Eng.MaxTime = 100_000_000
	m.Run()
	if counter.V[0] != int64(16*perProc) {
		t.Errorf("counter = %d, want %d", counter.V[0], 16*perProc)
	}
}
