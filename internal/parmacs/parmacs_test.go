package parmacs_test

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
	"repro/internal/stats"
)

func TestMCSLockMutualExclusion(t *testing.T) {
	cfg := cost.Default(8)
	const perProc = 25
	var lock *parmacs.Lock
	var counter memsim.IVec
	inside := 0
	maxInside := 0
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			lock = parmacs.NewLock(n.RT)
			counter = n.RT.GMallocI(0, 1)
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()
		for k := 0; k < perProc; k++ {
			lock.Acquire(n.Mem)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			// Read-modify-write under the lock, with some work inside the
			// critical section so overlap would be caught.
			v := counter.Get(n.Mem, 0)
			n.Compute(50)
			counter.Set(n.Mem, 0, v+1)
			inside--
			lock.Release(n.Mem)
			n.Compute(int64(13 * (n.ID + 1)))
		}
		n.Barrier()
	})
	m.Run()
	if maxInside != 1 {
		t.Errorf("critical section held by %d processors at once", maxInside)
	}
	if got := counter.V[0]; got != int64(8*perProc) {
		t.Errorf("counter = %d, want %d (lost updates)", got, 8*perProc)
	}
	// Lock time must be charged to the Locks category on contended procs.
	var lockCycles int64
	for _, nd := range m.Nodes {
		lockCycles += nd.P.Acct.Cycles(stats.PhaseDefault, stats.LockWait)
	}
	if lockCycles == 0 {
		t.Error("no cycles charged to Locks")
	}
}

func TestMCSLockUncontendedIsCheap(t *testing.T) {
	cfg := cost.Default(2)
	var lock *parmacs.Lock
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			lock = parmacs.NewLock(n.RT)
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()
		if n.ID == 1 {
			for k := 0; k < 5; k++ {
				lock.Acquire(n.Mem)
				lock.Release(n.Mem)
			}
		}
		n.Barrier()
	})
	m.Run()
	// After the first acquire the tail block stays cached Modified at node
	// 1: later acquire/release pairs should cost only the instruction
	// overhead, far below a protocol round trip each.
	c := m.Nodes[1].P.Acct.Cycles(stats.PhaseDefault, stats.LockWait)
	if c > 5*600 {
		t.Errorf("5 uncontended acquire/release = %d cycles, too expensive", c)
	}
}

func TestReductionSumAtRoot(t *testing.T) {
	cfg := cost.Default(13)
	var red *parmacs.Reduction
	var got float64
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			red = parmacs.NewReduction(n.RT)
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()
		v, _ := red.Reduce(n.Mem, float64(n.ID+1), 0, parmacs.OpSum, parmacs.SyncCats)
		if n.ID == 0 {
			got = v
		}
		n.Barrier()
	})
	m.Run()
	want := 0.0
	for i := 1; i <= 13; i++ {
		want += float64(i)
	}
	if got != want {
		t.Errorf("reduce sum = %v, want %v", got, want)
	}
	// Sync categories were charged, not application categories.
	var sync int64
	for _, nd := range m.Nodes {
		sync += nd.P.Acct.Cycles(stats.PhaseDefault, stats.SyncComp) +
			nd.P.Acct.Cycles(stats.PhaseDefault, stats.SyncMiss)
	}
	if sync == 0 {
		t.Error("reduction charged nothing to sync categories")
	}
}

func TestReductionRepeatedRoundsMaxAbs(t *testing.T) {
	cfg := cost.Default(6)
	var red *parmacs.Reduction
	got := make([]float64, 0, 3)
	idxs := make([]int64, 0, 3)
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			red = parmacs.NewReduction(n.RT)
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()
		for round := 0; round < 3; round++ {
			contrib := float64((n.ID + round) % 6)
			if n.ID == round {
				contrib = -50 - float64(round)
			}
			v, i := red.Reduce(n.Mem, contrib, int64(n.ID), parmacs.OpMaxAbs, parmacs.GaussCats)
			if n.ID == 0 {
				got = append(got, v)
				idxs = append(idxs, i)
			}
			n.Barrier()
		}
	})
	m.Run()
	for round := 0; round < 3; round++ {
		if got[round] != -50-float64(round) || idxs[round] != int64(round) {
			t.Errorf("round %d: (%v, %d), want (%v, %d)",
				round, got[round], idxs[round], -50-float64(round), round)
		}
	}
}

func TestStartupWaitCharged(t *testing.T) {
	cfg := cost.Default(4)
	const initWork = 90_000
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			n.Compute(initWork) // serial initialization
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()
	})
	m.Run()
	for i := 1; i < 4; i++ {
		w := m.Nodes[i].P.Acct.Cycles(stats.PhaseDefault, stats.StartupWait)
		if w != initWork {
			t.Errorf("node %d start-up wait = %d, want %d", i, w, initWork)
		}
	}
	if w := m.Nodes[0].P.Acct.Cycles(stats.PhaseDefault, stats.StartupWait); w != 0 {
		t.Errorf("node 0 charged start-up wait %d", w)
	}
}

func TestGMallocPolicies(t *testing.T) {
	cfg := cost.Default(4)
	pageShift := uint(12)
	t.Run("round-robin stripes pages", func(t *testing.T) {
		var homes []int
		machine.RunSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
			if n.ID == 0 {
				v := n.RT.GMallocF(n.ID, 4*4096/8) // four pages
				for pg := 0; pg < 4; pg++ {
					homes = append(homes, memsim.HomeOf(v.Addr(pg*512), 4, pageShift))
				}
			}
			n.Barrier()
		})
		seen := map[int]bool{}
		for _, h := range homes {
			seen[h] = true
		}
		if len(seen) != 4 {
			t.Errorf("striped pages landed on %d homes (%v), want 4", len(seen), homes)
		}
	})
	t.Run("local homes at caller", func(t *testing.T) {
		homes := make([]int, 4)
		machine.RunSM(cfg, parmacs.Local, func(n *machine.SMNode) {
			v := n.RT.GMallocF(n.ID, 64)
			homes[n.ID] = memsim.HomeOf(v.Addr(0), 4, pageShift)
			n.Barrier()
		})
		for i, h := range homes {
			if h != i {
				t.Errorf("node %d allocation homed at %d", i, h)
			}
		}
	})
}

func TestSpinWakesOnInvalidation(t *testing.T) {
	cfg := cost.Default(2)
	var flag memsim.IVec
	var waited int64
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			flag = n.RT.GMallocI(0, 1)
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()
		if n.ID == 0 {
			n.Compute(30_000)
			flag.Set(n.Mem, 0, 1)
		} else {
			n.Pr.SpinI(n.Mem, &flag, 0, stats.LockWait, func(v int64) bool { return v == 1 })
			waited = n.P.Clock()
		}
		n.Barrier()
	})
	m.Run()
	// The spinner must wake shortly after the 30k-cycle write, not poll
	// blindly nor hang.
	if waited < 30_000 || waited > 32_000 {
		t.Errorf("spinner resumed at %d, want shortly after 30000", waited)
	}
}
