package parmacs

import (
	"sort"

	"repro/internal/snapshot"
)

// EncodeState contributes the parmacs runtime's image: CREATE bookkeeping
// (whether the world has started, when, and who is still parked waiting for
// it) and the lock-allocation serial.
func (rt *Runtime) EncodeState(enc *snapshot.Enc) {
	enc.Section("parmacs", func(enc *snapshot.Enc) {
		enc.Bool(rt.created)
		enc.I64(int64(rt.createTime))
		ids := make([]int, len(rt.startWait))
		for i, p := range rt.startWait {
			ids[i] = p.ID
		}
		sort.Ints(ids)
		enc.U32(uint32(len(ids)))
		for _, id := range ids {
			enc.I64(int64(id))
		}
		enc.I64(int64(rt.lockSerial))
	})
}
