package parmacs

import "repro/internal/snapshot"

// EncodeState contributes the parmacs runtime's image: CREATE bookkeeping
// (whether the world has started, when, and who is still parked waiting for
// it) and the lock-allocation serial.
func (rt *Runtime) EncodeState(enc *snapshot.Enc) {
	enc.Section("parmacs", func(enc *snapshot.Enc) {
		enc.Bool(rt.created)
		enc.I64(int64(rt.createTime))
		enc.U32(uint32(len(rt.startWait)))
		for _, p := range rt.startWait {
			enc.I64(int64(p.ID))
		}
		enc.I64(int64(rt.lockSerial))
	})
}
