// Package parmacs provides the shared-memory programming primitives the
// paper's programs use (§4.2): gmalloc allocation from the shared address
// space with round-robin placement (or the local-allocation policy of the
// EM3D ablation), the create() start-up model in which node 0 initializes
// while other nodes wait, MCS queue locks (Mellor-Crummey & Scott, TOCS
// 1991), MCS-style software reductions, and the hardware barrier.
package parmacs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/coherence"
	"repro/internal/cost"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Policy selects where gmalloc homes shared data.
type Policy int

const (
	// RoundRobin stripes the shared heap across nodes page by page — the
	// paper's default gmalloc behavior.
	RoundRobin Policy = iota
	// Local homes each allocation at the calling node — the allocation
	// ablation of paper Table 17.
	Local
)

// Runtime is the machine-wide parmacs state.
type Runtime struct {
	Cfg    *cost.Config
	Pr     *coherence.Protocol
	Space  *memsim.AddrSpace
	Bar    *sim.Barrier
	Policy Policy

	// Comb is the in-network hardware combining tree, non-nil only under the
	// cost.Config.HWCombining ablation; reductions then deposit at the
	// network port instead of ascending the software tree.
	Comb *sim.Combiner

	// created flips to true in the create event (engine context), so every
	// processor observes the same quantum-stable value; the mutex guards the
	// waiter list, which concurrently dispatched processors append to.
	created      bool
	createTime   sim.Time
	createCalled bool // set synchronously by node 0, for double-call detection
	mu           sync.Mutex
	startWait    []*sim.Proc
	lockSerial   int
}

// NewRuntime wires the parmacs layer to the coherence protocol and barrier,
// and arms the hardware combining tree when the ablation asks for it.
func NewRuntime(cfg *cost.Config, pr *coherence.Protocol, space *memsim.AddrSpace, bar *sim.Barrier) *Runtime {
	rt := &Runtime{Cfg: cfg, Pr: pr, Space: space, Bar: bar}
	if cfg.HWCombining {
		rt.Comb = sim.NewCombiner(pr.Eng, cfg.Procs, cfg.CombiningLatency,
			func(op uint8, v1 float64, i1 int64, v2 float64, i2 int64) (float64, int64) {
				return combine(Op(op), v1, i1, v2, i2)
			})
	}
	return rt
}

// alloc returns a base address for n bytes under the current policy.
func (rt *Runtime) alloc(caller int, bytes int) uint64 {
	if rt.Policy == Local {
		return rt.Space.AllocSharedOn(caller, bytes)
	}
	return rt.Space.AllocShared(bytes)
}

// GMallocF allocates a shared double-precision vector of n elements
// (parmacs G_MALLOC).
func (rt *Runtime) GMallocF(caller int, n int) memsim.FVec {
	return memsim.NewFVec(rt.alloc(caller, n*memsim.WordBytes), n)
}

// GMallocFSized allocates a shared float vector with explicit element size
// (4 for single precision).
func (rt *Runtime) GMallocFSized(caller, n, elemBytes int) memsim.FVec {
	return memsim.NewFVecSized(rt.alloc(caller, n*elemBytes), n, elemBytes)
}

// GMallocI allocates a shared int vector of n elements.
func (rt *Runtime) GMallocI(caller int, n int) memsim.IVec {
	return memsim.NewIVec(rt.alloc(caller, n*memsim.WordBytes), n)
}

// GMallocFOn / GMallocIOn allocate shared vectors homed at an explicit node
// regardless of policy (MCS queue nodes, per-node reduction slots).
func (rt *Runtime) GMallocFOn(home int, n int) memsim.FVec {
	return memsim.NewFVec(rt.Space.AllocSharedOn(home, n*memsim.WordBytes), n)
}

// GMallocIOn allocates a shared int vector homed at an explicit node.
func (rt *Runtime) GMallocIOn(home int, n int) memsim.IVec {
	return memsim.NewIVec(rt.Space.AllocSharedOn(home, n*memsim.WordBytes), n)
}

// WaitCreate is called by every node but 0 at program start: the node idles
// (charged to Start-up Wait, as in the paper's MSE-SM breakdown) until node
// 0 finishes serial initialization and calls Create.
func (rt *Runtime) WaitCreate(p *sim.Proc) {
	if p.ID == 0 {
		return
	}
	if rt.created {
		// The create event has already fired (in an earlier quantum's event
		// phase); idle until the creation time.
		p.WaitUntil(rt.createTime, stats.StartupWait)
		return
	}
	rt.mu.Lock()
	rt.startWait = append(rt.startWait, p)
	rt.mu.Unlock()
	p.Block(stats.StartupWait, "waiting for create()")
}

// Create is called by node 0 after initialization: it starts the worker
// function on all other nodes (parmacs create(f) duplicating the data
// segments — the duplication cost is part of node 0's initialization, which
// the application charges as computation).
func (rt *Runtime) Create(p *sim.Proc) {
	if p.ID != 0 {
		p.Fail(fmt.Errorf("%w: called by node %d, not node 0", ErrBadCreate, p.ID))
	}
	if rt.createCalled {
		p.Fail(fmt.Errorf("%w: called twice", ErrBadCreate))
	}
	rt.createCalled = true
	// Publish through an event: waiters are woken — and created becomes
	// observable — in the event phase, in processor-ID order, so the outcome
	// is identical however the host interleaved this quantum's processors.
	at := p.Clock()
	p.Schedule(at, func() {
		rt.created = true
		rt.createTime = at
		ws := rt.startWait
		rt.startWait = nil
		sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
		for _, w := range ws {
			w.Wake(at, nil)
		}
	})
}

// Barrier enters the hardware barrier (paper: 100 cycles from last arrival),
// charging the wait to the barrier category.
func (rt *Runtime) Barrier(p *sim.Proc) { rt.Bar.Wait(p, stats.BarrierWait) }

// --- MCS locks ---

// lockOpCycles is the instruction overhead of lock bookkeeping around the
// memory operations themselves.
const lockOpCycles = 12

// Lock is an MCS queue lock. Each processor spins on a separate,
// locally cached shared location; the releaser passes the lock with a
// single remote write that terminates the spin (paper §4.2 footnote 5).
// The tail pointer uses the machine's atomic swap; release uses
// compare-and-swap as in the original MCS algorithm (the paper's machine
// exposes atomic swap — MCS provides a swap-only release at the cost of
// extra handshaking, which we fold into the same modeled cost).
type Lock struct {
	rt   *Runtime
	tail memsim.IVec // one element: -1 free, else waiter node id

	locked []memsim.IVec // per node, homed at that node
	next   []memsim.IVec // per node, homed at that node
}

// NewLock allocates a lock. Called once (by node 0) during initialization.
func NewLock(rt *Runtime) *Lock {
	n := rt.Cfg.Procs
	l := &Lock{rt: rt, tail: rt.GMallocIOn(rt.lockSerial%n, 1)}
	rt.lockSerial++
	l.tail.V[0] = -1
	for i := 0; i < n; i++ {
		lv := rt.GMallocIOn(i, 1)
		nv := rt.GMallocIOn(i, 1)
		nv.V[0] = -1
		l.locked = append(l.locked, lv)
		l.next = append(l.next, nv)
	}
	return l
}

// Acquire takes the lock; all cycles (swap, queue linking, spinning) are
// charged to the Locks category.
func (l *Lock) Acquire(m *memsim.Mem) {
	p := m.P
	p.PushModeFull(stats.LockWait, stats.LockWait, stats.CntPrivateMisses,
		stats.LockWait, stats.LockWait)
	defer p.PopMode()
	me := p.ID
	p.Compute(lockOpCycles)
	l.next[me].Set(m, 0, -1)
	pred := l.rt.Pr.AtomicSwapI(m, &l.tail, 0, int64(me))
	if pred >= 0 {
		l.locked[me].Set(m, 0, 1)
		l.next[pred].Set(m, 0, int64(me))
		l.rt.Pr.SpinI(m, &l.locked[me], 0, stats.LockWait,
			func(v int64) bool { return v == 0 })
	}
}

// Release passes the lock to the next waiter, if any.
func (l *Lock) Release(m *memsim.Mem) {
	p := m.P
	p.PushModeFull(stats.LockWait, stats.LockWait, stats.CntPrivateMisses,
		stats.LockWait, stats.LockWait)
	defer p.PopMode()
	me := p.ID
	p.Compute(lockOpCycles)
	if l.next[me].Get(m, 0) < 0 {
		if l.rt.Pr.AtomicCASI(m, &l.tail, 0, int64(me), -1) {
			return
		}
		// A successor is linking itself in; wait for the link.
		l.rt.Pr.SpinI(m, &l.next[me], 0, stats.LockWait,
			func(v int64) bool { return v >= 0 })
	}
	succ := int(l.next[me].Get(m, 0))
	l.locked[succ].Set(m, 0, 0)
}

// --- MCS-style software reductions ---

// Op is a reduction combining operator.
type Op int

const (
	// OpSum adds contributions.
	OpSum Op = iota
	// OpMax keeps the maximum value (and its index).
	OpMax
	// OpMaxAbs keeps the value of largest magnitude (and its index).
	OpMaxAbs
)

func combine(op Op, v1 float64, i1 int64, v2 float64, i2 int64) (float64, int64) {
	switch op {
	case OpSum:
		return v1 + v2, 0
	case OpMax:
		if v2 > v1 {
			return v2, i2
		}
		return v1, i1
	case OpMaxAbs:
		if math.Abs(v2) > math.Abs(v1) {
			return v2, i2
		}
		return v1, i1
	}
	// Unreachable: Reduce validates op (failing the processor with
	// ErrUnknownOp) before combining.
	return v1, i1
}

// valid reports whether op names a defined combining operator.
func (op Op) valid() bool {
	return op == OpSum || op == OpMax || op == OpMaxAbs
}

// Runtime misuse errors, reported through the engine's structured abort path
// (matching am.ErrNoHandler) instead of panicking the host process.
var (
	// ErrBadCreate reports misuse of the create() primitive.
	ErrBadCreate = errors.New("parmacs: invalid create()")
	// ErrUnknownOp reports a reduction called with an undefined operator.
	ErrUnknownOp = errors.New("parmacs: unknown reduction op")
)

// Cats selects the accounting categories for a reduction: Gauss-SM reports
// reductions as their own row ("Reductions 6%"), while LCP-SM splits them
// into "Sync Comp" and "Sync Miss".
type Cats struct {
	Comp stats.Category // computation inside the primitive
	Miss stats.Category // cache-miss stalls inside the primitive
	Wait stats.Category // spin-waiting inside the primitive
}

// GaussCats charges everything to the Reductions row.
var GaussCats = Cats{Comp: stats.ReductionWait, Miss: stats.ReductionWait, Wait: stats.ReductionWait}

// SyncCats charges computation to Sync Comp and misses to Sync Miss.
var SyncCats = Cats{Comp: stats.SyncComp, Miss: stats.SyncMiss, Wait: stats.SyncComp}

// reduceOpCycles is the per-node instruction overhead of one reduction step.
const reduceOpCycles = 18

// Reduction combines values up a 4-ary tree, the structure of the MCS
// barrier's upward phase: each parent spins on locally homed per-child
// flags; children deposit a value and bump the flag with remote writes.
type Reduction struct {
	rt    *Runtime
	arity int

	flags []memsim.IVec // per node: one slot per child, homed at the node
	vals  []memsim.FVec // per node: contributed value, homed at the node
	idxs  []memsim.IVec // per node: contributed index
	round []int64       // per node local round counter (private bookkeeping)
}

// NewReduction allocates the reduction tree. Called once during
// initialization.
func NewReduction(rt *Runtime) *Reduction {
	n := rt.Cfg.Procs
	r := &Reduction{rt: rt, arity: 4, round: make([]int64, n)}
	for i := 0; i < n; i++ {
		r.flags = append(r.flags, rt.GMallocIOn(i, r.arity))
		r.vals = append(r.vals, rt.GMallocFOn(i, 1))
		r.idxs = append(r.idxs, rt.GMallocIOn(i, 1))
	}
	return r
}

// Reduce combines (val, idx) across all nodes, delivering the result at
// node 0 (zeros elsewhere). All nodes must call it in the same order.
func (r *Reduction) Reduce(m *memsim.Mem, val float64, idx int64, op Op, cats Cats) (float64, int64) {
	p := m.P
	if !op.valid() {
		p.Fail(fmt.Errorf("%w: op %d at node %d", ErrUnknownOp, int(op), p.ID))
	}
	p.PushModeFull(cats.Comp, cats.Miss, stats.CntPrivateMisses, cats.Miss, cats.Miss)
	defer p.PopMode()

	me := p.ID
	if comb := r.rt.Comb; comb != nil {
		// Hardware-combining ablation: one deposit instruction at the
		// network port, then the combined result arrives a fixed latency
		// after the last contributor — no flag spinning, no remote-homed
		// value traffic, no tree ascent. Result at node 0 only, zeros
		// elsewhere, preserving the software contract.
		p.Compute(reduceOpCycles)
		v, i := comb.Wait(p, cats.Wait, uint8(op), val, idx)
		if me == 0 {
			return v, i
		}
		return 0, 0
	}
	r.round[me]++
	round := r.round[me]
	p.Compute(reduceOpCycles)

	// Gather children (4-ary tree rooted at 0).
	for c := 0; c < r.arity; c++ {
		child := me*r.arity + 1 + c
		if child >= r.rt.Cfg.Procs {
			break
		}
		r.rt.Pr.SpinI(m, &r.flags[me], c, cats.Wait,
			func(v int64) bool { return v >= round })
		cv := r.vals[child].Get(m, 0)
		ci := r.idxs[child].Get(m, 0)
		val, idx = combine(op, val, idx, cv, ci)
		p.Compute(reduceOpCycles)
	}
	if me == 0 {
		return val, idx
	}
	// Deposit and notify the parent with remote writes.
	r.vals[me].Set(m, 0, val)
	r.idxs[me].Set(m, 0, idx)
	parent := (me - 1) / r.arity
	slot := (me - 1) % r.arity
	r.flags[parent].Set(m, slot, round)
	return 0, 0
}
