package faults_test

// End-to-end properties of fault injection on the full message-passing
// machine: same seed reproduces the run bit-for-bit, different seeds
// diverge, and a nil fault config leaves the machine bit-identical to the
// lossless seed behavior (golden numbers captured from the pre-fault tree).

import (
	"errors"
	"math"
	"testing"

	"repro/internal/apps/em3d"
	"repro/internal/apps/gauss"
	"repro/internal/apps/lcp"
	"repro/internal/apps/mse"
	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/stats"
)

// fingerprint flattens everything observable about a run: elapsed time and
// every per-category cycle and per-count event total.
func fingerprint(res *machine.Result) []float64 {
	fp := []float64{float64(res.Elapsed)}
	s := res.Summary
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		fp = append(fp, s.CyclesAll(c))
	}
	for c := stats.Count(0); c < stats.NumCounts; c++ {
		fp = append(fp, s.CountsAll(c))
	}
	return fp
}

func runFaultyEM3D(t *testing.T, seed uint64) *machine.Result {
	t.Helper()
	cfg := cost.Default(4)
	cfg.Faults = &cost.FaultsConfig{Seed: seed, DropRate: 0.02, DupRate: 0.01,
		CorruptRate: 0.005, DelayRate: 0.05}
	out := em3d.RunMP(cfg, cmmd.LopSided, em3d.Params{
		NodesPer: 30, Degree: 3, RemotePct: 30, Iters: 4, Seed: 1})
	if out.Res.Err != nil {
		t.Fatalf("faulty run aborted: %v", out.Res.Err)
	}
	if out.MaxErr > 1e-9 {
		t.Fatalf("reliable delivery should preserve the answer; maxErr=%g", out.MaxErr)
	}
	return out.Res
}

func TestSameFaultSeedReproducesRunExactly(t *testing.T) {
	a := fingerprint(runFaultyEM3D(t, 11))
	b := fingerprint(runFaultyEM3D(t, 11))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fingerprint[%d] diverged across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
	// And the run really exercised the fault machinery.
	s := runFaultyEM3D(t, 11).Summary
	if s.CountsAll(stats.CntRetransmissions) == 0 {
		t.Error("expected nonzero retransmissions at 2% drop")
	}
	if s.CyclesAll(stats.LibRetrans) == 0 {
		t.Error("expected nonzero Lib Retrans cycles")
	}
}

func TestDifferentFaultSeedsDiverge(t *testing.T) {
	a := fingerprint(runFaultyEM3D(t, 11))
	b := fingerprint(runFaultyEM3D(t, 12))
	for i := range a {
		if a[i] != b[i] {
			return
		}
	}
	t.Error("runs with different fault seeds are identical")
}

// TestFaultsOffBitIdenticalToSeed locks the zero-overhead property: with no
// fault config the machine must reproduce the exact cycle counts of the
// pre-fault-injection tree. These golden numbers were captured from the seed
// revision before any of the fault/transport code existed.
func TestFaultsOffBitIdenticalToSeed(t *testing.T) {
	type golden struct {
		name                        string
		elapsed                     int64
		total, comp, lib, net, msgs float64
	}
	em := em3d.RunMP(cost.Default(8), cmmd.LopSided,
		em3d.Params{NodesPer: 100, Degree: 4, RemotePct: 20, Iters: 10, Seed: 1})
	ga := gauss.RunMP(cost.Default(8), cmmd.LopSided, gauss.Params{N: 64, Seed: 1})
	lc := lcp.RunMP(cost.Default(4), cmmd.LopSided, lcp.Params{
		N: 256, NNZ: 16, Sweeps: 2, MaxSteps: 5, Tol: 1e-6, Omega: 1.0,
		LocalFrac: 0.5, DiagFactor: 1.2, Seed: 1})
	ms := mse.RunMP(cost.Default(4), cmmd.LopSided, mse.Params{
		Bodies: 64, Elems: 8, Iters: 3, Seed: 1})
	for _, c := range []struct {
		g   golden
		res *machine.Result
	}{
		{golden{"em3d", 1244929, 1244929, 1086591, 101271, 38588, 963}, em.Res},
		{golden{"gauss", 722408, 722408, 371364, 320022, 28908, 658}, ga.Res},
		{golden{"lcp", 416874, 416874, 336080, 47725, 19525, 488}, lc.Res},
		{golden{"mse", 29529024, 29529024, 28559460, 626712, 23423, 585}, ms.Res},
	} {
		s := c.res.Summary
		if c.res.Err != nil {
			t.Fatalf("%s: unexpected error %v", c.g.name, c.res.Err)
		}
		if c.res.Elapsed != c.g.elapsed {
			t.Errorf("%s elapsed = %d, want %d", c.g.name, c.res.Elapsed, c.g.elapsed)
		}
		checks := []struct {
			what string
			got  float64
			want float64
		}{
			{"total", s.TotalCyclesAll(), c.g.total},
			{"comp", s.CyclesAll(stats.Comp), c.g.comp},
			{"lib", s.CyclesAll(stats.LibComp), c.g.lib},
			{"net", s.CyclesAll(stats.NetAccess), c.g.net},
			{"msgs", s.CountsAll(stats.CntMessages), c.g.msgs},
		}
		// Golden values were captured at %.0f precision (per-processor
		// averages involve a float division), so compare rounded.
		for _, ch := range checks {
			if math.Round(ch.got) != ch.want {
				t.Errorf("%s %s = %f, want %.0f (faults-off behavior drifted from seed)",
					c.g.name, ch.what, ch.got, ch.want)
			}
		}
		if s.CyclesAll(stats.LibRetrans) != 0 {
			t.Errorf("%s: LibRetrans nonzero on a lossless run", c.g.name)
		}
		for _, cnt := range []stats.Count{stats.CntRetransmissions, stats.CntDropped,
			stats.CntDuplicates, stats.CntCorrupt, stats.CntAcks} {
			if v := s.CountsAll(cnt); v != 0 {
				t.Errorf("%s: %v = %.0f on a lossless run, want 0", c.g.name, cnt, v)
			}
		}
	}
}

// TestRetryBudgetExhaustionReportsStarvation drives the drop rate to 1 so no
// packet ever arrives: the transport must give up after its retry budget and
// surface a structured StarvationError naming the node, peer, and oldest
// unacked sequence number — not deadlock, not panic.
func TestRetryBudgetExhaustionReportsStarvation(t *testing.T) {
	cfg := cost.Default(4)
	cfg.Faults = &cost.FaultsConfig{Seed: 1, DropRate: 1.0}
	out := em3d.RunMP(cfg, cmmd.LopSided, em3d.Params{
		NodesPer: 10, Degree: 2, RemotePct: 50, Iters: 2, Seed: 1})
	if out.Res.Err == nil {
		t.Fatal("run on a 100%-loss network should abort")
	}
	var se *faults.StarvationError
	if !errors.As(out.Res.Err, &se) {
		t.Fatalf("error %v is not a StarvationError", out.Res.Err)
	}
	if se.Node < 0 || se.Node >= 4 || se.Peer < 0 || se.Peer >= 4 || se.Node == se.Peer {
		t.Errorf("implausible starvation endpoints: node %d peer %d", se.Node, se.Peer)
	}
	if se.OldestUnacked == 0 {
		t.Error("oldest unacked seq should be >= 1")
	}
	if se.Retries == 0 {
		t.Error("retries should be > 0 at give-up")
	}
	if se.Now <= se.FirstSent {
		t.Error("give-up time should come after first send")
	}
}
