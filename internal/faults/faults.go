// Package faults implements deterministic network fault injection for the
// simulated message-passing machine. The paper's CM-5 network is
// contention-free and lossless (Table 1); this package adds the measurement
// axis the paper could not express: how do the time breakdowns degrade when
// packets are dropped, duplicated, delayed, or corrupted?
//
// A Plan is a schedule of fault rates — per network link and per virtual-time
// epoch — consulted by ni.Network on every packet injection. All randomness
// comes from seeded sim.RNG streams, one per source node, each drawn in that
// node's injection order: a run with the same configuration and seed
// reproduces the identical fault sequence bit-for-bit (which the determinism
// tests rely on) even when the engine dispatches the sending processors
// concurrently, because no stream is shared between processors.
package faults

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/sim"
)

// Rates holds the per-packet fault probabilities of one rule. All are in
// [0, 1). Faults are decided independently in a fixed order (drop first:
// a dropped packet consumes no further draws).
type Rates struct {
	Drop    float64 // lose the packet in the network
	Dup     float64 // deliver the packet twice
	Corrupt float64 // flip one payload bit (detected by the transport)
	Delay   float64 // add jitter to the delivery latency

	// MaxDelay bounds the jitter, drawn uniformly from [1, MaxDelay]
	// cycles. Zero means no jitter even if Delay > 0.
	MaxDelay int64
}

// Zero reports whether the rule can never fire.
func (r Rates) Zero() bool {
	return r.Drop == 0 && r.Dup == 0 && r.Corrupt == 0 && (r.Delay == 0 || r.MaxDelay == 0)
}

// LinkRule applies Rates to packets from Src to Dst. A negative Src or Dst
// is a wildcard. Rules are matched first-to-last; the first match wins.
type LinkRule struct {
	Src, Dst int
	Rates
}

// Epoch is one segment of the fault schedule: from Start (inclusive) until
// the next epoch's Start, the given rules apply. An empty rule list means a
// perfect network for the epoch.
type Epoch struct {
	Start sim.Time
	Rules []LinkRule
}

// Decision is the fate of one injected packet.
type Decision struct {
	Drop    bool
	Dup     bool
	Corrupt bool
	// Delay is extra delivery latency in cycles (0 = on time). When Dup is
	// set, DupDelay jitters the second copy independently.
	Delay    sim.Time
	DupDelay sim.Time
	// CorruptBit is the payload bit (0..159 of the 20-byte packet) the
	// network flips, when Corrupt is set.
	CorruptBit int
}

// Plan is a compiled fault schedule plus its randomness. Each source node
// draws from its own seeded stream (created on first use), so concurrently
// executing senders never contend for — or nondeterministically interleave
// on — a shared RNG. The mutex only guards the stream map; a stream itself
// is drawn from exclusively by its source node's processor.
type Plan struct {
	seed   uint64
	epochs []Epoch

	mu      sync.Mutex
	streams map[int]*sim.RNG

	// Decisions tallies consultations, for tests and reports. Updated
	// atomically: injections on different nodes race otherwise.
	Decisions int64
}

// NewPlan compiles a schedule. Epochs are sorted by start time; before the
// first epoch's start the network is perfect.
func NewPlan(seed uint64, epochs []Epoch) *Plan {
	es := append([]Epoch(nil), epochs...)
	sort.SliceStable(es, func(i, j int) bool { return es[i].Start < es[j].Start })
	return &Plan{seed: seed, epochs: es, streams: make(map[int]*sim.RNG)}
}

// stream returns src's private RNG, creating it deterministically from the
// plan seed on first use. Stream contents depend only on (seed, src), never
// on creation order.
func (p *Plan) stream(src int) *sim.RNG {
	p.mu.Lock()
	r := p.streams[src]
	if r == nil {
		r = sim.NewRNG(p.seed + uint64(int64(src)+1)*0x9E3779B97F4A7C15)
		p.streams[src] = r
	}
	p.mu.Unlock()
	return r
}

// Uniform builds the common case: one rate set on every link for the whole
// run.
func Uniform(seed uint64, r Rates) *Plan {
	return NewPlan(seed, []Epoch{{Start: 0, Rules: []LinkRule{{Src: -1, Dst: -1, Rates: r}}}})
}

// FromConfig builds a plan from the flat cost.FaultsConfig spec (rates
// already defaulted via WithDefaults).
func FromConfig(f cost.FaultsConfig) *Plan {
	return Uniform(f.Seed, Rates{
		Drop: f.DropRate, Dup: f.DupRate, Corrupt: f.CorruptRate,
		Delay: f.DelayRate, MaxDelay: f.MaxDelay,
	})
}

// rates returns the active rule for a packet from src to dst at time now,
// or false if no rule matches.
func (p *Plan) rates(now sim.Time, src, dst int) (Rates, bool) {
	var ep *Epoch
	for i := range p.epochs {
		if p.epochs[i].Start <= now {
			ep = &p.epochs[i]
		} else {
			break
		}
	}
	if ep == nil {
		return Rates{}, false
	}
	for i := range ep.Rules {
		r := &ep.Rules[i]
		if (r.Src < 0 || r.Src == src) && (r.Dst < 0 || r.Dst == dst) {
			return r.Rates, true
		}
	}
	return Rates{}, false
}

// Decide draws the fate of one packet injected at time now from src to dst.
// Draw order within a source's stream is fixed, so identical seeds replay
// identical sequences regardless of how sends on different nodes interleave.
func (p *Plan) Decide(now sim.Time, src, dst int) Decision {
	atomic.AddInt64(&p.Decisions, 1)
	r, ok := p.rates(now, src, dst)
	if !ok || r.Zero() {
		return Decision{}
	}
	rng := p.stream(src)
	var d Decision
	if r.Drop > 0 && rng.Float64() < r.Drop {
		d.Drop = true
		return d // a lost packet consumes no further draws
	}
	if r.Dup > 0 && rng.Float64() < r.Dup {
		d.Dup = true
	}
	if r.Corrupt > 0 && rng.Float64() < r.Corrupt {
		d.Corrupt = true
		d.CorruptBit = rng.Intn(160)
	}
	if r.Delay > 0 && r.MaxDelay > 0 && rng.Float64() < r.Delay {
		d.Delay = sim.Time(1 + rng.Intn(int(r.MaxDelay)))
	}
	if d.Dup && r.Delay > 0 && r.MaxDelay > 0 && rng.Float64() < r.Delay {
		d.DupDelay = sim.Time(1 + rng.Intn(int(r.MaxDelay)))
	}
	return d
}

// StarvationError is the structured report produced when the reliable
// transport exhausts its retry budget: the starved node, the unresponsive
// peer, and the oldest unacknowledged sequence number, in place of a bare
// deadlock panic.
type StarvationError struct {
	Node, Peer    int
	OldestUnacked uint64
	Retries       int
	FirstSent     sim.Time // when the oldest unacked packet was first injected
	Now           sim.Time
}

func (e *StarvationError) Error() string {
	return fmt.Sprintf(
		"faults: node %d starved: peer %d never acked seq %d after %d retries (first sent @%d, gave up @%d)",
		e.Node, e.Peer, e.OldestUnacked, e.Retries, e.FirstSent, e.Now)
}
