package faults

import (
	"sort"

	"repro/internal/snapshot"
)

// EncodeState contributes the fault plan's replay-relevant state: each
// source node's RNG position (sorted by node, since map order and stream
// creation order are not meaningful) and the consultation count. The
// compiled schedule itself is configuration, reconstructed from the run
// spec, so only the cursors into the random streams need to be pinned.
func (p *Plan) EncodeState(enc *snapshot.Enc) {
	enc.Section("faultplan", func(enc *snapshot.Enc) {
		p.mu.Lock()
		srcs := make([]int, 0, len(p.streams))
		for src := range p.streams {
			srcs = append(srcs, src)
		}
		sort.Ints(srcs)
		enc.U32(uint32(len(srcs)))
		for _, src := range srcs {
			enc.I64(int64(src))
			enc.U64(p.streams[src].State())
		}
		p.mu.Unlock()
		enc.I64(p.Decisions)
	})
}

// EncodeState contributes the control-fault plan's replay-relevant state:
// RNG position plus the decision/NACK/delay tallies.
func (p *CtrlPlan) EncodeState(enc *snapshot.Enc) {
	enc.Section("ctrlplan", func(enc *snapshot.Enc) {
		enc.U64(p.rng.State())
		enc.I64(p.Decisions)
		enc.I64(p.NACKs)
		enc.I64(p.Delayed)
	})
}
