package faults

import "repro/internal/snapshot"

// EncodeState contributes the fault plan's replay-relevant state: the RNG
// position and the consultation count. The compiled schedule itself is
// configuration, reconstructed from the run spec, so only the cursor into
// the random stream needs to be pinned.
func (p *Plan) EncodeState(enc *snapshot.Enc) {
	enc.Section("faultplan", func(enc *snapshot.Enc) {
		enc.U64(p.rng.State())
		enc.I64(p.Decisions)
	})
}

// EncodeState contributes the control-fault plan's replay-relevant state:
// RNG position plus the decision/NACK/delay tallies.
func (p *CtrlPlan) EncodeState(enc *snapshot.Enc) {
	enc.Section("ctrlplan", func(enc *snapshot.Enc) {
		enc.U64(p.rng.State())
		enc.I64(p.Decisions)
		enc.I64(p.NACKs)
		enc.I64(p.Delayed)
	})
}
