package faults

import (
	"strings"
	"testing"

	"repro/internal/cost"
)

func drawSequence(p *Plan, n int) []Decision {
	out := make([]Decision, n)
	for i := range out {
		out[i] = p.Decide(int64(i)*100, i%4, (i+1)%4)
	}
	return out
}

func TestSameSeedSameDecisions(t *testing.T) {
	r := Rates{Drop: 0.1, Dup: 0.05, Corrupt: 0.02, Delay: 0.2, MaxDelay: 400}
	a := drawSequence(Uniform(42, r), 500)
	b := drawSequence(Uniform(42, r), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedDifferentDecisions(t *testing.T) {
	r := Rates{Drop: 0.1, Dup: 0.05, Corrupt: 0.02, Delay: 0.2, MaxDelay: 400}
	a := drawSequence(Uniform(42, r), 500)
	b := drawSequence(Uniform(43, r), 500)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("500 decisions identical across different seeds")
	}
}

func TestZeroRatesNeverFault(t *testing.T) {
	p := Uniform(1, Rates{})
	for _, d := range drawSequence(p, 1000) {
		if d.Drop || d.Dup || d.Corrupt || d.Delay != 0 {
			t.Fatalf("fault decided under zero rates: %+v", d)
		}
	}
}

func TestRatesAreApproximatelyHonored(t *testing.T) {
	const n = 20000
	p := Uniform(7, Rates{Drop: 0.1})
	drops := 0
	for _, d := range drawSequence(p, n) {
		if d.Drop {
			drops++
		}
	}
	// 3-sigma band around the binomial mean (2000 ± ~127).
	if drops < 1800 || drops > 2200 {
		t.Errorf("drops = %d of %d at rate 0.1", drops, n)
	}
}

func TestLinkRuleFirstMatchWins(t *testing.T) {
	p := NewPlan(1, []Epoch{{
		Start: 0,
		Rules: []LinkRule{
			{Src: 0, Dst: 1, Rates: Rates{Drop: 1}},
			{Src: -1, Dst: -1, Rates: Rates{}},
		},
	}})
	if d := p.Decide(0, 0, 1); !d.Drop {
		t.Error("specific 0->1 rule should drop")
	}
	if d := p.Decide(0, 1, 0); d.Drop {
		t.Error("wildcard rule should not drop 1->0")
	}
	if d := p.Decide(0, 2, 3); d.Drop {
		t.Error("wildcard rule should not drop 2->3")
	}
}

func TestWildcardSrcMatchesAnySource(t *testing.T) {
	p := NewPlan(1, []Epoch{{
		Rules: []LinkRule{{Src: -1, Dst: 2, Rates: Rates{Drop: 1}}},
	}})
	for src := 0; src < 4; src++ {
		if d := p.Decide(0, src, 2); !d.Drop {
			t.Errorf("src %d -> 2 should match the wildcard-src rule", src)
		}
	}
	if d := p.Decide(0, 0, 3); d.Drop {
		t.Error("0 -> 3 matches no rule and must pass cleanly")
	}
}

func TestEpochScheduleSwitchesRates(t *testing.T) {
	p := NewPlan(1, []Epoch{
		{Start: 0, Rules: []LinkRule{{Src: -1, Dst: -1, Rates: Rates{Drop: 1}}}},
		{Start: 5000, Rules: []LinkRule{{Src: -1, Dst: -1, Rates: Rates{}}}},
	})
	if d := p.Decide(4999, 0, 1); !d.Drop {
		t.Error("pre-switch packet should drop")
	}
	if d := p.Decide(5000, 0, 1); d.Drop {
		t.Error("post-switch packet should pass")
	}
}

func TestEpochsSortedByStart(t *testing.T) {
	// Epochs given out of order must still apply chronologically.
	p := NewPlan(1, []Epoch{
		{Start: 5000, Rules: []LinkRule{{Src: -1, Dst: -1, Rates: Rates{}}}},
		{Start: 0, Rules: []LinkRule{{Src: -1, Dst: -1, Rates: Rates{Drop: 1}}}},
	})
	if d := p.Decide(100, 0, 1); !d.Drop {
		t.Error("first epoch (start 0) should drop")
	}
	if d := p.Decide(6000, 0, 1); d.Drop {
		t.Error("second epoch (start 5000) should pass")
	}
}

func TestDelayBounded(t *testing.T) {
	p := Uniform(3, Rates{Delay: 1, MaxDelay: 250})
	sawPositive := false
	for _, d := range drawSequence(p, 1000) {
		if d.Delay < 0 || d.Delay > 250 {
			t.Fatalf("delay %d outside [0, 250]", d.Delay)
		}
		if d.Delay > 0 {
			sawPositive = true
		}
	}
	if !sawPositive {
		t.Error("delay rate 1 produced no positive delays")
	}
}

func TestFromConfigMatchesUniform(t *testing.T) {
	fc := cost.FaultsConfig{Seed: 9, DropRate: 0.2, DupRate: 0.1,
		CorruptRate: 0.05, DelayRate: 0.3}
	fc = fc.WithDefaults(100)
	a := drawSequence(FromConfig(fc), 300)
	b := drawSequence(Uniform(9, Rates{Drop: 0.2, Dup: 0.1, Corrupt: 0.05,
		Delay: 0.3, MaxDelay: fc.MaxDelay}), 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStarvationErrorMessage(t *testing.T) {
	err := &StarvationError{Node: 3, Peer: 1, OldestUnacked: 42, Retries: 16,
		FirstSent: 1000, Now: 99000}
	msg := err.Error()
	for _, want := range []string{"node 3", "peer 1", "seq 42", "16 retries"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestDecisionCountAdvances(t *testing.T) {
	p := Uniform(1, Rates{Drop: 0.5})
	drawSequence(p, 10)
	if p.Decisions != 10 {
		t.Errorf("Decisions = %d, want 10", p.Decisions)
	}
}
