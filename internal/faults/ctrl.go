package faults

// Control-message fault injection for the shared-memory machine's coherence
// protocol: the symmetric counterpart of the packet-level Plan used by the
// message-passing network. Coherence traffic does not traverse the simulated
// packet network, so its faults are modeled at the protocol-message level —
// the home directory can NACK an arriving request, and any control message
// (reply, invalidation, recall, acknowledgement) can be delayed or reordered
// past later messages. As with Plan, all randomness comes from a seeded
// sim.RNG drawn in simulation order, so identical seeds replay identical
// fault sequences bit-for-bit.

import (
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/sim"
)

// CtrlRates holds the per-message fault probabilities of one rule. All are
// in [0, 1). Faults are decided independently in a fixed order (NACK first:
// a NACKed request consumes no further draws).
type CtrlRates struct {
	NACK    float64 // home directory refuses an arriving request
	Reorder float64 // defer a message past at least one latency window
	Delay   float64 // add jitter to the delivery latency

	// MaxDelay bounds the extra jitter, drawn uniformly from [1, MaxDelay]
	// cycles. Zero means no jitter even if Delay > 0. A reordered message
	// is deferred by one full window plus the same jitter draw.
	MaxDelay int64
}

// Zero reports whether the rule can never fire.
func (r CtrlRates) Zero() bool {
	return r.NACK == 0 && ((r.Reorder == 0 && r.Delay == 0) || r.MaxDelay == 0)
}

// CtrlRule applies CtrlRates to messages from Src to Dst. A negative Src or
// Dst is a wildcard. Rules are matched first-to-last; the first match wins.
type CtrlRule struct {
	Src, Dst int
	CtrlRates
}

// CtrlEpoch is one segment of the control-fault schedule: from Start
// (inclusive) until the next epoch's Start, the given rules apply.
type CtrlEpoch struct {
	Start sim.Time
	Rules []CtrlRule
}

// CtrlDecision is the fate of one coherence-protocol message.
type CtrlDecision struct {
	// NACK directs the home to refuse the request (requests only; the
	// protocol ignores it for replies, invalidations, and acks).
	NACK bool
	// Delay is extra delivery latency in cycles (0 = on time). Reordering
	// appears here too: a reordered message carries at least one full
	// window of extra delay, so later messages on the link overtake it.
	Delay sim.Time
}

// CtrlPlan is a compiled control-fault schedule plus its RNG. It is
// consulted once per protocol message, in simulation order.
type CtrlPlan struct {
	rng    *sim.RNG
	epochs []CtrlEpoch
	window int64 // the reorder deferral unit (the network latency)

	// Decisions, NACKs, Delayed tally consultations and fired faults, for
	// tests and reports.
	Decisions, NACKs, Delayed int64
}

// NewCtrlPlan compiles a schedule. Epochs are sorted by start time; before
// the first epoch's start the interconnect is perfect. window is the
// reorder deferral unit, normally the network latency.
func NewCtrlPlan(seed uint64, window int64, epochs []CtrlEpoch) *CtrlPlan {
	es := append([]CtrlEpoch(nil), epochs...)
	sort.SliceStable(es, func(i, j int) bool { return es[i].Start < es[j].Start })
	if window <= 0 {
		window = 100
	}
	return &CtrlPlan{rng: sim.NewRNG(seed), epochs: es, window: window}
}

// CtrlUniform builds the common case: one rate set on every link for the
// whole run.
func CtrlUniform(seed uint64, window int64, r CtrlRates) *CtrlPlan {
	return NewCtrlPlan(seed, window,
		[]CtrlEpoch{{Start: 0, Rules: []CtrlRule{{Src: -1, Dst: -1, CtrlRates: r}}}})
}

// CtrlFromConfig builds a plan from the flat cost.SMFaultsConfig spec
// (tuning already defaulted via WithDefaults); window is the network
// latency.
func CtrlFromConfig(f cost.SMFaultsConfig, window int64) *CtrlPlan {
	return CtrlUniform(f.Seed, window, CtrlRates{
		NACK: f.NACKRate, Reorder: f.ReorderRate, Delay: f.DelayRate,
		MaxDelay: f.MaxDelay,
	})
}

// rates returns the active rule for a message from src to dst at time now,
// or false if no rule matches.
func (p *CtrlPlan) rates(now sim.Time, src, dst int) (CtrlRates, bool) {
	var ep *CtrlEpoch
	for i := range p.epochs {
		if p.epochs[i].Start <= now {
			ep = &p.epochs[i]
		} else {
			break
		}
	}
	if ep == nil {
		return CtrlRates{}, false
	}
	for i := range ep.Rules {
		r := &ep.Rules[i]
		if (r.Src < 0 || r.Src == src) && (r.Dst < 0 || r.Dst == dst) {
			return r.CtrlRates, true
		}
	}
	return CtrlRates{}, false
}

// DecideRequest draws the fate of a coherence request arriving at the home
// directory: NACK, extra delay, or clean service. Draw order is fixed so
// identical seeds replay identical sequences.
func (p *CtrlPlan) DecideRequest(now sim.Time, src, dst int) CtrlDecision {
	p.Decisions++
	r, ok := p.rates(now, src, dst)
	if !ok || r.Zero() {
		return CtrlDecision{}
	}
	if r.NACK > 0 && p.rng.Float64() < r.NACK {
		p.NACKs++
		return CtrlDecision{NACK: true} // a refused request consumes no further draws
	}
	return p.delayDraws(r)
}

// DecideMessage draws the fate of a non-request protocol message (reply,
// invalidation, recall, acknowledgement): extra delay or on-time delivery.
func (p *CtrlPlan) DecideMessage(now sim.Time, src, dst int) CtrlDecision {
	p.Decisions++
	r, ok := p.rates(now, src, dst)
	if !ok || r.Zero() {
		return CtrlDecision{}
	}
	return p.delayDraws(r)
}

func (p *CtrlPlan) delayDraws(r CtrlRates) CtrlDecision {
	var d CtrlDecision
	if r.MaxDelay <= 0 {
		return d
	}
	if r.Reorder > 0 && p.rng.Float64() < r.Reorder {
		d.Delay += sim.Time(p.window) + sim.Time(1+p.rng.Intn(int(r.MaxDelay)))
	}
	if r.Delay > 0 && p.rng.Float64() < r.Delay {
		d.Delay += sim.Time(1 + p.rng.Intn(int(r.MaxDelay)))
	}
	if d.Delay > 0 {
		p.Delayed++
	}
	return d
}

// RetryStarvationError is the structured report produced when a requester
// exhausts its NACK retry budget: the starved node, the home that kept
// refusing, the block, and the backoff history, in place of a silent
// livelock — the shared-memory analogue of StarvationError.
type RetryStarvationError struct {
	Node, Home int
	Block      uint64
	Kind       string // the refused request kind (GETS/GETX/UPGRADE)
	Retries    int
	FirstSent  sim.Time // when the request was first issued
	Now        sim.Time
}

func (e *RetryStarvationError) Error() string {
	return fmt.Sprintf(
		"faults: node %d starved: home %d NACKed %s of block %#x %d times (first sent @%d, gave up @%d)",
		e.Node, e.Home, e.Kind, e.Block, e.Retries, e.FirstSent, e.Now)
}
