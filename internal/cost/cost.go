// Package cost defines the hardware cost model shared by the simulated
// message-passing and shared-memory machines.
//
// The values mirror Tables 1-3 of Chandra, Larus, and Rogers, "Where is Time
// Spent in Message-Passing and Shared-Memory Programs?" (ASPLOS 1994). Both
// machines are modeled after a Thinking Machines CM-5: workstation-like nodes
// with a SPARC processor, a 256 KB 4-way set-associative cache, local DRAM,
// and a point-to-point network with a constant 100-cycle latency and no
// contention. All times are in processor cycles (the paper assumes a 30 ns
// cycle).
package cost

import "fmt"

// Config collects every hardware parameter of the simulated machines.
// The zero value is not useful; start from Default.
type Config struct {
	// Procs is the number of processor nodes (the paper uses 32 for all
	// experiments; 1-128 are supported).
	Procs int

	// --- Table 1: common hardware characteristics ---

	CacheBytes int // cache capacity (256 KB)
	CacheAssoc int // set associativity (4-way, random replacement)
	BlockBytes int // cache block size (32 bytes)

	TLBEntries int // fully associative, FIFO replacement (64)
	PageBytes  int // page size (4 KB)

	NetLatency     int64 // remote message latency (100 cycles)
	BarrierLatency int64 // barrier cost from last arrival (100 cycles)

	PrivateMissCycles int64 // private cache miss, excluding DRAM (11)
	DRAMCycles        int64 // DRAM access (10)

	// TLBMissCycles is the cost of a TLB refill. The paper reports TLB miss
	// cycles (Table 14) but not the unit cost; 30 cycles reproduces EM3D's
	// initialization TLB time.
	TLBMissCycles int64

	// --- Table 2: message-passing machine ---

	MPReplacement  int64 // replacement cost with infinite write buffer (1)
	NIStatusCycles int64 // network-interface status word access (5)
	NIWriteTagDest int64 // write tag + destination (5)
	NISendCycles   int64 // send 5 words, including stores (15)
	NIRecvCycles   int64 // receive 5 words, including loads (15)

	PacketBytes   int // wire size of one packet (20, as on the CM-5)
	PacketPayload int // payload bytes after the tag/header word (16)

	// Software overheads of the communication stack. These are calibration
	// constants, not Table 2 values: the paper runs the real CMAML/CMMD
	// binaries and observes their cost ("the high latency of sending and
	// receiving a message"; LogP's premise that send/receive overhead
	// exceeds the 100-cycle network latency). Defaults reproduce the
	// paper's library-time fractions.

	AMSendCycles     int64 // CMAML software overhead composing a request, beyond NI stores
	AMDispatchCycles int64 // CMAML poll-and-dispatch overhead invoking a handler
	CMMDCallCycles   int64 // CMMD high-level send/recv entry: channel setup, bookkeeping
	CMMDPerPacket    int64 // CMMD per-packet software cost while streaming a channel
	CollectiveEntry  int64 // software entry cost of a reduction/broadcast call

	// --- Table 3: shared-memory machine ---

	MsgToSelf         int64 // message to own node (10)
	SharedMissCycles  int64 // shared cache miss, processor side (19)
	InvalidateCycles  int64 // cache invalidate at a sharer (3)
	ReplPrivate       int64 // replacement: private block (1)
	ReplSharedClean   int64 // replacement: shared, clean (5)
	ReplSharedDirty   int64 // replacement: shared, dirty (13)
	DirBase           int64 // directory occupancy per request (10)
	DirBlockRecv      int64 // + if a cache block is received (8)
	DirMsgSend        int64 // + if a message is sent (5)
	DirBlockSend      int64 // + if a cache block is sent (8)
	SMMsgBytes        int   // shared-memory message size (40: block + control)
	SMMsgControlBytes int   // control portion of a block-carrying message (8)

	// --- In-network combining ablation (extension; the paper's machines
	// deliberately omit reduction/broadcast hardware, §4) ---

	// HWCombining, when true, gives both machines an in-network combining
	// tree (NYU Ultracomputer / CM-5 control-network style): reductions
	// deposit a contribution at the network port and receive the combined
	// result CombiningLatency cycles after the last contributor, instead of
	// ascending the software reduction trees. The ablation measures how
	// much of the software reduction time (Gauss's "Reductions" row and the
	// MP library's collective time) hardware combining would reclaim at
	// large P. Off (the default) leaves runs bit-identical to the seed.
	HWCombining bool

	// CombiningLatency is the combined-result delivery latency from the
	// last contribution, in cycles. Like the hardware barrier, delivery is
	// a fixed latency from the last arrival (100 by default, matching
	// BarrierLatency: the same control-network style mechanism).
	CombiningLatency int64

	// --- Fault injection and reliable transport (extension; not in the
	// paper, whose CM-5 network is lossless) ---

	// Faults, when non-nil, enables deterministic network fault injection
	// on the message-passing machine and layers the reliable-delivery
	// transport over active messages. Nil (the default) leaves the seed's
	// perfect-network fast path untouched.
	Faults *FaultsConfig

	// Software costs of the reliable transport, charged to the LibRetrans
	// category. Only incurred when Faults is non-nil.
	RelSeqCycles     int64 // sender sequence/window bookkeeping per packet
	RelAckCycles     int64 // composing or processing one cumulative ack
	RelRetransCycles int64 // software overhead per retransmitted packet

	// --- Shared-memory robustness layer (extension; not in the paper,
	// whose directory protocol is assumed bug-free on a perfect
	// interconnect) ---

	// SMCheck enables the runtime coherence invariant checker: after every
	// directory transaction settles, the checker verifies single-writer/
	// multiple-reader, directory/cache-state agreement, and per-home message
	// conservation, aborting the run with a structured
	// coherence.InvariantError on the first violation. Off (the default)
	// adds zero overhead and leaves runs bit-identical.
	SMCheck bool

	// SMFaults, when non-nil, enables deterministic fault injection on the
	// shared-memory machine's coherence traffic (directory NACKs, message
	// delay/reordering) and arms the requester-side NACK/retry loop. Nil
	// (the default) leaves the perfect-interconnect fast path untouched.
	SMFaults *SMFaultsConfig

	// SMWatchdog, when positive, arms a livelock/deadlock watchdog on the
	// shared-memory machine: if no directory transaction completes for this
	// many cycles of virtual time, the run aborts with a stall report naming
	// the hot blocks and each node's last protocol action. Zero disables it.
	SMWatchdog int64

	// NACKRetryCycles is the software overhead of re-issuing a NACKed
	// coherence request, charged to the DirRetry category on top of the
	// backoff wait. Only incurred when SMFaults is non-nil.
	NACKRetryCycles int64

	// Workers bounds how many target processors the engine may execute
	// concurrently on host cores within each quantum (sim.Engine.Workers):
	// 0 uses GOMAXPROCS, 1 forces serial dispatch. A host-side throughput
	// knob, never a model parameter — every value produces bit-identical
	// simulations, which is why it is excluded from JSON run specs and
	// snapshots (see the serial/parallel determinism tests).
	Workers int `json:"-"`

	// PerAccessStats switches processor accounts to the per-access reference
	// charging mode (sim.Engine.PerAccessStats): every Charge/Add applies
	// directly to the phase table instead of batching into a per-quantum
	// accumulator. Both modes are bit-identical in every observable — this
	// switch exists so the equivalence tests can prove it — so like Workers
	// it is a host-side knob excluded from JSON run specs and snapshots.
	PerAccessStats bool `json:"-"`

	// OnBuild, when non-nil, is invoked once at the end of machine
	// construction with the assembled machine (*machine.MPMachine or
	// *machine.SMMachine), before any simulated cycle runs. It exists so
	// callers that only reach the machine through an application's Run
	// function (which builds and runs in one step) can still install
	// engine hooks — the checkpoint/restart runner uses it to attach its
	// quantum-boundary snapshot trigger. The callback must not start the
	// run itself. Typed any because cost sits below the machine package.
	OnBuild func(m any) `json:"-"`
}

// SMFaultsConfig is the shared-memory fault-injection specification: one
// rate set applied to every coherence-protocol link for the whole run, plus
// NACK/retry tuning. Richer per-link, per-epoch schedules are built directly
// with faults.NewCtrlPlan; machine construction converts this spec into a
// single-epoch wildcard plan.
type SMFaultsConfig struct {
	// Seed drives the control-message fault plan's deterministic RNG.
	// Identical seeds (and configurations) reproduce identical fault
	// sequences bit-for-bit.
	Seed uint64

	// NACKRate is the per-request probability in [0,1) that the home
	// directory NACKs an arriving coherence request instead of servicing
	// it; the requester backs off exponentially and retries.
	NACKRate float64

	// ReorderRate is the per-message probability in [0,1) that a protocol
	// control message (reply, invalidation, recall, acknowledgement) is
	// deferred past at least one full network-latency window, letting later
	// messages overtake it.
	ReorderRate float64

	// DelayRate is the per-message probability in [0,1) of extra delivery
	// jitter, uniform in [1, MaxDelay] cycles.
	DelayRate float64

	// MaxDelay bounds the extra jitter in cycles (default 4x the network
	// latency).
	MaxDelay int64

	// Backoff is the initial requester backoff after a NACK, in cycles
	// (default 4x the network latency); it doubles per consecutive NACK of
	// the same request up to BackoffMax (default 64x Backoff).
	Backoff, BackoffMax int64

	// RetryBudget bounds consecutive NACKs of one request; exhausting it
	// aborts the run with a structured faults.RetryStarvationError instead
	// of livelocking (default 16).
	RetryBudget int
}

// WithDefaults returns a copy of f with unset tuning fields filled from the
// machine's network latency.
func (f SMFaultsConfig) WithDefaults(netLatency int64) SMFaultsConfig {
	if f.MaxDelay <= 0 {
		f.MaxDelay = 4 * netLatency
	}
	if f.Backoff <= 0 {
		f.Backoff = 4 * netLatency
	}
	if f.BackoffMax <= 0 {
		f.BackoffMax = 64 * f.Backoff
	}
	if f.RetryBudget <= 0 {
		f.RetryBudget = 16
	}
	return f
}

// FaultsConfig is the uniform fault-injection specification: one rate set
// applied to every link for the whole run, plus reliable-transport tuning.
// Richer per-link, per-epoch schedules are built directly with
// faults.NewPlan; machine construction converts this spec into a
// single-epoch wildcard plan.
type FaultsConfig struct {
	// Seed drives the fault plan's deterministic RNG. Identical seeds (and
	// configurations) reproduce identical fault sequences bit-for-bit.
	Seed uint64

	// DropRate, DupRate, CorruptRate, and DelayRate are per-packet
	// probabilities in [0,1) that an injected packet is dropped, delivered
	// twice, delivered with a flipped payload bit, or delayed by extra
	// jitter.
	DropRate, DupRate, CorruptRate, DelayRate float64

	// MaxDelay bounds the extra delivery jitter in cycles (uniform in
	// [1, MaxDelay]; default 4x the network latency).
	MaxDelay int64

	// RTO is the transport's initial retransmission timeout in cycles
	// (default 12x the network latency); it backs off exponentially to
	// RTOMax (default 64x RTO) and resets when a cumulative ack makes
	// progress.
	RTO, RTOMax int64

	// MaxRetries bounds consecutive timeouts without ack progress for any
	// one peer; exhausting it aborts the run with a structured starvation
	// report instead of deadlocking (default 16).
	MaxRetries int

	// Window is the go-back-N send window and receiver dedup/reorder
	// window, in packets per peer (default 64).
	Window int
}

// WithDefaults returns a copy of f with unset tuning fields filled from the
// machine's network latency.
func (f FaultsConfig) WithDefaults(netLatency int64) FaultsConfig {
	if f.MaxDelay <= 0 {
		f.MaxDelay = 4 * netLatency
	}
	if f.RTO <= 0 {
		f.RTO = 12 * netLatency
	}
	if f.RTOMax <= 0 {
		f.RTOMax = 64 * f.RTO
	}
	if f.MaxRetries <= 0 {
		f.MaxRetries = 16
	}
	if f.Window <= 0 {
		f.Window = 64
	}
	return f
}

// Default returns the paper's machine configuration (Tables 1-3) for the
// given number of processors.
func Default(procs int) Config {
	return Config{
		Procs: procs,

		CacheBytes: 256 << 10,
		CacheAssoc: 4,
		BlockBytes: 32,

		TLBEntries: 64,
		PageBytes:  4 << 10,

		NetLatency:     100,
		BarrierLatency: 100,

		PrivateMissCycles: 11,
		DRAMCycles:        10,
		TLBMissCycles:     30,

		MPReplacement:  1,
		NIStatusCycles: 5,
		NIWriteTagDest: 5,
		NISendCycles:   15,
		NIRecvCycles:   15,

		PacketBytes:   20,
		PacketPayload: 16,

		AMSendCycles:     45,
		AMDispatchCycles: 45,
		CMMDCallCycles:   250,
		CMMDPerPacket:    42,
		CollectiveEntry:  80,

		CombiningLatency: 100,

		MsgToSelf:         10,
		SharedMissCycles:  19,
		InvalidateCycles:  3,
		ReplPrivate:       1,
		ReplSharedClean:   5,
		ReplSharedDirty:   13,
		DirBase:           10,
		DirBlockRecv:      8,
		DirMsgSend:        5,
		DirBlockSend:      8,
		SMMsgBytes:        40,
		SMMsgControlBytes: 8,

		RelSeqCycles:     8,
		RelAckCycles:     12,
		RelRetransCycles: 30,

		NACKRetryCycles: 19,
	}
}

// Sets returns the number of cache sets implied by the configuration.
func (c *Config) Sets() int { return c.CacheBytes / (c.BlockBytes * c.CacheAssoc) }

// PrivateMissTotal is the full cost of a private-data cache miss: the miss
// handling plus the DRAM access (Table 1 footnote: the 11 cycles exclude
// DRAM).
func (c *Config) PrivateMissTotal() int64 { return c.PrivateMissCycles + c.DRAMCycles }

// Validate reports whether the configuration is internally consistent.
func (c *Config) Validate() error {
	switch {
	case c.Procs < 1 || c.Procs > 4096:
		return errf("procs %d out of range [1,4096]", c.Procs)
	case c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return errf("block size %d must be a positive power of two", c.BlockBytes)
	case c.CacheBytes%(c.BlockBytes*c.CacheAssoc) != 0:
		return errf("cache size %d not divisible by block*assoc", c.CacheBytes)
	case c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0:
		return errf("page size %d must be a positive power of two", c.PageBytes)
	case c.PacketPayload >= c.PacketBytes:
		return errf("packet payload %d must leave room for the header in %d",
			c.PacketPayload, c.PacketBytes)
	case c.NetLatency <= 0:
		return errf("network latency must be positive")
	}
	if f := c.Faults; f != nil {
		for _, r := range []struct {
			name string
			v    float64
		}{{"drop", f.DropRate}, {"dup", f.DupRate},
			{"corrupt", f.CorruptRate}, {"delay", f.DelayRate}} {
			if r.v < 0 || r.v > 1 {
				return errf("fault %s rate %g out of range [0,1]", r.name, r.v)
			}
		}
		if f.MaxDelay < 0 || f.RTO < 0 || f.RTOMax < 0 || f.MaxRetries < 0 || f.Window < 0 {
			return errf("fault tuning fields must be non-negative")
		}
	}
	if f := c.SMFaults; f != nil {
		for _, r := range []struct {
			name string
			v    float64
		}{{"nack", f.NACKRate}, {"reorder", f.ReorderRate}, {"delay", f.DelayRate}} {
			if r.v < 0 || r.v > 1 {
				return errf("sm fault %s rate %g out of range [0,1]", r.name, r.v)
			}
		}
		if f.MaxDelay < 0 || f.Backoff < 0 || f.BackoffMax < 0 || f.RetryBudget < 0 {
			return errf("sm fault tuning fields must be non-negative")
		}
	}
	if c.SMWatchdog < 0 {
		return errf("sm watchdog window must be non-negative")
	}
	if c.HWCombining && c.CombiningLatency <= 0 {
		return errf("hw combining needs a positive combining latency")
	}
	return nil
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
