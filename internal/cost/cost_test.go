package cost

import "testing"

func TestDefaultMatchesPaperTables(t *testing.T) {
	c := Default(32)
	// Table 1.
	if c.CacheBytes != 256<<10 || c.CacheAssoc != 4 || c.BlockBytes != 32 {
		t.Error("cache geometry differs from Table 1")
	}
	if c.TLBEntries != 64 || c.PageBytes != 4096 {
		t.Error("TLB/page differs from Table 1")
	}
	if c.NetLatency != 100 || c.BarrierLatency != 100 {
		t.Error("latencies differ from Table 1")
	}
	if c.PrivateMissCycles != 11 || c.DRAMCycles != 10 {
		t.Error("miss costs differ from Table 1")
	}
	// Table 2.
	if c.NIStatusCycles != 5 || c.NIWriteTagDest != 5 || c.NISendCycles != 15 || c.NIRecvCycles != 15 {
		t.Error("NI costs differ from Table 2")
	}
	if c.PacketBytes != 20 {
		t.Error("packet size differs from the CM-5's 20 bytes")
	}
	// Table 3.
	if c.MsgToSelf != 10 || c.SharedMissCycles != 19 || c.InvalidateCycles != 3 {
		t.Error("SM costs differ from Table 3")
	}
	if c.ReplPrivate != 1 || c.ReplSharedClean != 5 || c.ReplSharedDirty != 13 {
		t.Error("replacement costs differ from Table 3")
	}
	if c.DirBase != 10 || c.DirBlockRecv != 8 || c.DirMsgSend != 5 || c.DirBlockSend != 8 {
		t.Error("directory costs differ from Table 3")
	}
	if c.SMMsgBytes != 40 {
		t.Error("SM message size differs from §4 (40 bytes)")
	}
	if c.Sets() != 2048 {
		t.Errorf("sets = %d, want 2048", c.Sets())
	}
	if c.PrivateMissTotal() != 21 {
		t.Errorf("private miss total = %d, want 21", c.PrivateMissTotal())
	}
}

func TestValidate(t *testing.T) {
	good := Default(8)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Procs = 0 },
		func(c *Config) { c.BlockBytes = 24 },
		func(c *Config) { c.CacheBytes = 1000 },
		func(c *Config) { c.PageBytes = 3000 },
		func(c *Config) { c.PacketPayload = 20 },
		func(c *Config) { c.NetLatency = 0 },
	}
	for i, breakIt := range cases {
		c := Default(8)
		breakIt(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
