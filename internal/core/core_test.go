package core

import (
	"bytes"
	"testing"

	"repro/internal/tables"
)

func TestRegistryCoversAllPaperTables(t *testing.T) {
	covered := map[int]bool{}
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil {
			t.Errorf("%s: nil runner", e.ID)
		}
		if e.Description == "" || e.Bench == "" || len(e.Modules) == 0 {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
		for _, tb := range e.Tables {
			if covered[tb] {
				t.Errorf("table %d claimed twice", tb)
			}
			covered[tb] = true
		}
	}
	for tb := 4; tb <= 23; tb++ {
		if !covered[tb] {
			t.Errorf("paper table %d not covered by any experiment", tb)
		}
	}
}

func TestByID(t *testing.T) {
	if ByID("em3d") == nil {
		t.Error("em3d not found")
	}
	if ByID("nope") != nil {
		t.Error("unknown id resolved")
	}
}

func TestQuickExperimentProducesTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced Gauss experiment")
	}
	e := ByID("gauss")
	ts := e.Run(tables.Quick)
	if len(ts) != 4 {
		t.Fatalf("gauss produced %d tables, want 4", len(ts))
	}
	for _, want := range e.Tables {
		tb := tables.Find(ts, want)
		if tb == nil {
			t.Fatalf("table %d missing", want)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("table %d empty", want)
		}
		var buf bytes.Buffer
		tb.Render(&buf)
		if buf.Len() == 0 {
			t.Fatalf("table %d rendered empty", want)
		}
	}
	// Totals must equal the sum of visible top-level rows approximately:
	// at minimum, every measured value is non-negative.
	for _, tb := range ts {
		for _, r := range tb.Rows {
			if r.Measured < 0 {
				t.Errorf("table %d row %q negative measured value", tb.ID, r.Label)
			}
		}
	}
}
