// Package core is the study's public facade: a registry of every
// experiment in Chandra, Larus & Rogers, "Where is Time Spent in
// Message-Passing and Shared-Memory Programs?" (ASPLOS 1994), mapped to the
// modules that implement it and the runner that regenerates its tables.
//
// The paper's primary contribution is a methodology — two closely related
// machine simulators over a common hardware base, plus a precise
// time-accounting taxonomy — and its results. This package exposes that
// methodology:
//
//   - machine.NewMP / machine.NewSM build the two machines (the paper §3-4).
//   - stats.Category / stats.Count are the accounting taxonomy (§5 tables).
//   - Experiments() enumerates every published table with its runner.
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// measured-vs-paper comparison.
package core

import "repro/internal/tables"

// Experiment describes one of the paper's measurement campaigns.
type Experiment struct {
	// ID is a short slug (e.g. "mse", "gauss-ablation").
	ID string
	// Tables lists the paper tables the experiment regenerates.
	Tables []int
	// Description summarizes workload and parameters at paper scale.
	Description string
	// Modules names the internal packages exercised.
	Modules []string
	// Bench is the testing.B benchmark that regenerates it.
	Bench string
	// Run regenerates the experiment's tables at the given scale.
	Run func(tables.Scale) []tables.Table
}

// Experiments returns the complete registry, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID:     "mse",
			Tables: []int{4, 5, 6, 7},
			Description: "Microstructure Electrostatics: 256 bodies x 20 boundary " +
				"elements, 20 asynchronous Jacobi iterations, distance-based " +
				"update schedule, 32 processors",
			Modules: []string{"apps/mse", "cmmd", "am", "ni", "coherence", "parmacs"},
			Bench:   "BenchmarkTable04_MSE_MP (through Table07)",
			Run:     tables.MSE,
		},
		{
			ID:     "gauss",
			Tables: []int{8, 9, 10, 11},
			Description: "Gaussian elimination with partial pivoting, 512 variables " +
				"(single precision), software reductions/broadcasts over lop-sided " +
				"trees, 32 processors",
			Modules: []string{"apps/gauss", "cmmd", "parmacs", "coherence"},
			Bench:   "BenchmarkTable08_Gauss_MP (through Table11)",
			Run:     tables.Gauss,
		},
		{
			ID:     "gauss-ablation",
			Tables: nil, // §5.2 text: 119.3M / 40.9M / 30.1M cycles
			Description: "Gauss-MP broadcast/reduction tuning: flat broadcast vs " +
				"binary tree with CMMD-level messages vs lop-sided tree with " +
				"active messages and channels",
			Modules: []string{"apps/gauss", "cmmd"},
			Bench:   "BenchmarkAblationGaussBroadcast",
			Run: func(sc tables.Scale) []tables.Table {
				return []tables.Table{tables.GaussAblation(sc)}
			},
		},
		{
			ID:     "em3d",
			Tables: []int{12, 13, 14, 15, 16, 17},
			Description: "EM3D electromagnetic wave propagation: 1000 E + 1000 H " +
				"nodes per processor, degree 10, 20% remote edges to ring " +
				"neighbors, 50 iterations; plus 1 MB cache and local-allocation " +
				"ablations",
			Modules: []string{"apps/em3d", "cmmd", "coherence", "parmacs", "memsim"},
			Bench:   "BenchmarkTable12_EM3D_MP (through Table17)",
			Run:     tables.EM3D,
		},
		{
			ID:     "lcp",
			Tables: []int{18, 19, 20, 21, 22, 23},
			Description: "Linear complementarity via multi-sweep SOR: 4096 " +
				"variables, 64 non-zeros per row, 5 sweeps per step; synchronous " +
				"(butterfly channel exchange / local-copy publish) and " +
				"asynchronous (star sends / direct global writes) variants",
			Modules: []string{"apps/lcp", "cmmd", "coherence", "parmacs"},
			Bench:   "BenchmarkTable18_LCP_MP (through Table23)",
			Run:     tables.LCP,
		},
	}
}

// ByID returns the experiment with the given slug, or nil.
func ByID(id string) *Experiment {
	for _, e := range Experiments() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}
