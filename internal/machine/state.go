package machine

import (
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// EncodeState contributes the whole message-passing machine's canonical
// image: engine, barrier, interconnect (and fault plan when armed), then per
// node the memory system, the reliable-transport window when present, and
// whatever computation state the running program registered via OnState.
func (m *MPMachine) EncodeState(enc *snapshot.Enc) {
	enc.Section("mp-machine", func(enc *snapshot.Enc) {
		m.Eng.EncodeState(enc)
		m.Bar.EncodeState(enc)
		m.Net.EncodeState(enc)
		if m.Net.Faults != nil {
			m.Net.Faults.EncodeState(enc)
		}
		if m.Comb != nil {
			m.Comb.EncodeState(enc)
		}
		for _, n := range m.Nodes {
			enc.Section("node", func(enc *snapshot.Enc) {
				n.Mem.EncodeState(enc)
				if rel := n.AM.Rel(); rel != nil {
					rel.EncodeState(enc)
				}
				enc.U32(uint32(len(n.appState)))
				for _, fn := range n.appState {
					fn(enc)
				}
			})
		}
	})
}

// EncodeStats writes this machine's full stats accounting canonically.
func (m *MPMachine) EncodeStats(enc *snapshot.Enc) { encodeAccts(enc, m.Eng) }

// EncodeState contributes the whole shared-memory machine's canonical image:
// engine, barrier, parmacs runtime, coherence layer (directories, in-flight
// transactions, checker, control-fault plan), then per node the memory
// system and registered program state.
func (m *SMMachine) EncodeState(enc *snapshot.Enc) {
	enc.Section("sm-machine", func(enc *snapshot.Enc) {
		m.Eng.EncodeState(enc)
		m.RT.Bar.EncodeState(enc)
		if m.RT.Comb != nil {
			m.RT.Comb.EncodeState(enc)
		}
		m.RT.EncodeState(enc)
		m.Pr.EncodeState(enc)
		for _, n := range m.Nodes {
			enc.Section("node", func(enc *snapshot.Enc) {
				n.Mem.EncodeState(enc)
				enc.U32(uint32(len(n.appState)))
				for _, fn := range n.appState {
					fn(enc)
				}
			})
		}
	})
}

// EncodeStats writes this machine's full stats accounting canonically.
func (m *SMMachine) EncodeStats(enc *snapshot.Enc) { encodeAccts(enc, m.Eng) }

func encodeAccts(enc *snapshot.Enc, eng *sim.Engine) {
	enc.Section("stats", func(enc *snapshot.Enc) {
		procs := eng.Procs()
		enc.U32(uint32(len(procs)))
		for _, p := range procs {
			p.Acct.EncodeState(enc)
		}
	})
}
