// Package machine assembles the two simulated computers the paper compares:
// a message-passing machine (CM-5-like network interface + active messages +
// CMMD library) and a cache-coherent shared-memory machine (Dir_nNB
// directories + parmacs primitives). Both share the engine, cost model,
// cache, TLB, and hardware barrier — the "common hardware base" of paper
// Table 1.
package machine

import (
	"repro/internal/am"
	"repro/internal/cmmd"
	"repro/internal/coherence"
	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/memsim"
	"repro/internal/ni"
	"repro/internal/parmacs"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

// Result is the outcome of a simulated run.
type Result struct {
	// Summary holds per-processor-average cycles and event counts per
	// phase, the form the paper's tables report.
	Summary *stats.Summary
	// Elapsed is the longest processor virtual time (total run length).
	Elapsed sim.Time
	// Accts exposes the raw per-processor accounting.
	Accts []*stats.Acct
	// Err is non-nil when the run aborted (e.g. a transport retry budget
	// exhausted under fault injection produced a faults.StarvationError);
	// the stats then cover the run up to the abort, not a complete program.
	Err error
}

func seedFor(i int) uint64 { return 0xC0FFEE + uint64(i)*0x9E3779B97F4A7C15 }

// --- Message-passing machine ---

// MPNode is one node of the message-passing machine, handed to the target
// program. Programs compute with Compute, allocate private data with
// AllocF/AllocI, and communicate through AM (CMAML), EP (CMMD), and Comm
// (software collectives).
type MPNode struct {
	ID    int
	P     *sim.Proc
	Mem   *memsim.Mem
	NI    *ni.NI
	AM    *am.AM
	EP    *cmmd.Endpoint
	Comm  *cmmd.Comm
	Cfg   *cost.Config
	Space *memsim.AddrSpace
	Procs int

	appState []func(*snapshot.Enc)
}

// OnState registers an application state contributor: at every snapshot the
// callbacks run in registration order and append the program's computation
// state (principal arrays, counters) to the canonical encoding. Programs
// register their arrays right after allocating them.
func (n *MPNode) OnState(fn func(*snapshot.Enc)) { n.appState = append(n.appState, fn) }

// Compute charges c cycles of application computation.
func (n *MPNode) Compute(c int64) { n.P.Compute(c) }

// Phase switches the accounting phase (e.g. initialization vs. main loop).
func (n *MPNode) Phase(ph stats.Phase) { n.P.Acct.SetPhase(ph) }

// AllocF allocates a private double-precision vector in this node's local
// memory.
func (n *MPNode) AllocF(elems int) memsim.FVec {
	return memsim.NewFVec(n.Space.AllocPrivate(n.ID, elems*memsim.WordBytes), elems)
}

// AllocFSized allocates a private float vector with explicit element size
// (4 for single precision, as Gauss uses).
func (n *MPNode) AllocFSized(elems, elemBytes int) memsim.FVec {
	return memsim.NewFVecSized(n.Space.AllocPrivate(n.ID, elems*elemBytes), elems, elemBytes)
}

// AllocI allocates a private int vector in this node's local memory.
func (n *MPNode) AllocI(elems int) memsim.IVec {
	return memsim.NewIVec(n.Space.AllocPrivate(n.ID, elems*memsim.WordBytes), elems)
}

// Barrier enters the hardware barrier.
func (n *MPNode) Barrier() { n.EP.Barrier() }

// MPMachine is a configured message-passing machine, exposing internals for
// tests and reports.
type MPMachine struct {
	Eng   *sim.Engine
	Net   *ni.Network
	Bar   *sim.Barrier
	Nodes []*MPNode
	// Comb is the in-network hardware combining tree, non-nil only under the
	// cost.Config.HWCombining ablation.
	Comb *sim.Combiner
}

// StepProgramMP builds one node's step function: called lazily at the
// node's first dispatch (engine context, quantum zero — where the
// coroutine form's program body starts), it does the host-side setup and
// returns the continuation the engine then calls once per quantum.
type StepProgramMP func(n *MPNode) func(*sim.Proc) sim.StepStatus

// NewMPStep builds a message-passing machine whose application processors
// run in step (continuation) form: no goroutine, no gate channel — the
// engine calls each node's step function directly, and the step returns
// sim.StepYield where the coroutine form would suspend. Incompatible with
// fault injection (the reliable transport blocks inside the AM layer) and
// with hardware combining (Combiner.Wait blocks); the runner gates both.
func NewMPStep(cfg cost.Config, shape cmmd.Shape, program StepProgramMP) *MPMachine {
	if cfg.Faults != nil {
		panic("machine: step processors are incompatible with fault injection")
	}
	if cfg.HWCombining {
		panic("machine: step processors are incompatible with hardware combining")
	}
	return buildMP(cfg, shape, nil, program)
}

// NewMP builds a message-passing machine with the given collective tree
// shape; program runs on every node.
func NewMP(cfg cost.Config, shape cmmd.Shape, program func(n *MPNode)) *MPMachine {
	return buildMP(cfg, shape, program, nil)
}

func buildMP(cfg cost.Config, shape cmmd.Shape, program func(n *MPNode), stepProgram StepProgramMP) *MPMachine {
	if err := cfg.Validate(); err != nil {
		panic("machine: " + err.Error())
	}
	c := cfg // one copy shared by all nodes
	eng := sim.NewEngine(c.NetLatency)
	eng.Workers = c.Workers
	eng.PerAccessStats = c.PerAccessStats
	net := ni.NewNetwork(eng, &c)
	bar := sim.NewBarrier(eng, c.Procs, c.BarrierLatency)
	space := memsim.NewAddrSpace(c.Procs, c.BlockBytes)

	// Fault injection (MP only: shared-memory coherence traffic does not
	// traverse this network model). A fault plan makes the network lossy, so
	// every node also gets a reliable transport under its AM layer, plus an
	// end-of-program quiesce so no node exits while a peer still retransmits.
	var fc cost.FaultsConfig
	var grp *am.Group
	if c.Faults != nil {
		fc = c.Faults.WithDefaults(c.NetLatency)
		net.Faults = faults.FromConfig(fc)
		grp = am.NewGroup(eng)
	}

	m := &MPMachine{Eng: eng, Net: net, Bar: bar}
	if c.HWCombining {
		m.Comb = cmmd.NewCombiner(eng, &c)
	}
	m.Nodes = make([]*MPNode, c.Procs)
	for i := 0; i < c.Procs; i++ {
		i := i
		var p *sim.Proc
		if stepProgram != nil {
			var stepFn func(*sim.Proc) sim.StepStatus
			p = eng.AddStepProc(func(sp *sim.Proc) sim.StepStatus {
				if stepFn == nil {
					stepFn = stepProgram(m.Nodes[i])
				}
				return stepFn(sp)
			})
		} else {
			p = eng.AddProc(func(*sim.Proc) {
				program(m.Nodes[i])
				if rel := m.Nodes[i].AM.Rel(); rel != nil {
					rel.Shutdown()
				}
			})
		}
		mem := memsim.NewMem(p, &c, seedFor(i))
		nif := net.Attach(p)
		a := am.New(nif)
		if grp != nil {
			am.NewReliable(a, c.Procs, fc, grp)
		}
		ep := cmmd.NewEndpoint(i, c.Procs, a, mem, bar)
		comm := cmmd.NewComm(ep, shape)
		comm.HW = m.Comb
		m.Nodes[i] = &MPNode{
			ID: i, P: p, Mem: mem, NI: nif, AM: a, EP: ep, Comm: comm,
			Cfg: &c, Space: space, Procs: c.Procs,
		}
	}
	if c.OnBuild != nil {
		c.OnBuild(m)
	}
	return m
}

// Run executes the machine to completion and summarizes. A non-nil
// Result.Err reports an aborted run (stats cover the partial execution).
func (m *MPMachine) Run() *Result {
	err := m.Eng.Run()
	res := summarize(m.Eng)
	res.Err = err
	return res
}

// RunMP builds and runs a message-passing machine in one step.
func RunMP(cfg cost.Config, shape cmmd.Shape, program func(n *MPNode)) *Result {
	return NewMP(cfg, shape, program).Run()
}

// --- Shared-memory machine ---

// SMNode is one node of the shared-memory machine. Programs allocate shared
// data through RT (gmalloc), private data with AllocF/AllocI, and
// synchronize with RT's locks, reductions, and barrier.
type SMNode struct {
	ID    int
	P     *sim.Proc
	Mem   *memsim.Mem
	Pr    *coherence.Protocol
	RT    *parmacs.Runtime
	Cfg   *cost.Config
	Space *memsim.AddrSpace
	Procs int

	appState []func(*snapshot.Enc)
}

// OnState registers an application state contributor; see MPNode.OnState.
func (n *SMNode) OnState(fn func(*snapshot.Enc)) { n.appState = append(n.appState, fn) }

// Compute charges c cycles of application computation.
func (n *SMNode) Compute(c int64) { n.P.Compute(c) }

// Phase switches the accounting phase.
func (n *SMNode) Phase(ph stats.Phase) { n.P.Acct.SetPhase(ph) }

// AllocF allocates a private double-precision vector in this node's local
// memory.
func (n *SMNode) AllocF(elems int) memsim.FVec {
	return memsim.NewFVec(n.Space.AllocPrivate(n.ID, elems*memsim.WordBytes), elems)
}

// AllocFSized allocates a private float vector with explicit element size.
func (n *SMNode) AllocFSized(elems, elemBytes int) memsim.FVec {
	return memsim.NewFVecSized(n.Space.AllocPrivate(n.ID, elems*elemBytes), elems, elemBytes)
}

// AllocI allocates a private int vector in this node's local memory.
func (n *SMNode) AllocI(elems int) memsim.IVec {
	return memsim.NewIVec(n.Space.AllocPrivate(n.ID, elems*memsim.WordBytes), elems)
}

// Barrier enters the hardware barrier.
func (n *SMNode) Barrier() { n.RT.Barrier(n.P) }

// SMMachine is a configured shared-memory machine.
type SMMachine struct {
	Eng   *sim.Engine
	Pr    *coherence.Protocol
	RT    *parmacs.Runtime
	Nodes []*SMNode
}

// StepProgramSM is StepProgramMP for the shared-memory machine.
type StepProgramSM func(n *SMNode) func(*sim.Proc) sim.StepStatus

// NewSMStep builds a shared-memory machine whose application processors
// run in step form; see NewMPStep. Incompatible with control-message fault
// injection and hardware combining (the runner gates both; the checker and
// watchdog remain available).
func NewSMStep(cfg cost.Config, policy parmacs.Policy, program StepProgramSM) *SMMachine {
	if cfg.SMFaults != nil {
		panic("machine: step processors are incompatible with control-fault injection")
	}
	if cfg.HWCombining {
		panic("machine: step processors are incompatible with hardware combining")
	}
	return buildSM(cfg, policy, nil, program)
}

// NewSM builds a shared-memory machine with the given allocation policy;
// program runs on every node.
func NewSM(cfg cost.Config, policy parmacs.Policy, program func(n *SMNode)) *SMMachine {
	return buildSM(cfg, policy, program, nil)
}

func buildSM(cfg cost.Config, policy parmacs.Policy, program func(n *SMNode), stepProgram StepProgramSM) *SMMachine {
	if err := cfg.Validate(); err != nil {
		panic("machine: " + err.Error())
	}
	c := cfg
	eng := sim.NewEngine(c.NetLatency)
	eng.Workers = c.Workers
	eng.PerAccessStats = c.PerAccessStats
	bar := sim.NewBarrier(eng, c.Procs, c.BarrierLatency)
	space := memsim.NewAddrSpace(c.Procs, c.BlockBytes)
	pr := coherence.New(eng, &c)
	rt := parmacs.NewRuntime(&c, pr, space, bar)
	rt.Policy = policy

	// Robustness layers (all off by default; with none armed the protocol
	// runs bit-identical to a tree without them — a regression test asserts
	// this). These mirror the MP machine's fault plan + reliable transport:
	// the invariant checker, control-message fault injection, and the
	// coherence livelock watchdog.
	if c.SMCheck {
		pr.EnableChecker()
	}
	if c.SMFaults != nil {
		pr.EnableCtrlFaults(c.SMFaults.WithDefaults(c.NetLatency))
	}
	if c.SMWatchdog > 0 {
		pr.EnableWatchdog(c.SMWatchdog)
	}

	m := &SMMachine{Eng: eng, Pr: pr, RT: rt}
	m.Nodes = make([]*SMNode, c.Procs)
	for i := 0; i < c.Procs; i++ {
		i := i
		var p *sim.Proc
		if stepProgram != nil {
			var stepFn func(*sim.Proc) sim.StepStatus
			p = eng.AddStepProc(func(sp *sim.Proc) sim.StepStatus {
				if stepFn == nil {
					stepFn = stepProgram(m.Nodes[i])
				}
				return stepFn(sp)
			})
		} else {
			p = eng.AddProc(func(*sim.Proc) { program(m.Nodes[i]) })
		}
		mem := memsim.NewMem(p, &c, seedFor(i))
		pr.AttachMem(i, mem)
		m.Nodes[i] = &SMNode{
			ID: i, P: p, Mem: mem, Pr: pr, RT: rt,
			Cfg: &c, Space: space, Procs: c.Procs,
		}
	}
	if c.OnBuild != nil {
		c.OnBuild(m)
	}
	return m
}

// Run executes the machine to completion and summarizes. When the invariant
// checker is armed, a clean run is followed by the end-of-run global
// verification (every block's invariants plus per-home message
// conservation); its verdict lands in Result.Err like any other abort.
func (m *SMMachine) Run() *Result {
	err := m.Eng.Run()
	if err == nil {
		if ck := m.Pr.Checker(); ck != nil {
			err = ck.Final()
		}
	}
	res := summarize(m.Eng)
	res.Err = err
	return res
}

// RunSM builds and runs a shared-memory machine in one step.
func RunSM(cfg cost.Config, policy parmacs.Policy, program func(n *SMNode)) *Result {
	return NewSM(cfg, policy, program).Run()
}

func summarize(eng *sim.Engine) *Result {
	procs := eng.Procs()
	accts := make([]*stats.Acct, len(procs))
	var maxClock sim.Time
	for i, p := range procs {
		accts[i] = p.Acct
		if p.Clock() > maxClock {
			maxClock = p.Clock()
		}
	}
	return &Result{Summary: stats.Summarize(accts), Elapsed: maxClock, Accts: accts}
}
