package machine

import (
	"testing"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/parmacs"
	"repro/internal/stats"
)

func TestRunMPBasics(t *testing.T) {
	res := RunMP(cost.Default(4), cmmd.Binary, func(n *MPNode) {
		n.Compute(int64(100 * (n.ID + 1)))
		n.Barrier()
	})
	if res.Elapsed < 400 {
		t.Errorf("elapsed = %d, want at least the slowest node's 400", res.Elapsed)
	}
	if got := res.Summary.CyclesAll(stats.Comp); got != 250 {
		t.Errorf("avg computation = %v, want 250", got)
	}
	if len(res.Accts) != 4 {
		t.Errorf("accts = %d", len(res.Accts))
	}
}

func TestRunSMBasics(t *testing.T) {
	res := RunSM(cost.Default(4), parmacs.RoundRobin, func(n *SMNode) {
		v := n.AllocF(8)
		v.Set(n.Mem, 0, 1.5)
		if got := v.Get(n.Mem, 0); got != 1.5 {
			t.Errorf("private round trip: %v", got)
		}
		n.Barrier()
	})
	if res.Summary.CountsAll(stats.CntLocalMisses) == 0 {
		t.Error("no private misses recorded")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := cost.Default(4)
	cfg.BlockBytes = 24
	NewMP(cfg, cmmd.Binary, func(*MPNode) {})
}

func TestAllocationsAreDistinct(t *testing.T) {
	RunMP(cost.Default(2), cmmd.Binary, func(n *MPNode) {
		a := n.AllocF(10)
		b := n.AllocI(10)
		c := n.AllocFSized(10, 4)
		if a.Addr(9) >= b.Addr(0) || b.Addr(9) >= c.Addr(0) {
			t.Error("allocations overlap")
		}
		n.Barrier()
	})
}

func TestPhaseBucketsSeparate(t *testing.T) {
	res := RunMP(cost.Default(2), cmmd.Binary, func(n *MPNode) {
		n.Compute(10)
		n.Phase(1)
		n.Compute(25)
		n.Barrier()
	})
	if got := res.Summary.Cycles(0, stats.Comp); got != 10 {
		t.Errorf("phase 0 = %v", got)
	}
	if got := res.Summary.Cycles(1, stats.Comp); got != 25 {
		t.Errorf("phase 1 = %v", got)
	}
}
