package cmmd_test

import (
	"math"
	"testing"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/ni"
	"repro/internal/stats"
)

func TestChannelWriteDeliversValues(t *testing.T) {
	cfg := cost.Default(2)
	var got []float64
	var recvLibMisses int64
	m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
		const N = 100
		switch n.ID {
		case 1:
			dst := n.AllocF(N)
			ch := n.EP.OpenRecvChannelF(&dst, 0, N)
			// Tell node 0 the channel id out of band: channel 0 is the
			// first opened, symmetric by construction.
			n.EP.WaitChannel(ch, 1)
			got = append(got, dst.V...)
			recvLibMisses = n.P.Acct.Counts(stats.PhaseDefault, stats.CntLibMisses)
		case 0:
			src := n.AllocF(N)
			for i := range src.V {
				src.V[i] = float64(i) * 1.5
			}
			n.EP.ChannelWriteF(1, 0, &src, 0, N)
		}
		n.Barrier()
	})
	res := m.Run()
	if len(got) != 100 {
		t.Fatalf("received %d values", len(got))
	}
	for i, v := range got {
		if v != float64(i)*1.5 {
			t.Fatalf("got[%d] = %v", i, v)
		}
	}
	if m.Net.Injected != m.Net.Delivered {
		t.Errorf("packet conservation: injected %d delivered %d",
			m.Net.Injected, m.Net.Delivered)
	}
	// 100 float64 = 800 bytes = 50 packets (plus the barrier has none).
	if m.Net.Injected != 50 {
		t.Errorf("injected = %d, want 50", m.Net.Injected)
	}
	if recvLibMisses == 0 {
		t.Error("receiver handler stores should incur library misses")
	}
	// Sender counted one channel write and 800 data bytes.
	s := res.Summary
	if cw := s.CountsAll(stats.CntChannelWrites); cw != 0.5 { // avg over 2 procs
		t.Errorf("avg channel writes = %v, want 0.5", cw)
	}
	if db := s.CountsAll(stats.CntBytesData); db != 400 { // 800 over 2 procs
		t.Errorf("avg data bytes = %v, want 400", db)
	}
}

func TestSendRecvHandshakeBothOrders(t *testing.T) {
	cfg := cost.Default(2)
	for name, senderFirst := range map[string]bool{"sender-first": true, "receiver-first": false} {
		t.Run(name, func(t *testing.T) {
			var got float64
			m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
				const tag = 7
				v := n.AllocF(4)
				if n.ID == 0 {
					if !senderFirst {
						n.Compute(5000) // let the receiver post first
					}
					for i := range v.V {
						v.V[i] = 42
					}
					n.EP.SendBlock(1, tag, &v, 0, 4)
				} else {
					if senderFirst {
						n.Compute(5000) // let the RTS arrive first
					}
					n.EP.RecvBlock(tag, &v, 0, 4)
					got = v.V[3]
				}
				n.Barrier()
			})
			m.Run()
			if got != 42 {
				t.Fatalf("receiver got %v, want 42", got)
			}
		})
	}
}

func TestReduceSumAllShapes(t *testing.T) {
	for _, shape := range []cmmd.Shape{cmmd.Flat, cmmd.Binary, cmmd.LopSided} {
		t.Run(shape.String(), func(t *testing.T) {
			cfg := cost.Default(8)
			var got float64
			machine.RunMP(cfg, shape, func(n *machine.MPNode) {
				v, _ := n.Comm.Reduce(0, float64(n.ID+1), int64(n.ID), cmmd.OpSum)
				if n.ID == 0 {
					got = v
				}
				n.Barrier()
			})
			if got != 36 { // 1+..+8
				t.Errorf("%v reduce sum = %v, want 36", shape, got)
			}
		})
	}
}

func TestReduceMaxAbsCarriesIndex(t *testing.T) {
	cfg := cost.Default(5)
	var val float64
	var idx int64
	machine.RunMP(cfg, cmmd.LopSided, func(n *machine.MPNode) {
		contrib := float64(n.ID)
		if n.ID == 3 {
			contrib = -99 // largest magnitude
		}
		v, i := n.Comm.Reduce(2, contrib, int64(n.ID*10), cmmd.OpMaxAbs)
		if n.ID == 2 {
			val, idx = v, i
		}
		n.Barrier()
	})
	if val != -99 || idx != 30 {
		t.Errorf("maxabs = (%v, %d), want (-99, 30)", val, idx)
	}
}

func TestBcastReachesAllFromAnyRoot(t *testing.T) {
	cfg := cost.Default(7)
	for root := 0; root < 7; root++ {
		got := make([]float64, 7)
		machine.RunMP(cfg, cmmd.LopSided, func(n *machine.MPNode) {
			v := 0.0
			if n.ID == root {
				v = 3.14
			}
			got[n.ID] = n.Comm.Bcast(root, v)
			n.Barrier()
		})
		for i, v := range got {
			if v != 3.14 {
				t.Fatalf("root %d: node %d got %v", root, i, v)
			}
		}
	}
}

func TestBcastVecAllShapes(t *testing.T) {
	for _, shape := range []cmmd.Shape{cmmd.Flat, cmmd.Binary, cmmd.LopSided} {
		cfg := cost.Default(6)
		const N = 33 // odd length exercises the final short packet
		sums := make([]float64, 6)
		machine.RunMP(cfg, shape, func(n *machine.MPNode) {
			v := n.AllocF(N)
			if n.ID == 2 {
				for i := range v.V {
					v.V[i] = float64(i * i)
				}
			}
			n.Comm.BcastVecF(2, &v, 0, N)
			s := 0.0
			for i := range v.V {
				s += v.V[i]
			}
			sums[n.ID] = s
			n.Barrier()
		})
		want := 0.0
		for i := 0; i < N; i++ {
			want += float64(i * i)
		}
		for i, s := range sums {
			if s != want {
				t.Fatalf("%v: node %d sum = %v, want %v", shape, i, s, want)
			}
		}
	}
}

func TestLopSidedBeatsFlatBroadcastLatency(t *testing.T) {
	// The paper's Gauss tuning: a flat broadcast was very slow, a binary
	// tree better, the LogP lop-sided tree best. Check the ordering on a
	// latency-bound pattern: many scalar broadcasts in sequence.
	elapsed := func(shape cmmd.Shape) int64 {
		cfg := cost.Default(32)
		m := machine.NewMP(cfg, shape, func(n *machine.MPNode) {
			for k := 0; k < 20; k++ {
				n.Comm.Bcast(0, float64(k))
				n.Barrier()
			}
		})
		return m.Run().Elapsed
	}
	flat, bin, lop := elapsed(cmmd.Flat), elapsed(cmmd.Binary), elapsed(cmmd.LopSided)
	if !(lop < bin && bin < flat) {
		t.Errorf("broadcast latency ordering: lop=%d binary=%d flat=%d, want lop < binary < flat",
			lop, bin, flat)
	}
}

func TestPollWaitChargedAsLibComp(t *testing.T) {
	cfg := cost.Default(2)
	m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
		v := n.AllocF(2)
		if n.ID == 0 {
			n.Compute(50_000) // force node 1 to wait in the library
			v.V[0] = 1
			n.EP.SendBlock(1, 0, &v, 0, 2)
		} else {
			n.EP.RecvBlock(0, &v, 0, 2)
		}
		n.Barrier()
	})
	m.Run()
	waiter := m.Nodes[1].P.Acct
	if lc := waiter.Cycles(stats.PhaseDefault, stats.LibComp); lc < 40_000 {
		t.Errorf("lib comp on waiting node = %d, want most of the 50k wait", lc)
	}
}

func TestAMRequestDispatchesAppHandler(t *testing.T) {
	cfg := cost.Default(2)
	var handled float64
	m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
		// SPMD discipline: both nodes register the handler first, so ids
		// agree. The sender's packet cannot arrive before the receiver's
		// registration at clock 0 (minimum one network latency).
		h := n.AM.Register(func(pkt *ni.Packet) {
			handled = math.Float64frombits(pkt.Args[0])
		})
		if n.ID == 0 {
			n.AM.Request(1, h, [4]uint64{math.Float64bits(2.5)}, 8, nil)
		} else {
			n.AM.PollUntil(func() bool { return handled != 0 })
		}
		n.Barrier()
	})
	res := m.Run()
	if handled != 2.5 {
		t.Fatalf("handler saw %v, want 2.5", handled)
	}
	// One 20-byte packet carrying 8 data bytes; the rest is control.
	// (Averaged over 2 procs; the barrier sends nothing.)
	if db := res.Summary.CountsAll(stats.CntBytesData); db != 4 {
		t.Errorf("avg data bytes = %v, want 4", db)
	}
	if cb := res.Summary.CountsAll(stats.CntBytesControl); cb != 6 {
		t.Errorf("avg control bytes = %v, want 6", cb)
	}
	if am := res.Summary.CountsAll(stats.CntActiveMessages); am != 0.5 {
		t.Errorf("avg active messages = %v, want 0.5", am)
	}
}

func TestChannelReuseAcrossIterations(t *testing.T) {
	cfg := cost.Default(2)
	const iters = 5
	var finals []float64
	machine.RunMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
		v := n.AllocF(8)
		if n.ID == 1 {
			ch := n.EP.OpenRecvChannelF(&v, 0, 8)
			for k := 1; k <= iters; k++ {
				n.EP.WaitChannel(ch, int64(k))
				finals = append(finals, v.V[0])
			}
		} else {
			src := n.AllocF(8)
			for k := 1; k <= iters; k++ {
				src.V[0] = float64(k)
				n.EP.ChannelWriteF(1, 0, &src, 0, 8)
				// Pace iterations so transfers do not coalesce.
				n.Compute(10_000)
			}
		}
		n.Barrier()
	})
	if len(finals) != iters {
		t.Fatalf("completions = %d, want %d", len(finals), iters)
	}
	for k, v := range finals {
		if v != float64(k+1) {
			t.Errorf("iteration %d saw %v", k, v)
		}
	}
}

var _ = memsim.WordBytes // keep import if assertions change
