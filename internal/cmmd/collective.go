package cmmd

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/memsim"
	"repro/internal/ni"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Shape selects the software reduction/broadcast tree. The machines provide
// no broadcast or reduction hardware (paper §4: removed to study the cost of
// software implementations), so these operations are built from active
// messages. The paper's Gauss tuning walked exactly this progression: a flat
// broadcast (119.3M cycles), a binary tree (40.9M), and finally a lop-sided
// tree suggested by the LogP model (30.1M), whose structure minimizes the
// effect of send/receive overhead exceeding network latency.
type Shape int

const (
	// Flat has the root send to every other node in turn.
	Flat Shape = iota
	// Binary is a balanced binary tree.
	Binary
	// LopSided is the LogP-optimal greedy schedule: every informed node
	// keeps sending to uninformed nodes as fast as its send overhead
	// allows, so early subtrees are much larger than late ones.
	LopSided
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case Flat:
		return "flat"
	case Binary:
		return "binary"
	case LopSided:
		return "lop-sided"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// ReduceOp is a combining operator for reductions. Operators combine a
// (value, index) pair so that pivot selection (max |value| with owning row)
// needs a single reduction.
type ReduceOp int

const (
	// OpSum adds values; indexes are ignored.
	OpSum ReduceOp = iota
	// OpMax keeps the larger value and its index.
	OpMax
	// OpMin keeps the smaller value and its index.
	OpMin
	// OpMaxAbs keeps the value of larger magnitude and its index.
	OpMaxAbs
)

func combine(op ReduceOp, v1 float64, i1 int64, v2 float64, i2 int64) (float64, int64) {
	switch op {
	case OpSum:
		return v1 + v2, 0
	case OpMax:
		if v2 > v1 {
			return v2, i2
		}
		return v1, i1
	case OpMin:
		if v2 < v1 {
			return v2, i2
		}
		return v1, i1
	case OpMaxAbs:
		if math.Abs(v2) > math.Abs(v1) {
			return v2, i2
		}
		return v1, i1
	}
	panic(fmt.Sprintf("cmmd: unknown reduce op %d", op))
}

// Comm provides software collectives over an endpoint. All nodes must call
// each collective in the same global order (SPMD discipline); sequence
// numbers match contributions across nodes.
type Comm struct {
	ep    *Endpoint
	Shape Shape

	// HW, when non-nil, routes reductions through an in-network hardware
	// combining tree (the cost.Config.HWCombining ablation) instead of the
	// software tree ascent. Broadcasts still use the software trees — the
	// ablation isolates reduction cost only.
	HW *sim.Combiner

	hUp, hDown, hVec int

	redSeq, bcSeq, vecSeq int64
	red                   map[int64]*redState
	bc                    map[int64]*bcState
	vec                   map[int64]*vecState

	lopParent []int // cached lop-sided tree in virtual-rank space
}

type redState struct {
	n   int
	has bool
	val float64
	idx int64
}

type bcState struct {
	has bool
	val float64
	idx int64
}

type vecState struct {
	words []uint64
	got   int
}

// NewCombiner constructs the shared hardware combining tree for the
// HWCombining ablation, folding contributions with the cmmd operator set.
// One combiner serves every node; wire it into each Comm's HW field.
func NewCombiner(eng *sim.Engine, cfg *cost.Config) *sim.Combiner {
	return sim.NewCombiner(eng, cfg.Procs, cfg.CombiningLatency,
		func(op uint8, v1 float64, i1 int64, v2 float64, i2 int64) (float64, int64) {
			return combine(ReduceOp(op), v1, i1, v2, i2)
		})
}

// NewComm creates the collective layer with the given tree shape. Must be
// created in the same order on all nodes (it registers AM handlers).
func NewComm(ep *Endpoint, shape Shape) *Comm {
	c := &Comm{
		ep: ep, Shape: shape,
		red: make(map[int64]*redState),
		bc:  make(map[int64]*bcState),
		vec: make(map[int64]*vecState),
	}
	c.hUp = ep.AM.Register(c.onUp)
	c.hDown = ep.AM.Register(c.onDown)
	c.hVec = ep.AM.Register(c.onVec)
	return c
}

// --- tree construction (virtual ranks; rank 0 = root) ---

// topology returns the parent virtual rank and children virtual ranks of
// vrank in the configured tree over p nodes.
func (c *Comm) topology(vrank, p int) (parent int, children []int) {
	return c.topologyFor(c.Shape, vrank, p)
}

func (c *Comm) topologyFor(shape Shape, vrank, p int) (parent int, children []int) {
	switch shape {
	case Flat:
		if vrank == 0 {
			for i := 1; i < p; i++ {
				children = append(children, i)
			}
			return -1, children
		}
		return 0, nil
	case Binary:
		for _, ch := range []int{2*vrank + 1, 2*vrank + 2} {
			if ch < p {
				children = append(children, ch)
			}
		}
		if vrank == 0 {
			return -1, children
		}
		return (vrank - 1) / 2, children
	case LopSided:
		par := c.lopsided(p)
		for v := 1; v < p; v++ {
			if par[v] == vrank {
				children = append(children, v)
			}
		}
		return par[vrank], children
	}
	panic("cmmd: unknown tree shape")
}

// lopsided computes (and caches) the LogP greedy broadcast tree: a priority
// queue of informed nodes by next-free time; the earliest-free node informs
// the next rank. o is the per-message send overhead, L the wire latency,
// and the receive overhead delays when a child may start forwarding.
func (c *Comm) lopsided(p int) []int {
	if c.lopParent != nil && len(c.lopParent) == p {
		return c.lopParent
	}
	cfg := c.ep.Cfg
	o := cfg.AMSendCycles + cfg.NIWriteTagDest + cfg.NISendCycles
	oR := cfg.AMDispatchCycles + cfg.NIStatusCycles + cfg.NIRecvCycles
	L := cfg.NetLatency

	par := make([]int, p)
	par[0] = -1
	h := &lopHeap{{t: 0, v: 0}}
	next := 1
	for next < p {
		s := heap.Pop(h).(lopNode)
		par[next] = s.v
		heap.Push(h, lopNode{t: s.t + o, v: s.v})
		heap.Push(h, lopNode{t: s.t + o + L + oR, v: next})
		next++
	}
	c.lopParent = par
	return par
}

type lopNode struct {
	t int64
	v int
}
type lopHeap []lopNode

func (h lopHeap) Len() int { return len(h) }
func (h lopHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].v < h[j].v
}
func (h lopHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *lopHeap) Push(x any)   { *h = append(*h, x.(lopNode)) }
func (h *lopHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

func (c *Comm) vrank(id, root int) int     { return (id - root + c.ep.Nodes) % c.ep.Nodes }
func (c *Comm) actual(vrank, root int) int { return (vrank + root) % c.ep.Nodes }

// scalarSend sends one collective control/value message. The paper's tuning
// progression matters here: the flat and binary configurations transmitted
// with CMMD-level sends (full channel setup per message), while the final
// lop-sided version drops to raw active messages — "active messages also
// help reduce this latency".
func (c *Comm) scalarSend(dst, handler int, args [4]uint64, dataBytes int) {
	if c.Shape != LopSided {
		c.ep.P.ChargeStall(stats.LibComp, c.ep.Cfg.CMMDCallCycles)
	}
	c.ep.AM.Request(dst, handler, args, dataBytes, nil)
}

// --- reduction ---

func (c *Comm) redState(seq int64) *redState {
	st := c.red[seq]
	if st == nil {
		st = &redState{}
		c.red[seq] = st
	}
	return st
}

func (c *Comm) onUp(pkt *ni.Packet) {
	seq := int64(pkt.Args[0])
	op := ReduceOp(pkt.Args[3])
	st := c.redState(seq)
	v := math.Float64frombits(pkt.Args[1])
	i := int64(pkt.Args[2])
	if st.has {
		st.val, st.idx = combine(op, st.val, st.idx, v, i)
	} else {
		st.val, st.idx, st.has = v, i, true
	}
	st.n++
}

// Reduce combines (val, idx) across all nodes with op, delivering the result
// at root (and returning zeros elsewhere), as Gauss's pivot selection does.
// The reduction ascends the configured tree; the paper's Gauss-MP uses the
// same lop-sided trees for reductions and broadcasts.
func (c *Comm) Reduce(root int, val float64, idx int64, op ReduceOp) (float64, int64) {
	ep := c.ep
	p := ep.P
	p.Interact()
	if c.HW != nil {
		// Hardware-combining ablation: deposit the contribution at the
		// network port and stall until the combined result returns, a fixed
		// latency after the last depositor. No tree ascent, no per-hop
		// send/receive overhead.
		p.ChargeStall(stats.NetAccess, ep.Cfg.NIWriteTagDest+ep.Cfg.NISendCycles)
		v, i := c.HW.Wait(p, stats.LibComp, uint8(op), val, idx)
		if ep.Self == root {
			return v, i
		}
		return 0, 0
	}
	p.ChargeStall(stats.LibComp, ep.Cfg.CollectiveEntry)
	seq := c.redSeq
	c.redSeq++

	vr := c.vrank(ep.Self, root)
	parent, children := c.topology(vr, ep.Nodes)

	st := c.redState(seq)
	if st.has {
		st.val, st.idx = combine(op, st.val, st.idx, val, idx)
	} else {
		st.val, st.idx, st.has = val, idx, true
	}
	ep.pollUntil(func() bool { return st.n >= len(children) })
	v, i := st.val, st.idx
	delete(c.red, seq)
	if parent >= 0 {
		c.scalarSend(c.actual(parent, root), c.hUp,
			[4]uint64{uint64(seq), math.Float64bits(v), uint64(i), uint64(op)},
			memsim.WordBytes)
		return 0, 0
	}
	return v, i
}

// --- scalar broadcast ---

func (c *Comm) onDown(pkt *ni.Packet) {
	seq := int64(pkt.Args[0])
	st := c.bc[seq]
	if st == nil {
		st = &bcState{}
		c.bc[seq] = st
	}
	st.val = math.Float64frombits(pkt.Args[1])
	st.idx = int64(pkt.Args[2])
	st.has = true
}

// Bcast distributes val from root to every node down the tree, returning it
// everywhere (the backward-substitution value broadcasts in Gauss).
func (c *Comm) Bcast(root int, val float64) float64 {
	v, _ := c.bcastPair(root, val, 0, memsim.WordBytes)
	return v
}

// BcastPair broadcasts a (value, index) pair in a single message — Gauss's
// pivot announcement carries the pivot value and the owning global row.
func (c *Comm) BcastPair(root int, val float64, idx int64) (float64, int64) {
	return c.bcastPair(root, val, idx, 2*memsim.WordBytes)
}

func (c *Comm) bcastPair(root int, val float64, idx int64, dataBytes int) (float64, int64) {
	ep := c.ep
	p := ep.P
	p.Interact()
	p.ChargeStall(stats.LibComp, ep.Cfg.CollectiveEntry)
	seq := c.bcSeq
	c.bcSeq++

	vr := c.vrank(ep.Self, root)
	parent, children := c.topology(vr, ep.Nodes)
	if parent >= 0 {
		ep.pollUntil(func() bool {
			st := c.bc[seq]
			return st != nil && st.has
		})
		val, idx = c.bc[seq].val, c.bc[seq].idx
	}
	delete(c.bc, seq)
	for _, ch := range children {
		c.scalarSend(c.actual(ch, root), c.hDown,
			[4]uint64{uint64(seq), math.Float64bits(val), uint64(idx)},
			dataBytes)
	}
	return val, idx
}

// --- vector broadcast ---

func (c *Comm) onVec(pkt *ni.Packet) {
	seq := int64(pkt.Args[0])
	st := c.vec[seq]
	if st == nil {
		st = &vecState{words: make([]uint64, int(pkt.Args[2]))}
		c.vec[seq] = st
	}
	off := int(pkt.Args[1])
	copy(st.words[off:], pkt.Payload())
	st.got += pkt.NWords
}

// BcastVecF distributes elements [lo, hi) of vec from root to all nodes down
// the tree (the pivot-row broadcasts of Gauss-MP: "active messages and
// channels"). The stream is pipelined: interior nodes forward each packet
// as it arrives rather than waiting for the whole vector, so the cost of
// tree depth is latency, not repeated store-and-forward of the full row.
func (c *Comm) BcastVecF(root int, vec *memsim.FVec, lo, hi int) {
	ep := c.ep
	p := ep.P
	p.Interact()
	p.ChargeStall(stats.LibComp, ep.Cfg.CollectiveEntry)
	seq := c.vecSeq
	c.vecSeq++
	n := hi - lo

	// Bulk streams pipeline poorly through the lop-sided tree's wide root
	// fan-out; the tuned implementation (the paper's "active messages and
	// channels") streams rows over a binary tree through pre-established
	// virtual channels, whose per-use cost is far below a full CMMD send
	// setup. Flat stays flat — that is the ablation's pathological case.
	vecShape := c.Shape
	chanFast := false
	if c.Shape == LopSided {
		vecShape, chanFast = Binary, true
	}
	vr := c.vrank(ep.Self, root)
	parent, children := c.topologyFor(vecShape, vr, ep.Nodes)

	dsts := make([]int, len(children))
	for i, ch := range children {
		dsts[i] = c.actual(ch, root)
	}
	p.PushMode(stats.LibComp, stats.LibMiss, stats.CntLibMisses)
	defer p.PopMode()
	perChild := ep.Cfg.CMMDCallCycles
	if chanFast {
		perChild = ep.Cfg.CollectiveEntry // channel already set up; just arm it
	}
	for range dsts {
		p.Acct.Add(stats.CntChannelWrites, 1)
		p.ChargeStall(stats.LibComp, perChild)
	}

	// forward streams words [off, end) of vec to every child, one packet
	// interleaved across children so all subtrees progress together.
	per := elemsPerPacket(ep.Cfg, vec.ElemBytes)
	forward := func(off, end int) {
		if len(dsts) == 0 || off >= end {
			return
		}
		for a := off; a < end; a += per {
			b := a + per
			if b > end {
				b = end
			}
			ep.Mem.ReadRange(vec.Addr(lo+a), (b-a)*vec.ElemBytes)
			pkt := ni.Packet{
				Tag:       c.hVec,
				Args:      [4]uint64{uint64(seq), uint64(a), uint64(n)},
				DataBytes: (b - a) * vec.ElemBytes,
				NWords:    b - a,
			}
			for i := a; i < b; i++ {
				pkt.Words[i-a] = math.Float64bits(vec.V[lo+i])
			}
			for _, dst := range dsts {
				p.ChargeStall(stats.LibComp, ep.Cfg.CMMDPerPacket)
				pkt.Dst = dst
				ep.AM.SendPacket(&pkt)
			}
		}
	}

	if parent < 0 {
		forward(0, n)
		return
	}

	// Interior or leaf: consume the incoming stream, storing arrivals into
	// vec and forwarding complete packets immediately.
	done := 0
	for done < n {
		ep.pollUntil(func() bool {
			st := c.vec[seq]
			return st != nil && st.got > done
		})
		st := c.vec[seq]
		got := st.got
		ep.Mem.WriteRange(vec.Addr(lo+done), (got-done)*vec.ElemBytes)
		for i := done; i < got; i++ {
			vec.V[lo+i] = math.Float64frombits(st.words[i])
		}
		forward(done, got)
		done = got
	}
	delete(c.vec, seq)
}
