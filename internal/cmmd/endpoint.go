// Package cmmd reimplements the structure of Thinking Machines' CMMD
// message-passing library over the active-message layer, as the paper
// describes in §4.1: per-node send and receive "channels" initialized with
// destination, byte count, and buffer addresses; channel sends that break
// data into 20-byte packets injected into the network; data-packet handlers
// (invoked by polling) that store payloads to memory and count the
// transmission's progress; and high-level sends/receives that handshake to
// exchange the receiver's channel number. Programs with static communication
// use channels directly to avoid the handshake (the paper's EM3D and LCP do
// exactly this).
package cmmd

import (
	"fmt"
	"math"

	"repro/internal/am"
	"repro/internal/cost"
	"repro/internal/memsim"
	"repro/internal/ni"
	"repro/internal/sim"
	"repro/internal/stats"
)

// elemsPerPacket returns how many elements of size elemBytes fit a packet
// payload (16 bytes holds two doubles or four singles).
func elemsPerPacket(cfg *cost.Config, elemBytes int) int {
	n := cfg.PacketPayload / elemBytes
	if n < 1 {
		n = 1
	}
	return n
}

// RecvChannel is a receiver-side channel: a registered destination buffer
// plus transfer bookkeeping. Channels re-arm automatically when a transfer
// completes, matching the repeated fixed-size transfers they are used for.
type RecvChannel struct {
	ID int

	baseAddr    uint64
	elemBytes   int
	store       func(word int, w uint64)
	expectWords int
	gotWords    int
	completions int64
}

// Completions returns how many full transfers have arrived.
func (c *RecvChannel) Completions() int64 { return c.completions }

// Endpoint is one node's CMMD library state.
type Endpoint struct {
	Self  int
	Nodes int
	AM    *am.AM
	P     *sim.Proc
	Mem   *memsim.Mem
	Cfg   *cost.Config
	Bar   *sim.Barrier

	recvCh []*RecvChannel

	hData int // data-packet handler
	hRTS  int // request-to-send (handshake)
	hCTS  int // clear-to-send (grants a channel id)

	// Send/receive matching state.
	postedRecvs map[int][]*RecvChannel // tag -> ready channels (FIFO)
	pendingRTS  map[int][]rts          // tag -> senders awaiting a receiver
	ctsGrants   map[int][]int          // src -> granted channel ids (FIFO)

	// wbuf is channelWrite's reusable staging buffer for the payload words
	// of one transfer. Safe to reuse because SetPayload copies the words
	// into each packet value at injection — nothing aliases the buffer once
	// SendPacket returns — and receive-side handlers never channel-write.
	wbuf []uint64
}

// payloadBuf returns the endpoint's staging buffer resized to n words.
func (ep *Endpoint) payloadBuf(n int) []uint64 {
	if cap(ep.wbuf) < n {
		ep.wbuf = make([]uint64, n)
	}
	return ep.wbuf[:n]
}

type rts struct {
	src   int
	words int
}

// NewEndpoint builds the CMMD layer for one node. bar is the machine's
// hardware barrier.
func NewEndpoint(self, nodes int, a *am.AM, mem *memsim.Mem, bar *sim.Barrier) *Endpoint {
	ep := &Endpoint{
		Self: self, Nodes: nodes, AM: a, P: a.P, Mem: mem, Cfg: a.Cfg, Bar: bar,
		postedRecvs: make(map[int][]*RecvChannel),
		pendingRTS:  make(map[int][]rts),
		ctsGrants:   make(map[int][]int),
	}
	ep.hData = a.Register(ep.onData)
	ep.hRTS = a.Register(ep.onRTS)
	ep.hCTS = a.Register(ep.onCTS)
	return ep
}

// Barrier enters the hardware barrier (CMMD_sync_with_nodes). On a faulty
// network the library first flushes the reliable transport (no node may park
// in the barrier with undelivered data) and then waits in polling mode, so
// acknowledgements and retransmissions for peers still progress — a blocked
// barrier wait on a lossy network is a machine-wide deadlock waiting to
// happen.
func (ep *Endpoint) Barrier() {
	if rel := ep.AM.Rel(); rel != nil {
		rel.Flush()
		ep.Bar.WaitService(ep.P, stats.BarrierWait, rel.Service)
		return
	}
	ep.Bar.Wait(ep.P, stats.BarrierWait)
}

// Poll lets the library make progress; applications with asynchronous
// servicing responsibilities call it inside compute loops. Dispatch errors
// (possible only on a faulty network) abort the run with a structured error.
func (ep *Endpoint) Poll() bool {
	handled, err := ep.AM.Poll()
	if err != nil {
		ep.P.Fail(err)
	}
	return handled
}

// pollUntil wraps AM.PollUntil, aborting the run on dispatch errors.
func (ep *Endpoint) pollUntil(cond func() bool) {
	if err := ep.AM.PollUntil(cond); err != nil {
		ep.P.Fail(err)
	}
}

// --- Channels ---

// OpenRecvChannelF registers elements [lo, hi) of vec as a channel
// destination and returns the channel. The channel id must be communicated
// to the sender (by handshake or by symmetric construction).
func (ep *Endpoint) OpenRecvChannelF(vec *memsim.FVec, lo, hi int) *RecvChannel {
	return ep.openRecv(vec.Addr(lo), hi-lo, vec.ElemBytes, func(w int, bits uint64) {
		vec.V[lo+w] = math.Float64frombits(bits)
	})
}

// OpenRecvChannelI registers elements [lo, hi) of an IVec as a channel
// destination.
func (ep *Endpoint) OpenRecvChannelI(vec *memsim.IVec, lo, hi int) *RecvChannel {
	return ep.openRecv(vec.Addr(lo), hi-lo, memsim.WordBytes, func(w int, bits uint64) {
		vec.V[lo+w] = int64(bits)
	})
}

func (ep *Endpoint) openRecv(base uint64, words, elemBytes int, store func(int, uint64)) *RecvChannel {
	if words <= 0 {
		panic("cmmd: empty receive channel")
	}
	c := &RecvChannel{ID: len(ep.recvCh), baseAddr: base, elemBytes: elemBytes,
		store: store, expectWords: words}
	ep.recvCh = append(ep.recvCh, c)
	return c
}

// onData is the data-packet handler: it stores the payload words into the
// channel's buffer (through the cache — library misses are real) and counts
// transfer progress.
func (ep *Endpoint) onData(pkt *ni.Packet) {
	ch := ep.recvCh[int(pkt.Args[0])]
	off := int(pkt.Args[1])
	ep.Mem.WriteRange(ch.baseAddr+uint64(off*ch.elemBytes),
		pkt.NWords*ch.elemBytes)
	for i, w := range pkt.Payload() {
		ch.store(off+i, w)
	}
	ch.gotWords += pkt.NWords
	if ch.gotWords > ch.expectWords {
		panic(fmt.Sprintf("cmmd: node %d channel %d overrun", ep.Self, ch.ID))
	}
	if ch.gotWords == ch.expectWords {
		ch.gotWords = 0
		ch.completions++
	}
}

// ChannelWriteF streams elements [lo, hi) of vec to channel chID on dst:
// the library reads the data from memory, breaks it into packets, and
// injects them (paper §4.1). One channel-write op is counted regardless of
// packet count.
func (ep *Endpoint) ChannelWriteF(dst, chID int, vec *memsim.FVec, lo, hi int) {
	words := ep.payloadBuf(hi - lo)
	for i := lo; i < hi; i++ {
		words[i-lo] = math.Float64bits(vec.V[i])
	}
	ep.channelWrite(dst, chID, words, vec.Addr(lo), vec.ElemBytes)
}

// ChannelWriteI streams elements [lo, hi) of an IVec to channel chID on dst.
func (ep *Endpoint) ChannelWriteI(dst, chID int, vec *memsim.IVec, lo, hi int) {
	words := ep.payloadBuf(hi - lo)
	for i := lo; i < hi; i++ {
		words[i-lo] = uint64(vec.V[i])
	}
	ep.channelWrite(dst, chID, words, vec.Addr(lo), memsim.WordBytes)
}

func (ep *Endpoint) channelWrite(dst, chID int, words []uint64, srcAddr uint64, elemBytes int) {
	p := ep.P
	p.Interact()
	p.PushMode(stats.LibComp, stats.LibMiss, stats.CntLibMisses)
	defer p.PopMode()
	p.Acct.Add(stats.CntChannelWrites, 1)
	p.ChargeStall(stats.LibComp, ep.Cfg.CMMDCallCycles)
	per := elemsPerPacket(ep.Cfg, elemBytes)
	for off := 0; off < len(words); off += per {
		end := off + per
		if end > len(words) {
			end = len(words)
		}
		// The library loads the payload from memory, then injects it.
		ep.Mem.ReadRange(srcAddr+uint64(off*elemBytes), (end-off)*elemBytes)
		p.ChargeStall(stats.LibComp, ep.Cfg.CMMDPerPacket)
		pkt := ni.Packet{
			Dst: dst, Tag: ep.hData,
			Args:      [4]uint64{uint64(chID), uint64(off)},
			DataBytes: (end - off) * elemBytes,
		}
		pkt.SetPayload(words[off:end])
		ep.AM.SendPacket(&pkt)
	}
}

// WaitChannel polls until the channel has completed at least n transfers.
func (ep *Endpoint) WaitChannel(ch *RecvChannel, n int64) {
	ep.pollUntil(func() bool { return ch.completions >= n })
}

// --- High-level send/receive (RTS/CTS handshake) ---

// onRTS queues or answers a sender's request-to-send.
func (ep *Endpoint) onRTS(pkt *ni.Packet) {
	tag := int(pkt.Args[0])
	words := int(pkt.Args[1])
	if chs := ep.postedRecvs[tag]; len(chs) > 0 {
		ch := chs[0]
		ep.postedRecvs[tag] = chs[1:]
		ep.grantCTS(pkt.Src, ch, words)
		return
	}
	ep.pendingRTS[tag] = append(ep.pendingRTS[tag], rts{src: pkt.Src, words: words})
}

func (ep *Endpoint) grantCTS(src int, ch *RecvChannel, words int) {
	if words != ch.expectWords {
		panic(fmt.Sprintf("cmmd: node %d: send of %d words to recv of %d",
			ep.Self, words, ch.expectWords))
	}
	ep.AM.Request(src, ep.hCTS, [4]uint64{uint64(ch.ID)}, 0, nil)
}

// onCTS records a clear-to-send grant for a pending send.
func (ep *Endpoint) onCTS(pkt *ni.Packet) {
	ep.ctsGrants[pkt.Src] = append(ep.ctsGrants[pkt.Src], int(pkt.Args[0]))
}

// RecvPost posts a receive of hi-lo elements into vec with the given tag.
// Use Completions on the returned channel (or WaitChannel) to detect
// delivery.
func (ep *Endpoint) RecvPost(tag int, vec *memsim.FVec, lo, hi int) *RecvChannel {
	p := ep.P
	p.Interact()
	p.PushMode(stats.LibComp, stats.LibMiss, stats.CntLibMisses)
	p.ChargeStall(stats.LibComp, ep.Cfg.CMMDCallCycles)
	ch := ep.OpenRecvChannelF(vec, lo, hi)
	if rs := ep.pendingRTS[tag]; len(rs) > 0 {
		r := rs[0]
		ep.pendingRTS[tag] = rs[1:]
		ep.grantCTS(r.src, ch, r.words)
	} else {
		ep.postedRecvs[tag] = append(ep.postedRecvs[tag], ch)
	}
	p.PopMode()
	return ch
}

// SendBlock sends elements [lo, hi) of vec to dst with a tag, blocking until
// the handshake completes and the data has been injected (CMMD's synchronous
// send: RTS, wait for CTS, stream packets to the granted channel).
func (ep *Endpoint) SendBlock(dst, tag int, vec *memsim.FVec, lo, hi int) {
	p := ep.P
	p.Interact()
	p.PushMode(stats.LibComp, stats.LibMiss, stats.CntLibMisses)
	p.ChargeStall(stats.LibComp, ep.Cfg.CMMDCallCycles)
	ep.AM.Request(dst, ep.hRTS, [4]uint64{uint64(tag), uint64(hi - lo)}, 0, nil)
	p.PopMode()
	ep.pollUntil(func() bool { return len(ep.ctsGrants[dst]) > 0 })
	grants := ep.ctsGrants[dst]
	chID := grants[0]
	ep.ctsGrants[dst] = grants[1:]
	ep.ChannelWriteF(dst, chID, vec, lo, hi)
}

// RecvBlock posts a receive and blocks until the data arrives.
func (ep *Endpoint) RecvBlock(tag int, vec *memsim.FVec, lo, hi int) {
	ch := ep.RecvPost(tag, vec, lo, hi)
	ep.WaitChannel(ch, 1)
}
