package cmmd

import (
	"fmt"
	"math"

	"repro/internal/memsim"
	"repro/internal/ni"
	"repro/internal/stats"
)

// Step-processor forms of the CMMD library calls. Each is a phase machine
// over its coroutine twin's suspension points — the entry Interact, the
// per-packet memory loads/stores, the NI injections, and the poll loop's
// status/receive/wait cycle — so a step-form run charges every cycle to
// the same category at the same clock as the coroutine form, and the two
// produce bit-identical fingerprints. A false return means the call is not
// finished: the step returns sim.StepYield and re-invokes the same call
// with the same arguments when redispatched.
//
// The step forms assume the lossless machine (no reliable transport): the
// runner rejects step_procs under a fault plan, and StepBarrier panics if
// a transport is attached anyway.

// PollStep is the resumable state of one poll-until wait: the step twin of
// AM.PollUntil plus handler dispatch. The frame holds which micro-phase of
// the poll yielded, the packet being dispatched, and a pending CTS grant.
type PollStep struct {
	phase uint8
	pkt   ni.Packet // received packet whose dispatch is in progress
	gpkt  ni.Packet // CTS grant being injected from an RTS dispatch
}

const (
	ppEntry     uint8 = iota // PollUntil's entry Interact
	ppCond                   // evaluate the caller's condition (host state)
	ppStatus                 // NI status-register read
	ppWait                   // no packet: park on the NI
	ppRecv                   // FIFO load + dispatch-entry accounting
	ppData                   // hData handler: payload store through the cache
	ppGrant                  // hRTS matched: the CTS Request's send overhead
	ppGrantSend              // CTS injection
)

// stepPoll runs the poll machine until cond() holds. cond must read host
// state only (channel completion counts, grant queues, collective fold
// state) — exactly what the coroutine pollUntil conditions read.
func (ep *Endpoint) stepPoll(ps *PollStep, cond func() bool) bool {
	p := ep.P
	for {
		switch ps.phase {
		case ppEntry:
			if !p.StepInteract() {
				return false
			}
			ps.phase = ppCond
		case ppCond:
			if cond() {
				ps.phase = ppEntry
				return true
			}
			ps.phase = ppStatus
		case ppStatus:
			avail, done := ep.AM.NI.StepStatus()
			if !done {
				return false
			}
			if avail {
				ps.phase = ppRecv
			} else {
				ps.phase = ppWait
			}
		case ppWait:
			done, _ := ep.AM.NI.StepWaitPacket(stats.LibComp)
			if !done {
				return false
			}
			ps.phase = ppCond
		case ppRecv:
			if !ep.AM.NI.StepRecv(&ps.pkt) {
				return false
			}
			// dispatchInner's entry accounting; the handler body follows in
			// the tag's own phases.
			p.ChargeStall(stats.LibComp, ep.Cfg.AMDispatchCycles)
			p.PushMode(stats.LibComp, stats.LibMiss, stats.CntLibMisses)
			pkt := &ps.pkt
			switch pkt.Tag {
			case ep.hData:
				ps.phase = ppData
			case ep.hRTS:
				tag := int(pkt.Args[0])
				words := int(pkt.Args[1])
				if chs := ep.postedRecvs[tag]; len(chs) > 0 {
					ch := chs[0]
					ep.postedRecvs[tag] = chs[1:]
					if words != ch.expectWords {
						panic(fmt.Sprintf("cmmd: node %d: send of %d words to recv of %d",
							ep.Self, words, ch.expectWords))
					}
					ps.gpkt = ni.Packet{Dst: pkt.Src, Tag: ep.hCTS,
						Args: [4]uint64{uint64(ch.ID)}}
					ps.phase = ppGrant
				} else {
					ep.pendingRTS[tag] = append(ep.pendingRTS[tag],
						rts{src: pkt.Src, words: words})
					p.PopMode()
					ps.phase = ppCond
				}
			case ep.hCTS:
				ep.onCTS(pkt)
				p.PopMode()
				ps.phase = ppCond
			default:
				// Handlers that touch host state only (the collectives'
				// onUp/onDown/onVec): a direct call is the whole dispatch.
				ep.AM.HandlerFor(pkt.Tag)(pkt)
				p.PopMode()
				ps.phase = ppCond
			}
		case ppData:
			ch := ep.recvCh[int(ps.pkt.Args[0])]
			off := int(ps.pkt.Args[1])
			if !ep.Mem.StepWriteRange(ch.baseAddr+uint64(off*ch.elemBytes),
				ps.pkt.NWords*ch.elemBytes) {
				return false
			}
			for i, w := range ps.pkt.Payload() {
				ch.store(off+i, w)
			}
			ch.gotWords += ps.pkt.NWords
			if ch.gotWords > ch.expectWords {
				panic(fmt.Sprintf("cmmd: node %d channel %d overrun", ep.Self, ch.ID))
			}
			if ch.gotWords == ch.expectWords {
				ch.gotWords = 0
				ch.completions++
			}
			p.PopMode()
			ps.phase = ppCond
		case ppGrant:
			// grantCTS's AM.Request: entry Interact + send overhead.
			if !p.StepInteract() {
				return false
			}
			p.ChargeStall(stats.LibComp, ep.Cfg.AMSendCycles)
			p.Acct.Add(stats.CntActiveMessages, 1)
			ps.phase = ppGrantSend
		case ppGrantSend:
			if !ep.AM.NI.StepSend(&ps.gpkt) {
				return false
			}
			p.PopMode()
			ps.phase = ppCond
		}
	}
}

// StepBarrier is Barrier for step processors.
func (ep *Endpoint) StepBarrier() bool {
	if ep.AM.Rel() != nil {
		panic("cmmd: step barrier with reliable transport attached")
	}
	return ep.Bar.StepWait(ep.P, stats.BarrierWait)
}

// StepWaitChannel is WaitChannel for step processors.
func (ep *Endpoint) StepWaitChannel(ps *PollStep, ch *RecvChannel, n int64) bool {
	return ep.stepPoll(ps, func() bool { return ch.completions >= n })
}

// ChanWriteStep is the resumable state of one StepChannelWriteF: the word
// cursor and the packet staged between its memory load and its injection.
type ChanWriteStep struct {
	phase uint8
	off   int
	pkt   ni.Packet
}

// StepChannelWriteF is ChannelWriteF for step processors. The payload words
// are read from the vector as each packet is staged; the vector is the
// sender's private data and the sender is parked in this call, so the
// values match the coroutine form's up-front staging copy.
func (ep *Endpoint) StepChannelWriteF(cs *ChanWriteStep, dst, chID int, vec *memsim.FVec, lo, hi int) bool {
	p := ep.P
	per := elemsPerPacket(ep.Cfg, vec.ElemBytes)
	for {
		switch cs.phase {
		case 0:
			if !p.StepInteract() {
				return false
			}
			p.PushMode(stats.LibComp, stats.LibMiss, stats.CntLibMisses)
			p.Acct.Add(stats.CntChannelWrites, 1)
			p.ChargeStall(stats.LibComp, ep.Cfg.CMMDCallCycles)
			cs.off = 0
			cs.phase = 1
		case 1:
			if cs.off >= hi-lo {
				p.PopMode()
				*cs = ChanWriteStep{}
				return true
			}
			end := cs.off + per
			if end > hi-lo {
				end = hi - lo
			}
			// The library loads the payload from memory, then injects it.
			if !ep.Mem.StepReadRange(vec.Addr(lo+cs.off), (end-cs.off)*vec.ElemBytes) {
				return false
			}
			p.ChargeStall(stats.LibComp, ep.Cfg.CMMDPerPacket)
			pkt := ni.Packet{
				Dst: dst, Tag: ep.hData,
				Args:      [4]uint64{uint64(chID), uint64(cs.off)},
				DataBytes: (end - cs.off) * vec.ElemBytes,
			}
			words := ep.payloadBuf(end - cs.off)
			for i := cs.off; i < end; i++ {
				words[i-cs.off] = math.Float64bits(vec.V[lo+i])
			}
			pkt.SetPayload(words)
			cs.pkt = pkt
			cs.phase = 2
		case 2:
			if !ep.AM.NI.StepSend(&cs.pkt) {
				return false
			}
			cs.off += per
			cs.phase = 1
		}
	}
}

// RecvStep is the resumable state of one StepRecvPost.
type RecvStep struct {
	phase uint8
	ch    *RecvChannel
	gpkt  ni.Packet
}

// StepRecvPost is RecvPost for step processors; the channel is valid only
// when done.
func (ep *Endpoint) StepRecvPost(rs *RecvStep, tag int, vec *memsim.FVec, lo, hi int) (*RecvChannel, bool) {
	p := ep.P
	for {
		switch rs.phase {
		case 0:
			if !p.StepInteract() {
				return nil, false
			}
			p.PushMode(stats.LibComp, stats.LibMiss, stats.CntLibMisses)
			p.ChargeStall(stats.LibComp, ep.Cfg.CMMDCallCycles)
			ch := ep.OpenRecvChannelF(vec, lo, hi)
			rs.ch = ch
			if pend := ep.pendingRTS[tag]; len(pend) > 0 {
				r := pend[0]
				ep.pendingRTS[tag] = pend[1:]
				if r.words != ch.expectWords {
					panic(fmt.Sprintf("cmmd: node %d: send of %d words to recv of %d",
						ep.Self, r.words, ch.expectWords))
				}
				rs.gpkt = ni.Packet{Dst: r.src, Tag: ep.hCTS,
					Args: [4]uint64{uint64(ch.ID)}}
				rs.phase = 1
				continue
			}
			ep.postedRecvs[tag] = append(ep.postedRecvs[tag], ch)
			p.PopMode()
			*rs = RecvStep{}
			return ch, true
		case 1:
			// grantCTS's AM.Request: entry Interact + send overhead.
			if !p.StepInteract() {
				return nil, false
			}
			p.ChargeStall(stats.LibComp, ep.Cfg.AMSendCycles)
			p.Acct.Add(stats.CntActiveMessages, 1)
			rs.phase = 2
		case 2:
			if !ep.AM.NI.StepSend(&rs.gpkt) {
				return nil, false
			}
			p.PopMode()
			ch := rs.ch
			*rs = RecvStep{}
			return ch, true
		}
	}
}

// SendStep is the resumable state of one StepSendBlock: the RTS handshake,
// the poll for the CTS grant, and the channel write.
type SendStep struct {
	phase uint8
	chID  int
	rpkt  ni.Packet
	poll  PollStep
	cw    ChanWriteStep
}

// StepSendBlock is SendBlock for step processors.
func (ep *Endpoint) StepSendBlock(ss *SendStep, dst, tag int, vec *memsim.FVec, lo, hi int) bool {
	p := ep.P
	for {
		switch ss.phase {
		case 0:
			if !p.StepInteract() {
				return false
			}
			p.PushMode(stats.LibComp, stats.LibMiss, stats.CntLibMisses)
			p.ChargeStall(stats.LibComp, ep.Cfg.CMMDCallCycles)
			ss.rpkt = ni.Packet{Dst: dst, Tag: ep.hRTS,
				Args: [4]uint64{uint64(tag), uint64(hi - lo)}}
			ss.phase = 1
		case 1:
			// The RTS Request: entry Interact + send overhead.
			if !p.StepInteract() {
				return false
			}
			p.ChargeStall(stats.LibComp, ep.Cfg.AMSendCycles)
			p.Acct.Add(stats.CntActiveMessages, 1)
			ss.phase = 2
		case 2:
			if !ep.AM.NI.StepSend(&ss.rpkt) {
				return false
			}
			p.PopMode()
			ss.phase = 3
		case 3:
			if !ep.stepPoll(&ss.poll, func() bool { return len(ep.ctsGrants[dst]) > 0 }) {
				return false
			}
			grants := ep.ctsGrants[dst]
			ss.chID = grants[0]
			ep.ctsGrants[dst] = grants[1:]
			ss.phase = 4
		case 4:
			if !ep.StepChannelWriteF(&ss.cw, dst, ss.chID, vec, lo, hi) {
				return false
			}
			*ss = SendStep{}
			return true
		}
	}
}

// ReduceStep is the resumable state of one Comm.StepReduce.
type ReduceStep struct {
	phase  uint8
	seq    int64
	parent int
	root   int
	nch    int
	st     *redState
	pkt    ni.Packet
	poll   PollStep
}

// StepReduce is Comm.Reduce for step processors. The contributed (val, idx)
// are latched on the first call; the result is valid only when done.
// Incompatible with the hardware-combining ablation (the runner gates the
// combination off).
func (c *Comm) StepReduce(rs *ReduceStep, root int, val float64, idx int64, op ReduceOp) (float64, int64, bool) {
	ep := c.ep
	p := ep.P
	for {
		switch rs.phase {
		case 0:
			if !p.StepInteract() {
				return 0, 0, false
			}
			if c.HW != nil {
				panic("cmmd: step reductions are incompatible with hardware combining")
			}
			p.ChargeStall(stats.LibComp, ep.Cfg.CollectiveEntry)
			rs.seq = c.redSeq
			c.redSeq++
			vr := c.vrank(ep.Self, root)
			parent, children := c.topology(vr, ep.Nodes)
			rs.parent, rs.nch, rs.root = parent, len(children), root
			st := c.redState(rs.seq)
			if st.has {
				st.val, st.idx = combine(op, st.val, st.idx, val, idx)
			} else {
				st.val, st.idx, st.has = val, idx, true
			}
			rs.st = st
			rs.phase = 1
		case 1:
			if !ep.stepPoll(&rs.poll, func() bool { return rs.st.n >= rs.nch }) {
				return 0, 0, false
			}
			v, i := rs.st.val, rs.st.idx
			delete(c.red, rs.seq)
			if rs.parent < 0 {
				*rs = ReduceStep{}
				return v, i, true
			}
			// scalarSend's CMMD-call charge carries no Interact of its own.
			if c.Shape != LopSided {
				p.ChargeStall(stats.LibComp, ep.Cfg.CMMDCallCycles)
			}
			rs.pkt = ni.Packet{Dst: c.actual(rs.parent, rs.root), Tag: c.hUp,
				Args: [4]uint64{uint64(rs.seq), math.Float64bits(v), uint64(i),
					uint64(op)},
				DataBytes: memsim.WordBytes}
			rs.phase = 2
		case 2:
			// The up-message Request: entry Interact + send overhead.
			if !p.StepInteract() {
				return 0, 0, false
			}
			p.ChargeStall(stats.LibComp, ep.Cfg.AMSendCycles)
			p.Acct.Add(stats.CntActiveMessages, 1)
			rs.phase = 3
		case 3:
			if !ep.AM.NI.StepSend(&rs.pkt) {
				return 0, 0, false
			}
			*rs = ReduceStep{}
			return 0, 0, true
		}
	}
}

// BcastStep is the resumable state of one Comm.StepBcast.
type BcastStep struct {
	phase    uint8
	seq      int64
	root     int
	ci       int
	db       int
	val      float64
	idx      int64
	children []int
	pkt      ni.Packet
	poll     PollStep
}

// StepBcast is Comm.Bcast for step processors; the value is valid only
// when done.
func (c *Comm) StepBcast(bs *BcastStep, root int, val float64) (float64, bool) {
	v, _, done := c.stepBcastPair(bs, root, val, 0, memsim.WordBytes)
	return v, done
}

// StepBcastPair is Comm.BcastPair for step processors.
func (c *Comm) StepBcastPair(bs *BcastStep, root int, val float64, idx int64) (float64, int64, bool) {
	return c.stepBcastPair(bs, root, val, idx, 2*memsim.WordBytes)
}

func (c *Comm) stepBcastPair(bs *BcastStep, root int, val float64, idx int64, dataBytes int) (float64, int64, bool) {
	ep := c.ep
	p := ep.P
	for {
		switch bs.phase {
		case 0:
			if !p.StepInteract() {
				return 0, 0, false
			}
			p.ChargeStall(stats.LibComp, ep.Cfg.CollectiveEntry)
			bs.seq = c.bcSeq
			c.bcSeq++
			vr := c.vrank(ep.Self, root)
			parent, children := c.topology(vr, ep.Nodes)
			bs.root, bs.children, bs.ci = root, children, 0
			bs.val, bs.idx, bs.db = val, idx, dataBytes
			if parent >= 0 {
				bs.phase = 1
			} else {
				delete(c.bc, bs.seq)
				bs.phase = 2
			}
		case 1:
			if !ep.stepPoll(&bs.poll, func() bool {
				st := c.bc[bs.seq]
				return st != nil && st.has
			}) {
				return 0, 0, false
			}
			bs.val, bs.idx = c.bc[bs.seq].val, c.bc[bs.seq].idx
			delete(c.bc, bs.seq)
			bs.phase = 2
		case 2:
			if bs.ci >= len(bs.children) {
				v, i := bs.val, bs.idx
				*bs = BcastStep{}
				return v, i, true
			}
			// scalarSend's CMMD-call charge carries no Interact of its own.
			if c.Shape != LopSided {
				p.ChargeStall(stats.LibComp, ep.Cfg.CMMDCallCycles)
			}
			bs.pkt = ni.Packet{Dst: c.actual(bs.children[bs.ci], bs.root),
				Tag:  c.hDown,
				Args: [4]uint64{uint64(bs.seq), math.Float64bits(bs.val), uint64(bs.idx)},
				DataBytes: bs.db}
			bs.phase = 3
		case 3:
			// The down-message Request: entry Interact + send overhead.
			if !p.StepInteract() {
				return 0, 0, false
			}
			p.ChargeStall(stats.LibComp, ep.Cfg.AMSendCycles)
			p.Acct.Add(stats.CntActiveMessages, 1)
			bs.phase = 4
		case 4:
			if !ep.AM.NI.StepSend(&bs.pkt) {
				return 0, 0, false
			}
			bs.ci++
			bs.phase = 2
		}
	}
}
