// Package sim provides the deterministic discrete-event simulation engine
// underlying both simulated machines, in the style of the Wisconsin Wind
// Tunnel (Reinhardt et al., SIGMETRICS 1993).
//
// Target "processors" are Go functions executed as coroutines (or as
// stackless step functions; see Engine.AddStepProc). The engine interleaves
// processors within conservative time quanta equal to the minimum network
// latency (100 cycles): any event one processor causes at another is
// delayed by at least the network latency, so intra-quantum execution order
// cannot affect the simulation's outcome — the same lookahead argument WWT
// uses. The same argument makes the processor phase of each quantum safe to
// run on multiple host cores (Workers): processors never touch each other's
// state within a quantum, events they raise are staged per-processor and
// merged in deterministic (procID, staging order) at the quantum boundary,
// so a parallel run is bit-identical to a serial one. All time is virtual
// (cycles); wall-clock effects such as Go's garbage collector cannot
// perturb measurements.
package sim

import (
	"container/heap"
	"fmt"
	"runtime"
	"slices"
	"sync/atomic"

	"repro/internal/stats"
)

// Time is virtual time in processor cycles.
type Time = int64

// Event is a timestamped action processed by the engine in (time, sequence)
// order. Handlers run outside any processor context; they typically deliver
// messages, run directory/cache controller work, and wake blocked
// processors. An event carries either a closure (Fn) or an Action (act);
// hot paths use Actions backed by subsystem freelists so steady-state
// event traffic allocates nothing.
type Event struct {
	At  Time
	Fn  func()
	act Action

	seq   uint64
	index int
	qnext *Event // intrusive FIFO link while queued in a ring bucket
}

// Action is a closure-free event body: a reusable, typically pooled object
// whose RunEvent method the engine invokes in the event phase. Subsystems
// that raise millions of events (packet delivery, directory transactions)
// implement Action on freelisted structs instead of capturing closures,
// which is what keeps the steady-state hot paths allocation-free. RunEvent
// runs in engine context, exactly like an Event.Fn closure; the receiving
// subsystem owns recycling (the engine never retains the Action after the
// call returns).
type Action interface {
	RunEvent(at Time)
}

// stagedEvent is an event a processor raised during the processor phase,
// held in a per-processor buffer until the quantum boundary. Buffers are
// merged into the global heap in (procID, staging order), so sequence
// numbers — and therefore same-time tie-breaks — do not depend on how the
// host scheduled the workers.
type stagedEvent struct {
	at  Time
	fn  func()
	act Action
}

// Engine coordinates processors and events.
type Engine struct {
	Quantum Time // conservative lookahead; events cross processors no faster

	// Workers bounds the worker pool for the processor phase: how many
	// target processors may execute concurrently on the host. 0 (the
	// default) uses GOMAXPROCS; 1 forces serial execution. Any value
	// produces bit-identical simulations — parallelism is a host-side
	// throughput knob, never a model parameter, so it is deliberately not
	// part of runner.Spec or the snapshot format.
	Workers int

	// PerAccessStats, when set before AddProc, creates processor accounts
	// in the per-access reference charging mode instead of the batched
	// default (see stats.Acct.PerAccess). A host-side observability knob
	// for the equivalence tests: both modes produce bit-identical stats,
	// so like Workers it is not a model parameter.
	PerAccessStats bool

	now    Time // start of the current quantum
	qEnd   Time // end of the current quantum
	events bucketQueue
	seq    uint64
	procs  []*Proc

	// The runnable set is split by the quantum horizon: ready holds procs
	// whose next dispatch may fall in the coming quantum (unordered; it is
	// consumed wholesale at every batch collection, so membership order
	// never matters), ahead holds procs that computed past the horizon,
	// ordered by (clock, ID) so the engine can skip idle time straight to
	// the earliest one. In the common SPMD steady state every proc re-
	// enters ready each quantum and the collection is O(batch), with no
	// per-proc heap maintenance.
	ready []*Proc
	ahead procHeap
	batch []*Proc // scratch: the procs dispatched this quantum, ID-sorted

	// engGate is the engine's own park gate (cap 1): the tail of a serial
	// dispatch chain, the last worker of a parallel phase, and unwound
	// procs post it to return control.
	engGate chan struct{}

	// Persistent processor-phase workers (parallel mode only). Workers
	// park on their own gates between quanta — dispatching a quantum
	// reuses them instead of spawning goroutines, so the engine's
	// goroutine count is flat across the whole run. cursor hands out
	// batch chunks; pending counts workers still draining the batch.
	workers []*worker
	chunk   int
	cursor  atomic.Int64
	pending atomic.Int32

	finished    int  // processors that have retired
	inProcPhase bool // processor phase in flight: Schedule/Wake are off-limits

	stagers []*Stager // auxiliary staging contexts (barrier releases)

	free []*Event // recycled events, to keep event-heavy runs off the GC

	// MaxTime, when positive, bounds virtual time: exceeding it panics with
	// the processor states. It catches simulated livelock (time advancing
	// forever without progress) the way the deadlock detector catches
	// stalled time.
	MaxTime Time

	// aborted, when non-nil, is the structured error that ended the run
	// early (e.g. the reliable transport's retry budget was exhausted).
	// Remaining processors are unwound cleanly instead of deadlocking.
	aborted error

	// watchdogs are progress monitors checked each scheduling iteration;
	// see AddWatchdog. Empty unless a robustness layer armed one.
	watchdogs []*Watchdog

	// publishers run at the top of every scheduling iteration, before the
	// watchdog check and the hooks: they copy values that processors read
	// across node boundaries (e.g. the transport group's outstanding
	// counts) into quantum-stable snapshots. Publishing at the boundary is
	// what keeps such cross-processor reads deterministic under parallel
	// dispatch — mid-quantum the live values may be changing concurrently.
	publishers []func(now Time)

	// hooks run at the top of every scheduling iteration, when e.now is a
	// fresh quantum boundary and no processor is executing — the only
	// moment all serializable state is quiescent. The checkpoint layer
	// hangs off this; empty unless armed. Hooks must be pure observers
	// (plus Abort): mutating simulation state from a hook would diverge a
	// checkpointed run from an unobserved one.
	hooks []func(now Time)

	// Trace, when non-nil, receives a line per engine decision. Used by
	// tests; nil in normal runs. Must only be called from engine context.
	Trace func(format string, args ...any)
}

// worker is one persistent processor-phase worker: a goroutine that parks
// on its gate between quanta, and during a phase claims chunks of the
// batch, chains each chunk, and dispatches it.
type worker struct {
	eng  *Engine
	gate chan struct{} // cap 1: phase start from the engine, chunk completion from chain tails
	stop bool
}

// NewEngine returns an engine with the given quantum (use the network
// latency; 100 in the paper's machines).
func NewEngine(quantum Time) *Engine {
	if quantum <= 0 {
		panic("sim: quantum must be positive")
	}
	e := &Engine{Quantum: quantum, engGate: make(chan struct{}, 1)}
	e.events.initBuckets(quantum)
	return e
}

// Now returns the start of the current quantum. Individual processors may
// have local clocks ahead of this.
func (e *Engine) Now() Time { return e.now }

// QuantumEnd returns the end of the current quantum; processors yield to the
// scheduler when their local clock reaches it.
func (e *Engine) QuantumEnd() Time { return e.qEnd }

// alloc returns a recycled (or fresh) event.
func (e *Engine) alloc(at Time, fn func(), act Action, seq uint64) *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		ev.At, ev.Fn, ev.act, ev.seq = at, fn, act, seq
		return ev
	}
	return &Event{At: at, Fn: fn, act: act, seq: seq}
}

// release returns a popped event to the free list.
func (e *Engine) release(ev *Event) {
	ev.Fn = nil
	ev.act = nil
	e.free = append(e.free, ev)
}

// run executes the event's body: the Action if present, else the closure.
func (ev *Event) run() {
	if ev.act != nil {
		ev.act.RunEvent(ev.At)
	} else {
		ev.Fn()
	}
}

// Schedule enqueues an event at absolute time at. Events scheduled for the
// past are processed at the start of the next quantum (their handlers must
// therefore tolerate lateness bounded by one quantum; per-object busy times
// preserve monotonicity).
//
// Schedule may only be called from engine context — event handlers, quantum
// hooks, or before Run. Processor-context code must use Proc.Schedule (or a
// Stager), which stages the event for a deterministic quantum-boundary
// merge; calling Schedule from the processor phase panics.
func (e *Engine) Schedule(at Time, fn func()) {
	if e.inProcPhase {
		panic("sim: Engine.Schedule from processor context; use Proc.Schedule")
	}
	e.seq++
	e.events.push(e.alloc(at, fn, nil, e.seq))
}

// ScheduleAction is Schedule for a closure-free Action body. Same engine-
// context restriction; processor-context code uses Proc.ScheduleAction.
func (e *Engine) ScheduleAction(at Time, act Action) {
	if e.inProcPhase {
		panic("sim: Engine.ScheduleAction from processor context; use Proc.ScheduleAction")
	}
	e.seq++
	e.events.push(e.alloc(at, nil, act, e.seq))
}

// Stager is an auxiliary event-staging context for objects shared by many
// processors (the barrier): whichever processor stages through it, the
// staged events merge at a fixed position — after every processor's own
// buffer, in Stager creation order — so sequence numbering never depends on
// which processor happened to act. At most one processor may stage through
// a given Stager per quantum (the barrier's completer; episodes cannot
// overlap).
type Stager struct {
	eng    *Engine
	staged []stagedEvent
}

// NewStager registers an auxiliary staging context.
func (e *Engine) NewStager() *Stager {
	s := &Stager{eng: e}
	e.stagers = append(e.stagers, s)
	return s
}

// Schedule stages an event for the quantum-boundary merge.
func (s *Stager) Schedule(at Time, fn func()) {
	s.staged = append(s.staged, stagedEvent{at: at, fn: fn})
}

// ScheduleAction stages a closure-free Action for the quantum-boundary merge.
func (s *Stager) ScheduleAction(at Time, act Action) {
	s.staged = append(s.staged, stagedEvent{at: at, act: act})
}

// newProc builds the registration-shared part of a processor.
func (e *Engine) newProc() *Proc {
	p := &Proc{
		ID:   len(e.procs),
		eng:  e,
		gate: make(chan struct{}, 1),
		Acct: &stats.Acct{PerAccess: e.PerAccessStats},
	}
	p.compCat = stats.Comp
	p.missCat = stats.LocalMiss
	p.missCnt = stats.CntLocalMisses
	p.sharedCat = stats.SharedMiss
	p.wfCat = stats.WriteFault
	e.procs = append(e.procs, p)
	e.ready = append(e.ready, p)
	return p
}

// AddProc registers a new coroutine processor whose body is fn. Must be
// called before Run. Processors are created with ID = registration order.
func (e *Engine) AddProc(fn func(p *Proc)) *Proc {
	p := e.newProc()
	p.body = fn
	return p
}

// AddStepProc registers a stackless processor: instead of a coroutine, step
// is invoked as a direct continuation call on every dispatch — one function
// call per quantum, no goroutine, no park/unpark. The step runs until its
// clock reaches the quantum end (or it blocks via StepBlock) and returns
// StepYield, or retires with StepDone. Step processors cannot call the
// suspending primitives (Interact past the horizon, Block, SpinUntil);
// they are for service processors and dispatch-bound workloads structured
// as explicit state machines.
func (e *Engine) AddStepProc(step func(p *Proc) StepStatus) *Proc {
	p := e.newProc()
	p.step = step
	return p
}

// Procs returns the registered processors.
func (e *Engine) Procs() []*Proc { return e.procs }

// workerCount resolves the effective processor-phase parallelism.
func (e *Engine) workerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the simulation until every processor's body has returned and
// no events remain, returning nil. If a processor aborts the run (see
// Abort), the remaining processors are unwound and Run returns the abort
// error — a structured failure report instead of a deadlock panic. It still
// panics on true deadlock (all processors blocked with no pending events and
// no abort raised) with a description and diagnostics of each processor's
// state, a programmer error on a perfect network.
func (e *Engine) Run() error {
	for _, p := range e.procs {
		if p.step == nil {
			p.start()
		}
	}
	defer e.stopWorkers()
	for e.finished < len(e.procs) {
		if e.aborted != nil {
			e.unwind()
			return e.aborted
		}
		if e.MaxTime > 0 && e.now > e.MaxTime {
			e.overtime()
		}
		// Fold batched cost charges into the stats accounts at the quantum
		// boundary, before publishers, hooks, and state encoders observe
		// them. Every observer therefore sees totals bit-identical to
		// per-access charging; only the store traffic in between differs.
		for _, p := range e.procs {
			p.Acct.Flush()
		}
		for _, pub := range e.publishers {
			pub(e.now)
		}
		if len(e.watchdogs) > 0 {
			e.checkWatchdogs()
			if e.aborted != nil {
				e.unwind()
				return e.aborted
			}
		}
		if len(e.hooks) > 0 {
			for _, h := range e.hooks {
				h(e.now)
			}
			if e.aborted != nil { // a hook stopped the run (e.g. -run-until)
				e.unwind()
				return e.aborted
			}
		}
		e.qEnd = e.now + e.Quantum

		// Event phase: handle everything due before the quantum ends, then
		// slide the calendar window up to the drained boundary.
		for {
			ev := e.events.popBelow(e.qEnd)
			if ev == nil {
				break
			}
			ev.run()
			e.release(ev)
		}
		e.events.advance(e.qEnd)

		// Processor phase: run each processor that has work this quantum.
		// ready is consumed wholesale — procs past the horizon spill into
		// the ahead heap, the rest join the batch, and procs whose run-
		// ahead ends this quantum come back off the heap top.
		e.batch = e.batch[:0]
		for _, p := range e.ready {
			if p.clock < e.qEnd {
				e.batch = append(e.batch, p)
			} else {
				heap.Push(&e.ahead, p)
			}
		}
		e.ready = e.ready[:0]
		for len(e.ahead) > 0 && e.ahead[0].clock < e.qEnd {
			e.batch = append(e.batch, heap.Pop(&e.ahead).(*Proc))
		}
		if len(e.batch) > 0 {
			// Sort by ID once: the dispatch chain, the staged-event merge,
			// and failure collection all walk this order, so every
			// deterministic tie-break reduces to processor ID.
			sortBatchByID(e.batch)
			e.runBatch(e.batch)
			e.settleBatch(e.batch)
			e.now = e.qEnd
			continue
		}

		// Advance. If the quantum was idle, jump to the next interesting
		// time instead of crawling quantum by quantum.
		if e.aborted != nil {
			// An event handler (e.g. a watchdog) aborted mid-quantum; let
			// the loop top unwind instead of misreporting a deadlock.
			continue
		}
		next := e.nextInteresting()
		if next < 0 {
			e.deadlock()
		}
		if next < e.qEnd {
			next = e.qEnd
		}
		// Align down to the quantum grid so event-phase windows stay stable.
		e.now = next - (next % e.Quantum)
	}
	// The last live processor may have been the one that aborted; its
	// unwind ends the loop without passing the check at the top.
	if e.aborted != nil {
		return e.aborted
	}
	// Drain any trailing events (e.g. in-flight acknowledgements) so event
	// conservation properties hold for tests.
	for e.events.len() > 0 {
		ev := e.events.popBelow(maxTime)
		e.now = ev.At
		ev.run()
		e.release(ev)
	}
	return nil
}

// runBatch executes every processor in the batch for one quantum. Serially,
// the whole batch forms one baton chain: the engine unparks the head and
// parks once on its own gate — one handoff per processor, plus none at all
// for runs of step procs. In parallel mode the persistent workers claim
// chunks of the batch and chain each chunk the same way. Workers only pass
// batons; all shared mutation (event staging, accounting) is per-processor
// and merged afterwards, so execution order within the batch is immaterial.
func (e *Engine) runBatch(batch []*Proc) {
	e.inProcPhase = true
	n := e.workerCount()
	if n > len(batch) {
		n = len(batch)
	}
	if n > 1 {
		e.ensureWorkers(n)
		// Chunk so each worker expects several claims (load balance)
		// without contending on the cursor per proc.
		c := len(batch) / (4 * n)
		if c < 1 {
			c = 1
		} else if c > 64 {
			c = 64
		}
		e.chunk = c
		e.cursor.Store(0)
		e.pending.Store(int32(n))
		for _, w := range e.workers[:n] {
			w.gate <- struct{}{}
		}
		<-e.engGate
	} else {
		for i := 0; i < len(batch)-1; i++ {
			batch[i].next = batch[i+1]
		}
		batch[len(batch)-1].post = e.engGate
		advance(batch[0])
		<-e.engGate
	}
	e.inProcPhase = false
}

// ensureWorkers grows the persistent worker pool to at least n.
func (e *Engine) ensureWorkers(n int) {
	for len(e.workers) < n {
		w := &worker{eng: e, gate: make(chan struct{}, 1)}
		e.workers = append(e.workers, w)
		go w.loop()
	}
}

// stopWorkers retires the persistent workers when Run returns. They are
// all parked on their gates (a phase never outlives runBatch), so a flagged
// unpark is enough.
func (e *Engine) stopWorkers() {
	for _, w := range e.workers {
		w.stop = true
		w.gate <- struct{}{}
	}
	e.workers = e.workers[:0]
}

// loop is the persistent worker body: park until a phase starts, then
// claim, chain, and dispatch chunks of the batch until the cursor runs
// out. The last worker to finish posts the engine's gate. Channel sends
// order every write: the engine's batch/chunk writes precede the phase
// start, each chunk's proc state precedes the tail's post, and the pending
// counter hands the final ordering to the engine.
func (w *worker) loop() {
	for {
		<-w.gate
		if w.stop {
			return
		}
		e := w.eng
		sz := e.chunk
		for {
			i := int(e.cursor.Add(int64(sz))) - sz
			if i >= len(e.batch) {
				break
			}
			j := i + sz
			if j > len(e.batch) {
				j = len(e.batch)
			}
			chunk := e.batch[i:j]
			for k := 0; k < len(chunk)-1; k++ {
				chunk[k].next = chunk[k+1]
			}
			chunk[len(chunk)-1].post = w.gate
			advance(chunk[0])
			<-w.gate
		}
		if e.pending.Add(-1) == 0 {
			e.engGate <- struct{}{}
		}
	}
}

// settleBatch runs at the quantum boundary after the batch: it merges every
// staged event into the global heap in deterministic order, surfaces the
// first (lowest-ID) processor failure, counts finished processors, and
// requeues the still-runnable ones. The batch is already ID-sorted (Run
// sorts it before dispatch), so iteration order is processor-ID order.
func (e *Engine) settleBatch(batch []*Proc) {
	for _, p := range batch {
		for i := range p.staged {
			se := &p.staged[i]
			e.seq++
			e.events.push(e.alloc(se.at, se.fn, se.act, e.seq))
			se.fn = nil
			se.act = nil
		}
		p.staged = p.staged[:0]
	}
	for _, s := range e.stagers {
		for i := range s.staged {
			se := &s.staged[i]
			e.seq++
			e.events.push(e.alloc(se.at, se.fn, se.act, e.seq))
			se.fn = nil
			se.act = nil
		}
		s.staged = s.staged[:0]
	}
	for _, p := range batch {
		if p.failErr != nil {
			e.Abort(p.failErr)
			p.failErr = nil
		}
	}
	for _, p := range batch {
		switch {
		case p.done:
			e.finished++
		case p.blocked:
			// Re-enters ready when an event wakes it.
		default:
			e.ready = append(e.ready, p)
		}
	}
}

// insertionSortByID sorts a batch by processor ID. Steady-state batches
// arrive nearly sorted already (settle requeues in ID order), so insertion
// sort beats a general sort at small sizes.
func insertionSortByID(ps []*Proc) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && ps[j].ID > p.ID {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}

// sortBatchByID ID-sorts the batch: insertion sort for small or nearly-
// sorted batches, pdqsort beyond that (wake-heavy workloads at large P can
// interleave hundreds of out-of-order entries, where insertion sort's
// quadratic tail would bite).
func sortBatchByID(ps []*Proc) {
	if len(ps) <= 64 {
		insertionSortByID(ps)
		return
	}
	slices.SortFunc(ps, func(a, b *Proc) int { return a.ID - b.ID })
}

// AddPublisher registers fn to run at the top of every scheduling iteration,
// before the watchdog check and the quantum hooks. Publishers copy live
// per-node values into quantum-stable snapshots that other processors may
// read during the processor phase (see Engine.publishers). Unlike hooks,
// publishers are part of the simulation: they must be deterministic
// functions of the boundary state.
func (e *Engine) AddPublisher(fn func(now Time)) {
	e.publishers = append(e.publishers, fn)
}

// AddQuantumHook registers fn to run at the top of every scheduling
// iteration with the current quantum-start time. Times are strictly
// increasing across calls. Hooks observe; the only mutation they may
// perform is Abort (how -run-until stops a run). They run after the
// publishers and watchdog check and before the event phase.
func (e *Engine) AddQuantumHook(fn func(now Time)) {
	e.hooks = append(e.hooks, fn)
}

// Abort requests that the run stop with err: at its next scheduling point
// the engine unwinds every live processor and Run returns err. The first
// abort wins; later calls are ignored. Callable from an event handler or a
// quantum hook; processor bodies use Proc.Fail, which stages the error so
// concurrent failures resolve to the lowest processor ID, exactly as serial
// dispatch order would.
func (e *Engine) Abort(err error) {
	if e.aborted == nil {
		e.aborted = err
	}
}

// Aborted returns the error the run was aborted with, if any.
func (e *Engine) Aborted() error { return e.aborted }

// unwind poisons and resumes every live processor so it retires (via the
// procHalt panic recovered in start, or the step dispatcher's poison
// check), leaving no coroutine parked.
func (e *Engine) unwind() {
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.poisoned = true
		p.blocked = false
		p.next = nil
		p.post = e.engGate
		advance(p)
		<-e.engGate
		if p.done {
			e.finished++
		}
	}
}

// nextInteresting returns the earliest time at which anything can happen:
// the next event or the clock of the earliest run-ahead processor. Returns
// -1 if nothing can ever happen again. ready is almost always empty here
// (an empty batch means collection just spilled everything into ahead),
// but a wake landing after collection keeps the scan for completeness.
func (e *Engine) nextInteresting() Time {
	next := e.events.minAt()
	if len(e.ahead) > 0 {
		if c := e.ahead[0].clock; next < 0 || c < next {
			next = c
		}
	}
	for _, p := range e.ready {
		if next < 0 || p.clock < next {
			next = p.clock
		}
	}
	return next
}

func (e *Engine) overtime() {
	panic(fmt.Sprintf("sim: exceeded MaxTime %d\n%s", e.MaxTime, e.procStates()))
}

func (e *Engine) deadlock() {
	panic("sim: deadlock — all processors blocked and no events pending\n" + e.procStates())
}

// procStates renders every processor's scheduling state plus any diagnostic
// its libraries registered (the progress watchdog's report: a starved node's
// transport diagnostic names the peer and oldest unacked sequence number).
func (e *Engine) procStates() string {
	msg := ""
	for _, p := range e.procs {
		msg += fmt.Sprintf("  proc %d: clock=%d done=%v blocked=%v reason=%q\n",
			p.ID, p.clock, p.done, p.blocked, p.blockReason)
		if p.diag != nil {
			if d := p.diag(); d != "" {
				msg += "    " + d + "\n"
			}
		}
	}
	return msg
}

// eventHeap is a min-heap on (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// procHeap is a min-heap of run-ahead processors on (clock, ID): the heap
// top is always the earliest future work, which keeps idle-time skipping
// and run-ahead re-entry O(log n) without scanning every processor.
type procHeap []*Proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].ID < h[j].ID
}
func (h procHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *procHeap) Push(x any)   { *h = append(*h, x.(*Proc)) }
func (h *procHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}
