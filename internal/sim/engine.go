// Package sim provides the deterministic discrete-event simulation engine
// underlying both simulated machines, in the style of the Wisconsin Wind
// Tunnel (Reinhardt et al., SIGMETRICS 1993).
//
// Target "processors" are Go functions executed as coroutines: exactly one
// goroutine runs at any moment, and the engine interleaves processors in
// fixed order within conservative time quanta equal to the minimum network
// latency (100 cycles). Any event one processor causes at another is
// delayed by at least the network latency, so intra-quantum execution order
// cannot affect the simulation's outcome — the same lookahead argument WWT
// uses. All time is virtual (cycles); wall-clock effects such as Go's
// garbage collector cannot perturb measurements.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/stats"
)

// Time is virtual time in processor cycles.
type Time = int64

// Event is a timestamped action processed by the engine in (time, sequence)
// order. Handlers run outside any processor context; they typically deliver
// messages, run directory/cache controller work, and wake blocked
// processors.
type Event struct {
	At Time
	Fn func()

	seq   uint64
	index int
}

// Engine coordinates processors and events.
type Engine struct {
	Quantum Time // conservative lookahead; events cross processors no faster

	now    Time // start of the current quantum
	qEnd   Time // end of the current quantum
	events eventHeap
	seq    uint64
	procs  []*Proc

	running  *Proc // processor currently executing, if any
	finished int   // processors that have returned
	inEvents bool  // processing the event phase

	// MaxTime, when positive, bounds virtual time: exceeding it panics with
	// the processor states. It catches simulated livelock (time advancing
	// forever without progress) the way the deadlock detector catches
	// stalled time.
	MaxTime Time

	// aborted, when non-nil, is the structured error that ended the run
	// early (e.g. the reliable transport's retry budget was exhausted).
	// Remaining processors are unwound cleanly instead of deadlocking.
	aborted error

	// watchdogs are progress monitors checked each scheduling iteration;
	// see AddWatchdog. Empty unless a robustness layer armed one.
	watchdogs []*Watchdog

	// hooks run at the top of every scheduling iteration, when e.now is a
	// fresh quantum boundary and no processor is executing — the only
	// moment all serializable state is quiescent. The checkpoint layer
	// hangs off this; empty unless armed. Hooks must be pure observers
	// (plus Abort): mutating simulation state from a hook would diverge a
	// checkpointed run from an unobserved one.
	hooks []func(now Time)

	// Trace, when non-nil, receives a line per engine decision. Used by
	// tests; nil in normal runs.
	Trace func(format string, args ...any)
}

// NewEngine returns an engine with the given quantum (use the network
// latency; 100 in the paper's machines).
func NewEngine(quantum Time) *Engine {
	if quantum <= 0 {
		panic("sim: quantum must be positive")
	}
	return &Engine{Quantum: quantum}
}

// Now returns the start of the current quantum. Individual processors may
// have local clocks ahead of this.
func (e *Engine) Now() Time { return e.now }

// QuantumEnd returns the end of the current quantum; processors yield to the
// scheduler when their local clock reaches it.
func (e *Engine) QuantumEnd() Time { return e.qEnd }

// Schedule enqueues an event at absolute time at. Events scheduled for the
// past are processed at the start of the next quantum (their handlers must
// therefore tolerate lateness bounded by one quantum; per-object busy times
// preserve monotonicity).
func (e *Engine) Schedule(at Time, fn func()) {
	e.seq++
	heap.Push(&e.events, &Event{At: at, Fn: fn, seq: e.seq})
}

// AddProc registers a new processor whose body is fn. Must be called before
// Run. Processors are created with ID = registration order.
func (e *Engine) AddProc(fn func(p *Proc)) *Proc {
	p := &Proc{
		ID:     len(e.procs),
		eng:    e,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		body:   fn,
		Acct:   &stats.Acct{},
	}
	p.missCat = stats.LocalMiss
	p.missCnt = stats.CntLocalMisses
	p.sharedCat = stats.SharedMiss
	p.wfCat = stats.WriteFault
	e.procs = append(e.procs, p)
	return p
}

// Procs returns the registered processors.
func (e *Engine) Procs() []*Proc { return e.procs }

// Run executes the simulation until every processor's body has returned and
// no events remain, returning nil. If a processor aborts the run (see
// Abort), the remaining processors are unwound and Run returns the abort
// error — a structured failure report instead of a deadlock panic. It still
// panics on true deadlock (all processors blocked with no pending events and
// no abort raised) with a description and diagnostics of each processor's
// state, a programmer error on a perfect network.
func (e *Engine) Run() error {
	for _, p := range e.procs {
		p.start()
	}
	for e.finished < len(e.procs) {
		if e.aborted != nil {
			e.unwind()
			return e.aborted
		}
		if e.MaxTime > 0 && e.now > e.MaxTime {
			e.overtime()
		}
		if len(e.watchdogs) > 0 {
			e.checkWatchdogs()
			if e.aborted != nil {
				e.unwind()
				return e.aborted
			}
		}
		if len(e.hooks) > 0 {
			for _, h := range e.hooks {
				h(e.now)
			}
			if e.aborted != nil { // a hook stopped the run (e.g. -run-until)
				e.unwind()
				return e.aborted
			}
		}
		e.qEnd = e.now + e.Quantum

		// Event phase: handle everything due before the quantum ends.
		e.inEvents = true
		for len(e.events) > 0 && e.events[0].At < e.qEnd {
			ev := heap.Pop(&e.events).(*Event)
			ev.Fn()
		}
		e.inEvents = false

		// Processor phase: run each processor that has work this quantum.
		ran := false
		for _, p := range e.procs {
			if p.done || p.blocked {
				continue
			}
			if p.clock < e.qEnd {
				ran = true
				e.dispatch(p)
			}
		}

		// Advance. If the quantum was idle, jump to the next interesting
		// time instead of crawling quantum by quantum.
		if ran {
			e.now = e.qEnd
			continue
		}
		if e.aborted != nil {
			// An event handler (e.g. a watchdog) aborted mid-quantum; let
			// the loop top unwind instead of misreporting a deadlock.
			continue
		}
		next := e.nextInteresting()
		if next < 0 {
			e.deadlock()
		}
		if next < e.qEnd {
			next = e.qEnd
		}
		// Align down to the quantum grid so event-phase windows stay stable.
		e.now = next - (next % e.Quantum)
	}
	// The last live processor may have been the one that aborted; its
	// unwind ends the loop without passing the check at the top.
	if e.aborted != nil {
		return e.aborted
	}
	// Drain any trailing events (e.g. in-flight acknowledgements) so event
	// conservation properties hold for tests.
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		e.now = ev.At
		ev.Fn()
	}
	return nil
}

// AddQuantumHook registers fn to run at the top of every scheduling
// iteration with the current quantum-start time. Times are strictly
// increasing across calls. Hooks observe; the only mutation they may
// perform is Abort (how -run-until stops a run). They run after the
// watchdog check and before the event phase.
func (e *Engine) AddQuantumHook(fn func(now Time)) {
	e.hooks = append(e.hooks, fn)
}

// Abort requests that the run stop with err: at its next scheduling point
// the engine unwinds every live processor and Run returns err. The first
// abort wins; later calls are ignored. Callable from a processor body or an
// event handler.
func (e *Engine) Abort(err error) {
	if e.aborted == nil {
		e.aborted = err
	}
}

// Aborted returns the error the run was aborted with, if any.
func (e *Engine) Aborted() error { return e.aborted }

// unwind poisons and resumes every live processor so its goroutine exits
// (via the procHalt panic recovered in start), leaving no coroutine parked.
func (e *Engine) unwind() {
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.poisoned = true
		p.blocked = false
		e.dispatch(p)
	}
}

// nextInteresting returns the earliest time at which anything can happen:
// the next event or the clock of a runnable (but run-ahead) processor.
// Returns -1 if nothing can ever happen again.
func (e *Engine) nextInteresting() Time {
	next := Time(-1)
	if len(e.events) > 0 {
		next = e.events[0].At
	}
	for _, p := range e.procs {
		if p.done || p.blocked {
			continue
		}
		if next < 0 || p.clock < next {
			next = p.clock
		}
	}
	return next
}

func (e *Engine) overtime() {
	panic(fmt.Sprintf("sim: exceeded MaxTime %d\n%s", e.MaxTime, e.procStates()))
}

func (e *Engine) deadlock() {
	panic("sim: deadlock — all processors blocked and no events pending\n" + e.procStates())
}

// procStates renders every processor's scheduling state plus any diagnostic
// its libraries registered (the progress watchdog's report: a starved node's
// transport diagnostic names the peer and oldest unacked sequence number).
func (e *Engine) procStates() string {
	msg := ""
	for _, p := range e.procs {
		msg += fmt.Sprintf("  proc %d: clock=%d done=%v blocked=%v reason=%q\n",
			p.ID, p.clock, p.done, p.blocked, p.blockReason)
		if p.diag != nil {
			if d := p.diag(); d != "" {
				msg += "    " + d + "\n"
			}
		}
	}
	return msg
}

// dispatch hands control to p until it yields.
func (e *Engine) dispatch(p *Proc) {
	e.running = p
	p.resume <- struct{}{}
	<-p.yield
	e.running = nil
}

// eventHeap is a min-heap on (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
