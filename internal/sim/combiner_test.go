package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
)

// sumCombine is the simplest commutative operator: add values, add indexes.
func sumCombine(op uint8, v1 float64, i1 int64, v2 float64, i2 int64) (float64, int64) {
	return v1 + v2, i1 + i2
}

// concatCombine is deliberately order-sensitive (decimal digit
// concatenation), so a fold in anything but processor-ID order produces a
// different number — the probe for the ID-order fold guarantee.
func concatCombine(op uint8, v1 float64, i1 int64, v2 float64, i2 int64) (float64, int64) {
	return v1*10 + v2, i1*10 + i2
}

// TestCombinerDeliversCombinedResult: every participant gets the combined
// (value, index), the release lands a fixed latency after the last arrival,
// and consecutive episodes recycle cleanly through the freelist.
func TestCombinerDeliversCombinedResult(t *testing.T) {
	const n, latency, episodes = 4, 150, 3
	e := NewEngine(100)
	comb := NewCombiner(e, n, latency, sumCombine)
	clocks := make([]Time, n)
	for i := 0; i < n; i++ {
		i := i
		e.AddProc(func(p *Proc) {
			for ep := 0; ep < episodes; ep++ {
				p.Compute(int64(10 * (i + 1))) // staggered arrivals
				v, idx := comb.Wait(p, stats.BarrierWait, 0, float64(i+1), int64(i))
				if v != 1+2+3+4 {
					t.Errorf("episode %d proc %d: combined value %g, want 10", ep, i, v)
				}
				if idx != 0+1+2+3 {
					t.Errorf("episode %d proc %d: combined index %d, want 6", ep, i, idx)
				}
			}
			clocks[i] = p.Clock()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := comb.Epochs(); got != episodes {
		t.Fatalf("epochs %d, want %d", got, episodes)
	}
	// Every episode: arrivals at +10..+40 past the common start, release at
	// last arrival + latency; all waiters resume at the same cycle.
	for i, c := range clocks {
		if c != clocks[0] {
			t.Errorf("proc %d resumed at %d, proc 0 at %d — release must be simultaneous", i, c, clocks[0])
		}
	}
	want := Time(episodes * (40 + latency))
	if clocks[0] != want {
		t.Errorf("final clock %d, want %d", clocks[0], want)
	}
}

// TestCombinerFoldsInProcessorIDOrder inverts the arrival order (the
// highest-ID processor deposits first) and runs under a worker pool; the
// order-sensitive operator still must see contributions folded 0,1,2,…
func TestCombinerFoldsInProcessorIDOrder(t *testing.T) {
	const n = 4
	for _, workers := range []int{1, 4} {
		e := NewEngine(100)
		e.Workers = workers
		comb := NewCombiner(e, n, 100, concatCombine)
		var bad atomic.Int64
		for i := 0; i < n; i++ {
			i := i
			e.AddProc(func(p *Proc) {
				p.Compute(int64(10 * (n - i))) // proc 3 arrives first, proc 0 last
				v, idx := comb.Wait(p, stats.BarrierWait, 0, float64(i+1), int64(i+1))
				if v != 1234 || idx != 1234 {
					bad.Store(int64(v))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("workers=%d run: %v", workers, err)
		}
		if b := bad.Load(); b != 0 {
			t.Errorf("workers=%d: fold produced %d, want 1234 (processor-ID order)", workers, b)
		}
	}
}

// TestCombinerOpMismatchPanics: an episode's participants must agree on the
// operator; a straggler passing a different op is a program bug and fails
// loudly. The straggler retries with the right op so the episode (and the
// engine) still completes.
func TestCombinerOpMismatchPanics(t *testing.T) {
	e := NewEngine(100)
	e.Workers = 1 // serial dispatch: proc 0 deterministically arrives first
	comb := NewCombiner(e, 2, 100, sumCombine)
	e.AddProc(func(p *Proc) {
		comb.Wait(p, stats.BarrierWait, 7, 1, 0)
	})
	var msg string
	e.AddProc(func(p *Proc) {
		func() {
			defer func() { msg = fmt.Sprint(recover()) }()
			comb.Wait(p, stats.BarrierWait, 8, 2, 0)
			t.Error("mismatched op did not panic")
		}()
		comb.Wait(p, stats.BarrierWait, 7, 2, 0)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(msg, "op 8") || !strings.Contains(msg, "op 7") {
		t.Errorf("panic message %q should name both operators", msg)
	}
}
