package sim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/stats"
)

// Combiner models an in-network hardware combining tree, the ablation the
// exascale-synchronization literature motivates (NYU Ultracomputer
// fetch-and-combine; the CM-5's control network computed reductions in
// hardware but the paper's machines deliberately omit it): every
// participant deposits a (value, index) contribution at its network port,
// the network combines contributions on the way up, and a fixed latency
// after the last arrival the combined result is delivered to every
// participant. Against the software reduction trees (cmmd.Comm.Reduce,
// parmacs.Reduction) it isolates how much of their time is the software
// structure rather than the data dependence itself.
//
// Determinism mirrors Barrier: arrivals may come from concurrently
// executing processors, so bookkeeping is mutex-protected; the release
// time is max(arrival clocks) + latency (commutative); contributions are
// combined in processor-ID order whatever the host arrival order; the
// release is staged through a combiner-owned Stager; and waiters are woken
// in processor-ID order. Floating-point combining is therefore
// bit-reproducible — the fold order is fixed by processor ID, never by
// host scheduling.
type Combiner struct {
	eng     *Engine
	n       int
	latency Time
	combine CombineFunc
	stager  *Stager

	mu      sync.Mutex
	arrived []combArrival
	maxArr  Time
	op      uint8
	epoch   int64 // completed combining episodes, for tests and encoding

	// freeRel recycles release events (and their contribution buffers) so a
	// steady state of combining episodes allocates nothing; same discipline
	// as Barrier.freeRel.
	freeRel []*combRelease
}

// CombineFunc folds two (value, index) contributions under an operator code.
// The code's meaning belongs to the owning library (cmmd.ReduceOp,
// parmacs.Op); the combiner only guarantees a deterministic fold order.
type CombineFunc func(op uint8, v1 float64, i1 int64, v2 float64, i2 int64) (float64, int64)

type combArrival struct {
	p   *Proc
	val float64
	idx int64
}

// combRelease is the staged release event for one combining episode: it
// folds the contributions in processor-ID order, wakes every participant
// with the result, and returns itself to the freelist.
type combRelease struct {
	c       *Combiner
	at      Time
	op      uint8
	arrived []combArrival
}

// RunEvent implements Action.
func (r *combRelease) RunEvent(Time) {
	c := r.c
	val, idx := r.arrived[0].val, r.arrived[0].idx
	for _, a := range r.arrived[1:] {
		val, idx = c.combine(r.op, val, idx, a.val, a.idx)
	}
	c.epoch++
	bits := int64(math.Float64bits(val))
	for _, a := range r.arrived {
		a.p.WakeVals(r.at, bits, idx)
	}
	r.arrived = r.arrived[:0]
	c.mu.Lock()
	c.freeRel = append(c.freeRel, r)
	c.mu.Unlock()
}

// NewCombiner creates a hardware combining tree for n participants with the
// given release latency and combining function.
func NewCombiner(eng *Engine, n int, latency Time, combine CombineFunc) *Combiner {
	if n <= 0 {
		panic("sim: combiner needs at least one participant")
	}
	if combine == nil {
		panic("sim: combiner needs a combine function")
	}
	return &Combiner{eng: eng, n: n, latency: latency, combine: combine,
		stager: eng.NewStager()}
}

// Epochs returns how many combining episodes have completed.
func (c *Combiner) Epochs() int64 { return c.epoch }

// Wait deposits (val, idx) under operator op and stalls until latency
// cycles after the last participant's deposit, returning the combined
// result (delivered to every participant — root-only semantics are the
// caller's to impose). The stall is charged to cat. Every participant of an
// episode must pass the same op; re-entering before the episode completes
// panics, as does calling from a step processor (Wait blocks).
func (c *Combiner) Wait(p *Proc, cat stats.Category, op uint8, val float64, idx int64) (float64, int64) {
	p.Interact()
	c.mu.Lock()
	for _, a := range c.arrived {
		if a.p == p {
			c.mu.Unlock()
			panic(fmt.Sprintf("sim: proc %d re-entered combiner", p.ID))
		}
	}
	if len(c.arrived) == 0 {
		c.op = op
	} else if op != c.op {
		c.mu.Unlock()
		panic(fmt.Sprintf("sim: proc %d joined combining episode with op %d, episode uses op %d",
			p.ID, op, c.op))
	}
	if p.clock > c.maxArr {
		c.maxArr = p.clock
	}
	c.arrived = append(c.arrived, combArrival{p: p, val: val, idx: idx})
	if len(c.arrived) == c.n {
		c.stageRelease()
	}
	c.mu.Unlock()
	a, b := p.BlockVals(cat, "combine")
	return math.Float64frombits(uint64(a)), b
}

// stageRelease, called with mu held by the episode's last arrival, sorts
// the contributions into processor-ID order, stages the release event, and
// resets the arrival state for the next episode.
func (c *Combiner) stageRelease() {
	release := c.maxArr + c.latency
	var r *combRelease
	if n := len(c.freeRel); n > 0 {
		r = c.freeRel[n-1]
		c.freeRel = c.freeRel[:n-1]
	} else {
		r = &combRelease{c: c}
	}
	r.at = release
	r.op = c.op
	r.arrived = append(r.arrived, c.arrived...)
	// Insertion sort by processor ID (episodes are small; a closure-based
	// sort would allocate per episode).
	for i := 1; i < len(r.arrived); i++ {
		a := r.arrived[i]
		j := i - 1
		for j >= 0 && r.arrived[j].p.ID > a.p.ID {
			r.arrived[j+1] = r.arrived[j]
			j--
		}
		r.arrived[j+1] = a
	}
	c.arrived = c.arrived[:0]
	c.maxArr = 0
	c.stager.ScheduleAction(release, r)
}
