package sim

import "testing"

// TestRNGStateRestore: capturing State and later Restoring it replays the
// exact remaining sequence — the property snapshot verification depends on.
func TestRNGStateRestore(t *testing.T) {
	r := NewRNG(123)
	for i := 0; i < 100; i++ {
		r.Uint64() // advance to an arbitrary mid-stream position
	}
	pos := r.State()
	var want [50]uint64
	for i := range want {
		want[i] = r.Uint64()
	}
	r.Restore(pos)
	for i := range want {
		if got := r.Uint64(); got != want[i] {
			t.Fatalf("draw %d after restore = %#x, want %#x", i, got, want[i])
		}
	}
}

// TestRNGStateIsFullState: two generators with equal State produce equal
// streams forever; unequal states diverge immediately with overwhelming
// probability.
func TestRNGStateIsFullState(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	if a.State() != b.State() {
		t.Fatal("identical seeds give different states")
	}
	a.Uint64()
	if a.State() == b.State() {
		t.Fatal("state did not advance with the stream")
	}
	b.Restore(a.State())
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("restored stream diverged at draw %d", i)
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.State() == 0 {
		t.Fatal("zero seed must be remapped to nonzero state")
	}
	defer func() {
		if recover() == nil {
			t.Error("Restore(0) should panic")
		}
	}()
	r.Restore(0)
}
