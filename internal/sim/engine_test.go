package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestComputeAdvancesClockAndCharges(t *testing.T) {
	e := NewEngine(100)
	var got Time
	p := e.AddProc(func(p *Proc) {
		p.Compute(250)
		got = p.Clock()
	})
	e.Run()
	if got != 250 {
		t.Errorf("clock = %d, want 250", got)
	}
	if c := p.Acct.Cycles(stats.PhaseDefault, stats.Comp); c != 250 {
		t.Errorf("computation cycles = %d, want 250", c)
	}
}

func TestEventsRunInTimestampOrder(t *testing.T) {
	e := NewEngine(100)
	var order []int
	e.AddProc(func(p *Proc) { p.Compute(1000) })
	e.Schedule(500, func() { order = append(order, 2) })
	e.Schedule(50, func() { order = append(order, 1) })
	e.Schedule(999, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("event order = %v, want [1 2 3]", order)
	}
}

func TestEventTieBrokenBySchedulingOrder(t *testing.T) {
	e := NewEngine(100)
	var order []int
	e.AddProc(func(p *Proc) { p.Compute(200) })
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(70, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want ascending", order)
		}
	}
}

func TestBlockWakeChargesStall(t *testing.T) {
	e := NewEngine(100)
	var woke Time
	var data any
	p := e.AddProc(func(p *Proc) {
		p.Compute(40)
		data = p.Block(stats.SharedMiss, "test wait")
		woke = p.Clock()
	})
	// Wakes always arrive at least a quantum after the block in practice
	// (they are replies to requests issued before blocking).
	e.Schedule(150, func() { p.Wake(340, "hello") })
	e.Run()
	if woke != 340 {
		t.Errorf("woke at %d, want 340", woke)
	}
	if data != "hello" {
		t.Errorf("wake data = %v, want hello", data)
	}
	if c := p.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss); c != 300 {
		t.Errorf("stall charged %d, want 300", c)
	}
}

func TestInteractBoundsRunAhead(t *testing.T) {
	// A processor that computed far ahead must not observe an event that
	// logically happens later than another processor's earlier send.
	e := NewEngine(100)
	var sawAt Time
	flag := false
	e.AddProc(func(p *Proc) {
		p.Compute(5000) // run way ahead
		p.Interact()
		sawAt = p.Clock()
	})
	e.AddProc(func(p *Proc) {
		p.Compute(10)
		flag = true
	})
	e.Run()
	if !flag {
		t.Fatal("second proc never ran")
	}
	if sawAt != 5000 {
		t.Errorf("interact resumed at %d, want 5000", sawAt)
	}
}

func TestSpinUntilSeesEventUpdates(t *testing.T) {
	e := NewEngine(100)
	ready := false
	var doneAt Time
	p := e.AddProc(func(p *Proc) {
		p.SpinUntil(stats.LibComp, func() bool { return ready })
		doneAt = p.Clock()
	})
	e.Schedule(730, func() { ready = true })
	e.Run()
	// Observation precision is one quantum: the event lands in the event
	// phase of its quantum, so the spin may see it up to Quantum early.
	if doneAt < 630 || doneAt > 830 {
		t.Errorf("spin finished at %d, want within a quantum of 730", doneAt)
	}
	if c := p.Acct.Cycles(stats.PhaseDefault, stats.LibComp); c != doneAt {
		t.Errorf("spin charged %d, want %d", c, doneAt)
	}
}

func TestBarrierReleasesAtMaxArrivalPlusLatency(t *testing.T) {
	e := NewEngine(100)
	b := NewBarrier(e, 3, 100)
	exits := make([]Time, 3)
	arrive := []int64{50, 700, 320}
	for i := 0; i < 3; i++ {
		i := i
		e.AddProc(func(p *Proc) {
			p.Compute(arrive[i])
			b.Wait(p, stats.BarrierWait)
			exits[i] = p.Clock()
		})
	}
	e.Run()
	for i, x := range exits {
		if x != 800 {
			t.Errorf("proc %d exits at %d, want 800", i, x)
		}
	}
	if b.Epochs() != 1 {
		t.Errorf("epochs = %d, want 1", b.Epochs())
	}
}

func TestBarrierRepeatedEpochs(t *testing.T) {
	e := NewEngine(100)
	const procs, iters = 4, 7
	b := NewBarrier(e, procs, 100)
	for i := 0; i < procs; i++ {
		i := i
		e.AddProc(func(p *Proc) {
			for k := 0; k < iters; k++ {
				p.Compute(int64(10 * (i + 1)))
				b.Wait(p, stats.BarrierWait)
			}
		})
	}
	e.Run()
	if b.Epochs() != iters {
		t.Errorf("epochs = %d, want %d", b.Epochs(), iters)
	}
	// All procs end at the same time after the final barrier.
	var end Time = -1
	for _, p := range e.Procs() {
		if end < 0 {
			end = p.Clock()
		} else if p.Clock() != end {
			t.Errorf("proc %d ends at %d, others at %d", p.ID, p.Clock(), end)
		}
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(r.(string), "deadlock") {
			t.Fatalf("panic %q does not mention deadlock", r)
		}
	}()
	e := NewEngine(100)
	e.AddProc(func(p *Proc) {
		p.Block(stats.SharedMiss, "never woken")
	})
	e.Run()
}

func TestPushPopMode(t *testing.T) {
	e := NewEngine(100)
	p := e.AddProc(func(p *Proc) {
		p.Compute(10) // Comp
		p.PushMode(stats.LibComp, stats.LibMiss, stats.CntLibMisses)
		p.Compute(20) // LibComp
		if c, _ := p.MissCategory(); c != stats.LibMiss {
			t.Errorf("miss category in lib mode = %v", c)
		}
		p.PushModeFull(stats.SyncComp, stats.SyncMiss, stats.CntPrivateMisses,
			stats.LockWait, stats.LockWait)
		p.Compute(5) // SyncComp
		if p.SharedMissCategory() != stats.LockWait {
			t.Errorf("shared category = %v, want LockWait", p.SharedMissCategory())
		}
		p.PopMode()
		p.PopMode()
		p.Compute(40) // Comp again
	})
	e.Run()
	check := func(cat stats.Category, want int64) {
		if c := p.Acct.Cycles(stats.PhaseDefault, cat); c != want {
			t.Errorf("%v = %d, want %d", cat, c, want)
		}
	}
	check(stats.Comp, 50)
	check(stats.LibComp, 20)
	check(stats.SyncComp, 5)
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(100)
		b := NewBarrier(e, 4, 100)
		for i := 0; i < 4; i++ {
			// One RNG stream per processor: processors within a quantum may
			// run concurrently, so shared draw state is off-limits.
			rng := NewRNG(42 + uint64(i))
			e.AddProc(func(p *Proc) {
				for k := 0; k < 50; k++ {
					p.Compute(int64(rng.Intn(500)))
					b.Wait(p, stats.BarrierWait)
				}
			})
		}
		e.Run()
		var out []int64
		for _, p := range e.Procs() {
			out = append(out, p.Clock(), p.Acct.Cycles(stats.PhaseDefault, stats.Comp))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestIdleQuantumSkipping(t *testing.T) {
	// A long pure wait should not require crawling quanta: verify a distant
	// event still fires and wakes the proc at the right time.
	e := NewEngine(100)
	var woke Time
	p := e.AddProc(func(p *Proc) {
		p.Block(stats.BarrierWait, "long wait")
		woke = p.Clock()
	})
	e.Schedule(1_000_000, func() { p.Wake(1_000_000, nil) })
	e.Run()
	if woke != 1_000_000 {
		t.Errorf("woke at %d, want 1000000", woke)
	}
}

func TestRNGDeterministicAndBounded(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		va, vb := a.Uint64(), b.Uint64()
		if va != vb {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestWaitUntilNoBackwardTime(t *testing.T) {
	e := NewEngine(100)
	p := e.AddProc(func(p *Proc) {
		p.Compute(500)
		p.WaitUntil(300, stats.BarrierWait) // in the past: no-op
		if p.Clock() != 500 {
			t.Errorf("clock moved backward to %d", p.Clock())
		}
		p.WaitUntil(800, stats.BarrierWait)
		if p.Clock() != 800 {
			t.Errorf("clock = %d, want 800", p.Clock())
		}
	})
	e.Run()
	if c := p.Acct.Cycles(stats.PhaseDefault, stats.BarrierWait); c != 300 {
		t.Errorf("wait charged %d, want 300", c)
	}
}

func TestFailAbortsRunWithStructuredError(t *testing.T) {
	e := NewEngine(100)
	sentinel := errors.New("transport starved")
	var after bool
	e.AddProc(func(p *Proc) {
		p.Compute(50)
		p.Fail(sentinel)
		after = true // Fail must not return
	})
	// A second processor parked in Block must be unwound, not leaked or
	// reported as a deadlock.
	e.AddProc(func(p *Proc) {
		p.Block(stats.LibComp, "waiting forever")
	})
	err := e.Run()
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v, want the Fail error", err)
	}
	if after {
		t.Error("Fail returned to the processor body")
	}
	if e.Aborted() == nil {
		t.Error("Aborted() should report the error")
	}
}

func TestAbortFirstErrorWins(t *testing.T) {
	e := NewEngine(100)
	first := errors.New("first")
	second := errors.New("second")
	e.AddProc(func(p *Proc) { p.Fail(first) })
	e.AddProc(func(p *Proc) {
		p.Compute(500)
		p.Interact()
		p.Fail(second)
	})
	if err := e.Run(); !errors.Is(err, first) {
		t.Errorf("Run returned %v, want the first abort", err)
	}
}

func TestAbortFromEventHandlerUnwindsProcs(t *testing.T) {
	e := NewEngine(100)
	sentinel := errors.New("watchdog fired")
	e.AddProc(func(p *Proc) {
		p.Block(stats.LibComp, "awaiting a packet that was dropped")
	})
	e.Schedule(1000, func() { e.Abort(sentinel) })
	if err := e.Run(); !errors.Is(err, sentinel) {
		t.Errorf("Run returned %v, want the watchdog error", err)
	}
}

func TestRunReturnsNilOnCleanCompletion(t *testing.T) {
	e := NewEngine(100)
	e.AddProc(func(p *Proc) { p.Compute(10) })
	if err := e.Run(); err != nil {
		t.Errorf("Run returned %v, want nil", err)
	}
}

func TestDiagnosticAppearsInDeadlockReport(t *testing.T) {
	e := NewEngine(100)
	e.AddProc(func(p *Proc) {
		p.SetDiagnostic(func() string { return "transport: [->1 unacked=3 oldest=7]" })
		p.Block(stats.LibComp, "barrier")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a deadlock panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "oldest=7") {
			t.Errorf("deadlock report missing library diagnostic:\n%s", msg)
		}
		if !strings.Contains(msg, "barrier") {
			t.Errorf("deadlock report missing block reason:\n%s", msg)
		}
	}()
	e.Run()
}

func TestBarrierWaitServicePolls(t *testing.T) {
	e := NewEngine(100)
	b := NewBarrier(e, 2, 100)
	serviced := 0
	var releaseEarly, releaseLate Time
	e.AddProc(func(p *Proc) {
		b.WaitService(p, stats.BarrierWait, func() { serviced++ })
		releaseEarly = p.Clock()
	})
	e.AddProc(func(p *Proc) {
		p.Compute(1000)
		b.Wait(p, stats.BarrierWait)
		releaseLate = p.Clock()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if serviced == 0 {
		t.Error("service callback never ran while waiting")
	}
	if releaseEarly != releaseLate {
		t.Errorf("release times diverge: %d vs %d", releaseEarly, releaseLate)
	}
	if releaseEarly != 1100 {
		t.Errorf("released at %d, want 1100 (last arrival 1000 + latency 100)", releaseEarly)
	}
	if b.Epochs() != 1 {
		t.Errorf("epochs = %d, want 1", b.Epochs())
	}
}
