package sim

import "fmt"

// StallError is the structured report a progress watchdog produces when
// virtual time keeps advancing but the watched subsystem makes no progress
// for longer than its window — simulated livelock, which the engine's
// deadlock detector (all processors blocked, no events) cannot see because
// spinning processors are never blocked. Report carries the subsystem's
// forensics: for the coherence watchdog, the hot blocks, their pending
// requests, and each node's last protocol action.
type StallError struct {
	Source       string // the watched subsystem ("coherence")
	Window       Time   // the configured no-progress window
	LastProgress Time   // virtual time of the last progress mark
	Now          Time   // virtual time at detection
	Report       string // subsystem-rendered diagnostics
}

func (e *StallError) Error() string {
	msg := fmt.Sprintf("sim: %s stalled: no progress for %d cycles (last @%d, now @%d, window %d)",
		e.Source, e.Now-e.LastProgress, e.LastProgress, e.Now, e.Window)
	if e.Report != "" {
		msg += "\n" + e.Report
	}
	return msg
}

// Watchdog watches one subsystem for livelock. The subsystem calls Progress
// whenever it completes a unit of work (the coherence layer: a directory
// transaction granting a reply); the engine checks every quantum whether the
// last progress mark has fallen more than Window behind virtual time, and if
// so aborts the run with a StallError carrying the report callback's
// diagnostics.
type Watchdog struct {
	Source string
	Window Time

	last      Time
	wasActive bool // active() at the previous check; restarts the window on quiet→active
	active    func() bool
	report    func() string
}

// AddWatchdog arms a progress watchdog on the engine. active, which may be
// nil (always active), reports whether the subsystem currently has work
// outstanding — a watchdog never fires while its subsystem is legitimately
// quiet (e.g. a pure-compute phase with no coherence traffic). The engine
// restarts the window itself when it observes a quiet→active transition at
// a quantum boundary, so a stale last-progress mark from before the quiet
// period cannot fire the watchdog immediately. report, which may be nil,
// renders subsystem forensics for the stall report; it is called only on
// detection. Engines with no watchdogs pay a single empty-slice check per
// quantum.
func (e *Engine) AddWatchdog(source string, window Time, active func() bool, report func() string) *Watchdog {
	if window <= 0 {
		panic("sim: watchdog window must be positive")
	}
	w := &Watchdog{Source: source, Window: window, active: active, report: report}
	e.watchdogs = append(e.watchdogs, w)
	return w
}

// Progress records that the watched subsystem completed work at time at.
// Must be called from engine context (an event handler): progress marks from
// concurrent processors would race, and their max would depend on which
// processor's notion of "now" won — completion events are where protocol
// work actually finishes anyway.
func (w *Watchdog) Progress(at Time) {
	if at > w.last {
		w.last = at
	}
}

// checkWatchdogs aborts the run if any watchdog's window has expired. Called
// once per scheduling iteration, before the event phase. A quiet→active
// transition restarts the window at the current boundary: the subsystem was
// idle, so its last progress mark says nothing about the new work.
func (e *Engine) checkWatchdogs() {
	for _, w := range e.watchdogs {
		if w.active != nil && !w.active() {
			w.wasActive = false
			continue
		}
		if !w.wasActive {
			w.wasActive = true
			if e.now > w.last {
				w.last = e.now
			}
		}
		if e.now-w.last > w.Window {
			rep := ""
			if w.report != nil {
				rep = w.report()
			}
			e.Abort(&StallError{
				Source: w.Source, Window: w.Window,
				LastProgress: w.last, Now: e.now, Report: rep,
			})
		}
	}
}
