package sim

import (
	"fmt"

	"repro/internal/stats"
)

// Proc is a simulated processor. Its body runs either as a coroutine under
// engine control (AddProc) or as a step function the dispatcher invokes as
// a direct continuation call (AddStepProc). Within a quantum, processors
// only touch their own state (or explicitly synchronized shared
// structures), which is what lets the engine dispatch a quantum's batch
// across host cores; cross-processor effects travel as events staged
// through Proc.Schedule and merged deterministically at the quantum
// boundary.
//
// A processor has a local virtual clock. Pure computation (Compute) may run
// ahead of the engine's quantum; any operation with cross-processor
// visibility (memory-system access, network-interface access,
// synchronization) first synchronizes with the quantum via Interact.
//
// Dispatch is a baton chain: the engine links the quantum's batch through
// the procs' next pointers and hands control to the head. A coroutine proc
// is resumed by a single send on its one-slot gate channel and, when it
// yields, passes the baton directly to its successor (or posts the chain's
// completion gate) — one park/unpark per dispatch instead of the two
// channel round trips a resume/yield pair costs. A step proc has no
// goroutine at all: the baton holder simply calls its step function.
type Proc struct {
	ID   int
	Acct *stats.Acct

	eng   *Engine
	clock Time

	// gate parks and unparks the coroutine (cap 1, so an unpark never
	// blocks the sender). nil-adjacent fields next/post are the baton
	// chain: set by the dispatcher before control arrives, consumed at the
	// proc's yield. step is non-nil for continuation-dispatched procs.
	gate chan struct{}
	next *Proc
	post chan struct{}
	body func(*Proc)
	step func(*Proc) StepStatus

	done        bool
	blocked     bool
	poisoned    bool // engine aborting: unwind at the next resume
	wakeKind    uint8
	blockReason string
	blockStart  Time
	blockCat    stats.Category
	wakeAt      Time
	wakeData    any
	wakeA       int64 // typed wake payload (WakeVals/BlockVals): no boxing
	wakeB       int64
	diag        func() string // optional library diagnostic for stall reports

	staged  []stagedEvent // events raised this quantum, merged at the boundary
	failErr error         // error staged by Fail, collected by the engine

	// Accounting modes. Library and synchronization code switch these so
	// that computation and cache misses are charged to the right category
	// (the paper separates "Lib Comp"/"Lib Misses" from application
	// computation and local misses).
	compCat   stats.Category
	missCat   stats.Category
	missCnt   stats.Count
	sharedCat stats.Category
	wfCat     stats.Category
	modes     []mode
}

type mode struct {
	comp   stats.Category
	miss   stats.Category
	cnt    stats.Count
	shared stats.Category
	wf     stats.Category
}

// Wake payload kinds: which of Wake/WakeVals delivered the pending wake.
// Block and BlockVals check the kind on resume, so mixing typed and
// untyped payloads on one block/wake pair fails loudly instead of
// returning stale zeros.
const (
	wakeNone uint8 = iota
	wakeAny        // Wake: payload in wakeData
	wakeVals       // WakeVals: payload in wakeA/wakeB
)

// StepStatus is a step processor's verdict after one dispatch: run again
// (next quantum, or at the pending wake if it blocked) or finish.
type StepStatus uint8

const (
	// StepYield returns control to the dispatcher; the step runs again in
	// the next quantum its clock reaches (or, after StepBlock, when a
	// wake arrives).
	StepYield StepStatus = iota
	// StepDone retires the processor; the step is never called again.
	StepDone
)

// Engine returns the engine this processor belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Clock returns the processor's local virtual time.
func (p *Proc) Clock() Time { return p.clock }

// procHalt is the sentinel panic used to unwind a processor when the engine
// aborts the run; the coroutine recover (or the step dispatcher's) absorbs
// it so the processor retires cleanly instead of leaking parked on its gate.
type procHalt struct{}

func (p *Proc) start() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, halt := r.(procHalt); !halt {
					panic(r)
				}
			}
			// The engine counts finished processors when it settles the
			// batch: this deferred function may run on a worker goroutine,
			// where touching engine state would race. The goroutine exits
			// here, so a retired processor pins no stack.
			p.done = true
			p.passBaton()
		}()
		<-p.gate
		if p.poisoned {
			panic(procHalt{})
		}
		p.body(p)
	}()
}

// passBaton hands control onward when this processor is finished with its
// dispatch: to the chain's next processor if one is linked, else to the
// chain's completion gate (the engine's or a worker's).
func (p *Proc) passBaton() {
	n, post := p.next, p.post
	p.next, p.post = nil, nil
	if n != nil {
		advance(n)
	} else {
		post <- struct{}{}
	}
}

// advance transfers control to p: a coroutine proc is unparked with a
// single channel send; a step proc's continuation is called right here, on
// the current goroutine, and the baton passes on to its successor — a run
// of step procs dispatches as plain function calls in a loop.
func advance(p *Proc) {
	for {
		if p.step == nil {
			p.gate <- struct{}{}
			return
		}
		p.runStep()
		n := p.next
		if n == nil {
			post := p.post
			p.post = nil
			post <- struct{}{}
			return
		}
		p.next = nil
		p = n
	}
}

// runStep executes one dispatch of a step processor, absorbing the
// procHalt sentinel exactly as a coroutine's recover does.
func (p *Proc) runStep() {
	if p.poisoned {
		p.done = true
		return
	}
	halted := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, halt := r.(procHalt); halt {
					halted = true
					return
				}
				panic(r)
			}
		}()
		if p.step(p) == StepDone {
			if p.blocked {
				panic(fmt.Sprintf("sim: step proc %d returned StepDone while blocked", p.ID))
			}
			p.done = true
		}
	}()
	if halted {
		p.done = true
	}
}

// yieldToEngine suspends the processor until the engine dispatches it
// again: pass the baton on, park on the gate.
func (p *Proc) yieldToEngine() {
	if p.step != nil {
		panic(fmt.Sprintf("sim: step proc %d cannot yield from inside its step; return StepYield instead", p.ID))
	}
	p.passBaton()
	<-p.gate
	if p.poisoned {
		panic(procHalt{})
	}
}

// Fail aborts the whole run with err on behalf of this processor: the engine
// stops scheduling, unwinds every processor, and Run returns err. Fail does
// not return. Libraries use it to surface structured failures (e.g. a
// transport retry budget exhausted) instead of panicking or deadlocking.
// The error is staged, not applied immediately: the engine collects staged
// failures at the quantum boundary in processor-ID order, so when several
// processors fail in the same quantum the winner does not depend on host
// scheduling.
func (p *Proc) Fail(err error) {
	p.failErr = err
	panic(procHalt{})
}

// Schedule stages an event at absolute time at, to be merged into the
// engine's event heap at the end of the current quantum. This is the only
// way processor-context code may raise events: staging per processor and
// merging in processor-ID order keeps event sequence numbers — and with
// them every same-time tie-break — independent of how the host interleaved
// the quantum's processors. Handlers run in a later quantum's event phase
// (engine context), where Engine.Schedule and Proc.Wake are legal.
func (p *Proc) Schedule(at Time, fn func()) {
	p.staged = append(p.staged, stagedEvent{at: at, fn: fn})
}

// ScheduleAction stages a closure-free Action at absolute time at; identical
// merge semantics to Schedule. Hot paths pair this with subsystem freelists
// so raising an event allocates nothing.
func (p *Proc) ScheduleAction(at Time, act Action) {
	p.staged = append(p.staged, stagedEvent{at: at, act: act})
}

// SetDiagnostic registers fn to render this processor's library-level state
// (e.g. unacked transport sequence numbers) in engine stall reports.
func (p *Proc) SetDiagnostic(fn func() string) { p.diag = fn }

// Compute charges cycles of computation at the current computation category
// (application computation by default; library computation inside
// message-passing library code). The clock may run ahead of the engine's
// quantum; the processor yields lazily at its next interaction.
func (p *Proc) Compute(cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("sim: proc %d: negative compute %d", p.ID, cycles))
	}
	p.Acct.Charge(p.compCat, cycles)
	p.clock += cycles
}

// ChargeStall charges cycles to an explicit category and advances the clock.
// Used by the memory system and libraries for stalls with a known cost.
func (p *Proc) ChargeStall(cat stats.Category, cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("sim: proc %d: negative stall %d", p.ID, cycles))
	}
	p.Acct.Charge(cat, cycles)
	p.clock += cycles
}

// Interact synchronizes the processor with the engine's quantum: if the
// local clock has run ahead of the current quantum, the processor yields
// until the quantum catches up. Every externally visible operation calls
// this first, bounding observable reordering by one quantum (= the minimum
// network latency), the precision of the original Wind Tunnel simulation.
// Step processors cannot suspend mid-step: their step returns StepYield
// when the clock reaches the quantum end, and the engine redispatches them
// once the quantum catches up — the same run-ahead bound without a stack.
func (p *Proc) Interact() {
	for p.clock >= p.eng.qEnd {
		p.yieldToEngine()
	}
}

// StepInteract is Interact for step processors: it reports whether the
// local clock is still inside the current quantum. A step-form library
// operation calls it wherever its coroutine twin calls Interact; on false
// the operation returns "not done" without mutating anything, the step
// returns StepYield, and the engine redispatches the processor in the
// quantum containing its clock — exactly where the coroutine would have
// resumed. Keeping the check-points identical across forms is what makes
// the two forms charge every stall in the same quantum and hence produce
// bit-identical statistics at every quantum boundary.
func (p *Proc) StepInteract() bool { return p.clock < p.eng.qEnd }

// WakePending reports whether a wake payload is waiting to be consumed
// (via WakePayload/WakePayloadVals). Step-form operations use it to
// distinguish a fresh call from a reentry after StepBlock.
func (p *Proc) WakePending() bool { return p.wakeKind != wakeNone }

// WaitUntil advances the clock to t (if in the future), charging the wait to
// cat. It does not yield; use for known-length local waits.
func (p *Proc) WaitUntil(t Time, cat stats.Category) {
	if t > p.clock {
		p.ChargeStall(cat, t-p.clock)
	}
}

// SpinQuantum burns the remainder of the current quantum in category cat and
// yields. Poll loops use it to wait efficiently: nothing observable can
// change until the next quantum, so one charge covers the whole window.
func (p *Proc) SpinQuantum(cat stats.Category) {
	if p.clock < p.eng.qEnd {
		p.ChargeStall(cat, p.eng.qEnd-p.clock)
	}
	p.yieldToEngine()
}

// SpinUntil repeatedly evaluates cond at quantum granularity, charging the
// wait to cat, until cond returns true. cond is evaluated at the processor's
// current clock; per-check costs (e.g. a status-register read) are the
// caller's responsibility.
func (p *Proc) SpinUntil(cat stats.Category, cond func() bool) {
	p.Interact()
	for !cond() {
		p.SpinQuantum(cat)
	}
}

// blockState records the suspension so wake-time charging and stall
// reports see a consistent picture whichever block form was used.
func (p *Proc) blockState(cat stats.Category, reason string) {
	p.blocked = true
	p.blockReason = reason
	p.blockStart = p.clock
	p.blockCat = cat
}

// takeWakeAny consumes a pending untyped wake: charge the blocked stall,
// advance the clock to the wake time, and return the payload. Panics if the
// waker used WakeVals — the typed and untyped payload channels must not be
// mixed on one block/wake pair (the stale-payload bug this replaces
// returned nil/zeros silently).
func (p *Proc) takeWakeAny() any {
	switch p.wakeKind {
	case wakeAny:
	case wakeVals:
		panic(fmt.Sprintf("sim: proc %d: Block woken by WakeVals — typed and untyped wake payloads cannot be mixed; pair Block with Wake, or BlockVals with WakeVals", p.ID))
	default:
		panic(fmt.Sprintf("sim: proc %d: no wake pending", p.ID))
	}
	p.wakeKind = wakeNone
	if p.wakeAt > p.blockStart {
		p.Acct.Charge(p.blockCat, p.wakeAt-p.blockStart)
		p.clock = p.wakeAt
	}
	d := p.wakeData
	p.wakeData = nil
	return d
}

// takeWakeVals is takeWakeAny for the typed two-int64 payload channel.
func (p *Proc) takeWakeVals() (int64, int64) {
	switch p.wakeKind {
	case wakeVals:
	case wakeAny:
		panic(fmt.Sprintf("sim: proc %d: BlockVals woken by Wake — typed and untyped wake payloads cannot be mixed; pair Block with Wake, or BlockVals with WakeVals", p.ID))
	default:
		panic(fmt.Sprintf("sim: proc %d: no wake pending", p.ID))
	}
	p.wakeKind = wakeNone
	if p.wakeAt > p.blockStart {
		p.Acct.Charge(p.blockCat, p.wakeAt-p.blockStart)
		p.clock = p.wakeAt
	}
	a, b := p.wakeA, p.wakeB
	p.wakeA, p.wakeB = 0, 0
	return a, b
}

// Block suspends the processor until another party calls Wake. The stall
// from now until the wake time is charged to cat. It returns the value
// passed to Wake; a waker that used WakeVals instead is a programming
// error and panics on resume.
func (p *Proc) Block(cat stats.Category, reason string) any {
	if p.step != nil {
		panic(fmt.Sprintf("sim: step proc %d cannot Block; use StepBlock and return StepYield", p.ID))
	}
	p.blockState(cat, reason)
	p.yieldToEngine()
	return p.takeWakeAny()
}

// BlockVals is Block for wakers that deliver two int64 values via WakeVals
// instead of an interface payload. The typed channel avoids boxing the
// payload into an `any` on every wake — one heap allocation per miss on the
// coherence fast path. A waker that used Wake instead panics on resume.
func (p *Proc) BlockVals(cat stats.Category, reason string) (int64, int64) {
	if p.step != nil {
		panic(fmt.Sprintf("sim: step proc %d cannot BlockVals; use StepBlock and return StepYield", p.ID))
	}
	p.blockState(cat, reason)
	p.yieldToEngine()
	return p.takeWakeVals()
}

// StepBlock suspends a step processor: the step must return StepYield
// immediately after calling it, and is next dispatched when a wake
// arrives. The resumed step consumes the wake with WakePayload or
// WakePayloadVals (which charge the blocked stall to cat, exactly as Block
// does); blocking again with a wake still pending panics.
func (p *Proc) StepBlock(cat stats.Category, reason string) {
	if p.step == nil {
		panic(fmt.Sprintf("sim: coroutine proc %d must use Block, not StepBlock", p.ID))
	}
	if p.wakeKind != wakeNone {
		panic(fmt.Sprintf("sim: step proc %d re-blocked without consuming its wake (call WakePayload or WakePayloadVals first)", p.ID))
	}
	p.blockState(cat, reason)
}

// WakePayload consumes the wake that resumed a step processor after
// StepBlock, returning the Wake payload and charging the blocked stall.
// Panics if the waker used WakeVals (see Block) or no wake is pending.
func (p *Proc) WakePayload() any { return p.takeWakeAny() }

// WakePayloadVals is WakePayload for the typed WakeVals channel.
func (p *Proc) WakePayloadVals() (int64, int64) { return p.takeWakeVals() }

// Wake unblocks a processor at absolute time at, delivering data to the
// Block call. Must be called from engine context — an event handler, never
// the processor phase (processor-context code that needs to wake a peer
// stages an event via Proc.Schedule that performs the wake). Waking an
// unblocked processor panics.
func (p *Proc) Wake(at Time, data any) {
	if p.eng.inProcPhase {
		panic(fmt.Sprintf("sim: waking proc %d from processor context; stage the wake via Proc.Schedule", p.ID))
	}
	if !p.blocked {
		panic(fmt.Sprintf("sim: waking proc %d which is not blocked", p.ID))
	}
	if at < p.blockStart {
		at = p.blockStart
	}
	p.blocked = false
	p.blockReason = ""
	p.wakeAt = at
	p.wakeKind = wakeAny
	p.wakeData = data
	if p.clock < at {
		p.clock = at
	}
	p.eng.ready = append(p.eng.ready, p)
}

// WakeVals unblocks a processor at absolute time at, delivering two int64
// values to a matching BlockVals call without boxing. Same engine-context
// restriction and semantics as Wake.
func (p *Proc) WakeVals(at Time, a, b int64) {
	if p.eng.inProcPhase {
		panic(fmt.Sprintf("sim: waking proc %d from processor context; stage the wake via Proc.Schedule", p.ID))
	}
	if !p.blocked {
		panic(fmt.Sprintf("sim: waking proc %d which is not blocked", p.ID))
	}
	if at < p.blockStart {
		at = p.blockStart
	}
	p.blocked = false
	p.blockReason = ""
	p.wakeAt = at
	p.wakeKind = wakeVals
	p.wakeA, p.wakeB = a, b
	if p.clock < at {
		p.clock = at
	}
	p.eng.ready = append(p.eng.ready, p)
}

// Blocked reports whether the processor is blocked, and why.
func (p *Proc) Blocked() (bool, string) { return p.blocked, p.blockReason }

// PushMode switches the computation and miss accounting categories, e.g. on
// entry to message-passing library code (LibComp/LibMiss) or shared-memory
// synchronization code (SyncComp/SyncMiss). Paired with PopMode. Shared-miss
// and write-fault categories are unchanged; see PushModeFull.
func (p *Proc) PushMode(comp, miss stats.Category, cnt stats.Count) {
	p.PushModeFull(comp, miss, cnt, p.sharedCat, p.wfCat)
}

// PushModeFull additionally redirects shared-miss and write-fault stalls,
// used by shared-memory synchronization primitives so that coherence traffic
// they cause is charged to the synchronization categories (the paper's
// "Locks", "Sync Miss", and "Reductions" rows).
func (p *Proc) PushModeFull(comp, miss stats.Category, cnt stats.Count, shared, wf stats.Category) {
	p.modes = append(p.modes, mode{p.compCat, p.missCat, p.missCnt, p.sharedCat, p.wfCat})
	p.compCat, p.missCat, p.missCnt = comp, miss, cnt
	p.sharedCat, p.wfCat = shared, wf
}

// PopMode restores the accounting categories saved by the matching PushMode.
func (p *Proc) PopMode() {
	n := len(p.modes)
	if n == 0 {
		panic(fmt.Sprintf("sim: proc %d: PopMode without PushMode", p.ID))
	}
	m := p.modes[n-1]
	p.modes = p.modes[:n-1]
	p.compCat, p.missCat, p.missCnt = m.comp, m.miss, m.cnt
	p.sharedCat, p.wfCat = m.shared, m.wf
}

// SharedMissCategory returns the category for shared-data miss stalls.
func (p *Proc) SharedMissCategory() stats.Category { return p.sharedCat }

// WriteFaultCategory returns the category for write-fault stalls.
func (p *Proc) WriteFaultCategory() stats.Category { return p.wfCat }

// MissCategory returns the category to which cache-miss stalls should
// currently be charged, and the count to increment.
func (p *Proc) MissCategory() (stats.Category, stats.Count) {
	return p.missCat, p.missCnt
}

// CompCategory returns the category charged by Compute.
func (p *Proc) CompCategory() stats.Category { return p.compCat }
