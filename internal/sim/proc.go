package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/stats"
)

// Proc is a simulated processor. Its body function runs as a coroutine
// under engine control. Within a quantum, processors only touch their own
// state (or explicitly synchronized shared structures), which is what lets
// the engine dispatch a quantum's batch across host cores; cross-processor
// effects travel as events staged through Proc.Schedule and merged
// deterministically at the quantum boundary.
//
// A processor has a local virtual clock. Pure computation (Compute) may run
// ahead of the engine's quantum; any operation with cross-processor
// visibility (memory-system access, network-interface access,
// synchronization) first synchronizes with the quantum via Interact.
type Proc struct {
	ID   int
	Acct *stats.Acct

	eng   *Engine
	clock Time

	resume chan struct{}
	yield  chan struct{}
	body   func(*Proc)

	done        bool
	blocked     bool
	poisoned    bool // engine aborting: unwind at the next resume
	blockReason string
	blockStart  Time
	blockCat    stats.Category
	wakeAt      Time
	wakeData    any
	wakeA       int64 // typed wake payload (WakeVals/BlockVals): no boxing
	wakeB       int64
	diag        func() string // optional library diagnostic for stall reports

	staged  []stagedEvent // events raised this quantum, merged at the boundary
	failErr error         // error staged by Fail, collected by the engine

	// Accounting modes. Library and synchronization code switch these so
	// that computation and cache misses are charged to the right category
	// (the paper separates "Lib Comp"/"Lib Misses" from application
	// computation and local misses).
	compCat   stats.Category
	missCat   stats.Category
	missCnt   stats.Count
	sharedCat stats.Category
	wfCat     stats.Category
	modes     []mode
}

type mode struct {
	comp   stats.Category
	miss   stats.Category
	cnt    stats.Count
	shared stats.Category
	wf     stats.Category
}

// Engine returns the engine this processor belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Clock returns the processor's local virtual time.
func (p *Proc) Clock() Time { return p.clock }

// procHalt is the sentinel panic used to unwind a processor's goroutine when
// the engine aborts the run; start's deferred recover absorbs it so the
// goroutine exits cleanly instead of leaking parked on its resume channel.
type procHalt struct{}

func (p *Proc) start() {
	p.compCat = stats.Comp
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, halt := r.(procHalt); !halt {
					panic(r)
				}
			}
			// The engine counts finished processors when it settles the
			// batch: this deferred function may run on a worker goroutine,
			// where touching engine state would race.
			p.done = true
			p.yield <- struct{}{}
		}()
		<-p.resume
		if p.poisoned {
			panic(procHalt{})
		}
		p.body(p)
	}()
}

// yieldToEngine suspends the processor until the engine dispatches it again.
func (p *Proc) yieldToEngine() {
	p.yield <- struct{}{}
	<-p.resume
	if p.poisoned {
		panic(procHalt{})
	}
}

// Fail aborts the whole run with err on behalf of this processor: the engine
// stops scheduling, unwinds every processor, and Run returns err. Fail does
// not return. Libraries use it to surface structured failures (e.g. a
// transport retry budget exhausted) instead of panicking or deadlocking.
// The error is staged, not applied immediately: the engine collects staged
// failures at the quantum boundary in processor-ID order, so when several
// processors fail in the same quantum the winner does not depend on host
// scheduling.
func (p *Proc) Fail(err error) {
	p.failErr = err
	panic(procHalt{})
}

// Schedule stages an event at absolute time at, to be merged into the
// engine's event heap at the end of the current quantum. This is the only
// way processor-context code may raise events: staging per processor and
// merging in processor-ID order keeps event sequence numbers — and with
// them every same-time tie-break — independent of how the host interleaved
// the quantum's processors. Handlers run in a later quantum's event phase
// (engine context), where Engine.Schedule and Proc.Wake are legal.
func (p *Proc) Schedule(at Time, fn func()) {
	p.staged = append(p.staged, stagedEvent{at: at, fn: fn})
}

// ScheduleAction stages a closure-free Action at absolute time at; identical
// merge semantics to Schedule. Hot paths pair this with subsystem freelists
// so raising an event allocates nothing.
func (p *Proc) ScheduleAction(at Time, act Action) {
	p.staged = append(p.staged, stagedEvent{at: at, act: act})
}

// SetDiagnostic registers fn to render this processor's library-level state
// (e.g. unacked transport sequence numbers) in engine stall reports.
func (p *Proc) SetDiagnostic(fn func() string) { p.diag = fn }

// Compute charges cycles of computation at the current computation category
// (application computation by default; library computation inside
// message-passing library code). The clock may run ahead of the engine's
// quantum; the processor yields lazily at its next interaction.
func (p *Proc) Compute(cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("sim: proc %d: negative compute %d", p.ID, cycles))
	}
	p.Acct.Charge(p.compCat, cycles)
	p.clock += cycles
}

// ChargeStall charges cycles to an explicit category and advances the clock.
// Used by the memory system and libraries for stalls with a known cost.
func (p *Proc) ChargeStall(cat stats.Category, cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("sim: proc %d: negative stall %d", p.ID, cycles))
	}
	p.Acct.Charge(cat, cycles)
	p.clock += cycles
}

// Interact synchronizes the processor with the engine's quantum: if the
// local clock has run ahead of the current quantum, the processor yields
// until the quantum catches up. Every externally visible operation calls
// this first, bounding observable reordering by one quantum (= the minimum
// network latency), the precision of the original Wind Tunnel simulation.
func (p *Proc) Interact() {
	for p.clock >= p.eng.qEnd {
		p.yieldToEngine()
	}
}

// WaitUntil advances the clock to t (if in the future), charging the wait to
// cat. It does not yield; use for known-length local waits.
func (p *Proc) WaitUntil(t Time, cat stats.Category) {
	if t > p.clock {
		p.ChargeStall(cat, t-p.clock)
	}
}

// SpinQuantum burns the remainder of the current quantum in category cat and
// yields. Poll loops use it to wait efficiently: nothing observable can
// change until the next quantum, so one charge covers the whole window.
func (p *Proc) SpinQuantum(cat stats.Category) {
	if p.clock < p.eng.qEnd {
		p.ChargeStall(cat, p.eng.qEnd-p.clock)
	}
	p.yieldToEngine()
}

// SpinUntil repeatedly evaluates cond at quantum granularity, charging the
// wait to cat, until cond returns true. cond is evaluated at the processor's
// current clock; per-check costs (e.g. a status-register read) are the
// caller's responsibility.
func (p *Proc) SpinUntil(cat stats.Category, cond func() bool) {
	p.Interact()
	for !cond() {
		p.SpinQuantum(cat)
	}
}

// Block suspends the processor until another party calls Wake. The stall
// from now until the wake time is charged to cat. It returns the value
// passed to Wake.
func (p *Proc) Block(cat stats.Category, reason string) any {
	p.blocked = true
	p.blockReason = reason
	p.blockStart = p.clock
	p.blockCat = cat
	p.yieldToEngine()
	if p.wakeAt > p.blockStart {
		p.Acct.Charge(cat, p.wakeAt-p.blockStart)
		p.clock = p.wakeAt
	}
	d := p.wakeData
	p.wakeData = nil
	return d
}

// BlockVals is Block for wakers that deliver two int64 values via WakeVals
// instead of an interface payload. The typed channel avoids boxing the
// payload into an `any` on every wake — one heap allocation per miss on the
// coherence fast path. Mixing the two forms on one block/wake pair is a
// programming error (WakeVals leaves wakeData nil; Wake leaves wakeA/B zero).
func (p *Proc) BlockVals(cat stats.Category, reason string) (int64, int64) {
	p.blocked = true
	p.blockReason = reason
	p.blockStart = p.clock
	p.blockCat = cat
	p.yieldToEngine()
	if p.wakeAt > p.blockStart {
		p.Acct.Charge(cat, p.wakeAt-p.blockStart)
		p.clock = p.wakeAt
	}
	a, b := p.wakeA, p.wakeB
	p.wakeA, p.wakeB = 0, 0
	p.wakeData = nil
	return a, b
}

// Wake unblocks a processor at absolute time at, delivering data to the
// Block call. Must be called from engine context — an event handler, never
// the processor phase (processor-context code that needs to wake a peer
// stages an event via Proc.Schedule that performs the wake). Waking an
// unblocked processor panics.
func (p *Proc) Wake(at Time, data any) {
	if p.eng.inProcPhase {
		panic(fmt.Sprintf("sim: waking proc %d from processor context; stage the wake via Proc.Schedule", p.ID))
	}
	if !p.blocked {
		panic(fmt.Sprintf("sim: waking proc %d which is not blocked", p.ID))
	}
	if at < p.blockStart {
		at = p.blockStart
	}
	p.blocked = false
	p.blockReason = ""
	p.wakeAt = at
	p.wakeData = data
	if p.clock < at {
		p.clock = at
	}
	heap.Push(&p.eng.runnable, p)
}

// WakeVals unblocks a processor at absolute time at, delivering two int64
// values to a matching BlockVals call without boxing. Same engine-context
// restriction and semantics as Wake.
func (p *Proc) WakeVals(at Time, a, b int64) {
	if p.eng.inProcPhase {
		panic(fmt.Sprintf("sim: waking proc %d from processor context; stage the wake via Proc.Schedule", p.ID))
	}
	if !p.blocked {
		panic(fmt.Sprintf("sim: waking proc %d which is not blocked", p.ID))
	}
	if at < p.blockStart {
		at = p.blockStart
	}
	p.blocked = false
	p.blockReason = ""
	p.wakeAt = at
	p.wakeA, p.wakeB = a, b
	if p.clock < at {
		p.clock = at
	}
	heap.Push(&p.eng.runnable, p)
}

// Blocked reports whether the processor is blocked, and why.
func (p *Proc) Blocked() (bool, string) { return p.blocked, p.blockReason }

// PushMode switches the computation and miss accounting categories, e.g. on
// entry to message-passing library code (LibComp/LibMiss) or shared-memory
// synchronization code (SyncComp/SyncMiss). Paired with PopMode. Shared-miss
// and write-fault categories are unchanged; see PushModeFull.
func (p *Proc) PushMode(comp, miss stats.Category, cnt stats.Count) {
	p.PushModeFull(comp, miss, cnt, p.sharedCat, p.wfCat)
}

// PushModeFull additionally redirects shared-miss and write-fault stalls,
// used by shared-memory synchronization primitives so that coherence traffic
// they cause is charged to the synchronization categories (the paper's
// "Locks", "Sync Miss", and "Reductions" rows).
func (p *Proc) PushModeFull(comp, miss stats.Category, cnt stats.Count, shared, wf stats.Category) {
	p.modes = append(p.modes, mode{p.compCat, p.missCat, p.missCnt, p.sharedCat, p.wfCat})
	p.compCat, p.missCat, p.missCnt = comp, miss, cnt
	p.sharedCat, p.wfCat = shared, wf
}

// PopMode restores the accounting categories saved by the matching PushMode.
func (p *Proc) PopMode() {
	n := len(p.modes)
	if n == 0 {
		panic(fmt.Sprintf("sim: proc %d: PopMode without PushMode", p.ID))
	}
	m := p.modes[n-1]
	p.modes = p.modes[:n-1]
	p.compCat, p.missCat, p.missCnt = m.comp, m.miss, m.cnt
	p.sharedCat, p.wfCat = m.shared, m.wf
}

// SharedMissCategory returns the category for shared-data miss stalls.
func (p *Proc) SharedMissCategory() stats.Category { return p.sharedCat }

// WriteFaultCategory returns the category for write-fault stalls.
func (p *Proc) WriteFaultCategory() stats.Category { return p.wfCat }

// MissCategory returns the category to which cache-miss stalls should
// currently be charged, and the count to increment.
func (p *Proc) MissCategory() (stats.Category, stats.Count) {
	return p.missCat, p.missCnt
}

// CompCategory returns the category charged by Compute.
func (p *Proc) CompCategory() stats.Category { return p.compCat }
