package sim

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// --- Block/Wake payload-kind mismatch (the stale-wakeData fix) ---

// TestBlockWakeValsMismatchPanics pins the mismatch fix: a Block resumed by
// WakeVals used to return nil silently (the typed payload sat unread in
// wakeA/wakeB); now it panics with a message naming both halves of the
// mispaired call.
func TestBlockWakeValsMismatchPanics(t *testing.T) {
	e := NewEngine(100)
	var msg string
	p := e.AddProc(func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
			panic(procHalt{}) // retire cleanly so Run completes
		}()
		p.Block(stats.SharedMiss, "mismatch test")
		t.Error("Block returned despite mismatched wake")
	})
	e.Schedule(150, func() { p.WakeVals(250, 7, 8) })
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(msg, "Block woken by WakeVals") {
		t.Fatalf("panic %q does not name the Block/WakeVals mismatch", msg)
	}
}

// TestBlockValsWakeMismatchPanics is the mirror direction: BlockVals
// resumed by Wake used to return (0, 0) with the payload stranded in
// wakeData.
func TestBlockValsWakeMismatchPanics(t *testing.T) {
	e := NewEngine(100)
	var msg string
	p := e.AddProc(func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
			panic(procHalt{})
		}()
		p.BlockVals(stats.SharedMiss, "mismatch test")
		t.Error("BlockVals returned despite mismatched wake")
	})
	e.Schedule(150, func() { p.Wake(250, "boxed") })
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(msg, "BlockVals woken by Wake") {
		t.Fatalf("panic %q does not name the BlockVals/Wake mismatch", msg)
	}
}

// TestMatchedBlockWakePairsStillWork guards the fix against false
// positives: correctly paired Block/Wake and BlockVals/WakeVals deliver
// payloads and stall charges exactly as before.
func TestMatchedBlockWakePairsStillWork(t *testing.T) {
	e := NewEngine(100)
	var data any
	var a, b int64
	p := e.AddProc(func(p *Proc) {
		data = p.Block(stats.SharedMiss, "any wait")
		a, b = p.BlockVals(stats.SharedMiss, "vals wait")
	})
	e.Schedule(150, func() { p.Wake(200, "payload") })
	e.Schedule(350, func() { p.WakeVals(400, 41, 42) })
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if data != "payload" || a != 41 || b != 42 {
		t.Fatalf("payloads = (%v, %d, %d), want (payload, 41, 42)", data, a, b)
	}
	if c := p.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss); c != 400 {
		t.Errorf("stall charged %d, want 400 (200 + 200)", c)
	}
}

// --- Step (direct-continuation) processors ---

// TestStepProcMatchesCoroutine runs the same workload as a coroutine and as
// a step function and requires identical clocks and charges: a step proc is
// semantically a processor, just dispatched by direct call.
func TestStepProcMatchesCoroutine(t *testing.T) {
	const rounds = 40
	run := func(step bool) (Time, int64) {
		e := NewEngine(100)
		var p *Proc
		if step {
			k := 0
			p = e.AddStepProc(func(p *Proc) StepStatus {
				for p.Clock() < p.Engine().QuantumEnd() {
					if k >= rounds {
						return StepDone
					}
					k++
					p.Compute(70)
				}
				return StepYield
			})
		} else {
			p = e.AddProc(func(p *Proc) {
				for k := 0; k < rounds; k++ {
					p.Compute(70)
					p.Interact()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return p.Clock(), p.Acct.Cycles(stats.PhaseDefault, stats.Comp)
	}
	cClock, cComp := run(false)
	sClock, sComp := run(true)
	if cClock != sClock || cComp != sComp {
		t.Fatalf("step (clock %d, comp %d) != coroutine (clock %d, comp %d)",
			sClock, sComp, cClock, cComp)
	}
}

// TestStepProcBlockWake exercises StepBlock/WakePayloadVals: the blocked
// stall must be charged on consumption exactly as BlockVals charges it.
func TestStepProcBlockWake(t *testing.T) {
	e := NewEngine(100)
	var a, b int64
	phase := 0
	p := e.AddStepProc(func(p *Proc) StepStatus {
		switch phase {
		case 0:
			phase = 1
			p.Compute(40)
			p.StepBlock(stats.SharedMiss, "step wait")
			return StepYield
		default:
			a, b = p.WakePayloadVals()
			return StepDone
		}
	})
	e.Schedule(150, func() { p.WakeVals(340, 5, 6) })
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if a != 5 || b != 6 {
		t.Fatalf("payload = (%d, %d), want (5, 6)", a, b)
	}
	if c := p.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss); c != 300 {
		t.Errorf("stall charged %d, want 300", c)
	}
	if p.Clock() != 340 {
		t.Errorf("clock = %d, want 340", p.Clock())
	}
}

// TestStepProcCannotSuspend pins the step-proc restrictions: the
// suspending primitives panic with a message naming the alternative.
func TestStepProcCannotSuspend(t *testing.T) {
	e := NewEngine(100)
	var blockMsg, yieldMsg string
	e.AddStepProc(func(p *Proc) StepStatus {
		func() {
			defer func() { blockMsg = fmt.Sprint(recover()) }()
			p.Block(stats.SharedMiss, "nope")
		}()
		func() {
			defer func() { yieldMsg = fmt.Sprint(recover()) }()
			p.Compute(200) // past the horizon: Interact would need to yield
			p.Interact()
		}()
		return StepDone
	})
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(blockMsg, "StepBlock") {
		t.Errorf("Block panic %q does not point at StepBlock", blockMsg)
	}
	if !strings.Contains(yieldMsg, "StepYield") {
		t.Errorf("yield panic %q does not point at StepYield", yieldMsg)
	}
}

// TestStepProcFailAborts: Fail from inside a step works like Fail from a
// coroutine — staged, lowest ID wins, every other proc unwound.
func TestStepProcFailAborts(t *testing.T) {
	e := NewEngine(100)
	sentinel := errors.New("step proc gave up")
	e.AddStepProc(func(p *Proc) StepStatus {
		p.Fail(sentinel)
		return StepYield // unreachable
	})
	e.AddProc(func(p *Proc) {
		p.Block(stats.LibComp, "waiting forever")
	})
	if err := e.Run(); !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v, want the step proc's Fail error", err)
	}
}

// TestStepProcStagedMergeDeterministic mixes step and coroutine processors
// and checks the staged-event merge order is (procID, staging order) at
// every worker count — step procs run on whichever goroutine holds the
// baton, which must not leak into event ordering.
func TestStepProcStagedMergeDeterministic(t *testing.T) {
	run := func(workers int) []string {
		e := NewEngine(100)
		e.Workers = workers
		var trace []string
		const rounds = 5
		for i := 0; i < 8; i++ {
			i := i
			if i%2 == 0 {
				k := 0
				e.AddStepProc(func(p *Proc) StepStatus {
					if k >= rounds {
						return StepDone
					}
					k++
					kk := k
					p.Schedule(p.Clock()+10, func() {
						trace = append(trace, fmt.Sprintf("p%d.r%d", i, kk))
					})
					p.Compute(100)
					return StepYield
				})
			} else {
				e.AddProc(func(p *Proc) {
					for k := 1; k <= rounds; k++ {
						k := k
						p.Schedule(p.Clock()+10, func() {
							trace = append(trace, fmt.Sprintf("p%d.r%d", i, k))
						})
						p.Compute(100)
						p.Interact()
					}
				})
			}
		}
		if err := e.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return trace
	}
	want := run(1)
	if len(want) != 8*5 {
		t.Fatalf("serial trace has %d events, want 40", len(want))
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d trace diverged:\n got %v\nwant %v", workers, got, want)
		}
	}
}

// TestStepProcUnwindOnAbort: blocked and runnable step procs must unwind
// cleanly when the run aborts.
func TestStepProcUnwindOnAbort(t *testing.T) {
	e := NewEngine(100)
	sentinel := errors.New("external abort")
	phase := 0
	e.AddStepProc(func(p *Proc) StepStatus {
		if phase == 0 {
			phase = 1
			p.StepBlock(stats.LibComp, "never woken")
		}
		return StepYield
	})
	e.AddStepProc(func(p *Proc) StepStatus {
		p.Compute(100)
		return StepYield // spins forever
	})
	e.Schedule(500, func() { e.Abort(sentinel) })
	if err := e.Run(); !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v, want abort error", err)
	}
}

// --- Goroutine bounds of the pooled dispatcher ---

// TestStepProcsNoGoroutines: a machine of step processors runs with a flat
// goroutine count — the dispatcher owns zero goroutines per step proc, at
// any P.
func TestStepProcsNoGoroutines(t *testing.T) {
	const procs = 1024
	base := runtime.NumGoroutine()
	e := NewEngine(100)
	e.Workers = 1
	high := 0
	e.AddQuantumHook(func(Time) {
		if n := runtime.NumGoroutine(); n > high {
			high = n
		}
	})
	for i := 0; i < procs; i++ {
		k := 0
		e.AddStepProc(func(p *Proc) StepStatus {
			if k >= 20 {
				return StepDone
			}
			k++
			p.Compute(100)
			return StepYield
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if high > base+4 {
		t.Errorf("goroutine high-water %d with %d step procs (baseline %d): step procs must not own goroutines",
			high, procs, base)
	}
}

// TestWorkerPoolGoroutinesBounded: under parallel dispatch the engine's own
// goroutine overhead is the persistent worker pool — high-water stays within
// procs + workers + a small constant (no per-quantum spawning), and every
// engine goroutine is gone once Run returns.
func TestWorkerPoolGoroutinesBounded(t *testing.T) {
	const procs, workers = 256, 4
	base := runtime.NumGoroutine()
	e := NewEngine(100)
	e.Workers = workers
	high := 0
	e.AddQuantumHook(func(Time) {
		if n := runtime.NumGoroutine(); n > high {
			high = n
		}
	})
	for i := 0; i < procs; i++ {
		e.AddProc(func(p *Proc) {
			for k := 0; k < 20; k++ {
				p.Compute(100)
				p.Interact()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if limit := base + procs + workers + 4; high > limit {
		t.Errorf("goroutine high-water %d > %d (base %d + procs %d + workers %d + slack): dispatcher is spawning per quantum",
			high, limit, base, procs, workers)
	}
	// Retired procs and stopped workers must not linger. The final
	// goroutine exits race with Run returning, so poll briefly.
	for i := 0; i < 200 && runtime.NumGoroutine() > base; i++ {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Errorf("%d goroutines outlive Run (baseline %d)", n, base)
	}
}
