package sim

// RNG is a small deterministic xorshift64* generator. Every source of
// randomness in the simulator (cache victim selection, workload generation)
// draws from a seeded RNG so that identical configurations produce
// bit-identical simulations.
type RNG struct{ s uint64 }

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// nonzero constant, since xorshift requires nonzero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// State returns the generator's current position: the full internal state,
// from which the remaining sequence is completely determined. Snapshots
// record it so a resumed run can prove its RNG streams sit at exactly the
// same position as the checkpointed run — silent RNG drift would break
// replay equivalence undetectably otherwise.
func (r *RNG) State() uint64 { return r.s }

// Restore rewinds (or advances) the generator to a position previously
// captured with State. Restoring a zero state panics: no reachable RNG
// state is zero (xorshift preserves nonzero-ness and NewRNG remaps seed 0),
// so a zero can only mean a corrupted or uninitialized snapshot.
func (r *RNG) Restore(state uint64) {
	if state == 0 {
		panic("sim: RNG.Restore of zero state (corrupt snapshot?)")
	}
	r.s = state
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := r.s
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	r.s = s
	return s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
