package sim

import (
	"fmt"

	"repro/internal/stats"
)

// Barrier models the hardware barrier both machines provide (as on the
// CM-5): all participants leave the barrier a fixed latency after the last
// arrival (Table 1: 100 cycles from last arrival).
type Barrier struct {
	eng     *Engine
	n       int
	latency Time

	waiting []*Proc
	polling int // participants spin-waiting instead of blocking
	maxArr  Time
	epoch   int64 // completed barrier episodes, for tests and sanity checks
	release Time  // release time of the most recently completed episode
}

// NewBarrier creates a barrier for n participants with the given release
// latency.
func NewBarrier(eng *Engine, n int, latency Time) *Barrier {
	if n <= 0 {
		panic("sim: barrier needs at least one participant")
	}
	return &Barrier{eng: eng, n: n, latency: latency}
}

// Epochs returns how many times the barrier has completed.
func (b *Barrier) Epochs() int64 { return b.epoch }

// Wait enters the barrier. The caller stalls until latency cycles after the
// last participant arrives; the stall is charged to cat. Reentering before
// all participants have arrived for the current episode is a program error
// and panics.
func (b *Barrier) Wait(p *Proc, cat stats.Category) {
	p.Interact()
	for _, q := range b.waiting {
		if q == p {
			panic(fmt.Sprintf("sim: proc %d re-entered barrier", p.ID))
		}
	}
	if p.clock > b.maxArr {
		b.maxArr = p.clock
	}
	if len(b.waiting)+b.polling+1 < b.n {
		b.waiting = append(b.waiting, p)
		p.Block(cat, "barrier")
		return
	}
	b.complete(p, cat)
}

// WaitService enters the barrier like Wait, but keeps the processor runnable
// while waiting, invoking service once per quantum. Reliable-transport runs
// use it so acknowledgements and retransmissions progress while a node sits
// in a barrier — on a lossy network a blocked barrier wait can deadlock the
// whole machine (a peer may be waiting for this node to re-ack data whose
// acknowledgement was lost). The stall is charged to cat, as in Wait.
func (b *Barrier) WaitService(p *Proc, cat stats.Category, service func()) {
	p.Interact()
	if p.clock > b.maxArr {
		b.maxArr = p.clock
	}
	if len(b.waiting)+b.polling+1 == b.n {
		b.complete(p, cat)
		return
	}
	b.polling++
	my := b.epoch
	for b.epoch == my {
		if service != nil {
			service()
		}
		p.SpinQuantum(cat)
	}
	p.WaitUntil(b.release, cat)
}

// complete is the last arrival's path: release every waiter.
func (b *Barrier) complete(p *Proc, cat stats.Category) {
	release := b.maxArr + b.latency
	for _, q := range b.waiting {
		q.Wake(release, nil)
	}
	b.waiting = b.waiting[:0]
	b.polling = 0
	b.maxArr = 0
	b.release = release
	b.epoch++
	p.WaitUntil(release, cat)
}
