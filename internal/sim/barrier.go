package sim

import (
	"fmt"
	"sync"

	"repro/internal/stats"
)

// Barrier models the hardware barrier both machines provide (as on the
// CM-5): all participants leave the barrier a fixed latency after the last
// arrival (Table 1: 100 cycles from last arrival).
//
// Arrivals may come from concurrently executing processors during a
// parallel processor phase, so the arrival bookkeeping is mutex-protected.
// Everything order-dependent is kept deterministic regardless of host
// arrival order: the release time is max(arrival clocks) + latency
// (commutative), the release itself is an event staged through a
// barrier-owned Stager (fixed sequence-number position however arrives
// last), and waiters are woken in processor-ID order.
type Barrier struct {
	eng     *Engine
	n       int
	latency Time
	stager  *Stager

	mu      sync.Mutex
	waiting []*Proc
	polling int // participants spin-waiting instead of blocking
	maxArr  Time

	// epoch and release are written only by the release event (engine
	// context) and read by processors; quantum-boundary ordering makes the
	// reads race-free without taking mu.
	epoch   int64 // completed barrier episodes, for tests and sanity checks
	release Time  // release time of the most recently completed episode

	// freeRel recycles release events (and their waiter buffers) so a
	// steady state of barrier episodes allocates nothing. Pops happen under
	// mu in stageRelease; pushes happen in the release event (engine
	// context), also under mu for visibility.
	freeRel []*barrierRelease
}

// barrierRelease is the staged release event for one barrier episode: it
// wakes the episode's waiters in processor-ID order and publishes the new
// epoch, then returns itself to the barrier's freelist.
type barrierRelease struct {
	b       *Barrier
	at      Time
	waiters []*Proc
}

// RunEvent implements Action.
func (r *barrierRelease) RunEvent(Time) {
	b := r.b
	b.release = r.at
	b.epoch++
	for _, q := range r.waiters {
		q.Wake(r.at, nil)
	}
	r.waiters = r.waiters[:0]
	b.mu.Lock()
	b.freeRel = append(b.freeRel, r)
	b.mu.Unlock()
}

// NewBarrier creates a barrier for n participants with the given release
// latency.
func NewBarrier(eng *Engine, n int, latency Time) *Barrier {
	if n <= 0 {
		panic("sim: barrier needs at least one participant")
	}
	return &Barrier{eng: eng, n: n, latency: latency, stager: eng.NewStager()}
}

// Epochs returns how many times the barrier has completed.
func (b *Barrier) Epochs() int64 { return b.epoch }

// Wait enters the barrier. The caller stalls until latency cycles after the
// last participant arrives; the stall is charged to cat. Reentering before
// all participants have arrived for the current episode is a program error
// and panics.
func (b *Barrier) Wait(p *Proc, cat stats.Category) {
	p.Interact()
	b.mu.Lock()
	for _, q := range b.waiting {
		if q == p {
			b.mu.Unlock()
			panic(fmt.Sprintf("sim: proc %d re-entered barrier", p.ID))
		}
	}
	if p.clock > b.maxArr {
		b.maxArr = p.clock
	}
	b.waiting = append(b.waiting, p)
	if len(b.waiting)+b.polling == b.n {
		b.stageRelease()
	}
	b.mu.Unlock()
	p.Block(cat, "barrier")
}

// StepWait is Wait for step processors: it returns false after recording
// the arrival and blocking (the step must return StepYield), and true on
// the reentry that consumes the release wake. The arrival bookkeeping is
// identical to Wait's, so mixed coroutine/step participant sets release
// together and the release event wakes everyone in processor-ID order.
func (b *Barrier) StepWait(p *Proc, cat stats.Category) bool {
	if p.WakePending() {
		p.WakePayload()
		return true
	}
	if !p.StepInteract() {
		return false
	}
	b.mu.Lock()
	for _, q := range b.waiting {
		if q == p {
			b.mu.Unlock()
			panic(fmt.Sprintf("sim: proc %d re-entered barrier", p.ID))
		}
	}
	if p.clock > b.maxArr {
		b.maxArr = p.clock
	}
	b.waiting = append(b.waiting, p)
	if len(b.waiting)+b.polling == b.n {
		b.stageRelease()
	}
	b.mu.Unlock()
	p.StepBlock(cat, "barrier")
	return false
}

// WaitService enters the barrier like Wait, but keeps the processor runnable
// while waiting, invoking service once per quantum. Reliable-transport runs
// use it so acknowledgements and retransmissions progress while a node sits
// in a barrier — on a lossy network a blocked barrier wait can deadlock the
// whole machine (a peer may be waiting for this node to re-ack data whose
// acknowledgement was lost). The stall is charged to cat, as in Wait.
func (b *Barrier) WaitService(p *Proc, cat stats.Category, service func()) {
	p.Interact()
	b.mu.Lock()
	if p.clock > b.maxArr {
		b.maxArr = p.clock
	}
	my := b.epoch
	b.polling++
	if len(b.waiting)+b.polling == b.n {
		b.stageRelease()
	}
	b.mu.Unlock()
	for b.epoch == my {
		if service != nil {
			service()
		}
		p.SpinQuantum(cat)
	}
	p.WaitUntil(b.release, cat)
}

// stageRelease, called with mu held by the episode's last arrival, stages
// the release event and resets the arrival state for the next episode. The
// event — not the arriving processor — wakes the waiters and publishes the
// new epoch, so completion behaves identically whichever processor's
// arrival, in whichever host order, turned out to be last.
func (b *Barrier) stageRelease() {
	release := b.maxArr + b.latency
	var r *barrierRelease
	if n := len(b.freeRel); n > 0 {
		r = b.freeRel[n-1]
		b.freeRel = b.freeRel[:n-1]
	} else {
		r = &barrierRelease{b: b}
	}
	r.at = release
	r.waiters = append(r.waiters, b.waiting...)
	// Insertion sort by processor ID: episodes are small (≤ participant
	// count) and a closure-based sort would allocate per episode.
	for i := 1; i < len(r.waiters); i++ {
		q := r.waiters[i]
		j := i - 1
		for j >= 0 && r.waiters[j].ID > q.ID {
			r.waiters[j+1] = r.waiters[j]
			j--
		}
		r.waiters[j+1] = q
	}
	b.waiting = b.waiting[:0]
	b.polling = 0
	b.maxArr = 0
	b.stager.ScheduleAction(release, r)
}
