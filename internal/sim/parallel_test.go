package sim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/stats"
)

// mergeTrace runs a fixed workload — eight processors, each staging several
// events inside every quantum — and returns the order in which the staged
// events executed. Processors deliberately finish their slice of the quantum
// in *reverse* ID order (higher IDs are given less host work), so if the
// engine merged staged buffers in completion order rather than processor-ID
// order, the trace would differ between worker counts and between runs.
func mergeTrace(t *testing.T, workers int) []string {
	t.Helper()
	e := NewEngine(100)
	e.Workers = workers
	var trace []string
	const procs, rounds = 8, 6
	for i := 0; i < procs; i++ {
		i := i
		e.AddProc(func(p *Proc) {
			for k := 0; k < rounds; k++ {
				// Skew host-side completion order: low IDs stage last.
				time.Sleep(time.Duration(procs-i) * time.Millisecond)
				k := k
				// Two events at the same virtual time — intra-proc order
				// must also hold (local staging order).
				p.Schedule(p.Clock()+10, func() {
					trace = append(trace, fmt.Sprintf("p%d.r%d.a", i, k))
				})
				p.Schedule(p.Clock()+10, func() {
					trace = append(trace, fmt.Sprintf("p%d.r%d.b", i, k))
				})
				p.Compute(100) // advance into the next quantum
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return trace
}

// TestStagedMergeOrderIndependent is the core determinism contract of
// parallel dispatch: the order staged events are merged into the global heap
// — and therefore the order they execute — depends only on (processor ID,
// local staging order), never on which worker goroutine finished first.
func TestStagedMergeOrderIndependent(t *testing.T) {
	want := mergeTrace(t, 1)
	if len(want) == 0 {
		t.Fatal("serial run produced an empty trace")
	}
	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			got := mergeTrace(t, workers)
			if len(got) != len(want) {
				t.Fatalf("workers=%d rep %d: %d events, want %d", workers, rep, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d rep %d: event %d = %q, want %q (merge order leaked goroutine scheduling)",
						workers, rep, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStagerMergesAfterProcs verifies the auxiliary staging context's fixed
// merge position: at the same timestamp, events staged through a Stager (a
// shared object like the barrier) run after every processor-staged event,
// regardless of which processor did the staging or when it ran.
func TestStagerMergesAfterProcs(t *testing.T) {
	run := func(workers int) []string {
		e := NewEngine(100)
		e.Workers = workers
		st := e.NewStager()
		var trace []string
		for i := 0; i < 4; i++ {
			i := i
			e.AddProc(func(p *Proc) {
				at := p.Clock() + 10
				if i == 0 {
					// Lowest ID stages through the stager; its event must
					// still land after proc 3's directly-staged event.
					st.Schedule(at, func() { trace = append(trace, "stager") })
				}
				p.Schedule(at, func() { trace = append(trace, fmt.Sprintf("p%d", i)) })
				p.Compute(50)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return trace
	}
	want := []string{"p0", "p1", "p2", "p3", "stager"}
	for _, workers := range []int{1, 4} {
		got := run(workers)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("workers=%d trace %v, want %v", workers, got, want)
		}
	}
}

// TestProcPhaseGuards locks in the audit mechanism itself: engine-context
// mutations attempted from processor context must panic rather than silently
// race, in serial mode just as in parallel mode.
func TestProcPhaseGuards(t *testing.T) {
	t.Run("engine-schedule", func(t *testing.T) {
		e := NewEngine(100)
		var recovered any
		e.AddProc(func(p *Proc) {
			defer func() {
				recovered = recover()
				panic(procHalt{}) // halt cleanly so Run can unwind
			}()
			e.Schedule(p.Clock()+1, func() {})
		})
		_ = e.Run()
		if recovered == nil {
			t.Fatal("Engine.Schedule from processor context did not panic")
		}
	})
	t.Run("wake", func(t *testing.T) {
		e := NewEngine(100)
		var recovered any
		var victim *Proc
		victim = e.AddProc(func(p *Proc) {
			p.Block(stats.BarrierWait, "guard test")
		})
		e.AddProc(func(p *Proc) {
			p.Compute(10) // let the victim block first (same quantum is fine: it blocks at dispatch)
			defer func() {
				recovered = recover()
				// Abort the run: the victim stays blocked forever, so a
				// clean halt would trip the deadlock detector instead.
				p.Fail(fmt.Errorf("guard fired"))
			}()
			victim.Wake(p.Clock(), nil)
		})
		_ = e.Run()
		if recovered == nil {
			t.Fatal("Proc.Wake from processor context did not panic")
		}
	})
}

// TestParallelFailureDeterministic: when several processors fail in the same
// quantum, the run must surface the lowest-ID failure no matter the worker
// count — matching what serial dispatch order used to produce.
func TestParallelFailureDeterministic(t *testing.T) {
	run := func(workers int) error {
		e := NewEngine(100)
		e.Workers = workers
		for i := 0; i < 4; i++ {
			i := i
			e.AddProc(func(p *Proc) {
				// Higher IDs fail sooner in host time.
				time.Sleep(time.Duration(4-i) * time.Millisecond)
				p.Fail(fmt.Errorf("proc %d failed", i))
			})
		}
		return e.Run()
	}
	want := run(1)
	if want == nil || want.Error() != "proc 0 failed" {
		t.Fatalf("serial failure = %v, want proc 0", want)
	}
	for _, workers := range []int{2, 4} {
		if got := run(workers); got == nil || got.Error() != want.Error() {
			t.Fatalf("workers=%d failure = %v, want %v", workers, got, want)
		}
	}
}
