package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/snapshot"
)

// RunStopError is the planned-stop report produced when a run is halted at
// a requested virtual time (wwtsim -run-until): not a failure, but a clean
// early exit whose partial statistics cover the execution up to the stop.
// Bisecting a failing run to the cycle of first divergence works by
// re-running with successively tighter stop cycles.
type RunStopError struct {
	// At is the quantum boundary the run stopped on: the first one at or
	// after the requested cycle.
	At Time
	// Requested is the cycle the caller asked to stop at.
	Requested Time
}

func (e *RunStopError) Error() string {
	return fmt.Sprintf("sim: run stopped at cycle %d (requested -run-until %d)", e.At, e.Requested)
}

// StopAt arms a planned stop: at the first quantum boundary at or after
// cycle, the engine aborts with a *RunStopError. The stop is deterministic —
// a replayed run stops at the identical boundary.
func (e *Engine) StopAt(cycle Time) {
	e.AddQuantumHook(func(now Time) {
		if now >= cycle {
			e.Abort(&RunStopError{At: now, Requested: cycle})
		}
	})
}

// EncodeState contributes the engine's serializable state to a checkpoint
// image: the clock, the event-queue shape (timestamps and sequence numbers
// — handler closures cannot be serialized, but their schedule pins the
// replayed engine to the same decisions), every processor's scheduling
// state, and each watchdog's progress mark. Must be called from a quantum
// hook, when no processor is executing.
func (e *Engine) EncodeState(enc *snapshot.Enc) {
	enc.Section("engine", func(enc *snapshot.Enc) {
		enc.I64(e.now)
		enc.I64(e.qEnd)
		enc.U64(e.seq)
		enc.I64(int64(e.finished))

		// Pending events, sorted by (At, seq) — the heap's internal layout
		// is insertion-history-dependent, its ordered content is not.
		evs := make([]Event, 0, e.events.len())
		e.events.each(func(ev *Event) {
			evs = append(evs, Event{At: ev.At, seq: ev.seq})
		})
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].At != evs[j].At {
				return evs[i].At < evs[j].At
			}
			return evs[i].seq < evs[j].seq
		})
		enc.U32(uint32(len(evs)))
		for _, ev := range evs {
			enc.I64(ev.At)
			enc.U64(ev.seq)
		}

		enc.U32(uint32(len(e.procs)))
		for _, p := range e.procs {
			enc.I64(p.clock)
			enc.Bool(p.done)
			enc.Bool(p.blocked)
			enc.Str(p.blockReason)
			enc.I64(p.blockStart)
			enc.U32(uint32(len(p.modes)))
		}

		enc.U32(uint32(len(e.watchdogs)))
		for _, w := range e.watchdogs {
			enc.Str(w.Source)
			enc.I64(w.last)
		}
	})
}

// EncodeState contributes the barrier's image: the waiters present (by
// processor ID, sorted — arrival order within a quantum is a host-side
// accident under parallel dispatch), the spin-polling count, the latest
// arrival time, and the completed-episode counter.
func (b *Barrier) EncodeState(enc *snapshot.Enc) {
	enc.Section("barrier", func(enc *snapshot.Enc) {
		ids := make([]int, len(b.waiting))
		for i, p := range b.waiting {
			ids[i] = p.ID
		}
		sort.Ints(ids)
		enc.U32(uint32(len(ids)))
		for _, id := range ids {
			enc.I64(int64(id))
		}
		enc.I64(int64(b.polling))
		enc.I64(int64(b.maxArr))
		enc.I64(b.epoch)
		enc.I64(int64(b.release))
	})
}

// EncodeState contributes the combiner's image to a canonical state
// snapshot: pending contributions in processor-ID order (value bits and
// index), the episode's operator, the maximum arrival clock, and the
// completed-episode count. Mirrors Barrier.EncodeState.
func (c *Combiner) EncodeState(enc *snapshot.Enc) {
	enc.Section("combiner", func(enc *snapshot.Enc) {
		arr := append([]combArrival(nil), c.arrived...)
		sort.Slice(arr, func(i, j int) bool { return arr[i].p.ID < arr[j].p.ID })
		enc.U32(uint32(len(arr)))
		for _, a := range arr {
			enc.I64(int64(a.p.ID))
			enc.U64(math.Float64bits(a.val))
			enc.I64(a.idx)
		}
		enc.U8(c.op)
		enc.I64(int64(c.maxArr))
		enc.I64(c.epoch)
	})
}
