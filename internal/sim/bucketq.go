package sim

import "container/heap"

// maxTime is an upper bound on event times, used to drain unconditionally.
const maxTime = Time(1)<<62 - 1

// bucketQueue is the engine's pending-event structure: a calendar queue
// tuned for the conservative-quantum access pattern, where almost every
// event lands within a few quanta of now and the event phase drains the
// whole window in (At, seq) order anyway. A ring of per-cycle FIFO buckets
// covers [base, base+window); the old binary heap survives only as the far
// queue for the rare event outside the window. Ring pushes and pops are
// O(1) — the heap's O(log n) sift, ~19% of host time at P=1024, is off the
// hot path.
//
// Ordering contract (must match the plain (At, seq) min-heap bit for bit):
//
//   - Sequence numbers increase monotonically across all pushes, so a
//     bucket's FIFO order IS seq order for that cycle.
//   - base only advances (advance is called after the event phase has
//     drained everything below the new base), so a far event for cycle t
//     was pushed before the window ever covered t — before every ring
//     event at t. On an At tie between the far queue and the ring, the far
//     event therefore always has the smaller seq, and popping far-first on
//     ties preserves the global order without comparing seq at all.
type bucketQueue struct {
	ring []evBucket
	mask int  // len(ring)-1; len is a power of two
	n    int  // events currently in the ring
	base Time // ring covers cycles [base, base+len(ring))
	next Time // lower bound on the earliest ring event's time
	far  eventHeap
}

// evBucket is one cycle's FIFO, linked intrusively through Event.qnext.
// Events are pooled by the engine, so the list borrows storage the events
// already own — a bucket can never allocate, no matter how many events pile
// onto one cycle (quantum-boundary merges put O(P) events on the same At).
type evBucket struct {
	head, tail *Event
}

// initBuckets sizes the ring to cover several quanta: wide enough that
// cross-processor latencies (network hops, directory transactions) land in
// the ring, small enough to stay cache-resident.
func (q *bucketQueue) initBuckets(quantum Time) {
	w := 256
	for Time(w) < 4*quantum {
		w <<= 1
	}
	q.ring = make([]evBucket, w)
	q.mask = w - 1
	// The far heap sees only out-of-window events, but heap.Push still
	// appends; seed enough capacity that its high-water mark is a warmup
	// phenomenon, not a mid-run allocation.
	q.far = make(eventHeap, 0, 64)
}

func (q *bucketQueue) len() int { return q.n + len(q.far) }

// push enqueues ev, routing by time: in-window to its cycle bucket,
// anything else (past or beyond the horizon) to the far heap.
func (q *bucketQueue) push(ev *Event) {
	if ev.At >= q.base && ev.At < q.base+Time(len(q.ring)) {
		b := &q.ring[int(ev.At)&q.mask]
		ev.qnext = nil
		if b.tail == nil {
			b.head = ev
		} else {
			b.tail.qnext = ev
		}
		b.tail = ev
		q.n++
		if ev.At < q.next {
			q.next = ev.At
		}
		return
	}
	heap.Push(&q.far, ev)
}

// ringMin returns the earliest ring event's cycle, or -1 if the ring is
// empty. The scan from the cached lower bound is amortized O(1): it only
// crosses a cycle once per window pass, and pushes can only lower the bound.
func (q *bucketQueue) ringMin() Time {
	if q.n == 0 {
		return -1
	}
	t := q.next
	for q.ring[int(t)&q.mask].head == nil {
		t++
	}
	q.next = t
	return t
}

// minAt returns the earliest pending event time across both queues, or -1
// if no events are pending.
func (q *bucketQueue) minAt() Time {
	at := q.ringMin()
	if len(q.far) > 0 && (at < 0 || q.far[0].At < at) {
		at = q.far[0].At
	}
	return at
}

// popBelow removes and returns the earliest event with At < limit, or nil.
// On an At tie the far queue wins — see the ordering contract above.
func (q *bucketQueue) popBelow(limit Time) *Event {
	ringAt := q.ringMin()
	if len(q.far) > 0 && (ringAt < 0 || q.far[0].At <= ringAt) {
		if q.far[0].At < limit {
			return heap.Pop(&q.far).(*Event)
		}
		return nil
	}
	if ringAt < 0 || ringAt >= limit {
		return nil
	}
	b := &q.ring[int(ringAt)&q.mask]
	ev := b.head
	b.head = ev.qnext
	if b.head == nil {
		b.tail = nil
	}
	ev.qnext = nil
	q.n--
	return ev
}

// each calls fn for every pending event, in no particular order. Callers
// that need an order (the state encoder) sort by (At, seq) themselves.
func (q *bucketQueue) each(fn func(*Event)) {
	for i := range q.ring {
		for ev := q.ring[i].head; ev != nil; ev = ev.qnext {
			fn(ev)
		}
	}
	for _, ev := range q.far {
		fn(ev)
	}
}

// advance moves the window start to 'to', exposing [oldBase+len, to+len) to
// ring pushes. Callers must have drained every event below 'to' first; the
// event phase does, right before advancing to the new quantum end.
func (q *bucketQueue) advance(to Time) {
	if to > q.base {
		q.base = to
		if q.next < to {
			q.next = to
		}
	}
}
