package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runner"
	"repro/internal/vfs"
)

// Config sizes one Server.
type Config struct {
	// Dir is the service's data directory: wal/, cache/, ckpt/.
	Dir string
	// FS is the filesystem every durable artifact goes through. nil means
	// the host filesystem; tests and the -fault-fsplan flag install a
	// vfs.Faulty here.
	FS vfs.FS
	// WALSegmentBytes is the log rotation threshold (default 1 MiB).
	WALSegmentBytes int64
	// Jobs is the worker pool size (concurrent runs). Default 1.
	Jobs int
	// RunWorkers is the engine worker count inside each run (0 =
	// GOMAXPROCS, 1 = serial). Default 1: job-level sharding already fills
	// the host.
	RunWorkers int
	// MaxQueue bounds pending+running jobs; a batch that would exceed it is
	// shed with a typed 429. Default 4096.
	MaxQueue int
	// MaxRetries bounds attempts retried after host-level failures (panic,
	// I/O error, replay divergence) before a typed terminal failure.
	// Default 3.
	MaxRetries int
	// MaxPreempts bounds deadline preemptions per job — a cell that cannot
	// finish inside the deadline even resuming from checkpoints eventually
	// fails terminally instead of cycling forever. Default 8.
	MaxPreempts int
	// Deadline is the default per-attempt wall-clock bound (0 = none);
	// batches may override it per submit.
	Deadline time.Duration
	// Backoff is the base retry backoff, doubling per attempt. Default
	// 250ms.
	Backoff time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Server is the sweep service: a WAL-backed queue, a content-addressed
// result cache, a supervised worker pool, and the HTTP API over them.
type Server struct {
	cfg   Config
	wal   *WAL
	q     *queue
	cache *Cache
	start time.Time

	stop     chan struct{}
	draining atomic.Bool
	wg       sync.WaitGroup

	mu      sync.Mutex
	running map[uint64]*runner.Interrupt

	retries, preemptions, panics atomic.Int64

	// storagePaused flips on when a durable write fails with ENOSPC:
	// admission returns typed 507s until a WAL probe succeeds, instead of
	// acking submits the log cannot hold. storageErrs counts every durable
	// write failure the degraded paths absorbed.
	storagePaused atomic.Bool
	storageErrs   atomic.Int64

	// runJob is the attempt executor, swappable by tests to inject
	// failures; the default is runner.Run.
	runJob func(spec runner.Spec, opts runner.Options) (*runner.Outcome, error)
}

// New opens (or creates) the service state under cfg.Dir, recovering the
// queue from the WAL: jobs that were pending or mid-run when the previous
// process died are pending again, completed jobs keep their results, and
// the log is compacted. Workers do not run until Start.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	if cfg.RunWorkers == 0 {
		cfg.RunWorkers = 1
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4096
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.MaxPreempts <= 0 {
		cfg.MaxPreempts = 8
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.FS == nil {
		cfg.FS = vfs.OS{}
	}
	if cfg.WALSegmentBytes <= 0 {
		cfg.WALSegmentBytes = DefaultSegmentBytes
	}

	cache, err := OpenCache(cfg.FS, filepath.Join(cfg.Dir, "cache"))
	if err != nil {
		return nil, err
	}
	wal, recs, rep, err := OpenWAL(cfg.FS, cfg.Dir, cfg.WALSegmentBytes)
	if err != nil {
		return nil, err
	}
	q, compactErr := recoverQueue(wal, recs, cache)
	s := &Server{
		cfg:     cfg,
		wal:     wal,
		q:       q,
		cache:   cache,
		start:   time.Now(),
		stop:    make(chan struct{}),
		running: make(map[uint64]*runner.Interrupt),
		runJob:  runner.Run,
	}
	if rep.TornBytes > 0 {
		s.logf("wal: discarded %d-byte torn tail (crash mid-append)", rep.TornBytes)
	}
	if rep.Quarantined > 0 {
		s.logf("wal: quarantined %d corrupt records (see *.quarantine)", rep.Quarantined)
	}
	if rep.Legacy {
		s.logf("wal: migrated legacy single-file log into %d-segment model", wal.Segments())
	}
	if compactErr != nil {
		// Uncompacted segments replay identically; serve degraded.
		s.logf("wal: %v (continuing uncompacted)", compactErr)
		s.noteStorage(compactErr)
	}
	if p, r, d, f := q.counts(); p+int(d)+int(f) > 0 {
		s.logf("recovered %d pending, %d done, %d failed jobs (running at crash: requeued)", p, d, f)
		_ = r
	}
	return s, nil
}

// noteStorage records a durable-write failure and, on ENOSPC, pauses
// admission until a probe shows the disk breathing again.
func (s *Server) noteStorage(err error) {
	s.storageErrs.Add(1)
	if vfs.IsNoSpace(err) {
		if s.storagePaused.CompareAndSwap(false, true) {
			s.logf("storage: out of space; pausing admission (%v)", err)
		}
	}
}

// storageOK clears the paused flag after a successful durable write.
func (s *Server) storageOK() {
	if s.storagePaused.CompareAndSwap(true, false) {
		s.logf("storage: durable writes succeeding again; admission resumed")
	}
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Jobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Drain gracefully stops the service: admission closes (readyz goes 503,
// submits get a typed 503), every in-flight job is interrupted so it
// checkpoints at its next quantum boundary and parks as pending-with-resume
// in the WAL, and workers exit. Safe to call once; returns when the pool
// has drained or the timeout elapsed.
func (s *Server) Drain(timeout time.Duration) error {
	s.draining.Store(true)
	s.mu.Lock()
	for _, intr := range s.running {
		intr.Fire()
	}
	s.mu.Unlock()
	close(s.stop)

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("serve: drain timed out after %v", timeout)
	}
}

// Close releases the WAL. Call after Drain (or on a failed startup path).
func (s *Server) Close() error { return s.wal.Close() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) trackRunning(id uint64, intr *runner.Interrupt) {
	s.mu.Lock()
	s.running[id] = intr
	s.mu.Unlock()
}

func (s *Server) untrackRunning(id uint64) {
	s.mu.Lock()
	delete(s.running, id)
	s.mu.Unlock()
}

// --- HTTP API ---

// Handler returns the service's HTTP API:
//
//	POST /v1/batches        submit a batch of specs
//	GET  /v1/batches/{id}   batch status + per-job results
//	GET  /v1/jobs/{id}      one job's status
//	GET  /healthz           process liveness (always 200 while serving)
//	GET  /readyz            200 when accepting work, 503 while draining
//	GET  /stats             queue depth, retry/preemption counts, cache hit rate
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batches", s.handleSubmit)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeErr(w, http.StatusServiceUnavailable, &APIError{Kind: ErrDraining, Message: "draining to checkpoints"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, &APIError{Kind: ErrDraining, Message: "draining to checkpoints"})
		return
	}
	if s.storagePaused.Load() {
		// Probe before refusing: space may have been freed since the pause.
		if err := s.wal.Probe(); err != nil {
			writeErr(w, http.StatusInsufficientStorage, &APIError{
				Kind: ErrNoSpace, Message: "queue paused: durable storage is out of space",
			})
			return
		}
		s.storageOK()
	}
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, &APIError{Kind: ErrBadBody, Message: err.Error()})
		return
	}
	if len(req.Runs) == 0 {
		writeErr(w, http.StatusBadRequest, &APIError{Kind: ErrBadSpec, Message: "empty batch"})
		return
	}
	for i := range req.Runs {
		if err := req.Runs[i].Validate(); err != nil {
			writeErr(w, http.StatusBadRequest, &APIError{
				Kind: ErrBadSpec, Message: fmt.Sprintf("run %d: %v", i, err),
			})
			return
		}
	}
	// Admission control: shed whole batches that would blow the queue
	// bound. (Checked against current depth; concurrent submits may
	// overshoot by a batch — the bound is load shedding, not accounting.)
	if depth := s.q.depth(); depth+len(req.Runs) > s.cfg.MaxQueue {
		writeErr(w, http.StatusTooManyRequests, &APIError{
			Kind:       ErrQueueFull,
			Message:    fmt.Sprintf("queue depth %d + batch %d exceeds bound %d", depth, len(req.Runs), s.cfg.MaxQueue),
			QueueDepth: depth,
			QueueLimit: s.cfg.MaxQueue,
		})
		return
	}
	batch, jobs, err := s.q.submit(req.Runs, time.Duration(req.DeadlineMS)*time.Millisecond)
	if err != nil {
		// The WAL append failed, so nothing was acked and nothing is
		// visible: the client must retry or give up, never assume acceptance.
		s.noteStorage(err)
		if vfs.IsNoSpace(err) {
			writeErr(w, http.StatusInsufficientStorage, &APIError{Kind: ErrNoSpace, Message: err.Error()})
		} else {
			writeErr(w, http.StatusInternalServerError, &APIError{Kind: ErrStorage, Message: err.Error()})
		}
		return
	}
	s.storageOK()
	resp := SubmitResponse{Batch: fmt.Sprintf("b%d", batch)}
	for _, j := range jobs {
		resp.Jobs = append(resp.Jobs, JobRef{
			Index: j.index, ID: fmt.Sprintf("j%d", j.id), Key: fmt.Sprintf("%016x", j.key),
		})
	}
	s.logf("batch b%d: %d jobs accepted", batch, len(jobs))
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	id, ok := parseID(r.PathValue("id"), "b")
	if !ok {
		writeErr(w, http.StatusNotFound, &APIError{Kind: ErrNotFound, Message: "malformed batch id"})
		return
	}
	bs, ok := s.q.batchStatus(id)
	if !ok {
		writeErr(w, http.StatusNotFound, &APIError{Kind: ErrNotFound, Message: "no such batch"})
		return
	}
	writeJSON(w, http.StatusOK, bs)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, ok := parseID(r.PathValue("id"), "j")
	if !ok {
		writeErr(w, http.StatusNotFound, &APIError{Kind: ErrNotFound, Message: "malformed job id"})
		return
	}
	js, ok := s.q.jobStatus(id)
	if !ok {
		writeErr(w, http.StatusNotFound, &APIError{Kind: ErrNotFound, Message: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, &js)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	pending, running, done, failed := s.q.counts()
	hits, misses := s.cache.Hits(), s.cache.Misses()
	var rate float64
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	resp := &StatsResponse{
		Pending:          pending,
		Running:          running,
		Done:             done,
		Failed:           failed,
		Retries:          s.retries.Load(),
		Preemptions:      s.preemptions.Load(),
		Panics:           s.panics.Load(),
		CacheHits:        hits,
		CacheMisses:      misses,
		HitRate:          rate,
		QueueLimit:       s.cfg.MaxQueue,
		Draining:         s.draining.Load(),
		UptimeMS:         time.Since(s.start).Milliseconds(),
		WALRecords:       s.wal.Records(),
		WALSegments:      s.wal.Segments(),
		WALQuarantined:   s.wal.Quarantined(),
		CacheQuarantined: s.cache.Quarantined(),
		StorageErrs:      s.storageErrs.Load(),
		StoragePaused:    s.storagePaused.Load(),
	}
	if fc, ok := s.cfg.FS.(interface{ FaultCount() int64 }); ok {
		resp.FSFaults = fc.FaultCount()
	}
	writeJSON(w, http.StatusOK, resp)
}

func parseID(s, prefix string) (uint64, bool) {
	if !strings.HasPrefix(s, prefix) {
		return 0, false
	}
	v, err := strconv.ParseUint(s[len(prefix):], 10, 64)
	return v, err == nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, e *APIError) {
	writeJSON(w, code, e)
}
