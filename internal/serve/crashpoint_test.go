package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/vfs"
)

func jsonBody(v any) (io.Reader, error) {
	b, err := json.Marshal(v)
	return bytes.NewReader(b), err
}

func jsonDecode(b []byte, v any) error { return json.Unmarshal(b, v) }

func parseHexKey(t *testing.T, s string) uint64 {
	t.Helper()
	k, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		t.Fatalf("job key %q: %v", s, err)
	}
	return k
}

func sortStrings(s []string) { sort.Strings(s) }

// allJobIDs lists every job id in the recovered table, sorted.
func allJobIDs(s *Server) []uint64 {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	ids := make([]uint64, 0, len(s.q.jobs))
	for id := range s.q.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// The crash-point exploration harness: run one scripted workload through a
// Faulty filesystem that kills the process at VFS operation index N, reopen
// the service on the surviving bytes with the real filesystem, and assert
// the exactly-once invariants — for EVERY N the workload performs. This is
// the durability layer's analogue of the simulator's exhaustive fault
// sweeps: not "a crash somewhere is survivable" but "a crash everywhere is".
//
// Invariants checked at every crash point:
//   - recovery never errors, whatever half-written state the crash left;
//   - every job acked before the crash (HTTP 200 on its submit) exists
//     after reopen and completes exactly once, with the fingerprint the
//     deterministic stub assigns its spec;
//   - jobs recovered as done are never re-executed;
//   - after recovery completes the queue, no job runs more than once.

// stubFP is the deterministic fingerprint the stubbed executor assigns a
// spec: derived from the cache key alone, so reruns are bit-identical.
func stubFP(key uint64) uint64 { return key ^ 0x5eed1dea }

// crashWorkload drives a fixed, single-threaded workload against a server
// on fsys: three submits interleaved with direct claim/process calls, then
// a bounded drain. It returns the acked jobs (job id → expected fingerprint
// string) and the set of keys the stub actually executed. Every step
// tolerates injected failure — that is the point.
func crashWorkload(t *testing.T, fsys vfs.FS, dir string) (acked map[string]string, ran map[string]int) {
	t.Helper()
	acked = map[string]string{}
	ran = map[string]int{}

	cfg := Config{
		Dir:             dir,
		FS:              fsys,
		WALSegmentBytes: 600, // tiny: the workload crosses several rotations
		Jobs:            1,
		Backoff:         time.Millisecond,
	}
	s, err := New(cfg)
	if err != nil {
		return acked, ran // crashed during open; nothing was acked
	}
	defer s.wal.Close()
	s.runJob = func(spec runner.Spec, opts runner.Options) (*runner.Outcome, error) {
		key := spec.CacheKey()
		ran[fmt.Sprintf("%016x", key)]++
		return &runner.Outcome{Fingerprint: stubFP(key), AppLine: "stub"}, nil
	}
	h := s.Handler()

	specAt := func(size int) runner.Spec {
		return runner.Spec{App: "gauss", Machine: "mp", Procs: 4, Size: size}
	}
	submit := func(sizes ...int) {
		var req SubmitRequest
		for _, sz := range sizes {
			req.Runs = append(req.Runs, specAt(sz))
		}
		rec := httptest.NewRecorder()
		body, _ := jsonBody(&req)
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/batches", body))
		if rec.Code != 200 {
			return // not acked: the client must not assume acceptance
		}
		var resp SubmitResponse
		if err := jsonDecode(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("200 submit with undecodable body: %v", err)
		}
		for _, ref := range resp.Jobs {
			key := parseHexKey(t, ref.Key)
			acked[ref.ID] = fmt.Sprintf("%#x", stubFP(key))
		}
	}
	farFuture := time.Now().Add(time.Hour) // bypass retry-backoff gates
	processN := func(n int) {
		for i := 0; i < n; i++ {
			if j := s.q.claim(farFuture); j != nil {
				s.process(j)
			}
		}
	}

	submit(10, 11, 12) // batch A
	processN(2)
	submit(13, 10, 14, 15) // batch B; size 10 duplicates A → cache-hit path
	processN(4)
	submit(16, 17) // batch C
	processN(12)   // bounded drain: crashed-mode failures just unclaim
	return acked, ran
}

// recoverAndFinish reopens dir on the real filesystem — recovery must
// succeed whatever the crash left — and drives every pending job to a
// terminal state. It returns job id → (state, fingerprint) plus the keys
// executed post-recovery and the set of jobs already done at reopen.
func recoverAndFinish(t *testing.T, dir string, context string) (states map[string]JobStatus, ran map[string]int, doneAtOpen map[string]bool) {
	t.Helper()
	s, err := New(Config{Dir: dir, WALSegmentBytes: 600, Jobs: 1, Backoff: time.Millisecond})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", context, err)
	}
	defer s.wal.Close()
	ran = map[string]int{}
	s.runJob = func(spec runner.Spec, opts runner.Options) (*runner.Outcome, error) {
		key := spec.CacheKey()
		ran[fmt.Sprintf("%016x", key)]++
		return &runner.Outcome{Fingerprint: stubFP(key), AppLine: "stub"}, nil
	}

	doneAtOpen = map[string]bool{}
	states = map[string]JobStatus{}
	ids := allJobIDs(s)
	for _, id := range ids {
		if js, ok := s.q.jobStatus(id); ok && js.State == StateDone {
			doneAtOpen[js.ID] = true
		}
	}

	farFuture := time.Now().Add(time.Hour)
	for i := 0; i <= len(ids)*3+10; i++ {
		j := s.q.claim(farFuture)
		if j == nil {
			break
		}
		s.process(j)
	}
	for _, id := range ids {
		js, ok := s.q.jobStatus(id)
		if !ok {
			t.Fatalf("%s: job j%d vanished", context, id)
		}
		states[js.ID] = js
	}
	return states, ran, doneAtOpen
}

// TestCrashPointExploration is the acceptance-criteria harness.
func TestCrashPointExploration(t *testing.T) {
	// Pass 1: clean Faulty (no faults, no crash) to learn the workload's
	// operation count and its expected outcome.
	counter := vfs.NewFaulty(vfs.OS{}, vfs.Plan{CrashAt: -1})
	baseDir := t.TempDir()
	baseAcked, _ := crashWorkload(t, counter, baseDir)
	total := int(counter.OpCount())
	if total < 50 {
		t.Fatalf("workload performed only %d VFS ops; script too small to be interesting", total)
	}
	if len(baseAcked) != 9 {
		t.Fatalf("clean workload acked %d jobs, want 9", len(baseAcked))
	}
	baseStates, _, _ := recoverAndFinish(t, baseDir, "baseline")
	for id, wantFP := range baseAcked {
		js := baseStates[id]
		if js.State != StateDone || js.Fingerprint != wantFP {
			t.Fatalf("baseline job %s: %s/%s, want done/%s", id, js.State, js.Fingerprint, wantFP)
		}
	}

	stride := 1
	if testing.Short() {
		stride = 7
	}
	t.Logf("exploring %d crash points (stride %d)", total, stride)
	for n := 0; n < total; n += stride {
		dir := t.TempDir()
		faulty := vfs.NewFaulty(vfs.OS{}, vfs.Plan{Seed: uint64(n), CrashAt: int64(n)})
		acked, _ := crashWorkload(t, faulty, dir)
		if !faulty.Crashed() {
			t.Fatalf("crash at op %d never fired (workload did %d ops)", n, faulty.OpCount())
		}
		ctx := fmt.Sprintf("crash at op %d", n)
		states, ranAfter, doneAtOpen := recoverAndFinish(t, dir, ctx)

		// Every acked job completes exactly once with the stub fingerprint.
		for id, wantFP := range acked {
			js, ok := states[id]
			if !ok {
				t.Fatalf("%s: acked job %s lost by recovery", ctx, id)
			}
			if js.State != StateDone {
				t.Fatalf("%s: acked job %s ended %s (%s: %s)", ctx, id, js.State, js.FailKind, js.FailError)
			}
			if js.Fingerprint != wantFP {
				t.Fatalf("%s: job %s fingerprint %s, want %s", ctx, id, js.Fingerprint, wantFP)
			}
		}
		// Jobs recovered as done are never re-executed, and nothing runs
		// twice after recovery.
		for id := range doneAtOpen {
			js := states[id]
			key := strings.TrimPrefix(js.Key, "0x")
			if ranAfter[key] > 0 {
				t.Fatalf("%s: job %s was done at reopen but re-executed", ctx, id)
			}
		}
		for key, count := range ranAfter {
			if count > 1 {
				t.Fatalf("%s: key %s executed %d times post-recovery", ctx, key, count)
			}
		}
	}
}

// TestFaultPlanDeterminism is the fault-plan acceptance criterion at the
// service level: the same probabilistic plan over the same scripted
// workload injects the same fault trace and recovers to the same outcome.
func TestFaultPlanDeterminism(t *testing.T) {
	plan, err := vfs.ParsePlan("seed=7,torn=0.04,fsync=0.04,enospc=0.04,rename=0.02")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (trace []string, ackedIDs []string, states map[string]string) {
		dir := t.TempDir()
		faulty := vfs.NewFaulty(vfs.OS{}, plan)
		acked, _ := crashWorkload(t, faulty, dir)
		for id := range acked {
			ackedIDs = append(ackedIDs, id)
		}
		sortStrings(ackedIDs)
		st, _, _ := recoverAndFinish(t, dir, "determinism")
		states = map[string]string{}
		for id, js := range st {
			states[id] = js.State + "/" + js.Fingerprint
		}
		trace = make([]string, 0, len(faulty.Trace()))
		for _, l := range faulty.Trace() {
			trace = append(trace, strings.ReplaceAll(l, dir, "$DIR"))
		}
		return trace, ackedIDs, states
	}
	t1, a1, s1 := run()
	t2, a2, s2 := run()
	if len(t1) == 0 {
		t.Fatal("plan injected no faults; rates too low for this workload")
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("fault traces diverged:\n%v\n%v", t1, t2)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("acked sets diverged: %v vs %v", a1, a2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("recovery outcomes diverged:\n%v\n%v", s1, s2)
	}
	// And the recovered outcome is correct, not merely repeatable.
	for _, id := range a1 {
		if got := s1[id]; !strings.HasPrefix(got, StateDone+"/") {
			t.Fatalf("acked job %s ended %q", id, got)
		}
	}
}
