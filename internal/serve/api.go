// Package serve implements wwtserved: a fault-tolerant sweep service that
// accepts batches of runner.Spec cells over HTTP/JSON and executes them with
// durability guarantees a one-shot CLI cannot offer.
//
// The design leans on one property the rest of the repo already earned: the
// simulator is deterministic, so a run's identity is its canonical spec
// fingerprint (runner.Spec.CacheKey) and identical keys provably yield
// bit-identical stats. That makes three robustness mechanisms sound by
// construction:
//
//   - a write-ahead-logged job queue (wal.go, queue.go): every submitted job
//     is durable before the client is acked, and kill -9 + restart recovers
//     exactly the incomplete set — no lost jobs, no duplicated results;
//   - a content-addressed result cache (cache.go): completed cells are
//     stored under their spec key, so resubmission is served from disk with
//     a cache-hit marker and a bit-identical fingerprint;
//   - supervised execution (supervisor.go): per-job panic isolation,
//     wall-clock deadlines that preempt a job into a checkpoint and requeue
//     it to resume (replay-verified) instead of restarting, and bounded
//     retries with exponential backoff ending in a typed terminal-failure
//     record.
//
// This file defines the HTTP/JSON wire types shared by the server and the
// wwtsweep -server thin client.
package serve

import "repro/internal/runner"

// SubmitRequest is the body of POST /v1/batches: a batch of run specs, in
// the same shape as a wwtsweep matrix file.
type SubmitRequest struct {
	Runs []runner.Spec `json:"runs"`
	// DeadlineMS, when positive, bounds each job attempt's wall-clock time;
	// a job that exceeds it is checkpointed and requeued to resume. Zero
	// uses the server's default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// JobRef identifies one accepted job in a submit response.
type JobRef struct {
	Index int    `json:"index"` // position in SubmitRequest.Runs
	ID    string `json:"id"`    // "j<n>"
	Key   string `json:"key"`   // canonical spec fingerprint, hex
}

// SubmitResponse acknowledges a durably enqueued batch. By the time the
// client reads it, every job has been written and fsynced to the WAL: a
// daemon crash after the ack cannot lose the batch.
type SubmitResponse struct {
	Batch string   `json:"batch"` // "b<n>"
	Jobs  []JobRef `json:"jobs"`
}

// Job states reported by the API.
const (
	StatePending = "pending"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobStatus is one job's externally visible state.
type JobStatus struct {
	Index int    `json:"index"`
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`

	// Cached marks a result served from the content-addressed cache rather
	// than computed by this job.
	Cached bool `json:"cached,omitempty"`
	// Attempts counts failed attempts so far; Preemptions counts deadline
	// preemptions. ResumeCycle is the checkpoint cycle the next attempt
	// resumes from (0 = from scratch); ResumedFrom is the checkpoint cycle
	// a finished job verifiably resumed through.
	Attempts    int   `json:"attempts,omitempty"`
	Preemptions int   `json:"preemptions,omitempty"`
	ResumeCycle int64 `json:"resume_cycle,omitempty"`
	ResumedFrom int64 `json:"resumed_from,omitempty"`

	// Result fields, present when State is done.
	Fingerprint string             `json:"fingerprint,omitempty"`
	AppLine     string             `json:"app_line,omitempty"`
	Elapsed     int64              `json:"elapsed_cycles,omitempty"`
	Breakdown   map[string]float64 `json:"breakdown,omitempty"`
	WallMS      int64              `json:"wall_ms,omitempty"`
	// Error is a deterministic application abort (starvation, invariant
	// violation) recorded as data — the run completed, the simulated
	// configuration fell over. Such cells are cached like any other result.
	Error string `json:"error,omitempty"`

	// Terminal failure record, present when State is failed: FailKind
	// classifies the failure ("panic", "harness", "divergence", "deadline",
	// "bad_spec"), FailError carries the last error text.
	FailKind  string `json:"fail_kind,omitempty"`
	FailError string `json:"fail_error,omitempty"`
}

// BatchStatus is the response of GET /v1/batches/{id}.
type BatchStatus struct {
	Batch  string         `json:"batch"`
	Done   bool           `json:"done"` // every job done or failed
	Counts map[string]int `json:"counts"`
	Jobs   []JobStatus    `json:"jobs"`
}

// StatsResponse is the response of GET /stats.
type StatsResponse struct {
	Pending     int     `json:"pending"`
	Running     int     `json:"running"`
	Done        int64   `json:"done"`
	Failed      int64   `json:"failed"`
	Retries     int64   `json:"retries"`
	Preemptions int64   `json:"preemptions"`
	Panics      int64   `json:"panics"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	QueueLimit  int     `json:"queue_limit"`
	Draining    bool    `json:"draining"`
	UptimeMS    int64   `json:"uptime_ms"`
	WALRecords  int64   `json:"wal_records"`

	// Storage health: WAL segment count, records quarantined at recovery
	// (WAL) and at read time (cache), durable-write failures absorbed by
	// the degraded paths, whether admission is paused on ENOSPC, and — when
	// the server runs under an injected fault plan — how many faults fired.
	WALSegments      int   `json:"wal_segments"`
	WALQuarantined   int64 `json:"wal_quarantined,omitempty"`
	CacheQuarantined int64 `json:"cache_quarantined,omitempty"`
	StorageErrs      int64 `json:"storage_errs,omitempty"`
	StoragePaused    bool  `json:"storage_paused,omitempty"`
	FSFaults         int64 `json:"fs_faults,omitempty"`
}

// Error kinds returned in APIError.Kind.
const (
	ErrQueueFull = "queue_full" // 429: admission control shed the batch
	ErrBadSpec   = "bad_spec"   // 400: a spec failed validation
	ErrDraining  = "draining"   // 503: server is draining to checkpoints
	ErrNotFound  = "not_found"  // 404
	ErrBadBody   = "bad_body"   // 400: body is not valid JSON
	ErrNoSpace   = "no_space"   // 507: durable storage out of space, queue paused
	ErrStorage   = "storage"    // 500: a durable write failed; the submit was NOT acked
)

// APIError is the typed error body every non-2xx response carries.
type APIError struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Queue depth and limit, set when Kind is queue_full so clients can
	// size their backoff.
	QueueDepth int `json:"queue_depth,omitempty"`
	QueueLimit int `json:"queue_limit,omitempty"`
}

func (e *APIError) Error() string { return "serve: " + e.Kind + ": " + e.Message }
