package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/vfs"
)

func sampleRecords() []Record {
	return []Record{
		{Type: recSubmit, Job: 1, Batch: 1, Index: 0, Key: 0xdeadbeef,
			Spec: []byte(`{"app":"gauss","machine":"mp","procs":4}`), DeadlineMS: 1500},
		{Type: recAttempt, Job: 1, Attempts: 2},
		{Type: recCkpt, Job: 1, Cycle: 123456, Path: "/tmp/x/preempt-123456.wws"},
		{Type: recDone, Job: 1, Key: 0xdeadbeef, Cached: true},
		{Type: recFail, Job: 2, Attempts: 3, Kind: "panic", Err: "boom"},
	}
}

func openWAL(t *testing.T, dir string, segBytes int64) (*WAL, []Record, RecoveryReport) {
	t.Helper()
	w, recs, rep, err := OpenWAL(vfs.OS{}, dir, segBytes)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return w, recs, rep
}

// liveSegPath returns the path of the single live segment of a fresh log.
func liveSegPath(t *testing.T, dir string) string {
	t.Helper()
	names := segNames(t, dir)
	if len(names) != 1 {
		t.Fatalf("expected exactly one segment, found %v", names)
	}
	return filepath.Join(dir, walDirName, names[0])
}

func segNames(t *testing.T, dir string) []string {
	t.Helper()
	names, err := vfs.OS{}.ReadDir(filepath.Join(dir, walDirName))
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range names {
		if parseSegName(n) > 0 {
			segs = append(segs, n)
		}
	}
	return segs
}

// TestWALRoundTrip: append every record type, reopen, get them back intact.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs, rep := openWAL(t, dir, 0)
	if len(recs) != 0 || rep.TornBytes != 0 || rep.Quarantined != 0 {
		t.Fatalf("fresh log replayed %d records, report %+v", len(recs), rep)
	}
	want := sampleRecords()
	if err := w.Append(want...); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2, got, rep := openWAL(t, dir, 0)
	defer w2.Close()
	if rep.TornBytes != 0 || rep.Quarantined != 0 {
		t.Fatalf("clean log reported repairs: %+v", rep)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	if w2.Records() != int64(len(want)) {
		t.Fatalf("records gauge %d, want %d", w2.Records(), len(want))
	}
}

// TestWALTornTail: a live segment cut mid-record (kill -9 during append)
// replays every complete record, truncates the tail, and accepts appends.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openWAL(t, dir, 0)
	want := sampleRecords()
	if err := w.Append(want...); err != nil {
		t.Fatalf("append: %v", err)
	}
	w.Close()
	seg := liveSegPath(t, dir)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the segment at every possible torn point inside the final record
	// and check recovery each time.
	lastLen := len(encodeRecord(&want[len(want)-1]))
	for cut := len(full) - 1; cut > len(full)-lastLen; cut-- {
		if err := os.WriteFile(seg, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, got, rep := openWAL(t, dir, 0)
		if len(got) != len(want)-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), len(want)-1)
		}
		if rep.TornBytes == 0 {
			t.Fatalf("cut %d: reported clean despite torn tail", cut)
		}
		// The log must be appendable again after truncation.
		if err := w.Append(want[len(want)-1]); err != nil {
			t.Fatalf("cut %d: append after truncate: %v", cut, err)
		}
		w.Close()
		_, got2, _ := openWAL(t, dir, 0)
		if !reflect.DeepEqual(got2, want) {
			t.Fatalf("cut %d: after repair+append got %d records, want %d", cut, len(got2), len(want))
		}
	}
}

// TestWALQuarantinesCorruptRecord: a bit-rotted record in the middle of a
// segment is quarantined and skipped; records after it still replay. The
// pre-rotation model would have truncated them away.
func TestWALQuarantinesCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openWAL(t, dir, 0)
	want := sampleRecords()
	if err := w.Append(want...); err != nil {
		t.Fatal(err)
	}
	w.Close()
	seg := liveSegPath(t, dir)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the SECOND record's payload (past its type byte
	// and length prefix, so the framing stays intact).
	off := len(segHeader()) + len(encodeRecord(&want[0])) + 6
	full[off] ^= 0x40
	if err := os.WriteFile(seg, full, 0o644); err != nil {
		t.Fatal(err)
	}

	_, got, rep := openWAL(t, dir, 0)
	if rep.Quarantined != 1 {
		t.Fatalf("quarantined %d records, want 1", rep.Quarantined)
	}
	expect := append(append([]Record{}, want[0]), want[2:]...)
	if !reflect.DeepEqual(got, expect) {
		t.Fatalf("replay after corruption:\n got %+v\nwant %+v", got, expect)
	}
	if _, err := os.Stat(seg + ".quarantine"); err != nil {
		t.Fatalf("no quarantine file: %v", err)
	}
}

// TestWALRotation: appends past the threshold rotate into new segments, and
// a reopen replays across all of them in order.
func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openWAL(t, dir, 200) // tiny threshold to force rotations
	var want []Record
	for i := uint64(1); i <= 20; i++ {
		r := Record{Type: recSubmit, Job: i, Batch: 1, Index: int(i), Key: i,
			Spec: []byte(`{"app":"gauss","machine":"mp","procs":4}`)}
		if err := w.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, r)
	}
	if w.Segments() < 3 {
		t.Fatalf("only %d segments after 20 appends at a 200-byte threshold", w.Segments())
	}
	w.Close()

	w2, got, rep := openWAL(t, dir, 200)
	defer w2.Close()
	if rep.TornBytes != 0 || rep.Quarantined != 0 {
		t.Fatalf("rotated log reported repairs: %+v", rep)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay across segments: got %d records, want %d", len(got), len(want))
	}
}

// TestWALCompactDeletesSegments: compaction collapses a multi-segment log
// into one fresh segment, deletes the predecessors, and recovery afterwards
// sees exactly the compacted set.
func TestWALCompactDeletesSegments(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openWAL(t, dir, 200)
	all := sampleRecords()
	for i := 0; i < 6; i++ {
		if err := w.Append(all...); err != nil {
			t.Fatal(err)
		}
	}
	if w.Segments() < 3 {
		t.Fatalf("setup: only %d segments", w.Segments())
	}
	compact := all[3:] // keep just the terminal records
	if err := w.Compact(compact); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if got := w.Segments(); got != 1 {
		t.Fatalf("%d segments after compact, want 1", got)
	}
	if names := segNames(t, dir); len(names) != 1 {
		t.Fatalf("segment files on disk after compact: %v", names)
	}
	if err := w.Append(Record{Type: recAttempt, Job: 9, Attempts: 1}); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	w.Close()
	_, got, _ := openWAL(t, dir, 200)
	if len(got) != len(compact)+1 {
		t.Fatalf("got %d records, want %d", len(got), len(compact)+1)
	}
	if !reflect.DeepEqual(got[:len(compact)], compact) {
		t.Fatalf("compacted records differ")
	}
}

// TestWALLegacyMigration: a pre-rotation single-file queue.wal replays
// (ordered before any numbered segment) and is deleted by compaction.
func TestWALLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	blob := segHeader()
	for i := range want {
		blob = append(blob, encodeRecord(&want[i])...)
	}
	legacy := filepath.Join(dir, legacyWAL)
	if err := os.WriteFile(legacy, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	w, got, rep := openWAL(t, dir, 0)
	if !rep.Legacy {
		t.Fatal("legacy file not reported")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy replay mismatch: got %d records, want %d", len(got), len(want))
	}
	if err := w.Compact(got); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(legacy); !os.IsNotExist(err) {
		t.Fatalf("legacy file survived compaction (stat err %v)", err)
	}
	w.Close()
	_, got2, rep2 := openWAL(t, dir, 0)
	if rep2.Legacy {
		t.Fatal("legacy still reported after migration")
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("records lost across migration")
	}
}

// TestWALRotationRecoveryEquivalence is the acceptance criterion for the
// segmented model: the same record stream recovered through ≥3 rotations
// must produce the same job table as the legacy single-file model, and
// compaction must leave one segment.
func TestWALRotationRecoveryEquivalence(t *testing.T) {
	spec := []byte(`{"app":"gauss","machine":"mp","procs":4}`)
	var stream []Record
	for i := uint64(1); i <= 12; i++ {
		stream = append(stream, Record{Type: recSubmit, Job: i, Batch: 1, Index: int(i - 1), Key: i, Spec: spec})
	}
	for i := uint64(1); i <= 4; i++ { // some terminal states
		stream = append(stream, Record{Type: recFail, Job: i, Attempts: 3, Kind: "panic", Err: "x"})
	}
	stream = append(stream, Record{Type: recAttempt, Job: 7, Attempts: 1})

	recover := func(dir string, segBytes int64, legacy bool) map[uint64]string {
		if legacy {
			blob := segHeader()
			for i := range stream {
				blob = append(blob, encodeRecord(&stream[i])...)
			}
			if err := os.WriteFile(filepath.Join(dir, legacyWAL), blob, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		w, recs, _, err := OpenWAL(vfs.OS{}, dir, segBytes)
		if err != nil {
			t.Fatal(err)
		}
		if !legacy {
			for i := range recs {
				t.Fatalf("unexpected replay in fresh dir: %+v", recs[i])
			}
			for i := range stream {
				if err := w.Append(stream[i]); err != nil {
					t.Fatal(err)
				}
			}
			if w.Segments() < 3 {
				t.Fatalf("only %d rotations at segBytes=%d", w.Segments(), segBytes)
			}
			w.Close()
			w, recs, _, err = OpenWAL(vfs.OS{}, dir, segBytes)
			if err != nil {
				t.Fatal(err)
			}
		}
		cache, err := OpenCache(vfs.OS{}, filepath.Join(dir, "cache"))
		if err != nil {
			t.Fatal(err)
		}
		q, cerr := recoverQueue(w, recs, cache)
		if cerr != nil {
			t.Fatalf("compaction: %v", cerr)
		}
		if got := w.Segments(); got != 1 {
			t.Fatalf("%d segments after recovery compaction, want 1", got)
		}
		states := make(map[uint64]string)
		for id, j := range q.jobs {
			states[id] = j.state.String()
		}
		w.Close()
		return states
	}

	single := recover(t.TempDir(), 0, true)
	rotated := recover(t.TempDir(), 200, false)
	if !reflect.DeepEqual(single, rotated) {
		t.Fatalf("recovery divergence:\nsingle-file %v\nrotated     %v", single, rotated)
	}
	if len(rotated) != 12 {
		t.Fatalf("recovered %d jobs, want 12", len(rotated))
	}
}

// TestWALRejectsForeignFile: not-a-WAL inputs produce errors, not garbage
// replays.
func TestWALRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, walDirName), 0o755); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, walDirName, walSegPrefix+"000001")
	if err := os.WriteFile(foreign, []byte("definitely not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenWAL(vfs.OS{}, dir, 0); err == nil {
		t.Fatal("opened a non-WAL segment without error")
	} else if !strings.Contains(err.Error(), "magic") {
		t.Fatalf("unexpected error: %v", err)
	}
}
