package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Type: recSubmit, Job: 1, Batch: 1, Index: 0, Key: 0xdeadbeef,
			Spec: []byte(`{"app":"gauss","machine":"mp","procs":4}`), DeadlineMS: 1500},
		{Type: recAttempt, Job: 1, Attempts: 2},
		{Type: recCkpt, Job: 1, Cycle: 123456, Path: "/tmp/x/preempt-123456.wws"},
		{Type: recDone, Job: 1, Key: 0xdeadbeef, Cached: true},
		{Type: recFail, Job: 2, Attempts: 3, Kind: "panic", Err: "boom"},
	}
}

// TestWALRoundTrip: append every record type, reopen, get them back intact.
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	w, recs, torn, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if len(recs) != 0 || torn != 0 {
		t.Fatalf("fresh log replayed %d records, torn %d", len(recs), torn)
	}
	want := sampleRecords()
	if err := w.Append(want...); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2, got, torn, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if torn != 0 {
		t.Fatalf("clean log reported %d torn bytes", torn)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	if w2.Records() != int64(len(want)) {
		t.Fatalf("records gauge %d, want %d", w2.Records(), len(want))
	}
}

// TestWALTornTail: a log cut mid-record (kill -9 during append) replays
// every complete record, truncates the tail, and accepts new appends.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := sampleRecords()
	if err := w.Append(want...); err != nil {
		t.Fatalf("append: %v", err)
	}
	w.Close()

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file at every possible torn point inside the final record and
	// check recovery each time.
	lastLen := len(encodeRecord(&want[len(want)-1]))
	for cut := len(full) - 1; cut > len(full)-lastLen; cut-- {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, got, torn, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if len(got) != len(want)-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), len(want)-1)
		}
		if torn == 0 {
			t.Fatalf("cut %d: reported clean despite torn tail", cut)
		}
		// The log must be appendable again after truncation.
		if err := w.Append(want[len(want)-1]); err != nil {
			t.Fatalf("cut %d: append after truncate: %v", cut, err)
		}
		w.Close()
		_, got2, _, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if !reflect.DeepEqual(got2, want) {
			t.Fatalf("cut %d: after repair+append got %d records, want %d", cut, len(got2), len(want))
		}
	}
}

// TestWALRewrite: compaction replaces contents atomically and the log stays
// appendable.
func TestWALRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	w, _, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	all := sampleRecords()
	if err := w.Append(all...); err != nil {
		t.Fatal(err)
	}
	compact := all[3:] // keep just the terminal records
	if err := w.Rewrite(compact); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if err := w.Append(Record{Type: recAttempt, Job: 9, Attempts: 1}); err != nil {
		t.Fatalf("append after rewrite: %v", err)
	}
	w.Close()
	_, got, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(compact)+1 {
		t.Fatalf("got %d records, want %d", len(got), len(compact)+1)
	}
	if !reflect.DeepEqual(got[:len(compact)], compact) {
		t.Fatalf("compacted records differ")
	}
}

// TestWALRejectsForeignFile: not-a-WAL inputs produce errors, not garbage
// replays.
func TestWALRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	if err := os.WriteFile(path, []byte("definitely not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenWAL(path); err == nil {
		t.Fatal("opened a non-WAL file without error")
	}
}
