package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/runner"
	"repro/internal/vfs"
)

// testSpecs is a small cross-machine matrix; each cell runs in ~10ms.
func testSpecs() []runner.Spec {
	return []runner.Spec{
		{App: "gauss", Machine: "mp", Procs: 4, Size: 48},
		{App: "gauss", Machine: "sm", Procs: 4, Size: 48},
		{App: "em3d", Machine: "mp", Procs: 4, Size: 40, Iters: 3},
		{App: "lcp", Machine: "sm", Procs: 4, Size: 128, Iters: 3},
	}
}

func newTestServer(t *testing.T, dir string, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Dir:     dir,
		Jobs:    2,
		Backoff: time.Millisecond,
		Logf:    t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	return s
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body, out any) (int, *APIError) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{}
		json.NewDecoder(resp.Body).Decode(apiErr)
		return resp.StatusCode, apiErr
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", path, err)
	}
	return resp.StatusCode, nil
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

// waitBatchDone polls the batch endpoint until every job is terminal.
func waitBatchDone(t *testing.T, ts *httptest.Server, batch string, timeout time.Duration) *BatchStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var bs BatchStatus
		if code := getJSON(t, ts, "/v1/batches/"+batch, &bs); code != http.StatusOK {
			t.Fatalf("batch %s: HTTP %d", batch, code)
		}
		if bs.Done {
			return &bs
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch %s not done after %v: %+v", batch, timeout, bs.Counts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// baselineFingerprints runs the specs directly through the runner.
func baselineFingerprints(t *testing.T, specs []runner.Spec) []string {
	t.Helper()
	fps := make([]string, len(specs))
	for i, sp := range specs {
		out, err := runner.Run(sp, runner.Options{})
		if err != nil || out.Res.Err != nil {
			t.Fatalf("baseline %d: %v / %v", i, err, out.Res.Err)
		}
		fps[i] = fmt.Sprintf("%#x", out.Fingerprint)
	}
	return fps
}

// TestServiceEndToEnd drives the full loop over HTTP: submit, execute,
// verify fingerprints against direct runs, then resubmit and require every
// cell to come back from the result cache bit-identically.
func TestServiceEndToEnd(t *testing.T) {
	specs := testSpecs()
	want := baselineFingerprints(t, specs)

	s := newTestServer(t, t.TempDir(), nil)
	defer s.Close()
	s.Start()
	defer s.Drain(5 * time.Second)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code := getJSON(t, ts, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code := getJSON(t, ts, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}

	var sub SubmitResponse
	if code, apiErr := postJSON(t, ts, "/v1/batches", &SubmitRequest{Runs: specs}, &sub); code != http.StatusOK {
		t.Fatalf("submit: %d %v", code, apiErr)
	}
	if len(sub.Jobs) != len(specs) {
		t.Fatalf("submit acked %d jobs, want %d", len(sub.Jobs), len(specs))
	}
	bs := waitBatchDone(t, ts, sub.Batch, 30*time.Second)
	for _, js := range bs.Jobs {
		if js.State != StateDone {
			t.Fatalf("job %s: state %s (%s: %s)", js.ID, js.State, js.FailKind, js.FailError)
		}
		if js.Cached {
			t.Errorf("job %s: fresh run marked cached", js.ID)
		}
		if js.Fingerprint != want[js.Index] {
			t.Errorf("job %s: fingerprint %s, want %s", js.ID, js.Fingerprint, want[js.Index])
		}
		if js.Elapsed == 0 || len(js.Breakdown) == 0 {
			t.Errorf("job %s: missing elapsed/breakdown", js.ID)
		}
	}

	// Single-job endpoint agrees with the batch view.
	var js JobStatus
	if code := getJSON(t, ts, "/v1/jobs/"+bs.Jobs[0].ID, &js); code != http.StatusOK {
		t.Fatalf("job endpoint: %d", code)
	}
	if js.Fingerprint != bs.Jobs[0].Fingerprint {
		t.Fatalf("job endpoint fingerprint %s != batch %s", js.Fingerprint, bs.Jobs[0].Fingerprint)
	}

	// Resubmit: every cell must be served from the cache, bit-identical.
	var sub2 SubmitResponse
	if code, apiErr := postJSON(t, ts, "/v1/batches", &SubmitRequest{Runs: specs}, &sub2); code != http.StatusOK {
		t.Fatalf("resubmit: %d %v", code, apiErr)
	}
	if sub2.Batch == sub.Batch {
		t.Fatalf("resubmit reused batch id %s", sub.Batch)
	}
	bs2 := waitBatchDone(t, ts, sub2.Batch, 10*time.Second)
	for _, js := range bs2.Jobs {
		if js.State != StateDone || !js.Cached {
			t.Fatalf("resubmitted job %s: state=%s cached=%v, want done from cache", js.ID, js.State, js.Cached)
		}
		if js.Fingerprint != want[js.Index] {
			t.Fatalf("resubmitted job %s: fingerprint %s, want %s", js.ID, js.Fingerprint, want[js.Index])
		}
	}

	var st StatsResponse
	if code := getJSON(t, ts, "/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Done != int64(2*len(specs)) {
		t.Errorf("stats done=%d, want %d", st.Done, 2*len(specs))
	}
	if st.CacheHits != int64(len(specs)) {
		t.Errorf("stats cache_hits=%d, want %d", st.CacheHits, len(specs))
	}
	if st.HitRate <= 0 || st.HitRate >= 1 {
		t.Errorf("stats hit_rate=%g, want in (0,1)", st.HitRate)
	}
}

// TestAdmissionControl: batches beyond the queue bound are shed with a
// typed 429 carrying depth and limit; bad specs get a typed 400.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, t.TempDir(), func(c *Config) { c.MaxQueue = 2 })
	defer s.Close()
	// Workers deliberately not started: depth only grows.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := runner.Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 48}
	var sub SubmitResponse

	code, apiErr := postJSON(t, ts, "/v1/batches", &SubmitRequest{Runs: []runner.Spec{spec, spec, spec}}, &sub)
	if code != http.StatusTooManyRequests || apiErr.Kind != ErrQueueFull {
		t.Fatalf("oversized batch: %d %+v, want 429 %s", code, apiErr, ErrQueueFull)
	}
	if apiErr.QueueLimit != 2 {
		t.Fatalf("429 carried limit %d, want 2", apiErr.QueueLimit)
	}
	if code, _ := postJSON(t, ts, "/v1/batches", &SubmitRequest{Runs: []runner.Spec{spec, spec}}, &sub); code != http.StatusOK {
		t.Fatalf("fitting batch rejected: %d", code)
	}
	code, apiErr = postJSON(t, ts, "/v1/batches", &SubmitRequest{Runs: []runner.Spec{spec}}, &sub)
	if code != http.StatusTooManyRequests || apiErr.QueueDepth != 2 {
		t.Fatalf("full queue: %d %+v, want 429 at depth 2", code, apiErr)
	}

	bad := runner.Spec{App: "nope", Machine: "mp", Procs: 4}
	if code, apiErr = postJSON(t, ts, "/v1/batches", &SubmitRequest{Runs: []runner.Spec{bad}}, &sub); code != http.StatusBadRequest || apiErr.Kind != ErrBadSpec {
		t.Fatalf("bad spec: %d %+v, want 400 %s", code, apiErr, ErrBadSpec)
	}
}

// TestDrainRejectsAndReports: during drain, readyz flips to 503 and submits
// are refused with the typed draining error.
func TestDrainRejectsAndReports(t *testing.T) {
	s := newTestServer(t, t.TempDir(), nil)
	defer s.Close()
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := getJSON(t, ts, "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", code)
	}
	if code := getJSON(t, ts, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", code)
	}
	var sub SubmitResponse
	spec := runner.Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 48}
	code, apiErr := postJSON(t, ts, "/v1/batches", &SubmitRequest{Runs: []runner.Spec{spec}}, &sub)
	if code != http.StatusServiceUnavailable || apiErr.Kind != ErrDraining {
		t.Fatalf("submit while draining: %d %+v, want 503 %s", code, apiErr, ErrDraining)
	}
}

// submitDirect bypasses HTTP for supervisor-level tests.
func submitDirect(t *testing.T, s *Server, specs []runner.Spec) (uint64, []*job) {
	t.Helper()
	batch, jobs, err := s.q.submit(specs, 0)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return batch, jobs
}

func waitJobTerminal(t *testing.T, s *Server, id uint64, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		js, ok := s.q.jobStatus(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		if js.State == StateDone || js.State == StateFailed {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d still %s after %v", id, js.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRetryBackoffThenSuccess: host-level failures are retried with the
// attempt count persisted; a later success completes the job normally.
func TestRetryBackoffThenSuccess(t *testing.T) {
	s := newTestServer(t, t.TempDir(), func(c *Config) { c.Jobs = 1; c.MaxRetries = 3 })
	defer s.Close()
	fails := 2
	s.runJob = func(spec runner.Spec, opts runner.Options) (*runner.Outcome, error) {
		if fails > 0 {
			fails--
			return nil, fmt.Errorf("injected host failure")
		}
		return runner.Run(spec, opts)
	}
	_, jobs := submitDirect(t, s, testSpecs()[:1])
	s.Start()
	defer s.Drain(5 * time.Second)

	js := waitJobTerminal(t, s, jobs[0].id, 30*time.Second)
	if js.State != StateDone {
		t.Fatalf("job: %s (%s: %s)", js.State, js.FailKind, js.FailError)
	}
	if js.Attempts != 2 {
		t.Fatalf("attempts=%d, want 2", js.Attempts)
	}
	if got := s.retries.Load(); got != 2 {
		t.Fatalf("retries counter=%d, want 2", got)
	}
}

// TestBoundedRetriesTerminalFailure: a job that fails every attempt settles
// into a typed terminal record instead of retrying forever.
func TestBoundedRetriesTerminalFailure(t *testing.T) {
	s := newTestServer(t, t.TempDir(), func(c *Config) { c.Jobs = 1; c.MaxRetries = 2 })
	defer s.Close()
	s.runJob = func(spec runner.Spec, opts runner.Options) (*runner.Outcome, error) {
		return nil, fmt.Errorf("injected persistent failure")
	}
	_, jobs := submitDirect(t, s, testSpecs()[:1])
	s.Start()
	defer s.Drain(5 * time.Second)

	js := waitJobTerminal(t, s, jobs[0].id, 30*time.Second)
	if js.State != StateFailed || js.FailKind != "harness" {
		t.Fatalf("got %s/%s, want failed/harness", js.State, js.FailKind)
	}
	if !strings.Contains(js.FailError, "injected persistent failure") {
		t.Fatalf("terminal record lost the cause: %q", js.FailError)
	}
	if js.Attempts != 2 {
		t.Fatalf("attempts=%d, want 2 (MaxRetries)", js.Attempts)
	}
}

// TestPanicIsolation: a panicking job becomes that job's typed failure; the
// daemon keeps serving other jobs.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, t.TempDir(), func(c *Config) { c.Jobs = 1; c.MaxRetries = 1 })
	defer s.Close()
	s.runJob = func(spec runner.Spec, opts runner.Options) (*runner.Outcome, error) {
		if spec.App == "gauss" {
			panic("kaboom in the simulator")
		}
		return runner.Run(spec, opts)
	}
	_, jobs := submitDirect(t, s, []runner.Spec{
		{App: "gauss", Machine: "mp", Procs: 4, Size: 48},
		{App: "em3d", Machine: "mp", Procs: 4, Size: 40, Iters: 3},
	})
	s.Start()
	defer s.Drain(5 * time.Second)

	js := waitJobTerminal(t, s, jobs[0].id, 30*time.Second)
	if js.State != StateFailed || js.FailKind != "panic" {
		t.Fatalf("panicking job: %s/%s, want failed/panic", js.State, js.FailKind)
	}
	if !strings.Contains(js.FailError, "kaboom") {
		t.Fatalf("panic value lost: %q", js.FailError)
	}
	if s.panics.Load() == 0 {
		t.Fatal("panic counter not bumped")
	}
	// The survivor completes.
	js2 := waitJobTerminal(t, s, jobs[1].id, 30*time.Second)
	if js2.State != StateDone {
		t.Fatalf("survivor job: %s", js2.State)
	}
}

// TestDeadlinePreemptionResumes is the acceptance-criteria test: a
// preempted job checkpoints, requeues, and its next attempt resumes through
// the checkpoint (replay-verified at that exact cycle — ResumedFrom proves
// it did not silently restart from scratch), finishing with the same
// fingerprint as an uninterrupted run.
func TestDeadlinePreemptionResumes(t *testing.T) {
	spec := runner.Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 48}
	base, err := runner.Run(spec, runner.Options{})
	if err != nil || base.Res.Err != nil {
		t.Fatalf("baseline: %v / %v", err, base.Res.Err)
	}

	s := newTestServer(t, t.TempDir(), func(c *Config) { c.Jobs = 1 })
	defer s.Close()
	preempts := 1
	s.runJob = func(sp runner.Spec, opts runner.Options) (*runner.Outcome, error) {
		// Deterministic stand-in for the wall-clock deadline timer: fire
		// the same interrupt the timer would, before the run starts, so the
		// first attempt preempts at its first quantum boundary.
		if preempts > 0 && opts.Interrupt != nil {
			preempts--
			opts.Interrupt.Fire()
		}
		return runner.Run(sp, opts)
	}
	_, jobs := submitDirect(t, s, []runner.Spec{spec})
	s.Start()
	defer s.Drain(5 * time.Second)

	js := waitJobTerminal(t, s, jobs[0].id, 30*time.Second)
	if js.State != StateDone {
		t.Fatalf("job: %s (%s: %s)", js.State, js.FailKind, js.FailError)
	}
	if js.Preemptions != 1 {
		t.Fatalf("preemptions=%d, want 1", js.Preemptions)
	}
	if js.ResumedFrom <= 0 {
		t.Fatalf("ResumedFrom=%d: resumed attempt did not verify through the checkpoint", js.ResumedFrom)
	}
	if js.ResumedFrom >= int64(base.Res.Elapsed) {
		t.Fatalf("ResumedFrom=%d past run end %d", js.ResumedFrom, base.Res.Elapsed)
	}
	if want := fmt.Sprintf("%#x", base.Fingerprint); js.Fingerprint != want {
		t.Fatalf("fingerprint %s after preempt+resume, want %s", js.Fingerprint, want)
	}
	if s.preemptions.Load() != 1 {
		t.Fatalf("preemption counter=%d, want 1", s.preemptions.Load())
	}
	// Finished jobs have their checkpoint directory cleaned up.
	if _, err := os.Stat(s.ckptDir(jobs[0])); !os.IsNotExist(err) {
		t.Fatalf("checkpoint dir survived completion: %v", err)
	}
}

// TestPreemptionBudget: a job that can never finish inside its deadline
// fails terminally with kind "deadline" instead of cycling forever.
func TestPreemptionBudget(t *testing.T) {
	s := newTestServer(t, t.TempDir(), func(c *Config) { c.Jobs = 1; c.MaxPreempts = 2 })
	defer s.Close()
	s.runJob = func(sp runner.Spec, opts runner.Options) (*runner.Outcome, error) {
		if opts.Interrupt != nil {
			opts.Interrupt.Fire() // every attempt preempts immediately
		}
		return runner.Run(sp, opts)
	}
	_, jobs := submitDirect(t, s, testSpecs()[:1])
	s.Start()
	defer s.Drain(5 * time.Second)

	js := waitJobTerminal(t, s, jobs[0].id, 30*time.Second)
	if js.State != StateFailed || js.FailKind != "deadline" {
		t.Fatalf("got %s/%s, want failed/deadline", js.State, js.FailKind)
	}
}

// TestAbortedRunIsAResult: a deterministic application abort (transport
// retry starvation under heavy injected faults) completes as data — it is
// recorded, cached, and never retried, because rerunning a deterministic
// simulator on the same spec reproduces the same abort.
func TestAbortedRunIsAResult(t *testing.T) {
	// Drop almost every packet with a tiny retry budget: the reliable
	// transport starves deterministically.
	spec := runner.Spec{App: "em3d", Machine: "mp", Procs: 4, Size: 40, Iters: 3,
		Faults: &cost.FaultsConfig{Seed: 1, DropRate: 0.95, MaxRetries: 2}}
	base, err := runner.Run(spec, runner.Options{})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if base.Res.Err == nil {
		t.Fatal("baseline run did not abort; fault config too gentle for this test")
	}

	s := newTestServer(t, t.TempDir(), func(c *Config) { c.Jobs = 1; c.MaxRetries = 1 })
	defer s.Close()
	attempts := 0
	s.runJob = func(sp runner.Spec, opts runner.Options) (*runner.Outcome, error) {
		attempts++
		return runner.Run(sp, opts)
	}
	_, jobs := submitDirect(t, s, []runner.Spec{spec})
	s.Start()
	defer s.Drain(5 * time.Second)

	js := waitJobTerminal(t, s, jobs[0].id, 30*time.Second)
	if js.State != StateDone {
		t.Fatalf("aborted run: state %s (%s: %s), want done-with-error", js.State, js.FailKind, js.FailError)
	}
	if !strings.Contains(js.Error, base.Res.Err.Error()) {
		t.Fatalf("job error %q does not carry the abort %q", js.Error, base.Res.Err)
	}
	if attempts != 1 {
		t.Fatalf("deterministic abort was retried: %d attempts", attempts)
	}

	// Resubmitting serves the abort from the cache without a rerun.
	_, jobs2 := submitDirect(t, s, []runner.Spec{spec})
	js2 := waitJobTerminal(t, s, jobs2[0].id, 30*time.Second)
	if js2.State != StateDone || !js2.Cached || js2.Error != js.Error {
		t.Fatalf("cached abort: state=%s cached=%v err=%q", js2.State, js2.Cached, js2.Error)
	}
	if attempts != 1 {
		t.Fatalf("cached abort reran the job: %d attempts", attempts)
	}
}

// TestDrainRacingSubmits: a drain firing while batch submits are mid-flight
// must leave every acked batch durable (ack-and-park) or refuse it with a
// typed 503 — never ack-and-lose. Workers are deliberately not started, so
// an acked job can only survive via the WAL.
func TestDrainRacingSubmits(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir, nil)
	ts := httptest.NewServer(s.Handler())

	const G = 16
	type outcome struct {
		code int
		kind string
		jobs []string
	}
	results := make([]outcome, G)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			spec := runner.Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 10 + g}
			var sub SubmitResponse
			code, apiErr := postJSON(t, ts, "/v1/batches", &SubmitRequest{Runs: []runner.Spec{spec}}, &sub)
			o := outcome{code: code}
			if apiErr != nil {
				o.kind = apiErr.Kind
			}
			for _, j := range sub.Jobs {
				o.jobs = append(o.jobs, j.ID)
			}
			results[g] = o
		}(g)
	}
	close(start) // all submits in flight while the drain below races them
	time.Sleep(2 * time.Millisecond)
	drainErr := s.Drain(5 * time.Second)
	wg.Wait()
	ts.Close()
	if drainErr != nil {
		t.Fatalf("drain: %v", drainErr)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The next process must recover every acked job as parked work.
	s2 := newTestServer(t, dir, nil)
	defer s2.Close()
	acked := 0
	for g, o := range results {
		switch o.code {
		case http.StatusOK:
			acked++
			for _, id := range o.jobs {
				jid, ok := parseID(id, "j")
				if !ok {
					t.Fatalf("goroutine %d: malformed acked job id %q", g, id)
				}
				js, found := s2.q.jobStatus(jid)
				if !found {
					t.Fatalf("goroutine %d: acked job %s lost across drain+restart", g, id)
				}
				if js.State != StatePending {
					t.Fatalf("goroutine %d: acked job %s recovered as %s, want pending", g, id, js.State)
				}
			}
		case http.StatusServiceUnavailable:
			if o.kind != ErrDraining {
				t.Fatalf("goroutine %d: 503 with kind %q, want %q", g, o.kind, ErrDraining)
			}
		default:
			t.Fatalf("goroutine %d: status %d (%s), want 200 or 503", g, o.code, o.kind)
		}
	}
	t.Logf("drain race: %d/%d submits acked and parked, rest typed-503", acked, G)
}

// enospcFS wraps the host filesystem with a switchable disk-full condition:
// while tripped, every file sync fails with ENOSPC (data may have landed;
// the fsync is the lie detector). This models a disk filling up mid-serve
// more directly than a probabilistic plan.
type enospcFS struct {
	vfs.FS
	full atomic.Bool
}

func (e *enospcFS) Create(path string) (vfs.File, error) {
	f, err := e.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return &enospcFile{File: f, fs: e}, nil
}

func (e *enospcFS) OpenAppend(path string) (vfs.File, error) {
	f, err := e.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &enospcFile{File: f, fs: e}, nil
}

type enospcFile struct {
	vfs.File
	fs *enospcFS
}

func (f *enospcFile) Sync() error {
	if f.fs.full.Load() {
		return syscall.ENOSPC
	}
	return f.File.Sync()
}

// TestENOSPCDegradation: disk-full flips admission to typed 507s with the
// queue paused (never a false ack), and freeing space restores service via
// the submit-time probe — no restart required.
func TestENOSPCDegradation(t *testing.T) {
	fs := &enospcFS{FS: vfs.OS{}}
	s := newTestServer(t, t.TempDir(), func(c *Config) { c.FS = fs })
	defer s.Close()
	// Workers not started: this test is about admission, not execution.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := runner.Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 48}
	var sub SubmitResponse

	fs.full.Store(true)
	code, apiErr := postJSON(t, ts, "/v1/batches", &SubmitRequest{Runs: []runner.Spec{spec}}, &sub)
	if code != http.StatusInsufficientStorage || apiErr.Kind != ErrNoSpace {
		t.Fatalf("submit on full disk: %d %+v, want 507 %s", code, apiErr, ErrNoSpace)
	}
	var st StatsResponse
	if getJSON(t, ts, "/stats", &st); !st.StoragePaused || st.StorageErrs == 0 {
		t.Fatalf("stats after ENOSPC: paused=%v errs=%d", st.StoragePaused, st.StorageErrs)
	}
	if st.Pending != 0 {
		t.Fatalf("failed submit left %d pending jobs", st.Pending)
	}
	// Still paused: the probe keeps failing while the disk is full.
	if code, apiErr = postJSON(t, ts, "/v1/batches", &SubmitRequest{Runs: []runner.Spec{spec}}, &sub); code != http.StatusInsufficientStorage {
		t.Fatalf("second submit on full disk: %d %+v", code, apiErr)
	}

	fs.full.Store(false) // space freed
	if code, apiErr = postJSON(t, ts, "/v1/batches", &SubmitRequest{Runs: []runner.Spec{spec}}, &sub); code != http.StatusOK {
		t.Fatalf("submit after space freed: %d %+v, want 200", code, apiErr)
	}
	var st2 StatsResponse
	if getJSON(t, ts, "/stats", &st2); st2.StoragePaused || st2.Pending != 1 {
		t.Fatalf("stats after recovery: paused=%v pending=%d, want unpaused/1", st2.StoragePaused, st2.Pending)
	}
}
