package serve

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/snapshot"
)

// The write-ahead log is the queue's durability layer. Every state change a
// restart must survive — a job submitted, an attempt failed, a preemption
// checkpoint taken, a job finished — is appended and fsynced before the
// change is acknowledged anywhere else. Recovery replays the log: a job
// with a submit record but no terminal record is pending again (a job that
// was mid-run when the process died simply reruns — results are
// deterministic and the cache makes re-completion idempotent).
//
// The format reuses the snapshot package's canonical encoder: a fixed
// header, then self-checksummed records. A torn tail — the one corruption a
// kill -9 can produce, since records are synced in order — is detected by
// its checksum and truncated away on open.

const (
	walMagic           = "WWTWAL\x00"
	walVersion  uint32 = 1
	walFileName        = "queue.wal"
)

type recType uint8

const (
	recSubmit  recType = 1 // job accepted: batch, index, key, spec JSON, deadline
	recDone    recType = 2 // job completed; result lives in the cache under Key
	recFail    recType = 3 // job terminally failed: kind + last error
	recAttempt recType = 4 // one attempt failed; Attempts is the new count
	recCkpt    recType = 5 // preemption checkpoint taken: cycle + path
)

// Record is one durable queue event. Which fields are meaningful depends on
// Type; encoding is canonical per type.
type Record struct {
	Type recType
	Job  uint64

	// recSubmit
	Batch      uint64
	Index      int
	Key        uint64
	Spec       []byte // runner.Spec as JSON
	DeadlineMS int64

	// recDone
	Cached bool

	// recFail / recAttempt
	Attempts int
	Kind     string
	Err      string

	// recCkpt
	Cycle int64
	Path  string
}

func (r *Record) payload() []byte {
	var e snapshot.Enc
	e.U64(r.Job)
	switch r.Type {
	case recSubmit:
		e.U64(r.Batch)
		e.I64(int64(r.Index))
		e.U64(r.Key)
		e.Blob(r.Spec)
		e.I64(r.DeadlineMS)
	case recDone:
		e.U64(r.Key)
		e.Bool(r.Cached)
	case recFail:
		e.I64(int64(r.Attempts))
		e.Str(r.Kind)
		e.Str(r.Err)
	case recAttempt:
		e.I64(int64(r.Attempts))
	case recCkpt:
		e.I64(r.Cycle)
		e.Str(r.Path)
	}
	return e.Bytes()
}

func decodeRecord(t recType, payload []byte) (Record, error) {
	d := snapshot.NewDec(payload)
	r := Record{Type: t}
	r.Job = d.U64()
	switch t {
	case recSubmit:
		r.Batch = d.U64()
		r.Index = int(d.I64())
		r.Key = d.U64()
		r.Spec = d.Blob()
		r.DeadlineMS = d.I64()
	case recDone:
		r.Key = d.U64()
		r.Cached = d.Bool()
	case recFail:
		r.Attempts = int(d.I64())
		r.Kind = d.Str()
		r.Err = d.Str()
	case recAttempt:
		r.Attempts = int(d.I64())
	case recCkpt:
		r.Cycle = d.I64()
		r.Path = d.Str()
	default:
		return r, fmt.Errorf("wal: unknown record type %d", t)
	}
	if d.Err != nil {
		return r, fmt.Errorf("wal: record type %d: %w", t, d.Err)
	}
	if d.Remaining() != 0 {
		return r, fmt.Errorf("wal: record type %d: %d trailing payload bytes", t, d.Remaining())
	}
	return r, nil
}

// encodeRecord frames one record: type byte, length-prefixed payload, then
// an FNV-1a checksum over both, so replay can tell a torn append from an
// intact record.
func encodeRecord(r *Record) []byte {
	var e snapshot.Enc
	e.U8(uint8(r.Type))
	e.Blob(r.payload())
	e.U64(snapshot.Hash(e.Bytes()))
	return e.Bytes()
}

// WAL is an append-only, fsynced record log.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records int64
}

// OpenWAL opens (or creates) the log at path, replays every intact record,
// and truncates away a torn tail. It returns the replayed records in append
// order; tornBytes reports how much of a torn tail was discarded (0 for a
// clean log).
func OpenWAL(path string) (w *WAL, recs []Record, tornBytes int, err error) {
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, 0, err
	}

	goodLen := len(walMagic) + 4
	if len(b) == 0 {
		var e snapshot.Enc
		e.U32(walVersion)
		if err := os.WriteFile(path, append([]byte(walMagic), e.Bytes()...), 0o644); err != nil {
			return nil, nil, 0, err
		}
	} else {
		if len(b) < goodLen || string(b[:len(walMagic)]) != walMagic {
			return nil, nil, 0, fmt.Errorf("wal: %s is not a queue log (bad magic)", path)
		}
		hd := snapshot.NewDec(b[len(walMagic):])
		if v := hd.U32(); v != walVersion {
			return nil, nil, 0, fmt.Errorf("wal: %s: format version %d (this build reads %d)", path, v, walVersion)
		}
		body := b[goodLen:]
		d := snapshot.NewDec(body)
		for d.Remaining() > 0 {
			t := d.U8()
			payload := d.Blob()
			sum := d.U64()
			if d.Err != nil {
				break // torn tail: record cut mid-field
			}
			var ck snapshot.Enc
			ck.U8(t)
			ck.Blob(payload)
			if snapshot.Hash(ck.Bytes()) != sum {
				break // torn tail: record framed but contents incomplete
			}
			rec, derr := decodeRecord(recType(t), payload)
			if derr != nil {
				break
			}
			recs = append(recs, rec)
			goodLen = len(walMagic) + 4 + (len(body) - d.Remaining())
		}
		tornBytes = len(b) - goodLen
		if tornBytes > 0 {
			if err := os.Truncate(path, int64(goodLen)); err != nil {
				return nil, nil, tornBytes, err
			}
		}
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, tornBytes, err
	}
	return &WAL{f: f, path: path, records: int64(len(recs))}, recs, tornBytes, nil
}

// Append durably writes recs as one unit: all records hit the file in order
// and a single fsync covers them. On return the records survive kill -9.
func (w *WAL) Append(recs ...Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var buf []byte
	for i := range recs {
		buf = append(buf, encodeRecord(&recs[i])...)
	}
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.records += int64(len(recs))
	return nil
}

// Records returns the number of records written to or replayed from the
// log since open (a /stats gauge).
func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Rewrite atomically replaces the log's contents with recs — compaction
// after recovery collapses a long history (attempt records, superseded
// checkpoints) into the minimal state a future recovery needs.
func (w *WAL) Rewrite(recs []Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var e snapshot.Enc
	buf := append([]byte(nil), walMagic...)
	e.U32(walVersion)
	buf = append(buf, e.Bytes()...)
	for i := range recs {
		buf = append(buf, encodeRecord(&recs[i])...)
	}
	if err := snapshot.AtomicWriteFile(w.path, buf); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f.Close()
	w.f = f
	w.records = int64(len(recs))
	return w.f.Sync()
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
