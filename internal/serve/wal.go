package serve

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/snapshot"
	"repro/internal/vfs"
)

// The write-ahead log is the queue's durability layer. Every state change a
// restart must survive — a job submitted, an attempt failed, a preemption
// checkpoint taken, a job finished — is appended and fsynced before the
// change is acknowledged anywhere else. Recovery replays the log: a job
// with a submit record but no terminal record is pending again (a job that
// was mid-run when the process died simply reruns — results are
// deterministic and the cache makes re-completion idempotent).
//
// The log is segmented: records append to wal/wal.000001, wal/wal.000002, …
// with a rotation threshold, so compaction never rewrites unbounded history
// in place. Each segment is independently recoverable: a fixed header, then
// self-checksummed records. A torn tail on the live (last) segment — the
// one corruption a kill -9 can produce, since records are synced in order —
// is truncated away on open. A corrupt record anywhere else (bit rot, a
// torn tail on a non-live segment, a failed fsync whose partial bytes
// landed) is quarantined to a <segment>.quarantine file and skipped, so
// good records after it are never silently discarded. Compaction
// (recovery's Compact) writes the minimal live record set into a fresh
// segment and deletes every fully-compacted predecessor.
//
// The single-file model from the pre-rotation service (queue.wal in the
// data directory root) is read as a phantom segment ordered before all
// numbered segments and deleted by the first compaction.

const (
	walMagic            = "WWTWAL\x00"
	walVersion   uint32 = 1
	walDirName          = "wal"
	walSegPrefix        = "wal."
	legacyWAL           = "queue.wal" // pre-rotation single-file log

	// DefaultSegmentBytes is the rotation threshold when Config leaves it
	// unset: big enough that short sweeps stay in one segment, small enough
	// that long ones never rewrite unbounded history on recovery.
	DefaultSegmentBytes = 1 << 20
)

type recType uint8

const (
	recSubmit  recType = 1 // job accepted: batch, index, key, spec JSON, deadline
	recDone    recType = 2 // job completed; result lives in the cache under Key
	recFail    recType = 3 // job terminally failed: kind + last error
	recAttempt recType = 4 // one attempt failed; Attempts is the new count
	recCkpt    recType = 5 // preemption checkpoint taken: cycle + path
)

// Record is one durable queue event. Which fields are meaningful depends on
// Type; encoding is canonical per type.
type Record struct {
	Type recType
	Job  uint64

	// recSubmit
	Batch      uint64
	Index      int
	Key        uint64
	Spec       []byte // runner.Spec as JSON
	DeadlineMS int64

	// recDone
	Cached bool

	// recFail / recAttempt
	Attempts int
	Kind     string
	Err      string

	// recCkpt
	Cycle int64
	Path  string
}

func (r *Record) payload() []byte {
	var e snapshot.Enc
	e.U64(r.Job)
	switch r.Type {
	case recSubmit:
		e.U64(r.Batch)
		e.I64(int64(r.Index))
		e.U64(r.Key)
		e.Blob(r.Spec)
		e.I64(r.DeadlineMS)
	case recDone:
		e.U64(r.Key)
		e.Bool(r.Cached)
	case recFail:
		e.I64(int64(r.Attempts))
		e.Str(r.Kind)
		e.Str(r.Err)
	case recAttempt:
		e.I64(int64(r.Attempts))
	case recCkpt:
		e.I64(r.Cycle)
		e.Str(r.Path)
	}
	return e.Bytes()
}

func decodeRecord(t recType, payload []byte) (Record, error) {
	d := snapshot.NewDec(payload)
	r := Record{Type: t}
	r.Job = d.U64()
	switch t {
	case recSubmit:
		r.Batch = d.U64()
		r.Index = int(d.I64())
		r.Key = d.U64()
		r.Spec = d.Blob()
		r.DeadlineMS = d.I64()
	case recDone:
		r.Key = d.U64()
		r.Cached = d.Bool()
	case recFail:
		r.Attempts = int(d.I64())
		r.Kind = d.Str()
		r.Err = d.Str()
	case recAttempt:
		r.Attempts = int(d.I64())
	case recCkpt:
		r.Cycle = d.I64()
		r.Path = d.Str()
	default:
		return r, fmt.Errorf("wal: unknown record type %d", t)
	}
	if d.Err != nil {
		return r, fmt.Errorf("wal: record type %d: %w", t, d.Err)
	}
	if d.Remaining() != 0 {
		return r, fmt.Errorf("wal: record type %d: %d trailing payload bytes", t, d.Remaining())
	}
	return r, nil
}

// encodeRecord frames one record: type byte, length-prefixed payload, then
// an FNV-1a checksum over both, so replay can tell a torn append from an
// intact record.
func encodeRecord(r *Record) []byte {
	var e snapshot.Enc
	e.U8(uint8(r.Type))
	e.Blob(r.payload())
	e.U64(snapshot.Hash(e.Bytes()))
	return e.Bytes()
}

func segHeader() []byte {
	var e snapshot.Enc
	e.U32(walVersion)
	return append([]byte(walMagic), e.Bytes()...)
}

// RecoveryReport summarizes what OpenWAL found and repaired.
type RecoveryReport struct {
	Segments    int  // segment files scanned (excluding the legacy file)
	TornBytes   int  // bytes truncated off the live segment's tail
	Quarantined int  // corrupt records/regions moved to *.quarantine files
	Legacy      bool // a pre-rotation queue.wal was read (deleted on Compact)
}

// WAL is an append-only, fsynced, segment-rotated record log.
type WAL struct {
	mu       sync.Mutex
	fs       vfs.FS
	dir      string // data dir; segments live in dir/wal
	segBytes int64  // rotation threshold
	seg      int    // current (live) segment index
	f        vfs.File
	segLen   int64 // known-durable byte length of the live segment
	broken   bool  // last write/sync failed; reset before the next append

	records     int64
	segCount    int
	quarantined int64
}

func (w *WAL) walDir() string { return filepath.Join(w.dir, walDirName) }

func (w *WAL) segPath(i int) string {
	return filepath.Join(w.walDir(), fmt.Sprintf("%s%06d", walSegPrefix, i))
}

// parseSegName returns the index of a wal.NNNNNN segment file name, or -1.
func parseSegName(name string) int {
	if !strings.HasPrefix(name, walSegPrefix) || len(name) != len(walSegPrefix)+6 {
		return -1
	}
	n, err := strconv.Atoi(name[len(walSegPrefix):])
	if err != nil || n <= 0 {
		return -1
	}
	return n
}

// scanSegment replays one segment image. Corrupt records with intact
// framing are reported as quarantine ranges and skipped; a tail whose
// framing runs off the end is reported in torn (offset where it starts).
// goodLen is the end of the last fully-framed record.
func scanSegment(b []byte) (recs []Record, goodLen int, quarantine [][2]int, torn bool, err error) {
	hdr := len(segHeader())
	if len(b) < hdr || string(b[:len(walMagic)]) != walMagic {
		return nil, 0, nil, false, fmt.Errorf("wal: bad segment magic")
	}
	hd := snapshot.NewDec(b[len(walMagic):])
	if v := hd.U32(); v != walVersion {
		return nil, 0, nil, false, fmt.Errorf("wal: segment format version %d (this build reads %d)", v, walVersion)
	}
	body := b[hdr:]
	d := snapshot.NewDec(body)
	off := hdr
	for d.Remaining() > 0 {
		t := d.U8()
		payload := d.Blob()
		sum := d.U64()
		if d.Err != nil {
			// Framing ran off the end: a torn tail.
			return recs, off, quarantine, true, nil
		}
		end := hdr + (len(body) - d.Remaining())
		var ck snapshot.Enc
		ck.U8(t)
		ck.Blob(payload)
		rec, derr := decodeRecord(recType(t), payload)
		if snapshot.Hash(ck.Bytes()) != sum || derr != nil {
			// The frame is intact but the contents are rotten: quarantine
			// this record and keep scanning — good records after it must
			// not be discarded.
			quarantine = append(quarantine, [2]int{off, end})
		} else {
			recs = append(recs, rec)
		}
		off = end
	}
	return recs, off, quarantine, false, nil
}

// OpenWAL opens (or creates) the segmented log under dir/wal, replays every
// intact record across all segments in order (including a legacy
// single-file queue.wal, ordered first), quarantines corrupt records, and
// truncates a torn tail off the live segment. It returns the replayed
// records in append order plus a report of repairs.
func OpenWAL(fsys vfs.FS, dir string, segBytes int64) (w *WAL, recs []Record, rep RecoveryReport, err error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	w = &WAL{fs: fsys, dir: dir, segBytes: segBytes}
	if err := fsys.MkdirAll(w.walDir(), 0o755); err != nil {
		return nil, nil, rep, err
	}

	// The legacy single-file log replays before every numbered segment.
	legacy := filepath.Join(dir, legacyWAL)
	if b, rerr := fsys.ReadFile(legacy); rerr == nil {
		rep.Legacy = true
		lr, goodLen, quarantine, torn, serr := scanSegment(b)
		if serr != nil {
			return nil, nil, rep, fmt.Errorf("wal: %s: %w", legacy, serr)
		}
		if torn {
			// Not the live segment: nothing appends here again, so the torn
			// tail is quarantined rather than truncated.
			quarantine = append(quarantine, [2]int{goodLen, len(b)})
		}
		rep.Quarantined += w.quarantineRanges(legacy, b, quarantine)
		recs = append(recs, lr...)
	} else if !vfs.IsNotExist(rerr) {
		return nil, nil, rep, rerr
	}

	names, err := fsys.ReadDir(w.walDir())
	if err != nil {
		return nil, nil, rep, err
	}
	var segs []int
	for _, name := range names {
		if n := parseSegName(name); n > 0 {
			segs = append(segs, n)
		}
	}

	// A crash during segment creation (rotation or compaction) can leave a
	// trailing segment holding only a partial header. It contains no records
	// by construction — the header is synced before any record is written —
	// so drop it rather than mistaking it for a foreign file.
	for len(segs) > 0 {
		n := segs[len(segs)-1]
		b, rerr := fsys.ReadFile(w.segPath(n))
		if rerr != nil {
			return nil, nil, rep, rerr
		}
		hdr := segHeader()
		if len(b) < len(hdr) && string(b) == string(hdr[:len(b)]) {
			if rerr := fsys.Remove(w.segPath(n)); rerr != nil {
				return nil, nil, rep, rerr
			}
			segs = segs[:len(segs)-1]
			continue
		}
		break
	}

	for i, n := range segs {
		path := w.segPath(n)
		b, rerr := fsys.ReadFile(path)
		if rerr != nil {
			return nil, nil, rep, rerr
		}
		sr, goodLen, quarantine, torn, serr := scanSegment(b)
		if serr != nil {
			return nil, nil, rep, fmt.Errorf("wal: %s: %w", path, serr)
		}
		live := i == len(segs)-1
		if torn {
			if live {
				// A kill -9 mid-append on the live segment: truncate the
				// torn bytes so appends continue from a clean tail.
				if terr := fsys.Truncate(path, int64(goodLen)); terr != nil {
					return nil, nil, rep, terr
				}
				rep.TornBytes += len(b) - goodLen
				b = b[:goodLen]
			} else {
				quarantine = append(quarantine, [2]int{goodLen, len(b)})
			}
		}
		rep.Quarantined += w.quarantineRanges(path, b, quarantine)
		recs = append(recs, sr...)
		if live {
			w.seg = n
			w.segLen = int64(goodLen)
		}
	}
	rep.Segments = len(segs)
	w.segCount = len(segs)

	if len(segs) == 0 {
		if err := w.createSegment(1); err != nil {
			return nil, nil, rep, err
		}
	} else {
		f, oerr := fsys.OpenAppend(w.segPath(w.seg))
		if oerr != nil {
			return nil, nil, rep, oerr
		}
		w.f = f
	}
	w.records = int64(len(recs))
	w.quarantined = int64(rep.Quarantined)
	return w, recs, rep, nil
}

// quarantineRanges copies corrupt byte ranges of a segment to a sibling
// .quarantine file (evidence for the operator, out of the replay path) and
// returns how many ranges there were. Best-effort: quarantine must never
// turn a readable log into an open error.
func (w *WAL) quarantineRanges(path string, b []byte, ranges [][2]int) int {
	if len(ranges) == 0 {
		return 0
	}
	var blob []byte
	for _, r := range ranges {
		if r[0] < r[1] && r[1] <= len(b) {
			blob = append(blob, b[r[0]:r[1]]...)
		}
	}
	w.fs.WriteFile(path+".quarantine", blob, 0o644)
	return len(ranges)
}

// createSegment makes segment i the live segment: header written and
// synced, directory synced so the file itself survives a crash, handle kept
// open for appends.
func (w *WAL) createSegment(i int) error {
	path := w.segPath(i)
	f, err := w.fs.Create(path)
	if err != nil {
		return err
	}
	hdr := segHeader()
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := w.fs.SyncDir(w.walDir()); err != nil {
		f.Close()
		return err
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f = f
	w.seg = i
	w.segLen = int64(len(hdr))
	w.segCount++
	w.broken = false
	return nil
}

// reset drops any bytes past the known-durable length of the live segment —
// the repair path after a failed or torn append, so a half-written record
// never precedes a good one on disk.
func (w *WAL) reset() error {
	if err := w.fs.Truncate(w.segPath(w.seg), w.segLen); err != nil {
		return err
	}
	w.broken = false
	return nil
}

// Append durably writes recs as one unit: all records hit the live segment
// in order and a single fsync covers them. On return the records survive
// kill -9. On error nothing is considered durable: the segment is repaired
// (truncated back, or abandoned for a fresh one) before the next append.
func (w *WAL) Append(recs ...Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		if err := w.reset(); err != nil {
			// Cannot repair in place (the truncate itself failed): abandon
			// the segment; its garbage tail is checksummed away on recovery.
			if cerr := w.createSegment(w.seg + 1); cerr != nil {
				return cerr
			}
		}
	}
	if w.segLen >= w.segBytes {
		if err := w.rotate(); err != nil {
			// Rotation failure degrades to appending past the threshold on
			// the current segment rather than losing the record.
			if w.broken {
				return err
			}
		}
	}
	var buf []byte
	for i := range recs {
		buf = append(buf, encodeRecord(&recs[i])...)
	}
	if _, err := w.f.Write(buf); err != nil {
		w.broken = true
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.broken = true
		return err
	}
	w.segLen += int64(len(buf))
	w.records += int64(len(recs))
	return nil
}

// rotate seals the live segment and opens the next one. The new segment is
// durable (file and directory synced) before the old handle is released, so
// a crash between the two leaves both readable.
func (w *WAL) rotate() error {
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			w.broken = true
			return err
		}
	}
	return w.createSegment(w.seg + 1)
}

// Probe checks whether durable writes work again — the admission-unpause
// test after an ENOSPC. It repairs a broken tail if needed and fsyncs the
// live segment without adding records.
func (w *WAL) Probe() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		if err := w.reset(); err != nil {
			return err
		}
	}
	return w.f.Sync()
}

// Records returns the number of records written to or replayed from the
// log since open (a /stats gauge).
func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Segments returns the number of live segment files.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segCount
}

// Quarantined returns the number of corrupt records quarantined at open.
func (w *WAL) Quarantined() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.quarantined
}

// Compact writes recs — the minimal state a future recovery needs — into a
// fresh segment and deletes every fully-compacted predecessor (and the
// legacy single-file log). The new segment is durable before anything is
// deleted, so a crash at any point leaves a replayable set: old segments
// plus a partial new one replay to the same job table, because a compacted
// segment's records supersede record-for-record what the old ones held.
func (w *WAL) Compact(recs []Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	oldSeg := w.seg
	oldLen := w.segLen
	oldCount := w.segCount
	if err := w.createSegment(oldSeg + 1); err != nil {
		// The live segment is untouched; keep appending to it.
		w.seg, w.segLen, w.segCount = oldSeg, oldLen, oldCount
		return err
	}
	w.segCount = 1 // predecessors are deleted below
	var buf []byte
	for i := range recs {
		buf = append(buf, encodeRecord(&recs[i])...)
	}
	if len(buf) > 0 {
		if _, err := w.f.Write(buf); err != nil {
			w.broken = true
			return err
		}
		if err := w.f.Sync(); err != nil {
			w.broken = true
			return err
		}
		w.segLen += int64(len(buf))
	}
	w.records = int64(len(recs))

	// The compacted image is durable; everything older is now dead weight.
	for i := 1; i <= oldSeg; i++ {
		w.fs.Remove(w.segPath(i))
		w.fs.Remove(w.segPath(i) + ".quarantine")
	}
	w.fs.Remove(filepath.Join(w.dir, legacyWAL))
	w.fs.Remove(filepath.Join(w.dir, legacyWAL) + ".quarantine")
	w.fs.SyncDir(w.walDir())
	return nil
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
