package serve

import (
	"fmt"
	"path/filepath"
	"sync/atomic"

	"repro/internal/snapshot"
	"repro/internal/vfs"
)

// The result cache is content-addressed: a completed cell is stored in one
// file named by its canonical spec fingerprint (runner.Spec.CacheKey). The
// simulator is deterministic, so the key fully identifies the result —
// resubmitting a spec returns the stored record, bit-identical to a fresh
// run, marked as a cache hit. Files are checksummed and written atomically;
// a corrupt or torn entry decodes to a typed error, is quarantined to a
// sibling *.quarantine file (preserving the evidence for the operator), and
// is recomputed.

const (
	resMagic          = "WWTRES\x00"
	resVersion uint32 = 1
)

// Result is one completed cell's cacheable record: everything the sweep
// results file reports, minus host-local noise (wall time is tracked on the
// job, not the result, precisely so cached and computed results stay
// byte-identical).
type Result struct {
	Key         uint64 // canonical spec fingerprint (the content address)
	Fingerprint uint64 // stats fingerprint (snapshot.Hash of canonical accounting)
	Elapsed     int64  // virtual cycles
	AppLine     string
	// Err records a deterministic application abort (retry starvation,
	// invariant violation, watchdog stall). Aborted configurations are
	// results too — the degradation sweeps chart exactly where setups fall
	// over — and being deterministic they are as cacheable as a success.
	Err string
	// Breakdown is the per-processor-average cycles per non-zero category,
	// sorted by name for canonical encoding.
	Breakdown []BreakdownEntry
}

// BreakdownEntry is one "where is time spent" row.
type BreakdownEntry struct {
	Name   string
	Cycles float64
}

// BreakdownMap returns the breakdown in the map form the JSON API uses.
func (r *Result) BreakdownMap() map[string]float64 {
	if len(r.Breakdown) == 0 {
		return nil
	}
	m := make(map[string]float64, len(r.Breakdown))
	for _, e := range r.Breakdown {
		m[e.Name] = e.Cycles
	}
	return m
}

// CorruptResultError reports a cache entry that failed to decode; callers
// treat it as a miss and overwrite the entry.
type CorruptResultError struct {
	Path   string
	Reason string
}

func (e *CorruptResultError) Error() string {
	return fmt.Sprintf("serve: corrupt cached result %s: %s", e.Path, e.Reason)
}

// Cache is the on-disk result store.
type Cache struct {
	fs           vfs.FS
	dir          string
	hits, misses atomic.Int64
	quarantined  atomic.Int64
}

// OpenCache opens (creating if needed) a cache directory on fsys.
func OpenCache(fsys vfs.FS, dir string) (*Cache, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{fs: fsys, dir: dir}, nil
}

func (c *Cache) path(key uint64) string {
	return filepath.Join(c.dir, fmt.Sprintf("%016x.wwr", key))
}

// Encode serializes a result canonically: magic, version, fields, trailing
// checksum. Equal results produce equal bytes.
func Encode(r *Result) []byte {
	var e snapshot.Enc
	e.Str(resMagic)
	e.U32(resVersion)
	e.U64(r.Key)
	e.U64(r.Fingerprint)
	e.I64(r.Elapsed)
	e.Str(r.AppLine)
	e.Str(r.Err)
	e.U32(uint32(len(r.Breakdown)))
	for _, be := range r.Breakdown {
		e.Str(be.Name)
		e.F64(be.Cycles)
	}
	e.U64(snapshot.Hash(e.Bytes()))
	return e.Bytes()
}

// DecodeResult parses an encoded result, returning a *CorruptResultError
// (with path in the message left to the caller) on any malformed input.
func DecodeResult(b []byte) (*Result, error) {
	bad := func(reason string) (*Result, error) {
		return nil, &CorruptResultError{Reason: reason}
	}
	d := snapshot.NewDec(b)
	if d.Str() != resMagic {
		return bad("bad magic")
	}
	if v := d.U32(); v != resVersion {
		return bad(fmt.Sprintf("version %d (this build reads %d)", v, resVersion))
	}
	r := &Result{}
	r.Key = d.U64()
	r.Fingerprint = d.U64()
	r.Elapsed = d.I64()
	r.AppLine = d.Str()
	r.Err = d.Str()
	n := int(d.U32())
	if d.Err != nil || n < 0 || n > d.Remaining() {
		return bad("truncated")
	}
	for i := 0; i < n; i++ {
		r.Breakdown = append(r.Breakdown, BreakdownEntry{Name: d.Str(), Cycles: d.F64()})
	}
	body := len(b) - d.Remaining()
	sum := d.U64()
	if d.Err != nil {
		return bad("truncated")
	}
	if d.Remaining() != 0 {
		return bad("trailing bytes")
	}
	if got := snapshot.Hash(b[:body]); got != sum {
		return bad(fmt.Sprintf("checksum mismatch (%#x vs %#x)", got, sum))
	}
	return r, nil
}

// Get returns the cached result for key, counting a hit; (nil, nil) is a
// clean miss (counted), and a *CorruptResultError is a miss the caller
// should log and overwrite.
func (c *Cache) Get(key uint64) (*Result, error) {
	r, err := c.Peek(key)
	if r != nil {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, err
}

// Peek is Get without touching the hit/miss counters — recovery and status
// queries use it so introspection doesn't skew the serving hit rate. A
// corrupt entry is quarantined (renamed to *.quarantine) so the next Put is
// a clean write and the rotten bytes stay inspectable.
func (c *Cache) Peek(key uint64) (*Result, error) {
	p := c.path(key)
	b, err := c.fs.ReadFile(p)
	if vfs.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	r, err := DecodeResult(b)
	if err != nil {
		if ce, ok := err.(*CorruptResultError); ok {
			ce.Path = p
		}
		c.quarantine(p)
		return nil, err
	}
	if r.Key != key {
		c.quarantine(p)
		return nil, &CorruptResultError{Path: p, Reason: "key field does not match file name"}
	}
	return r, nil
}

// quarantine moves a corrupt entry aside. Best-effort: if the rename fails
// the entry stays in place and the next Put overwrites it anyway.
func (c *Cache) quarantine(p string) {
	if c.fs.Rename(p, p+".quarantine") == nil {
		c.quarantined.Add(1)
	}
}

// Put atomically stores r under its key.
func (c *Cache) Put(r *Result) error {
	return snapshot.AtomicWriteFileFS(c.fs, c.path(r.Key), Encode(r))
}

// Hits and Misses expose the serving counters; Quarantined counts corrupt
// entries moved aside.
func (c *Cache) Hits() int64        { return c.hits.Load() }
func (c *Cache) Misses() int64      { return c.misses.Load() }
func (c *Cache) Quarantined() int64 { return c.quarantined.Load() }
