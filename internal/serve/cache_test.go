package serve

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/vfs"
)

func sampleResult() *Result {
	return &Result{
		Key:         0xabc123,
		Fingerprint: 0xfeedface,
		Elapsed:     987654,
		AppLine:     "maxErr=1.2e-06",
		Err:         "",
		Breakdown: []BreakdownEntry{
			{Name: "Computation", Cycles: 1234.5},
			{Name: "Network Access", Cycles: 99.25},
		},
	}
}

// TestCacheRoundTrip: Put then Get returns an identical record and counts a
// hit; a missing key is a clean miss.
func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(vfs.OS{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult()
	if err := c.Put(want); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := c.Get(want.Key)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if miss, err := c.Get(0x999); miss != nil || err != nil {
		t.Fatalf("absent key: got %+v / %v, want clean miss", miss, err)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
	// Peek must not move the counters.
	if _, err := c.Peek(want.Key); err != nil {
		t.Fatal(err)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("Peek moved counters: hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

// TestCacheEncodingCanonical: equal results encode to equal bytes (the
// property that makes cached results comparable byte-for-byte).
func TestCacheEncodingCanonical(t *testing.T) {
	a, b := Encode(sampleResult()), Encode(sampleResult())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal results encoded differently")
	}
}

// TestCacheDetectsCorruption: every single-byte corruption of a stored
// entry decodes to a typed error, never to silently wrong data.
func TestCacheDetectsCorruption(t *testing.T) {
	c, err := OpenCache(vfs.OS{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult()
	if err := c.Put(want); err != nil {
		t.Fatal(err)
	}
	path := c.path(want.Key)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(blob); i++ {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		got, gerr := c.Peek(want.Key)
		if gerr == nil && got != nil && reflect.DeepEqual(got, want) {
			continue // flip landed in a spot that decoded back equal — impossible with a checksum
		}
		if gerr == nil {
			t.Fatalf("byte %d corrupted: decoded without error to %+v", i, got)
		}
		if _, ok := gerr.(*CorruptResultError); !ok {
			t.Fatalf("byte %d corrupted: error %T (%v), want *CorruptResultError", i, gerr, gerr)
		}
	}
	// Truncations too.
	for _, cut := range []int{0, 1, len(blob) / 2, len(blob) - 1} {
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, gerr := c.Peek(want.Key); gerr == nil {
			t.Fatalf("truncated to %d bytes: decoded without error", cut)
		}
	}
	if c.Quarantined() == 0 {
		t.Fatal("corrupt entries were never quarantined")
	}
}

// TestCacheQuarantinesCorruptEntry: a corrupt entry is moved to a sibling
// .quarantine file (the evidence survives) and the slot reads as a clean
// miss afterwards, so the result is recomputed and re-stored.
func TestCacheQuarantinesCorruptEntry(t *testing.T) {
	c, err := OpenCache(vfs.OS{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult()
	if err := c.Put(want); err != nil {
		t.Fatal(err)
	}
	path := c.path(want.Key)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, gerr := c.Peek(want.Key); gerr == nil {
		t.Fatal("corrupt entry decoded cleanly")
	}
	if c.Quarantined() != 1 {
		t.Fatalf("quarantined = %d, want 1", c.Quarantined())
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The slot is now a clean miss and a fresh Put restores service.
	if r, gerr := c.Peek(want.Key); r != nil || gerr != nil {
		t.Fatalf("after quarantine: got %+v / %v, want clean miss", r, gerr)
	}
	if err := c.Put(want); err != nil {
		t.Fatal(err)
	}
	got, gerr := c.Get(want.Key)
	if gerr != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("after re-put: %+v / %v", got, gerr)
	}
}

// TestCacheErrResult: deterministic aborts are cacheable results.
func TestCacheErrResult(t *testing.T) {
	c, err := OpenCache(vfs.OS{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult()
	want.Err = "faults: retry budget exhausted"
	if err := c.Put(want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(want.Key)
	if err != nil || got.Err != want.Err {
		t.Fatalf("got %+v / %v", got, err)
	}
}
