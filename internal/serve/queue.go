package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/runner"
)

// queue is the in-memory job table, authoritative only as a projection of
// the WAL: every transition that recovery must reproduce is appended (and
// fsynced) before the in-memory state changes. Jobs move
// pending → running → {done, failed}, with running falling back to pending
// on retry, preemption, or a crash (running is deliberately not a WAL
// state: a job that was mid-run when the process died recovers as pending
// and simply reruns — determinism plus the result cache make that
// idempotent, so nothing is lost and nothing completes twice).

type jobState uint8

const (
	jobPending jobState = iota
	jobRunning
	jobDone
	jobFailed
)

func (s jobState) String() string {
	switch s {
	case jobPending:
		return StatePending
	case jobRunning:
		return StateRunning
	case jobDone:
		return StateDone
	default:
		return StateFailed
	}
}

type job struct {
	id       uint64
	batch    uint64
	index    int
	key      uint64
	spec     runner.Spec
	specJSON []byte
	deadline time.Duration // per-attempt wall-clock bound; 0 = server default

	state     jobState
	attempts  int       // failed attempts so far
	preempts  int       // deadline preemptions (not persisted; resets on restart)
	notBefore time.Time // retry backoff gate
	wallMS    int64     // accumulated attempt wall time

	// resume checkpoint from the last preemption, if any
	resumeCycle int64
	resumePath  string
	// resumedFrom is set when a finished attempt verifiably replayed
	// through a resume checkpoint (Outcome.Verified at that cycle).
	resumedFrom int64

	cached             bool
	result             *Result
	failKind, failText string
}

type queue struct {
	mu        sync.Mutex
	wal       *WAL
	jobs      map[uint64]*job
	pending   []uint64            // FIFO of pending job ids
	batches   map[uint64][]uint64 // batch id → job ids in submit order
	nextJob   uint64
	nextBatch uint64
	running   int
	done      int64
	failed    int64
}

// recoverQueue rebuilds the job table from replayed WAL records, restores
// lost results from the cache where possible, and compacts the log down to
// the minimal record set a future recovery needs. A failed compaction is
// reported but not fatal: the uncompacted segments replay to the same job
// table, so the queue opens degraded rather than refusing to serve.
func recoverQueue(wal *WAL, recs []Record, cache *Cache) (q *queue, compactErr error) {
	q = &queue{
		wal:     wal,
		jobs:    make(map[uint64]*job),
		batches: make(map[uint64][]uint64),
	}
	for _, r := range recs {
		switch r.Type {
		case recSubmit:
			j := &job{
				id:       r.Job,
				batch:    r.Batch,
				index:    r.Index,
				key:      r.Key,
				specJSON: append([]byte(nil), r.Spec...),
				deadline: time.Duration(r.DeadlineMS) * time.Millisecond,
			}
			if err := json.Unmarshal(r.Spec, &j.spec); err != nil {
				// A submit record that round-trips to garbage should be
				// impossible (specs are validated before the append), but a
				// typed terminal failure beats wedging recovery.
				j.state, j.failKind, j.failText = jobFailed, "bad_spec", err.Error()
			}
			// A crash mid-compaction can replay the same submit from both an
			// old segment and the partial compacted one; the fresh record
			// wins, but the job must not be listed in its batch twice.
			if _, dup := q.jobs[r.Job]; !dup {
				q.batches[r.Batch] = append(q.batches[r.Batch], r.Job)
			}
			q.jobs[r.Job] = j
			if r.Job >= q.nextJob {
				q.nextJob = r.Job + 1
			}
			if r.Batch >= q.nextBatch {
				q.nextBatch = r.Batch + 1
			}
		case recAttempt:
			if j := q.jobs[r.Job]; j != nil {
				j.attempts = r.Attempts
			}
		case recCkpt:
			if j := q.jobs[r.Job]; j != nil {
				j.resumeCycle, j.resumePath = r.Cycle, r.Path
			}
		case recDone:
			if j := q.jobs[r.Job]; j != nil && j.state != jobFailed {
				j.state, j.cached = jobDone, r.Cached
			}
		case recFail:
			if j := q.jobs[r.Job]; j != nil && j.state != jobDone {
				j.state = jobFailed
				j.attempts, j.failKind, j.failText = r.Attempts, r.Kind, r.Err
			}
		}
	}

	// Materialize done results from the cache. A done record is only ever
	// written after the cache entry, so a missing or corrupt entry means
	// the file was deleted or rotted since — self-heal by recomputing.
	ids := make([]uint64, 0, len(q.jobs))
	for id := range q.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		j := q.jobs[id]
		if j.state == jobDone {
			res, err := cache.Peek(j.key)
			if res == nil || err != nil {
				j.state, j.cached, j.resumeCycle, j.resumePath = jobPending, false, 0, ""
			} else {
				j.result = res
			}
		}
		switch j.state {
		case jobDone:
			q.done++
		case jobFailed:
			q.failed++
		default:
			j.state = jobPending // includes any would-be running
			q.pending = append(q.pending, id)
		}
	}

	if err := wal.Compact(q.liveRecords()); err != nil {
		compactErr = fmt.Errorf("wal compaction: %w", err)
	}
	return q, compactErr
}

// liveRecords flattens the current job table into the minimal WAL image:
// one submit per job plus its surviving attempt/checkpoint/terminal state.
// Caller holds no lock (only used during single-threaded recovery).
func (q *queue) liveRecords() []Record {
	var ids []uint64
	for id := range q.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var recs []Record
	for _, id := range ids {
		j := q.jobs[id]
		recs = append(recs, Record{
			Type: recSubmit, Job: j.id, Batch: j.batch, Index: j.index,
			Key: j.key, Spec: j.specJSON, DeadlineMS: int64(j.deadline / time.Millisecond),
		})
		if j.attempts > 0 && j.state != jobFailed {
			recs = append(recs, Record{Type: recAttempt, Job: j.id, Attempts: j.attempts})
		}
		if j.resumePath != "" && j.state != jobDone && j.state != jobFailed {
			recs = append(recs, Record{Type: recCkpt, Job: j.id, Cycle: j.resumeCycle, Path: j.resumePath})
		}
		switch j.state {
		case jobDone:
			recs = append(recs, Record{Type: recDone, Job: j.id, Key: j.key, Cached: j.cached})
		case jobFailed:
			recs = append(recs, Record{Type: recFail, Job: j.id, Attempts: j.attempts, Kind: j.failKind, Err: j.failText})
		}
	}
	return recs
}

// submit durably enqueues a batch. The WAL append (one fsync for the whole
// batch) happens before any job becomes visible; an error leaves the queue
// unchanged.
func (q *queue) submit(specs []runner.Spec, deadline time.Duration) (uint64, []*job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	batch := q.nextBatch
	jobs := make([]*job, len(specs))
	recs := make([]Record, len(specs))
	for i, sp := range specs {
		blob, err := json.Marshal(&sp)
		if err != nil {
			return 0, nil, err
		}
		j := &job{
			id: q.nextJob + uint64(i), batch: batch, index: i,
			key: sp.CacheKey(), spec: sp, specJSON: blob, deadline: deadline,
		}
		jobs[i] = j
		recs[i] = Record{
			Type: recSubmit, Job: j.id, Batch: batch, Index: i,
			Key: j.key, Spec: blob, DeadlineMS: int64(deadline / time.Millisecond),
		}
	}
	if err := q.wal.Append(recs...); err != nil {
		return 0, nil, err
	}
	q.nextBatch++
	q.nextJob += uint64(len(specs))
	for _, j := range jobs {
		q.jobs[j.id] = j
		q.pending = append(q.pending, j.id)
		q.batches[batch] = append(q.batches[batch], j.id)
	}
	return batch, jobs, nil
}

// claim pops the first pending job whose backoff gate has passed, marking
// it running. Returns nil when nothing is claimable right now.
func (q *queue) claim(now time.Time) *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, id := range q.pending {
		j := q.jobs[id]
		if j.notBefore.After(now) {
			continue
		}
		q.pending = append(q.pending[:i], q.pending[i+1:]...)
		j.state = jobRunning
		q.running++
		return j
	}
	return nil
}

// complete durably finishes a job. The result is already in the cache (its
// durable home); the WAL records only the transition.
func (q *queue) complete(j *job, res *Result, cached bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.wal.Append(Record{Type: recDone, Job: j.id, Key: j.key, Cached: cached}); err != nil {
		return err
	}
	j.state, j.result, j.cached = jobDone, res, cached
	q.running--
	q.done++
	return nil
}

// fail durably records a terminal failure.
func (q *queue) fail(j *job, kind, text string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.wal.Append(Record{Type: recFail, Job: j.id, Attempts: j.attempts, Kind: kind, Err: text}); err != nil {
		return err
	}
	j.state, j.failKind, j.failText = jobFailed, kind, text
	q.running--
	q.failed++
	return nil
}

// requeueRetry returns a failed attempt to the queue with its new attempt
// count persisted and an exponential-backoff gate. clearResume also
// persists dropping the job's resume checkpoint (a replay divergence means
// that checkpoint can never verify again — the job restarts from scratch).
func (q *queue) requeueRetry(j *job, backoff time.Duration, clearResume bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	att := j.attempts + 1
	recs := []Record{{Type: recAttempt, Job: j.id, Attempts: att}}
	if clearResume {
		recs = append(recs, Record{Type: recCkpt, Job: j.id})
	}
	if err := q.wal.Append(recs...); err != nil {
		// Nothing durable changed, so nothing in memory may either.
		return err
	}
	j.attempts = att
	if clearResume {
		j.resumeCycle, j.resumePath = 0, ""
	}
	j.state = jobPending
	j.notBefore = time.Now().Add(backoff)
	q.running--
	q.pending = append(q.pending, j.id)
	return nil
}

// unclaim returns a running job to pending without touching the WAL — the
// degraded path when the durable transition itself could not be written
// (ENOSPC, failed fsync). Legal because "running" is not a WAL state:
// recovery would have treated the job as pending anyway, so the in-memory
// table just converges to what a crash-and-reopen would produce. The
// backoff gate keeps a storage outage from spinning the workers.
func (q *queue) unclaim(j *job, backoff time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.state != jobRunning {
		return
	}
	j.state = jobPending
	j.notBefore = time.Now().Add(backoff)
	q.running--
	q.pending = append(q.pending, j.id)
}

// noteRun accumulates per-attempt wall time and, when the attempt
// verifiably replayed through a resume checkpoint, records that cycle.
func (q *queue) noteRun(j *job, wallMS, resumedFrom int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j.wallMS += wallMS
	if resumedFrom > 0 {
		j.resumedFrom = resumedFrom
	}
}

// requeuePreempt returns a deadline- or drain-preempted job to the queue
// with its resume checkpoint persisted, so the next attempt (possibly in a
// future process) resumes instead of restarting.
func (q *queue) requeuePreempt(j *job, cycle int64, path string, countPreempt bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.wal.Append(Record{Type: recCkpt, Job: j.id, Cycle: cycle, Path: path}); err != nil {
		return err
	}
	j.resumeCycle, j.resumePath = cycle, path
	if countPreempt {
		j.preempts++
	}
	j.state = jobPending
	q.running--
	q.pending = append(q.pending, j.id)
	return nil
}

// depth is pending+running, the quantity admission control bounds.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending) + q.running
}

func (q *queue) counts() (pending, running int, done, failed int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending), q.running, q.done, q.failed
}

func (j *job) status() JobStatus {
	s := JobStatus{
		Index:       j.index,
		ID:          fmt.Sprintf("j%d", j.id),
		Key:         fmt.Sprintf("%016x", j.key),
		State:       j.state.String(),
		Cached:      j.cached,
		Attempts:    j.attempts,
		Preemptions: j.preempts,
		ResumedFrom: j.resumedFrom,
		WallMS:      j.wallMS,
	}
	if j.state == jobPending || j.state == jobRunning {
		s.ResumeCycle = j.resumeCycle
	}
	if r := j.result; r != nil {
		s.Fingerprint = fmt.Sprintf("%#x", r.Fingerprint)
		s.AppLine = r.AppLine
		s.Elapsed = r.Elapsed
		s.Breakdown = r.BreakdownMap()
		s.Error = r.Err
	}
	if j.state == jobFailed {
		s.FailKind, s.FailError = j.failKind, j.failText
	}
	return s
}

// batchStatus snapshots one batch, jobs in submit order.
func (q *queue) batchStatus(batch uint64) (*BatchStatus, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	ids, ok := q.batches[batch]
	if !ok {
		return nil, false
	}
	bs := &BatchStatus{
		Batch:  fmt.Sprintf("b%d", batch),
		Done:   true,
		Counts: map[string]int{},
	}
	for _, id := range ids {
		j := q.jobs[id]
		st := j.status()
		bs.Counts[st.State]++
		if j.state != jobDone && j.state != jobFailed {
			bs.Done = false
		}
		bs.Jobs = append(bs.Jobs, st)
	}
	return bs, true
}

func (q *queue) jobStatus(id uint64) (JobStatus, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}
