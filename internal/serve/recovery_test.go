package serve

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/runner"
)

// crash simulates kill -9 for in-process tests: workers are cut off (any
// attempt already inside runner.Run finishes — a real SIGKILL would land
// before or after a WAL append, and "after its completion record" is the
// conservative in-process equivalent) and the WAL fd is released so a new
// Server can own the file. No drain, no checkpointing, no goodbye records.
func crash(s *Server) {
	close(s.stop)
	s.wg.Wait()
	s.wal.Close()
}

// sweepMatrix is the six-cell matrix the CI e2e also uses.
func sweepMatrix() []runner.Spec {
	return []runner.Spec{
		{App: "gauss", Machine: "mp", Procs: 4, Size: 48},
		{App: "gauss", Machine: "sm", Procs: 4, Size: 48},
		{App: "em3d", Machine: "mp", Procs: 4, Size: 40, Iters: 3},
		{App: "em3d", Machine: "sm", Procs: 4, Size: 40, Iters: 3},
		{App: "lcp", Machine: "mp", Procs: 4, Size: 128, Iters: 3},
		{App: "lcp", Machine: "sm", Procs: 4, Size: 128, Iters: 3},
	}
}

// TestCrashRecoveryPendingJobs: jobs acknowledged but never started survive
// a crash — the restarted server carries the same batch, jobs, and keys,
// and completes them with baseline-identical fingerprints.
func TestCrashRecoveryPendingJobs(t *testing.T) {
	dir := t.TempDir()
	specs := sweepMatrix()[:3]
	want := baselineFingerprints(t, specs)

	s1 := newTestServer(t, dir, nil)
	batch, jobs1 := submitDirect(t, s1, specs)
	// Workers never started: the crash lands with everything pending.
	crash(s1)

	s2 := newTestServer(t, dir, nil)
	defer s2.Close()
	pending, running, done, failed := s2.q.counts()
	if pending != len(specs) || running != 0 || done != 0 || failed != 0 {
		t.Fatalf("recovered counts p=%d r=%d d=%d f=%d, want %d/0/0/0", pending, running, done, failed, len(specs))
	}
	bs, ok := s2.q.batchStatus(batch)
	if !ok {
		t.Fatalf("batch %d lost in recovery", batch)
	}
	for i, js := range bs.Jobs {
		if js.ID != fmt.Sprintf("j%d", jobs1[i].id) || js.Key != fmt.Sprintf("%016x", jobs1[i].key) {
			t.Fatalf("job %d identity changed across restart: %+v vs id=%d key=%016x", i, js, jobs1[i].id, jobs1[i].key)
		}
		if js.State != StatePending {
			t.Fatalf("job %s recovered as %s, want pending", js.ID, js.State)
		}
	}

	s2.Start()
	defer s2.Drain(5 * time.Second)
	for i, j := range jobs1 {
		js := waitJobTerminal(t, s2, j.id, 30*time.Second)
		if js.State != StateDone {
			t.Fatalf("job %s: %s (%s)", js.ID, js.State, js.FailError)
		}
		if js.Fingerprint != want[i] {
			t.Fatalf("job %s: fingerprint %s, want %s", js.ID, js.Fingerprint, want[i])
		}
	}
}

// TestCrashRecoveryMidSweep is the headline invariant: SIGKILL mid-sweep,
// restart, and the sweep completes with every cell present exactly once —
// jobs finished before the crash keep their results (from the cache, not a
// rerun), unfinished jobs run exactly once on the new server, and every
// fingerprint matches an uninterrupted baseline.
func TestCrashRecoveryMidSweep(t *testing.T) {
	dir := t.TempDir()
	specs := sweepMatrix()
	want := baselineFingerprints(t, specs)

	s1 := newTestServer(t, dir, func(c *Config) { c.Jobs = 1 })
	batch, jobs1 := submitDirect(t, s1, specs)
	s1.Start()
	// Let part of the sweep land, then pull the plug.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, _, done, _ := s1.q.counts(); done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress before crash point")
		}
		time.Sleep(2 * time.Millisecond)
	}
	crash(s1)

	stateAtCrash := make(map[uint64]JobStatus)
	doneAtCrash := 0
	for _, j := range jobs1 {
		js, _ := s1.q.jobStatus(j.id)
		stateAtCrash[j.id] = js
		if js.State == StateDone {
			doneAtCrash++
		}
	}
	t.Logf("crashed with %d/%d done", doneAtCrash, len(specs))

	s2 := newTestServer(t, dir, func(c *Config) { c.Jobs = 2 })
	defer s2.Close()
	// Count actual executions on the recovered server, per cache key.
	var mu sync.Mutex
	ran := make(map[uint64]int)
	s2.runJob = func(sp runner.Spec, opts runner.Options) (*runner.Outcome, error) {
		mu.Lock()
		ran[sp.CacheKey()]++
		mu.Unlock()
		return runner.Run(sp, opts)
	}

	// Finished jobs survived as done (materialized from the cache), the
	// rest recovered pending.
	for _, j := range jobs1 {
		js, ok := s2.q.jobStatus(j.id)
		if !ok {
			t.Fatalf("job j%d lost in recovery", j.id)
		}
		was := stateAtCrash[j.id]
		switch was.State {
		case StateDone:
			if js.State != StateDone || js.Fingerprint != was.Fingerprint {
				t.Fatalf("job j%d was done (%s), recovered as %s (%s)", j.id, was.Fingerprint, js.State, js.Fingerprint)
			}
		default:
			if js.State != StatePending {
				t.Fatalf("job j%d was %s, recovered as %s, want pending", j.id, was.State, js.State)
			}
		}
	}

	s2.Start()
	defer s2.Drain(5 * time.Second)
	for i, j := range jobs1 {
		js := waitJobTerminal(t, s2, j.id, 60*time.Second)
		if js.State != StateDone {
			t.Fatalf("job j%d: %s (%s: %s)", j.id, js.State, js.FailKind, js.FailError)
		}
		if js.Fingerprint != want[i] {
			t.Fatalf("job j%d: fingerprint %s, want %s", j.id, js.Fingerprint, want[i])
		}
	}
	bs, _ := s2.q.batchStatus(batch)
	if !bs.Done || bs.Counts[StateDone] != len(specs) {
		t.Fatalf("batch after recovery: %+v", bs.Counts)
	}

	// Exactly once: the recovered server ran only the unfinished cells, and
	// none of them more than once.
	mu.Lock()
	defer mu.Unlock()
	for _, j := range jobs1 {
		was := stateAtCrash[j.id].State
		n := ran[j.key]
		if was == StateDone && n != 0 {
			t.Errorf("job j%d finished before the crash but reran %d times", j.id, n)
		}
		if was != StateDone && n != 1 {
			t.Errorf("job j%d unfinished at crash ran %d times, want exactly 1", j.id, n)
		}
	}
}

// TestRecoverySelfHealsMissingCacheEntry: a done record whose cache entry
// has vanished (deleted, rotted) recovers as pending and recomputes —
// determinism guarantees the same fingerprint.
func TestRecoverySelfHealsMissingCacheEntry(t *testing.T) {
	dir := t.TempDir()
	spec := sweepMatrix()[0]

	s1 := newTestServer(t, dir, nil)
	_, jobs1 := submitDirect(t, s1, []runner.Spec{spec})
	s1.Start()
	js := waitJobTerminal(t, s1, jobs1[0].id, 30*time.Second)
	if js.State != StateDone {
		t.Fatalf("first run: %s", js.State)
	}
	crash(s1)

	if err := os.Remove(s1.cache.path(jobs1[0].key)); err != nil {
		t.Fatalf("deleting cache entry: %v", err)
	}

	s2 := newTestServer(t, dir, nil)
	defer s2.Close()
	if got, _ := s2.q.jobStatus(jobs1[0].id); got.State != StatePending {
		t.Fatalf("job with lost cache entry recovered as %s, want pending", got.State)
	}
	s2.Start()
	defer s2.Drain(5 * time.Second)
	js2 := waitJobTerminal(t, s2, jobs1[0].id, 30*time.Second)
	if js2.State != StateDone || js2.Fingerprint != js.Fingerprint {
		t.Fatalf("recomputed: %s fp=%s, want done fp=%s", js2.State, js2.Fingerprint, js.Fingerprint)
	}
}

// TestRecoveryPreservesTerminalFailures: typed terminal failures are
// durable — a restart does not resurrect a job that already exhausted its
// retry budget.
func TestRecoveryPreservesTerminalFailures(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, dir, func(c *Config) { c.MaxRetries = 1 })
	s1.runJob = func(spec runner.Spec, opts runner.Options) (*runner.Outcome, error) {
		return nil, fmt.Errorf("injected persistent failure")
	}
	_, jobs1 := submitDirect(t, s1, sweepMatrix()[:1])
	s1.Start()
	js := waitJobTerminal(t, s1, jobs1[0].id, 30*time.Second)
	if js.State != StateFailed {
		t.Fatalf("setup: %s", js.State)
	}
	crash(s1)

	s2 := newTestServer(t, dir, nil)
	defer s2.Close()
	js2, _ := s2.q.jobStatus(jobs1[0].id)
	if js2.State != StateFailed || js2.FailKind != js.FailKind || js2.FailError != js.FailError || js2.Attempts != js.Attempts {
		t.Fatalf("terminal failure mutated across restart:\n was %+v\n now %+v", js, js2)
	}
}

// TestDrainParksRunningJobAtCheckpoint: SIGTERM-style drain interrupts a
// running job so it checkpoints at a quantum boundary and parks as
// pending-with-resume; a restarted server resumes it through that exact
// checkpoint (replay-verified) and finishes with the baseline fingerprint.
func TestDrainParksRunningJobAtCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// A longer cell (~hundreds of ms) so drain lands mid-run.
	spec := runner.Spec{App: "gauss", Machine: "mp", Procs: 4, Size: 160}
	base, err := runner.Run(spec, runner.Options{})
	if err != nil || base.Res.Err != nil {
		t.Fatalf("baseline: %v / %v", err, base.Res.Err)
	}

	s1 := newTestServer(t, dir, func(c *Config) { c.Jobs = 1 })
	_, jobs1 := submitDirect(t, s1, []runner.Spec{spec})
	s1.Start()
	// Wait until the job is actually running, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if js, _ := s1.q.jobStatus(jobs1[0].id); js.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let some cycles accumulate
	if err := s1.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	js, _ := s1.q.jobStatus(jobs1[0].id)
	s1.Close()
	if js.State == StateDone {
		// The run beat the drain on a fast host; nothing to resume.
		t.Skipf("job finished before drain landed (wall %dms); nothing to park", js.WallMS)
	}
	if js.State != StatePending || js.ResumeCycle <= 0 {
		t.Fatalf("drained job: state=%s resume_cycle=%d, want pending with a checkpoint", js.State, js.ResumeCycle)
	}
	if js.Preemptions != 0 {
		t.Fatalf("drain preemption counted against the deadline budget: %d", js.Preemptions)
	}

	s2 := newTestServer(t, dir, nil)
	defer s2.Close()
	js2, _ := s2.q.jobStatus(jobs1[0].id)
	if js2.State != StatePending || js2.ResumeCycle != js.ResumeCycle {
		t.Fatalf("parked checkpoint lost: %+v", js2)
	}
	s2.Start()
	defer s2.Drain(5 * time.Second)
	fin := waitJobTerminal(t, s2, jobs1[0].id, 60*time.Second)
	if fin.State != StateDone {
		t.Fatalf("resumed job: %s (%s: %s)", fin.State, fin.FailKind, fin.FailError)
	}
	if fin.ResumedFrom != js.ResumeCycle {
		t.Fatalf("ResumedFrom=%d, want the parked checkpoint cycle %d (verified resume)", fin.ResumedFrom, js.ResumeCycle)
	}
	if want := fmt.Sprintf("%#x", base.Fingerprint); fin.Fingerprint != want {
		t.Fatalf("fingerprint %s after drain+resume, want %s", fin.Fingerprint, want)
	}
}
