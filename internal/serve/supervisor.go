package serve

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/runner"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/vfs"
)

// The supervisor is the worker pool between the queue and runner.Run, and
// the place every per-job robustness mechanism lives:
//
//   - panic isolation: an attempt runs behind recover(), so one exploding
//     job becomes that job's typed failure, never the daemon's;
//   - deadlines: a wall-clock timer fires the attempt's runner.Interrupt;
//     the run checkpoints at its next quantum boundary and is requeued with
//     the checkpoint, so the next attempt resumes (replay-verified) instead
//     of restarting from cycle zero;
//   - bounded retries: host-level failures (panics, checkpoint I/O errors,
//     replay divergence) retry with exponential backoff up to MaxRetries,
//     then settle into a typed terminal-failure record. Deterministic
//     application aborts are NOT retried — the simulator would abort
//     identically every time — they complete as (cacheable) results;
//   - the cache fast path: a claimed job whose key is already in the result
//     cache completes immediately with a cache-hit marker.

// JobPanicError is the typed failure a recovered panic turns into.
type JobPanicError struct {
	Job   uint64
	Value string
}

func (e *JobPanicError) Error() string {
	return fmt.Sprintf("serve: job j%d panicked: %s", e.Job, e.Value)
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		var j *job
		if !s.draining.Load() {
			j = s.q.claim(time.Now())
		}
		if j == nil {
			select {
			case <-s.stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		s.process(j)
	}
}

// process drives one claimed job to its next durable state.
func (s *Server) process(j *job) {
	if res, err := s.cache.Get(j.key); res != nil {
		if err := s.q.complete(j, res, true); err != nil {
			s.unrecorded(j, "cache hit", err)
			return
		}
		s.storageOK()
		s.logf("j%d %s/%s done (cache hit, fp %#x)", j.id, j.spec.App, j.spec.Machine, res.Fingerprint)
		s.cleanCkpts(j)
		return
	} else if err != nil {
		s.logf("j%d: %v (recomputing)", j.id, err)
	}

	resumeCycle := j.resumeCycle
	t0 := time.Now()
	out, runErr := s.attempt(j)
	wallMS := time.Since(t0).Milliseconds()
	verified := int64(0)
	if out != nil && out.Verified {
		verified = resumeCycle
	}
	s.q.noteRun(j, wallMS, verified)

	switch {
	case runErr != nil:
		var div *runner.ReplayDivergenceError
		kind := "harness"
		var pe *JobPanicError
		if errors.As(runErr, &pe) {
			kind = "panic"
			s.panics.Add(1)
		} else if errors.As(runErr, &div) {
			kind = "divergence"
		}
		s.retry(j, kind, runErr)

	case out.Preempted:
		s.preemptions.Add(1)
		if s.draining.Load() {
			// Drain preemption: park the job with its checkpoint for the
			// next process; doesn't count against the preemption budget.
			if err := s.q.requeuePreempt(j, int64(out.PreemptedAt), out.PreemptPath, false); err != nil {
				s.unrecorded(j, "drain checkpoint", err)
				return
			}
			s.storageOK()
			s.logf("j%d %s/%s drained to checkpoint at cycle %d", j.id, j.spec.App, j.spec.Machine, out.PreemptedAt)
			return
		}
		if j.preempts+1 > s.cfg.MaxPreempts {
			s.failTerminal(j, "deadline", fmt.Errorf(
				"serve: job j%d preempted %d times without finishing (deadline too tight for this cell)",
				j.id, j.preempts+1))
			return
		}
		if err := s.q.requeuePreempt(j, int64(out.PreemptedAt), out.PreemptPath, true); err != nil {
			s.unrecorded(j, "preemption", err)
			return
		}
		s.storageOK()
		s.logf("j%d %s/%s deadline-preempted at cycle %d, requeued to resume", j.id, j.spec.App, j.spec.Machine, out.PreemptedAt)

	default:
		res := buildResult(j.key, out)
		if err := s.cache.Put(res); err != nil {
			// The cache entry is the result's durable home; without it a
			// done record would point at nothing. Park the job and let the
			// next attempt (or the cache fast path, if the entry actually
			// landed) finish the transition once the disk recovers.
			s.unrecorded(j, "store result", err)
			return
		}
		if err := s.q.complete(j, res, false); err != nil {
			s.unrecorded(j, "completion", err)
			return
		}
		s.storageOK()
		status := fmt.Sprintf("fp %#x", res.Fingerprint)
		if res.Err != "" {
			status = "aborted: " + res.Err
		}
		s.logf("j%d %s/%s done (%s, %d ms)", j.id, j.spec.App, j.spec.Machine, status, wallMS)
		s.cleanCkpts(j)
	}
}

// unrecorded handles a job whose durable state transition could not be
// written: the job returns to pending (with backoff) so the transition is
// retried once the disk recovers, instead of wedging in "running" forever.
// Nothing was acked, so recovery semantics are identical to a crash here.
func (s *Server) unrecorded(j *job, what string, err error) {
	s.noteStorage(err)
	s.q.unclaim(j, s.cfg.Backoff)
	s.logf("j%d: record %s: %v (unclaimed, will retry transition)", j.id, what, err)
}

// attempt executes one supervised try of j: panic-isolated, deadline-armed,
// resuming from the job's checkpoint when it has one.
func (s *Server) attempt(j *job) (out *runner.Outcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, &JobPanicError{Job: j.id, Value: fmt.Sprint(p)}
		}
	}()

	ckdir := s.ckptDir(j)
	if err := s.cfg.FS.MkdirAll(ckdir, 0o755); err != nil {
		return nil, err
	}
	intr := &runner.Interrupt{}
	s.trackRunning(j.id, intr)
	defer s.untrackRunning(j.id)
	if s.draining.Load() {
		intr.Fire() // drain began between claim and here
	}
	if dl := s.deadlineFor(j); dl > 0 {
		t := time.AfterFunc(dl, intr.Fire)
		defer t.Stop()
	}

	opts := runner.Options{
		Workers:       s.cfg.RunWorkers,
		CheckpointDir: ckdir,
		Interrupt:     intr,
		FS:            s.cfg.FS,
	}
	if j.resumePath != "" {
		snap, rerr := readSnapshot(s.cfg.FS, j.resumePath)
		if rerr == nil {
			opts.Resume = snap
		} else {
			s.logf("j%d: resume checkpoint unreadable (%v), restarting from scratch", j.id, rerr)
		}
	}
	return s.runJob(j.spec, opts)
}

// readSnapshot reads and decodes a checkpoint through the configured FS.
func readSnapshot(fsys vfs.FS, path string) (*snapshot.Snapshot, error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return snapshot.Decode(b)
}

// retry applies the bounded-retry policy to a host-level failure.
func (s *Server) retry(j *job, kind string, cause error) {
	if j.attempts+1 > s.cfg.MaxRetries {
		s.failTerminal(j, kind, cause)
		return
	}
	backoff := s.cfg.Backoff << uint(j.attempts)
	s.retries.Add(1)
	// A divergence's checkpoint is permanently unverifiable; drop it.
	if err := s.q.requeueRetry(j, backoff, kind == "divergence"); err != nil {
		s.unrecorded(j, "retry", err)
		return
	}
	s.storageOK()
	s.logf("j%d %s/%s attempt %d failed (%s: %v), retrying in %v",
		j.id, j.spec.App, j.spec.Machine, j.attempts, kind, cause, backoff)
}

func (s *Server) failTerminal(j *job, kind string, cause error) {
	if err := s.q.fail(j, kind, cause.Error()); err != nil {
		s.unrecorded(j, "terminal failure", err)
		return
	}
	s.storageOK()
	s.logf("j%d %s/%s FAILED terminally (%s): %v", j.id, j.spec.App, j.spec.Machine, kind, cause)
	s.cleanCkpts(j)
}

func (s *Server) ckptDir(j *job) string {
	return filepath.Join(s.cfg.Dir, "ckpt", fmt.Sprintf("j%d", j.id))
}

// cleanCkpts removes a finished job's checkpoint directory (best effort —
// the WAL no longer references it).
func (s *Server) cleanCkpts(j *job) {
	s.cfg.FS.RemoveAll(s.ckptDir(j))
}

func (s *Server) deadlineFor(j *job) time.Duration {
	if j.deadline > 0 {
		return j.deadline
	}
	return s.cfg.Deadline
}

// buildResult converts a completed runner outcome into the canonical
// cacheable record. Breakdown rows are sorted by name so encoding is
// deterministic.
func buildResult(key uint64, out *runner.Outcome) *Result {
	r := &Result{Key: key, Fingerprint: out.Fingerprint, AppLine: out.AppLine}
	if res := out.Res; res != nil {
		r.Elapsed = int64(res.Elapsed)
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			if v := res.Summary.CyclesAll(c); v != 0 {
				r.Breakdown = append(r.Breakdown, BreakdownEntry{Name: c.String(), Cycles: v})
			}
		}
		sort.Slice(r.Breakdown, func(a, b int) bool { return r.Breakdown[a].Name < r.Breakdown[b].Name })
		if res.Err != nil {
			r.Err = res.Err.Error()
		}
	}
	return r
}
