package memsim

import "repro/internal/sim"

// StaleVec gives a shared float vector hardware-faithful value semantics:
// each processor's reads return the values its cache actually holds — the
// snapshot taken when the block was last fetched — rather than the globally
// freshest backing values. New values become visible only through the
// coherence protocol: the producer's write invalidates the consumer's
// cached block, the consumer's next read misses, and the refetch refreshes
// the snapshot.
//
// This matters for algorithms whose *behavior* depends on value freshness.
// The paper's asynchronous LCP (ALCP) converges in fewer steps than the
// synchronous version precisely because values propagate mid-step — but
// only as fast as invalidations and refetches allow. Simulating with
// perfectly fresh values would overstate that advantage enormously.
//
// A refetch returns the backing image as of the most recent quantum
// boundary, with the reading processor's own later writes overlaid. The
// conservative window already declares intra-quantum cross-processor
// interactions unordered, so a refetch that sampled the live backing would
// make the copied values depend on which processors happened to run first
// inside the quantum — under a worker pool, on host scheduling. Snapshotting
// at the boundary (an Engine publisher) keeps values identical for any
// Workers setting. Writes to disjoint elements of a shared block remain the
// writers' responsibility, as on real hardware.
type StaleVec struct {
	// G is the underlying shared vector (the authoritative backing).
	G *FVec
	// snap[p] is processor p's view: refreshed block-by-block on misses.
	snap [][]float64
	// base is the backing image captured at the last quantum boundary;
	// refetches copy from it, never from the live backing.
	base []float64
	// wlog[p] holds the indices processor p wrote (via Set) since the last
	// boundary, so refetches can overlay the processor's own fresh values.
	wlog [][]int
}

// NewStaleVec wraps a shared vector for procs processors. Initial snapshots
// equal the backing's current contents. The boundary image refreshes as an
// engine publisher: part of the simulation, deterministic at every quantum.
func NewStaleVec(eng *sim.Engine, g *FVec, procs int) *StaleVec {
	s := &StaleVec{G: g, snap: make([][]float64, procs), wlog: make([][]int, procs)}
	for p := range s.snap {
		s.snap[p] = append([]float64(nil), g.V...)
	}
	s.base = append([]float64(nil), g.V...)
	eng.AddPublisher(func(sim.Time) {
		copy(s.base, g.V)
		for p := range s.wlog {
			s.wlog[p] = s.wlog[p][:0]
		}
	})
	return s
}

// elemsPerBlock returns how many elements share a cache block.
func (s *StaleVec) elemsPerBlock(m *Mem) int {
	n := m.Cfg.BlockBytes / s.G.ElemBytes
	if n < 1 {
		n = 1
	}
	return n
}

// refreshBlock fills processor p's snapshot of the block containing element
// i from the boundary image, then overlays p's own writes from this quantum
// (which the boundary image cannot hold yet). Only the owning processor
// touches its wlog entries' backing slots within a quantum, so reading them
// from the live backing is race-free.
func (s *StaleVec) refreshBlock(m *Mem, i int) {
	per := s.elemsPerBlock(m)
	lo := (i / per) * per
	hi := lo + per
	if hi > len(s.G.V) {
		hi = len(s.G.V)
	}
	p := m.P.ID
	copy(s.snap[p][lo:hi], s.base[lo:hi])
	for _, j := range s.wlog[p] {
		if j >= lo && j < hi {
			s.snap[p][j] = s.G.V[j]
		}
	}
}

// Get simulates a load of element i and returns the value the processor's
// cache holds (refreshed if the load missed).
func (s *StaleVec) Get(m *Mem, i int) float64 {
	if m.ReadTrack(s.G.Addr(i)) {
		s.refreshBlock(m, i)
	}
	return s.snap[m.P.ID][i]
}

// Set simulates a store of element i: the write goes to the backing (other
// processors observe it at their next miss) and to the writer's own view.
func (s *StaleVec) Set(m *Mem, i int, x float64) {
	m.Write(s.G.Addr(i))
	s.G.V[i] = x
	s.wlog[m.P.ID] = append(s.wlog[m.P.ID], i)
	// Ownership means our snapshot of this block is current (as of the
	// boundary image plus our own writes — the overlay restores x).
	s.refreshBlock(m, i)
}

// StepGet is Get for step processors; the value is valid only when done.
// A resumed access refreshes from the same boundary image the coroutine
// form would see — both forms resume in the quantum of the wake.
func (s *StaleVec) StepGet(m *Mem, i int) (float64, bool) {
	done, missed := m.StepReadTrack(s.G.Addr(i))
	if !done {
		return 0, false
	}
	if missed {
		s.refreshBlock(m, i)
	}
	return s.snap[m.P.ID][i], true
}

// StepSet is Set for step processors: backing write, write log, and
// snapshot refresh all happen exactly once, on the completing call.
func (s *StaleVec) StepSet(m *Mem, i int, x float64) bool {
	if !m.StepWrite(s.G.Addr(i)) {
		return false
	}
	s.G.V[i] = x
	s.wlog[m.P.ID] = append(s.wlog[m.P.ID], i)
	s.refreshBlock(m, i)
	return true
}

// Local returns processor p's current view (for norms over owned segments).
func (s *StaleVec) Local(p int) []float64 { return s.snap[p] }

// MirrorVec is a read-only boundary image of a shared vector for apps that
// refresh by scheduled bulk copies rather than per-element cached reads
// (MSE-SM's snapshot refresh). V holds the backing's contents as of the most
// recent quantum boundary; an engine publisher refreshes it. Readers copy
// remote partitions from V while owners write the live backing — the same
// one-quantum visibility floor the conservative window already imposes on
// every cross-processor interaction, so results cannot depend on which
// processors the worker pool happened to run first.
type MirrorVec struct {
	// V is the boundary image. Read-only outside the publisher.
	V []float64
}

// NewMirror wraps shared vector g with a quantum-boundary image.
func NewMirror(eng *sim.Engine, g *FVec) *MirrorVec {
	mv := &MirrorVec{V: append([]float64(nil), g.V...)}
	eng.AddPublisher(func(sim.Time) { copy(mv.V, g.V) })
	return mv
}
