package memsim

// StaleVec gives a shared float vector hardware-faithful value semantics:
// each processor's reads return the values its cache actually holds — the
// snapshot taken when the block was last fetched — rather than the globally
// freshest backing values. New values become visible only through the
// coherence protocol: the producer's write invalidates the consumer's
// cached block, the consumer's next read misses, and the refetch refreshes
// the snapshot.
//
// This matters for algorithms whose *behavior* depends on value freshness.
// The paper's asynchronous LCP (ALCP) converges in fewer steps than the
// synchronous version precisely because values propagate mid-step — but
// only as fast as invalidations and refetches allow. Simulating with
// perfectly fresh values would overstate that advantage enormously.
type StaleVec struct {
	// G is the underlying shared vector (the authoritative backing).
	G *FVec
	// snap[p] is processor p's view: refreshed block-by-block on misses.
	snap [][]float64
}

// NewStaleVec wraps a shared vector for procs processors. Initial snapshots
// equal the backing's current contents.
func NewStaleVec(g *FVec, procs int) *StaleVec {
	s := &StaleVec{G: g, snap: make([][]float64, procs)}
	for p := range s.snap {
		s.snap[p] = append([]float64(nil), g.V...)
	}
	return s
}

// elemsPerBlock returns how many elements share a cache block.
func (s *StaleVec) elemsPerBlock(m *Mem) int {
	n := m.Cfg.BlockBytes / s.G.ElemBytes
	if n < 1 {
		n = 1
	}
	return n
}

// refreshBlock copies the backing values of the block containing element i
// into processor p's snapshot (the cache fill's data payload).
func (s *StaleVec) refreshBlock(m *Mem, i int) {
	per := s.elemsPerBlock(m)
	lo := (i / per) * per
	hi := lo + per
	if hi > len(s.G.V) {
		hi = len(s.G.V)
	}
	copy(s.snap[m.P.ID][lo:hi], s.G.V[lo:hi])
}

// Get simulates a load of element i and returns the value the processor's
// cache holds (refreshed if the load missed).
func (s *StaleVec) Get(m *Mem, i int) float64 {
	if m.ReadTrack(s.G.Addr(i)) {
		s.refreshBlock(m, i)
	}
	return s.snap[m.P.ID][i]
}

// Set simulates a store of element i: the write goes to the backing (other
// processors observe it at their next miss) and to the writer's own view.
func (s *StaleVec) Set(m *Mem, i int, x float64) {
	m.Write(s.G.Addr(i))
	s.G.V[i] = x
	s.snap[m.P.ID][i] = x
	// Ownership means our snapshot of this block is current.
	s.refreshBlock(m, i)
}

// Local returns processor p's current view (for norms over owned segments).
func (s *StaleVec) Local(p int) []float64 { return s.snap[p] }
