package memsim

// WordBytes is the size of a simulated machine word (double-precision
// floats and pointers/longs are 8 bytes).
const WordBytes = 8

// FVec binds a real []float64 to a range of simulated addresses. Get/Set
// perform the actual data movement in Go while charging the simulated
// memory system. On the shared-memory machine an FVec allocated in the
// shared segment is one vector accessed by all processors (timing from the
// coherence protocol, values from the single backing slice); on the
// message-passing machine each processor holds its own private FVec.
//
// ElemBytes is the simulated element size: 8 for double precision, 4 for
// single (Gauss works in single precision — its traffic and miss counts in
// the paper match 4-byte rows). The Go backing is always float64; only the
// simulated footprint and wire size differ.
type FVec struct {
	Base      uint64
	ElemBytes int
	V         []float64
}

// NewFVec wraps n double-precision elements at base.
func NewFVec(base uint64, n int) FVec {
	return FVec{Base: base, ElemBytes: WordBytes, V: make([]float64, n)}
}

// NewFVecSized wraps n elements of elemBytes each at base.
func NewFVecSized(base uint64, n, elemBytes int) FVec {
	if elemBytes != 4 && elemBytes != 8 {
		panic("memsim: element size must be 4 or 8 bytes")
	}
	return FVec{Base: base, ElemBytes: elemBytes, V: make([]float64, n)}
}

// Len returns the element count.
func (v *FVec) Len() int { return len(v.V) }

// SizeBytes returns the simulated footprint.
func (v *FVec) SizeBytes() int { return len(v.V) * v.ElemBytes }

// Addr returns the simulated address of element i.
func (v *FVec) Addr(i int) uint64 { return v.Base + uint64(i)*uint64(v.ElemBytes) }

// Get simulates a load of element i and returns its value.
func (v *FVec) Get(m *Mem, i int) float64 {
	m.Read(v.Addr(i))
	return v.V[i]
}

// Set simulates a store of element i.
func (v *FVec) Set(m *Mem, i int, x float64) {
	m.Write(v.Addr(i))
	v.V[i] = x
}

// ReadRange simulates streaming loads of elements [lo, hi).
func (v *FVec) ReadRange(m *Mem, lo, hi int) {
	m.ReadRange(v.Addr(lo), (hi-lo)*v.ElemBytes)
}

// WriteRange simulates streaming stores of elements [lo, hi).
func (v *FVec) WriteRange(m *Mem, lo, hi int) {
	m.WriteRange(v.Addr(lo), (hi-lo)*v.ElemBytes)
}

// StepGet is Get for step processors; the value is valid only when done.
func (v *FVec) StepGet(m *Mem, i int) (float64, bool) {
	if !m.StepRead(v.Addr(i)) {
		return 0, false
	}
	return v.V[i], true
}

// StepSet is Set for step processors: the backing store mutates exactly
// once, on the completing call.
func (v *FVec) StepSet(m *Mem, i int, x float64) bool {
	if !m.StepWrite(v.Addr(i)) {
		return false
	}
	v.V[i] = x
	return true
}

// StepReadRange is ReadRange for step processors.
func (v *FVec) StepReadRange(m *Mem, lo, hi int) bool {
	return m.StepReadRange(v.Addr(lo), (hi-lo)*v.ElemBytes)
}

// StepWriteRange is WriteRange for step processors.
func (v *FVec) StepWriteRange(m *Mem, lo, hi int) bool {
	return m.StepWriteRange(v.Addr(lo), (hi-lo)*v.ElemBytes)
}

// IVec binds a real []int64 to simulated addresses; see FVec.
type IVec struct {
	Base uint64
	V    []int64
}

// NewIVec wraps n int64 words at base.
func NewIVec(base uint64, n int) IVec {
	return IVec{Base: base, V: make([]int64, n)}
}

// Len returns the element count.
func (v *IVec) Len() int { return len(v.V) }

// SizeBytes returns the simulated footprint.
func (v *IVec) SizeBytes() int { return len(v.V) * WordBytes }

// Addr returns the simulated address of element i.
func (v *IVec) Addr(i int) uint64 { return v.Base + uint64(i)*WordBytes }

// Get simulates a load of element i and returns its value.
func (v *IVec) Get(m *Mem, i int) int64 {
	m.Read(v.Addr(i))
	return v.V[i]
}

// Set simulates a store of element i.
func (v *IVec) Set(m *Mem, i int, x int64) {
	m.Write(v.Addr(i))
	v.V[i] = x
}

// ReadRange simulates streaming loads of elements [lo, hi).
func (v *IVec) ReadRange(m *Mem, lo, hi int) {
	m.ReadRange(v.Addr(lo), (hi-lo)*WordBytes)
}

// WriteRange simulates streaming stores of elements [lo, hi).
func (v *IVec) WriteRange(m *Mem, lo, hi int) {
	m.WriteRange(v.Addr(lo), (hi-lo)*WordBytes)
}

// StepGet is Get for step processors; the value is valid only when done.
func (v *IVec) StepGet(m *Mem, i int) (int64, bool) {
	if !m.StepRead(v.Addr(i)) {
		return 0, false
	}
	return v.V[i], true
}

// StepSet is Set for step processors.
func (v *IVec) StepSet(m *Mem, i int, x int64) bool {
	if !m.StepWrite(v.Addr(i)) {
		return false
	}
	v.V[i] = x
	return true
}

// StepReadRange is ReadRange for step processors.
func (v *IVec) StepReadRange(m *Mem, lo, hi int) bool {
	return m.StepReadRange(v.Addr(lo), (hi-lo)*WordBytes)
}

// StepWriteRange is WriteRange for step processors.
func (v *IVec) StepWriteRange(m *Mem, lo, hi int) bool {
	return m.StepWriteRange(v.Addr(lo), (hi-lo)*WordBytes)
}
