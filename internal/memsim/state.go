package memsim

import "repro/internal/snapshot"

// EncodeState contributes the cache image to a canonical state snapshot:
// every line's tag and state in set/way order, plus the replacement RNG's
// position (victim choice is part of replayable state — a drifted RNG
// would silently change every later eviction).
func (c *Cache) EncodeState(enc *snapshot.Enc) {
	enc.Section("cache", func(enc *snapshot.Enc) {
		enc.U32(uint32(c.sets))
		enc.U32(uint32(c.assoc))
		enc.U32(uint32(len(c.lines)))
		for _, pl := range c.lines {
			l := pl.unpack()
			enc.U64(l.Tag)
			enc.U8(l.State)
		}
		enc.U64(c.rng.State())
	})
}

// EncodeState contributes the TLB image: resident pages in FIFO order
// (from the oldest entry) and the cumulative miss count. The MRU filter is
// a pure lookup accelerator derived from the same history, so it is not
// encoded.
func (t *TLB) EncodeState(enc *snapshot.Enc) {
	enc.Section("tlb", func(enc *snapshot.Enc) {
		enc.U32(uint32(t.capacity))
		enc.U32(uint32(len(t.fifo)))
		for i := 0; i < len(t.fifo); i++ {
			enc.U64(t.fifo[(t.head+i)%len(t.fifo)])
		}
		enc.I64(t.misses)
	})
}

// EncodeState contributes one processor's full memory-system state.
func (m *Mem) EncodeState(enc *snapshot.Enc) {
	enc.Section("mem", func(enc *snapshot.Enc) {
		enc.I64(m.Refs)
		m.Cache.EncodeState(enc)
		m.TLB.EncodeState(enc)
	})
}
