package memsim

import (
	"fmt"

	"repro/internal/sim"
)

// Cache line states. The message-passing machine uses Invalid / Modified
// semantics (every cached block is local and writable); the shared-memory
// coherence protocol additionally uses Shared for read-only copies.
const (
	Invalid  uint8 = iota
	Shared         // valid, read-only (clean)
	Modified       // valid, writable (dirty)
)

// StateName returns a diagnostic name for a cache-line state, used by the
// coherence invariant checker's violation reports.
func StateName(st uint8) string {
	switch st {
	case Invalid:
		return "Invalid"
	case Shared:
		return "Shared"
	case Modified:
		return "Modified"
	}
	return fmt.Sprintf("state(%d)", st)
}

// Line is one cache line's tag state. Tag stores the full block number
// (address >> block shift), so aliasing is impossible.
type Line struct {
	Tag   uint64
	State uint8
}

// A line is stored packed in one word: block number plus one in the upper
// 62 bits, state in the low 2. Padding made the two-field Line struct 16
// bytes, so packing halves every tag table — 64 KB per simulated processor
// at the paper's 256 KB/4-way/32 B geometry, which at P=1024 is the
// difference between the tag state fitting in cache-friendly memory or not.
// A packed word of 0 is exactly an Invalid line, and the +1 tag bias keeps
// that true for block 0 as well: a zero word can never equal any valid
// line's tag bits, so the tag-match loops in Lookup and friends need no
// separate validity test — the single hottest comparison in the simulator.
type packedLine uint64

func packLine(block uint64, state uint8) packedLine {
	return packedLine((block+1)<<2 | uint64(state))
}

// tagBits returns the match key for block: what a resident line's word
// looks like with the state bits cleared. Never zero, by the +1 bias.
func tagBits(block uint64) uint64 { return (block + 1) << 2 }

func (l packedLine) block() uint64 { return uint64(l)>>2 - 1 }
func (l packedLine) state() uint8  { return uint8(l & 3) }
func (l packedLine) valid() bool   { return l>>2 != 0 }

func (l packedLine) unpack() Line {
	if !l.valid() {
		return Line{}
	}
	return Line{Tag: l.block(), State: l.state()}
}

// Cache is an n-way set-associative cache with random replacement (Table 1:
// 256 KB, 4-way, 32-byte blocks, random replacement). Victim selection draws
// from a deterministic per-cache RNG.
type Cache struct {
	assoc      int
	sets       int
	blockShift uint
	setMask    uint64
	lines      []packedLine
	rng        *sim.RNG

	// SharedDirtyIsShared: under the coherence protocol, blocks in the
	// shared segment track Shared/Modified precisely; the MP machine marks
	// everything Modified on write.
}

// NewCache constructs a cache with the given geometry.
func NewCache(capacityBytes, assoc, blockBytes int, rng *sim.RNG) *Cache {
	if capacityBytes%(assoc*blockBytes) != 0 {
		panic("memsim: cache capacity not divisible by assoc*block")
	}
	sets := capacityBytes / (assoc * blockBytes)
	if sets&(sets-1) != 0 {
		panic("memsim: number of sets must be a power of two")
	}
	bs := uint(0)
	for 1<<bs < blockBytes {
		bs++
	}
	return &Cache{
		assoc:      assoc,
		sets:       sets,
		blockShift: bs,
		setMask:    uint64(sets - 1),
		lines:      make([]packedLine, sets*assoc),
		rng:        rng,
	}
}

// BlockShift returns log2(block size).
func (c *Cache) BlockShift() uint { return c.blockShift }

// BlockOf returns the block number containing addr.
func (c *Cache) BlockOf(addr uint64) uint64 { return addr >> c.blockShift }

func (c *Cache) set(block uint64) []packedLine {
	s := int(block & c.setMask)
	return c.lines[s*c.assoc : (s+1)*c.assoc]
}

// Lookup returns the state of block in the cache (Invalid if absent).
func (c *Cache) Lookup(block uint64) uint8 {
	want := tagBits(block)
	for _, l := range c.set(block) {
		if uint64(l)&^3 == want {
			return l.state()
		}
	}
	return Invalid
}

// SetState changes the state of a resident block; it panics if the block is
// not resident (protocol bugs should fail loudly).
func (c *Cache) SetState(block uint64, state uint8) {
	ws := c.set(block)
	want := tagBits(block)
	for i := range ws {
		if uint64(ws[i])&^3 == want {
			if state == Invalid {
				ws[i] = 0
			} else {
				ws[i] = packLine(block, state)
			}
			return
		}
	}
	panic(fmt.Sprintf("memsim: SetState on non-resident block %#x", block))
}

// Invalidate removes block if resident, returning its previous state
// (Invalid if it was not resident — silent S-replacements make directories
// send invalidations for blocks a cache has already dropped).
func (c *Cache) Invalidate(block uint64) uint8 {
	ws := c.set(block)
	want := tagBits(block)
	for i := range ws {
		if uint64(ws[i])&^3 == want {
			st := ws[i].state()
			ws[i] = 0
			return st
		}
	}
	return Invalid
}

// Insert places block with the given state, choosing a victim at random if
// the set is full. It returns the evicted line (State Invalid if an empty
// way was used). Inserting a block that is already resident panics.
func (c *Cache) Insert(block uint64, state uint8) Line {
	ws := c.set(block)
	for i := range ws {
		if ws[i].valid() && ws[i].block() == block {
			panic(fmt.Sprintf("memsim: Insert of resident block %#x", block))
		}
	}
	for i := range ws {
		if !ws[i].valid() {
			ws[i] = packLine(block, state)
			return Line{}
		}
	}
	v := c.rng.Intn(c.assoc)
	victim := ws[v].unpack()
	ws[v] = packLine(block, state)
	return victim
}

// Resident reports how many lines are valid (for tests).
func (c *Cache) Resident() int {
	n := 0
	for _, l := range c.lines {
		if l.valid() {
			n++
		}
	}
	return n
}

// Flush invalidates the entire cache, returning the dirty lines that would
// require writeback.
func (c *Cache) Flush() []Line {
	var dirty []Line
	for i := range c.lines {
		if c.lines[i].state() == Modified {
			dirty = append(dirty, c.lines[i].unpack())
		}
		c.lines[i] = 0
	}
	return dirty
}
