// Package memsim models each node's memory system: the 256 KB 4-way
// set-associative cache with random replacement, the 64-entry FIFO TLB, the
// simulated address space (private per-node segments plus, on the
// shared-memory machine, globally addressable per-home arenas), and typed
// vectors that bind real Go data to simulated addresses.
//
// Programs perform real arithmetic on the Go backing data while every access
// is routed through the simulated TLB and cache, charging the paper's cost
// model. Cache hits cost no extra cycles — load/store instruction time is
// part of each application's calibrated computation constants, matching the
// paper's taxonomy in which only misses appear as separate categories.
package memsim

import "fmt"

// Address-space layout. Private segments are per-node and never globally
// addressable; the shared segment (used only by the shared-memory machine)
// is divided into per-home arenas so the home node of any address is a
// constant-time computation, as with a real directory machine's physical
// address interleaving.
const (
	// PrivBase is the start of private segments; node i owns
	// [PrivBase + i<<ArenaShift, PrivBase + (i+1)<<ArenaShift).
	PrivBase uint64 = 1 << 44
	// SharedBase is the start of the round-robin (striped) shared heap: the
	// home of an address rotates across nodes page by page, modeling the
	// parmacs gmalloc round-robin allocation the paper uses by default.
	SharedBase uint64 = 1 << 45
	// LocalBase is the start of the locally homed shared segment; home h
	// owns [LocalBase + h<<ArenaShift, ...). Used by the paper's
	// "local allocation policy" ablation (Table 17) and by data that must
	// live at a known home (MCS queue nodes).
	LocalBase uint64 = 1 << 46
	// ArenaShift sizes each private/local arena (64 GB).
	ArenaShift = 36
)

// IsShared reports whether an address lies in either shared segment.
func IsShared(addr uint64) bool { return addr >= SharedBase }

// HomeOf returns the home node of a shared address given the machine's node
// count and page shift (striped addresses rotate homes per page).
func HomeOf(addr uint64, procs int, pageShift uint) int {
	if addr >= LocalBase {
		return int((addr - LocalBase) >> ArenaShift)
	}
	if addr < SharedBase {
		panic(fmt.Sprintf("memsim: HomeOf private address %#x", addr))
	}
	return int(((addr - SharedBase) >> pageShift) % uint64(procs))
}

// Owner returns the node owning a private address.
func Owner(addr uint64) int {
	if IsShared(addr) || addr < PrivBase {
		panic(fmt.Sprintf("memsim: Owner of non-private address %#x", addr))
	}
	return int((addr - PrivBase) >> ArenaShift)
}

// AddrSpace allocates simulated addresses. All allocations are aligned to
// align bytes (at least the cache block size, so distinct allocations never
// share a block).
type AddrSpace struct {
	align       uint64
	privNext    []uint64
	stripedNext uint64
	localNext   []uint64
}

// NewAddrSpace creates an allocator for n nodes with the given alignment.
func NewAddrSpace(n int, align int) *AddrSpace {
	if align <= 0 || align&(align-1) != 0 {
		panic("memsim: alignment must be a positive power of two")
	}
	s := &AddrSpace{
		align:       uint64(align),
		privNext:    make([]uint64, n),
		stripedNext: SharedBase,
		localNext:   make([]uint64, n),
	}
	for i := range s.privNext {
		s.privNext[i] = PrivBase + uint64(i)<<ArenaShift
		s.localNext[i] = LocalBase + uint64(i)<<ArenaShift
	}
	return s
}

func (s *AddrSpace) take(next *uint64, bytes int) uint64 {
	if bytes < 0 {
		panic("memsim: negative allocation")
	}
	a := *next
	sz := (uint64(bytes) + s.align - 1) &^ (s.align - 1)
	if sz == 0 {
		sz = s.align
	}
	*next += sz
	return a
}

// AllocPrivate reserves bytes in node's private segment.
func (s *AddrSpace) AllocPrivate(node, bytes int) uint64 {
	return s.take(&s.privNext[node], bytes)
}

// AllocShared reserves bytes in the striped (round-robin) shared heap.
func (s *AddrSpace) AllocShared(bytes int) uint64 {
	return s.take(&s.stripedNext, bytes)
}

// AllocSharedOn reserves bytes in the shared segment homed entirely at home.
func (s *AddrSpace) AllocSharedOn(home, bytes int) uint64 {
	return s.take(&s.localNext[home], bytes)
}
