package memsim

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/stats"
)

func testCache(t *testing.T) *Cache {
	t.Helper()
	return NewCache(1024, 4, 32, sim.NewRNG(1)) // 8 sets of 4
}

func TestCacheInsertLookup(t *testing.T) {
	c := testCache(t)
	if st := c.Lookup(5); st != Invalid {
		t.Fatalf("empty cache lookup = %d", st)
	}
	if v := c.Insert(5, Shared); v.State != Invalid {
		t.Fatalf("insert into empty set evicted %+v", v)
	}
	if st := c.Lookup(5); st != Shared {
		t.Fatalf("lookup after insert = %d", st)
	}
	c.SetState(5, Modified)
	if st := c.Lookup(5); st != Modified {
		t.Fatalf("lookup after SetState = %d", st)
	}
	if st := c.Invalidate(5); st != Modified {
		t.Fatalf("invalidate returned %d", st)
	}
	if st := c.Lookup(5); st != Invalid {
		t.Fatalf("lookup after invalidate = %d", st)
	}
}

func TestCacheSetConflicts(t *testing.T) {
	c := testCache(t) // 8 sets: blocks k and k+8 share a set
	for i := 0; i < 4; i++ {
		if v := c.Insert(uint64(i*8), Modified); v.State != Invalid {
			t.Fatalf("eviction while filling set: %+v", v)
		}
	}
	v := c.Insert(4*8, Modified) // fifth block in a 4-way set
	if v.State == Invalid {
		t.Fatal("expected an eviction from a full set")
	}
	if v.Tag%8 != 0 || v.Tag >= 32 {
		t.Fatalf("victim %d not from the conflicting set", v.Tag)
	}
	// Other sets are untouched.
	if c.Resident() != 4 {
		t.Fatalf("resident = %d, want 4", c.Resident())
	}
}

func TestCacheInsertResidentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := testCache(t)
	c.Insert(7, Shared)
	c.Insert(7, Modified)
}

func TestCacheInvariantResidencyBound(t *testing.T) {
	// Property: after any access sequence, each set holds at most assoc
	// lines and every resident tag maps to its set.
	f := func(blocks []uint16) bool {
		c := NewCache(512, 2, 32, sim.NewRNG(3)) // 8 sets of 2
		for _, b := range blocks {
			blk := uint64(b % 64)
			if c.Lookup(blk) == Invalid {
				c.Insert(blk, Shared)
			}
		}
		counts := make(map[uint64]int)
		for _, pl := range c.lines {
			if !pl.valid() {
				continue
			}
			counts[pl.block()&7]++
		}
		for _, n := range counts {
			if n > 2 {
				return false
			}
		}
		return c.Resident() <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTLBFIFO(t *testing.T) {
	tlb := NewTLB(4, 4096)
	page := func(i int) uint64 { return uint64(i) * 4096 }
	for i := 0; i < 4; i++ {
		if tlb.Access(page(i)) {
			t.Fatalf("first access to page %d hit", i)
		}
	}
	for i := 0; i < 4; i++ {
		if !tlb.Access(page(i)) {
			t.Fatalf("second access to page %d missed", i)
		}
	}
	// Install a fifth page: evicts page 0 (FIFO), not the most recent.
	tlb.Access(page(4))
	if tlb.Access(page(0)) {
		t.Fatal("page 0 should have been evicted FIFO")
	}
	// Re-installing page 0 evicted page 1 (the next FIFO slot).
	if tlb.Access(page(1)) {
		t.Fatal("page 1 should have been evicted next")
	}
	// Re-installing page 1 evicted page 2; page 3 is still resident.
	if !tlb.Access(page(3)) {
		t.Fatal("page 3 should still be resident")
	}
	if tlb.Entries() != 4 {
		t.Fatalf("entries = %d, want 4", tlb.Entries())
	}
}

func TestAddrSpaceSegments(t *testing.T) {
	s := NewAddrSpace(4, 32)
	pa := s.AllocPrivate(2, 100)
	if IsShared(pa) {
		t.Error("private allocation classified shared")
	}
	if Owner(pa) != 2 {
		t.Errorf("owner = %d, want 2", Owner(pa))
	}
	sa := s.AllocShared(100)
	if !IsShared(sa) {
		t.Error("striped allocation not shared")
	}
	la := s.AllocSharedOn(3, 64)
	if !IsShared(la) {
		t.Error("local-shared allocation not shared")
	}
	if h := HomeOf(la, 4, 12); h != 3 {
		t.Errorf("home = %d, want 3", h)
	}
}

func TestStripedHomesRotateByPage(t *testing.T) {
	const procs = 4
	s := NewAddrSpace(procs, 32)
	base := s.AllocShared(procs * 4096)
	seen := make(map[int]bool)
	for i := 0; i < procs; i++ {
		h := HomeOf(base+uint64(i)*4096, procs, 12)
		seen[h] = true
	}
	if len(seen) != procs {
		t.Errorf("striping visited %d homes, want %d", len(seen), procs)
	}
}

func TestAddrSpaceNonOverlap(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := NewAddrSpace(3, 32)
		type rng struct{ lo, hi uint64 }
		var rs []rng
		for i, sz := range sizes {
			n := int(sz) + 1
			var a uint64
			switch i % 3 {
			case 0:
				a = s.AllocPrivate(i%3, n)
			case 1:
				a = s.AllocShared(n)
			case 2:
				a = s.AllocSharedOn(i%3, n)
			}
			rs = append(rs, rng{a, a + uint64(n)})
		}
		for i := range rs {
			if rs[i].lo%32 != 0 {
				return false // alignment violated
			}
			for j := i + 1; j < len(rs); j++ {
				if rs[i].lo < rs[j].hi && rs[j].lo < rs[i].hi {
					return false // overlap
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// memEnv builds a single-proc engine+mem for accounting tests.
func memEnv(t *testing.T, body func(p *sim.Proc, m *Mem)) *stats.Acct {
	t.Helper()
	cfg := cost.Default(1)
	eng := sim.NewEngine(cfg.NetLatency)
	var acct *stats.Acct
	p := eng.AddProc(func(p *sim.Proc) {
		m := NewMem(p, &cfg, 1)
		body(p, m)
	})
	acct = p.Acct
	eng.Run()
	return acct
}

func TestPrivateMissCost(t *testing.T) {
	acct := memEnv(t, func(p *sim.Proc, m *Mem) {
		space := NewAddrSpace(1, 32)
		a := space.AllocPrivate(0, 4096)
		m.Read(a)     // miss: 11 + 10
		m.Read(a + 8) // hit within the block
		m.Write(a)    // hit (private lines are writable)
	})
	want := int64(11 + 10)
	if c := acct.Cycles(stats.PhaseDefault, stats.LocalMiss); c != want {
		t.Errorf("local miss cycles = %d, want %d", c, want)
	}
	if n := acct.Counts(stats.PhaseDefault, stats.CntLocalMisses); n != 1 {
		t.Errorf("local misses = %d, want 1", n)
	}
}

func TestTLBMissChargedOnce(t *testing.T) {
	acct := memEnv(t, func(p *sim.Proc, m *Mem) {
		space := NewAddrSpace(1, 32)
		a := space.AllocPrivate(0, 8192)
		m.Read(a)
		m.Read(a + 64) // same page: TLB hit, cache miss
		m.Read(a + 4096)
	})
	if n := acct.Counts(stats.PhaseDefault, stats.CntTLBMisses); n != 2 {
		t.Errorf("TLB misses = %d, want 2", n)
	}
	if c := acct.Cycles(stats.PhaseDefault, stats.TLBMiss); c != 60 {
		t.Errorf("TLB cycles = %d, want 60", c)
	}
}

func TestReadRangeWalksBlocks(t *testing.T) {
	acct := memEnv(t, func(p *sim.Proc, m *Mem) {
		space := NewAddrSpace(1, 32)
		a := space.AllocPrivate(0, 1<<16)
		m.ReadRange(a, 1000) // 1000 bytes = 32 blocks (31.25 rounded by cover)
	})
	if n := acct.Counts(stats.PhaseDefault, stats.CntLocalMisses); n != 32 {
		t.Errorf("misses = %d, want 32", n)
	}
}

func TestEvictionChargesReplacement(t *testing.T) {
	// Touch assoc+1 blocks mapping to one set; one must evict with the
	// 1-cycle write-buffer replacement.
	cfg := cost.Default(1)
	sets := cfg.Sets()
	acct := memEnv(t, func(p *sim.Proc, m *Mem) {
		space := NewAddrSpace(1, 32)
		a := space.AllocPrivate(0, 1<<24)
		for i := 0; i <= cfg.CacheAssoc; i++ {
			m.Read(a + uint64(i*sets*cfg.BlockBytes))
		}
	})
	miss := cfg.PrivateMissTotal()
	want := int64(cfg.CacheAssoc+1)*miss + cfg.MPReplacement
	if c := acct.Cycles(stats.PhaseDefault, stats.LocalMiss); c != want {
		t.Errorf("cycles = %d, want %d", c, want)
	}
}

func TestVecRoundTrip(t *testing.T) {
	memEnv(t, func(p *sim.Proc, m *Mem) {
		space := NewAddrSpace(1, 32)
		v := NewFVec(space.AllocPrivate(0, 80), 10)
		v.Set(m, 3, 2.5)
		if got := v.Get(m, 3); got != 2.5 {
			t.Errorf("FVec round trip = %v", got)
		}
		iv := NewIVec(space.AllocPrivate(0, 80), 10)
		iv.Set(m, 9, -7)
		if got := iv.Get(m, 9); got != -7 {
			t.Errorf("IVec round trip = %v", got)
		}
		if v.Addr(1)-v.Addr(0) != 8 {
			t.Error("element stride wrong")
		}
	})
}

func TestFlushBlockForgetsLine(t *testing.T) {
	acct := memEnv(t, func(p *sim.Proc, m *Mem) {
		space := NewAddrSpace(1, 32)
		a := space.AllocPrivate(0, 4096)
		m.Read(a)
		m.FlushBlock(a)
		m.Read(a) // must miss again
	})
	if n := acct.Counts(stats.PhaseDefault, stats.CntLocalMisses); n != 2 {
		t.Errorf("misses = %d, want 2", n)
	}
}

func TestStaleVecDeliversCachedValues(t *testing.T) {
	// StaleVec semantics: a reader sees the snapshot from its last miss,
	// not the globally freshest backing value, until its copy is dropped
	// and refetched.
	cfg := cost.Default(1)
	eng := sim.NewEngine(cfg.NetLatency)
	p := eng.AddProc(func(p *sim.Proc) {
		m := NewMem(p, &cfg, 1)
		space := NewAddrSpace(1, 32)
		// Place the vector in private space: no coherence, so the only
		// refresh trigger is a cache miss, which we force with FlushBlock.
		g := NewFVec(space.AllocPrivate(0, 64), 8)
		sv := NewStaleVec(eng, &g, 1)

		sv.Set(m, 0, 1.0)
		if got := sv.Get(m, 0); got != 1.0 {
			t.Errorf("own write not visible: %v", got)
		}
		// Simulate another party updating the backing without this
		// processor's cache noticing.
		g.V[0] = 2.0
		if got := sv.Get(m, 0); got != 1.0 {
			t.Errorf("cached read = %v, want the stale 1.0", got)
		}
		// Refetches copy from the quantum-boundary image, so burn enough
		// cycles for a boundary to publish the new backing value first.
		p.Compute(2 * int64(eng.Quantum))
		// Drop the line: the next read misses and refreshes the snapshot.
		m.FlushBlock(g.Addr(0))
		if got := sv.Get(m, 0); got != 2.0 {
			t.Errorf("post-miss read = %v, want the fresh 2.0", got)
		}
	})
	_ = p
	eng.Run()
}

func TestWriteRetiresOnlyWithOwnership(t *testing.T) {
	// Private writes always succeed; the retry loop must not spin for
	// non-shared addresses.
	acct := memEnv(t, func(p *sim.Proc, m *Mem) {
		space := NewAddrSpace(1, 32)
		a := space.AllocPrivate(0, 64)
		m.Write(a)
		m.Write(a) // hit
	})
	if n := acct.Counts(stats.PhaseDefault, stats.CntLocalMisses); n != 1 {
		t.Errorf("misses = %d, want 1", n)
	}
}
