package memsim

import (
	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SharedHandler is implemented by the shared-memory machine's coherence
// layer. Mem routes every access to a shared-segment address that cannot be
// satisfied by the local cache through this interface. Handlers manipulate
// the cache themselves (insertion, state changes, victim handling) and
// charge/stall the processor per the protocol.
type SharedHandler interface {
	// ReadMiss obtains a readable copy of block for m's processor.
	ReadMiss(m *Mem, block uint64)
	// WriteAccess obtains a writable copy. resident is the block's current
	// local state: Shared means an upgrade (a write fault in the paper's
	// terms), Invalid a full write miss.
	WriteAccess(m *Mem, block uint64, resident uint8)
	// Evict performs replacement bookkeeping when a shared block is chosen
	// as a victim (writeback of dirty data, replacement cost). The
	// replacement cycles are charged to cat, the category of the miss that
	// forced the eviction.
	Evict(m *Mem, victim Line, cat stats.Category)
	// Flush performs an explicit software flush of a shared line: unlike a
	// silent capacity eviction, it sends the directory a replacement hint
	// so the line leaves the copyset (the paper's §5.3.4 optimization —
	// one message instead of a later invalidation round trip).
	Flush(m *Mem, victim Line, cat stats.Category)
}

// Mem is one processor's memory-system front end: TLB + cache + (on the
// shared-memory machine) the coherence handler. Cache hits are free —
// instruction time lives in the applications' calibrated computation
// constants — so only misses, write faults, and TLB refills charge cycles,
// mirroring the paper's accounting.
type Mem struct {
	P      *sim.Proc
	Cfg    *cost.Config
	Cache  *Cache
	TLB    *TLB
	Shared SharedHandler // nil on the message-passing machine

	// Refs counts simulated references (reads+writes), for tests.
	Refs int64
}

// NewMem builds the memory system for proc p. rngSeed feeds the cache's
// random-replacement generator.
func NewMem(p *sim.Proc, cfg *cost.Config, rngSeed uint64) *Mem {
	return &Mem{
		P:     p,
		Cfg:   cfg,
		Cache: NewCache(cfg.CacheBytes, cfg.CacheAssoc, cfg.BlockBytes, sim.NewRNG(rngSeed)),
		TLB:   NewTLB(cfg.TLBEntries, cfg.PageBytes),
	}
}

func (m *Mem) translate(addr uint64) {
	if !m.TLB.Access(addr) {
		m.P.ChargeStall(stats.TLBMiss, m.Cfg.TLBMissCycles)
		m.P.Acct.Add(stats.CntTLBMisses, 1)
	}
}

// Read simulates a load from addr.
func (m *Mem) Read(addr uint64) { m.ReadTrack(addr) }

// ReadTrack simulates a load and reports whether it missed in the cache —
// staleness-aware data structures use this to refresh their block snapshot
// exactly when real hardware would observe new values.
func (m *Mem) ReadTrack(addr uint64) bool {
	m.P.Interact()
	m.Refs++
	m.translate(addr)
	block := m.Cache.BlockOf(addr)
	if m.Cache.Lookup(block) != Invalid {
		return false // hit
	}
	if m.Shared != nil && IsShared(addr) {
		m.Shared.ReadMiss(m, block)
		return true
	}
	m.privateMiss(block)
	return true
}

// Write simulates a store to addr. A store to shared data retires only
// while the line is held Modified: if ownership is stolen (a downgrade or
// invalidation racing in) between the grant and the processor resuming, the
// store re-acquires ownership — the retry sequentially consistent hardware
// performs.
func (m *Mem) Write(addr uint64) {
	m.P.Interact()
	m.Refs++
	m.translate(addr)
	block := m.Cache.BlockOf(addr)
	for {
		st := m.Cache.Lookup(block)
		if st == Modified {
			return // write permission held; the store retires
		}
		if m.Shared != nil && IsShared(addr) {
			m.Shared.WriteAccess(m, block, st)
			continue // verify ownership survived until retirement
		}
		m.privateMiss(block)
		return
	}
}

// privateMiss services a miss to private/local data: Table 1's 11 cycles +
// DRAM + replacement cost if a block is replaced. Private lines are
// inserted Modified (writable; dirtiness does not change private
// replacement cost on either machine).
func (m *Mem) privateMiss(block uint64) {
	cat, cnt := m.P.MissCategory()
	cost := m.Cfg.PrivateMissCycles + m.Cfg.DRAMCycles
	victim := m.Cache.Insert(block, Modified)
	if victim.State != Invalid {
		if m.Shared != nil && IsShared(victim.Tag<<m.Cache.BlockShift()) {
			m.Shared.Evict(m, victim, cat)
		} else {
			cost += m.privReplCost()
		}
	}
	m.P.ChargeStall(cat, cost)
	m.P.Acct.Add(cnt, 1)
}

func (m *Mem) privReplCost() int64 {
	if m.Shared != nil {
		return m.Cfg.ReplPrivate
	}
	return m.Cfg.MPReplacement
}

// ReadRange simulates streaming loads over [addr, addr+bytes). One access
// per cache block is simulated — exact for timing, since within-block hits
// are free.
func (m *Mem) ReadRange(addr uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	bs := uint64(m.Cfg.BlockBytes)
	end := addr + uint64(bytes)
	for a := addr &^ (bs - 1); a < end; a += bs {
		m.Read(a)
	}
}

// WriteRange simulates streaming stores over [addr, addr+bytes).
func (m *Mem) WriteRange(addr uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	bs := uint64(m.Cfg.BlockBytes)
	end := addr + uint64(bytes)
	for a := addr &^ (bs - 1); a < end; a += bs {
		m.Write(a)
	}
}

// FlushBlock removes a block containing addr from the cache (the software
// flush optimization discussed in the paper's EM3D section). Dirty shared
// victims write back through the coherence handler.
func (m *Mem) FlushBlock(addr uint64) {
	m.P.Interact()
	block := m.Cache.BlockOf(addr)
	st := m.Cache.Lookup(block)
	if st == Invalid {
		return
	}
	line := Line{Tag: block, State: st}
	m.Cache.Invalidate(block)
	if m.Shared != nil && IsShared(addr) {
		cat, _ := m.P.MissCategory()
		m.Shared.Flush(m, line, cat)
	}
}
