package memsim

import (
	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SharedHandler is implemented by the shared-memory machine's coherence
// layer. Mem routes every access to a shared-segment address that cannot be
// satisfied by the local cache through this interface. Handlers manipulate
// the cache themselves (insertion, state changes, victim handling) and
// charge/stall the processor per the protocol.
type SharedHandler interface {
	// ReadMiss obtains a readable copy of block for m's processor.
	ReadMiss(m *Mem, block uint64)
	// WriteAccess obtains a writable copy. resident is the block's current
	// local state: Shared means an upgrade (a write fault in the paper's
	// terms), Invalid a full write miss.
	WriteAccess(m *Mem, block uint64, resident uint8)
	// Evict performs replacement bookkeeping when a shared block is chosen
	// as a victim (writeback of dirty data, replacement cost). The
	// replacement cycles are charged to cat, the category of the miss that
	// forced the eviction.
	Evict(m *Mem, victim Line, cat stats.Category)
	// Flush performs an explicit software flush of a shared line: unlike a
	// silent capacity eviction, it sends the directory a replacement hint
	// so the line leaves the copyset (the paper's §5.3.4 optimization —
	// one message instead of a later invalidation round trip).
	Flush(m *Mem, victim Line, cat stats.Category)
}

// StepSharedHandler is the step-processor face of a coherence layer: each
// method begins or resumes a miss transaction without suspending a
// goroutine. A false return means the requesting processor blocked (the
// step must return sim.StepYield); the re-invocation that finds a wake
// pending consumes it and finishes the transaction. Implemented by
// coherence.Protocol.
type StepSharedHandler interface {
	SharedHandler
	// StepReadMiss begins/resumes fetching a readable copy of block.
	StepReadMiss(m *Mem, block uint64) bool
	// StepWriteAccess begins/resumes obtaining a writable copy.
	StepWriteAccess(m *Mem, block uint64, resident uint8) bool
}

// Mem is one processor's memory-system front end: TLB + cache + (on the
// shared-memory machine) the coherence handler. Cache hits are free —
// instruction time lives in the applications' calibrated computation
// constants — so only misses, write faults, and TLB refills charge cycles,
// mirroring the paper's accounting.
type Mem struct {
	P      *sim.Proc
	Cfg    *cost.Config
	Cache  *Cache
	TLB    *TLB
	Shared SharedHandler // nil on the message-passing machine

	// Refs counts simulated references (reads+writes), for tests.
	Refs int64

	// stepSh caches the Shared handler's step interface (step form only).
	stepSh StepSharedHandler
	// stepRange is the resumable cursor of an in-progress Step*Range walk:
	// the next block address to access. Step processors are serial, so one
	// cursor per Mem suffices.
	stepRange   uint64
	stepRangeOn bool
}

// NewMem builds the memory system for proc p. rngSeed feeds the cache's
// random-replacement generator.
func NewMem(p *sim.Proc, cfg *cost.Config, rngSeed uint64) *Mem {
	return &Mem{
		P:     p,
		Cfg:   cfg,
		Cache: NewCache(cfg.CacheBytes, cfg.CacheAssoc, cfg.BlockBytes, sim.NewRNG(rngSeed)),
		TLB:   NewTLB(cfg.TLBEntries, cfg.PageBytes),
	}
}

func (m *Mem) translate(addr uint64) {
	if !m.TLB.Access(addr) {
		m.P.ChargeStall(stats.TLBMiss, m.Cfg.TLBMissCycles)
		m.P.Acct.Add(stats.CntTLBMisses, 1)
	}
}

// Read simulates a load from addr.
func (m *Mem) Read(addr uint64) { m.ReadTrack(addr) }

// ReadTrack simulates a load and reports whether it missed in the cache —
// staleness-aware data structures use this to refresh their block snapshot
// exactly when real hardware would observe new values.
func (m *Mem) ReadTrack(addr uint64) bool {
	m.P.Interact()
	m.Refs++
	m.translate(addr)
	block := m.Cache.BlockOf(addr)
	if m.Cache.Lookup(block) != Invalid {
		return false // hit
	}
	if m.Shared != nil && IsShared(addr) {
		m.Shared.ReadMiss(m, block)
		return true
	}
	m.privateMiss(block)
	return true
}

// Write simulates a store to addr. A store to shared data retires only
// while the line is held Modified: if ownership is stolen (a downgrade or
// invalidation racing in) between the grant and the processor resuming, the
// store re-acquires ownership — the retry sequentially consistent hardware
// performs.
func (m *Mem) Write(addr uint64) {
	m.P.Interact()
	m.Refs++
	m.translate(addr)
	block := m.Cache.BlockOf(addr)
	for {
		st := m.Cache.Lookup(block)
		if st == Modified {
			return // write permission held; the store retires
		}
		if m.Shared != nil && IsShared(addr) {
			m.Shared.WriteAccess(m, block, st)
			continue // verify ownership survived until retirement
		}
		m.privateMiss(block)
		return
	}
}

// privateMiss services a miss to private/local data: Table 1's 11 cycles +
// DRAM + replacement cost if a block is replaced. Private lines are
// inserted Modified (writable; dirtiness does not change private
// replacement cost on either machine).
func (m *Mem) privateMiss(block uint64) {
	cat, cnt := m.P.MissCategory()
	cost := m.Cfg.PrivateMissCycles + m.Cfg.DRAMCycles
	victim := m.Cache.Insert(block, Modified)
	if victim.State != Invalid {
		if m.Shared != nil && IsShared(victim.Tag<<m.Cache.BlockShift()) {
			m.Shared.Evict(m, victim, cat)
		} else {
			cost += m.privReplCost()
		}
	}
	m.P.ChargeStall(cat, cost)
	m.P.Acct.Add(cnt, 1)
}

func (m *Mem) privReplCost() int64 {
	if m.Shared != nil {
		return m.Cfg.ReplPrivate
	}
	return m.Cfg.MPReplacement
}

// ReadRange simulates streaming loads over [addr, addr+bytes). One access
// per cache block is simulated — exact for timing, since within-block hits
// are free.
func (m *Mem) ReadRange(addr uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	bs := uint64(m.Cfg.BlockBytes)
	end := addr + uint64(bytes)
	for a := addr &^ (bs - 1); a < end; a += bs {
		m.Read(a)
	}
}

// WriteRange simulates streaming stores over [addr, addr+bytes).
func (m *Mem) WriteRange(addr uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	bs := uint64(m.Cfg.BlockBytes)
	end := addr + uint64(bytes)
	for a := addr &^ (bs - 1); a < end; a += bs {
		m.Write(a)
	}
}

// Step-processor access forms. Each mirrors its coroutine twin exactly:
// the StepInteract check sits where the coroutine's Interact sits, every
// charge lands at the same clock, and a blocking shared miss suspends at
// the same point — so the two forms produce bit-identical statistics at
// every quantum boundary. A false return means "not done, nothing further
// mutated": the step returns sim.StepYield and re-invokes the same call
// with the same arguments when redispatched.

// stepShared returns the coherence layer's step interface, caching the
// assertion. Panics if the attached handler has no step form.
func (m *Mem) stepShared() StepSharedHandler {
	if m.stepSh == nil {
		m.stepSh = m.Shared.(StepSharedHandler)
	}
	return m.stepSh
}

// StepRead is Read for step processors.
func (m *Mem) StepRead(addr uint64) bool {
	done, _ := m.StepReadTrack(addr)
	return done
}

// StepReadTrack is ReadTrack for step processors: done reports whether the
// access completed, and missed (valid only when done) whether it missed.
// A resumed access always reports missed — only a shared miss blocks.
func (m *Mem) StepReadTrack(addr uint64) (done, missed bool) {
	p := m.P
	if p.WakePending() {
		// Resuming the shared-miss transaction this access issued.
		if !m.stepShared().StepReadMiss(m, m.Cache.BlockOf(addr)) {
			return false, true
		}
		return true, true
	}
	if !p.StepInteract() {
		return false, false
	}
	m.Refs++
	m.translate(addr)
	block := m.Cache.BlockOf(addr)
	if m.Cache.Lookup(block) != Invalid {
		return true, false // hit
	}
	if m.Shared != nil && IsShared(addr) {
		m.stepShared().StepReadMiss(m, block) // issues and blocks
		return false, true
	}
	m.privateMiss(block)
	return true, true
}

// StepWrite is Write for step processors, preserving the ownership-retry
// loop: after a grant the line is re-checked, and a stolen line re-acquires
// ownership exactly as the coroutine form does.
func (m *Mem) StepWrite(addr uint64) bool {
	p := m.P
	block := m.Cache.BlockOf(addr)
	if p.WakePending() {
		if !m.stepShared().StepWriteAccess(m, block, Invalid) {
			return false
		}
		// Grant installed; verify ownership survived until retirement.
	} else {
		if !p.StepInteract() {
			return false
		}
		m.Refs++
		m.translate(addr)
	}
	for {
		st := m.Cache.Lookup(block)
		if st == Modified {
			return true
		}
		if m.Shared != nil && IsShared(addr) {
			m.stepShared().StepWriteAccess(m, block, st) // issues and blocks
			return false
		}
		m.privateMiss(block)
		return true
	}
}

// StepReadRange is ReadRange for step processors: the block cursor is held
// in the Mem, so a blocked access resumes mid-range.
func (m *Mem) StepReadRange(addr uint64, bytes int) bool {
	return m.stepRangeWalk(addr, bytes, false)
}

// StepWriteRange is WriteRange for step processors.
func (m *Mem) StepWriteRange(addr uint64, bytes int) bool {
	return m.stepRangeWalk(addr, bytes, true)
}

func (m *Mem) stepRangeWalk(addr uint64, bytes int, write bool) bool {
	if bytes <= 0 {
		return true
	}
	bs := uint64(m.Cfg.BlockBytes)
	end := addr + uint64(bytes)
	if !m.stepRangeOn {
		m.stepRangeOn = true
		m.stepRange = addr &^ (bs - 1)
	}
	for m.stepRange < end {
		if write {
			if !m.StepWrite(m.stepRange) {
				return false
			}
		} else {
			if !m.StepRead(m.stepRange) {
				return false
			}
		}
		m.stepRange += bs
	}
	m.stepRangeOn = false
	return true
}

// StepFlushBlock is FlushBlock for step processors. Flushes never block
// (dirty writebacks travel as staged events), so the only suspension point
// is the entry Interact.
func (m *Mem) StepFlushBlock(addr uint64) bool {
	if !m.P.StepInteract() {
		return false
	}
	block := m.Cache.BlockOf(addr)
	st := m.Cache.Lookup(block)
	if st == Invalid {
		return true
	}
	line := Line{Tag: block, State: st}
	m.Cache.Invalidate(block)
	if m.Shared != nil && IsShared(addr) {
		cat, _ := m.P.MissCategory()
		m.Shared.Flush(m, line, cat)
	}
	return true
}

// FlushBlock removes a block containing addr from the cache (the software
// flush optimization discussed in the paper's EM3D section). Dirty shared
// victims write back through the coherence handler.
func (m *Mem) FlushBlock(addr uint64) {
	m.P.Interact()
	block := m.Cache.BlockOf(addr)
	st := m.Cache.Lookup(block)
	if st == Invalid {
		return
	}
	line := Line{Tag: block, State: st}
	m.Cache.Invalidate(block)
	if m.Shared != nil && IsShared(addr) {
		cat, _ := m.P.MissCategory()
		m.Shared.Flush(m, line, cat)
	}
}
