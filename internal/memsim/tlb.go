package memsim

// TLB models the 64-entry fully associative TLB with FIFO replacement and
// 4 KB pages (Table 1). A one-entry MRU filter makes the common sequential
// case cheap to simulate.
//
// Residency is tracked in a small open-addressed hash table rather than a
// Go map: the table is allocated once at construction, so the translate
// fast path performs no map operations and no allocation. Replacement
// semantics (FIFO order, miss counts) are driven entirely by the fifo ring
// and are bit-identical to the earlier map-backed implementation.
type TLB struct {
	capacity  int
	pageShift uint
	fifo      []uint64
	head      int
	// Open-addressed residency table with linear probing. Slots store
	// page+1 so the zero value means empty (page numbers start at 0).
	// Sized at 4x capacity (≤25% load) so probe chains stay short.
	slots   []uint64
	slotMask uint64
	// Small MRU filter: simulated code commonly alternates between a few
	// streams (metadata, values, a buffer), so a handful of recent pages
	// short-circuits most probes.
	mru    [4]uint64
	mruOK  [4]bool
	misses int64
}

// NewTLB constructs a TLB with the given entry count and page size.
func NewTLB(entries, pageBytes int) *TLB {
	ps := uint(0)
	for 1<<ps < pageBytes {
		ps++
	}
	nslots := 1
	for nslots < entries*4 {
		nslots <<= 1
	}
	return &TLB{
		capacity:  entries,
		pageShift: ps,
		fifo:      make([]uint64, 0, entries),
		slots:     make([]uint64, nslots),
		slotMask:  uint64(nslots - 1),
	}
}

// slotOf returns the table index holding page, or the index of the empty
// slot ending its probe chain if the page is absent (found=false).
func (t *TLB) slotOf(page uint64) (int, bool) {
	i := (page * 0x9E3779B97F4A7C15) >> 32 & t.slotMask
	for {
		s := t.slots[i]
		if s == 0 {
			return int(i), false
		}
		if s == page+1 {
			return int(i), true
		}
		i = (i + 1) & t.slotMask
	}
}

// insert adds page to the residency table (the caller guarantees absence).
func (t *TLB) insert(page uint64) {
	i, _ := t.slotOf(page)
	t.slots[i] = page + 1
}

// remove deletes page from the residency table with backward-shift
// deletion, keeping every remaining probe chain unbroken.
func (t *TLB) remove(page uint64) {
	i, ok := t.slotOf(page)
	if !ok {
		return
	}
	hole := uint64(i)
	j := (hole + 1) & t.slotMask
	for t.slots[j] != 0 {
		home := (t.slots[j] - 1) * 0x9E3779B97F4A7C15 >> 32 & t.slotMask
		// Shift the entry back iff its home position does not sit inside
		// (hole, j] — i.e. the hole interrupts its probe chain.
		if (j > hole && (home <= hole || home > j)) ||
			(j < hole && home <= hole && home > j) {
			t.slots[hole] = t.slots[j]
			hole = j
		}
		j = (j + 1) & t.slotMask
	}
	t.slots[hole] = 0
}

// Access translates addr, returning true on a hit. On a miss the page is
// installed, evicting the oldest entry FIFO-style.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageShift
	for i := range t.mru {
		if t.mruOK[i] && t.mru[i] == page {
			return true
		}
	}
	if _, ok := t.slotOf(page); ok {
		t.noteMRU(page)
		return true
	}
	t.misses++
	if len(t.fifo) < t.capacity {
		t.fifo = append(t.fifo, page)
	} else {
		evicted := t.fifo[t.head]
		t.remove(evicted)
		t.fifo[t.head] = page
		t.head = (t.head + 1) % t.capacity
		for i := range t.mru {
			if t.mruOK[i] && t.mru[i] == evicted {
				t.mruOK[i] = false
			}
		}
	}
	t.insert(page)
	t.noteMRU(page)
	return false
}

func (t *TLB) noteMRU(page uint64) {
	copy(t.mru[1:], t.mru[:len(t.mru)-1])
	copy(t.mruOK[1:], t.mruOK[:len(t.mruOK)-1])
	t.mru[0], t.mruOK[0] = page, true
}

// Misses returns the cumulative miss count.
func (t *TLB) Misses() int64 { return t.misses }

// Entries returns the number of resident translations (for tests).
func (t *TLB) Entries() int {
	n := 0
	for _, s := range t.slots {
		if s != 0 {
			n++
		}
	}
	return n
}
