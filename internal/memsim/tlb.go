package memsim

// TLB models the 64-entry fully associative TLB with FIFO replacement and
// 4 KB pages (Table 1). A one-entry MRU filter makes the common sequential
// case cheap to simulate.
type TLB struct {
	capacity  int
	pageShift uint
	present   map[uint64]struct{}
	fifo      []uint64
	head      int
	// Small MRU filter: simulated code commonly alternates between a few
	// streams (metadata, values, a buffer), so a handful of recent pages
	// short-circuits most map lookups.
	mru    [4]uint64
	mruOK  [4]bool
	misses int64
}

// NewTLB constructs a TLB with the given entry count and page size.
func NewTLB(entries, pageBytes int) *TLB {
	ps := uint(0)
	for 1<<ps < pageBytes {
		ps++
	}
	return &TLB{
		capacity:  entries,
		pageShift: ps,
		present:   make(map[uint64]struct{}, entries*2),
		fifo:      make([]uint64, 0, entries),
	}
}

// Access translates addr, returning true on a hit. On a miss the page is
// installed, evicting the oldest entry FIFO-style.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageShift
	for i := range t.mru {
		if t.mruOK[i] && t.mru[i] == page {
			return true
		}
	}
	if _, ok := t.present[page]; ok {
		t.noteMRU(page)
		return true
	}
	t.misses++
	if len(t.fifo) < t.capacity {
		t.fifo = append(t.fifo, page)
	} else {
		evicted := t.fifo[t.head]
		delete(t.present, evicted)
		t.fifo[t.head] = page
		t.head = (t.head + 1) % t.capacity
		for i := range t.mru {
			if t.mruOK[i] && t.mru[i] == evicted {
				t.mruOK[i] = false
			}
		}
	}
	t.present[page] = struct{}{}
	t.noteMRU(page)
	return false
}

func (t *TLB) noteMRU(page uint64) {
	copy(t.mru[1:], t.mru[:len(t.mru)-1])
	copy(t.mruOK[1:], t.mruOK[:len(t.mruOK)-1])
	t.mru[0], t.mruOK[0] = page, true
}

// Misses returns the cumulative miss count.
func (t *TLB) Misses() int64 { return t.misses }

// Entries returns the number of resident translations (for tests).
func (t *TLB) Entries() int { return len(t.present) }
