package stats

import (
	"testing"
	"testing/quick"
)

func TestChargeAndPhases(t *testing.T) {
	a := &Acct{}
	a.Charge(Comp, 100)
	a.SetPhase(2)
	a.Charge(Comp, 50)
	a.Charge(LibComp, 7)
	a.Add(CntMessages, 3)
	if got := a.Cycles(PhaseDefault, Comp); got != 100 {
		t.Errorf("phase 0 comp = %d", got)
	}
	if got := a.Cycles(2, Comp); got != 50 {
		t.Errorf("phase 2 comp = %d", got)
	}
	if got := a.Cycles(1, Comp); got != 0 {
		t.Errorf("untouched phase = %d", got)
	}
	if got := a.Counts(2, CntMessages); got != 3 {
		t.Errorf("counts = %d", got)
	}
	if a.NumPhases() != 3 {
		t.Errorf("NumPhases = %d", a.NumPhases())
	}
	if got := a.TotalCycles(2); got != 57 {
		t.Errorf("total = %d", got)
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := &Acct{}
	a.Charge(Comp, -1)
}

func TestSummarizeAverages(t *testing.T) {
	a, b := &Acct{}, &Acct{}
	a.Charge(Comp, 100)
	b.Charge(Comp, 300)
	b.SetPhase(1)
	b.Charge(BarrierWait, 40)
	s := Summarize([]*Acct{a, b})
	if got := s.Cycles(PhaseDefault, Comp); got != 200 {
		t.Errorf("avg comp = %v", got)
	}
	if got := s.Cycles(1, BarrierWait); got != 20 {
		t.Errorf("avg barrier = %v", got)
	}
	if got := s.CyclesAll(Comp); got != 200 {
		t.Errorf("all-phase comp = %v", got)
	}
	if got := s.TotalCyclesAll(); got != 220 {
		t.Errorf("grand total = %v", got)
	}
}

func TestCompPerDataByte(t *testing.T) {
	a := &Acct{}
	a.Charge(Comp, 1000)
	a.Add(CntBytesData, 50)
	s := Summarize([]*Acct{a})
	if got := s.CompPerDataByte(PhaseDefault); got != 20 {
		t.Errorf("comp/byte = %v", got)
	}
	empty := Summarize([]*Acct{{}})
	if got := empty.CompPerDataByte(PhaseDefault); got != 0 {
		t.Errorf("empty comp/byte = %v", got)
	}
}

func TestCategoryAndCountNames(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == "" || len(c.String()) > 40 {
			t.Errorf("bad name for category %d: %q", c, c.String())
		}
	}
	for c := Count(0); c < NumCounts; c++ {
		if c.String() == "" {
			t.Errorf("bad name for count %d", c)
		}
	}
	if Category(99).String() != "Category(99)" {
		t.Error("out-of-range category name")
	}
}

func TestSummarizeConservesTotals(t *testing.T) {
	// Property: sum over processors of per-category cycles equals
	// procs * averaged summary value.
	f := func(charges []uint16) bool {
		accts := []*Acct{{}, {}, {}}
		var total int64
		for i, c := range charges {
			v := int64(c % 1000)
			accts[i%3].Charge(Category(int(c)%int(NumCategories)), v)
			total += v
		}
		s := Summarize(accts)
		return int64(s.TotalCyclesAll()*3+0.5) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
