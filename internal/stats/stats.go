// Package stats implements the time-accounting taxonomy of the ASPLOS 1994
// study "Where is Time Spent in Message-Passing and Shared-Memory Programs?".
//
// Every cycle a simulated processor advances is charged to exactly one
// Category, and discrete events (messages, misses, bytes on the wire) are
// tallied as Counts. Accounting is phase-aware: EM3D, for example, reports
// its initialization and main loop separately (paper Tables 12 and 14).
package stats

import (
	"fmt"
	"math/bits"

	"repro/internal/snapshot"
)

// Category identifies where a processor's cycles were spent. The categories
// are the union of the message-passing breakdown (computation, local misses,
// library computation, library misses, network access, barriers) and the
// shared-memory breakdown (computation, private/shared misses, write faults,
// TLB misses, locks, barriers, reduction and synchronization computation,
// start-up wait).
type Category int

const (
	// Comp is application computation.
	Comp Category = iota
	// LocalMiss is stall time on private/local-data cache misses incurred in
	// application code (both machines; "Local Misses" in the MP tables,
	// "Private Misses" contribution to "Cache Misses" in the SM tables).
	LocalMiss
	// LibComp is time executing message-passing library code, including
	// poll-driven waiting. The paper notes that load-imbalance wait in MP
	// programs shows up here.
	LibComp
	// LibMiss is stall time on local-data cache misses incurred inside
	// message-passing library routines.
	LibMiss
	// NetAccess is time spent accessing the memory-mapped network interface
	// (status reads, tag/destination writes, FIFO loads and stores).
	NetAccess
	// BarrierWait is time blocked at the hardware barrier.
	BarrierWait
	// StartupWait is time a shared-memory processor spends waiting for
	// processor 0 to complete serial initialization and call create().
	StartupWait
	// SharedMiss is stall time on shared-data cache misses (coherence
	// protocol round trips).
	SharedMiss
	// WriteFault is stall time obtaining write permission for a read-only
	// cached block (invalidation of remote sharers).
	WriteFault
	// TLBMiss is TLB refill time.
	TLBMiss
	// LockWait is time spent acquiring and waiting for locks.
	LockWait
	// SyncComp is computation inside shared-memory synchronization
	// primitives (MCS-style reductions, lock bookkeeping).
	SyncComp
	// SyncMiss is stall time on cache misses incurred inside shared-memory
	// synchronization primitives.
	SyncMiss
	// ReductionWait is time in shared-memory software reductions
	// (reported separately for Gauss-SM).
	ReductionWait
	// LibRetrans is software overhead of the reliable-delivery transport on
	// a faulty network: sequence/acknowledgement bookkeeping, duplicate
	// filtering, and timeout-driven retransmission. It extends the paper's
	// taxonomy (the CM-5 network was lossless, so the paper has no such
	// row); in the paper's terms it is extra Lib Comp, reported separately
	// so degradation experiments can isolate it. Always zero with fault
	// injection disabled.
	LibRetrans
	// DirRetry is the shared-memory analogue of LibRetrans: time a processor
	// spends backing off and re-issuing coherence requests the home directory
	// NACKed under fault injection. It extends the paper's taxonomy the same
	// way LibRetrans does for the message-passing machine, and is always zero
	// with SM fault injection disabled.
	DirRetry
	// NumCategories is the number of categories; it is not itself a
	// category.
	NumCategories
)

var categoryNames = [NumCategories]string{
	"Computation", "Local Misses", "Lib Comp", "Lib Misses", "Network Access",
	"Barriers", "Start-up Wait", "Shared Misses", "Write Faults", "TLB Misses",
	"Locks", "Sync Comp", "Sync Miss", "Reductions", "Lib Retrans", "Dir Retry",
}

// String returns the paper's name for the category.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Count identifies a discrete per-processor event tally.
type Count int

const (
	// CntLocalMisses counts local/private-data cache misses (MP tables).
	CntLocalMisses Count = iota
	// CntLibMisses counts local misses incurred inside MP library code.
	CntLibMisses
	// CntMessages counts network packets injected by this node.
	CntMessages
	// CntChannelWrites counts CMMD channel-write (bulk transfer) operations.
	CntChannelWrites
	// CntActiveMessages counts active-message sends.
	CntActiveMessages
	// CntBytesData counts payload bytes of application data transmitted.
	CntBytesData
	// CntBytesControl counts header, handshake, and protocol bytes.
	CntBytesControl
	// CntPrivateMisses counts misses to private data (SM tables).
	CntPrivateMisses
	// CntSharedMissLocal counts shared-data misses whose home is this node.
	CntSharedMissLocal
	// CntSharedMissRemote counts shared-data misses to remote homes.
	CntSharedMissRemote
	// CntWriteFaults counts writes to read-only cached blocks.
	CntWriteFaults
	// CntTLBMisses counts TLB refills.
	CntTLBMisses
	// CntRetransmissions counts packets this node retransmitted after a
	// reliable-transport timeout.
	CntRetransmissions
	// CntDropped counts this node's injected packets that the fault plan
	// dropped in the network.
	CntDropped
	// CntDuplicates counts duplicate packets this node's receiver-side
	// dedup window discarded (network duplication or retransmission after
	// a lost acknowledgement).
	CntDuplicates
	// CntCorrupt counts packets this node discarded on a failed payload
	// check (fault-injected corruption).
	CntCorrupt
	// CntAcks counts reliable-transport acknowledgement packets sent.
	CntAcks
	// CntNACKs counts coherence requests this node issued that the home
	// directory NACKed (SM fault injection).
	CntNACKs
	// CntDirRetries counts coherence requests this node re-issued after a
	// NACK and backoff.
	CntDirRetries
	// NumCounts is the number of counts; it is not itself a count.
	NumCounts
)

var countNames = [NumCounts]string{
	"Local Misses", "Lib Misses", "Messages Sent", "Channel Writes",
	"Active Messages", "Bytes Data", "Bytes Control", "Private Misses",
	"Shared Misses (Local)", "Shared Misses (Remote)", "Write Faults",
	"TLB Misses", "Retransmissions", "Dropped Packets", "Duplicates Filtered",
	"Corrupt Discarded", "Acks Sent", "NACKs Received", "Dir Retries",
}

// String returns the paper's name for the count.
func (c Count) String() string {
	if c < 0 || c >= NumCounts {
		return fmt.Sprintf("Count(%d)", int(c))
	}
	return countNames[c]
}

// Phase identifies an accounting bucket; programs switch phases to report
// program regions separately (e.g. EM3D's initialization vs. main loop).
type Phase int

// PhaseDefault is the phase every processor starts in.
const PhaseDefault Phase = 0

// Acct accumulates cycles and event counts for one processor, bucketed by
// phase. The zero value has a single default phase.
//
// Charges are batched WWT-style: Charge/Add accumulate into a small pending
// bucket belonging to the current phase, and Flush folds the pending totals
// into the phase table. The engine flushes every processor's account at each
// quantum boundary (before publishers, hooks, and state encoders run), and
// every read (Cycles, Counts, EncodeState, ...) flushes lazily first, so
// observers always see totals bit-identical to per-access charging — only
// the store traffic between observations changes. Dirty bitmasks keep the
// flush cost proportional to the categories actually touched, not the table
// width.
type Acct struct {
	phases []bucket
	cur    Phase

	// PerAccess, when true, disables batching: every Charge/Add applies
	// directly to the phase table, as the pre-batching implementation did.
	// This is the reference mode the equivalence tests compare against.
	// Set at construction (cost.Config.PerAccessStats); flipping it
	// mid-run is a programming error.
	PerAccess bool

	pend    bucket // pending charges for phase cur, not yet folded in
	cyMask  uint32 // bit c set ⇒ pend.cycles[c] is nonzero
	cntMask uint32 // bit c set ⇒ pend.counts[c] is nonzero
}

type bucket struct {
	cycles [NumCategories]int64
	counts [NumCounts]int64
}

// SetPhase switches subsequent charges to the given phase, growing the
// phase table as needed. Pending charges belong to the phase they were made
// in, so the switch flushes first.
func (a *Acct) SetPhase(p Phase) {
	if p < 0 {
		panic("stats: negative phase")
	}
	a.Flush()
	a.ensure(p)
	a.cur = p
}

// Phase returns the current phase.
func (a *Acct) Phase() Phase { return a.cur }

func (a *Acct) ensure(p Phase) {
	for Phase(len(a.phases)) <= p {
		a.phases = append(a.phases, bucket{})
	}
}

// Charge adds cycles to a category in the current phase.
func (a *Acct) Charge(c Category, cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("stats: negative charge %d to %v", cycles, c))
	}
	if a.PerAccess {
		a.ensure(a.cur)
		a.phases[a.cur].cycles[c] += cycles
		return
	}
	a.pend.cycles[c] += cycles
	a.cyMask |= 1 << uint(c)
}

// Add increments a count in the current phase.
func (a *Acct) Add(c Count, n int64) {
	if a.PerAccess {
		a.ensure(a.cur)
		a.phases[a.cur].counts[c] += n
		return
	}
	a.pend.counts[c] += n
	a.cntMask |= 1 << uint(c)
}

// Flush folds the pending batched charges into the current phase's bucket.
// Idempotent and cheap when nothing is pending (two mask tests). The engine
// calls this for every processor at each quantum boundary; reads call it
// lazily. Only the account's owner may call it: the processor itself during
// the processor phase, or the engine while no processor is executing.
func (a *Acct) Flush() {
	if a.cyMask == 0 && a.cntMask == 0 {
		return
	}
	a.ensure(a.cur)
	b := &a.phases[a.cur]
	for m := a.cyMask; m != 0; m &= m - 1 {
		c := bits.TrailingZeros32(m)
		b.cycles[c] += a.pend.cycles[c]
		a.pend.cycles[c] = 0
	}
	for m := a.cntMask; m != 0; m &= m - 1 {
		c := bits.TrailingZeros32(m)
		b.counts[c] += a.pend.counts[c]
		a.pend.counts[c] = 0
	}
	a.cyMask, a.cntMask = 0, 0
}

// Cycles returns the cycles charged to a category in a phase. Phases beyond
// those used return zero.
func (a *Acct) Cycles(p Phase, c Category) int64 {
	a.Flush()
	if int(p) >= len(a.phases) {
		return 0
	}
	return a.phases[p].cycles[c]
}

// Counts returns the tally of a count in a phase.
func (a *Acct) Counts(p Phase, c Count) int64 {
	a.Flush()
	if int(p) >= len(a.phases) {
		return 0
	}
	return a.phases[p].counts[c]
}

// NumPhases returns the number of phases that have been used.
func (a *Acct) NumPhases() int {
	a.Flush()
	if len(a.phases) == 0 {
		return 1
	}
	return len(a.phases)
}

// TotalCycles returns all cycles charged in a phase across categories.
func (a *Acct) TotalCycles(p Phase) int64 {
	var t int64
	for c := Category(0); c < NumCategories; c++ {
		t += a.Cycles(p, c)
	}
	return t
}

// EncodeState contributes the full accounting table — every phase's raw
// cycle and count totals plus the current phase — to a canonical state
// image. Raw int64s, not the float per-processor averages the reports
// print, so equality is exact bit equality.
func (a *Acct) EncodeState(enc *snapshot.Enc) {
	a.Flush()
	enc.Section("acct", func(enc *snapshot.Enc) {
		enc.I64(int64(a.cur))
		enc.U32(uint32(len(a.phases)))
		for i := range a.phases {
			enc.I64s(a.phases[i].cycles[:])
			enc.I64s(a.phases[i].counts[:])
		}
	})
}

// Summary aggregates the accounting of all processors: the per-processor
// average of every category and count, per phase, as the paper reports
// ("The cycle times reported represent an average over all processors").
type Summary struct {
	Procs  int
	phases []sumBucket
}

type sumBucket struct {
	cycles [NumCategories]float64
	counts [NumCounts]float64
}

// Summarize averages the accounts of all processors.
func Summarize(accts []*Acct) *Summary {
	s := &Summary{Procs: len(accts)}
	maxPh := 1
	for _, a := range accts {
		if n := a.NumPhases(); n > maxPh {
			maxPh = n
		}
	}
	s.phases = make([]sumBucket, maxPh)
	for _, a := range accts {
		for p := 0; p < maxPh; p++ {
			for c := Category(0); c < NumCategories; c++ {
				s.phases[p].cycles[c] += float64(a.Cycles(Phase(p), c))
			}
			for c := Count(0); c < NumCounts; c++ {
				s.phases[p].counts[c] += float64(a.Counts(Phase(p), c))
			}
		}
	}
	n := float64(len(accts))
	if n == 0 {
		return s
	}
	for p := range s.phases {
		for c := range s.phases[p].cycles {
			s.phases[p].cycles[c] /= n
		}
		for c := range s.phases[p].counts {
			s.phases[p].counts[c] /= n
		}
	}
	return s
}

// NumPhases returns the number of phases in the summary.
func (s *Summary) NumPhases() int { return len(s.phases) }

// Cycles returns the per-processor average cycles for a category in a phase.
func (s *Summary) Cycles(p Phase, c Category) float64 {
	if int(p) >= len(s.phases) {
		return 0
	}
	return s.phases[p].cycles[c]
}

// Counts returns the per-processor average tally for a count in a phase.
func (s *Summary) Counts(p Phase, c Count) float64 {
	if int(p) >= len(s.phases) {
		return 0
	}
	return s.phases[p].counts[c]
}

// CyclesAll sums a category's average cycles over every phase.
func (s *Summary) CyclesAll(c Category) float64 {
	var t float64
	for p := range s.phases {
		t += s.phases[p].cycles[c]
	}
	return t
}

// CountsAll sums a count's average over every phase.
func (s *Summary) CountsAll(c Count) float64 {
	var t float64
	for p := range s.phases {
		t += s.phases[p].counts[c]
	}
	return t
}

// TotalCycles sums every category in a phase.
func (s *Summary) TotalCycles(p Phase) float64 {
	var t float64
	for c := Category(0); c < NumCategories; c++ {
		t += s.Cycles(p, c)
	}
	return t
}

// TotalCyclesAll sums every category across all phases.
func (s *Summary) TotalCyclesAll() float64 {
	var t float64
	for p := range s.phases {
		t += s.TotalCycles(Phase(p))
	}
	return t
}

// CompPerDataByte returns the paper's communication-intensity metric:
// computation cycles per application data byte transmitted, for a phase.
// It returns 0 when no data bytes were transmitted.
func (s *Summary) CompPerDataByte(p Phase) float64 {
	b := s.Counts(p, CntBytesData)
	if b == 0 {
		return 0
	}
	return s.Cycles(p, Comp) / b
}
