package tables

import (
	"repro/internal/apps/em3d"
	"repro/internal/apps/gauss"
	"repro/internal/apps/lcp"
	"repro/internal/apps/mse"
	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/parmacs"
	"repro/internal/stats"
)

// Scale selects full paper-scale workloads or reduced quick ones.
type Scale int

const (
	// Full is the paper's exact workload (32 processors).
	Full Scale = iota
	// Quick is a reduced workload for fast regeneration and CI.
	Quick
)

func (sc Scale) cfg() cost.Config {
	if sc == Quick {
		return cost.Default(8)
	}
	return cost.Default(32)
}

// MSE regenerates Tables 4-7 (Microstructure Electrostatics).
func MSE(sc Scale) []Table {
	cfg := sc.cfg()
	par := mse.DefaultParams()
	if sc == Quick {
		par = mse.Params{Bodies: 64, Elems: 8, Iters: 8, Seed: 1}
	}
	mp := mse.RunMP(cfg, cmmd.LopSided, par)
	sm := mse.RunSM(cfg, par)
	noPaper := sc == Quick

	t4 := Table{ID: 4, Title: "MSE Message Passing (MSE-MP) time breakdown",
		Rows: mpBreakdownRows(mp.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"comp": 1115.9, "lm": 49.6, "comm": 74.5, "lib": 69.9, "libm": 0.5,
			"net": 2.1, "total": 1241.1}))}
	t5 := Table{ID: 5, Title: "MSE Shared Memory (MSE-SM) time breakdown",
		Rows: smBreakdownRows(sm.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"comp": 1043.8, "miss": 62.7, "sync": 161.3, "bar": 80.6,
			"startup": 80.7, "total": 1267.8}))}
	t6 := Table{ID: 6, Title: "MSE-MP per-processor event counts",
		Rows: mpEventRows(mp.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"lm": 2.4e6, "cw": -1, "am": -1, "bytes": 1.1, "data": 0.8,
			"ctl": 0.3, "cpb": 1452}))}
	t6.Rows = append(t6.Rows, Row{"Messages Sent (logical)",
		mp.Res.Summary.CountsAll(stats.CntChannelWrites) +
			mp.Res.Summary.CountsAll(stats.CntActiveMessages),
		paperVal(noPaper, 1271), "count"})
	t7 := Table{ID: 7, Title: "MSE-SM per-processor event counts",
		Rows: smEventRows(sm.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"priv": 2.5e6, "shared": 0.04e6, "shL": 0.01e6, "shR": 0.03e6,
			"wf": 774, "bytes": 2.4, "data": 1.0, "ctl": 1.4, "cpb": 985}))}
	rel := Row{"MP relative to SM (%)", 100 * float64(mp.Res.Elapsed) / float64(sm.Res.Elapsed),
		paperVal(noPaper, 98), "count"}
	t4.Rows = append(t4.Rows, rel)
	return []Table{t4, t5, t6, t7}
}

// Gauss regenerates Tables 8-11 (Gaussian elimination) and the broadcast
// ablation discussed in §5.2 text.
func Gauss(sc Scale) []Table {
	cfg := sc.cfg()
	par := gauss.Params{N: 512, Seed: 1}
	if sc == Quick {
		par.N = 128
	}
	mp := gauss.RunMP(cfg, cmmd.LopSided, par)
	sm := gauss.RunSM(cfg, par)
	noPaper := sc == Quick

	t8 := Table{ID: 8, Title: "Gauss Message Passing (Gauss-MP) time breakdown",
		Rows: mpBreakdownRows(mp.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"comp": 40.8, "lm": 0.1, "comm": 28.4, "lib": 23.6, "libm": 0.03,
			"net": 4.7, "bar": 1.6, "total": 71.0}))}
	t8.Rows = append(t8.Rows, Row{"MP relative to SM (%)",
		100 * float64(mp.Res.Elapsed) / float64(sm.Res.Elapsed), paperVal(noPaper, 98), "count"})
	t9 := Table{ID: 9, Title: "Gauss Shared Memory (Gauss-SM) time breakdown",
		Rows: smBreakdownRows(sm.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"comp": 39.5, "miss": 16.7, "sync": 16.1, "red": 4.4, "bar": 11.6,
			"total": 72.7}))}
	t10 := Table{ID: 10, Title: "Gauss-MP per-processor event counts",
		Rows: mpEventRows(mp.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"lm": 3489, "cw": 511, "am": 1534, "bytes": 0.7, "data": 0.5,
			"ctl": 0.2, "cpb": 78}))}
	t11 := Table{ID: 11, Title: "Gauss-SM per-processor event counts",
		Rows: smEventRows(sm.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"priv": 92, "shared": 23590, "shL": 781, "shR": 22809, "wf": 946,
			"bytes": 1.8, "data": 0.8, "ctl": 1.0, "cpb": 47}))}
	return []Table{t8, t9, t10, t11}
}

// GaussAblation regenerates the §5.2 broadcast/reduction tuning study:
// flat (119.3M), binary tree with CMMD-level messages (40.9M), lop-sided
// trees with active messages and channels (30.1M).
func GaussAblation(sc Scale) Table {
	cfg := sc.cfg()
	par := gauss.Params{N: 512, Seed: 1}
	if sc == Quick {
		par.N = 128
	}
	noPaper := sc == Quick
	t := Table{ID: -52, Title: "Gauss-MP broadcast/reduction ablation (§5.2 text; comm cycles)"}
	paperComm := map[cmmd.Shape]float64{cmmd.Flat: 119.3, cmmd.Binary: 40.9, cmmd.LopSided: 30.1}
	for _, shape := range []cmmd.Shape{cmmd.Flat, cmmd.Binary, cmmd.LopSided} {
		out := gauss.RunMP(cfg, shape, par)
		s := out.Res.Summary
		comm := s.CyclesAll(stats.LibComp) + s.CyclesAll(stats.NetAccess) +
			s.CyclesAll(stats.BarrierWait)
		t.Rows = append(t.Rows, Row{shape.String(), comm / mcyc,
			paperVal(noPaper, paperComm[shape]), "Mcyc"})
	}
	return t
}

// EM3D regenerates Tables 12-17.
func EM3D(sc Scale) []Table {
	cfg := sc.cfg()
	par := em3d.DefaultParams()
	if sc == Quick {
		par = em3d.Params{NodesPer: 250, Degree: 8, RemotePct: 20, Iters: 12, Seed: 1}
	}
	noPaper := sc == Quick
	mp := em3d.RunMP(cfg, cmmd.LopSided, par)
	sm := em3d.RunSM(cfg, parmacs.RoundRobin, par)

	t12 := em3dPhaseTable(12, "EM3D Message Passing (EM3D-MP)", mp.Res.Summary, true,
		paperOrNA(noPaper, map[string]float64{
			"init.comp": 18.2, "init.total": 20.0, "main.comp": 32.3,
			"main.lm": 13.7, "main.lib": 16.4, "main.net": 3.8, "main.total": 66.5,
			"total": 86.4}))
	t12.Rows = append(t12.Rows, Row{"MP relative to SM (%)",
		100 * float64(mp.Res.Elapsed) / float64(sm.Res.Elapsed), paperVal(noPaper, 50), "count"})
	t13 := Table{ID: 13, Title: "EM3D-MP main-loop event counts",
		Rows: mpPhaseEventRows(mp.Res.Summary, em3d.PhaseMain, paperOrNA(noPaper,
			map[string]float64{"lm": 643436, "cw": 200, "bytes": 2.0,
				"data": 1.6, "ctl": 0.4, "cpb": 20}))}
	t14 := em3dPhaseTable(14, "EM3D Shared Memory (EM3D-SM)", sm.Res.Summary, false,
		paperOrNA(noPaper, map[string]float64{
			"init.comp": 17.2, "init.total": 42.1, "init.locks": 6.9,
			"main.comp": 26.5, "main.sm": 83.6, "main.wf": 10.4,
			"main.bar": 9.4, "main.total": 130.0, "total": 172.1}))
	t15 := Table{ID: 15, Title: "EM3D-SM main-loop event counts",
		Rows: smPhaseEventRows(sm.Res.Summary, em3d.PhaseMain, paperOrNA(noPaper,
			map[string]float64{"priv": 109, "shared": 330044, "shL": 10818,
				"shR": 319226, "wf": 24975, "bytes": 22.9, "data": 11.9,
				"ctl": 11.0, "cpb": 2}))}

	big := cfg
	big.CacheBytes = 1 << 20
	sm1m := em3d.RunSM(big, parmacs.RoundRobin, par)
	t16 := Table{ID: 16, Title: "EM3D-SM main loop with a 1 MB cache",
		Rows: smPhaseBreakdownRows(sm1m.Res.Summary, em3d.PhaseMain, paperOrNA(noPaper,
			map[string]float64{"comp": 26.5, "sm": 22.1, "wf": 10.9, "bar": 1.5,
				"total": 61.0}))}
	loc := em3d.RunSM(cfg, parmacs.Local, par)
	t17 := Table{ID: 17, Title: "EM3D-SM main loop with local allocation",
		Rows: smPhaseBreakdownRows(loc.Res.Summary, em3d.PhaseMain, paperOrNA(noPaper,
			map[string]float64{"comp": 26.5, "sm": 52.3, "wf": 6.5, "bar": 0.9,
				"total": 86.3}))}
	return []Table{t12, t13, t14, t15, t16, t17}
}

// LCP regenerates Tables 18-23.
func LCP(sc Scale) []Table {
	cfg := sc.cfg()
	par := lcp.DefaultParams()
	if sc == Quick {
		par.N, par.NNZ = 512, 16
	}
	noPaper := sc == Quick
	mp := lcp.RunMP(cfg, cmmd.LopSided, par)
	sm := lcp.RunSM(cfg, par)
	amp := lcp.RunAMP(cfg, cmmd.LopSided, par)
	asm := lcp.RunASM(cfg, par)

	t18 := Table{ID: 18, Title: "LCP Message Passing (LCP-MP) time breakdown",
		Rows: mpBreakdownRows(mp.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"comp": 41.1, "lm": 0.06, "comm": 15.3, "lib": 12.6, "libm": 0.02,
			"net": 2.7, "bar": 0.3, "total": 56.8}))}
	t18.Rows = append(t18.Rows,
		Row{"Steps to converge", float64(mp.Steps), paperVal(noPaper, 43), "count"},
		Row{"MP relative to SM (%)", 100 * float64(mp.Res.Elapsed) / float64(sm.Res.Elapsed),
			paperVal(noPaper, 86), "count"})
	t19 := Table{ID: 19, Title: "LCP Shared Memory (LCP-SM) time breakdown",
		Rows: smBreakdownRows(sm.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"comp": 41.3, "miss": 13.4, "sync": 11.3, "sc": 3.2, "sm": 0.1,
			"bar": 8.0, "total": 66.0}))}
	t20 := Table{ID: 20, Title: "Asynchronous LCP Message Passing (ALCP-MP)",
		Rows: mpBreakdownRows(amp.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"comp": 32.9, "lm": 0.09, "comm": 59.5, "lib": 46.5, "libm": 0,
			"net": 12.9, "bar": 0.3, "total": 92.7}))}
	t20.Rows = append(t20.Rows,
		Row{"Steps to converge", float64(amp.Steps), paperVal(noPaper, 35), "count"})
	t21 := Table{ID: 21, Title: "Asynchronous LCP Shared Memory (ALCP-SM)",
		Rows: smBreakdownRows(asm.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"comp": 32.0, "miss": 62.9, "sync": 3.8, "sc": 1.6, "sm": 0.1,
			"bar": 2.2, "total": 98.7}))}
	t21.Rows = append(t21.Rows,
		Row{"Steps to converge", float64(asm.Steps), paperVal(noPaper, 34), "count"})
	t22 := Table{ID: 22, Title: "LCP-MP event counts (synchronous vs asynchronous)"}
	t22.Rows = append(t22.Rows, prefixRows("sync: ",
		mpEventRows(mp.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"lm": 3873, "cw": 220, "am": 90, "bytes": 1.8, "data": 1.4,
			"ctl": 0.4, "cpb": 29}))...)...)
	t22.Rows = append(t22.Rows, prefixRows("async: ",
		mpEventRows(amp.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"lm": 4345, "cw": 5425, "am": 74, "bytes": 6.9, "data": 5.6,
			"ctl": 1.4, "cpb": 6}))...)...)
	t23 := Table{ID: 23, Title: "LCP-SM event counts (synchronous vs asynchronous)"}
	t23.Rows = append(t23.Rows, prefixRows("sync: ",
		smEventRows(sm.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"priv": 56, "shared": 48411, "shL": 1528, "shR": 46883, "wf": 1481,
			"bytes": 3.7, "data": 1.6, "ctl": 2.1, "cpb": 26}))...)...)
	t23.Rows = append(t23.Rows, prefixRows("async: ",
		smEventRows(asm.Res.Summary, paperOrNA(noPaper, map[string]float64{
			"priv": 60, "shared": 206615, "shL": 6140, "shR": 200475, "wf": 15814,
			"bytes": 17.0, "data": 7.4, "ctl": 9.6, "cpb": 4}))...)...)
	return []Table{t18, t19, t20, t21, t22, t23}
}

// All regenerates every results table (4-23) plus the Gauss ablation.
func All(sc Scale) []Table {
	var out []Table
	out = append(out, MSE(sc)...)
	out = append(out, Gauss(sc)...)
	out = append(out, GaussAblation(sc))
	out = append(out, EM3D(sc)...)
	out = append(out, LCP(sc)...)
	return out
}

// --- helpers ---

func paperVal(quick bool, v float64) float64 {
	if quick {
		return -1 // reduced scale: paper values not comparable
	}
	return v
}

func paperOrNA(quick bool, m map[string]float64) map[string]float64 {
	if !quick {
		return m
	}
	out := make(map[string]float64, len(m))
	for k := range m {
		out[k] = -1
	}
	return out
}

func prefixRows(prefix string, rows ...Row) []Row {
	for i := range rows {
		rows[i].Label = prefix + rows[i].Label
	}
	return rows
}

func getOr(m map[string]float64, k string) float64 {
	if v, ok := m[k]; ok {
		return v
	}
	return -1
}

// em3dPhaseTable builds the paper's init/main/total three-way split.
func em3dPhaseTable(id int, title string, s *stats.Summary, mp bool, paper map[string]float64) Table {
	t := Table{ID: id, Title: title + " time breakdown (init / main / total)"}
	phases := []struct {
		name string
		ph   stats.Phase
	}{{"init", em3d.PhaseInit}, {"main", em3d.PhaseMain}}
	for _, p := range phases {
		if mp {
			t.Rows = append(t.Rows,
				Row{p.name + ": Computation", s.Cycles(p.ph, stats.Comp) / mcyc, getOr(paper, p.name+".comp"), "Mcyc"},
				Row{p.name + ": Local Misses", s.Cycles(p.ph, stats.LocalMiss) / mcyc, getOr(paper, p.name+".lm"), "Mcyc"},
				Row{p.name + ": Lib Comp", s.Cycles(p.ph, stats.LibComp) / mcyc, getOr(paper, p.name+".lib"), "Mcyc"},
				Row{p.name + ": Network Access", s.Cycles(p.ph, stats.NetAccess) / mcyc, getOr(paper, p.name+".net"), "Mcyc"},
				Row{p.name + ": Total", s.TotalCycles(p.ph) / mcyc, getOr(paper, p.name+".total"), "Mcyc"},
			)
		} else {
			t.Rows = append(t.Rows,
				Row{p.name + ": Computation", s.Cycles(p.ph, stats.Comp) / mcyc, getOr(paper, p.name+".comp"), "Mcyc"},
				Row{p.name + ": Shared Misses", s.Cycles(p.ph, stats.SharedMiss) / mcyc, getOr(paper, p.name+".sm"), "Mcyc"},
				Row{p.name + ": Write Faults", s.Cycles(p.ph, stats.WriteFault) / mcyc, getOr(paper, p.name+".wf"), "Mcyc"},
				Row{p.name + ": TLB Misses", s.Cycles(p.ph, stats.TLBMiss) / mcyc, getOr(paper, p.name+".tlb"), "Mcyc"},
				Row{p.name + ": Locks", s.Cycles(p.ph, stats.LockWait) / mcyc, getOr(paper, p.name+".locks"), "Mcyc"},
				Row{p.name + ": Barriers", s.Cycles(p.ph, stats.BarrierWait) / mcyc, getOr(paper, p.name+".bar"), "Mcyc"},
				Row{p.name + ": Total", s.TotalCycles(p.ph) / mcyc, getOr(paper, p.name+".total"), "Mcyc"},
			)
		}
	}
	t.Rows = append(t.Rows, Row{"Total", s.TotalCyclesAll() / mcyc, getOr(paper, "total"), "Mcyc"})
	return t
}

// mpPhaseEventRows is mpEventRows restricted to one phase.
func mpPhaseEventRows(s *stats.Summary, ph stats.Phase, paper map[string]float64) []Row {
	data := s.Counts(ph, stats.CntBytesData)
	ctl := s.Counts(ph, stats.CntBytesControl)
	cpb := 0.0
	if data > 0 {
		cpb = s.Cycles(ph, stats.Comp) / data
	}
	return []Row{
		{"Local Misses", s.Counts(ph, stats.CntLocalMisses), getOr(paper, "lm"), "count"},
		{"Channel Writes", s.Counts(ph, stats.CntChannelWrites), getOr(paper, "cw"), "count"},
		{"Bytes Transmitted", (data + ctl) / 1e6, getOr(paper, "bytes"), "MB"},
		{"  Data", data / 1e6, getOr(paper, "data"), "MB"},
		{"  Control", ctl / 1e6, getOr(paper, "ctl"), "MB"},
		{"Comp Cycles / Data Byte", cpb, getOr(paper, "cpb"), "cyc/B"},
	}
}

// smPhaseEventRows is smEventRows restricted to one phase.
func smPhaseEventRows(s *stats.Summary, ph stats.Phase, paper map[string]float64) []Row {
	data := s.Counts(ph, stats.CntBytesData)
	ctl := s.Counts(ph, stats.CntBytesControl)
	cpb := 0.0
	if data > 0 {
		cpb = s.Cycles(ph, stats.Comp) / data
	}
	shL := s.Counts(ph, stats.CntSharedMissLocal)
	shR := s.Counts(ph, stats.CntSharedMissRemote)
	return []Row{
		{"Private Misses", s.Counts(ph, stats.CntPrivateMisses) + s.Counts(ph, stats.CntLocalMisses), getOr(paper, "priv"), "count"},
		{"Shared Misses", shL + shR, getOr(paper, "shared"), "count"},
		{"  Local", shL, getOr(paper, "shL"), "count"},
		{"  Remote", shR, getOr(paper, "shR"), "count"},
		{"Write Faults", s.Counts(ph, stats.CntWriteFaults), getOr(paper, "wf"), "count"},
		{"Bytes Transmitted", (data + ctl) / 1e6, getOr(paper, "bytes"), "MB"},
		{"  Data", data / 1e6, getOr(paper, "data"), "MB"},
		{"  Control", ctl / 1e6, getOr(paper, "ctl"), "MB"},
		{"Comp Cycles / Data Byte", cpb, getOr(paper, "cpb"), "cyc/B"},
	}
}

// smPhaseBreakdownRows is the SM cycle breakdown restricted to one phase
// (Tables 16 and 17 report the main loop only).
func smPhaseBreakdownRows(s *stats.Summary, ph stats.Phase, paper map[string]float64) []Row {
	return []Row{
		{"Computation", s.Cycles(ph, stats.Comp) / mcyc, getOr(paper, "comp"), "Mcyc"},
		{"Shared Misses", s.Cycles(ph, stats.SharedMiss) / mcyc, getOr(paper, "sm"), "Mcyc"},
		{"Write Faults", s.Cycles(ph, stats.WriteFault) / mcyc, getOr(paper, "wf"), "Mcyc"},
		{"TLB Misses", s.Cycles(ph, stats.TLBMiss) / mcyc, getOr(paper, "tlb"), "Mcyc"},
		{"Barriers", s.Cycles(ph, stats.BarrierWait) / mcyc, getOr(paper, "bar"), "Mcyc"},
		{"Total", s.TotalCycles(ph) / mcyc, getOr(paper, "total"), "Mcyc"},
	}
}
