// Package tables regenerates every results table of the paper (Tables 4-23)
// from the simulated machines, pairing each measured quantity with the
// paper's published value. Absolute agreement is not expected — the paper
// ran on the Wisconsin Wind Tunnel with the real CMMD binaries — but the
// shapes (who wins, dominant categories, event-count magnitudes) should
// hold; EXPERIMENTS.md records the comparison.
package tables

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// Row pairs one measured value with the paper's published value. Paper < 0
// means the paper does not report the quantity.
type Row struct {
	Label    string
	Measured float64
	Paper    float64
	Unit     string // "Mcyc", "count", "MB", "cyc/B"
}

// Table is one regenerated paper table.
type Table struct {
	ID    int // the paper's table number
	Title string
	Rows  []Row
}

// Render writes the table with measured-vs-paper columns.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "Table %d: %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "  %-28s %12s %12s %8s\n", "", "measured", "paper", "")
	for _, r := range t.Rows {
		paper := "-"
		if r.Paper >= 0 {
			paper = formatVal(r.Paper, r.Unit)
		}
		fmt.Fprintf(w, "  %-28s %12s %12s %8s\n",
			r.Label, formatVal(r.Measured, r.Unit), paper, r.Unit)
	}
	fmt.Fprintln(w)
}

func formatVal(v float64, unit string) string {
	switch unit {
	case "Mcyc":
		return fmt.Sprintf("%.1f", v)
	case "MB":
		return fmt.Sprintf("%.2f", v)
	case "cyc/B":
		return fmt.Sprintf("%.0f", v)
	default:
		if v >= 1e6 {
			return fmt.Sprintf("%.2fM", v/1e6)
		}
		return fmt.Sprintf("%.0f", v)
	}
}

// Find returns the table with the given paper number from a list.
func Find(ts []Table, id int) *Table {
	for i := range ts {
		if ts[i].ID == id {
			return &ts[i]
		}
	}
	return nil
}

// RenderAll writes every table.
func RenderAll(ts []Table, w io.Writer) {
	for i := range ts {
		ts[i].Render(w)
	}
}

// --- shared row builders ---

const mcyc = 1e6

// mpBreakdownRows builds the paper's message-passing time breakdown
// (computation / local misses / communication split) for one phase set.
func mpBreakdownRows(s *stats.Summary, paper map[string]float64) []Row {
	comm := s.CyclesAll(stats.LibComp) + s.CyclesAll(stats.LibMiss) + s.CyclesAll(stats.NetAccess)
	rows := []Row{
		{"Computation", s.CyclesAll(stats.Comp) / mcyc, getOr(paper, "comp"), "Mcyc"},
		{"Local Misses", (s.CyclesAll(stats.LocalMiss) + s.CyclesAll(stats.TLBMiss)) / mcyc, getOr(paper, "lm"), "Mcyc"},
		{"Communication", comm / mcyc, getOr(paper, "comm"), "Mcyc"},
		{"  Lib Comp", s.CyclesAll(stats.LibComp) / mcyc, getOr(paper, "lib"), "Mcyc"},
		{"  Lib Misses", s.CyclesAll(stats.LibMiss) / mcyc, getOr(paper, "libm"), "Mcyc"},
		{"  Network Access", s.CyclesAll(stats.NetAccess) / mcyc, getOr(paper, "net"), "Mcyc"},
	}
	if v, ok := paper["bar"]; ok {
		rows = append(rows, Row{"Barriers", s.CyclesAll(stats.BarrierWait) / mcyc, v, "Mcyc"})
	}
	rows = append(rows, Row{"Total", s.TotalCyclesAll() / mcyc, getOr(paper, "total"), "Mcyc"})
	return rows
}

// mpEventRows builds the per-processor event-count table for MP programs.
func mpEventRows(s *stats.Summary, paper map[string]float64) []Row {
	data := s.CountsAll(stats.CntBytesData)
	ctl := s.CountsAll(stats.CntBytesControl)
	cpb := 0.0
	if data > 0 {
		cpb = s.CyclesAll(stats.Comp) / data
	}
	return []Row{
		{"Local Misses", s.CountsAll(stats.CntLocalMisses), getOr(paper, "lm"), "count"},
		{"Channel Writes", s.CountsAll(stats.CntChannelWrites), getOr(paper, "cw"), "count"},
		{"Active Messages", s.CountsAll(stats.CntActiveMessages), getOr(paper, "am"), "count"},
		{"Bytes Transmitted", (data + ctl) / 1e6, getOr(paper, "bytes"), "MB"},
		{"  Data", data / 1e6, getOr(paper, "data"), "MB"},
		{"  Control", ctl / 1e6, getOr(paper, "ctl"), "MB"},
		{"Comp Cycles / Data Byte", cpb, getOr(paper, "cpb"), "cyc/B"},
	}
}

// smBreakdownRows builds the shared-memory time breakdown.
func smBreakdownRows(s *stats.Summary, paper map[string]float64) []Row {
	miss := s.CyclesAll(stats.SharedMiss) + s.CyclesAll(stats.LocalMiss) +
		s.CyclesAll(stats.WriteFault) + s.CyclesAll(stats.TLBMiss)
	sync := s.CyclesAll(stats.SyncComp) + s.CyclesAll(stats.SyncMiss) +
		s.CyclesAll(stats.BarrierWait) + s.CyclesAll(stats.LockWait) +
		s.CyclesAll(stats.ReductionWait) + s.CyclesAll(stats.StartupWait)
	rows := []Row{
		{"Computation", s.CyclesAll(stats.Comp) / mcyc, getOr(paper, "comp"), "Mcyc"},
		{"Cache Misses", miss / mcyc, getOr(paper, "miss"), "Mcyc"},
		{"Synchronization", sync / mcyc, getOr(paper, "sync"), "Mcyc"},
	}
	sub := []struct {
		label string
		cat   stats.Category
		key   string
	}{
		{"  Reductions", stats.ReductionWait, "red"},
		{"  Sync Comp", stats.SyncComp, "sc"},
		{"  Sync Miss", stats.SyncMiss, "sm"},
		{"  Locks", stats.LockWait, "locks"},
		{"  Barriers", stats.BarrierWait, "bar"},
		{"  Start-up Wait", stats.StartupWait, "startup"},
	}
	for _, sb := range sub {
		if v, ok := paper[sb.key]; ok {
			rows = append(rows, Row{sb.label, s.CyclesAll(sb.cat) / mcyc, v, "Mcyc"})
		}
	}
	rows = append(rows, Row{"Total", s.TotalCyclesAll() / mcyc, getOr(paper, "total"), "Mcyc"})
	return rows
}

// smEventRows builds the per-processor event-count table for SM programs.
func smEventRows(s *stats.Summary, paper map[string]float64) []Row {
	data := s.CountsAll(stats.CntBytesData)
	ctl := s.CountsAll(stats.CntBytesControl)
	cpb := 0.0
	if data > 0 {
		cpb = s.CyclesAll(stats.Comp) / data
	}
	shL := s.CountsAll(stats.CntSharedMissLocal)
	shR := s.CountsAll(stats.CntSharedMissRemote)
	return []Row{
		{"Private Misses", s.CountsAll(stats.CntPrivateMisses) + s.CountsAll(stats.CntLocalMisses), getOr(paper, "priv"), "count"},
		{"Shared Misses", shL + shR, getOr(paper, "shared"), "count"},
		{"  Local", shL, getOr(paper, "shL"), "count"},
		{"  Remote", shR, getOr(paper, "shR"), "count"},
		{"Write Faults", s.CountsAll(stats.CntWriteFaults), getOr(paper, "wf"), "count"},
		{"Bytes Transmitted", (data + ctl) / 1e6, getOr(paper, "bytes"), "MB"},
		{"  Data", data / 1e6, getOr(paper, "data"), "MB"},
		{"  Control", ctl / 1e6, getOr(paper, "ctl"), "MB"},
		{"Comp Cycles / Data Byte", cpb, getOr(paper, "cpb"), "cyc/B"},
	}
}
