package tables

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderFormatsPaperAndMissingValues(t *testing.T) {
	tb := Table{ID: 4, Title: "demo", Rows: []Row{
		{Label: "Computation", Measured: 12.345, Paper: 10.0, Unit: "Mcyc"},
		{Label: "Unreported", Measured: 7, Paper: -1, Unit: "count"},
		{Label: "Bytes", Measured: 1.234, Paper: 1.1, Unit: "MB"},
	}}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Table 4: demo") {
		t.Errorf("missing header in %q", out)
	}
	if !strings.Contains(out, "12.3") || !strings.Contains(out, "10.0") {
		t.Errorf("Mcyc row misformatted: %q", out)
	}
	// Unreported paper values render as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder for unreported value: %q", out)
	}
}

func TestFind(t *testing.T) {
	ts := []Table{{ID: 4}, {ID: 5}}
	if Find(ts, 5) == nil || Find(ts, 5).ID != 5 {
		t.Error("Find failed")
	}
	if Find(ts, 99) != nil {
		t.Error("Find invented a table")
	}
}

func TestFormatVal(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{12.34, "Mcyc", "12.3"},
		{1.236, "MB", "1.24"},
		{78.4, "cyc/B", "78"},
		{1234, "count", "1234"},
		{2.5e6, "count", "2.50M"},
	}
	for _, c := range cases {
		if got := formatVal(c.v, c.unit); got != c.want {
			t.Errorf("formatVal(%v, %s) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}
