// Package vfs is the filesystem seam under every durable artifact in this
// repo: the serve WAL segments, the content-addressed result cache,
// checkpoint snapshots, and snapshot.AtomicWriteFile all perform their I/O
// through the FS interface rather than the os package directly.
//
// Two implementations exist. OS is a passthrough to the host filesystem.
// Faulty (faulty.go) wraps another FS with a deterministic, seeded fault
// plan — short/torn writes, fsync failures, ENOSPC, open/rename errors, and
// a crash-at-operation-N stop point — extending the simulator's seeded,
// replayable fault-plan discipline (network drops, directory NACKs) to the
// durability layer itself. The crash-point exploration harness in
// internal/serve drives a scripted workload through Faulty once per
// operation index and proves recovery holds at every one.
package vfs

import (
	"errors"
	iofs "io/fs"
	"os"
	"sort"
	"syscall"
)

// File is the writable-handle surface durable writers need: append or
// truncate-create writes, an explicit fsync, and close.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the filesystem operation set the durability layer uses. Paths are
// host paths; implementations may reinterpret errors but not paths.
type FS interface {
	// ReadFile returns the file's contents (os.ReadFile semantics: a
	// missing file reports iofs.ErrNotExist via errors.Is).
	ReadFile(path string) ([]byte, error)
	// WriteFile writes data in one call without an fsync — callers that
	// need durability use Create+Sync or snapshot.AtomicWriteFileFS.
	WriteFile(path string, data []byte, perm os.FileMode) error
	// Create opens path for writing, truncating any existing contents.
	Create(path string) (File, error)
	// OpenAppend opens an existing path for appending.
	OpenAppend(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
	Truncate(path string, size int64) error
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir returns the names (not full paths) of dir's entries, sorted.
	ReadDir(path string) ([]string, error)
	// SyncDir fsyncs the directory itself, making renames and file
	// creations inside it durable — the step that keeps a rename from
	// vanishing after a power-loss-style crash.
	SyncDir(path string) error
}

// OS is the passthrough implementation over the host filesystem.
type OS struct{}

func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return os.WriteFile(path, data, perm)
}

func (OS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OS) Remove(path string) error             { return os.Remove(path) }
func (OS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (OS) Truncate(path string, size int64) error {
	return os.Truncate(path, size)
}
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// IsNotExist reports a missing-file error from any FS implementation.
func IsNotExist(err error) bool { return errors.Is(err, iofs.ErrNotExist) }

// IsNoSpace reports an out-of-space error — real ENOSPC from the host or an
// injected one from Faulty. The serve layer keys its 507/queue-paused
// degradation off this.
func IsNoSpace(err error) bool { return errors.Is(err, syscall.ENOSPC) }
