package vfs

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// ErrInjected is the sentinel under every injected non-ENOSPC fault, so
// tests can tell injected failures from real host errors.
var ErrInjected = errors.New("vfs: injected fault")

// ErrCrashed is returned by every operation after the plan's crash point
// fires: the simulated process is dead and nothing more reaches the disk.
var ErrCrashed = errors.New("vfs: crashed (operations past the crash point)")

// FaultError is one injected filesystem fault: which operation (by global
// index), on which path, and what kind of failure it simulated.
type FaultError struct {
	Index int64  // global operation index the fault fired at
	Op    string // "write", "sync", "create", "rename", ...
	Path  string
	Kind  string // "torn", "fsync", "enospc", "open", "rename", "crash"
	Err   error  // sentinel: syscall.ENOSPC, ErrCrashed, or ErrInjected
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("vfs: injected %s fault at op %d (%s %s)", e.Kind, e.Index, e.Op, e.Path)
}

func (e *FaultError) Unwrap() error { return e.Err }

// Plan is a deterministic, seeded filesystem fault schedule, mirroring the
// simulator's network/coherence fault plans: the same plan over the same
// operation sequence injects the same faults at the same operation indices.
type Plan struct {
	Seed uint64

	// Per-operation fault probabilities in [0,1].
	TornRate   float64 // writes: only a seeded prefix reaches the file
	FsyncRate  float64 // file/dir syncs fail after the data may have landed
	ENOSPCRate float64 // writes, creates, and syncs fail with ENOSPC
	OpenRate   float64 // creates/opens fail
	RenameRate float64 // renames fail

	// CrashAt, when >= 0, kills the filesystem at global operation index N:
	// operation N itself half-happens (a write persists a seeded prefix,
	// anything else does nothing) and every later operation returns
	// ErrCrashed. -1 disables.
	CrashAt int64
}

// ParsePlan parses the -fault-fsplan flag grammar: comma-separated k=v
// pairs, e.g. "seed=7,torn=0.02,fsync=0.01,enospc=0.05,crash=123". Omitted
// keys default to zero rates, seed 0, and no crash point.
func ParsePlan(s string) (Plan, error) {
	p := Plan{CrashAt: -1}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("vfs: fault plan: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "torn":
			p.TornRate, err = parseRate(v)
		case "fsync":
			p.FsyncRate, err = parseRate(v)
		case "enospc":
			p.ENOSPCRate, err = parseRate(v)
		case "open":
			p.OpenRate, err = parseRate(v)
		case "rename":
			p.RenameRate, err = parseRate(v)
		case "crash":
			p.CrashAt, err = strconv.ParseInt(v, 10, 64)
		default:
			return p, fmt.Errorf("vfs: fault plan: unknown key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("vfs: fault plan: %s: %w", k, err)
		}
	}
	return p, nil
}

func parseRate(v string) (float64, error) {
	r, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %g outside [0,1]", r)
	}
	return r, nil
}

// Faulty wraps an inner FS with a Plan. Every operation is counted; fault
// decisions are drawn from a seeded splitmix64 stream in operation order, so
// a single-threaded operation sequence replays bit-identically. Injected
// faults are recorded in a trace for determinism checks and operator logs.
type Faulty struct {
	mu     sync.Mutex
	inner  FS
	plan   Plan
	rng    uint64
	ops    int64
	faults int64
	crash  bool
	trace  []string
}

// NewFaulty wraps inner with plan.
func NewFaulty(inner FS, plan Plan) *Faulty {
	return &Faulty{inner: inner, plan: plan, rng: plan.Seed ^ 0x9e3779b97f4a7c15}
}

// splitmix64: tiny, seedable, and plenty for fault scheduling.
func (f *Faulty) next() uint64 {
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// draw returns a uniform float in [0,1) from the plan stream.
func (f *Faulty) draw() float64 { return float64(f.next()>>11) / (1 << 53) }

// OpCount returns the number of filesystem operations observed so far — the
// crash-point harness runs a workload once to learn its length, then crashes
// at every index in [0, OpCount).
func (f *Faulty) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// FaultCount returns how many faults (including the crash) were injected.
func (f *Faulty) FaultCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// Crashed reports whether the crash point has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crash
}

// Trace returns a copy of the injected-fault trace, one line per fault, in
// injection order. Two runs of the same plan over the same operation
// sequence produce identical traces.
func (f *Faulty) Trace() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.trace...)
}

// decide runs the per-operation fault schedule. It returns a nil error when
// the operation should proceed normally. For write-class operations that
// fail, prefix is how many of n bytes should still reach the inner FS
// (simulating a torn write) before the error is reported.
func (f *Faulty) decide(op, path string, n int) (prefix int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crash {
		return 0, ErrCrashed
	}
	idx := f.ops
	f.ops++

	fail := func(kind string, sentinel error, pfx int) (int, error) {
		f.faults++
		f.trace = append(f.trace, fmt.Sprintf("op=%d %s %s kind=%s prefix=%d/%d", idx, op, path, kind, pfx, n))
		return pfx, &FaultError{Index: idx, Op: op, Path: path, Kind: kind, Err: sentinel}
	}

	if f.plan.CrashAt >= 0 && idx >= f.plan.CrashAt {
		f.crash = true
		pfx := 0
		if op == "write" && n > 0 {
			pfx = int(f.next() % uint64(n+1)) // crash may land mid-write or just after
		}
		return fail("crash", ErrCrashed, pfx)
	}

	u := f.draw()
	switch op {
	case "write":
		if u < f.plan.TornRate {
			pfx := 0
			if n > 0 {
				pfx = int(f.next() % uint64(n)) // strictly short
			}
			return fail("torn", ErrInjected, pfx)
		}
		if u < f.plan.TornRate+f.plan.ENOSPCRate {
			pfx := 0
			if n > 0 {
				pfx = int(f.next() % uint64(n))
			}
			return fail("enospc", syscall.ENOSPC, pfx)
		}
	case "sync", "syncdir":
		if u < f.plan.FsyncRate {
			return fail("fsync", ErrInjected, 0)
		}
		if u < f.plan.FsyncRate+f.plan.ENOSPCRate {
			return fail("enospc", syscall.ENOSPC, 0)
		}
	case "create", "open":
		if u < f.plan.OpenRate {
			return fail("open", ErrInjected, 0)
		}
		if u < f.plan.OpenRate+f.plan.ENOSPCRate {
			return fail("enospc", syscall.ENOSPC, 0)
		}
	case "rename":
		if u < f.plan.RenameRate {
			return fail("rename", ErrInjected, 0)
		}
	}
	return 0, nil
}

func (f *Faulty) ReadFile(path string) ([]byte, error) {
	if _, err := f.decide("read", path, 0); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

func (f *Faulty) WriteFile(path string, data []byte, perm os.FileMode) error {
	prefix, err := f.decide("write", path, len(data))
	if err != nil {
		if prefix > 0 {
			f.inner.WriteFile(path, data[:prefix], perm)
		}
		return err
	}
	return f.inner.WriteFile(path, data, perm)
}

func (f *Faulty) Create(path string) (File, error) {
	if _, err := f.decide("create", path, 0); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, path: path, inner: inner}, nil
}

func (f *Faulty) OpenAppend(path string) (File, error) {
	if _, err := f.decide("open", path, 0); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, path: path, inner: inner}, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if _, err := f.decide("rename", oldpath, 0); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(path string) error {
	if _, err := f.decide("remove", path, 0); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *Faulty) RemoveAll(path string) error {
	if _, err := f.decide("remove", path, 0); err != nil {
		return err
	}
	return f.inner.RemoveAll(path)
}

func (f *Faulty) Truncate(path string, size int64) error {
	if _, err := f.decide("truncate", path, 0); err != nil {
		return err
	}
	return f.inner.Truncate(path, size)
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.decide("mkdir", path, 0); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) ReadDir(path string) ([]string, error) {
	if _, err := f.decide("readdir", path, 0); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(path)
}

func (f *Faulty) SyncDir(path string) error {
	if _, err := f.decide("syncdir", path, 0); err != nil {
		return err
	}
	return f.inner.SyncDir(path)
}

// faultyFile routes a handle's writes and syncs back through the parent's
// fault schedule. Close is never faulted and never counted: handles must
// always be releasable so a crashed workload does not leak descriptors.
type faultyFile struct {
	f     *Faulty
	path  string
	inner File
}

func (h *faultyFile) Write(p []byte) (int, error) {
	prefix, err := h.f.decide("write", h.path, len(p))
	if err != nil {
		if prefix > 0 {
			h.inner.Write(p[:prefix])
		}
		return prefix, err
	}
	return h.inner.Write(p)
}

func (h *faultyFile) Sync() error {
	if _, err := h.f.decide("sync", h.path, 0); err != nil {
		return err
	}
	return h.inner.Sync()
}

func (h *faultyFile) Close() error { return h.inner.Close() }
