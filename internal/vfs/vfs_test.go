package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
)

// script drives a fixed operation sequence against an FS, returning any
// errors observed. The sequence is single-threaded and deterministic, so a
// seeded Faulty sees identical operation indices every run.
func script(t *testing.T, fsys FS, dir string) []string {
	t.Helper()
	var errs []string
	note := func(err error) {
		if err != nil {
			errs = append(errs, err.Error())
		}
	}
	note(fsys.MkdirAll(filepath.Join(dir, "d"), 0o755))
	for i := 0; i < 6; i++ {
		p := filepath.Join(dir, "d", "f"+string(rune('0'+i)))
		f, err := fsys.Create(p)
		if err != nil {
			note(err)
			continue
		}
		if _, err := f.Write([]byte("hello world, a payload long enough to tear")); err != nil {
			note(err)
		}
		note(f.Sync())
		f.Close()
		note(fsys.Rename(p, p+".final"))
		note(fsys.SyncDir(filepath.Join(dir, "d")))
	}
	_, err := fsys.ReadFile(filepath.Join(dir, "d", "f0.final"))
	note(err)
	return errs
}

// TestOSRoundTrip sanity-checks the passthrough implementation.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if errs := script(t, OS{}, dir); len(errs) != 0 {
		t.Fatalf("clean host filesystem errored: %v", errs)
	}
	names, err := OS{}.ReadDir(filepath.Join(dir, "d"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"f0.final", "f1.final", "f2.final", "f3.final", "f4.final", "f5.final"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("ReadDir: %v", names)
	}
	if _, err := (OS{}).ReadFile(filepath.Join(dir, "nope")); !IsNotExist(err) {
		t.Fatalf("missing file: %v", err)
	}
}

// TestParsePlan covers the -fault-fsplan grammar.
func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7,torn=0.02,fsync=0.01,enospc=0.05,open=0.1,rename=0.2,crash=123")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, TornRate: 0.02, FsyncRate: 0.01, ENOSPCRate: 0.05, OpenRate: 0.1, RenameRate: 0.2, CrashAt: 123}
	if p != want {
		t.Fatalf("got %+v, want %+v", p, want)
	}
	if p, err := ParsePlan(""); err != nil || p.CrashAt != -1 {
		t.Fatalf("empty plan: %+v / %v", p, err)
	}
	for _, bad := range []string{"torn=2", "torn=-0.1", "bogus=1", "torn", "crash=x"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// TestFaultyDeterminism is the fault-plan acceptance criterion at the vfs
// level: the same seed over the same operation sequence injects the same
// faults (identical traces) and leaves identical bytes on disk.
func TestFaultyDeterminism(t *testing.T) {
	plan, err := ParsePlan("seed=42,torn=0.1,fsync=0.1,enospc=0.1,open=0.05,rename=0.05")
	if err != nil {
		t.Fatal(err)
	}
	scrub := func(dir string, lines []string) []string {
		out := make([]string, len(lines))
		for i, l := range lines {
			out[i] = strings.ReplaceAll(l, dir, "$DIR")
		}
		return out
	}
	run := func() (trace []string, errs []string, files map[string]string) {
		dir := t.TempDir()
		f := NewFaulty(OS{}, plan)
		errs = scrub(dir, script(t, f, dir))
		files = map[string]string{}
		names, _ := OS{}.ReadDir(filepath.Join(dir, "d"))
		for _, n := range names {
			b, err := os.ReadFile(filepath.Join(dir, "d", n))
			if err != nil {
				t.Fatal(err)
			}
			files[n] = string(b)
		}
		return scrub(dir, f.Trace()), errs, files
	}
	t1, e1, f1 := run()
	t2, e2, f2 := run()
	if len(t1) == 0 {
		t.Fatal("plan injected nothing; rates too low for the script")
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("traces diverged:\n%v\n%v", t1, t2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("observed errors diverged:\n%v\n%v", e1, e2)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("on-disk bytes diverged:\n%v\n%v", f1, f2)
	}
}

// TestFaultyTornWrite: a torn write persists a strict prefix and reports a
// typed fault.
func TestFaultyTornWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, Plan{Seed: 1, TornRate: 1, CrashAt: -1})
	p := filepath.Join(dir, "x")
	data := []byte("0123456789abcdef")
	err := f.WriteFile(p, data, 0o644)
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != "torn" {
		t.Fatalf("want torn FaultError, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("torn fault does not unwrap to ErrInjected")
	}
	b, rerr := os.ReadFile(p)
	if rerr == nil && len(b) >= len(data) {
		t.Fatalf("torn write persisted %d of %d bytes", len(b), len(data))
	}
}

// TestFaultyENOSPC: injected ENOSPC unwraps to syscall.ENOSPC so callers'
// IsNoSpace checks treat injected and real disk-full identically.
func TestFaultyENOSPC(t *testing.T) {
	f := NewFaulty(OS{}, Plan{Seed: 1, ENOSPCRate: 1, CrashAt: -1})
	err := f.WriteFile(filepath.Join(t.TempDir(), "x"), []byte("data"), 0o644)
	if !IsNoSpace(err) {
		t.Fatalf("injected ENOSPC not detected by IsNoSpace: %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatal("does not unwrap to syscall.ENOSPC")
	}
}

// TestFaultyCrashAt: operation N half-happens, every later operation
// returns ErrCrashed, and nothing more reaches the disk.
func TestFaultyCrashAt(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, Plan{Seed: 3, CrashAt: 2})
	if err := f.MkdirAll(filepath.Join(dir, "d"), 0o755); err != nil { // op 0
		t.Fatal(err)
	}
	if err := f.WriteFile(filepath.Join(dir, "d", "a"), []byte("aa"), 0o644); err != nil { // op 1
		t.Fatal(err)
	}
	err := f.WriteFile(filepath.Join(dir, "d", "b"), []byte("bb"), 0o644) // op 2: crash
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash point: %v", err)
	}
	if !f.Crashed() {
		t.Fatal("Crashed() false after the crash point")
	}
	// Post-crash operations are dead and uncounted.
	ops := f.OpCount()
	if err := f.WriteFile(filepath.Join(dir, "d", "c"), []byte("cc"), 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if f.OpCount() != ops {
		t.Fatal("post-crash operations were counted")
	}
	if _, err := os.ReadFile(filepath.Join(dir, "d", "c")); !IsNotExist(err) {
		t.Fatal("post-crash write reached the disk")
	}
	if b, err := os.ReadFile(filepath.Join(dir, "d", "a")); err != nil || string(b) != "aa" {
		t.Fatalf("pre-crash write lost: %q / %v", b, err)
	}
}

// TestFaultyFileHandles: faults reach handle writes and syncs; Close always
// succeeds so crashed workloads can release descriptors.
func TestFaultyFileHandles(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{}, Plan{Seed: 9, FsyncRate: 1, CrashAt: -1})
	h, err := f.Create(filepath.Join(dir, "x")) // create op draws no fsync
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	serr := h.Sync()
	var fe *FaultError
	if !errors.As(serr, &fe) || fe.Kind != "fsync" {
		t.Fatalf("want fsync FaultError, got %v", serr)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close must never be faulted: %v", err)
	}
	if f.FaultCount() == 0 {
		t.Fatal("fault counter did not move")
	}
}
