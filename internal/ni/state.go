package ni

import "repro/internal/snapshot"

// encodePacket writes one queued packet's full wire-visible image.
func encodePacket(enc *snapshot.Enc, pkt *Packet) {
	enc.I64(int64(pkt.Src))
	enc.I64(int64(pkt.Dst))
	enc.I64(int64(pkt.Tag))
	for _, a := range pkt.Args {
		enc.U64(a)
	}
	enc.U64s(pkt.Words[:pkt.NWords])
	enc.I64(int64(pkt.DataBytes))
	enc.I64(pkt.Arrive)
	enc.U64(pkt.Seq)
	enc.Bool(pkt.Corrupt)
}

// EncodeState contributes the interconnect image to a canonical state
// snapshot: the conservation counters and, per interface, the queued
// incoming packets in arrival order plus the blocked-waiter flag.
func (n *Network) EncodeState(enc *snapshot.Enc) {
	enc.Section("network", func(enc *snapshot.Enc) {
		enc.I64(n.Injected)
		enc.I64(n.Delivered)
		enc.I64(n.Dropped)
		enc.I64(n.Duplicated)
		enc.I64(n.Corrupted)
		enc.U32(uint32(len(n.nis)))
		for _, ni := range n.nis {
			enc.Section("ni", func(enc *snapshot.Enc) {
				enc.Bool(ni.waiter)
				enc.U32(uint32(ni.qlen()))
				for i := ni.inqHead; i < len(ni.inq); i++ {
					encodePacket(enc, &ni.inq[i])
				}
			})
		}
	})
}
