// Package ni models the message-passing machine's memory-mapped network
// interface, patterned on the CM-5 data network interface (paper §4.1,
// Table 2): incoming and outgoing FIFOs for packets of up to 20 bytes
// (a tag word plus 16 payload bytes), a status register indicating whether a
// packet is queued, and explicit processor loads/stores to move data — there
// is no DMA. Sends always succeed (the network is contention-free, as in the
// paper), and delivery takes the constant network latency.
package ni

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Packet is one 20-byte network packet: a tag/handler word plus four payload
// words. DataBytes records how much of the payload is application data (the
// rest is counted as control, as in the paper's bytes-transmitted split).
type Packet struct {
	Src, Dst int
	Tag      int
	Args     [4]uint64

	// Data carries the payload's application words for delivery to the
	// receiver's handler (at most PacketPayload bytes' worth). It is
	// modeling convenience — on the wire the packet is still 20 bytes.
	Data []uint64

	// DataBytes is the application-data portion of the payload (0..16).
	DataBytes int

	// Arrive is the packet's arrival time at the destination NI.
	Arrive sim.Time
}

// Network is the interconnect: constant latency, no contention, infinite
// bandwidth (the paper's assumption; Section 4 notes LAPSE models contention
// but this study deliberately does not).
type Network struct {
	Eng *sim.Engine
	Cfg *cost.Config

	nis []*NI

	// Injected and Delivered count packets for conservation tests.
	Injected, Delivered int64
}

// NewNetwork creates the interconnect.
func NewNetwork(eng *sim.Engine, cfg *cost.Config) *Network {
	return &Network{Eng: eng, Cfg: cfg}
}

// Attach creates the network interface for processor p. Interfaces must be
// attached in processor-ID order.
func (n *Network) Attach(p *sim.Proc) *NI {
	if p.ID != len(n.nis) {
		panic(fmt.Sprintf("ni: attach out of order: proc %d, have %d", p.ID, len(n.nis)))
	}
	ni := &NI{Node: p.ID, P: p, Cfg: n.Cfg, net: n}
	n.nis = append(n.nis, ni)
	return ni
}

// NI is one node's network interface.
type NI struct {
	Node int
	P    *sim.Proc
	Cfg  *cost.Config

	net     *Network
	inq     []Packet // ordered by arrival: deliveries happen in event-time order
	inqHead int      // consumed prefix (amortized O(1) pops)
	waiter  bool     // the processor is blocked awaiting a delivery
}

func (ni *NI) qlen() int { return len(ni.inq) - ni.inqHead }

func (ni *NI) qhead() *Packet { return &ni.inq[ni.inqHead] }

func (ni *NI) qpop() Packet {
	pkt := ni.inq[ni.inqHead]
	ni.inq[ni.inqHead] = Packet{}
	ni.inqHead++
	if ni.inqHead == len(ni.inq) {
		ni.inq = ni.inq[:0]
		ni.inqHead = 0
	} else if ni.inqHead > 1024 && ni.inqHead*2 > len(ni.inq) {
		n := copy(ni.inq, ni.inq[ni.inqHead:])
		ni.inq = ni.inq[:n]
		ni.inqHead = 0
	}
	return pkt
}

// Pending returns the number of queued incoming packets (for tests).
func (ni *NI) Pending() int { return ni.qlen() }

// Status reads the NI status word (5 cycles, charged to network access) and
// reports whether an incoming packet is available at the current clock.
func (ni *NI) Status() bool {
	ni.P.Interact()
	ni.P.ChargeStall(stats.NetAccess, ni.Cfg.NIStatusCycles)
	return ni.qlen() > 0 && ni.qhead().Arrive <= ni.P.Clock()
}

// Send injects a packet: write tag+destination (5 cycles) then store five
// words (15 cycles). pkt.DataBytes of the 16-byte payload are counted as
// application data, the rest (plus the 4-byte tag word) as control. Src and
// Arrive are filled in by the interface.
func (ni *NI) Send(pkt Packet) {
	if pkt.DataBytes < 0 || pkt.DataBytes > ni.Cfg.PacketPayload {
		panic(fmt.Sprintf("ni: dataBytes %d out of range", pkt.DataBytes))
	}
	dst := pkt.Dst
	if dst < 0 || dst >= len(ni.net.nis) {
		panic(fmt.Sprintf("ni: send to invalid node %d", dst))
	}
	p := ni.P
	p.Interact()
	p.ChargeStall(stats.NetAccess, ni.Cfg.NIWriteTagDest+ni.Cfg.NISendCycles)
	p.Acct.Add(stats.CntMessages, 1)
	p.Acct.Add(stats.CntBytesData, int64(pkt.DataBytes))
	p.Acct.Add(stats.CntBytesControl, int64(ni.Cfg.PacketBytes-pkt.DataBytes))

	pkt.Src = ni.Node
	pkt.Arrive = p.Clock() + ni.Cfg.NetLatency
	ni.net.Injected++
	dstNI := ni.net.nis[dst]
	ni.net.Eng.Schedule(pkt.Arrive, func() {
		dstNI.inq = append(dstNI.inq, pkt)
		ni.net.Delivered++
		if dstNI.waiter {
			dstNI.waiter = false
			dstNI.P.Wake(pkt.Arrive, nil)
		}
	})
}

// Recv pops the head packet (15 cycles of loads). The caller must have
// observed Status() true; receiving from an empty or not-yet-arrived queue
// panics, as it would wedge real hardware.
func (ni *NI) Recv() Packet {
	p := ni.P
	p.Interact()
	if ni.qlen() == 0 || ni.qhead().Arrive > p.Clock() {
		panic(fmt.Sprintf("ni: node %d recv with no packet available", ni.Node))
	}
	p.ChargeStall(stats.NetAccess, ni.Cfg.NIRecvCycles)
	return ni.qpop()
}

// WaitPacket stalls (charging cat) until a packet is available. An empty
// queue blocks the processor until the next delivery — the stall spans
// exactly the idle window, as a polling loop would.
func (ni *NI) WaitPacket(cat stats.Category) {
	p := ni.P
	p.Interact()
	for {
		if ni.qlen() > 0 {
			if a := ni.qhead().Arrive; a > p.Clock() {
				p.WaitUntil(a, cat)
			}
			return
		}
		ni.waiter = true
		p.Block(cat, "awaiting packet")
	}
}
