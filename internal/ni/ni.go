// Package ni models the message-passing machine's memory-mapped network
// interface, patterned on the CM-5 data network interface (paper §4.1,
// Table 2): incoming and outgoing FIFOs for packets of up to 20 bytes
// (a tag word plus 16 payload bytes), a status register indicating whether a
// packet is queued, and explicit processor loads/stores to move data — there
// is no DMA. By default sends always succeed (the network is
// contention-free and lossless, as in the paper) and delivery takes the
// constant network latency; attaching a faults.Plan makes the network drop,
// duplicate, delay, or corrupt packets deterministically, the substrate for
// the degradation experiments the paper's machines cannot express.
package ni

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ErrNoPacket is returned by TryRecv when no packet has arrived. On the
// lossless machine receiving without a prior Status check is a programmer
// error (Recv panics, as real hardware would wedge); on a faulty network the
// typed error lets the transport treat it as a normal race.
var ErrNoPacket = errors.New("ni: no packet available")

// MaxDataWords is the most payload words one packet carries: the 16-byte
// payload holds at most four 4-byte elements.
const MaxDataWords = 4

// Packet is one 20-byte network packet: a tag/handler word plus four payload
// words. DataBytes records how much of the payload is application data (the
// rest is counted as control, as in the paper's bytes-transmitted split).
type Packet struct {
	Src, Dst int
	Tag      int
	Args     [4]uint64

	// Words carries the payload's application words inline for delivery to
	// the receiver's handler (at most PacketPayload bytes' worth; NWords are
	// valid). Inline rather than a slice so a Packet is a pure value: it can
	// sit in delivery pools and receive queues with no heap payload buffer
	// and no aliasing of sender memory. Use SetPayload/Payload. On the wire
	// the packet is still 20 bytes.
	Words  [MaxDataWords]uint64
	NWords int

	// DataBytes is the application-data portion of the payload (0..16).
	DataBytes int

	// Arrive is the packet's arrival time at the destination NI.
	Arrive sim.Time

	// Seq is the reliable transport's sequence number; zero marks an
	// unsequenced (raw) packet. On the wire it rides in the tag word's
	// spare bits — the packet is still 20 bytes.
	Seq uint64

	// Corrupt marks a packet whose payload the network flipped a bit of.
	// The reliable transport detects it (modeled checksum) and discards.
	Corrupt bool
}

// SetPayload copies up to MaxDataWords payload words into the packet.
func (pkt *Packet) SetPayload(words []uint64) {
	if len(words) > MaxDataWords {
		panic(fmt.Sprintf("ni: payload of %d words exceeds %d", len(words), MaxDataWords))
	}
	pkt.NWords = copy(pkt.Words[:], words)
}

// Payload returns the packet's valid payload words.
func (pkt *Packet) Payload() []uint64 { return pkt.Words[:pkt.NWords] }

// Network is the interconnect: constant latency, no contention, infinite
// bandwidth (the paper's assumption; Section 4 notes LAPSE models contention
// but this study deliberately does not).
type Network struct {
	Eng *sim.Engine
	Cfg *cost.Config

	// Faults, when non-nil, is consulted on every injection to decide the
	// packet's fate. Nil is the paper's perfect network, bit-identical to
	// the seed behavior.
	Faults *faults.Plan

	nis []*NI

	// Packet-conservation counters. On a perfect network
	// Injected == Delivered; with faults the invariant generalizes to
	// Injected + Duplicated == Delivered + Dropped (every copy the network
	// created or destroyed is accounted). Corrupted counts packets
	// delivered with a flipped bit (they are also Delivered). Injection-side
	// counters are bumped atomically — senders on different nodes run
	// concurrently within a quantum; Delivered is only touched by delivery
	// events (engine context).
	Injected, Delivered, Dropped, Duplicated, Corrupted int64
}

// NewNetwork creates the interconnect.
func NewNetwork(eng *sim.Engine, cfg *cost.Config) *Network {
	return &Network{Eng: eng, Cfg: cfg}
}

// Attach creates the network interface for processor p. Interfaces must be
// attached in processor-ID order.
func (n *Network) Attach(p *sim.Proc) *NI {
	if p.ID != len(n.nis) {
		panic(fmt.Sprintf("ni: attach out of order: proc %d, have %d", p.ID, len(n.nis)))
	}
	ni := &NI{Node: p.ID, P: p, Cfg: n.Cfg, net: n}
	n.nis = append(n.nis, ni)
	return ni
}

// NI is one node's network interface.
type NI struct {
	Node int
	P    *sim.Proc
	Cfg  *cost.Config

	net     *Network
	inq     []Packet // ordered by arrival: deliveries happen in event-time order
	inqHead int      // consumed prefix (amortized O(1) pops)
	waiter  bool     // the processor is blocked awaiting a delivery

	// freeDel recycles this interface's outbound delivery events. Owned by
	// the sender side: the owning processor pops during its processor phase,
	// the engine pushes back after RunEvent during the serial event phase —
	// the engine's phase-separation invariant means no lock is needed.
	freeDel []*delivery
}

func (ni *NI) qlen() int { return len(ni.inq) - ni.inqHead }

func (ni *NI) qhead() *Packet { return &ni.inq[ni.inqHead] }

func (ni *NI) qpop() Packet {
	// The consumed slot is left as-is: Packet is pointer-free, so stale
	// slots retain nothing, and skipping the clear avoids a 128-byte
	// duffzero per receive on the hottest message path.
	pkt := ni.inq[ni.inqHead]
	ni.inqHead++
	if ni.inqHead == len(ni.inq) {
		ni.inq = ni.inq[:0]
		ni.inqHead = 0
	} else if ni.inqHead > 1024 && ni.inqHead*2 > len(ni.inq) {
		n := copy(ni.inq, ni.inq[ni.inqHead:])
		ni.inq = ni.inq[:n]
		ni.inqHead = 0
	}
	return pkt
}

// Pending returns the number of queued incoming packets (for tests).
func (ni *NI) Pending() int { return ni.qlen() }

// Nodes returns the number of interfaces attached to the network so far
// (the machine size once construction is complete).
func (ni *NI) Nodes() int { return len(ni.net.nis) }

// Faulty reports whether a fault plan is attached to the network.
func (ni *NI) Faulty() bool { return ni.net.Faults != nil }

// Status reads the NI status word (5 cycles, charged to network access) and
// reports whether an incoming packet is available at the current clock.
func (ni *NI) Status() bool {
	ni.P.Interact()
	ni.P.ChargeStall(stats.NetAccess, ni.Cfg.NIStatusCycles)
	return ni.qlen() > 0 && ni.qhead().Arrive <= ni.P.Clock()
}

// StepStatus is Status for step processors: avail is valid only when done.
// A false done means nothing was charged; re-invoke when redispatched.
func (ni *NI) StepStatus() (avail, done bool) {
	p := ni.P
	if !p.StepInteract() {
		return false, false
	}
	p.ChargeStall(stats.NetAccess, ni.Cfg.NIStatusCycles)
	return ni.qlen() > 0 && ni.qhead().Arrive <= p.Clock(), true
}

// StepRecv is TryRecv for step processors, on the path where Status already
// said a packet is available (the step-form poll never loads an empty FIFO).
// The packet is popped into dst, the caller's resumable frame — one 128-byte
// move instead of a pop-return-assign chain.
func (ni *NI) StepRecv(dst *Packet) bool {
	p := ni.P
	if !p.StepInteract() {
		return false
	}
	if ni.qlen() == 0 || ni.qhead().Arrive > p.Clock() {
		panic("ni: step recv with no packet available")
	}
	p.ChargeStall(stats.NetAccess, ni.Cfg.NIRecvCycles)
	*dst = *ni.qhead()
	ni.inqHead++
	if ni.inqHead == len(ni.inq) {
		ni.inq = ni.inq[:0]
		ni.inqHead = 0
	} else if ni.inqHead > 1024 && ni.inqHead*2 > len(ni.inq) {
		n := copy(ni.inq, ni.inq[ni.inqHead:])
		ni.inq = ni.inq[:n]
		ni.inqHead = 0
	}
	return true
}

// StepWaitPacket is WaitPacket for step processors. Outcomes: done means a
// packet is available and the clock has advanced to its arrival (waiting
// charged to cat); done=false, blocked=true means the waiter is parked
// (StepBlock ran — return StepYield and re-invoke on the delivery wake);
// done=false, blocked=false means the entry Interact would yield — return
// StepYield and re-invoke when the quantum catches up.
func (ni *NI) StepWaitPacket(cat stats.Category) (done, blocked bool) {
	p := ni.P
	if p.WakePending() {
		p.WakePayload()
	} else if !p.StepInteract() {
		return false, false
	}
	if ni.qlen() > 0 {
		if a := ni.qhead().Arrive; a > p.Clock() {
			p.WaitUntil(a, cat)
		}
		return true, false
	}
	ni.waiter = true
	p.StepBlock(cat, "awaiting packet")
	return false, true
}

// Send injects a packet: write tag+destination (5 cycles) then store five
// words (15 cycles). pkt.DataBytes of the 16-byte payload are counted as
// application data, the rest (plus the 4-byte tag word) as control. Src and
// Arrive are filled in by the interface.
func (ni *NI) Send(pkt *Packet) {
	ni.P.Interact()
	ni.sendBody(pkt)
}

// StepSend is Send for step processors: false means the quantum must catch
// up first (nothing injected, nothing charged); re-invoke with the same
// packet when redispatched.
func (ni *NI) StepSend(pkt *Packet) bool {
	if !ni.P.StepInteract() {
		return false
	}
	ni.sendBody(pkt)
	return true
}

// sendBody is everything Send does after its Interact: validation, the
// injection charges, and staging the delivery. pkt is the caller's private
// copy, passed by pointer so the 128-byte struct moves once per hop, not
// once per call frame.
func (ni *NI) sendBody(pkt *Packet) {
	if pkt.DataBytes < 0 || pkt.DataBytes > ni.Cfg.PacketPayload {
		panic(fmt.Sprintf("ni: dataBytes %d out of range", pkt.DataBytes))
	}
	dst := pkt.Dst
	if dst < 0 || dst >= len(ni.net.nis) {
		panic(fmt.Sprintf("ni: send to invalid node %d", dst))
	}
	p := ni.P
	p.ChargeStall(stats.NetAccess, ni.Cfg.NIWriteTagDest+ni.Cfg.NISendCycles)
	p.Acct.Add(stats.CntMessages, 1)
	p.Acct.Add(stats.CntBytesData, int64(pkt.DataBytes))
	p.Acct.Add(stats.CntBytesControl, int64(ni.Cfg.PacketBytes-pkt.DataBytes))

	pkt.Src = ni.Node
	pkt.Arrive = p.Clock() + ni.Cfg.NetLatency
	atomic.AddInt64(&ni.net.Injected, 1)
	dstNI := ni.net.nis[dst]

	if plan := ni.net.Faults; plan != nil {
		d := plan.Decide(p.Clock(), ni.Node, dst)
		if d.Drop {
			atomic.AddInt64(&ni.net.Dropped, 1)
			p.Acct.Add(stats.CntDropped, 1)
			return
		}
		if d.Corrupt {
			atomic.AddInt64(&ni.net.Corrupted, 1)
			pkt.Corrupt = true
			corrupt(pkt, d.CorruptBit)
		}
		pkt.Arrive += d.Delay
		if d.Dup {
			atomic.AddInt64(&ni.net.Duplicated, 1)
			dup := *pkt
			dup.Arrive = p.Clock() + ni.Cfg.NetLatency + d.DupDelay
			ni.deliver(dstNI, &dup)
		}
	}
	ni.deliver(dstNI, pkt)
}

// delivery is a pooled, closure-free packet-arrival event (sim.Action). It
// was the single hottest allocation site in message-passing runs — one
// closure per packet — before pooling; see NI.freeDel for the ownership
// discipline that lets the pool go lockless.
type delivery struct {
	origin *NI // the sender, whose pool this event returns to
	dst    *NI
	pkt    Packet
}

// RunEvent appends the packet to the destination queue, wakes a blocked
// receiver, and recycles the event. Engine context.
func (d *delivery) RunEvent(at sim.Time) {
	dst := d.dst
	dst.inq = append(dst.inq, d.pkt)
	d.origin.net.Delivered++
	if dst.waiter {
		dst.waiter = false
		dst.P.Wake(at, nil)
	}
	// d.pkt is left in place: it is fully overwritten on pool reuse, and
	// Packet is pointer-free, so clearing it would only duffzero 128 bytes
	// per delivery.
	d.dst = nil
	d.origin.freeDel = append(d.origin.freeDel, d)
}

// deliver stages pkt's arrival at dst on behalf of the sending processor;
// the delivery itself runs in a later event phase, the only context allowed
// to touch the destination's queue and wake its processor.
func (ni *NI) deliver(dst *NI, pkt *Packet) {
	var d *delivery
	if n := len(ni.freeDel); n > 0 {
		d = ni.freeDel[n-1]
		ni.freeDel = ni.freeDel[:n-1]
		d.dst, d.pkt = dst, *pkt
	} else {
		d = &delivery{origin: ni, dst: dst, pkt: *pkt}
	}
	ni.P.ScheduleAction(pkt.Arrive, d)
}

// corrupt flips one bit of the 20-byte wire image: bits 0..31 hit the tag
// word, the rest the payload words. The packet is a value copy, so the
// sender's buffers are untouched; the inline payload words are not mutated —
// a flipped payload bit is represented by the Corrupt flag alone, which is
// what the transport's checksum sees.
func corrupt(pkt *Packet, bit int) {
	if bit < 32 {
		pkt.Tag ^= 1 << (bit % 31)
		return
	}
	w := (bit - 32) / 32
	if w < len(pkt.Args) {
		pkt.Args[w] ^= 1 << ((bit - 32) % 32)
	}
}

// Recv pops the head packet (15 cycles of loads). The caller must have
// observed Status() true; receiving from an empty or not-yet-arrived queue
// panics, as it would wedge real hardware.
func (ni *NI) Recv() Packet {
	pkt, err := ni.TryRecv()
	if err != nil {
		panic(fmt.Sprintf("ni: node %d recv with no packet available", ni.Node))
	}
	return pkt
}

// TryRecv pops the head packet if one has arrived, or returns ErrNoPacket.
// The receive cost is only charged when a packet is actually popped.
func (ni *NI) TryRecv() (Packet, error) {
	p := ni.P
	p.Interact()
	if ni.qlen() == 0 || ni.qhead().Arrive > p.Clock() {
		return Packet{}, fmt.Errorf("ni: node %d: %w", ni.Node, ErrNoPacket)
	}
	p.ChargeStall(stats.NetAccess, ni.Cfg.NIRecvCycles)
	return ni.qpop(), nil
}

// WaitPacket stalls (charging cat) until a packet is available. An empty
// queue blocks the processor until the next delivery — the stall spans
// exactly the idle window, as a polling loop would.
func (ni *NI) WaitPacket(cat stats.Category) {
	p := ni.P
	p.Interact()
	for {
		if ni.qlen() > 0 {
			if a := ni.qhead().Arrive; a > p.Clock() {
				p.WaitUntil(a, cat)
			}
			return
		}
		ni.waiter = true
		p.Block(cat, "awaiting packet")
	}
}

// WaitPacketUntil stalls (charging cat) until a packet is available or the
// local clock reaches deadline, whichever is first. The reliable transport
// uses it so a node waiting on a lossy network wakes in time to retransmit
// instead of blocking forever on a packet that was dropped. A wake event is
// scheduled at the deadline; spurious wakes are harmless (callers re-check).
func (ni *NI) WaitPacketUntil(cat stats.Category, deadline sim.Time) {
	p := ni.P
	p.Interact()
	for {
		if ni.qlen() > 0 {
			a := ni.qhead().Arrive
			if a <= p.Clock() {
				return
			}
			if a > deadline {
				p.WaitUntil(deadline, cat)
				return
			}
			p.WaitUntil(a, cat)
			return
		}
		if p.Clock() >= deadline {
			return
		}
		ni.waiter = true
		p.Schedule(deadline, func() {
			if ni.waiter {
				ni.waiter = false
				ni.P.Wake(deadline, nil)
			}
		})
		p.Block(cat, "awaiting packet or transport deadline")
	}
}
