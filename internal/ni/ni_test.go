package ni

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestSendDeliversAfterLatency(t *testing.T) {
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := NewNetwork(eng, &cfg)
	var arrive sim.Time
	var sendDone sim.Time
	var recvTag int
	procs := make([]*sim.Proc, 2)
	nis := make([]*NI, 2)
	procs[0] = eng.AddProc(func(p *sim.Proc) {
		nis[0].Send(Packet{Dst: 1, Tag: 7, DataBytes: 8})
		sendDone = p.Clock()
	})
	procs[1] = eng.AddProc(func(p *sim.Proc) {
		nis[1].WaitPacket(stats.LibComp)
		arrive = p.Clock()
		if !nis[1].Status() {
			t.Error("status should see the packet")
		}
		pkt := nis[1].Recv()
		recvTag = pkt.Tag
	})
	nis[0] = net.Attach(procs[0])
	nis[1] = net.Attach(procs[1])
	eng.Run()
	if recvTag != 7 {
		t.Errorf("tag = %d", recvTag)
	}
	// Send costs 5+15 cycles; arrival is 100 later.
	if sendDone != 20 {
		t.Errorf("send completed at %d, want 20", sendDone)
	}
	if arrive != 120 {
		t.Errorf("packet observed at %d, want 120", arrive)
	}
	if net.Injected != 1 || net.Delivered != 1 {
		t.Errorf("conservation: %d/%d", net.Injected, net.Delivered)
	}
}

func TestByteAccountingSplitsHeaderAsControl(t *testing.T) {
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := NewNetwork(eng, &cfg)
	procs := make([]*sim.Proc, 2)
	nis := make([]*NI, 2)
	procs[0] = eng.AddProc(func(p *sim.Proc) {
		nis[0].Send(Packet{Dst: 1, DataBytes: 16}) // full payload is data
		nis[0].Send(Packet{Dst: 1, DataBytes: 0})  // pure control
	})
	procs[1] = eng.AddProc(func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nis[1].WaitPacket(stats.LibComp)
			nis[1].Recv()
		}
	})
	nis[0] = net.Attach(procs[0])
	nis[1] = net.Attach(procs[1])
	eng.Run()
	a := procs[0].Acct
	if d := a.Counts(stats.PhaseDefault, stats.CntBytesData); d != 16 {
		t.Errorf("data bytes = %d, want 16", d)
	}
	// Headers: 4 (with data) + 20 (pure control).
	if c := a.Counts(stats.PhaseDefault, stats.CntBytesControl); c != 24 {
		t.Errorf("control bytes = %d, want 24", c)
	}
	if m := a.Counts(stats.PhaseDefault, stats.CntMessages); m != 2 {
		t.Errorf("messages = %d, want 2", m)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := NewNetwork(eng, &cfg)
	const n = 50
	var got []int
	procs := make([]*sim.Proc, 2)
	nis := make([]*NI, 2)
	procs[0] = eng.AddProc(func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			nis[0].Send(Packet{Dst: 1, Tag: i})
		}
	})
	procs[1] = eng.AddProc(func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			nis[1].WaitPacket(stats.LibComp)
			got = append(got, nis[1].Recv().Tag)
		}
	})
	nis[0] = net.Attach(procs[0])
	nis[1] = net.Attach(procs[1])
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestOversizedPayloadPanics(t *testing.T) {
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := NewNetwork(eng, &cfg)
	procs := []*sim.Proc{
		eng.AddProc(func(p *sim.Proc) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for oversized payload")
				}
			}()
			nis := net.nis
			nis[0].Send(Packet{Dst: 1, DataBytes: 17})
		}),
		eng.AddProc(func(p *sim.Proc) {}),
	}
	net.Attach(procs[0])
	net.Attach(procs[1])
	eng.Run()
}
