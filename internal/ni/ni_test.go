package ni

import (
	"errors"
	"testing"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestSendDeliversAfterLatency(t *testing.T) {
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := NewNetwork(eng, &cfg)
	var arrive sim.Time
	var sendDone sim.Time
	var recvTag int
	procs := make([]*sim.Proc, 2)
	nis := make([]*NI, 2)
	procs[0] = eng.AddProc(func(p *sim.Proc) {
		nis[0].Send(&Packet{Dst: 1, Tag: 7, DataBytes: 8})
		sendDone = p.Clock()
	})
	procs[1] = eng.AddProc(func(p *sim.Proc) {
		nis[1].WaitPacket(stats.LibComp)
		arrive = p.Clock()
		if !nis[1].Status() {
			t.Error("status should see the packet")
		}
		pkt := nis[1].Recv()
		recvTag = pkt.Tag
	})
	nis[0] = net.Attach(procs[0])
	nis[1] = net.Attach(procs[1])
	eng.Run()
	if recvTag != 7 {
		t.Errorf("tag = %d", recvTag)
	}
	// Send costs 5+15 cycles; arrival is 100 later.
	if sendDone != 20 {
		t.Errorf("send completed at %d, want 20", sendDone)
	}
	if arrive != 120 {
		t.Errorf("packet observed at %d, want 120", arrive)
	}
	if net.Injected != 1 || net.Delivered != 1 {
		t.Errorf("conservation: %d/%d", net.Injected, net.Delivered)
	}
}

func TestByteAccountingSplitsHeaderAsControl(t *testing.T) {
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := NewNetwork(eng, &cfg)
	procs := make([]*sim.Proc, 2)
	nis := make([]*NI, 2)
	procs[0] = eng.AddProc(func(p *sim.Proc) {
		nis[0].Send(&Packet{Dst: 1, DataBytes: 16}) // full payload is data
		nis[0].Send(&Packet{Dst: 1, DataBytes: 0})  // pure control
	})
	procs[1] = eng.AddProc(func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			nis[1].WaitPacket(stats.LibComp)
			nis[1].Recv()
		}
	})
	nis[0] = net.Attach(procs[0])
	nis[1] = net.Attach(procs[1])
	eng.Run()
	a := procs[0].Acct
	if d := a.Counts(stats.PhaseDefault, stats.CntBytesData); d != 16 {
		t.Errorf("data bytes = %d, want 16", d)
	}
	// Headers: 4 (with data) + 20 (pure control).
	if c := a.Counts(stats.PhaseDefault, stats.CntBytesControl); c != 24 {
		t.Errorf("control bytes = %d, want 24", c)
	}
	if m := a.Counts(stats.PhaseDefault, stats.CntMessages); m != 2 {
		t.Errorf("messages = %d, want 2", m)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := NewNetwork(eng, &cfg)
	const n = 50
	var got []int
	procs := make([]*sim.Proc, 2)
	nis := make([]*NI, 2)
	procs[0] = eng.AddProc(func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			nis[0].Send(&Packet{Dst: 1, Tag: i})
		}
	})
	procs[1] = eng.AddProc(func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			nis[1].WaitPacket(stats.LibComp)
			got = append(got, nis[1].Recv().Tag)
		}
	})
	nis[0] = net.Attach(procs[0])
	nis[1] = net.Attach(procs[1])
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestOversizedPayloadPanics(t *testing.T) {
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := NewNetwork(eng, &cfg)
	procs := []*sim.Proc{
		eng.AddProc(func(p *sim.Proc) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for oversized payload")
				}
			}()
			nis := net.nis
			nis[0].Send(&Packet{Dst: 1, DataBytes: 17})
		}),
		eng.AddProc(func(p *sim.Proc) {}),
	}
	net.Attach(procs[0])
	net.Attach(procs[1])
	eng.Run()
}

func TestTryRecvReturnsTypedError(t *testing.T) {
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := NewNetwork(eng, &cfg)
	procs := make([]*sim.Proc, 2)
	nis := make([]*NI, 2)
	procs[0] = eng.AddProc(func(p *sim.Proc) {
		if _, err := nis[0].TryRecv(); !errors.Is(err, ErrNoPacket) {
			t.Errorf("empty-queue TryRecv = %v, want ErrNoPacket", err)
		}
	})
	procs[1] = eng.AddProc(func(p *sim.Proc) {})
	nis[0] = net.Attach(procs[0])
	nis[1] = net.Attach(procs[1])
	eng.Run()
}

func TestFaultConservationInvariant(t *testing.T) {
	// Fire a few thousand raw packets through a lossy, duplicating network
	// and check the generalized packet-conservation identity:
	// Injected + Duplicated == Delivered + Dropped.
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := NewNetwork(eng, &cfg)
	net.Faults = faults.Uniform(99, faults.Rates{Drop: 0.2, Dup: 0.15, Delay: 0.3, MaxDelay: 700})
	const n = 3000
	received := 0
	procs := make([]*sim.Proc, 2)
	nis := make([]*NI, 2)
	procs[0] = eng.AddProc(func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			nis[0].Send(&Packet{Dst: 1, Tag: i % 7})
		}
	})
	procs[1] = eng.AddProc(func(p *sim.Proc) {
		// Drain until the sender is done and nothing more can arrive.
		for {
			if nis[1].Status() {
				nis[1].Recv()
				received++
				continue
			}
			if done, _ := procs[0].Blocked(); !done && p.Clock() > int64(n)*30+5000 {
				return
			}
			p.SpinQuantum(stats.LibComp)
			if p.Clock() > int64(n)*40+20000 {
				return
			}
		}
	})
	nis[0] = net.Attach(procs[0])
	nis[1] = net.Attach(procs[1])
	eng.Run()
	if net.Injected != n {
		t.Errorf("injected %d, want %d", net.Injected, n)
	}
	if net.Dropped == 0 || net.Duplicated == 0 {
		t.Errorf("fault plan inert: dropped %d duplicated %d", net.Dropped, net.Duplicated)
	}
	if net.Injected+net.Duplicated != net.Delivered+net.Dropped {
		t.Errorf("conservation violated: inj %d + dup %d != del %d + drop %d",
			net.Injected, net.Duplicated, net.Delivered, net.Dropped)
	}
	if int64(received) != net.Delivered {
		t.Errorf("receiver popped %d packets, network delivered %d", received, net.Delivered)
	}
}

func TestInputQueueCompactionUnderJitteredBacklog(t *testing.T) {
	// Drive the input queue through its head-shift compaction branch
	// (inqHead > 1024 with a still-half-full tail) under delayed, reordered
	// arrivals: a large backlog accumulates while the receiver sleeps, then
	// is consumed while stragglers keep arriving.
	cfg := cost.Default(2)
	eng := sim.NewEngine(cfg.NetLatency)
	net := NewNetwork(eng, &cfg)
	net.Faults = faults.Uniform(4, faults.Rates{Delay: 0.5, MaxDelay: 40000})
	const n = 4000
	var compacted bool
	var got []int
	procs := make([]*sim.Proc, 2)
	nis := make([]*NI, 2)
	procs[0] = eng.AddProc(func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			nis[0].Send(&Packet{Dst: 1, Tag: i})
		}
	})
	procs[1] = eng.AddProc(func(p *sim.Proc) {
		// Sleep until most of the stream has queued up, so draining walks
		// inqHead deep into the buffer while stragglers keep appending.
		p.SpinUntil(stats.LibComp, func() bool { return nis[1].Pending() >= n-n/8 })
		for len(got) < n {
			nis[1].WaitPacket(stats.LibComp)
			got = append(got, nis[1].Recv().Tag)
			// The compaction branch resets inqHead while the queue still
			// holds packets; observing head < pops proves it fired.
			if nis[1].inqHead == 0 && nis[1].qlen() > 0 && len(got) > 1024 {
				compacted = true
			}
		}
	})
	nis[0] = net.Attach(procs[0])
	nis[1] = net.Attach(procs[1])
	eng.Run()
	if len(got) != n {
		t.Fatalf("received %d packets, want %d", len(got), n)
	}
	// Arrival order is event-time order, not send order, under jitter; the
	// queue must deliver every tag exactly once with no corruption.
	seen := make([]bool, n)
	reordered := false
	for i, tag := range got {
		if tag < 0 || tag >= n || seen[tag] {
			t.Fatalf("corrupt or duplicated tag %d at pop %d", tag, i)
		}
		seen[tag] = true
		if tag != i {
			reordered = true
		}
	}
	if !reordered {
		t.Error("jitter plan produced no reordering; test is not exercising the path")
	}
	if !compacted {
		t.Error("compaction branch never fired; raise the backlog")
	}
	if net.Injected != n || net.Delivered != int64(n) {
		t.Errorf("conservation: injected %d delivered %d, want %d", net.Injected, net.Delivered, n)
	}
}
