// Package snapshot implements the simulator's versioned checkpoint format
// and the canonical byte encoding every subsystem uses to contribute its
// state to a checkpoint.
//
// The simulator cannot freeze target-program goroutine stacks, so resume is
// replay-based: a snapshot records the run specification, the checkpoint
// cycle, and a canonical byte image of all serializable machine state
// (engine clocks and event times, NI queues, transport windows, caches,
// directory entries, fault-RNG positions, application arrays, accounting
// tables). Resuming re-executes the run deterministically from cycle zero
// and, on reaching the checkpoint cycle, verifies that the reconstructed
// state is byte-identical to the snapshot before continuing — so any hidden
// nondeterminism (map iteration order, wall-clock leakage, unseeded
// randomness) is detected at the first divergent checkpoint instead of
// silently corrupting a resumed sweep.
//
// Everything here is deterministic: fixed little-endian widths, explicit
// lengths, no map iteration, no floats-as-text. Encoding the same logical
// state twice yields identical bytes, which the replay-equivalence harness
// relies on.
package snapshot

import "math"

// Enc is an append-only canonical encoder. All integers are fixed-width
// little-endian; floats are encoded as their IEEE-754 bit patterns; strings
// and byte slices carry a u32 length prefix. The zero value is ready to use.
type Enc struct{ b []byte }

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.b }

// Len returns the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.b) }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a fixed-width little-endian uint32.
func (e *Enc) U32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a fixed-width little-endian uint64.
func (e *Enc) U64(v uint64) {
	e.b = append(e.b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends an int64 (two's complement, little-endian).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.b = append(e.b, b...)
}

// F64s appends a length-prefixed []float64.
func (e *Enc) F64s(v []float64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// I64s appends a length-prefixed []int64.
func (e *Enc) I64s(v []int64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

// U64s appends a length-prefixed []uint64.
func (e *Enc) U64s(v []uint64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// Ints appends a length-prefixed []int.
func (e *Enc) Ints(v []int) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(int64(x))
	}
}

// Section appends a named, length-prefixed sub-encoding: subsystem encoders
// use it so a missing or reordered contribution changes the bytes loudly
// instead of silently shifting later fields.
func (e *Enc) Section(name string, fill func(*Enc)) {
	e.Str(name)
	var sub Enc
	fill(&sub)
	e.Blob(sub.Bytes())
}

// Hash returns the FNV-1a 64-bit hash of b, the digest used for snapshot
// state verification and run fingerprints.
func Hash(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// Dec decodes buffers produced by Enc. Reads past the end set Err (a
// *TruncatedError) and return zero values; callers check Err once at the
// end, which keeps fuzzed decoding panic-free.
type Dec struct {
	b   []byte
	off int

	// Err is the first decode error encountered, or nil.
	Err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

func (d *Dec) fail(what string) {
	if d.Err == nil {
		d.Err = &TruncatedError{What: what, Offset: d.off, Size: len(d.b)}
	}
}

func (d *Dec) take(n int, what string) []byte {
	if d.Err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail(what)
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := int(d.U32())
	if n > d.Remaining() {
		d.fail("string body")
		return ""
	}
	return string(d.take(n, "string body"))
}

// Blob reads a length-prefixed byte slice (copied out of the buffer).
func (d *Dec) Blob() []byte {
	n := int(d.U32())
	if n > d.Remaining() {
		d.fail("blob body")
		return nil
	}
	b := d.take(n, "blob body")
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
