package snapshot

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/vfs"
)

// Version is the current snapshot format version. Decoders reject any other
// version with a *VersionError rather than misinterpreting fields.
const Version uint32 = 1

// magic identifies a snapshot file. Eight bytes so truncation inside the
// magic itself is distinguishable from a wrong file type.
const magic = "WWTSNAP\x00"

// Snapshot is one checkpoint of a simulated run.
type Snapshot struct {
	// Spec is the serialized run specification (internal/runner.Spec as
	// JSON): everything needed to rebuild the identical machine and program.
	Spec []byte

	// Cycle is the virtual time at which the state was captured — always a
	// quantum boundary with no processor executing.
	Cycle int64

	// StateHash is Hash(State), duplicated in the header so resume can
	// verify replay cheaply and report a divergence without shipping the
	// full image around.
	StateHash uint64

	// State is the canonical machine-state image at Cycle: engine, network,
	// transports, caches, directory, fault-RNG positions, application
	// arrays. See the package comment for why this is verified, not
	// restored.
	State []byte

	// Stats is the canonical accounting image at Cycle (every processor's
	// full per-phase cycle and count tables), so a resumed run's mid-flight
	// accounting can be compared byte-for-byte too.
	Stats []byte
}

// FormatError reports input that is not a snapshot at all (bad magic,
// trailing garbage after the checksum).
type FormatError struct{ Reason string }

func (e *FormatError) Error() string { return "snapshot: not a snapshot file: " + e.Reason }

// VersionError reports a snapshot written by an incompatible format version.
type VersionError struct{ Got, Want uint32 }

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: format version %d (this build reads version %d)", e.Got, e.Want)
}

// TruncatedError reports input that ended before a field could be read.
type TruncatedError struct {
	What   string // the field being read
	Offset int    // where the read started
	Size   int    // total input size
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("snapshot: truncated input: reading %s at offset %d of %d bytes",
		e.What, e.Offset, e.Size)
}

// ChecksumError reports a snapshot whose trailing checksum does not match
// its contents — bit rot or a partially written file.
type ChecksumError struct{ Got, Want uint64 }

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("snapshot: checksum mismatch: file says %#x, contents hash to %#x",
		e.Want, e.Got)
}

// Encode serializes s. The layout is: magic, version, cycle, state hash,
// then length-prefixed spec/state/stats sections, then an FNV-1a checksum
// of every preceding byte. Encoding is canonical: equal snapshots produce
// equal bytes.
func Encode(s *Snapshot) []byte {
	var e Enc
	e.b = append(e.b, magic...)
	e.U32(Version)
	e.I64(s.Cycle)
	e.U64(s.StateHash)
	e.Blob(s.Spec)
	e.Blob(s.State)
	e.Blob(s.Stats)
	e.U64(Hash(e.Bytes()))
	return e.Bytes()
}

// Decode parses a snapshot, returning a typed error on bad magic, version
// mismatch, truncation, checksum failure, or trailing garbage. It never
// panics on arbitrary input (the fuzz target enforces this).
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < len(magic) {
		return nil, &TruncatedError{What: "magic", Offset: 0, Size: len(b)}
	}
	if string(b[:len(magic)]) != magic {
		return nil, &FormatError{Reason: "bad magic"}
	}
	d := NewDec(b)
	d.take(len(magic), "magic")
	v := d.U32()
	if d.Err != nil {
		return nil, d.Err
	}
	if v != Version {
		return nil, &VersionError{Got: v, Want: Version}
	}
	s := &Snapshot{}
	s.Cycle = d.I64()
	s.StateHash = d.U64()
	s.Spec = d.Blob()
	s.State = d.Blob()
	s.Stats = d.Blob()
	body := d.off
	sum := d.U64()
	if d.Err != nil {
		return nil, d.Err
	}
	if d.Remaining() != 0 {
		return nil, &FormatError{Reason: fmt.Sprintf("%d trailing bytes", d.Remaining())}
	}
	if got := Hash(b[:body]); got != sum {
		return nil, &ChecksumError{Got: got, Want: sum}
	}
	if h := Hash(s.State); h != s.StateHash {
		return nil, &FormatError{Reason: fmt.Sprintf(
			"state hash field %#x does not match state section (%#x)", s.StateHash, h)}
	}
	return s, nil
}

// AtomicWriteFile writes data to path via a temporary file in the same
// directory plus a rename, so readers only ever observe the old contents or
// the complete new contents — never a torn file. Every durable artifact in
// this repo (checkpoints, cached results, sweep results files) goes through
// it.
func AtomicWriteFile(path string, data []byte) error {
	return AtomicWriteFileFS(vfs.OS{}, path, data)
}

// AtomicWriteFileFS is AtomicWriteFile over an explicit filesystem, the
// form the serve layer uses to run its durability I/O under fault
// injection. The sequence is the full crash-safe dance: write the temp
// file, fsync it (so the rename never outlives the data), rename into
// place, then fsync the parent directory (so the rename itself survives a
// power-loss-style crash).
func AtomicWriteFileFS(fsys vfs.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// WriteFile atomically writes the encoded snapshot to path, so a run killed
// mid-checkpoint never leaves a torn file that a later resume would trip
// over.
func WriteFile(path string, s *Snapshot) error {
	return AtomicWriteFile(path, Encode(s))
}

// WriteFileFS is WriteFile over an explicit filesystem.
func WriteFileFS(fsys vfs.FS, path string, s *Snapshot) error {
	return AtomicWriteFileFS(fsys, path, Encode(s))
}

// ReadFile reads and decodes a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}
