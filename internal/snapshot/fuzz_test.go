package snapshot

import (
	"bytes"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the snapshot decoder: it must
// never panic, and anything it accepts must re-encode byte-identically
// (the decoder admits only canonical images).
func FuzzDecode(f *testing.F) {
	r := xorshift(1)
	valid := Encode(randomSnapshot(&r))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// Oversized section length claim.
	huge := append([]byte(nil), valid[:16]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0x7F)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(Encode(s), data) {
			t.Fatalf("accepted non-canonical input: %d bytes", len(data))
		}
	})
}
