package snapshot

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// xorshift is a tiny local generator so the property tests are seeded and
// reproducible without importing the simulator (which imports this package).
type xorshift uint64

func (x *xorshift) next() uint64 {
	s := uint64(*x)
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	*x = xorshift(s)
	return s * 0x2545F4914F6CDD1D
}

// randomState builds a state blob shaped like a real machine image: an
// engine section (clocks, event times), per-node cache sections (tag/state
// lines, an RNG cursor), and a directory section (sorted blocks with sharer
// words and history strings). The shapes match what the machine encoders
// emit, so the round-trip property covers realistic payloads.
func randomState(r *xorshift) []byte {
	var e Enc
	e.Section("engine", func(e *Enc) {
		e.I64(int64(r.next() % 1e9))
		e.U64(r.next())
		n := int(r.next() % 64)
		e.U32(uint32(n))
		for i := 0; i < n; i++ {
			e.I64(int64(r.next() % 1e9))
			e.U64(r.next())
		}
	})
	nodes := int(r.next()%8) + 1
	for i := 0; i < nodes; i++ {
		e.Section("cache", func(e *Enc) {
			lines := int(r.next() % 256)
			e.U32(uint32(lines))
			for j := 0; j < lines; j++ {
				e.U64(r.next())
				e.U8(uint8(r.next() % 3))
			}
			e.U64(r.next()) // replacement RNG cursor
		})
	}
	e.Section("directory", func(e *Enc) {
		entries := int(r.next() % 128)
		e.U32(uint32(entries))
		for j := 0; j < entries; j++ {
			e.U64(r.next())             // block
			e.U8(uint8(r.next() % 3))   // dirState
			e.I64(int64(r.next() % 32)) // owner
			e.U64s([]uint64{r.next()})  // sharer words
			e.Bool(r.next()%2 == 0)     // busy
			e.Str("@1234 grant GETX to 3 (data=true)")
		}
	})
	return e.Bytes()
}

func randomSnapshot(r *xorshift) *Snapshot {
	state := randomState(r)
	var stats Enc
	procs := int(r.next()%16) + 1
	stats.U32(uint32(procs))
	for i := 0; i < procs; i++ {
		stats.Section("acct", func(e *Enc) {
			e.I64s([]int64{int64(r.next() % 1e12), int64(r.next() % 1e12)})
		})
	}
	return &Snapshot{
		Spec:      []byte(`{"App":"em3d","Machine":"sm","Procs":8}`),
		Cycle:     int64(r.next() % 1e9),
		StateHash: Hash(state),
		State:     state,
		Stats:     stats.Bytes(),
	}
}

// TestRoundTripByteStable is the property test: for many randomized
// engine/cache/directory states, encode→decode→encode is byte-identical.
func TestRoundTripByteStable(t *testing.T) {
	r := xorshift(42)
	for i := 0; i < 200; i++ {
		s := randomSnapshot(&r)
		b1 := Encode(s)
		got, err := Decode(b1)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		b2 := Encode(got)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("iter %d: encode∘decode∘encode not byte-stable", i)
		}
		if got.Cycle != s.Cycle || got.StateHash != s.StateHash ||
			!bytes.Equal(got.State, s.State) || !bytes.Equal(got.Stats, s.Stats) ||
			!bytes.Equal(got.Spec, s.Spec) {
			t.Fatalf("iter %d: decoded snapshot differs from original", i)
		}
	}
}

// TestDecodeRejectsTruncation: every strict prefix of a valid snapshot must
// decode to a typed error (truncation or checksum), never success or panic.
func TestDecodeRejectsTruncation(t *testing.T) {
	r := xorshift(7)
	full := Encode(randomSnapshot(&r))
	for n := 0; n < len(full); n++ {
		_, err := Decode(full[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(full))
		}
		var te *TruncatedError
		var fe *FormatError
		var ce *ChecksumError
		if !errors.As(err, &te) && !errors.As(err, &fe) && !errors.As(err, &ce) {
			t.Fatalf("prefix %d: untyped error %T: %v", n, err, err)
		}
	}
}

func TestDecodeRejectsVersionMismatch(t *testing.T) {
	r := xorshift(9)
	b := Encode(randomSnapshot(&r))
	b[len(magic)] ^= 0xFF // bump the version field
	_, err := Decode(b)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want VersionError", err)
	}
	if ve.Got == Version || ve.Want != Version {
		t.Errorf("VersionError fields: %+v", ve)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	r := xorshift(11)
	b := Encode(randomSnapshot(&r))
	// Flip a byte in the middle of the state section: the trailing checksum
	// must catch it.
	b[len(b)/2] ^= 0x01
	_, err := Decode(b)
	var ce *ChecksumError
	var fe *FormatError
	if !errors.As(err, &ce) && !errors.As(err, &fe) {
		t.Fatalf("err = %v, want ChecksumError or FormatError", err)
	}

	// Bad magic.
	b2 := append([]byte(nil), b...)
	b2[0] = 'X'
	if _, err := Decode(b2); !errors.As(err, &fe) {
		t.Fatalf("bad magic: err = %v, want FormatError", err)
	}

	// Trailing garbage.
	b3 := append(Encode(randomSnapshot(&r)), 0xEE)
	if _, err := Decode(b3); !errors.As(err, &fe) {
		t.Fatalf("trailing garbage: err = %v, want FormatError", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	r := xorshift(21)
	s := randomSnapshot(&r)
	path := filepath.Join(t.TempDir(), "ckpt-000123.wws")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(got), Encode(s)) {
		t.Error("file round trip not byte-stable")
	}
}

// TestSectionFraming: a named section's bytes change loudly when the name
// or content changes (encoders rely on this to catch skew).
func TestSectionFraming(t *testing.T) {
	var a, b, c Enc
	a.Section("cache", func(e *Enc) { e.U64(1) })
	b.Section("cache", func(e *Enc) { e.U64(2) })
	c.Section("tlb", func(e *Enc) { e.U64(1) })
	if bytes.Equal(a.Bytes(), b.Bytes()) || bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("section framing does not separate name/content changes")
	}
	d := NewDec(a.Bytes())
	if name := d.Str(); name != "cache" {
		t.Errorf("section name = %q", name)
	}
	body := d.Blob()
	if d.Err != nil || len(body) != 8 {
		t.Errorf("section body: len=%d err=%v", len(body), d.Err)
	}
}
