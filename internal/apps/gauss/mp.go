package gauss

import (
	"math"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/snapshot"
)

// RunMP runs Gauss-MP: the paper's message-passing Gaussian elimination
// adapted from an iPSC code, with reductions and broadcasts over the given
// software tree shape (the paper settles on lop-sided trees after trying
// flat and binary).
func RunMP(cfg cost.Config, shape cmmd.Shape, par Params) *Output {
	out := &Output{}
	n := par.N
	rpp := rowsPerProc(n, cfg.Procs)
	width := n + 1 // augmented with the right-hand side

	out.Res = machine.RunMP(cfg, shape, func(nd *machine.MPNode) {
		me := nd.ID
		lo := me * rpp
		m := nd.Mem

		// Private storage: my rows (augmented), the pivot-row buffer, the
		// solution vector, and the retirement mask.
		A := nd.AllocFSized(rpp*width, elemBytes)
		prow := nd.AllocFSized(width, elemBytes)
		x := nd.AllocFSized(n, elemBytes)
		mask := nd.AllocI(rpp) // step at which the row retired, or -1
		nd.OnState(func(enc *snapshot.Enc) {
			enc.F64s(A.V)
			enc.F64s(prow.V)
			enc.F64s(x.V)
			enc.I64s(mask.V)
		})

		// Fill my rows with the deterministic generator.
		for r := 0; r < rpp; r++ {
			row := genRow(par.Seed, lo+r, n)
			copy(A.V[r*width:(r+1)*width], row)
			A.WriteRange(m, r*width, (r+1)*width)
			nd.Compute(int64(cFill * width))
			mask.Set(m, r, -1)
		}
		nd.Barrier()

		pivotOfStep := make([]int, n) // global pivot row per column, learned via bcast

		// Forward elimination.
		for k := 0; k < n; k++ {
			// Local pivot candidate: max |A[r][k]| over unretired rows.
			best, bestRow := 0.0, int64(-1)
			for r := 0; r < rpp; r++ {
				if mask.Get(m, r) >= 0 {
					continue
				}
				v := A.Get(m, r*width+k)
				if math.Abs(v) > math.Abs(best) || bestRow < 0 {
					best, bestRow = v, int64(lo+r)
				}
				nd.Compute(cScan)
			}
			pv, pidx := nd.Comm.Reduce(0, best, bestRow, cmmd.OpMaxAbs)
			pv, pidx = nd.Comm.BcastPair(0, pv, pidx)
			_ = pv
			gr := int(pidx)
			pivotOfStep[k] = gr
			owner := gr / rpp
			nd.Compute(cPivot)

			if me == owner {
				// Copy the pivot row into the broadcast buffer.
				r := gr - lo
				copy(prow.V[k:], A.V[r*width+k:(r+1)*width])
				A.ReadRange(m, r*width+k, (r+1)*width)
				prow.WriteRange(m, k, width)
				nd.Compute(int64(3 * (width - k)))
				mask.Set(m, r, int64(k))
			}
			nd.Comm.BcastVecF(owner, &prow, k, width)

			// Eliminate column k from my unretired rows.
			piv := prow.V[k]
			for r := 0; r < rpp; r++ {
				if mask.Get(m, r) >= 0 {
					continue
				}
				f := A.Get(m, r*width+k) / piv
				nd.Compute(cDiv + cRow)
				prow.ReadRange(m, k, width)
				A.ReadRange(m, r*width+k, (r+1)*width)
				for j := k; j < width; j++ {
					A.V[r*width+j] -= f * prow.V[j]
				}
				A.WriteRange(m, r*width+k, (r+1)*width)
				nd.Compute(int64(cElim * (width - k)))
			}
		}

		// Backward substitution: the unknown solved at step k is owned by
		// the processor holding that step's pivot row; it broadcasts the
		// value as it becomes known.
		for k := n - 1; k >= 0; k-- {
			gr := pivotOfStep[k]
			owner := gr / rpp
			var xk float64
			if me == owner {
				r := gr - lo
				xk = A.Get(m, r*width+n) / A.Get(m, r*width+k)
				nd.Compute(cDiv)
			}
			xk = nd.Comm.Bcast(owner, xk)
			x.Set(m, k, xk)
			// Fold xk into the right-hand sides of my still-unsolved rows.
			for r := 0; r < rpp; r++ {
				if int(mask.Get(m, r)) >= k {
					continue
				}
				rhs := A.Get(m, r*width+n) - A.Get(m, r*width+k)*xk
				A.Set(m, r*width+n, rhs)
				nd.Compute(cBack)
			}
		}
		nd.Barrier()
		if me == 0 {
			out.validate(append([]float64(nil), x.V...))
		}
	})
	return out
}

var _ = memsim.WordBytes
