package gauss

import (
	"testing"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/stats"
)

func TestGenRowDeterministicAndConsistent(t *testing.T) {
	a := genRow(1, 5, 32)
	b := genRow(1, 5, 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("genRow not deterministic at %d", i)
		}
	}
	// The right-hand side equals the row dotted with the known solution.
	rhs := 0.0
	for j := 0; j < 32; j++ {
		rhs += a[j] * trueX(j)
	}
	if diff := rhs - a[32]; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("rhs mismatch: %v", diff)
	}
}

func TestGaussMPSolves(t *testing.T) {
	out := RunMP(cost.Default(4), cmmd.LopSided, Params{N: 64, Seed: 11})
	if out.MaxErr > 1e-9 {
		t.Errorf("MP solution error %v", out.MaxErr)
	}
	if len(out.X) != 64 {
		t.Fatalf("no solution gathered")
	}
}

func TestGaussSMSolves(t *testing.T) {
	out := RunSM(cost.Default(4), Params{N: 64, Seed: 11})
	if out.MaxErr > 1e-9 {
		t.Errorf("SM solution error %v", out.MaxErr)
	}
}

func TestGaussMPandSMAgree(t *testing.T) {
	mp := RunMP(cost.Default(4), cmmd.LopSided, Params{N: 32, Seed: 3})
	sm := RunSM(cost.Default(4), Params{N: 32, Seed: 3})
	for i := range mp.X {
		d := mp.X[i] - sm.X[i]
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("solutions diverge at %d: %v vs %v", i, mp.X[i], sm.X[i])
		}
	}
}

func TestGaussMPCommunicationShape(t *testing.T) {
	out := RunMP(cost.Default(8), cmmd.LopSided, Params{N: 64, Seed: 5})
	s := out.Res.Summary
	// Communication-intensive: substantial library time relative to
	// computation, and active messages flowing for reductions/broadcasts.
	if s.CountsAll(stats.CntActiveMessages) == 0 {
		t.Error("no active messages")
	}
	if s.CountsAll(stats.CntChannelWrites) == 0 {
		t.Error("no channel writes (pivot-row broadcasts)")
	}
	if s.CyclesAll(stats.LibComp) == 0 {
		t.Error("no library computation")
	}
}

func TestGaussSMCategoryShape(t *testing.T) {
	out := RunSM(cost.Default(8), Params{N: 64, Seed: 5})
	s := out.Res.Summary
	if s.CyclesAll(stats.ReductionWait) == 0 {
		t.Error("no reduction time")
	}
	if s.CyclesAll(stats.BarrierWait) == 0 {
		t.Error("no barrier time")
	}
	if s.CountsAll(stats.CntSharedMissRemote) == 0 {
		t.Error("no remote shared misses")
	}
	// Shared misses should dominate private misses by far (paper Table 11:
	// 92 private vs 23,590 shared).
	priv := s.CountsAll(stats.CntPrivateMisses)
	shared := s.CountsAll(stats.CntSharedMissLocal) + s.CountsAll(stats.CntSharedMissRemote)
	if shared < 10*priv {
		t.Errorf("shared misses (%v) should dwarf private (%v)", shared, priv)
	}
}

func TestGaussDeterministicCycles(t *testing.T) {
	a := RunMP(cost.Default(4), cmmd.Binary, Params{N: 32, Seed: 9})
	b := RunMP(cost.Default(4), cmmd.Binary, Params{N: 32, Seed: 9})
	if a.Res.Elapsed != b.Res.Elapsed {
		t.Errorf("MP elapsed differs: %d vs %d", a.Res.Elapsed, b.Res.Elapsed)
	}
	c := RunSM(cost.Default(4), Params{N: 32, Seed: 9})
	d := RunSM(cost.Default(4), Params{N: 32, Seed: 9})
	if c.Res.Elapsed != d.Res.Elapsed {
		t.Errorf("SM elapsed differs: %d vs %d", c.Res.Elapsed, d.Res.Elapsed)
	}
}
