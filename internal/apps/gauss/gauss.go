// Package gauss implements the paper's Gaussian-elimination benchmark
// (§5.2) in both message-passing and shared-memory forms.
//
// The program solves a dense linear system with partial pivoting: a forward
// elimination phase (pivot selection by reduction, pivot announcement and
// pivot-row distribution by broadcast, then local row updates) followed by
// backward substitution (each solved unknown broadcast to all). Rows are
// distributed blockwise and never redistributed; a local mask tracks retired
// rows, exactly as the paper describes.
//
// The message-passing version uses the software reduction/broadcast trees
// whose tuning the paper recounts (flat → binary → lop-sided); the
// shared-memory version uses MCS-style reductions and broadcasts a value "by
// letting all processors read it" after a barrier.
package gauss

import (
	"math"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Params configures a Gauss run.
type Params struct {
	// N is the number of variables (the paper uses 512).
	N int
	// Seed drives the deterministic matrix generator.
	Seed uint64
}

// elemBytes is the simulated matrix element size: the Gauss codes work in
// single precision (the paper's per-processor miss counts and transmitted
// data bytes match 4-byte, not 8-byte, rows).
const elemBytes = 4

// Calibrated per-operation computation costs (cycles). One set of constants
// is shared by the MP and SM versions, so the comparison between them —
// the paper's point — is independent of the absolute calibration. The
// values target the paper's ~40M computation cycles per processor at
// N=512 on 32 nodes (Tables 8 and 9).
const (
	cFill  = 14  // generate + store one matrix element
	cScan  = 16  // examine one candidate pivot element (mask check, abs, cmp)
	cElim  = 28  // one multiply-subtract row-update element
	cDiv   = 40  // one division (pivot factor, solved unknown)
	cRow   = 90  // per-row loop overhead in elimination
	cBack  = 22  // one backward-substitution update element
	cPivot = 120 // bookkeeping per pivot step
)

// Output carries the simulation result plus numerical validation data.
type Output struct {
	Res *machine.Result
	// X is the computed solution (gathered from the simulated program).
	X []float64
	// MaxErr is the maximum |x[i] - xTrue[i]| against the generated truth.
	MaxErr float64
}

// trueX returns the known solution the right-hand side is built from.
func trueX(i int) float64 { return 1 + float64(i%7)*0.5 }

// genRow deterministically generates global row i of the augmented matrix
// (N coefficients plus the right-hand side) for an N-variable system. The
// entries are uniform random, as in the paper ("each processor fills its
// rows with random numbers"); partial pivoting provides the numerical
// stability, and — importantly for load balance — makes pivot rows retire
// uniformly across processors rather than in block order.
func genRow(seed uint64, i, n int) []float64 {
	rng := sim.NewRNG(seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15)
	row := make([]float64, n+1)
	for j := 0; j < n; j++ {
		row[j] = rng.Float64() - 0.5
	}
	rhs := 0.0
	for j := 0; j < n; j++ {
		rhs += row[j] * trueX(j)
	}
	row[n] = rhs
	return row
}

func (o *Output) validate(x []float64) {
	o.X = x
	for i, v := range x {
		if e := math.Abs(v - trueX(i)); e > o.MaxErr {
			o.MaxErr = e
		}
	}
}

func rowsPerProc(n, procs int) int {
	if n%procs != 0 {
		panic("gauss: N must be divisible by the processor count")
	}
	return n / procs
}
