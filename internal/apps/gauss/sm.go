package gauss

import (
	"math"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
	"repro/internal/snapshot"
)

// RunSM runs Gauss-SM: the shared-memory version the authors wrote from the
// message-passing code. Pivot selection uses an MCS-style software
// reduction; broadcasts happen "by letting all processors read it" — the
// writer publishes into shared memory, everyone waits at a barrier, then
// reads (incurring the directory contention the paper measures).
func RunSM(cfg cost.Config, par Params) *Output {
	out := &Output{}
	n := par.N
	rpp := rowsPerProc(n, cfg.Procs)
	width := n + 1

	// Shared structures, established by node 0 before Create.
	var (
		A     memsim.FVec // the whole augmented matrix, rows blockwise
		x     memsim.FVec // the solution vector
		pvVal memsim.FVec // published pivot value
		pvIdx memsim.IVec // published pivot global row
		red   *parmacs.Reduction
	)

	out.Res = machine.RunSM(cfg, parmacs.RoundRobin, func(nd *machine.SMNode) {
		me := nd.ID
		lo := me * rpp
		m := nd.Mem

		if me == 0 {
			A = nd.RT.GMallocFSized(0, n*width, elemBytes)
			x = nd.RT.GMallocFSized(0, n, elemBytes)
			pvVal = nd.RT.GMallocF(0, 1)
			pvIdx = nd.RT.GMallocI(0, 1)
			red = parmacs.NewReduction(nd.RT)
			nd.RT.Create(nd.P)
		} else {
			nd.RT.WaitCreate(nd.P)
		}
		nd.Barrier()

		// Each processor fills its own rows of the shared matrix.
		mask := nd.AllocI(rpp) // private retirement mask, as in the paper
		nd.OnState(func(enc *snapshot.Enc) {
			if me == 0 { // shared vectors, encoded once
				enc.F64s(A.V)
				enc.F64s(x.V)
				enc.F64s(pvVal.V)
				enc.I64s(pvIdx.V)
			}
			enc.I64s(mask.V)
		})
		for r := 0; r < rpp; r++ {
			row := genRow(par.Seed, lo+r, n)
			base := (lo + r) * width
			copy(A.V[base:base+width], row)
			A.WriteRange(m, base, base+width)
			nd.Compute(int64(cFill * width))
			mask.Set(m, r, -1)
		}
		nd.Barrier()

		pivotOfStep := make([]int, n)

		// Forward elimination.
		for k := 0; k < n; k++ {
			best, bestRow := 0.0, int64(-1)
			for r := 0; r < rpp; r++ {
				if mask.Get(m, r) >= 0 {
					continue
				}
				v := A.Get(m, (lo+r)*width+k)
				if math.Abs(v) > math.Abs(best) || bestRow < 0 {
					best, bestRow = v, int64(lo+r)
				}
				nd.Compute(cScan)
			}
			rv, ri := red.Reduce(m, best, bestRow, parmacs.OpMaxAbs, parmacs.GaussCats)
			if me == 0 {
				pvVal.Set(m, 0, rv)
				pvIdx.Set(m, 0, ri)
			}
			// Everyone waits until the write completes, then reads the
			// published pivot (hardware-speed broadcast via invalidation,
			// with read requests contending at the directory).
			nd.Barrier()
			pidx := pvIdx.Get(m, 0)
			_ = pvVal.Get(m, 0)
			gr := int(pidx)
			pivotOfStep[k] = gr
			owner := gr / rpp
			nd.Compute(cPivot)
			if me == owner {
				mask.Set(m, gr-lo, int64(k))
			}

			// Eliminate, reading the pivot row directly from shared memory.
			pbase := gr * width
			piv := A.V[pbase+k]
			for r := 0; r < rpp; r++ {
				if mask.Get(m, r) >= 0 {
					continue
				}
				base := (lo + r) * width
				f := A.Get(m, base+k) / piv
				nd.Compute(cDiv + cRow)
				A.ReadRange(m, pbase+k, pbase+width) // the pivot row
				A.ReadRange(m, base+k, base+width)   // my row
				for j := k; j < width; j++ {
					A.V[base+j] -= f * A.V[pbase+j]
				}
				A.WriteRange(m, base+k, base+width)
				nd.Compute(int64(cElim * (width - k)))
			}
			// No trailing barrier: the next column's reduction cannot
			// complete until every processor has contributed, i.e. finished
			// this column's elimination — the reduction itself is the
			// synchronization.
		}

		// Backward substitution: owners publish unknowns into the shared x
		// vector; a barrier orders each write before the reads.
		for k := n - 1; k >= 0; k-- {
			gr := pivotOfStep[k]
			owner := gr / rpp
			if me == owner {
				base := gr * width
				xk := A.Get(m, base+n) / A.Get(m, base+k)
				nd.Compute(cDiv)
				x.Set(m, k, xk)
			}
			nd.Barrier()
			xk := x.Get(m, k)
			for r := 0; r < rpp; r++ {
				if int(mask.Get(m, r)) >= k {
					continue
				}
				base := (lo + r) * width
				rhs := A.Get(m, base+n) - A.Get(m, base+k)*xk
				A.Set(m, base+n, rhs)
				nd.Compute(cBack)
			}
		}
		nd.Barrier()
		if me == 0 {
			xs := make([]float64, n)
			x.ReadRange(m, 0, n)
			copy(xs, x.V)
			out.validate(xs)
		}
	})
	return out
}
