package em3d

import (
	"math"
	"testing"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/parmacs"
	"repro/internal/stats"
)

func smallParams() Params {
	return Params{NodesPer: 60, Degree: 5, RemotePct: 20, Iters: 8, Seed: 3}
}

func TestGraphGeneratorProperties(t *testing.T) {
	g := genGraph(smallParams(), 4)
	remote := 0
	total := 0
	for p := 0; p < 4; p++ {
		for _, lists := range [][]edge{g.eIn[p], g.hIn[p]} {
			for _, ed := range lists {
				total++
				sp := int(ed.srcProc)
				if sp != p {
					remote++
					if sp != (p+1)%4 && sp != (p+3)%4 {
						t.Fatalf("remote edge to non-neighbor %d from %d", sp, p)
					}
				}
				if ed.srcIdx < 0 || int(ed.srcIdx) >= 60 {
					t.Fatalf("source index out of range: %d", ed.srcIdx)
				}
			}
		}
	}
	frac := float64(remote) / float64(total)
	if frac < 0.12 || frac > 0.28 {
		t.Errorf("remote fraction %.2f, want near 0.20", frac)
	}
}

func TestEM3DMPMatchesReference(t *testing.T) {
	out := RunMP(cost.Default(4), cmmd.LopSided, smallParams())
	if out.MaxErr > 1e-12 {
		t.Errorf("MP deviates from reference by %v", out.MaxErr)
	}
}

func TestEM3DSMMatchesReference(t *testing.T) {
	out := RunSM(cost.Default(4), parmacs.RoundRobin, smallParams())
	if out.MaxErr > 1e-12 {
		t.Errorf("SM deviates from reference by %v", out.MaxErr)
	}
}

func TestEM3DSMLocalPolicyMatchesReference(t *testing.T) {
	out := RunSM(cost.Default(4), parmacs.Local, smallParams())
	if out.MaxErr > 1e-12 {
		t.Errorf("SM/local deviates from reference by %v", out.MaxErr)
	}
}

func TestEM3DMPandSMAgree(t *testing.T) {
	mp := RunMP(cost.Default(4), cmmd.LopSided, smallParams())
	sm := RunSM(cost.Default(4), parmacs.RoundRobin, smallParams())
	for p := range mp.E {
		for i := range mp.E[p] {
			if d := math.Abs(mp.E[p][i] - sm.E[p][i]); d > 1e-12 {
				t.Fatalf("E[%d][%d] differs by %v", p, i, d)
			}
		}
	}
}

func TestEM3DMPChannelWriteCount(t *testing.T) {
	// Per processor: 2 neighbors x 2 half-steps x iters, plus the initial
	// H shipment and the init-phase edge-info sends.
	par := smallParams()
	out := RunMP(cost.Default(4), cmmd.LopSided, par)
	s := out.Res.Summary
	cwMain := s.Counts(PhaseMain, stats.CntChannelWrites)
	want := float64(2*2*par.Iters - 2) // last H send skipped; initial send in init phase
	if math.Abs(cwMain-want) > 4 {
		t.Errorf("main-loop channel writes per proc = %v, want about %v", cwMain, want)
	}
}

func TestEM3DPhaseSplit(t *testing.T) {
	out := RunSM(cost.Default(4), parmacs.RoundRobin, smallParams())
	s := out.Res.Summary
	if s.NumPhases() < 2 {
		t.Fatal("expected init and main phases")
	}
	if s.Cycles(PhaseInit, stats.LockWait) == 0 {
		t.Error("SM initialization should spend time in locks")
	}
	if s.Cycles(PhaseMain, stats.LockWait) != 0 {
		t.Error("SM main loop must not use locks")
	}
	if s.Cycles(PhaseMain, stats.BarrierWait) == 0 {
		t.Error("SM main loop should use barriers")
	}
}

func TestEM3DSMProducerConsumerMisses(t *testing.T) {
	// The invalidation protocol makes every remote value a fresh miss each
	// iteration — shared misses in the main loop should vastly outnumber
	// private ones (paper Table 15: 109 private vs 330,044 shared).
	out := RunSM(cost.Default(4), parmacs.RoundRobin, smallParams())
	s := out.Res.Summary
	shared := s.Counts(PhaseMain, stats.CntSharedMissLocal) +
		s.Counts(PhaseMain, stats.CntSharedMissRemote)
	priv := s.Counts(PhaseMain, stats.CntPrivateMisses)
	if shared < 20*priv || shared == 0 {
		t.Errorf("shared misses (%v) should dwarf private (%v)", shared, priv)
	}
}

func TestEM3DMPFasterThanSM(t *testing.T) {
	// The paper's headline: EM3D-MP runs about twice as fast as EM3D-SM.
	par := Params{NodesPer: 200, Degree: 8, RemotePct: 20, Iters: 10, Seed: 2}
	mp := RunMP(cost.Default(8), cmmd.LopSided, par)
	sm := RunSM(cost.Default(8), parmacs.RoundRobin, par)
	if mp.Res.Elapsed >= sm.Res.Elapsed {
		t.Errorf("MP (%d) should beat SM (%d)", mp.Res.Elapsed, sm.Res.Elapsed)
	}
}

func TestEM3DDeterminism(t *testing.T) {
	a := RunMP(cost.Default(4), cmmd.LopSided, smallParams())
	b := RunMP(cost.Default(4), cmmd.LopSided, smallParams())
	if a.Res.Elapsed != b.Res.Elapsed {
		t.Errorf("MP nondeterministic: %d vs %d", a.Res.Elapsed, b.Res.Elapsed)
	}
	c := RunSM(cost.Default(4), parmacs.RoundRobin, smallParams())
	d := RunSM(cost.Default(4), parmacs.RoundRobin, smallParams())
	if c.Res.Elapsed != d.Res.Elapsed {
		t.Errorf("SM nondeterministic: %d vs %d", c.Res.Elapsed, d.Res.Elapsed)
	}
}

func TestEM3DSMFlushVariantCorrectAndFewerInvalidations(t *testing.T) {
	par := smallParams()
	base := RunSM(cost.Default(4), parmacs.RoundRobin, par)
	flush := RunSMFlush(cost.Default(4), parmacs.RoundRobin, par)
	if flush.MaxErr > 1e-12 {
		t.Errorf("flush variant deviates from reference by %v", flush.MaxErr)
	}
	// Flushing removes the consumers from the copyset, so the producer's
	// upgrades find no sharers to invalidate: protocol control traffic
	// (invalidations + acknowledgements) drops.
	bc := base.Res.Summary.Counts(PhaseMain, stats.CntBytesControl)
	fc := flush.Res.Summary.Counts(PhaseMain, stats.CntBytesControl)
	if fc >= bc {
		t.Errorf("flush variant control bytes %v, want fewer than base %v", fc, bc)
	}
}

func TestEM3DScalesAcrossProcessorCounts(t *testing.T) {
	// The simulators support 1-128 processors (paper §4); verify the same
	// program runs correctly at several sizes and that per-processor work
	// shrinks as processors grow.
	par := Params{NodesPer: 64, Degree: 4, RemotePct: 20, Iters: 4, Seed: 9}
	var prevComp float64
	for _, procs := range []int{2, 4, 8, 16} {
		out := RunMP(cost.Default(procs), cmmd.LopSided, par)
		if out.MaxErr > 1e-12 {
			t.Fatalf("procs=%d: deviates by %v", procs, out.MaxErr)
		}
		comp := out.Res.Summary.CyclesAll(stats.Comp)
		if prevComp > 0 && comp > prevComp*1.5 {
			t.Errorf("procs=%d: per-proc computation grew: %v -> %v", procs, prevComp, comp)
		}
		prevComp = comp
	}
}
