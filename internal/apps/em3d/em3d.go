// Package em3d implements the paper's EM3D benchmark (§5.3): propagation of
// electromagnetic waves through three-dimensional objects, framed as a
// computation on a bipartite graph. E nodes update from the weighted sum of
// neighboring H nodes, then H nodes update from the new E values. Edges and
// weights are static; a user-specified percentage of edges cross processor
// boundaries (to the ring neighbors, as in the Split-C original — hence the
// paper's 200 channel writes for 100 half-steps).
//
// The message-passing version follows the Split-C code: ghost nodes shadow
// remote sources — one ghost per remote edge, which simplifies
// initialization at slightly higher transfer volume — and each half-step's
// remote values travel in one bulk channel write per neighbor. All
// communication is lifted out of the main loop.
//
// The shared-memory version has no ghosts: caching provides the temporal
// locality, at the cost of the protocol's four-message producer-consumer
// pattern the paper dissects. Node value fields live in separate per-owner
// vectors (the paper's spatial-locality optimization); graph construction
// uses locks and remote writes to register edges at their sinks.
package em3d

import (
	"math"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Accounting phases (paper Tables 12/14 split initialization from the main
// loop).
const (
	PhaseInit stats.Phase = 0
	PhaseMain stats.Phase = 1
)

// Params configures an EM3D run.
type Params struct {
	// NodesPer is the number of E nodes (and H nodes) per processor
	// (the paper: 1000 + 1000).
	NodesPer int
	// Degree is each node's in-degree (the paper: 10).
	Degree int
	// RemotePct is the percentage of edges whose source is remote
	// (the paper: 20).
	RemotePct int
	// Iters is the number of full E+H iterations (the paper: 50).
	Iters int
	// Seed drives the deterministic graph generator.
	Seed uint64
}

// DefaultParams returns the paper's workload.
func DefaultParams() Params {
	return Params{NodesPer: 1000, Degree: 10, RemotePct: 20, Iters: 50, Seed: 1}
}

// Calibrated computation costs (cycles), shared by both versions.
const (
	cMac     = 25   // one weighted-sum term (load weight, load value, multiply-add)
	cNode    = 55   // per-node loop overhead and final store
	cBuildMP = 1800 // per-edge construction in EM3D-MP: generation, ghost wiring,
	// reverse-graph precomputation (paper init computation: 18.2M cycles)
	cBuildSM = 750 // per-edge construction in EM3D-SM: generation plus the
	// shared-structure registration logic around the simulated lock/writes
	cGather = 27 // per-value send-buffer gather (MP only; the paper measures
	// this "cost of managing calls to communication routines" at 5.4M cycles)
	cSetup = 120 // per-node allocation/initialization
)

// edge is a directed graph edge: the source node (owner processor and index
// within its vector) and the weight.
type edge struct {
	srcProc int32
	srcIdx  int32
	w       float64
}

// graph is the full bipartite problem, generated identically for both
// machine versions. eIn[p] lists the in-edges of processor p's E nodes
// (node-major, Degree entries per node), sourced from H nodes; hIn is the
// mirror for H nodes sourced from E nodes.
type graph struct {
	procs, nodesPer, deg int
	eIn                  [][]edge
	hIn                  [][]edge
	e0, h0               [][]float64 // initial values
}

func genGraph(par Params, procs int) *graph {
	g := &graph{procs: procs, nodesPer: par.NodesPer, deg: par.Degree}
	g.eIn = make([][]edge, procs)
	g.hIn = make([][]edge, procs)
	g.e0 = make([][]float64, procs)
	g.h0 = make([][]float64, procs)
	for p := 0; p < procs; p++ {
		rng := sim.NewRNG(par.Seed ^ (uint64(p)+3)*0x9E3779B97F4A7C15)
		g.eIn[p] = genEdges(rng, p, procs, par)
		g.hIn[p] = genEdges(rng, p, procs, par)
		g.e0[p] = make([]float64, par.NodesPer)
		g.h0[p] = make([]float64, par.NodesPer)
		for i := range g.e0[p] {
			g.e0[p][i] = rng.Float64() - 0.5
			g.h0[p][i] = rng.Float64() - 0.5
		}
	}
	return g
}

// genEdges generates Degree in-edges per node. Remote sources go to the
// ring neighbors, split evenly between them.
func genEdges(rng *sim.RNG, p, procs int, par Params) []edge {
	edges := make([]edge, par.NodesPer*par.Degree)
	for i := range edges {
		srcProc := p
		if procs > 1 && rng.Intn(100) < par.RemotePct {
			if rng.Intn(2) == 0 {
				srcProc = (p + 1) % procs
			} else {
				srcProc = (p - 1 + procs) % procs
			}
		}
		edges[i] = edge{
			srcProc: int32(srcProc),
			srcIdx:  int32(rng.Intn(par.NodesPer)),
			w:       rng.Float64() * 0.1,
		}
	}
	return edges
}

// reference runs the computation sequentially and returns the final E and H
// values, for validating both simulated versions.
func (g *graph) reference(iters int) (e, h [][]float64) {
	e = make([][]float64, g.procs)
	h = make([][]float64, g.procs)
	for p := 0; p < g.procs; p++ {
		e[p] = append([]float64(nil), g.e0[p]...)
		h[p] = append([]float64(nil), g.h0[p]...)
	}
	for it := 0; it < iters; it++ {
		for p := 0; p < g.procs; p++ {
			for i := 0; i < g.nodesPer; i++ {
				s := 0.0
				for k := 0; k < g.deg; k++ {
					ed := g.eIn[p][i*g.deg+k]
					s += ed.w * h[ed.srcProc][ed.srcIdx]
				}
				e[p][i] = s
			}
		}
		for p := 0; p < g.procs; p++ {
			for i := 0; i < g.nodesPer; i++ {
				s := 0.0
				for k := 0; k < g.deg; k++ {
					ed := g.hIn[p][i*g.deg+k]
					s += ed.w * e[ed.srcProc][ed.srcIdx]
				}
				h[p][i] = s
			}
		}
	}
	return e, h
}

// Output carries the simulation result plus validation data.
type Output struct {
	Res *machine.Result
	// E and H are the final values per processor from the simulated run.
	E, H [][]float64
	// MaxErr is the maximum absolute deviation from the sequential
	// reference.
	MaxErr float64
}

func (o *Output) validate(g *graph, iters int) {
	re, rh := g.reference(iters)
	for p := range re {
		for i := range re[p] {
			if d := math.Abs(o.E[p][i] - re[p][i]); d > o.MaxErr {
				o.MaxErr = d
			}
			if d := math.Abs(o.H[p][i] - rh[p][i]); d > o.MaxErr {
				o.MaxErr = d
			}
		}
	}
}

// neighbors returns the sorted unique ring neighbors of p.
func neighbors(p, procs int) []int {
	if procs == 1 {
		return nil
	}
	a, b := (p-1+procs)%procs, (p+1)%procs
	if a == b {
		return []int{a}
	}
	if a > b {
		a, b = b, a
	}
	return []int{a, b}
}
