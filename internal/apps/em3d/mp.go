package em3d

import (
	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/snapshot"
)

// RunMP runs EM3D-MP: the Split-C-derived message-passing version with one
// ghost node per remote edge and bulk channel transfers between ring
// neighbors before each half-step.
func RunMP(cfg cost.Config, shape cmmd.Shape, par Params) *Output {
	out := &Output{}
	g := genGraph(par, cfg.Procs)
	np, deg := par.NodesPer, par.Degree

	out.E = make([][]float64, cfg.Procs)
	out.H = make([][]float64, cfg.Procs)

	out.Res = machine.RunMP(cfg, shape, func(nd *machine.MPNode) {
		me := nd.ID
		m := nd.Mem
		nbs := neighbors(me, cfg.Procs)

		// --- Initialization phase ---
		nd.Phase(PhaseInit)

		eVal := nd.AllocF(np)
		hVal := nd.AllocF(np)
		// In-edge metadata: source slot (local index, or np+ghost slot) and
		// weight, node-major.
		eIdx := nd.AllocI(np * deg)
		eW := nd.AllocF(np * deg)
		hIdx := nd.AllocI(np * deg)
		hW := nd.AllocF(np * deg)

		// Ghost vectors, one slot per remote in-edge, grouped by neighbor.
		// ghostSeg[kind][d] is the slot range fed by neighbor d.
		type seg struct{ start, len int }
		ghostSegs := [2]map[int]*seg{{}, {}} // kind 0: H sources (E update), 1: E sources
		ins := [2][]edge{g.eIn[me], g.hIn[me]}
		counts := [2]int{}
		for kind := 0; kind < 2; kind++ {
			for _, d := range nbs {
				s := &seg{start: counts[kind]}
				for _, ed := range ins[kind] {
					if int(ed.srcProc) == d {
						s.len++
					}
				}
				counts[kind] += s.len
				ghostSegs[kind][d] = s
			}
		}
		ghostH := nd.AllocF(counts[0] + 1)
		ghostE := nd.AllocF(counts[1] + 1)
		nd.OnState(func(enc *snapshot.Enc) {
			enc.F64s(eVal.V)
			enc.F64s(hVal.V)
			enc.F64s(ghostH.V)
			enc.F64s(ghostE.V)
		})

		// Wire the in-edge metadata: local sources index the value vector
		// directly; remote sources index their per-edge ghost slot (np+slot).
		idxV, wV := [2]*memsim.IVec{&eIdx, &hIdx}, [2]*memsim.FVec{&eW, &hW}
		for kind := 0; kind < 2; kind++ {
			next := map[int]int{}
			for _, d := range nbs {
				next[d] = ghostSegs[kind][d].start
			}
			for i, ed := range ins[kind] {
				if int(ed.srcProc) == me {
					idxV[kind].V[i] = int64(ed.srcIdx)
				} else {
					slot := next[int(ed.srcProc)]
					next[int(ed.srcProc)]++
					idxV[kind].V[i] = int64(np + slot)
				}
				wV[kind].V[i] = ed.w
			}
			idxV[kind].WriteRange(m, 0, np*deg)
			wV[kind].WriteRange(m, 0, np*deg)
			nd.Compute(int64(np*deg) * cBuildMP / 2)
		}

		// Send lists: for each neighbor d and kind, the local value indices
		// I must ship (one per remote edge at d, in d's canonical order).
		sendList := [2]map[int][]int32{{}, {}}
		for kind := 0; kind < 2; kind++ {
			for _, d := range nbs {
				var lst []int32
				for _, ed := range ins2(g, d)[kind] {
					if int(ed.srcProc) == me {
						lst = append(lst, ed.srcIdx)
					}
				}
				sendList[kind][d] = lst
			}
		}
		sendBuf := [2]map[int]memsim.FVec{{}, {}}
		for kind := 0; kind < 2; kind++ {
			for _, d := range nbs {
				sendBuf[kind][d] = nd.AllocF(len(sendList[kind][d]) + 1)
			}
		}

		// Open ghost receive channels in canonical order (kind-major,
		// neighbor-sorted), so channel ids agree across nodes by symmetry.
		recvCh := [2]map[int]*cmmd.RecvChannel{{}, {}}
		for kind, gv := range []*memsim.FVec{&ghostH, &ghostE} {
			for _, d := range nbs {
				s := ghostSegs[kind][d]
				lo, hi := s.start, s.start+s.len
				if s.len == 0 {
					hi = lo + 1 // placeholder; never written
				}
				recvCh[kind][d] = nd.EP.OpenRecvChannelF(gv, lo, hi)
			}
		}
		// chanID computes the id of my segment's channel on neighbor d.
		chanID := func(d, kind int) int {
			dn := neighbors(d, cfg.Procs)
			for i, q := range dn {
				if q == me {
					return kind*len(dn) + i
				}
			}
			panic("em3d: not a neighbor")
		}

		// Exchange edge information between each pair of processors in a
		// single bulk message (paper §5.3.2), referenced twice on the
		// receiving side (in-degree counts, then sink-to-source pointers).
		edgeInfo := nd.AllocF(2*deg*np + 2)
		// Post the receives first — a blocking send on both sides of each
		// pair would deadlock the handshake.
		var infoCh []*cmmd.RecvChannel
		for _, d := range nbs {
			// Incoming: two words per remote in-edge of mine sourced at d.
			n := 2 * (ghostSegs[0][d].len + ghostSegs[1][d].len)
			infoCh = append(infoCh, nd.EP.RecvPost(100+d, &edgeInfo, 0, n))
		}
		for _, d := range nbs {
			// Two words per remote edge I own that sinks at d.
			n := 2 * (len(sendList[0][d]) + len(sendList[1][d]))
			nd.EP.SendBlock(d, 100+me, &edgeInfo, 0, n)
		}
		for i, d := range nbs {
			n := 2 * (ghostSegs[0][d].len + ghostSegs[1][d].len)
			nd.EP.WaitChannel(infoCh[i], 1)
			edgeInfo.ReadRange(m, 0, n) // in-degree pass
			edgeInfo.ReadRange(m, 0, n) // pointer pass
			nd.Compute(int64(n) * 6)
		}

		// Initial values.
		copy(eVal.V, g.e0[me])
		copy(hVal.V, g.h0[me])
		eVal.WriteRange(m, 0, np)
		hVal.WriteRange(m, 0, np)
		nd.Compute(int64(np) * cSetup)

		// gatherSend collects the listed values into the send buffer and
		// streams it to d in one channel write.
		gatherSend := func(kind int, vals *memsim.FVec, d int) {
			lst := sendList[kind][d]
			if len(lst) == 0 {
				return
			}
			buf := sendBuf[kind][d]
			for i, src := range lst {
				buf.V[i] = vals.Get(m, int(src))
				nd.Compute(cGather)
			}
			buf.WriteRange(m, 0, len(lst))
			nd.EP.ChannelWriteF(d, chanID(d, kind), &buf, 0, len(lst))
		}

		// Ship initial H values so iteration 1's E update has its ghosts.
		for _, d := range nbs {
			gatherSend(0, &hVal, d)
		}
		nd.Barrier()

		// --- Main loop ---
		nd.Phase(PhaseMain)
		for it := 1; it <= par.Iters; it++ {
			// E half-step: wait for this iteration's H ghosts, update.
			for _, d := range nbs {
				if ghostSegs[0][d].len > 0 {
					nd.EP.WaitChannel(recvCh[0][d], int64(it))
				}
			}
			halfStep(nd, m, np, deg, &eIdx, &eW, &hVal, &ghostH, &eVal)
			for _, d := range nbs {
				gatherSend(1, &eVal, d)
			}

			// H half-step.
			for _, d := range nbs {
				if ghostSegs[1][d].len > 0 {
					nd.EP.WaitChannel(recvCh[1][d], int64(it))
				}
			}
			halfStep(nd, m, np, deg, &hIdx, &hW, &eVal, &ghostE, &hVal)
			if it < par.Iters {
				for _, d := range nbs {
					gatherSend(0, &hVal, d)
				}
			}
		}
		nd.Barrier()
		out.E[me] = append([]float64(nil), eVal.V...)
		out.H[me] = append([]float64(nil), hVal.V...)
	})

	// An aborted run (fault-injection starvation) leaves partial state;
	// validation only makes sense for a completed execution.
	if out.Res.Err == nil {
		out.validate(g, par.Iters)
	}
	return out
}

// ins2 returns proc d's in-edge lists by kind.
func ins2(g *graph, d int) [2][]edge { return [2][]edge{g.eIn[d], g.hIn[d]} }

// halfStep updates dst: each node becomes the weighted sum of its sources,
// read from the local value vector or the ghost vector — "ghost nodes make
// remote and local data accesses uniform".
func halfStep(nd *machine.MPNode, m *memsim.Mem, np, deg int,
	idx *memsim.IVec, w *memsim.FVec, src, ghost, dst *memsim.FVec) {
	for i := 0; i < np; i++ {
		idx.ReadRange(m, i*deg, (i+1)*deg)
		w.ReadRange(m, i*deg, (i+1)*deg)
		s := 0.0
		for k := 0; k < deg; k++ {
			si := int(idx.V[i*deg+k])
			if si < np {
				s += w.V[i*deg+k] * src.Get(m, si)
			} else {
				s += w.V[i*deg+k] * ghost.Get(m, si-np)
			}
		}
		dst.Set(m, i, s)
		nd.Compute(int64(deg)*cMac + cNode)
	}
}
