package em3d

import (
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// RunSMStep runs EM3D-SM in step (continuation) form: RunSM rewritten as an
// explicit state machine, fingerprint-identical to the coroutine form. The
// software-flush variant stays coroutine-only.
func RunSMStep(cfg cost.Config, policy parmacs.Policy, par Params) *Output {
	out := &Output{}
	g := genGraph(par, cfg.Procs)
	procs := cfg.Procs

	out.E = make([][]float64, procs)
	out.H = make([][]float64, procs)
	var sh smShared

	out.Res = machine.NewSMStep(cfg, policy, func(nd *machine.SMNode) func(*sim.Proc) sim.StepStatus {
		s := newSMStep(nd, g, par, procs, out, &sh)
		return s.step
	}).Run()

	if out.Res.Err == nil {
		out.validate(g, par.Iters)
	}
	return out
}

// Program-counter states of the EM3D-SM step machine, in program order.
const (
	esCreate = iota
	esBarrier0
	esRegister
	esValWriteE
	esValWriteH
	esBarrier1
	esHalfE
	esBarrier2
	esHalfH
	esBarrier3
)

type smStep struct {
	nd    *machine.SMNode
	m     *memsim.Mem
	g     *graph
	par   Params
	procs int
	out   *Output
	sh    *smShared
	sinks []int // me then ring neighbors: registration order

	pc int
	it int

	rf regFrame
	lf parmacs.LockStep
	hf halfFrame
}

// newSMStep does the host-side setup. Node 0 also establishes the shared
// structures here — its first dispatch, before any other node can observe
// them: non-zero nodes touch sh only after their StepWaitCreate completes,
// which a Create wake (a later quantum) must precede.
func newSMStep(nd *machine.SMNode, g *graph, par Params, procs int, out *Output, sh *smShared) *smStep {
	np, deg := par.NodesPer, par.Degree
	me := nd.ID
	s := &smStep{nd: nd, m: nd.Mem, g: g, par: par, procs: procs, out: out, sh: sh,
		sinks: append([]int{me}, neighbors(me, procs)...)}
	nd.Phase(PhaseInit)
	if me == 0 {
		for p := 0; p < procs; p++ {
			sh.eVal = append(sh.eVal, nd.RT.GMallocF(p, np))
			sh.hVal = append(sh.hVal, nd.RT.GMallocF(p, np))
			sh.eIdx = append(sh.eIdx, nd.RT.GMallocI(p, np*deg))
			sh.hIdx = append(sh.hIdx, nd.RT.GMallocI(p, np*deg))
			sh.eW = append(sh.eW, nd.RT.GMallocF(p, np*deg))
			sh.hW = append(sh.hW, nd.RT.GMallocF(p, np*deg))
			sh.eCnt = append(sh.eCnt, nd.RT.GMallocI(p, np))
			sh.hCnt = append(sh.hCnt, nd.RT.GMallocI(p, np))
			sh.locks = append(sh.locks, parmacs.NewLock(nd.RT))
		}
	}
	return s
}

func (s *smStep) step(p *sim.Proc) sim.StepStatus {
	nd, m, sh := s.nd, s.m, s.sh
	np := s.par.NodesPer
	me := nd.ID
	for {
		switch s.pc {
		case esCreate:
			if me == 0 {
				nd.Compute(int64(s.procs) * 400)
				nd.RT.Create(p)
			} else if !nd.RT.StepWaitCreate(p) {
				return sim.StepYield
			}
			s.pc = esBarrier0
		case esBarrier0:
			if !nd.RT.StepBarrier(p) {
				return sim.StepYield
			}
			// Registered here — the same simulated point as the coroutine
			// form — so snapshots taken before this quantum encode the same
			// (shorter) state list in both forms.
			nd.OnState(func(enc *snapshot.Enc) {
				enc.F64s(sh.eVal[me].V)
				enc.F64s(sh.hVal[me].V)
				enc.I64s(sh.eCnt[me].V)
				enc.I64s(sh.hCnt[me].V)
			})
			s.pc = esRegister
		case esRegister:
			if !s.stepRegister() {
				return sim.StepYield
			}
			s.pc = esValWriteE
		case esValWriteE:
			copy(sh.eVal[me].V[:np], s.g.e0[me]) // idempotent across re-invocations
			if !sh.eVal[me].StepWriteRange(m, 0, np) {
				return sim.StepYield
			}
			s.pc = esValWriteH
		case esValWriteH:
			copy(sh.hVal[me].V[:np], s.g.h0[me])
			if !sh.hVal[me].StepWriteRange(m, 0, np) {
				return sim.StepYield
			}
			nd.Compute(int64(np) * cSetup)
			s.pc = esBarrier1
		case esBarrier1:
			if !nd.RT.StepBarrier(p) {
				return sim.StepYield
			}
			nd.Phase(PhaseMain)
			s.it = 0
			s.pc = esHalfE
		case esHalfE:
			if !s.stepSMHalf(&sh.eIdx[me], &sh.eW[me], sh.hVal, &sh.eVal[me]) {
				return sim.StepYield
			}
			s.pc = esBarrier2
		case esBarrier2:
			if !nd.RT.StepBarrier(p) {
				return sim.StepYield
			}
			s.pc = esHalfH
		case esHalfH:
			if !s.stepSMHalf(&sh.hIdx[me], &sh.hW[me], sh.eVal, &sh.hVal[me]) {
				return sim.StepYield
			}
			s.pc = esBarrier3
		case esBarrier3:
			if !nd.RT.StepBarrier(p) {
				return sim.StepYield
			}
			s.it++
			if s.it < s.par.Iters {
				s.pc = esHalfE
				continue
			}
			s.out.E[me] = append([]float64(nil), sh.eVal[me].V...)
			s.out.H[me] = append([]float64(nil), sh.hVal[me].V...)
			return sim.StepDone
		}
	}
}

// regFrame is the resumable state of the out-edge registration sweep: the
// sink being processed (kind-major within each sink), the edge cursor, and
// the claimed slot held across the locked update.
type regFrame struct {
	qi   int
	kind int
	node int
	k    int
	sub  uint8
	slot int64
}

// stepRegister mirrors RunSM's register loops: for each sink (me, then the
// ring neighbors) and each kind, claim a slot under the sink's lock and
// write the packed source pointer and weight with remote writes.
func (s *smStep) stepRegister() bool {
	np, deg := s.par.NodesPer, s.par.Degree
	m, sh := s.m, s.sh
	me := s.nd.ID
	rf := &s.rf
	for {
		if rf.qi >= len(s.sinks) {
			*rf = regFrame{}
			return true
		}
		sink := s.sinks[rf.qi]
		var ins []edge
		var idx, cnt []memsim.IVec
		var w []memsim.FVec
		if rf.kind == 0 {
			ins, idx, w, cnt = s.g.eIn[sink], sh.eIdx, sh.eW, sh.eCnt
		} else {
			ins, idx, w, cnt = s.g.hIn[sink], sh.hIdx, sh.hW, sh.hCnt
		}
		if rf.sub == 0 {
			// Advance to the next of my out-edges sinking here.
			for rf.node < np {
				if rf.k >= deg {
					rf.k = 0
					rf.node++
					continue
				}
				if int(ins[rf.node*deg+rf.k].srcProc) == me {
					break
				}
				rf.k++
			}
			if rf.node >= np {
				rf.node, rf.k = 0, 0
				rf.kind++
				if rf.kind == 2 {
					rf.kind = 0
					rf.qi++
				}
				continue
			}
			rf.sub = 1
		}
		ed := ins[rf.node*deg+rf.k]
		switch rf.sub {
		case 1:
			if !sh.locks[sink].StepAcquire(&s.lf, m) {
				return false
			}
			rf.sub = 2
		case 2:
			slot, ok := cnt[sink].StepGet(m, rf.node)
			if !ok {
				return false
			}
			rf.slot = slot
			rf.sub = 3
		case 3:
			if !cnt[sink].StepSet(m, rf.node, rf.slot+1) {
				return false
			}
			rf.sub = 4
		case 4:
			pos := rf.node*deg + int(rf.slot)
			if !idx[sink].StepSet(m, pos, int64(me)<<32|int64(ed.srcIdx)) {
				return false
			}
			rf.sub = 5
		case 5:
			pos := rf.node*deg + int(rf.slot)
			if !w[sink].StepSet(m, pos, ed.w) {
				return false
			}
			rf.sub = 6
		case 6:
			if !sh.locks[sink].StepRelease(&s.lf, m) {
				return false
			}
			s.nd.Compute(cBuildSM)
			rf.k++
			rf.sub = 0
		}
	}
}

// stepSMHalf mirrors smHalf (without the software-flush variant).
func (s *smStep) stepSMHalf(idx *memsim.IVec, w *memsim.FVec, srcVals []memsim.FVec, dst *memsim.FVec) bool {
	np, deg := s.par.NodesPer, s.par.Degree
	m := s.m
	hf := &s.hf
	for {
		switch hf.sub {
		case 0:
			if hf.i >= np {
				*hf = halfFrame{}
				return true
			}
			if !idx.StepReadRange(m, hf.i*deg, (hf.i+1)*deg) {
				return false
			}
			hf.sub = 1
		case 1:
			if !w.StepReadRange(m, hf.i*deg, (hf.i+1)*deg) {
				return false
			}
			hf.k = 0
			hf.acc = 0
			hf.sub = 2
		case 2:
			if hf.k >= deg {
				hf.sub = 3
				continue
			}
			packed := idx.V[hf.i*deg+hf.k]
			owner := int(packed >> 32)
			si := int(packed & 0xFFFFFFFF)
			v, ok := srcVals[owner].StepGet(m, si)
			if !ok {
				return false
			}
			hf.acc += w.V[hf.i*deg+hf.k] * v
			hf.k++
		case 3:
			if !dst.StepSet(m, hf.i, hf.acc) {
				return false
			}
			s.nd.Compute(int64(deg)*cMac + cNode)
			hf.i++
			hf.sub = 0
		}
	}
}
