package em3d

import (
	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// RunMPStep runs EM3D-MP in step (continuation) form: the same program as
// RunMP rewritten as an explicit state machine so each node runs without a
// goroutine. Every simulated operation of the coroutine form appears here
// at the same point in the op sequence — charges land at the same clocks,
// so the two forms produce bit-identical fingerprints.
func RunMPStep(cfg cost.Config, shape cmmd.Shape, par Params) *Output {
	out := &Output{}
	g := genGraph(par, cfg.Procs)

	out.E = make([][]float64, cfg.Procs)
	out.H = make([][]float64, cfg.Procs)

	out.Res = machine.NewMPStep(cfg, shape, func(nd *machine.MPNode) func(*sim.Proc) sim.StepStatus {
		s := newMPStep(nd, g, par, cfg.Procs, out)
		return s.step
	}).Run()

	if out.Res.Err == nil {
		out.validate(g, par.Iters)
	}
	return out
}

// gseg is one neighbor's slot range in a ghost vector.
type gseg struct{ start, len int }

// mpLayout is the host-side graph layout shared by both forms: ghost
// segments and send lists per neighbor, by kind (0: H sources feeding the
// E update, 1: E sources feeding the H update).
type mpLayout struct {
	segs     [2]map[int]*gseg
	counts   [2]int
	sendList [2]map[int][]int32
}

func layoutMP(g *graph, me int, nbs []int) *mpLayout {
	l := &mpLayout{segs: [2]map[int]*gseg{{}, {}}, sendList: [2]map[int][]int32{{}, {}}}
	ins := [2][]edge{g.eIn[me], g.hIn[me]}
	for kind := 0; kind < 2; kind++ {
		for _, d := range nbs {
			sg := &gseg{start: l.counts[kind]}
			for _, ed := range ins[kind] {
				if int(ed.srcProc) == d {
					sg.len++
				}
			}
			l.counts[kind] += sg.len
			l.segs[kind][d] = sg
		}
		for _, d := range nbs {
			var lst []int32
			for _, ed := range ins2(g, d)[kind] {
				if int(ed.srcProc) == me {
					lst = append(lst, ed.srcIdx)
				}
			}
			l.sendList[kind][d] = lst
		}
	}
	return l
}

// wireEdges fills the in-edge metadata host arrays: local sources index the
// value vector directly; remote sources index their per-edge ghost slot.
func (l *mpLayout) wireEdges(g *graph, me, np int, nbs []int, idxV [2]*memsim.IVec, wV [2]*memsim.FVec) {
	ins := [2][]edge{g.eIn[me], g.hIn[me]}
	for kind := 0; kind < 2; kind++ {
		next := map[int]int{}
		for _, d := range nbs {
			next[d] = l.segs[kind][d].start
		}
		for i, ed := range ins[kind] {
			if int(ed.srcProc) == me {
				idxV[kind].V[i] = int64(ed.srcIdx)
			} else {
				slot := next[int(ed.srcProc)]
				next[int(ed.srcProc)]++
				idxV[kind].V[i] = int64(np + slot)
			}
			wV[kind].V[i] = ed.w
		}
	}
}

// chanIDOn computes the id of my ghost segment's channel on neighbor d
// (channels open in kind-major, neighbor-sorted order on every node).
func chanIDOn(d, kind, me, procs int) int {
	dn := neighbors(d, procs)
	for i, q := range dn {
		if q == me {
			return kind*len(dn) + i
		}
	}
	panic("em3d: not a neighbor")
}

// Program-counter states of the EM3D-MP step machine, in program order.
const (
	emWireIdx = iota
	emWireW
	emInfoPost
	emInfoSend
	emInfoWait
	emInfoRead1
	emInfoRead2
	emValWriteE
	emValWriteH
	emShipH
	emBarrier0
	emWaitH
	emHalfE
	emGatherE
	emWaitE
	emHalfH
	emGatherH
	emBarrier1
)

type mpStep struct {
	nd    *machine.MPNode
	m     *memsim.Mem
	g     *graph
	par   Params
	procs int
	out   *Output
	nbs   []int
	lay   *mpLayout

	eVal, hVal     memsim.FVec
	eIdx, hIdx     memsim.IVec
	eW, hW         memsim.FVec
	ghostH, ghostE memsim.FVec
	edgeInfo       memsim.FVec
	sendBuf        [2]map[int]memsim.FVec
	recvCh         [2]map[int]*cmmd.RecvChannel
	infoCh         []*cmmd.RecvChannel

	pc   int
	kind int // wiring loop
	ni   int // neighbor loop index
	it   int // main-loop iteration

	// Library-call frames, one live at a time (the program is serial).
	recv cmmd.RecvStep
	send cmmd.SendStep
	poll cmmd.PollStep
	cw   cmmd.ChanWriteStep
	gf   gatherFrame
	hf   halfFrame
}

// newMPStep does the host-side setup the coroutine program performs between
// simulated operations: allocation, graph layout, wiring values, initial
// values, and channel registration. No cycles are charged here; the step
// function issues every simulated operation in RunMP's exact order.
func newMPStep(nd *machine.MPNode, g *graph, par Params, procs int, out *Output) *mpStep {
	np, deg := par.NodesPer, par.Degree
	me := nd.ID
	s := &mpStep{nd: nd, m: nd.Mem, g: g, par: par, procs: procs, out: out,
		nbs: neighbors(me, procs), it: 1}
	s.lay = layoutMP(g, me, s.nbs)

	s.eVal = nd.AllocF(np)
	s.hVal = nd.AllocF(np)
	s.eIdx = nd.AllocI(np * deg)
	s.eW = nd.AllocF(np * deg)
	s.hIdx = nd.AllocI(np * deg)
	s.hW = nd.AllocF(np * deg)
	s.ghostH = nd.AllocF(s.lay.counts[0] + 1)
	s.ghostE = nd.AllocF(s.lay.counts[1] + 1)
	nd.OnState(func(enc *snapshot.Enc) {
		enc.F64s(s.eVal.V)
		enc.F64s(s.hVal.V)
		enc.F64s(s.ghostH.V)
		enc.F64s(s.ghostE.V)
	})

	s.lay.wireEdges(g, me, np, s.nbs,
		[2]*memsim.IVec{&s.eIdx, &s.hIdx}, [2]*memsim.FVec{&s.eW, &s.hW})

	s.sendBuf = [2]map[int]memsim.FVec{{}, {}}
	for kind := 0; kind < 2; kind++ {
		for _, d := range s.nbs {
			s.sendBuf[kind][d] = nd.AllocF(len(s.lay.sendList[kind][d]) + 1)
		}
	}

	s.recvCh = [2]map[int]*cmmd.RecvChannel{{}, {}}
	for kind, gv := range []*memsim.FVec{&s.ghostH, &s.ghostE} {
		for _, d := range s.nbs {
			sg := s.lay.segs[kind][d]
			lo, hi := sg.start, sg.start+sg.len
			if sg.len == 0 {
				hi = lo + 1 // placeholder; never written
			}
			s.recvCh[kind][d] = nd.EP.OpenRecvChannelF(gv, lo, hi)
		}
	}

	s.edgeInfo = nd.AllocF(2*deg*np + 2)

	nd.Phase(PhaseInit)
	return s
}

// infoWords returns the edge-information transfer sizes with neighbor d:
// incoming (two words per remote in-edge sourced at d) and outgoing (two
// words per remote edge of d's sourced at me).
func (s *mpStep) infoWords(d int) (in, outw int) {
	in = 2 * (s.lay.segs[0][d].len + s.lay.segs[1][d].len)
	outw = 2 * (len(s.lay.sendList[0][d]) + len(s.lay.sendList[1][d]))
	return in, outw
}

func (s *mpStep) step(p *sim.Proc) sim.StepStatus {
	nd, m := s.nd, s.m
	np, deg := s.par.NodesPer, s.par.Degree
	me := nd.ID
	idxV := [2]*memsim.IVec{&s.eIdx, &s.hIdx}
	wV := [2]*memsim.FVec{&s.eW, &s.hW}
	for {
		switch s.pc {
		case emWireIdx:
			if !idxV[s.kind].StepWriteRange(m, 0, np*deg) {
				return sim.StepYield
			}
			s.pc = emWireW
		case emWireW:
			if !wV[s.kind].StepWriteRange(m, 0, np*deg) {
				return sim.StepYield
			}
			nd.Compute(int64(np*deg) * cBuildMP / 2)
			s.kind++
			if s.kind < 2 {
				s.pc = emWireIdx
			} else {
				s.ni = 0
				s.pc = emInfoPost
			}
		case emInfoPost:
			if s.ni >= len(s.nbs) {
				s.ni = 0
				s.pc = emInfoSend
				continue
			}
			d := s.nbs[s.ni]
			in, _ := s.infoWords(d)
			ch, ok := nd.EP.StepRecvPost(&s.recv, 100+d, &s.edgeInfo, 0, in)
			if !ok {
				return sim.StepYield
			}
			s.infoCh = append(s.infoCh, ch)
			s.ni++
		case emInfoSend:
			if s.ni >= len(s.nbs) {
				s.ni = 0
				s.pc = emInfoWait
				continue
			}
			d := s.nbs[s.ni]
			_, outw := s.infoWords(d)
			if !nd.EP.StepSendBlock(&s.send, d, 100+me, &s.edgeInfo, 0, outw) {
				return sim.StepYield
			}
			s.ni++
		case emInfoWait:
			if s.ni >= len(s.nbs) {
				// Host-side initial values land here, not at build time:
				// checkpoint images must match the coroutine form at every
				// quantum boundary, and the coroutine copies these between
				// the edge-info exchange and the value write-back.
				copy(s.eVal.V, s.g.e0[me])
				copy(s.hVal.V, s.g.h0[me])
				s.pc = emValWriteE
				continue
			}
			if !nd.EP.StepWaitChannel(&s.poll, s.infoCh[s.ni], 1) {
				return sim.StepYield
			}
			s.pc = emInfoRead1
		case emInfoRead1: // in-degree pass
			in, _ := s.infoWords(s.nbs[s.ni])
			if !s.edgeInfo.StepReadRange(m, 0, in) {
				return sim.StepYield
			}
			s.pc = emInfoRead2
		case emInfoRead2: // pointer pass
			in, _ := s.infoWords(s.nbs[s.ni])
			if !s.edgeInfo.StepReadRange(m, 0, in) {
				return sim.StepYield
			}
			nd.Compute(int64(in) * 6)
			s.ni++
			s.pc = emInfoWait
		case emValWriteE:
			if !s.eVal.StepWriteRange(m, 0, np) {
				return sim.StepYield
			}
			s.pc = emValWriteH
		case emValWriteH:
			if !s.hVal.StepWriteRange(m, 0, np) {
				return sim.StepYield
			}
			nd.Compute(int64(np) * cSetup)
			s.ni = 0
			s.pc = emShipH
		case emShipH: // initial H ghosts for iteration 1's E update
			if s.ni >= len(s.nbs) {
				s.pc = emBarrier0
				continue
			}
			if !s.stepGatherSend(0, &s.hVal, s.nbs[s.ni]) {
				return sim.StepYield
			}
			s.ni++
		case emBarrier0:
			if !nd.EP.StepBarrier() {
				return sim.StepYield
			}
			nd.Phase(PhaseMain)
			s.ni = 0
			s.pc = emWaitH
		case emWaitH:
			if s.ni >= len(s.nbs) {
				s.pc = emHalfE
				continue
			}
			d := s.nbs[s.ni]
			if s.lay.segs[0][d].len > 0 {
				if !nd.EP.StepWaitChannel(&s.poll, s.recvCh[0][d], int64(s.it)) {
					return sim.StepYield
				}
			}
			s.ni++
		case emHalfE:
			if !s.stepHalf(&s.eIdx, &s.eW, &s.hVal, &s.ghostH, &s.eVal) {
				return sim.StepYield
			}
			s.ni = 0
			s.pc = emGatherE
		case emGatherE:
			if s.ni >= len(s.nbs) {
				s.ni = 0
				s.pc = emWaitE
				continue
			}
			if !s.stepGatherSend(1, &s.eVal, s.nbs[s.ni]) {
				return sim.StepYield
			}
			s.ni++
		case emWaitE:
			if s.ni >= len(s.nbs) {
				s.pc = emHalfH
				continue
			}
			d := s.nbs[s.ni]
			if s.lay.segs[1][d].len > 0 {
				if !nd.EP.StepWaitChannel(&s.poll, s.recvCh[1][d], int64(s.it)) {
					return sim.StepYield
				}
			}
			s.ni++
		case emHalfH:
			if !s.stepHalf(&s.hIdx, &s.hW, &s.eVal, &s.ghostE, &s.hVal) {
				return sim.StepYield
			}
			if s.it < s.par.Iters {
				s.ni = 0
				s.pc = emGatherH
			} else {
				s.pc = emBarrier1
			}
		case emGatherH:
			if s.ni >= len(s.nbs) {
				s.it++
				s.ni = 0
				s.pc = emWaitH
				continue
			}
			if !s.stepGatherSend(0, &s.hVal, s.nbs[s.ni]) {
				return sim.StepYield
			}
			s.ni++
		case emBarrier1:
			if !nd.EP.StepBarrier() {
				return sim.StepYield
			}
			s.out.E[me] = append([]float64(nil), s.eVal.V...)
			s.out.H[me] = append([]float64(nil), s.hVal.V...)
			return sim.StepDone
		}
	}
}

// gatherFrame is the resumable state of one stepGatherSend.
type gatherFrame struct {
	sub uint8
	i   int
}

// stepGatherSend mirrors RunMP's gatherSend: collect the listed values into
// the send buffer (one simulated load + gather charge per element), write
// the buffer through the cache, and stream it in one channel write.
func (s *mpStep) stepGatherSend(kind int, vals *memsim.FVec, d int) bool {
	lst := s.lay.sendList[kind][d]
	if len(lst) == 0 {
		return true
	}
	buf := s.sendBuf[kind][d]
	gf := &s.gf
	for {
		switch gf.sub {
		case 0:
			if gf.i >= len(lst) {
				gf.sub = 1
				continue
			}
			v, ok := vals.StepGet(s.m, int(lst[gf.i]))
			if !ok {
				return false
			}
			buf.V[gf.i] = v
			s.nd.Compute(cGather)
			gf.i++
		case 1:
			if !buf.StepWriteRange(s.m, 0, len(lst)) {
				return false
			}
			gf.sub = 2
		case 2:
			if !s.nd.EP.StepChannelWriteF(&s.cw, d,
				chanIDOn(d, kind, s.nd.ID, s.procs), &buf, 0, len(lst)) {
				return false
			}
			*gf = gatherFrame{}
			return true
		}
	}
}

// halfFrame is the resumable state of one stepHalf.
type halfFrame struct {
	sub  uint8
	i, k int
	acc  float64
}

// stepHalf mirrors halfStep: per node, load the edge metadata, accumulate
// the weighted source values (local or ghost), and store the result.
func (s *mpStep) stepHalf(idx *memsim.IVec, w *memsim.FVec, src, ghost, dst *memsim.FVec) bool {
	np, deg := s.par.NodesPer, s.par.Degree
	m := s.m
	hf := &s.hf
	for {
		switch hf.sub {
		case 0:
			if hf.i >= np {
				*hf = halfFrame{}
				return true
			}
			if !idx.StepReadRange(m, hf.i*deg, (hf.i+1)*deg) {
				return false
			}
			hf.sub = 1
		case 1:
			if !w.StepReadRange(m, hf.i*deg, (hf.i+1)*deg) {
				return false
			}
			hf.k = 0
			hf.acc = 0
			hf.sub = 2
		case 2:
			if hf.k >= deg {
				hf.sub = 3
				continue
			}
			si := int(idx.V[hf.i*deg+hf.k])
			var v float64
			var ok bool
			if si < np {
				v, ok = src.StepGet(m, si)
			} else {
				v, ok = ghost.StepGet(m, si-np)
			}
			if !ok {
				return false
			}
			hf.acc += w.V[hf.i*deg+hf.k] * v
			hf.k++
		case 3:
			if !dst.StepSet(m, hf.i, hf.acc) {
				return false
			}
			s.nd.Compute(int64(deg)*cMac + cNode)
			hf.i++
			hf.sub = 0
		}
	}
}
