package em3d

import (
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
	"repro/internal/snapshot"
)

// smShared is the shared-memory problem state established by node 0.
type smShared struct {
	eVal, hVal []memsim.FVec // per-owner value vectors ("value fields in a separate vector")
	eIdx, hIdx []memsim.IVec // per-owner in-edge source slots (owner-major)
	eW, hW     []memsim.FVec // per-owner in-edge weights
	eCnt, hCnt []memsim.IVec // per-owner in-degree fill counters
	locks      []*parmacs.Lock
}

// RunSM runs EM3D-SM: no ghost nodes — caching supplies the temporal
// locality, with the invalidation protocol's four-message producer-consumer
// cost. policy selects gmalloc placement (RoundRobin reproduces Table 14;
// Local reproduces the Table 17 ablation). Pass a Config with a 1 MB cache
// for the Table 16 ablation.
func RunSM(cfg cost.Config, policy parmacs.Policy, par Params) *Output {
	return runSM(cfg, policy, par, false)
}

// RunSMFlush runs the §5.3.4 software-flush variant the paper proposes:
// after consuming a remote value, the consumer flushes its cached copy,
// turning the producer's next two-message invalidation round into a silent
// single-message replacement. (The paper notes the benefit shrinks as the
// data set outgrows the cache, since lines are often evicted anyway.)
func RunSMFlush(cfg cost.Config, policy parmacs.Policy, par Params) *Output {
	return runSM(cfg, policy, par, true)
}

func runSM(cfg cost.Config, policy parmacs.Policy, par Params, flush bool) *Output {
	out := &Output{}
	g := genGraph(par, cfg.Procs)
	np, deg := par.NodesPer, par.Degree
	procs := cfg.Procs

	out.E = make([][]float64, procs)
	out.H = make([][]float64, procs)
	var sh smShared

	out.Res = machine.RunSM(cfg, policy, func(nd *machine.SMNode) {
		me := nd.ID
		m := nd.Mem
		nd.Phase(PhaseInit)

		if me == 0 {
			// Node 0 establishes the shared structures (gmalloc places
			// them per the policy), then starts the other nodes.
			for p := 0; p < procs; p++ {
				sh.eVal = append(sh.eVal, nd.RT.GMallocF(p, np))
				sh.hVal = append(sh.hVal, nd.RT.GMallocF(p, np))
				sh.eIdx = append(sh.eIdx, nd.RT.GMallocI(p, np*deg))
				sh.hIdx = append(sh.hIdx, nd.RT.GMallocI(p, np*deg))
				sh.eW = append(sh.eW, nd.RT.GMallocF(p, np*deg))
				sh.hW = append(sh.hW, nd.RT.GMallocF(p, np*deg))
				sh.eCnt = append(sh.eCnt, nd.RT.GMallocI(p, np))
				sh.hCnt = append(sh.hCnt, nd.RT.GMallocI(p, np))
				sh.locks = append(sh.locks, parmacs.NewLock(nd.RT))
			}
			nd.Compute(int64(procs) * 400)
			nd.RT.Create(nd.P)
		} else {
			nd.RT.WaitCreate(nd.P)
		}
		nd.Barrier()
		nd.OnState(func(enc *snapshot.Enc) {
			enc.F64s(sh.eVal[me].V)
			enc.F64s(sh.hVal[me].V)
			enc.I64s(sh.eCnt[me].V)
			enc.I64s(sh.hCnt[me].V)
		})

		// Register my out-edges at their sinks: lock the sink processor's
		// region, claim the next in-edge slot, write the source pointer and
		// weight with remote writes (paper: "remote data accesses require
		// locks and remote writes because each processor updates incoming
		// edge counts and pointers for remote sinks").
		register := func(sink int, ins []edge, idx []memsim.IVec, w []memsim.FVec, cnt []memsim.IVec) {
			for node := 0; node < np; node++ {
				for k := 0; k < deg; k++ {
					ed := ins[node*deg+k]
					if int(ed.srcProc) != me {
						continue
					}
					sh.locks[sink].Acquire(m)
					slot := cnt[sink].Get(m, node)
					cnt[sink].Set(m, node, slot+1)
					pos := node*deg + int(slot)
					// The source pointer packs (owner, index) — the
					// simulated analogue of a pointer into the owner's
					// value vector.
					idx[sink].Set(m, pos, int64(me)<<32|int64(ed.srcIdx))
					w[sink].Set(m, pos, ed.w)
					sh.locks[sink].Release(m)
					nd.Compute(cBuildSM)
				}
			}
		}
		for _, q := range append([]int{me}, neighbors(me, procs)...) {
			register(q, g.eIn[q], sh.eIdx, sh.eW, sh.eCnt)
			register(q, g.hIn[q], sh.hIdx, sh.hW, sh.hCnt)
		}

		// Initial values for my nodes.
		copy(sh.eVal[me].V, g.e0[me])
		copy(sh.hVal[me].V, g.h0[me])
		sh.eVal[me].WriteRange(m, 0, np)
		sh.hVal[me].WriteRange(m, 0, np)
		nd.Compute(int64(np) * cSetup)
		nd.Barrier()

		// --- Main loop: barriers separate the half-steps and prevent a
		// processor from reading a remote value before it is computed. ---
		nd.Phase(PhaseMain)
		for it := 0; it < par.Iters; it++ {
			smHalf(nd, m, me, np, deg, &sh.eIdx[me], &sh.eW[me], sh.hVal, &sh.eVal[me], flush)
			nd.Barrier()
			smHalf(nd, m, me, np, deg, &sh.hIdx[me], &sh.hW[me], sh.eVal, &sh.hVal[me], flush)
			nd.Barrier()
		}
		out.E[me] = append([]float64(nil), sh.eVal[me].V...)
		out.H[me] = append([]float64(nil), sh.hVal[me].V...)
	})

	if out.Res.Err == nil {
		out.validate(g, par.Iters)
	}
	return out
}

// smHalf updates this processor's dst nodes from the shared source value
// vectors. Local sources usually hit; remote sources take the protocol's
// invalidate-request-response round trips every iteration.
func smHalf(nd *machine.SMNode, m *memsim.Mem, me, np, deg int,
	idx *memsim.IVec, w *memsim.FVec, srcVals []memsim.FVec, dst *memsim.FVec, flush bool) {
	// The registered slot order determines which source owns each slot;
	// sources were written as (srcIdx) only, so the owner is recovered from
	// the edge's registration. Owners are encoded alongside: local edges
	// reference srcVals[me]; remote slots were filled by the remote writer
	// whose identity is the value vector to read. To keep the simulated
	// data self-contained, the index word packs (ownerProc<<32 | srcIdx).
	for i := 0; i < np; i++ {
		idx.ReadRange(m, i*deg, (i+1)*deg)
		w.ReadRange(m, i*deg, (i+1)*deg)
		s := 0.0
		for k := 0; k < deg; k++ {
			packed := idx.V[i*deg+k]
			owner := int(packed >> 32)
			si := int(packed & 0xFFFFFFFF)
			s += w.V[i*deg+k] * srcVals[owner].Get(m, si)
		}
		dst.Set(m, i, s)
		nd.Compute(int64(deg)*cMac + cNode)
	}
	if flush {
		// Software flush (paper §5.3.4): after the half-step, drop every
		// remote block we consumed, so the producers' rewrites find no
		// copies to invalidate (a silent replacement instead of a
		// two-message invalidation round). Deduplicate per block — values
		// are reused within the half-step.
		flushed := make(map[uint64]struct{})
		for i := 0; i < np*deg; i++ {
			packed := idx.V[i]
			owner := int(packed >> 32)
			if owner == me {
				continue
			}
			si := int(packed & 0xFFFFFFFF)
			addr := srcVals[owner].Addr(si)
			block := addr >> 5
			if _, ok := flushed[block]; ok {
				continue
			}
			flushed[block] = struct{}{}
			m.FlushBlock(addr)
		}
	}
}
