package mse

import (
	"testing"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/stats"
)

func smallParams() Params { return Params{Bodies: 16, Elems: 4, Iters: 10, Seed: 7} }

func TestProblemGeneratorDominance(t *testing.T) {
	pr := genProblem(smallParams(), 4)
	for i := 0; i < pr.nm; i++ {
		sum := 0.0
		for j := 0; j < pr.nm; j++ {
			if j != i {
				sum += pr.kernel(i, j)
			}
		}
		if pr.diag[i] <= sum {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
	// Schedule periods are symmetric and in {1,2,4}.
	for p := range pr.periods {
		for q := range pr.periods[p] {
			per := pr.periods[p][q]
			if per != 1 && per != 2 && per != 4 {
				t.Fatalf("period[%d][%d] = %d", p, q, per)
			}
			if per != pr.periods[q][p] {
				t.Fatalf("schedule asymmetric at %d,%d", p, q)
			}
		}
	}
}

func TestMSEMPMatchesReferenceExactly(t *testing.T) {
	out := RunMP(cost.Default(4), cmmd.LopSided, smallParams())
	if out.RefErr != 0 {
		t.Errorf("MP deviates from scheduled-Jacobi reference by %v", out.RefErr)
	}
	if out.Residual > 0.05 {
		t.Errorf("residual %v has not converged", out.Residual)
	}
}

func TestMSESMTracksReference(t *testing.T) {
	out := RunSM(cost.Default(4), smallParams())
	// SM reads race ahead nondeterministically (as on the real machine);
	// the trajectory stays close to the reference.
	if out.RefErr > 0.05 {
		t.Errorf("SM deviates from reference by %v", out.RefErr)
	}
	if out.Residual > 0.05 {
		t.Errorf("residual %v has not converged", out.Residual)
	}
}

func TestMSEComputationDominates(t *testing.T) {
	p := Params{Bodies: 32, Elems: 6, Iters: 6, Seed: 2}
	mp := RunMP(cost.Default(8), cmmd.LopSided, p)
	s := mp.Res.Summary
	comp := s.CyclesAll(stats.Comp)
	if frac := comp / s.TotalCyclesAll(); frac < 0.75 {
		t.Errorf("MP computation fraction %.2f, want > 0.75 (paper: 0.90)", frac)
	}
	sm := RunSM(cost.Default(8), p)
	ss := sm.Res.Summary
	// At this reduced scale the fixed start-up phase weighs more than at
	// the paper's size (where computation reaches 82%).
	if frac := ss.CyclesAll(stats.Comp) / ss.TotalCyclesAll(); frac < 0.4 {
		t.Errorf("SM computation fraction %.2f, want > 0.4", frac)
	}
	// Start-up wait appears only in the shared-memory version.
	if ss.CyclesAll(stats.StartupWait) == 0 {
		t.Error("SM should charge start-up wait")
	}
	if s.CyclesAll(stats.StartupWait) != 0 {
		t.Error("MP must not charge start-up wait")
	}
}

func TestMSEScheduleReducesTraffic(t *testing.T) {
	// Without the schedule (all periods 1), communication increases.
	p := Params{Bodies: 32, Elems: 4, Iters: 8, Seed: 2}
	withSched := RunMP(cost.Default(8), cmmd.LopSided, p)
	pr := genProblem(p, 8)
	forced := 0
	for q := range pr.periods {
		for r := range pr.periods[q] {
			if pr.periods[q][r] > 1 {
				forced++
			}
		}
	}
	if forced == 0 {
		t.Skip("geometry yielded no far pairs at this size")
	}
	bytes := withSched.Res.Summary.CountsAll(stats.CntBytesData)
	// Upper bound if every pair were fetched every iteration:
	per := float64(8*7) / 8 * float64(p.Iters) * float64(p.Bodies/8*p.Elems) * 8
	if bytes >= per {
		t.Errorf("scheduled traffic %v should be below the unscheduled bound %v", bytes, per)
	}
}

func TestMSEDeterminism(t *testing.T) {
	a := RunMP(cost.Default(4), cmmd.LopSided, smallParams())
	b := RunMP(cost.Default(4), cmmd.LopSided, smallParams())
	if a.Res.Elapsed != b.Res.Elapsed {
		t.Errorf("MP nondeterministic: %d vs %d", a.Res.Elapsed, b.Res.Elapsed)
	}
	c := RunSM(cost.Default(4), smallParams())
	d := RunSM(cost.Default(4), smallParams())
	if c.Res.Elapsed != d.Res.Elapsed {
		t.Errorf("SM nondeterministic: %d vs %d", c.Res.Elapsed, d.Res.Elapsed)
	}
}
