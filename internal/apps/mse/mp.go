package mse

import (
	"sort"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/ni"
	"repro/internal/snapshot"
)

// RunMP runs MSE-MP. Each processor keeps a local copy of the solution
// vector; when its schedule calls for updates it sends asynchronous
// requests for current values and awaits the replies, servicing other
// processors' requests in the meantime (paper §5.1). Replies are versioned
// by iteration, so the computation reproduces the scheduled-Jacobi
// reference exactly.
func RunMP(cfg cost.Config, shape cmmd.Shape, par Params) *Output {
	out := &Output{}
	procs := cfg.Procs
	pr := genProblem(par, procs)
	nm := pr.nm
	epp := nm / procs
	bpp := par.Bodies / procs
	m := par.Elems

	out.Res = machine.RunMP(cfg, shape, func(nd *machine.MPNode) {
		me := nd.ID
		mem := nd.Mem

		// Replicated initialization: every processor computes the geometry
		// and self terms (MSE-MP's computation exceeds MSE-SM's by exactly
		// this, per the paper).
		nd.Compute(serialInitCycles(nm))

		// Local copy of the solution vector; panels for the recomputed
		// matrix blocks (never stored whole).
		xsnap := nd.AllocF(nm)
		panel := nd.AllocF(nm * m / 2)
		nd.Compute(int64(epp) * cInit)

		// Published segment history for versioned replies.
		pub := map[int][]float64{0: make([]float64, epp)}
		pubIter := 0
		scratch := nd.AllocF(epp)
		nd.OnState(func(enc *snapshot.Enc) {
			enc.F64s(xsnap.V)
			enc.F64s(scratch.V)
			enc.I64(int64(pubIter))
			iters := make([]int, 0, len(pub))
			for it := range pub {
				iters = append(iters, it)
			}
			sort.Ints(iters)
			for _, it := range iters {
				enc.I64(int64(it))
				enc.F64s(pub[it])
			}
		})

		// Receive channels: one per peer, over that peer's segment of my
		// local copy; opened in ascending peer order so ids are symmetric.
		recvQ := make([]*cmmd.RecvChannel, procs)
		for q := 0; q < procs; q++ {
			if q != me {
				recvQ[q] = nd.EP.OpenRecvChannelF(&xsnap, q*epp, (q+1)*epp)
			}
		}
		chanOn := func(r, q int) int { // id of q's segment channel on node r
			if q < r {
				return q
			}
			return q - 1
		}

		// Request servicing: replies stream the published values for the
		// requested iteration; early requests defer until published.
		type reqT struct{ from, iter int }
		var deferred []reqT
		served := 0
		reply := func(r reqT) {
			vals := pub[r.iter-1]
			copy(scratch.V, vals)
			scratch.WriteRange(mem, 0, epp)
			nd.EP.ChannelWriteF(r.from, chanOn(r.from, me), &scratch, 0, epp)
			served++
		}
		hReq := nd.AM.Register(func(pkt *ni.Packet) {
			r := reqT{from: int(pkt.Args[0]), iter: int(pkt.Args[1])}
			if pubIter >= r.iter-1 {
				reply(r)
			} else {
				deferred = append(deferred, r)
			}
		})

		// Expected request total, for quiescing before the final barrier.
		expectedReqs := 0
		for q := 0; q < procs; q++ {
			for t := 1; t <= par.Iters; t++ {
				if q != me && pr.due(q, me, t) {
					expectedReqs++
				}
			}
		}

		nd.Barrier()
		expect := make([]int64, procs)
		next := make([]float64, epp)
		for t := 1; t <= par.Iters; t++ {
			// Scheduled snapshot refresh: ask every due peer for its
			// previous iteration's published values.
			for q := 0; q < procs; q++ {
				if q == me || !pr.due(me, q, t) {
					continue
				}
				nd.AM.Request(q, hReq, [4]uint64{uint64(me), uint64(t)}, 0, nil)
				expect[q]++
				nd.Compute(cSchedule)
			}
			for q := 0; q < procs; q++ {
				if q != me && pr.due(me, q, t) {
					nd.EP.WaitChannel(recvQ[q], expect[q])
				}
			}

			// Jacobi update of my elements, recomputing matrix panels
			// body-block by body-block (the system matrix is never stored).
			for lb := 0; lb < bpp; lb++ {
				gb := (me*bpp + lb) // global body
				for ob := 0; ob < par.Bodies; ob++ {
					seg := (lb*par.Bodies + ob) * m * m / 2 % panel.Len()
					end := seg + m*m/2
					if end > panel.Len() {
						end = panel.Len()
					}
					panel.WriteRange(mem, seg, end)
					xsnap.ReadRange(mem, ob*m, (ob+1)*m)
					work := int64(m*m) * cKernel
					if pr.near(gb, ob) {
						work *= 4 // refined quadrature for close bodies
					}
					nd.Compute(work)
				}
			}
			for li := 0; li < epp; li++ {
				i := me*epp + li
				s := pr.b[i]
				for j := 0; j < nm; j++ {
					if j != i {
						s -= pr.kernel(i, j) * xsnap.V[j]
					}
				}
				next[li] = s / pr.diag[i]
				nd.Compute(cElem)
			}
			for li := 0; li < epp; li++ {
				xsnap.V[me*epp+li] = next[li]
			}
			xsnap.WriteRange(mem, me*epp, (me+1)*epp)

			// Publish this iteration's values and service waiting peers.
			pub[t] = append([]float64(nil), next...)
			pubIter = t
			var still []reqT
			for _, r := range deferred {
				if pubIter >= r.iter-1 {
					reply(r)
				} else {
					still = append(still, r)
				}
			}
			deferred = still
		}

		// Quiesce: answer every remaining request, then synchronize.
		nd.AM.PollUntil(func() bool { return served == expectedReqs })
		nd.Barrier()
		if me == 0 {
			out.X = make([]float64, nm)
		}
		nd.Barrier()
		copy(out.X[me*epp:(me+1)*epp], pub[par.Iters])
	})

	if out.Res.Err == nil {
		ref := pr.reference(procs, par.Iters)
		out.validate(pr, ref)
	}
	return out
}
