package mse

import (
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
	"repro/internal/snapshot"
)

// RunSM runs MSE-SM. The solution vector lives in the shared address space;
// processors update it according to their schedules and read remote
// portions directly. Initialization runs serially on processor 0 while the
// others idle (the paper's 80M-cycle start-up wait), and a barrier
// separates initialization from the main loop.
func RunSM(cfg cost.Config, par Params) *Output {
	out := &Output{}
	procs := cfg.Procs
	pr := genProblem(par, procs)
	nm := pr.nm
	epp := nm / procs
	bpp := par.Bodies / procs
	m := par.Elems

	var (
		xg   memsim.FVec // the global solution vector
		xmir *memsim.MirrorVec
	)

	out.Res = machine.RunSM(cfg, parmacs.RoundRobin, func(nd *machine.SMNode) {
		me := nd.ID
		mem := nd.Mem

		if me == 0 {
			// Serial initialization on processor 0 (geometry, self terms,
			// schedules) while the other processors sit idle.
			xg = nd.RT.GMallocF(0, nm)
			xmir = memsim.NewMirror(nd.P.Engine(), &xg)
			nd.Compute(serialInitCycles(nm))
			nd.RT.Create(nd.P)
		} else {
			nd.RT.WaitCreate(nd.P)
		}

		// Per-processor setup: local snapshot of the solution vector and
		// panel workspace for the recomputed matrix blocks.
		xsnap := nd.AllocF(nm)
		panel := nd.AllocF(nm * m / 2)
		nd.OnState(func(enc *snapshot.Enc) {
			if me == 0 { // shared vector, encoded once
				enc.F64s(xg.V)
			}
			enc.F64s(xsnap.V)
		})
		nd.Compute(int64(epp) * cInit)
		xg.WriteRange(mem, me*epp, (me+1)*epp)
		nd.Barrier() // the single barrier between init and main loop

		next := make([]float64, epp)
		for t := 1; t <= par.Iters; t++ {
			// Scheduled snapshot refresh: read due processors' portions of
			// the global vector directly from shared memory.
			for q := 0; q < procs; q++ {
				if q == me || !pr.due(me, q, t) {
					continue
				}
				xg.ReadRange(mem, q*epp, (q+1)*epp)
				xsnap.WriteRange(mem, q*epp, (q+1)*epp)
				// Copy the quantum-boundary image, not the live backing:
				// q may be mid-publish this quantum, and which of its
				// writes have landed must not depend on worker schedule.
				copy(xsnap.V[q*epp:(q+1)*epp], xmir.V[q*epp:(q+1)*epp])
				nd.Compute(cSchedule)
			}

			// Jacobi update, recomputing matrix panels (identical work to
			// the message-passing version).
			for lb := 0; lb < bpp; lb++ {
				gb := me*bpp + lb
				for ob := 0; ob < par.Bodies; ob++ {
					seg := (lb*par.Bodies + ob) * m * m / 2 % panel.Len()
					end := seg + m*m/2
					if end > panel.Len() {
						end = panel.Len()
					}
					panel.WriteRange(mem, seg, end)
					xsnap.ReadRange(mem, ob*m, (ob+1)*m)
					work := int64(m*m) * cKernel
					if pr.near(gb, ob) {
						work *= 4
					}
					nd.Compute(work)
				}
			}
			for li := 0; li < epp; li++ {
				i := me*epp + li
				s := pr.b[i]
				for j := 0; j < nm; j++ {
					if j != i {
						s -= pr.kernel(i, j) * xsnap.V[j]
					}
				}
				next[li] = s / pr.diag[i]
				nd.Compute(cElem)
			}
			// Publish into the global vector (write faults where readers
			// hold copies) and into the local snapshot.
			for li := 0; li < epp; li++ {
				xg.V[me*epp+li] = next[li]
				xsnap.V[me*epp+li] = next[li]
			}
			xg.WriteRange(mem, me*epp, (me+1)*epp)
			xsnap.WriteRange(mem, me*epp, (me+1)*epp)
		}
		nd.Barrier()
		if me == 0 {
			out.X = append([]float64(nil), xg.V...)
		}
	})

	if out.Res.Err == nil {
		ref := pr.reference(procs, par.Iters)
		out.validate(pr, ref)
	}
	return out
}
