// Package mse implements the paper's Microstructure Electrostatics
// benchmark (§5.1): boundary-integral solutions of the Laplace equation for
// an N-body system in which each body is discretized into M boundary
// elements. The (NM)² system matrix cannot be stored, so interaction
// coefficients are recomputed from element positions as needed — the
// benchmark is overwhelmingly computation-bound (90% of MSE-MP's time).
//
// The solver is parallel asynchronous Jacobi over a global solution vector.
// Communication passes through that vector under a distance-based update
// schedule: distant bodies interact weakly and exchange solutions less
// frequently, which drastically reduces communication at a slight cost in
// iterations to converge.
//
// MSE-MP keeps a full local copy of the solution vector per processor;
// scheduled updates are asynchronous requests answered by streaming the
// requested segment, serviced opportunistically while computing. MSE-SM
// keeps the vector in shared memory: processors read remote portions
// directly and publish their own, with a single start-up/init phase on
// processor 0 (the paper's 80M-cycle serial initialization).
package mse

import (
	"math"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Params configures an MSE run.
type Params struct {
	// Bodies is N (the paper: 256).
	Bodies int
	// Elems is M, boundary elements per body (the paper: 20).
	Elems int
	// Iters is the number of Jacobi iterations (the paper: 20).
	Iters int
	// Seed drives the deterministic geometry generator.
	Seed uint64
}

// DefaultParams returns the paper's workload.
func DefaultParams() Params { return Params{Bodies: 256, Elems: 20, Iters: 20, Seed: 1} }

// Calibrated computation costs (cycles).
const (
	cKernel = 50   // one boundary-integral coefficient evaluation + MAC
	cElem   = 90   // per-element Jacobi bookkeeping (diagonal solve, store)
	cInit   = 3600 // per-element initialization work (geometry, self terms)
	// cSerialPerElem scales processor 0's serial setup (replicated on every
	// node in MSE-MP): at the paper's 5120 elements it is the ~80M cycles
	// during which the other shared-memory processors sit idle.
	cSerialPerElem = 15_600
	cSchedule      = 900 // per-peer scheduling decision per iteration
)

// serialInitCycles is the serial initialization charge for a problem of nm
// elements.
func serialInitCycles(nm int) int64 { return cSerialPerElem * int64(nm) }

// Output carries the simulation result plus validation data.
type Output struct {
	Res *machine.Result
	// X is the final solution vector.
	X []float64
	// RefErr is the max abs deviation from the deterministic scheduled-
	// Jacobi reference (exact for MP; loose for SM, whose asynchronous
	// reads race ahead nondeterministically, as on the real machine).
	RefErr float64
	// Residual is the max abs residual of A·x - b, normalized by the
	// diagonal — small once the iteration has converged.
	Residual float64
}

// problem holds the geometry and derived quantities shared by both
// versions. The full matrix is never materialized; coefficients come from
// the kernel, exactly as the applications recompute them.
type problem struct {
	n, m    int // bodies, elements per body
	nm      int
	pos     [][3]float64 // element positions (body-major)
	centers [][3]float64 // body centers
	nearCut float64      // refined-quadrature distance threshold
	diag    []float64    // diagonal (self) terms, made strictly dominant
	b       []float64    // right-hand side
	xtrue   []float64    // the solution b was built from
	// periods[p][q] is the update period between processor p and q
	// (1 = every iteration; distant pairs exchange less often).
	periods [][]int
}

// kernel is the off-diagonal interaction coefficient between elements i, j.
func (pr *problem) kernel(i, j int) float64 {
	dx := pr.pos[i][0] - pr.pos[j][0]
	dy := pr.pos[i][1] - pr.pos[j][1]
	dz := pr.pos[i][2] - pr.pos[j][2]
	return 1 / (4 * math.Pi * math.Sqrt(dx*dx+dy*dy+dz*dz))
}

func genProblem(par Params, procs int) *problem {
	pr := &problem{n: par.Bodies, m: par.Elems, nm: par.Bodies * par.Elems}
	rng := sim.NewRNG(par.Seed)
	// Bodies cluster into aggregates, as physical microstructures do: a
	// few cluster sites in the domain, bodies scattered tightly around
	// them. Close pairs need refined quadrature, so processors owning
	// denser clusters carry more work — the source of the load imbalance
	// the paper observes (the 80M-cycle barrier wait in MSE-SM, the same
	// wait folded into library time in MSE-MP).
	side := 40.0 * math.Cbrt(float64(par.Bodies))
	nClusters := par.Bodies/32 + 1
	sites := make([][3]float64, nClusters)
	for c := range sites {
		sites[c] = [3]float64{rng.Float64() * side, rng.Float64() * side, rng.Float64() * side}
	}
	centers := make([][3]float64, par.Bodies)
	for b := range centers {
		site := sites[rng.Intn(nClusters)]
		spread := side / 12
		centers[b] = [3]float64{
			site[0] + (rng.Float64()-0.5)*spread,
			site[1] + (rng.Float64()-0.5)*spread,
			site[2] + (rng.Float64()-0.5)*spread,
		}
	}
	pr.centers = centers
	pr.nearCut = side / 10
	pr.pos = make([][3]float64, pr.nm)
	for b := 0; b < par.Bodies; b++ {
		for e := 0; e < par.Elems; e++ {
			pr.pos[b*par.Elems+e] = [3]float64{
				centers[b][0] + rng.Float64(),
				centers[b][1] + rng.Float64(),
				centers[b][2] + rng.Float64(),
			}
		}
	}
	// Strictly dominant diagonal and a right-hand side with known solution.
	pr.diag = make([]float64, pr.nm)
	pr.xtrue = make([]float64, pr.nm)
	pr.b = make([]float64, pr.nm)
	for i := 0; i < pr.nm; i++ {
		sum := 0.0
		for j := 0; j < pr.nm; j++ {
			if j != i {
				sum += math.Abs(pr.kernel(i, j))
			}
		}
		pr.diag[i] = 2.5*sum + 0.1
		pr.xtrue[i] = 1 + 0.5*float64(i%9)
	}
	for i := 0; i < pr.nm; i++ {
		s := pr.diag[i] * pr.xtrue[i]
		for j := 0; j < pr.nm; j++ {
			if j != i {
				s += pr.kernel(i, j) * pr.xtrue[j]
			}
		}
		pr.b[i] = s
	}
	// Distance-based update schedule at processor-pair granularity: the
	// period is set by the closest pair of bodies owned by the two
	// processors.
	bpp := par.Bodies / procs
	pr.periods = make([][]int, procs)
	for p := 0; p < procs; p++ {
		pr.periods[p] = make([]int, procs)
		for q := 0; q < procs; q++ {
			if p == q {
				pr.periods[p][q] = 1
				continue
			}
			min := math.Inf(1)
			for bi := p * bpp; bi < (p+1)*bpp; bi++ {
				for bj := q * bpp; bj < (q+1)*bpp; bj++ {
					dx := centers[bi][0] - centers[bj][0]
					dy := centers[bi][1] - centers[bj][1]
					dz := centers[bi][2] - centers[bj][2]
					if d := math.Sqrt(dx*dx + dy*dy + dz*dz); d < min {
						min = d
					}
				}
			}
			switch {
			case min < side/2:
				pr.periods[p][q] = 1
			case min < 3*side/4:
				pr.periods[p][q] = 2
			default:
				pr.periods[p][q] = 4
			}
		}
	}
	return pr
}

// near reports whether bodies b and c are close enough to need refined
// quadrature (double the kernel work) — the physically motivated source of
// the load imbalance the paper observes.
func (pr *problem) near(b, c int) bool {
	if b == c {
		return true
	}
	dx := pr.centers[b][0] - pr.centers[c][0]
	dy := pr.centers[b][1] - pr.centers[c][1]
	dz := pr.centers[b][2] - pr.centers[c][2]
	return math.Sqrt(dx*dx+dy*dy+dz*dz) < pr.nearCut
}

// due reports whether p refreshes its snapshot of q's values at iteration t
// (1-based).
func (pr *problem) due(p, q, t int) bool {
	return (t-1)%pr.periods[p][q] == 0
}

// reference runs the scheduled asynchronous-Jacobi iteration sequentially
// with the bulk-synchronous staleness pattern (snapshots refreshed at
// iteration start with the previous iteration's published values) and
// returns the final vector. The MP version reproduces it exactly.
func (pr *problem) reference(procs, iters int) []float64 {
	nm := pr.nm
	x := make([]float64, nm)
	pub := make([]float64, nm) // published at the end of the prior iteration
	snap := make([][]float64, procs)
	for p := range snap {
		snap[p] = make([]float64, nm)
	}
	epp := nm / procs
	for t := 1; t <= iters; t++ {
		for p := 0; p < procs; p++ {
			for q := 0; q < procs; q++ {
				if pr.due(p, q, t) {
					copy(snap[p][q*epp:(q+1)*epp], pub[q*epp:(q+1)*epp])
				}
			}
		}
		next := make([]float64, nm)
		for p := 0; p < procs; p++ {
			for i := p * epp; i < (p+1)*epp; i++ {
				s := pr.b[i]
				for j := 0; j < nm; j++ {
					if j == i {
						continue
					}
					s -= pr.kernel(i, j) * snap[p][j]
				}
				next[i] = s / pr.diag[i]
			}
		}
		copy(x, next)
		copy(pub, x)
	}
	return x
}

func (o *Output) validate(pr *problem, ref []float64) {
	for i, v := range o.X {
		if d := math.Abs(v - ref[i]); d > o.RefErr {
			o.RefErr = d
		}
	}
	for i, v := range o.X {
		s := pr.diag[i] * v
		for j := 0; j < pr.nm; j++ {
			if j != i {
				s += pr.kernel(i, j) * o.X[j]
			}
		}
		if r := math.Abs(s-pr.b[i]) / pr.diag[i]; r > o.Residual {
			o.Residual = r
		}
	}
}
