package lcp

import (
	"math"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
	"repro/internal/snapshot"
)

// RunSM runs the synchronous shared-memory variant (LCP-SM): a single
// global solution vector in shared memory; each step every processor
// refreshes a private local copy from the global vector, sweeps against it,
// and publishes its portion back, with a reduction testing convergence —
// exactly the structure the paper describes ("processors compute their
// portion of the new solution vector into a local buffer. To update, they
// copy values from the local buffer into the global vector").
func RunSM(cfg cost.Config, par Params) *Output {
	return runSM(cfg, par, false)
}

// RunASM runs the asynchronous variant (ALCP-SM): new values are written
// directly into the global solution vector as they are computed, so other
// processors see them as soon as the coherence protocol delivers them;
// processors synchronize only every Sweeps sweeps for the convergence test.
func RunASM(cfg cost.Config, par Params) *Output {
	return runSM(cfg, par, true)
}

func runSM(cfg cost.Config, par Params, async bool) *Output {
	out := &Output{}
	pr := genProblem(par)
	procs := cfg.Procs
	rpp := rowsPerProc(par.N, procs)

	var (
		zg    memsim.FVec // the global solution vector
		stale *memsim.StaleVec
		red   *parmacs.Reduction
		done  memsim.IVec // convergence decision published by node 0
	)

	out.Res = machine.RunSM(cfg, parmacs.RoundRobin, func(nd *machine.SMNode) {
		me := nd.ID
		lo := me * rpp
		m := nd.Mem

		if me == 0 {
			zg = nd.RT.GMallocF(0, par.N)
			stale = memsim.NewStaleVec(nd.P.Engine(), &zg, procs)
			done = nd.RT.GMallocI(0, 1)
			red = parmacs.NewReduction(nd.RT)
			nd.RT.Create(nd.P)
		} else {
			nd.RT.WaitCreate(nd.P)
		}
		nd.Barrier()

		// Private matrix rows and workspaces.
		mvals := nd.AllocF(rpp * par.NNZ)
		mcols := nd.AllocI(rpp * par.NNZ)
		zloc := nd.AllocF(par.N) // local copy (synchronous variant)
		zprev := nd.AllocF(rpp)
		nd.OnState(func(enc *snapshot.Enc) {
			if me == 0 { // shared vectors, encoded once
				enc.F64s(zg.V)
				enc.I64s(done.V)
			}
			enc.F64s(zloc.V)
			enc.F64s(zprev.V)
		})
		for r := 0; r < rpp; r++ {
			gi := lo + r
			copy(mvals.V[r*par.NNZ:], pr.vals[gi])
			for k, c := range pr.cols[gi] {
				mcols.V[r*par.NNZ+k] = int64(c)
			}
			nd.Compute(int64(cSetup * par.NNZ))
		}
		mvals.WriteRange(m, 0, mvals.Len())
		mcols.WriteRange(m, 0, mcols.Len())
		// Initialize my portion of the global vector.
		zg.WriteRange(m, lo, lo+rpp)
		nd.Barrier()

		steps := 0
		for step := 1; step <= par.MaxSteps; step++ {
			steps = step
			for r := 0; r < rpp; r++ {
				zprev.V[r] = zg.V[lo+r]
			}
			zprev.WriteRange(m, 0, rpp)

			if async {
				// Sweep directly against the global vector: every remote
				// reference is a real shared access, invalidated afresh by
				// each producer — the producer-consumer pattern the
				// invalidation protocol handles so poorly.
				for sweep := 0; sweep < par.Sweeps; sweep++ {
					for r := 0; r < rpp; r++ {
						gi := lo + r
						mvals.ReadRange(m, r*par.NNZ, (r+1)*par.NNZ)
						mcols.ReadRange(m, r*par.NNZ, (r+1)*par.NNZ)
						// Values from other processors arrive with cache
						// staleness: each read sees what the cache holds,
						// refreshed only when an invalidation forced a miss.
						zi := stale.Get(m, gi)
						acc := pr.q[gi] + pr.diag[gi]*zi
						for k, c := range pr.cols[gi] {
							acc += pr.vals[gi][k] * stale.Get(m, int(c))
						}
						nz := zi - par.Omega*acc/pr.diag[gi]
						if nz < 0 {
							nz = 0
						}
						stale.Set(m, gi, nz)
						nd.Compute(cRow + int64(par.NNZ)*cElem)
					}
				}
			} else {
				// Sweep against "a local copy of the solution vector": own
				// entries live in a private buffer; remote entries are read
				// from the shared vector on demand. The first sweep's reads
				// miss (each block once — the owners' publishes invalidated
				// them at the end of the previous step) and later sweeps hit
				// the cached snapshot, which is exactly the local-copy
				// semantics. Demand fetching spreads the misses through the
				// sweep, so the directory sees little contention.
				for r := 0; r < rpp; r++ {
					zloc.V[lo+r] = zg.V[lo+r]
				}
				zloc.WriteRange(m, lo, lo+rpp)
				for sweep := 0; sweep < par.Sweeps; sweep++ {
					for r := 0; r < rpp; r++ {
						gi := lo + r
						mvals.ReadRange(m, r*par.NNZ, (r+1)*par.NNZ)
						mcols.ReadRange(m, r*par.NNZ, (r+1)*par.NNZ)
						zi := zloc.V[gi]
						acc := pr.q[gi] + pr.diag[gi]*zi
						for k, c := range pr.cols[gi] {
							ci := int(c)
							if ci >= lo && ci < lo+rpp {
								acc += pr.vals[gi][k] * zloc.V[ci]
							} else {
								acc += pr.vals[gi][k] * stale.Get(m, ci)
							}
						}
						nz := zi - par.Omega*acc/pr.diag[gi]
						if nz < 0 {
							nz = 0
						}
						zloc.V[gi] = nz
						nd.Compute(cRow + int64(par.NNZ)*cElem)
					}
				}
				// Publish: copy the local buffer into the global vector.
				zloc.ReadRange(m, lo, lo+rpp)
				for r := 0; r < rpp; r++ {
					zg.V[lo+r] = zloc.V[lo+r]
				}
				zg.WriteRange(m, lo, lo+rpp)
				nd.Compute(int64(rpp) * 2)
			}
			nd.Compute(cStep)

			// Convergence test (paper: synchronize every five iterations in
			// the asynchronous version — i.e. once per step here too).
			norm := 0.0
			for r := 0; r < rpp; r++ {
				norm += math.Abs(zg.V[lo+r] - zprev.V[r])
			}
			zprev.ReadRange(m, 0, rpp)
			nd.Compute(int64(rpp) * cNorm)
			total, _ := red.Reduce(m, norm, 0, parmacs.OpSum, parmacs.SyncCats)
			if me == 0 {
				d := int64(0)
				if total < par.Tol {
					d = 1
				}
				done.Set(m, 0, d)
			}
			nd.Barrier()
			if done.Get(m, 0) != 0 {
				break
			}
			if !async {
				// The synchronous variant needs all publishes complete
				// before the next refresh; the convergence barrier above
				// already provides that ordering.
				_ = step
			}
		}
		nd.Barrier()
		if me == 0 {
			out.Steps = steps
		}
	})

	if out.Res.Err == nil {
		zfinal := append([]float64(nil), zg.V...)
		out.Z = zfinal
		out.Residual = pr.validate(zfinal)
	}
	return out
}
