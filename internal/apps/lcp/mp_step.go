package lcp

import (
	"math"
	"math/bits"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// RunMPStep runs the synchronous LCP-MP variant in step (continuation)
// form: runMP's sync path rewritten as an explicit state machine,
// fingerprint-identical to the coroutine form. The asynchronous star
// variant (ALCP-MP) stays coroutine-only — its Drain-at-sweep-boundary
// polling is not ported.
func RunMPStep(cfg cost.Config, shape cmmd.Shape, par Params) *Output {
	out := &Output{}
	pr := genProblem(par)
	procs := cfg.Procs
	rpp := rowsPerProc(par.N, procs)
	logP := bits.Len(uint(procs)) - 1
	if 1<<logP != procs {
		panic("lcp: butterfly exchange needs a power-of-two processor count")
	}

	segs := make([][]float64, procs)

	out.Res = machine.NewMPStep(cfg, shape, func(nd *machine.MPNode) func(*sim.Proc) sim.StepStatus {
		s := newMPStep(nd, pr, par, rpp, logP, out, segs)
		return s.step
	}).Run()

	if out.Res.Err == nil {
		zfinal := make([]float64, par.N)
		for p := 0; p < procs; p++ {
			copy(zfinal[p*rpp:(p+1)*rpp], segs[p])
		}
		out.Z = zfinal
		out.Residual = pr.validate(zfinal)
	}
	return out
}

// Program-counter states of the LCP-MP step machine, in program order.
const (
	lmWriteVals = iota
	lmWriteCols
	lmWriteDiag
	lmWriteQ
	lmWriteZ
	lmBarrier0
	lmZPrev
	lmSweep
	lmPublish
	lmBfly
	lmNorm
	lmReduce
	lmBcast
	lmBarrier1
)

type mpStep struct {
	nd       *machine.MPNode
	pr       *problem
	par      Params
	rpp, lgP int
	lo       int
	out      *Output
	segs     [][]float64

	z, zprev     memsim.FVec
	mvals, mdiag memsim.FVec
	mq           memsim.FVec
	mcols        memsim.IVec
	bflyRecv     []*cmmd.RecvChannel

	pc     int
	stepNo int
	swp    int // sweep index within the step
	r      int // row index within the sweep
	sub    uint8
	bk     int // butterfly stage
	norm   float64
	done   float64

	cw   cmmd.ChanWriteStep
	poll cmmd.PollStep
	rs   cmmd.ReduceStep
	bs   cmmd.BcastStep
}

// newMPStep does the host-side setup (allocations, private matrix copies
// with their setup charges, and the butterfly channels) — everything the
// coroutine form runs before its first memory-system operation.
func newMPStep(nd *machine.MPNode, pr *problem, par Params, rpp, logP int, out *Output, segs [][]float64) *mpStep {
	me := nd.ID
	s := &mpStep{nd: nd, pr: pr, par: par, rpp: rpp, lgP: logP, lo: me * rpp,
		out: out, segs: segs, stepNo: 1}

	s.z = nd.AllocF(par.N)
	s.zprev = nd.AllocF(rpp)
	nd.OnState(func(enc *snapshot.Enc) {
		enc.F64s(s.z.V)
		enc.F64s(s.zprev.V)
	})
	s.mvals = nd.AllocF(rpp * par.NNZ)
	s.mcols = nd.AllocI(rpp * par.NNZ)
	s.mdiag = nd.AllocF(rpp)
	s.mq = nd.AllocF(rpp)
	for r := 0; r < rpp; r++ {
		gi := s.lo + r
		copy(s.mvals.V[r*par.NNZ:], pr.vals[gi])
		for k, c := range pr.cols[gi] {
			s.mcols.V[r*par.NNZ+k] = int64(c)
		}
		s.mdiag.V[r] = pr.diag[gi]
		s.mq.V[r] = pr.q[gi]
		nd.Compute(int64(cSetup * par.NNZ))
	}
	for k := 0; k < logP; k++ {
		partner := me ^ (1 << k)
		segStart := (partner >> k) << k
		s.bflyRecv = append(s.bflyRecv,
			nd.EP.OpenRecvChannelF(&s.z, segStart*rpp, (segStart+(1<<k))*rpp))
	}
	return s
}

func (s *mpStep) step(p *sim.Proc) sim.StepStatus {
	nd := s.nd
	m := nd.Mem
	me := nd.ID
	par, rpp, lo := s.par, s.rpp, s.lo
	for {
		switch s.pc {
		case lmWriteVals:
			if !s.mvals.StepWriteRange(m, 0, s.mvals.Len()) {
				return sim.StepYield
			}
			s.pc = lmWriteCols
		case lmWriteCols:
			if !s.mcols.StepWriteRange(m, 0, s.mcols.Len()) {
				return sim.StepYield
			}
			s.pc = lmWriteDiag
		case lmWriteDiag:
			if !s.mdiag.StepWriteRange(m, 0, rpp) {
				return sim.StepYield
			}
			s.pc = lmWriteQ
		case lmWriteQ:
			if !s.mq.StepWriteRange(m, 0, rpp) {
				return sim.StepYield
			}
			s.pc = lmWriteZ
		case lmWriteZ:
			if !s.z.StepWriteRange(m, 0, par.N) {
				return sim.StepYield
			}
			s.pc = lmBarrier0
		case lmBarrier0:
			if !nd.EP.StepBarrier() {
				return sim.StepYield
			}
			s.pc = lmZPrev
		case lmZPrev:
			for r := 0; r < rpp; r++ { // idempotent: z stable until the sweeps
				s.zprev.V[r] = s.z.V[lo+r]
			}
			if !s.zprev.StepWriteRange(m, 0, rpp) {
				return sim.StepYield
			}
			s.swp, s.r, s.sub = 0, 0, 0
			s.pc = lmSweep
		case lmSweep:
			if !s.stepSweeps() {
				return sim.StepYield
			}
			s.pc = lmPublish
		case lmPublish:
			if !s.z.StepWriteRange(m, lo, lo+rpp) {
				return sim.StepYield
			}
			nd.Compute(cStep)
			s.bk, s.sub = 0, 0
			s.pc = lmBfly
		case lmBfly:
			if !s.stepButterfly() {
				return sim.StepYield
			}
			s.pc = lmNorm
		case lmNorm:
			if !s.zprev.StepReadRange(m, 0, rpp) {
				return sim.StepYield
			}
			norm := 0.0
			for r := 0; r < rpp; r++ {
				norm += math.Abs(s.z.V[lo+r] - s.zprev.V[r])
			}
			s.norm = norm
			nd.Compute(int64(rpp) * cNorm)
			s.pc = lmReduce
		case lmReduce:
			total, _, ok := nd.Comm.StepReduce(&s.rs, 0, s.norm, 0, cmmd.OpSum)
			if !ok {
				return sim.StepYield
			}
			s.done = 0
			if me == 0 && total < par.Tol {
				s.done = 1
			}
			s.pc = lmBcast
		case lmBcast:
			v, ok := nd.Comm.StepBcast(&s.bs, 0, s.done)
			if !ok {
				return sim.StepYield
			}
			if v == 0 && s.stepNo < par.MaxSteps {
				s.stepNo++
				s.pc = lmZPrev
				continue
			}
			s.pc = lmBarrier1
		case lmBarrier1:
			if !nd.EP.StepBarrier() {
				return sim.StepYield
			}
			s.segs[me] = append([]float64(nil), s.z.V[lo:lo+rpp]...)
			if me == 0 {
				s.out.Steps = s.stepNo
			}
			return sim.StepDone
		}
	}
}

// stepSweeps mirrors the sync sweep loop: per row, stream the matrix row
// from local memory, then apply the projected SOR update to the host-side
// local copy exactly once, on the completing access.
func (s *mpStep) stepSweeps() bool {
	m := s.nd.Mem
	nnz := s.par.NNZ
	for {
		if s.r >= s.rpp {
			s.r = 0
			s.swp++
			if s.swp >= s.par.Sweeps {
				return true
			}
		}
		switch s.sub {
		case 0:
			if !s.mvals.StepReadRange(m, s.r*nnz, (s.r+1)*nnz) {
				return false
			}
			s.sub = 1
		case 1:
			if !s.mcols.StepReadRange(m, s.r*nnz, (s.r+1)*nnz) {
				return false
			}
			gi := s.lo + s.r
			s.z.V[gi] = s.pr.sweepRow(gi, s.z.V[gi], s.z.V, s.par.Omega)
			s.nd.Compute(cRow + int64(nnz)*cElem)
			s.r++
			s.sub = 0
		}
	}
}

// stepButterfly mirrors the log2(P) all-gather: at each stage send my
// current 2^k-proc segment to the partner and wait for the partner's.
func (s *mpStep) stepButterfly() bool {
	nd := s.nd
	me := nd.ID
	rpp := s.rpp
	for {
		if s.bk >= s.lgP {
			return true
		}
		k := s.bk
		switch s.sub {
		case 0:
			partner := me ^ (1 << k)
			segStart := ((me >> k) << k) * rpp
			segLen := (1 << k) * rpp
			if !nd.EP.StepChannelWriteF(&s.cw, partner, k, &s.z, segStart, segStart+segLen) {
				return false
			}
			s.sub = 1
		case 1:
			if !nd.EP.StepWaitChannel(&s.poll, s.bflyRecv[k], int64(s.stepNo)) {
				return false
			}
			s.bk++
			s.sub = 0
		}
	}
}
