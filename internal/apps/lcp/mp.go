package lcp

import (
	"math"
	"math/bits"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/snapshot"
)

// RunMP runs the synchronous message-passing variant (LCP-MP): each
// processor keeps a full local copy of the solution vector; after the
// sweeps of a step, local copies are reconciled with log2(P) point-to-point
// butterfly exchanges across pre-established CMMD channels, and a reduction
// tests convergence.
func RunMP(cfg cost.Config, shape cmmd.Shape, par Params) *Output {
	return runMP(cfg, shape, par, false)
}

// RunAMP runs the asynchronous variant (ALCP-MP): bulk updates are sent to
// every other node (a star) after each individual sweep, and applied
// whenever they arrive; processors synchronize only for the convergence
// test. Faster convergence in steps, far more communication.
func RunAMP(cfg cost.Config, shape cmmd.Shape, par Params) *Output {
	return runMP(cfg, shape, par, true)
}

func runMP(cfg cost.Config, shape cmmd.Shape, par Params, async bool) *Output {
	out := &Output{}
	pr := genProblem(par)
	procs := cfg.Procs
	rpp := rowsPerProc(par.N, procs)
	logP := bits.Len(uint(procs)) - 1
	if !async && 1<<logP != procs {
		panic("lcp: butterfly exchange needs a power-of-two processor count")
	}

	segs := make([][]float64, procs) // final owner segments, for validation

	out.Res = machine.RunMP(cfg, shape, func(nd *machine.MPNode) {
		me := nd.ID
		lo := me * rpp
		m := nd.Mem

		// Full local copy of the solution vector, plus the previous step's
		// own segment for the convergence norm.
		z := nd.AllocF(par.N)
		zprev := nd.AllocF(rpp)
		nd.OnState(func(enc *snapshot.Enc) {
			enc.F64s(z.V)
			enc.F64s(zprev.V)
		})
		// Private copies of my matrix rows (values, columns, diagonal, q).
		mvals := nd.AllocF(rpp * par.NNZ)
		mcols := nd.AllocI(rpp * par.NNZ)
		mdiag := nd.AllocF(rpp)
		mq := nd.AllocF(rpp)
		for r := 0; r < rpp; r++ {
			gi := lo + r
			copy(mvals.V[r*par.NNZ:], pr.vals[gi])
			for k, c := range pr.cols[gi] {
				mcols.V[r*par.NNZ+k] = int64(c)
			}
			mdiag.V[r] = pr.diag[gi]
			mq.V[r] = pr.q[gi]
			nd.Compute(int64(cSetup * par.NNZ))
		}
		mvals.WriteRange(m, 0, mvals.Len())
		mcols.WriteRange(m, 0, mcols.Len())
		mdiag.WriteRange(m, 0, rpp)
		mq.WriteRange(m, 0, rpp)
		z.WriteRange(m, 0, par.N)

		// Pre-establish channels (static communication, as the paper's
		// LCP-MP: "point-to-point exchanges across CMMD channels").
		var bflyRecv []*cmmd.RecvChannel
		var starRecv []*cmmd.RecvChannel
		if async {
			// One channel per peer, receiving directly into that peer's
			// segment of my local copy. Opened in peer order, so channel
			// ids agree across nodes by symmetry.
			for peer := 0; peer < procs; peer++ {
				if peer == me {
					continue
				}
				starRecv = append(starRecv,
					nd.EP.OpenRecvChannelF(&z, peer*rpp, (peer+1)*rpp))
			}
		} else {
			// Butterfly: at stage k I receive my partner's 2^k-proc
			// segment.
			for k := 0; k < logP; k++ {
				partner := me ^ (1 << k)
				segStart := (partner >> k) << k // in proc units
				bflyRecv = append(bflyRecv,
					nd.EP.OpenRecvChannelF(&z, segStart*rpp, (segStart+(1<<k))*rpp))
			}
		}
		nd.Barrier()

		// starChannelID returns my segment's channel id on node peer (the
		// same symmetric opening order as above).
		starChannelID := func(peer int) int {
			if me < peer {
				return me
			}
			return me - 1
		}

		steps := 0
		for step := 1; step <= par.MaxSteps; step++ {
			steps = step
			for r := 0; r < rpp; r++ {
				zprev.V[r] = z.V[lo+r]
			}
			zprev.WriteRange(m, 0, rpp)

			for sweep := 0; sweep < par.Sweeps; sweep++ {
				for r := 0; r < rpp; r++ {
					gi := lo + r
					// The matrix row streams from local memory; the solution
					// entries it references are cache-resident (the paper's
					// tiny local-miss counts confirm this working set fits).
					mvals.ReadRange(m, r*par.NNZ, (r+1)*par.NNZ)
					mcols.ReadRange(m, r*par.NNZ, (r+1)*par.NNZ)
					z.V[gi] = pr.sweepRow(gi, z.V[gi], z.V, par.Omega)
					nd.Compute(cRow + int64(par.NNZ)*cElem)
				}
				if async {
					// Star: broadcast my fresh segment to everyone, and
					// apply whatever has arrived. Updates are serviced at
					// sweep boundaries — the polling granularity of the
					// compute loop — so a peer's values take one to two
					// sweeps to take effect end-to-end.
					for peer := 0; peer < procs; peer++ {
						if peer == me {
							continue
						}
						nd.EP.ChannelWriteF(peer, starChannelID(peer), &z, lo, lo+rpp)
					}
					nd.AM.Drain()
				}
			}
			z.WriteRange(m, lo, lo+rpp)
			nd.Compute(cStep)

			if !async {
				// Butterfly all-gather of the updated local copies.
				for k := 0; k < logP; k++ {
					partner := me ^ (1 << k)
					segStart := ((me >> k) << k) * rpp
					segLen := (1 << k) * rpp
					nd.EP.ChannelWriteF(partner, k, &z, segStart, segStart+segLen)
					nd.EP.WaitChannel(bflyRecv[k], int64(step))
				}
			}

			// Convergence: global sum of |dz| over own segments.
			norm := 0.0
			for r := 0; r < rpp; r++ {
				norm += math.Abs(z.V[lo+r] - zprev.V[r])
			}
			zprev.ReadRange(m, 0, rpp)
			nd.Compute(int64(rpp) * cNorm)
			total, _ := nd.Comm.Reduce(0, norm, 0, cmmd.OpSum)
			done := 0.0
			if me == 0 && total < par.Tol {
				done = 1
			}
			if nd.Comm.Bcast(0, done) != 0 {
				break
			}
		}
		if async {
			// Drain in-flight updates so every node quiesces.
			nd.Barrier()
			nd.AM.Drain()
		}
		nd.Barrier()
		segs[me] = append([]float64(nil), z.V[lo:lo+rpp]...)
		if me == 0 {
			out.Steps = steps
		}
	})

	// Reconstruct the global solution from the authoritative owner
	// segments and validate complementarity (skipped on an aborted run).
	if out.Res.Err == nil {
		zfinal := make([]float64, par.N)
		for p := 0; p < procs; p++ {
			copy(zfinal[p*rpp:(p+1)*rpp], segs[p])
		}
		out.Z = zfinal
		out.Residual = pr.validate(zfinal)
	}
	return out
}
