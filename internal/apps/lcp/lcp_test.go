package lcp

import (
	"testing"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/stats"
)

func smallParams() Params {
	return Params{N: 256, NNZ: 16, Sweeps: 5, MaxSteps: 200, Tol: 1e-6, Omega: 1.0, LocalFrac: 0.5, DiagFactor: 1.2, Seed: 5}
}

func TestProblemGeneratorProperties(t *testing.T) {
	p := smallParams()
	pr := genProblem(p)
	for i := 0; i < p.N; i++ {
		if len(pr.cols[i]) != p.NNZ {
			t.Fatalf("row %d has %d nonzeros", i, len(pr.cols[i]))
		}
		sum := 0.0
		for k, c := range pr.cols[i] {
			if int(c) == i || int(c) < 0 || int(c) >= p.N {
				t.Fatalf("row %d col %d invalid", i, c)
			}
			if pr.vals[i][k] > 0 {
				t.Fatalf("off-diagonal %d,%d positive", i, k)
			}
			sum += -pr.vals[i][k]
		}
		if pr.diag[i] <= sum {
			t.Fatalf("row %d not strictly diagonally dominant", i)
		}
	}
}

func TestLCPMPConverges(t *testing.T) {
	out := RunMP(cost.Default(4), cmmd.LopSided, smallParams())
	if out.Residual > 1e-4 {
		t.Errorf("complementarity residual %v", out.Residual)
	}
	if out.Steps == 0 || out.Steps >= smallParams().MaxSteps {
		t.Errorf("did not converge: %d steps", out.Steps)
	}
}

func TestLCPSMConverges(t *testing.T) {
	out := RunSM(cost.Default(4), smallParams())
	if out.Residual > 1e-4 {
		t.Errorf("complementarity residual %v", out.Residual)
	}
	if out.Steps == 0 || out.Steps >= smallParams().MaxSteps {
		t.Errorf("did not converge: %d steps", out.Steps)
	}
}

func TestLCPMPandSMAgree(t *testing.T) {
	mp := RunMP(cost.Default(4), cmmd.LopSided, smallParams())
	sm := RunSM(cost.Default(4), smallParams())
	if mp.Steps != sm.Steps {
		t.Logf("steps differ (mp %d, sm %d) — acceptable, same algorithm different interleave",
			mp.Steps, sm.Steps)
	}
	for i := range mp.Z {
		d := mp.Z[i] - sm.Z[i]
		if d > 1e-5 || d < -1e-5 {
			t.Fatalf("solutions diverge at %d: %v vs %v", i, mp.Z[i], sm.Z[i])
		}
	}
}

func TestAsyncConvergesInFewerOrEqualSteps(t *testing.T) {
	p := smallParams()
	syncMP := RunMP(cost.Default(4), cmmd.LopSided, p)
	asyncMP := RunAMP(cost.Default(4), cmmd.LopSided, p)
	if asyncMP.Steps > syncMP.Steps {
		t.Errorf("ALCP-MP took %d steps, sync %d — fresher values should not hurt",
			asyncMP.Steps, syncMP.Steps)
	}
	if asyncMP.Residual > 1e-4 {
		t.Errorf("ALCP-MP residual %v", asyncMP.Residual)
	}
	syncSM := RunSM(cost.Default(4), p)
	asyncSM := RunASM(cost.Default(4), p)
	if asyncSM.Steps > syncSM.Steps {
		t.Errorf("ALCP-SM took %d steps, sync %d", asyncSM.Steps, syncSM.Steps)
	}
	if asyncSM.Residual > 1e-4 {
		t.Errorf("ALCP-SM residual %v", asyncSM.Residual)
	}
}

func TestAsyncCommunicatesMore(t *testing.T) {
	p := smallParams()
	syncMP := RunMP(cost.Default(4), cmmd.LopSided, p)
	asyncMP := RunAMP(cost.Default(4), cmmd.LopSided, p)
	sCW := syncMP.Res.Summary.CountsAll(stats.CntChannelWrites)
	aCW := asyncMP.Res.Summary.CountsAll(stats.CntChannelWrites)
	if aCW <= sCW {
		t.Errorf("async channel writes %v should exceed sync %v", aCW, sCW)
	}
	sB := syncMP.Res.Summary.CountsAll(stats.CntBytesData)
	aB := asyncMP.Res.Summary.CountsAll(stats.CntBytesData)
	if aB <= sB {
		t.Errorf("async data bytes %v should exceed sync %v", aB, sB)
	}

	syncSM := RunSM(cost.Default(4), p)
	asyncSM := RunASM(cost.Default(4), p)
	sMiss := syncSM.Res.Summary.CountsAll(stats.CntSharedMissLocal) +
		syncSM.Res.Summary.CountsAll(stats.CntSharedMissRemote)
	aMiss := asyncSM.Res.Summary.CountsAll(stats.CntSharedMissLocal) +
		asyncSM.Res.Summary.CountsAll(stats.CntSharedMissRemote)
	if aMiss <= sMiss {
		t.Errorf("async shared misses %v should exceed sync %v", aMiss, sMiss)
	}
}

func TestLCPDeterminism(t *testing.T) {
	a := RunSM(cost.Default(4), smallParams())
	b := RunSM(cost.Default(4), smallParams())
	if a.Res.Elapsed != b.Res.Elapsed || a.Steps != b.Steps {
		t.Errorf("nondeterministic: (%d, %d) vs (%d, %d)",
			a.Res.Elapsed, a.Steps, b.Res.Elapsed, b.Steps)
	}
}

func TestLCPMPCategoryShape(t *testing.T) {
	out := RunMP(cost.Default(8), cmmd.LopSided, smallParams())
	s := out.Res.Summary
	if s.CyclesAll(stats.Comp) == 0 || s.CyclesAll(stats.LibComp) == 0 {
		t.Error("missing computation or library time")
	}
	// Computation should dominate (paper: 73%).
	if s.CyclesAll(stats.Comp) < s.CyclesAll(stats.LibComp) {
		t.Errorf("computation (%v) should dominate library time (%v)",
			s.CyclesAll(stats.Comp), s.CyclesAll(stats.LibComp))
	}
}
