// Package lcp implements the paper's linear complementarity benchmark
// (§5.4): a multi-sweep successive over-relaxation solver (De Leone,
// Mangasarian & Shiau) for the problem
//
//	Mz + q >= 0,  z >= 0,  z'(Mz + q) = 0,
//
// with a sparse M of uniform non-zeros per row and 4096 variables. The
// matrix rows are statically divided into equal blocks. At each step a
// processor performs a fixed number of projected Gauss-Seidel sweeps on its
// rows against a local copy of the solution vector, then the global solution
// vector is updated and a reduction tests convergence.
//
// Four variants reproduce the paper's Tables 18-23:
//
//   - LCP-MP: local copies exchanged once per step by log(P) point-to-point
//     butterfly exchanges over CMMD channels.
//   - LCP-SM: a single global solution vector; processors sweep against a
//     refreshed local copy and publish their portion at step end.
//   - ALCP-MP: bulk updates sent asynchronously to every other node (star)
//     after each sweep.
//   - ALCP-SM: new values written directly to the global vector as computed.
//
// The asynchronous variants converge in fewer steps but communicate far
// more — the tradeoff the paper measures.
package lcp

import (
	"math"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Params configures an LCP run.
type Params struct {
	// N is the number of variables (the paper uses 4096).
	N int
	// NNZ is the number of off-diagonal non-zeros per row (uniform).
	NNZ int
	// Sweeps is the number of Gauss-Seidel sweeps per step (the paper: 5).
	Sweeps int
	// MaxSteps bounds the outer iteration.
	MaxSteps int
	// Tol is the convergence threshold on the step-to-step change norm.
	Tol float64
	// Omega is the SOR relaxation factor.
	Omega float64
	// LocalFrac is the fraction of each row's non-zeros clustered near the
	// diagonal (within the row's own processor block); the rest are uniform
	// over all columns. The split controls how much convergence depends on
	// cross-processor value freshness — the lever behind the paper's
	// synchronous-vs-asynchronous step counts (43 vs 34).
	LocalFrac float64
	// DiagFactor scales the diagonal relative to the row's off-diagonal
	// mass (> 1 for strict dominance). Weaker dominance slows the global
	// Gauss-Seidel rate and shrinks the asynchronous variant's advantage.
	DiagFactor float64
	// Seed drives the deterministic problem generator.
	Seed uint64
}

// DefaultParams returns the paper's problem size.
func DefaultParams() Params {
	return Params{N: 4096, NNZ: 64, Sweeps: 5, MaxSteps: 200, Tol: 1e-6, Omega: 1.0,
		LocalFrac: 0.5, DiagFactor: 1.2, Seed: 1}
}

// Calibrated computation costs (cycles), shared by all four variants.
const (
	cElem  = 20  // one multiply-add against a sparse row element
	cRow   = 150 // per-row overhead: projection, diagonal divide, bookkeeping
	cStep  = 400 // per-step bookkeeping
	cNorm  = 8   // per-element contribution to the convergence norm
	cSetup = 30  // per-element problem generation
)

// Output carries the simulation result and validation data.
type Output struct {
	Res   *machine.Result
	Steps int // outer steps until convergence (paper: 43 sync, 34-35 async)
	// Z is the computed solution.
	Z []float64
	// Complementarity diagnostics: z >= -ZTol always holds by construction;
	// Residual is max over i of the violation of min(z_i, (Mz+q)_i) = 0.
	Residual float64
}

// problem is the shared sparse system, generated identically for every
// variant.
type problem struct {
	n, nnz int
	cols   [][]int32   // off-diagonal column indices per row
	vals   [][]float64 // off-diagonal values per row
	diag   []float64
	q      []float64
}

// genProblem builds a strictly diagonally dominant sparse M (so projected
// SOR converges) with uniform non-zeros per row, and a q that makes the
// solution non-trivial (a mix of active and inactive constraints).
func genProblem(p Params) *problem {
	pr := &problem{n: p.N, nnz: p.NNZ}
	pr.cols = make([][]int32, p.N)
	pr.vals = make([][]float64, p.N)
	pr.diag = make([]float64, p.N)
	pr.q = make([]float64, p.N)
	for i := 0; i < p.N; i++ {
		rng := sim.NewRNG(p.Seed ^ (uint64(i)+7)*0x9E3779B97F4A7C15)
		cols := make([]int32, p.NNZ)
		vals := make([]float64, p.NNZ)
		sum := 0.0
		nLocal := int(p.LocalFrac * float64(p.NNZ))
		for k := 0; k < p.NNZ; k++ {
			// A LocalFrac share of positions cluster near the diagonal; the
			// rest are uniform (the paper states only a uniform non-zero
			// count per row).
			var c int
			if k < nLocal {
				span := 64
				c = i + rng.Intn(2*span+1) - span
				c = ((c % p.N) + p.N) % p.N
				if c == i {
					c = (c + 1) % p.N
				}
			} else {
				c = rng.Intn(p.N - 1)
				if c >= i {
					c++
				}
			}
			v := -(rng.Float64() * 0.5)
			cols[k] = int32(c)
			vals[k] = v
			sum += math.Abs(v)
		}
		pr.cols[i] = cols
		pr.vals[i] = vals
		// Strict diagonal dominance with a margin chosen so the synchronous
		// multi-sweep scheme converges in a few tens of steps, as in the
		// paper (43 steps): per-step contraction is bounded by the
		// off-diagonal/diagonal ratio because cross-processor values are a
		// step stale.
		pr.diag[i] = p.DiagFactor*sum + 0.5
		if rng.Float64() < 0.7 {
			pr.q[i] = -rng.Float64() // active constraint: z_i > 0
		} else {
			pr.q[i] = rng.Float64() // inactive: z_i = 0
		}
	}
	return pr
}

// sweepRow performs the projected SOR update for row i against z (read) and
// returns the new z_i.
func (pr *problem) sweepRow(i int, zi float64, z []float64, omega float64) float64 {
	s := pr.q[i] + pr.diag[i]*zi
	cols, vals := pr.cols[i], pr.vals[i]
	for k := range cols {
		s += vals[k] * z[cols[k]]
	}
	nz := zi - omega*s/pr.diag[i]
	if nz < 0 {
		nz = 0
	}
	return nz
}

// validate computes the complementarity residual of z.
func (pr *problem) validate(z []float64) float64 {
	worst := 0.0
	for i := 0; i < pr.n; i++ {
		w := pr.q[i] + pr.diag[i]*z[i]
		for k := range pr.cols[i] {
			w += pr.vals[i][k] * z[pr.cols[i][k]]
		}
		// Complementarity: min(z_i, w_i) should be 0.
		v := math.Min(z[i], w)
		if math.Abs(v) > worst {
			worst = math.Abs(v)
		}
		if z[i] < 0 {
			worst = math.Inf(1)
		}
	}
	return worst
}

func rowsPerProc(n, procs int) int {
	if n%procs != 0 {
		panic("lcp: N must be divisible by the processor count")
	}
	return n / procs
}
