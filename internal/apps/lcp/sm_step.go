package lcp

import (
	"math"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// lcpSMShared is the shared problem state established by node 0.
type lcpSMShared struct {
	zg    memsim.FVec
	stale *memsim.StaleVec
	red   *parmacs.Reduction
	done  memsim.IVec
}

// RunSMStep runs the synchronous LCP-SM variant in step (continuation)
// form: runSM's sync path rewritten as an explicit state machine,
// fingerprint-identical to the coroutine form. The asynchronous variant
// (ALCP-SM) stays coroutine-only.
func RunSMStep(cfg cost.Config, par Params) *Output {
	out := &Output{}
	pr := genProblem(par)
	procs := cfg.Procs
	rpp := rowsPerProc(par.N, procs)

	var sh lcpSMShared

	out.Res = machine.NewSMStep(cfg, parmacs.RoundRobin, func(nd *machine.SMNode) func(*sim.Proc) sim.StepStatus {
		s := newSMStep(nd, pr, par, rpp, out, &sh)
		return s.step
	}).Run()

	if out.Res.Err == nil {
		zfinal := append([]float64(nil), sh.zg.V...)
		out.Z = zfinal
		out.Residual = pr.validate(zfinal)
	}
	return out
}

// Program-counter states of the LCP-SM step machine, in program order.
const (
	lsCreate = iota
	lsBarrier0
	lsWriteVals
	lsWriteCols
	lsWriteZg
	lsBarrier1
	lsZPrev
	lsRefresh
	lsSweep
	lsPubRead
	lsPubWrite
	lsNorm
	lsReduce
	lsDoneSet
	lsBarrier2
	lsDoneGet
	lsBarrier3
)

type smStep struct {
	nd  *machine.SMNode
	pr  *problem
	par Params
	rpp int
	lo  int
	out *Output
	sh  *lcpSMShared

	mvals, zloc memsim.FVec
	zprev       memsim.FVec
	mcols       memsim.IVec

	pc     int
	stepNo int
	swp    int
	r      int
	sub    uint8
	k      int
	zi     float64
	acc    float64
	norm   float64
	total  float64

	rds parmacs.RedStep
}

// newSMStep does the host-side setup. Node 0 also establishes the shared
// vectors here — its first dispatch; other nodes touch sh only after their
// StepWaitCreate completes, which node 0's Create must precede.
func newSMStep(nd *machine.SMNode, pr *problem, par Params, rpp int, out *Output, sh *lcpSMShared) *smStep {
	me := nd.ID
	s := &smStep{nd: nd, pr: pr, par: par, rpp: rpp, lo: me * rpp,
		out: out, sh: sh, stepNo: 1}
	if me == 0 {
		sh.zg = nd.RT.GMallocF(0, par.N)
		sh.stale = memsim.NewStaleVec(nd.P.Engine(), &sh.zg, nd.Cfg.Procs)
		sh.done = nd.RT.GMallocI(0, 1)
		sh.red = parmacs.NewReduction(nd.RT)
	}
	s.mvals = nd.AllocF(rpp * par.NNZ)
	s.mcols = nd.AllocI(rpp * par.NNZ)
	s.zloc = nd.AllocF(par.N)
	s.zprev = nd.AllocF(rpp)
	return s
}

func (s *smStep) step(p *sim.Proc) sim.StepStatus {
	nd, sh := s.nd, s.sh
	m := nd.Mem
	me := nd.ID
	par, rpp, lo := s.par, s.rpp, s.lo
	for {
		switch s.pc {
		case lsCreate:
			if me == 0 {
				nd.RT.Create(p)
			} else if !nd.RT.StepWaitCreate(p) {
				return sim.StepYield
			}
			s.pc = lsBarrier0
		case lsBarrier0:
			if !nd.RT.StepBarrier(p) {
				return sim.StepYield
			}
			// Same simulated point as the coroutine form's registration.
			nd.OnState(func(enc *snapshot.Enc) {
				if me == 0 {
					enc.F64s(sh.zg.V)
					enc.I64s(sh.done.V)
				}
				enc.F64s(s.zloc.V)
				enc.F64s(s.zprev.V)
			})
			for r := 0; r < rpp; r++ {
				gi := lo + r
				copy(s.mvals.V[r*par.NNZ:], s.pr.vals[gi])
				for k, c := range s.pr.cols[gi] {
					s.mcols.V[r*par.NNZ+k] = int64(c)
				}
				nd.Compute(int64(cSetup * par.NNZ))
			}
			s.pc = lsWriteVals
		case lsWriteVals:
			if !s.mvals.StepWriteRange(m, 0, s.mvals.Len()) {
				return sim.StepYield
			}
			s.pc = lsWriteCols
		case lsWriteCols:
			if !s.mcols.StepWriteRange(m, 0, s.mcols.Len()) {
				return sim.StepYield
			}
			s.pc = lsWriteZg
		case lsWriteZg:
			if !sh.zg.StepWriteRange(m, lo, lo+rpp) {
				return sim.StepYield
			}
			s.pc = lsBarrier1
		case lsBarrier1:
			if !nd.RT.StepBarrier(p) {
				return sim.StepYield
			}
			s.pc = lsZPrev
		case lsZPrev:
			for r := 0; r < rpp; r++ { // idempotent: my zg segment is stable here
				s.zprev.V[r] = sh.zg.V[lo+r]
			}
			if !s.zprev.StepWriteRange(m, 0, rpp) {
				return sim.StepYield
			}
			s.pc = lsRefresh
		case lsRefresh:
			for r := 0; r < rpp; r++ {
				s.zloc.V[lo+r] = sh.zg.V[lo+r]
			}
			if !s.zloc.StepWriteRange(m, lo, lo+rpp) {
				return sim.StepYield
			}
			s.swp, s.r, s.sub = 0, 0, 0
			s.pc = lsSweep
		case lsSweep:
			if !s.stepSweeps() {
				return sim.StepYield
			}
			s.pc = lsPubRead
		case lsPubRead:
			if !s.zloc.StepReadRange(m, lo, lo+rpp) {
				return sim.StepYield
			}
			s.pc = lsPubWrite
		case lsPubWrite:
			for r := 0; r < rpp; r++ { // idempotent: zloc is stable here
				sh.zg.V[lo+r] = s.zloc.V[lo+r]
			}
			if !sh.zg.StepWriteRange(m, lo, lo+rpp) {
				return sim.StepYield
			}
			nd.Compute(int64(rpp) * 2)
			nd.Compute(cStep)
			s.pc = lsNorm
		case lsNorm:
			if !s.zprev.StepReadRange(m, 0, rpp) {
				return sim.StepYield
			}
			norm := 0.0
			for r := 0; r < rpp; r++ {
				norm += math.Abs(sh.zg.V[lo+r] - s.zprev.V[r])
			}
			s.norm = norm
			nd.Compute(int64(rpp) * cNorm)
			s.pc = lsReduce
		case lsReduce:
			total, _, ok := sh.red.StepReduce(&s.rds, m, s.norm, 0, parmacs.OpSum, parmacs.SyncCats)
			if !ok {
				return sim.StepYield
			}
			s.total = total
			s.pc = lsDoneSet
		case lsDoneSet:
			if me == 0 {
				d := int64(0)
				if s.total < par.Tol {
					d = 1
				}
				if !sh.done.StepSet(m, 0, d) {
					return sim.StepYield
				}
			}
			s.pc = lsBarrier2
		case lsBarrier2:
			if !nd.RT.StepBarrier(p) {
				return sim.StepYield
			}
			s.pc = lsDoneGet
		case lsDoneGet:
			v, ok := sh.done.StepGet(m, 0)
			if !ok {
				return sim.StepYield
			}
			if v == 0 && s.stepNo < par.MaxSteps {
				s.stepNo++
				s.pc = lsZPrev
				continue
			}
			s.pc = lsBarrier3
		case lsBarrier3:
			if !nd.RT.StepBarrier(p) {
				return sim.StepYield
			}
			if me == 0 {
				s.out.Steps = s.stepNo
			}
			return sim.StepDone
		}
	}
}

// stepSweeps mirrors the sync sweep loops: own entries come from the
// private buffer; remote entries are demand-fetched from the shared vector
// with cache staleness. The buffer mutates exactly once per row, after the
// row's last access completes.
func (s *smStep) stepSweeps() bool {
	m := s.nd.Mem
	par, lo := s.par, s.lo
	nnz := par.NNZ
	for {
		if s.r >= s.rpp {
			s.r = 0
			s.swp++
			if s.swp >= par.Sweeps {
				return true
			}
		}
		gi := lo + s.r
		switch s.sub {
		case 0:
			if !s.mvals.StepReadRange(m, s.r*nnz, (s.r+1)*nnz) {
				return false
			}
			s.sub = 1
		case 1:
			if !s.mcols.StepReadRange(m, s.r*nnz, (s.r+1)*nnz) {
				return false
			}
			s.zi = s.zloc.V[gi]
			s.acc = s.pr.q[gi] + s.pr.diag[gi]*s.zi
			s.k = 0
			s.sub = 2
		case 2:
			cols := s.pr.cols[gi]
			vals := s.pr.vals[gi]
			for s.k < len(cols) {
				ci := int(cols[s.k])
				if ci >= lo && ci < lo+s.rpp {
					s.acc += vals[s.k] * s.zloc.V[ci]
					s.k++
					continue
				}
				v, ok := s.sh.stale.StepGet(m, ci)
				if !ok {
					return false
				}
				s.acc += vals[s.k] * v
				s.k++
			}
			nz := s.zi - par.Omega*s.acc/s.pr.diag[gi]
			if nz < 0 {
				nz = 0
			}
			s.zloc.V[gi] = nz
			s.nd.Compute(cRow + int64(nnz)*cElem)
			s.r++
			s.sub = 0
		}
	}
}
