package coherence

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/sim"
)

type reqKind int

const (
	reqGETS reqKind = iota
	reqGETX
	reqUPGRADE
)

func (k reqKind) String() string {
	switch k {
	case reqGETS:
		return "GETS"
	case reqGETX:
		return "GETX"
	case reqUPGRADE:
		return "UPGRADE"
	}
	return fmt.Sprintf("reqKind(%d)", int(k))
}

type request struct {
	kind  reqKind
	block uint64
	reqID int
	m     *memsim.Mem
}

// cohEvKind discriminates the protocol's event bodies: every closure the
// directory and cache controllers used to capture is now a kind plus the
// scalar fields below, so steady-state coherence traffic schedules nothing
// but recycled cohEvents.
type cohEvKind uint8

const (
	evFree cohEvKind = iota
	evDirHandle  // request r arrives at home (draws fault decisions)
	evDirServe   // internal requeue: settle window, ctrl delay, waiter drain
	evNackWake   // wake the requester with a NACK verdict
	evCtrlInval  // cache controller on id invalidates block, acks home
	evCtrlRecall // cache controller on id services a recall; flag=downgrade
	evDirAck     // acknowledgement at home from id; flag=withData
	evWriteback  // dirty writeback at home from id
	evGrant      // reply arrival at requester: install block, wake processor
	evFlushHint  // advisory replacement hint at home from id
)

// cohEvent is a pooled, closure-free protocol event (sim.Action). Which
// fields are meaningful depends on kind; r is only populated for
// request-carrying kinds (handle/serve/grant/nack).
type cohEvent struct {
	pr    *Protocol
	pool  *cohPool
	kind  cohEvKind
	home  int
	id    int
	block uint64
	flag  bool
	r     request
}

// RunEvent dispatches the event body and recycles the event. Engine context.
func (ev *cohEvent) RunEvent(at sim.Time) {
	pr := ev.pr
	switch ev.kind {
	case evDirHandle:
		pr.dirHandle(ev.home, ev.r, at)
	case evDirServe:
		pr.dirServe(ev.home, ev.r, at)
	case evNackWake:
		ev.r.m.P.WakeVals(at, 0, 1)
	case evCtrlInval:
		pr.ctrlInval(ev.id, ev.home, ev.block, at, false)
	case evCtrlRecall:
		pr.ctrlRecall(ev.id, ev.home, ev.block, at, ev.flag)
	case evDirAck:
		pr.dirAck(ev.home, ev.block, at, ev.flag, ev.id)
	case evWriteback:
		pr.dirWriteback(ev.home, ev.block, ev.id, at)
	case evGrant:
		pr.grantArrived(ev.home, ev.r, at)
	case evFlushHint:
		e := pr.entryOf(ev.home, ev.block)
		// Advisory: ignore if a transaction is mid-flight for the block.
		if !e.busy && e.state == dirShared {
			e.sharers.clear(ev.id)
		}
	default:
		panic(fmt.Sprintf("coherence: event with kind %d", ev.kind))
	}
	ev.kind = evFree
	ev.r = request{}
	ev.pool.put(ev)
}

// cohPool recycles cohEvents. The Protocol owns one pool popped only from
// engine context (directory and controller events scheduling follow-ups),
// and each node owns one popped only by its own processor during the
// processor phase (request issue, evictions). Events are always recycled in
// engine context; the engine's phase-separation invariant (processor and
// event phases never overlap) is what lets both pools go lockless.
type cohPool struct{ free []*cohEvent }

func (pl *cohPool) get(pr *Protocol) *cohEvent {
	if n := len(pl.free); n > 0 {
		ev := pl.free[n-1]
		pl.free = pl.free[:n-1]
		return ev
	}
	return &cohEvent{pr: pr, pool: pl}
}

func (pl *cohPool) put(ev *cohEvent) { pl.free = append(pl.free, ev) }

type dirState uint8

const (
	dirIdle dirState = iota
	dirShared
	dirExcl
)

// bitset is a full-map sharer set (Dir_n: one presence bit per node).
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) reset() {
	for i := range b {
		b[i] = 0
	}
}
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
func (b bitset) forEach(fn func(i int)) {
	for wi, w := range b {
		for ; w != 0; w &= w - 1 {
			bit := w & -w
			i := wi*64 + trailingZeros(bit)
			fn(i)
		}
	}
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// entry is one block's directory state at its home.
type entry struct {
	state   dirState
	sharers bitset
	owner   int

	busy    bool
	pend    *txn // points at pendT when a transaction is in flight, else nil
	pendT   txn  // inline storage: one transaction per block at a time
	waiters []pendingReq

	// settleUntil defers requests for this block until a freshly granted
	// write has had time to retire at its owner (the transient-state
	// deferral real directory protocols perform). Without it, a hot reader
	// can steal a granted line before the owner's store completes, forcing
	// an endless upgrade-downgrade orbit.
	settleUntil sim.Time

	// hist is a bounded ring of the block's recent protocol transitions,
	// allocated lazily on first record and therefore only when forensics
	// are on (checker, watchdog, or fault injection armed); invariant
	// violations and stall reports replay it. Keeping it behind a pointer
	// instead of inline shrinks every directory entry by ~200 bytes in the
	// common forensics-off run — at P=1024 the directory dominates the
	// simulator's footprint, so entries must only pay for what they use.
	hist *histRing
}

// histLen bounds the per-entry transition ring: enough to replay a full
// transaction (request, invalidation round, acks, grant) without growing
// memory per block.
const histLen = 8

type histRec struct {
	at sim.Time
	ev string
}

// histRing is the out-of-line forensics ring: recs is a circular buffer,
// n counts every record ever made (so n may exceed histLen).
type histRing struct {
	recs [histLen]histRec
	n    int
}

// histCount returns how many transitions were ever recorded (0 when
// forensics never touched this entry).
func (e *entry) histCount() int {
	if e.hist == nil {
		return 0
	}
	return e.hist.n
}

// history renders the ring oldest-first.
func (e *entry) history() []string {
	if e.hist == nil {
		return nil
	}
	var out []string
	start := 0
	if e.hist.n > histLen {
		start = e.hist.n - histLen
	}
	for i := start; i < e.hist.n; i++ {
		r := e.hist.recs[i%histLen]
		out = append(out, fmt.Sprintf("@%d %s", r.at, r.ev))
	}
	return out
}

type pendingReq struct {
	r      request
	arrive sim.Time
}

// txn is a multi-hop transaction in progress (invalidation round or recall).
type txn struct {
	r          request
	arrive     sim.Time // original request arrival, for queue-delay stats
	acksLeft   int
	needData   bool // the final reply carries the block
	recall     bool // waiting on the exclusive owner
	recallFrom int
	gotData    bool // recall data (or racing writeback) has arrived
	awaitWB    bool // owner had already evicted; waiting for its writeback
}

func (pr *Protocol) entryOf(home int, block uint64) *entry {
	n := pr.nodes[home]
	e := n.dir[block]
	if e == nil {
		e = &entry{state: dirIdle, sharers: newBitset(pr.Cfg.Procs), owner: -1}
		n.dir[block] = e
	}
	return e
}

// dirHandle is the home's network-facing entry point for a request arriving
// at time arrive. Fault injection is decided here, exactly once per arrival:
// the home may NACK the request outright, or its service may be deferred by
// injected delivery delay. Internal requeues (settle windows, waiters behind
// a completed transaction) go straight to dirServe and draw no new faults.
func (pr *Protocol) dirHandle(home int, r request, arrive sim.Time) {
	if pr.check != nil {
		pr.check.reqsIn[home]++
	}
	if pr.ctrl != nil {
		d := pr.ctrl.DecideRequest(arrive, r.reqID, home)
		if d.NACK {
			pr.nack(home, r, arrive)
			return
		}
		if d.Delay > 0 {
			ev := pr.evPool.get(pr)
			ev.kind, ev.home, ev.r = evDirServe, home, r
			pr.Eng.ScheduleAction(arrive+d.Delay, ev)
			return
		}
	}
	pr.dirServe(home, r, arrive)
}

// nack refuses a request: the directory spends its base occupancy deciding,
// a control message returns to the requester, and the requester wakes to
// back off and retry (see issue). This is the negative-acknowledgement path
// real directory controllers take to shed load or resolve races.
func (pr *Protocol) nack(home int, r request, arrive sim.Time) {
	n := pr.nodes[home]
	e := pr.entryOf(home, r.block)
	pr.NACKsSent++
	if pr.check != nil {
		pr.check.nacksOut[home]++
	}
	if pr.forensics {
		pr.record(e, arrive, "nack %v from %d", r.kind, r.reqID)
		pr.note(home, arrive, "nacked %v %#x from %d", r.kind, r.block, r.reqID)
	}
	start := arrive
	if n.busyUntil > start {
		start = n.busyUntil
	}
	n.busyUntil = start + pr.Cfg.DirBase
	pr.countMsg(home, r.reqID, false)
	at := n.busyUntil + pr.Cfg.DirMsgSend + pr.latency(home, r.reqID) +
		pr.sendDelay(n.busyUntil, home, r.reqID)
	ev := pr.evPool.get(pr)
	ev.kind, ev.r = evNackWake, r
	pr.Eng.ScheduleAction(at, ev)
}

// dirServe processes a request at the home. If the block has a transaction
// in flight the request queues behind it; otherwise it waits for the
// directory server to be free (contention) and is serviced.
func (pr *Protocol) dirServe(home int, r request, arrive sim.Time) {
	e := pr.entryOf(home, r.block)
	if Debug {
		trace("dir home=%d %v block=%#x from=%d arrive=%d busy=%v state=%d",
			home, r.kind, r.block, r.reqID, arrive, e.busy, e.state)
	}
	if e.busy {
		if pr.forensics {
			pr.record(e, arrive, "queue %v from %d (txn in flight)", r.kind, r.reqID)
		}
		e.waiters = append(e.waiters, pendingReq{r: r, arrive: arrive})
		return
	}
	if arrive < e.settleUntil {
		at := e.settleUntil
		if pr.forensics {
			pr.record(e, arrive, "defer %v from %d until @%d (settle)", r.kind, r.reqID, at)
		}
		ev := pr.evPool.get(pr)
		ev.kind, ev.home, ev.r = evDirServe, home, r
		pr.Eng.ScheduleAction(at, ev)
		return
	}
	if pr.forensics {
		pr.note(home, arrive, "serving %v %#x from %d", r.kind, r.block, r.reqID)
	}
	n := pr.nodes[home]
	start := arrive
	if n.busyUntil > start {
		pr.QueueDelay += n.busyUntil - start
		start = n.busyUntil
	}
	pr.QueueEvents++
	cfg := pr.Cfg

	switch r.kind {
	case reqGETS:
		if e.state != dirExcl {
			// Memory is current: read DRAM, send the block. The directory
			// state machine is occupied for the lookup and DRAM read; the
			// send engine adds its cycles to the reply path but can overlap
			// the next request.
			n.busyUntil = start + cfg.DirBase + cfg.DRAMCycles
			e.state = dirShared
			e.sharers.set(r.reqID)
			pr.reply(home, r, n.busyUntil+cfg.DirMsgSend+cfg.DirBlockSend, true)
			return
		}
		pr.beginRecall(home, e, r, arrive, start)

	case reqGETX, reqUPGRADE:
		needData := r.kind == reqGETX || !e.sharers.has(r.reqID)
		switch e.state {
		case dirExcl:
			if e.owner == r.reqID {
				// Stale request (e.g. we already own it); grant cheaply.
				n.busyUntil = start + cfg.DirBase + cfg.DirMsgSend
				pr.settle(e, pr.reply(home, r, n.busyUntil, false))
				return
			}
			pr.beginRecall(home, e, r, arrive, start)
		default:
			pr.scratch = pr.scratch[:0]
			e.sharers.forEach(func(i int) {
				if i != r.reqID {
					pr.scratch = append(pr.scratch, i)
				}
			})
			others := pr.scratch
			if len(others) == 0 {
				occ, send := cfg.DirBase, cfg.DirMsgSend
				if needData {
					occ += cfg.DRAMCycles
					send += cfg.DirBlockSend
				}
				n.busyUntil = start + occ
				e.state = dirExcl
				e.sharers.reset()
				e.owner = r.reqID
				pr.settle(e, pr.reply(home, r, n.busyUntil+send, needData))
				return
			}
			// Invalidate every other sharer, collect acknowledgements.
			e.busy = true
			e.pendT = txn{r: r, arrive: arrive, acksLeft: len(others), needData: needData}
			e.pend = &e.pendT
			if pr.forensics {
				pr.record(e, arrive, "inval round: %d sharers (%v from %d)",
					len(others), r.kind, r.reqID)
			}
			cost := cfg.DirBase + int64(len(others))*cfg.DirMsgSend
			if needData {
				cost += cfg.DRAMCycles
			}
			n.busyUntil = start + cost
			for _, s := range others {
				pr.Invals++
				if pr.check != nil {
					pr.check.ctrlOut[home]++
				}
				pr.countMsg(home, s, false)
				at := n.busyUntil + pr.latency(home, s) + pr.sendDelay(n.busyUntil, home, s)
				ev := pr.evPool.get(pr)
				ev.kind, ev.id, ev.home, ev.block = evCtrlInval, s, home, r.block
				pr.Eng.ScheduleAction(at, ev)
			}
		}
	}
}

// beginRecall starts fetching the block back from its exclusive owner.
func (pr *Protocol) beginRecall(home int, e *entry, r request, arrive, start sim.Time) {
	n := pr.nodes[home]
	cfg := pr.Cfg
	e.busy = true
	e.pendT = txn{r: r, arrive: arrive, acksLeft: 1, needData: true,
		recall: true, recallFrom: e.owner}
	e.pend = &e.pendT
	if pr.forensics {
		pr.record(e, arrive, "recall owner %d (%v from %d)", e.owner, r.kind, r.reqID)
	}
	n.busyUntil = start + cfg.DirBase + cfg.DirMsgSend
	owner := e.owner
	if pr.check != nil {
		pr.check.ctrlOut[home]++
	}
	pr.countMsg(home, owner, false)
	at := n.busyUntil + pr.latency(home, owner) + pr.sendDelay(n.busyUntil, home, owner)
	block := r.block
	// A GETS recall downgrades the owner to Shared; GETX/UPGRADE recalls
	// invalidate it.
	downgrade := r.kind == reqGETS
	ev := pr.evPool.get(pr)
	ev.kind, ev.id, ev.home, ev.block, ev.flag = evCtrlRecall, owner, home, block, downgrade
	pr.Eng.ScheduleAction(at, ev)
}

// ctrlInval is the cache controller on node id invalidating block for an
// invalidation round. The controller acts independently of its processor;
// its cost appears only as transaction latency.
func (pr *Protocol) ctrlInval(id, home int, block uint64, at sim.Time, _ bool) {
	if Debug {
		trace("ctrlInval node=%d block=%#x at=%d", id, block, at)
	}
	if fa, ok := pr.fillDeferral(id, block, at); ok {
		ev := pr.evPool.get(pr)
		ev.kind, ev.id, ev.home, ev.block = evCtrlInval, id, home, block
		pr.Eng.ScheduleAction(fa, ev)
		return
	}
	cfg := pr.Cfg
	var st uint8
	if mutation == mutateSkipInval {
		// Test-only corruption: acknowledge without invalidating, leaving a
		// stale copy behind for the invariant checker to catch. Watchers
		// still wake so the test program itself cannot deadlock.
		st = pr.nodes[id].mem.Cache.Lookup(block)
	} else {
		st = pr.nodes[id].mem.Cache.Invalidate(block)
	}
	pr.wakeWatchers(id, block, at)
	if pr.forensics {
		pr.note(id, at, "invalidated %#x for home %d", block, home)
	}
	delay := cfg.InvalidateCycles
	withData := false
	switch st {
	case memsim.Shared:
		delay += cfg.ReplSharedClean
	case memsim.Modified:
		// Racing write permission revocation with dirty data (rare under
		// full-map, but possible across transaction boundaries).
		delay += cfg.ReplSharedDirty
		withData = true
	}
	pr.countMsg(id, home, withData)
	ackAt := at + delay + pr.latency(id, home) + pr.sendDelay(at, id, home)
	ev := pr.evPool.get(pr)
	ev.kind, ev.home, ev.block, ev.flag, ev.id = evDirAck, home, block, withData, id
	pr.Eng.ScheduleAction(ackAt, ev)
}

// ctrlRecall is the cache controller on the exclusive owner servicing a
// recall: flush (downgrade or invalidate) and return the data.
func (pr *Protocol) ctrlRecall(id, home int, block uint64, at sim.Time, downgrade bool) {
	if Debug {
		trace("ctrlRecall node=%d block=%#x at=%d downgrade=%v", id, block, at, downgrade)
	}
	if fa, ok := pr.fillDeferral(id, block, at); ok {
		ev := pr.evPool.get(pr)
		ev.kind, ev.id, ev.home, ev.block, ev.flag = evCtrlRecall, id, home, block, downgrade
		pr.Eng.ScheduleAction(fa, ev)
		return
	}
	cfg := pr.Cfg
	cache := pr.nodes[id].mem.Cache
	st := cache.Lookup(block)
	if st == memsim.Invalid {
		// The owner already evicted it; the writeback is (or will be) in
		// flight. Acknowledge without data.
		if pr.forensics {
			pr.note(id, at, "recall of %#x for home %d: already evicted", block, home)
		}
		pr.countMsg(id, home, false)
		ackAt := at + cfg.InvalidateCycles + pr.latency(id, home) + pr.sendDelay(at, id, home)
		ev := pr.evPool.get(pr)
		ev.kind, ev.home, ev.block, ev.flag, ev.id = evDirAck, home, block, false, id
		pr.Eng.ScheduleAction(ackAt, ev)
		return
	}
	if downgrade {
		cache.SetState(block, memsim.Shared)
	} else {
		cache.Invalidate(block)
		pr.wakeWatchers(id, block, at)
	}
	if pr.forensics {
		pr.note(id, at, "recalled %#x for home %d (downgrade=%v)", block, home, downgrade)
	}
	delay := cfg.InvalidateCycles + cfg.ReplSharedDirty
	pr.countMsg(id, home, true)
	ackAt := at + delay + pr.latency(id, home) + pr.sendDelay(at, id, home)
	ev := pr.evPool.get(pr)
	ev.kind, ev.home, ev.block, ev.flag, ev.id = evDirAck, home, block, true, id
	pr.Eng.ScheduleAction(ackAt, ev)
}

// dirAck processes an acknowledgement (with or without data) at the home.
func (pr *Protocol) dirAck(home int, block uint64, at sim.Time, withData bool, from int) {
	n := pr.nodes[home]
	e := pr.entryOf(home, block)
	if pr.check != nil {
		pr.check.acksIn[home]++
	}
	if pr.forensics {
		pr.record(e, at, "ack from %d (data=%v)", from, withData)
	}
	if e.pend == nil {
		// An ack with no transaction in flight means the protocol state
		// machine is inconsistent — a bug, not a simulated condition. Abort
		// with the block's history instead of panicking the host process.
		pr.Eng.Abort(&ProtocolError{
			Home: home, Block: block, Now: at,
			What: fmt.Sprintf(
				"acknowledgement from node %d for a block with no transaction in flight", from),
			History: e.history(),
		})
		return
	}
	cfg := pr.Cfg
	start := at
	if n.busyUntil > start {
		start = n.busyUntil
	}
	cost := cfg.DirBase
	if withData {
		cost += cfg.DirBlockRecv
		e.pend.gotData = true
	}
	n.busyUntil = start + cost
	e.pend.acksLeft--
	if e.pend.acksLeft > 0 {
		return
	}
	if e.pend.recall && !e.pend.gotData {
		// Owner had evicted; its writeback carries the data. Wait for it.
		e.pend.awaitWB = true
		return
	}
	pr.completeTxn(home, block, e)
}

// completeTxn finishes a pending transaction: update directory state, reply
// to the requester, and drain queued requests.
func (pr *Protocol) completeTxn(home int, block uint64, e *entry) {
	n := pr.nodes[home]
	cfg := pr.Cfg
	t := e.pend
	cost := cfg.DirMsgSend
	if t.needData {
		cost += cfg.DirBlockSend
	}
	n.busyUntil += cost

	switch t.r.kind {
	case reqGETS:
		e.state = dirShared
		e.sharers.reset()
		if !t.awaitWB { // owner kept a downgraded copy unless it had evicted
			e.sharers.set(t.recallFrom)
		}
		e.sharers.set(t.r.reqID)
		e.owner = -1
	case reqGETX, reqUPGRADE:
		e.state = dirExcl
		e.sharers.reset()
		e.owner = t.r.reqID
	}
	if pr.forensics {
		pr.record(e, n.busyUntil, "txn done: state=%d owner=%d sharers=%d",
			e.state, e.owner, e.sharers.count())
	}
	grantArrive := pr.reply(home, t.r, n.busyUntil, t.needData)
	if t.r.kind != reqGETS {
		pr.settle(e, grantArrive)
	}
	e.busy = false
	e.pend = nil

	if len(e.waiters) > 0 {
		ws := e.waiters
		when := n.busyUntil
		for _, w := range ws {
			at := when
			if w.arrive > at {
				at = w.arrive
			}
			// Straight to dirServe: the queued request already drew its
			// fault decision when it first arrived.
			ev := pr.evPool.get(pr)
			ev.kind, ev.home, ev.r = evDirServe, home, w.r
			pr.Eng.ScheduleAction(at, ev)
		}
		// Reuse the backing array; the scheduled events hold copies of the
		// requests, so truncating here cannot clobber anything in flight.
		e.waiters = e.waiters[:0]
	}
}

// dirWriteback processes a dirty-block writeback arriving at home.
func (pr *Protocol) dirWriteback(home int, block uint64, from int, at sim.Time) {
	n := pr.nodes[home]
	e := pr.entryOf(home, block)
	start := at
	if n.busyUntil > start {
		start = n.busyUntil
	}
	n.busyUntil = start + pr.Cfg.DirBase + pr.Cfg.DirBlockRecv
	if pr.forensics {
		pr.record(e, at, "writeback from %d", from)
	}

	if e.busy && e.pend != nil && e.pend.recall && e.pend.recallFrom == from {
		// The writeback raced the recall; it carries the data the
		// transaction needs.
		e.pend.gotData = true
		if e.pend.awaitWB {
			pr.completeTxn(home, block, e)
		}
		return
	}
	if e.state == dirExcl && e.owner == from {
		e.state = dirIdle
		e.owner = -1
		e.sharers.reset()
	}
	// Otherwise the writeback is stale (ownership already moved on); memory
	// was updated by the recall path.
	if pr.check != nil {
		pr.check.verifyBlock(home, block, at)
	}
}

// reply delivers the directory's response to the requester: at arrival the
// requester's cache controller installs the block (event context, so later
// recalls and invalidations observe it), then the processor wakes.
func (pr *Protocol) reply(home int, r request, when sim.Time, withData bool) sim.Time {
	pr.countMsg(home, r.reqID, withData)
	if pr.check != nil {
		pr.check.grantsOut[home]++
	}
	if pr.wd != nil {
		// A granted transaction is the watchdog's unit of progress.
		pr.wd.Progress(when)
	}
	arrive := when + pr.latency(home, r.reqID) + pr.sendDelay(when, home, r.reqID)
	if pr.forensics {
		pr.record(pr.entryOf(home, r.block), when, "grant %v to %d (data=%v, arrives @%d)",
			r.kind, r.reqID, withData, arrive)
	}
	if pr.ctrl != nil {
		// Register the in-flight fill so invalidations and recalls that
		// overtake it are deferred (see fillDeferral).
		pr.nodes[r.reqID].fills[r.block] = arrive
	}
	ev := pr.evPool.get(pr)
	ev.kind, ev.home, ev.r = evGrant, home, r
	pr.Eng.ScheduleAction(arrive, ev)
	return arrive
}

// grantArrived runs at the requester when the grant lands: clear the
// in-flight fill, install the block in event context (so later recalls and
// invalidations observe it), then wake the processor with the replacement
// cost it owes.
func (pr *Protocol) grantArrived(home int, r request, arrive sim.Time) {
	if pr.ctrl != nil {
		delete(pr.nodes[r.reqID].fills, r.block)
	}
	state := uint8(memsim.Shared)
	if r.kind != reqGETS {
		state = memsim.Modified
	}
	repl := pr.installAt(r.m, r.block, state, arrive)
	r.m.P.WakeVals(arrive, repl, 0)
	if pr.check != nil {
		// The transaction settled with this install; verify the block's
		// global invariants at the first claimed-consistent moment.
		pr.check.verifyBlock(home, r.block, arrive)
	}
}

// settle gives a freshly granted write until one quantum past its arrival
// to retire before the directory serves the block again.
func (pr *Protocol) settle(e *entry, grantArrive sim.Time) {
	until := grantArrive + pr.Eng.Quantum
	if until > e.settleUntil {
		e.settleUntil = until
	}
}
