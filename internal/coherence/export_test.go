package coherence

// Test-only access to the protocol-corruption switch (see mutation in
// protocol.go). The mutation tests plant a known bug and assert the
// invariant checker catches it; callers must restore with SetMutation(0).

// MutateSkipInval makes ctrlInval acknowledge without invalidating.
const MutateSkipInval = mutateSkipInval

// SetMutation sets the corruption mode; 0 restores correct behavior.
func SetMutation(m int) { mutation = m }
