package coherence

// Runtime verification of the Dir_nNB protocol's coherence invariants.
//
// The paper's results assume a bug-free protocol: a regression that, say,
// leaves a stale Shared copy behind an invalidation round would not crash
// this simulator — data values live in Go backing stores — it would silently
// corrupt the time taxonomy (missing misses, missing invalidations). The
// Checker makes such regressions fail loudly: after every directory
// transaction settles it re-derives the protocol's global invariants from
// the directories and caches (the simulator is omniscient, so the check is
// exact), and the first violation aborts the run through the engine's
// structured Abort path with the block's recent transition history attached.
//
// Invariants verified at every settle point (and once more, globally, at end
// of run via Final):
//
//  1. Single-writer/multiple-reader: at most one cache holds a block
//     Modified, and a Modified copy never coexists with any other copy.
//  2. Directory/cache agreement: every cached copy is recorded at the home
//     — in the sharer bitset (dirShared) or as the owner (dirExcl); an
//     idle directory entry means no cache holds the block. (The converse
//     may legally over-approximate: silent clean evictions leave stale
//     sharer bits, which the protocol tolerates by design.)
//  3. Ownership: a Modified copy implies the home is in dirExcl with that
//     node registered as owner.
//  4. Per-home message conservation (checked in Final): every coherence
//     request that arrived at a home was answered by exactly one grant or
//     one NACK, and every invalidation/recall the home sent was answered by
//     exactly one acknowledgement.
//
// Blocks with a transaction in flight (entry busy) are skipped — transient
// states are legal mid-transaction; settle points are exactly the moments
// the protocol claims a consistent state.
//
// With the checker disabled the protocol takes none of these paths and runs
// bit-identical to the unchecked tree (a regression test asserts this).

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/memsim"
	"repro/internal/sim"
)

// InvariantError is the structured report of a coherence invariant
// violation: which rule broke, where, when, and the block's recent
// transition history for forensics.
type InvariantError struct {
	Rule    string // the violated invariant ("single-writer", "dir-cache-agreement", "ownership", "conservation")
	Block   uint64
	Home    int
	Now     sim.Time
	Detail  string
	History []string // the block's bounded transition ring, oldest first
}

func (e *InvariantError) Error() string {
	msg := fmt.Sprintf("coherence: invariant %q violated @%d: block %#x home %d: %s",
		e.Rule, e.Now, e.Block, e.Home, e.Detail)
	for _, h := range e.History {
		msg += "\n    " + h
	}
	return msg
}

// ProtocolError reports an internally inconsistent directory action — e.g.
// an acknowledgement arriving for a block with no transaction in flight —
// surfaced through the engine abort path instead of a panic.
type ProtocolError struct {
	Home    int
	Block   uint64
	Now     sim.Time
	What    string
	History []string
}

func (e *ProtocolError) Error() string {
	msg := fmt.Sprintf("coherence: protocol error @%d: block %#x home %d: %s",
		e.Now, e.Block, e.Home, e.What)
	for _, h := range e.History {
		msg += "\n    " + h
	}
	return msg
}

// Checker is the runtime invariant checker for one Protocol. Create with
// Protocol.EnableChecker before the simulation starts.
type Checker struct {
	pr *Protocol

	// Violations counts invariant failures observed (the run aborts on the
	// first, so this exceeds 1 only if the abort races further settles
	// within the same quantum).
	Violations int64
	// Checks counts settle-point verifications performed.
	Checks int64

	// Per-home conservation tallies.
	reqsIn, grantsOut, nacksOut []int64 // request/response balance
	ctrlOut, acksIn             []int64 // invalidation+recall / ack balance
}

func newChecker(pr *Protocol) *Checker {
	n := pr.Cfg.Procs
	return &Checker{
		pr:     pr,
		reqsIn: make([]int64, n), grantsOut: make([]int64, n), nacksOut: make([]int64, n),
		ctrlOut: make([]int64, n), acksIn: make([]int64, n),
	}
}

// fail records a violation and aborts the run (first abort wins).
func (ck *Checker) fail(rule string, block uint64, home int, at sim.Time, detail string) {
	ck.Violations++
	var hist []string
	if e := ck.pr.nodes[home].dir[block]; e != nil {
		hist = e.history()
	}
	ck.pr.Eng.Abort(&InvariantError{
		Rule: rule, Block: block, Home: home, Now: at, Detail: detail, History: hist,
	})
}

// holders returns the ids of every cache holding block, and of those holding
// it Modified.
func (ck *Checker) holders(block uint64) (all, modified []int) {
	for _, n := range ck.pr.nodes {
		switch n.mem.Cache.Lookup(block) {
		case memsim.Shared:
			all = append(all, n.id)
		case memsim.Modified:
			all = append(all, n.id)
			modified = append(modified, n.id)
		}
	}
	return all, modified
}

// verifyBlock checks invariants 1-3 for one block after its transaction
// settled. Busy entries (a new transaction already in flight) are skipped.
func (ck *Checker) verifyBlock(home int, block uint64, at sim.Time) {
	e := ck.pr.nodes[home].dir[block]
	if e == nil || e.busy {
		return
	}
	ck.Checks++
	all, modified := ck.holders(block)
	if len(modified) > 1 {
		ck.fail("single-writer", block, home, at,
			fmt.Sprintf("%d caches hold the block Modified: %v", len(modified), modified))
		return
	}
	if len(modified) == 1 && len(all) > 1 {
		ck.fail("single-writer", block, home, at,
			fmt.Sprintf("Modified copy at node %d coexists with copies at %v", modified[0], all))
		return
	}
	if len(modified) == 1 && (e.state != dirExcl || e.owner != modified[0]) {
		ck.fail("ownership", block, home, at,
			fmt.Sprintf("node %d holds the block Modified but the directory records state=%d owner=%d",
				modified[0], e.state, e.owner))
		return
	}
	switch e.state {
	case dirIdle:
		if len(all) > 0 {
			ck.fail("dir-cache-agreement", block, home, at,
				fmt.Sprintf("directory idle but nodes %v hold copies", all))
		}
	case dirShared:
		for _, h := range all {
			if !e.sharers.has(h) {
				ck.fail("dir-cache-agreement", block, home, at,
					fmt.Sprintf("node %d holds a %s copy absent from the sharer bitset",
						h, memsim.StateName(ck.pr.nodes[h].mem.Cache.Lookup(block))))
				return
			}
		}
	case dirExcl:
		for _, h := range all {
			if h != e.owner {
				ck.fail("dir-cache-agreement", block, home, at,
					fmt.Sprintf("directory exclusive at owner %d but node %d holds a copy", e.owner, h))
				return
			}
		}
	}
}

// Final runs the end-of-run global verification: no transaction may still be
// in flight, every block must satisfy invariants 1-3, and the per-home
// message conservation balances must close. Call after Engine.Run returns
// nil; a non-nil result is the first violation found.
func (ck *Checker) Final() error {
	pr := ck.pr
	now := pr.Eng.Now()
	for home, n := range pr.nodes {
		blocks := make([]uint64, 0, len(n.dir))
		for b := range n.dir {
			blocks = append(blocks, b)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, b := range blocks {
			e := n.dir[b]
			if e.busy || len(e.waiters) > 0 {
				return &InvariantError{
					Rule: "conservation", Block: b, Home: home, Now: now,
					Detail: fmt.Sprintf("transaction still in flight at end of run (busy=%v waiters=%d)",
						e.busy, len(e.waiters)),
					History: e.history(),
				}
			}
			ck.verifyBlock(home, b, now)
			if err := pr.Eng.Aborted(); err != nil {
				return err
			}
		}
	}
	for home := range pr.nodes {
		if got, want := ck.grantsOut[home]+ck.nacksOut[home], ck.reqsIn[home]; got != want {
			return &InvariantError{
				Rule: "conservation", Home: home, Now: now,
				Detail: fmt.Sprintf("home answered %d of %d requests (%d grants + %d NACKs)",
					got, want, ck.grantsOut[home], ck.nacksOut[home]),
			}
		}
		if ck.acksIn[home] != ck.ctrlOut[home] {
			return &InvariantError{
				Rule: "conservation", Home: home, Now: now,
				Detail: fmt.Sprintf("home sent %d invalidations/recalls but collected %d acknowledgements",
					ck.ctrlOut[home], ck.acksIn[home]),
			}
		}
	}
	return nil
}

// stallReport renders the coherence layer's forensics for a watchdog stall:
// every block with a transaction in flight or queued waiters (the hot
// blocks), its pending request and transition history, and each node's last
// protocol action. Keys are sorted so the report is deterministic.
func (pr *Protocol) stallReport() string {
	var b strings.Builder
	b.WriteString("coherence stall report:\n")
	for home, n := range pr.nodes {
		blocks := make([]uint64, 0)
		for blk, e := range n.dir {
			if e.busy || len(e.waiters) > 0 {
				blocks = append(blocks, blk)
			}
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, blk := range blocks {
			e := n.dir[blk]
			fmt.Fprintf(&b, "  hot block %#x at home %d: state=%d busy=%v waiters=%d\n",
				blk, home, e.state, e.busy, len(e.waiters))
			if t := e.pend; t != nil {
				fmt.Fprintf(&b, "    pending: %v from node %d (arrived @%d, acksLeft=%d recall=%v awaitWB=%v)\n",
					t.r.kind, t.r.reqID, t.arrive, t.acksLeft, t.recall, t.awaitWB)
			}
			for _, w := range e.waiters {
				fmt.Fprintf(&b, "    queued: %v from node %d (arrived @%d)\n",
					w.r.kind, w.r.reqID, w.arrive)
			}
			for _, h := range e.history() {
				fmt.Fprintf(&b, "    hist: %s\n", h)
			}
		}
	}
	for id, n := range pr.nodes {
		if n.lastAct != "" {
			fmt.Fprintf(&b, "  node %d last action: %s @%d\n", id, n.lastAct, n.lastActAt)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
