package coherence_test

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
	"repro/internal/stats"
)

// run2 runs a two-node SM program where node 0 sets up shared data and node
// 1 acts; barriers separate the steps.
func runSM(t *testing.T, procs int, policy parmacs.Policy, prog func(n *machine.SMNode)) *machine.SMMachine {
	t.Helper()
	m := machine.NewSM(cost.Default(procs), policy, prog)
	m.Run()
	return m
}

func TestRemoteReadMissCostNearPaperValue(t *testing.T) {
	// The paper: a miss to idle remote data costs roughly 250 cycles.
	cfg := cost.Default(2)
	var missCycles int64
	shared := make(chan memsim.FVec, 1)
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			// Home the vector at node 0 so node 1's access is remote.
			v := n.RT.GMallocFOn(0, 8)
			v.V[0] = 7
			shared <- v
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()
		if n.ID == 1 {
			v := <-shared
			before := n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss)
			if got := v.Get(n.Mem, 0); got != 7 {
				t.Errorf("read value %v, want 7", got)
			}
			missCycles = n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss) - before
		}
		n.Barrier()
	})
	m.Run()
	if missCycles < 220 || missCycles > 290 {
		t.Errorf("remote idle miss = %d cycles, want ~250", missCycles)
	}
	rm := m.Nodes[1].P.Acct.Counts(stats.PhaseDefault, stats.CntSharedMissRemote)
	if rm != 1 {
		t.Errorf("remote shared misses = %d, want 1", rm)
	}
}

func TestLocalSharedMissCheaperThanRemote(t *testing.T) {
	cfg := cost.Default(2)
	var local, remote int64
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 1 {
			vLocal := n.RT.GMallocFOn(1, 4)  // homed here
			vRemote := n.RT.GMallocFOn(0, 4) // homed at node 0
			b := n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss)
			vLocal.Get(n.Mem, 0)
			local = n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss) - b
			b = n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss)
			vRemote.Get(n.Mem, 0)
			remote = n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss) - b
		}
		n.Barrier()
	})
	m.Run()
	if local >= remote {
		t.Errorf("local miss %d should be cheaper than remote %d", local, remote)
	}
	if local < 40 || local > 120 {
		t.Errorf("local shared miss = %d cycles, want well under remote", local)
	}
}

func TestReadHitAfterFetchIsFree(t *testing.T) {
	cfg := cost.Default(2)
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 1 {
			v := n.RT.GMallocFOn(0, 4)
			v.Get(n.Mem, 0)
			b := n.P.Acct.TotalCycles(stats.PhaseDefault)
			v.Get(n.Mem, 1) // same block, cached
			if d := n.P.Acct.TotalCycles(stats.PhaseDefault) - b; d != 0 {
				t.Errorf("cached read cost %d cycles, want 0", d)
			}
		}
		n.Barrier()
	})
	m.Run()
}

func TestWriteFaultInvalidatesSharer(t *testing.T) {
	cfg := cost.Default(2)
	var v memsim.FVec
	var reader2 float64
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			v = n.RT.GMallocFOn(0, 4)
			v.V[0] = 1
		}
		n.Barrier()
		// Both read: both become sharers.
		v.Get(n.Mem, 0)
		n.Barrier()
		if n.ID == 0 {
			v.Set(n.Mem, 0, 2) // write fault: invalidates node 1
		}
		n.Barrier()
		if n.ID == 1 {
			reader2 = v.Get(n.Mem, 0) // must re-miss and see 2
		}
		n.Barrier()
	})
	m.Run()
	if reader2 != 2 {
		t.Errorf("reader saw %v after invalidation, want 2", reader2)
	}
	wf := m.Nodes[0].P.Acct.Counts(stats.PhaseDefault, stats.CntWriteFaults)
	if wf != 1 {
		t.Errorf("write faults = %d, want 1", wf)
	}
	// Node 1 missed twice: initial read + post-invalidation read.
	misses := m.Nodes[1].P.Acct.Counts(stats.PhaseDefault, stats.CntSharedMissLocal) +
		m.Nodes[1].P.Acct.Counts(stats.PhaseDefault, stats.CntSharedMissRemote)
	if misses != 2 {
		t.Errorf("node 1 shared misses = %d, want 2", misses)
	}
}

func TestThreeHopReadOfModifiedBlock(t *testing.T) {
	cfg := cost.Default(3)
	var v memsim.FVec
	var got float64
	var cyc int64
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			v = n.RT.GMallocFOn(0, 4) // home 0
		}
		n.Barrier()
		if n.ID == 1 {
			v.Set(n.Mem, 0, 9) // node 1 becomes exclusive owner
		}
		n.Barrier()
		if n.ID == 2 {
			b := n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss)
			got = v.Get(n.Mem, 0) // 3-hop: 2 -> home 0 -> owner 1 -> back
			cyc = n.P.Acct.Cycles(stats.PhaseDefault, stats.SharedMiss) - b
		}
		n.Barrier()
	})
	m.Run()
	if got != 9 {
		t.Errorf("read %v, want 9", got)
	}
	if cyc < 400 {
		t.Errorf("3-hop miss = %d cycles, want > 400 (two extra hops)", cyc)
	}
	// Owner was downgraded, not invalidated: its next read hits.
	if st := m.Nodes[1].Mem.Cache.Lookup(v.Addr(0) >> 5); st != memsim.Shared {
		t.Errorf("owner state after downgrade = %d, want Shared", st)
	}
}

func TestSingleWriterInvariant(t *testing.T) {
	// Property over interleavings: after the run, at most one cache holds
	// the block Modified, and if one does, no other holds it at all.
	cfg := cost.Default(4)
	var v memsim.FVec
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			v = n.RT.GMallocFOn(2, 8)
		}
		n.Barrier()
		for k := 0; k < 10; k++ {
			if (k+n.ID)%3 == 0 {
				v.Set(n.Mem, 0, float64(n.ID*100+k))
			} else {
				v.Get(n.Mem, 0)
			}
			n.Compute(int64(37 * (n.ID + 1)))
		}
		n.Barrier()
	})
	m.Run()
	block := v.Addr(0) >> 5
	modified, present := 0, 0
	for _, nd := range m.Nodes {
		switch nd.Mem.Cache.Lookup(block) {
		case memsim.Modified:
			modified++
			present++
		case memsim.Shared:
			present++
		}
	}
	if modified > 1 {
		t.Errorf("%d caches hold the block Modified", modified)
	}
	if modified == 1 && present != 1 {
		t.Errorf("modified copy coexists with %d other copies", present-1)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := cost.Default(2)
	sets := cfg.Sets()
	var v memsim.FVec
	var got float64
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			v = n.RT.GMallocFOn(1, 4) // homed at node 1
		}
		n.Barrier()
		if n.ID == 0 {
			v.Set(n.Mem, 0, 5) // dirty at node 0
			// Evict it by filling the set with private blocks.
			priv := n.AllocF((cfg.CacheAssoc + 4) * sets * cfg.BlockBytes / 8)
			stride := sets * cfg.BlockBytes / 8
			setIdx := int((v.Addr(0) >> 5) % uint64(sets))
			base := setIdx * cfg.BlockBytes / 8
			for w := 0; w < cfg.CacheAssoc+4; w++ {
				priv.Get(n.Mem, base+w*stride)
			}
		}
		n.Barrier()
		if n.ID == 1 {
			got = v.Get(n.Mem, 0) // memory at home must be current
		}
		n.Barrier()
	})
	m.Run()
	if got != 5 {
		t.Errorf("read after writeback = %v, want 5", got)
	}
	if m.Pr.Writebacks == 0 {
		t.Error("no writeback recorded")
	}
	if st, _ := m.Pr.DirStateOf(v.Addr(0)); st == "excl" {
		t.Errorf("directory still exclusive after writeback + re-read: %s", st)
	}
}

func TestDirectoryContentionQueues(t *testing.T) {
	// Many nodes storming one home block: queue delay must appear (the
	// paper measures ~200-cycle average queuing at Gauss's directory).
	cfg := cost.Default(16)
	var v memsim.FVec
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			v = n.RT.GMallocFOn(0, 4)
			v.V[0] = 3
		}
		n.Barrier()
		v.Get(n.Mem, 0) // everyone at once
		n.Barrier()
	})
	m.Run()
	if m.Pr.QueueDelay == 0 {
		t.Error("no directory queuing delay under a 16-node storm")
	}
}

func TestSMMessageByteAccounting(t *testing.T) {
	cfg := cost.Default(2)
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 1 {
			v := n.RT.GMallocFOn(0, 4)
			v.Get(n.Mem, 0)
		}
		n.Barrier()
	})
	res := m.Run()
	// One remote read: request (40 control) from node 1, reply (32 data +
	// 8 control) from node 0.
	data := res.Summary.CountsAll(stats.CntBytesData) * 2 // undo the 2-proc average
	ctl := res.Summary.CountsAll(stats.CntBytesControl) * 2
	if data != 32 {
		t.Errorf("data bytes = %v, want 32", data)
	}
	if ctl != 48 {
		t.Errorf("control bytes = %v, want 48", ctl)
	}
}

func TestSMDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		cfg := cost.Default(8)
		var v memsim.FVec
		m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
			if n.ID == 0 {
				v = n.RT.GMallocF(0, 256)
			}
			n.Barrier()
			for k := 0; k < 20; k++ {
				i := (n.ID*31 + k*7) % 256
				v.Set(n.Mem, i, float64(n.ID+k))
				v.Get(n.Mem, (i+13)%256)
				n.Compute(int64(11 * (n.ID + 1)))
			}
			n.Barrier()
		})
		res := m.Run()
		return int64(res.Elapsed), res.Summary.TotalCyclesAll()
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Errorf("nondeterministic SM run: (%d,%v) vs (%d,%v)", e1, t1, e2, t2)
	}
}
