package coherence

import (
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Step-processor forms of the requester-side protocol operations. Each
// mirrors its coroutine twin transaction-for-transaction: the same counters
// bump at the same clocks, the same messages enter the network with the
// same arrival times, and the requester suspends at the same point — so a
// step-form run is bit-identical to a coroutine-form run at every quantum
// boundary. A false return means the requester blocked; the step returns
// sim.StepYield and the re-invocation that finds the grant's wake pending
// consumes it and completes (or, on a NACK, backs off and reissues).

// stepPend is a node's in-flight requester transaction: the state the
// coroutine form keeps on its stack across BlockVals. Step processors are
// serial with one outstanding request, so one slot per node suffices.
type stepPend struct {
	active    bool
	home      int
	kind      reqKind
	block     uint64
	cat       stats.Category
	why       string
	retries   int
	backoff   int64
	firstSent sim.Time
}

// StepReadMiss implements memsim.StepSharedHandler.
func (pr *Protocol) StepReadMiss(m *memsim.Mem, block uint64) bool {
	p := m.P
	if p.WakePending() {
		return pr.stepResume(m)
	}
	home := pr.homeOf(block)
	cat := p.SharedMissCategory()
	if home == p.ID {
		p.Acct.Add(stats.CntSharedMissLocal, 1)
	} else {
		p.Acct.Add(stats.CntSharedMissRemote, 1)
	}
	atomic.AddInt64(&pr.Reads, 1)
	p.ChargeStall(cat, pr.Cfg.SharedMissCycles)
	pr.stepIssue(m, home, reqGETS, block, cat, "shared read miss")
	return false
}

// StepWriteAccess implements memsim.StepSharedHandler. On a resume the
// resident argument is ignored (the pending slot holds the request).
func (pr *Protocol) StepWriteAccess(m *memsim.Mem, block uint64, resident uint8) bool {
	p := m.P
	if p.WakePending() {
		return pr.stepResume(m)
	}
	home := pr.homeOf(block)
	var cat stats.Category
	var kind reqKind
	if resident == memsim.Shared {
		cat = p.WriteFaultCategory()
		p.Acct.Add(stats.CntWriteFaults, 1)
		kind = reqUPGRADE
		atomic.AddInt64(&pr.Upgrades, 1)
	} else {
		cat = p.SharedMissCategory()
		if home == p.ID {
			p.Acct.Add(stats.CntSharedMissLocal, 1)
		} else {
			p.Acct.Add(stats.CntSharedMissRemote, 1)
		}
		kind = reqGETX
		atomic.AddInt64(&pr.Writes, 1)
	}
	p.ChargeStall(cat, pr.Cfg.SharedMissCycles)
	pr.stepIssue(m, home, kind, block, cat, "shared write access")
	return false
}

// stepIssue records the transaction in the node's pending slot, sends the
// request, and blocks the requester — issue's first loop iteration.
func (pr *Protocol) stepIssue(m *memsim.Mem, home int, kind reqKind, block uint64, cat stats.Category, why string) {
	p := m.P
	n := pr.nodes[p.ID]
	n.pend = stepPend{active: true, home: home, kind: kind, block: block,
		cat: cat, why: why, firstSent: p.Clock()}
	if pr.wd != nil {
		atomic.AddInt64(&pr.outstanding, 1)
	}
	pr.stepSend(m)
	p.StepBlock(cat, why)
}

// stepSend emits the pending request toward its home: the message-count,
// forensics, and event-arrival bookkeeping of one issue-loop send.
func (pr *Protocol) stepSend(m *memsim.Mem) {
	p := m.P
	n := pr.nodes[p.ID]
	if pr.forensics {
		pr.note(p.ID, p.Clock(), "sent %v %#x to home %d", n.pend.kind, n.pend.block, n.pend.home)
	}
	pr.countMsg(p.ID, n.pend.home, false)
	arrive := p.Clock() + pr.latency(p.ID, n.pend.home)
	ev := n.evPool.get(pr)
	ev.kind, ev.home = evDirHandle, n.pend.home
	ev.r = request{kind: n.pend.kind, block: n.pend.block, reqID: p.ID, m: m}
	p.ScheduleAction(arrive, ev)
}

// stepResume consumes the wake that ended a pending transaction's block.
// A grant charges the replacement cost and completes; a NACK backs off and
// reissues (blocking again), exactly as issue's retry loop does — the
// retry send carries no Interact in either form.
func (pr *Protocol) stepResume(m *memsim.Mem) bool {
	p := m.P
	n := pr.nodes[p.ID]
	pd := &n.pend
	repl, nacked := p.WakePayloadVals()
	if nacked == 0 {
		p.ChargeStall(pd.cat, repl)
		if pr.wd != nil {
			atomic.AddInt64(&pr.outstanding, -1)
		}
		pd.active = false
		return true
	}
	pd.retries++
	p.Acct.Add(stats.CntNACKs, 1)
	if pd.retries > pr.smf.RetryBudget {
		if pr.wd != nil {
			atomic.AddInt64(&pr.outstanding, -1)
		}
		pd.active = false
		p.Fail(&faults.RetryStarvationError{
			Node: p.ID, Home: pd.home, Block: pd.block, Kind: pd.kind.String(),
			Retries: pd.retries, FirstSent: pd.firstSent, Now: p.Clock(),
		})
	}
	if pd.backoff == 0 {
		pd.backoff = pr.smf.Backoff
	} else if pd.backoff < pr.smf.BackoffMax {
		pd.backoff *= 2
		if pd.backoff > pr.smf.BackoffMax {
			pd.backoff = pr.smf.BackoffMax
		}
	}
	p.Acct.Add(stats.CntDirRetries, 1)
	p.ChargeStall(stats.DirRetry, pr.Cfg.NACKRetryCycles+pd.backoff)
	pr.stepSend(m)
	p.StepBlock(pd.cat, pd.why)
	return false
}

// StepAtomicSwapI is AtomicSwapI for step processors; the exchange happens
// exactly once, on the completing call.
func (pr *Protocol) StepAtomicSwapI(m *memsim.Mem, vec *memsim.IVec, i int, newV int64) (int64, bool) {
	if !m.StepWrite(vec.Addr(i)) {
		return 0, false
	}
	old := vec.V[i]
	vec.V[i] = newV
	return old, true
}

// StepAtomicCASI is AtomicCASI for step processors: swapped is valid only
// when done.
func (pr *Protocol) StepAtomicCASI(m *memsim.Mem, vec *memsim.IVec, i int, old, newV int64) (swapped, done bool) {
	if !m.StepWrite(vec.Addr(i)) {
		return false, false
	}
	if vec.V[i] != old {
		return false, true
	}
	vec.V[i] = newV
	return true, true
}

// SpinStep is the resumable state of one StepSpinI/StepSpinF wait: whether
// the spinner went to sleep on an invalidation watch. Embed one in the
// caller's frame and zero it before a fresh spin.
type SpinStep struct {
	sleeping bool
}

// StepSpinI is SpinI for step processors. cond must be a fixed predicate
// (hoisted, not a per-call closure) for allocation-free spinning. The
// value is valid only when done.
func (pr *Protocol) StepSpinI(ss *SpinStep, m *memsim.Mem, vec *memsim.IVec, i int, cat stats.Category, cond func(int64) bool) (int64, bool) {
	p := m.P
	if ss.sleeping {
		// Only a watcher wake redispatches a sleeping spinner.
		p.WakePayload()
		ss.sleeping = false
	}
	for {
		if !m.StepRead(vec.Addr(i)) {
			return 0, false
		}
		if v := vec.V[i]; cond(v) {
			return v, true
		}
		if pr.Watch(m, vec.Addr(i)) {
			p.StepBlock(cat, "spin")
			ss.sleeping = true
			return 0, false
		}
	}
}

// StepSpinIAtLeast is StepSpinI with the fixed predicate v >= min: the
// flag-threshold wait of reduction trees, closure-free so a bound round
// counter costs no allocation.
func (pr *Protocol) StepSpinIAtLeast(ss *SpinStep, m *memsim.Mem, vec *memsim.IVec, i int, cat stats.Category, min int64) (int64, bool) {
	p := m.P
	if ss.sleeping {
		p.WakePayload()
		ss.sleeping = false
	}
	for {
		if !m.StepRead(vec.Addr(i)) {
			return 0, false
		}
		if v := vec.V[i]; v >= min {
			return v, true
		}
		if pr.Watch(m, vec.Addr(i)) {
			p.StepBlock(cat, "spin")
			ss.sleeping = true
			return 0, false
		}
	}
}

// StepSpinF is StepSpinI for float vectors.
func (pr *Protocol) StepSpinF(ss *SpinStep, m *memsim.Mem, vec *memsim.FVec, i int, cat stats.Category, cond func(float64) bool) (float64, bool) {
	p := m.P
	if ss.sleeping {
		p.WakePayload()
		ss.sleeping = false
	}
	for {
		if !m.StepRead(vec.Addr(i)) {
			return 0, false
		}
		if v := vec.V[i]; cond(v) {
			return v, true
		}
		if pr.Watch(m, vec.Addr(i)) {
			p.StepBlock(cat, "spin")
			ss.sleeping = true
			return 0, false
		}
	}
}
