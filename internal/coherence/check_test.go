package coherence_test

// End-to-end tests of the shared-memory robustness layers: the golden
// bit-identical regression (all layers off), the invariant-checker property
// test over all four SM applications, the mutation test proving the checker
// discriminates, deterministic control-message fault injection with NACK
// retry accounting, starvation on an always-NACKing home, and the coherence
// livelock watchdog.

import (
	"errors"
	"math"
	"testing"

	"repro/internal/apps/em3d"
	"repro/internal/apps/gauss"
	"repro/internal/apps/lcp"
	"repro/internal/apps/mse"
	"repro/internal/coherence"
	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// smFingerprint is the timing fingerprint of one SM app run: elapsed virtual
// time plus the rounded per-processor averages of the taxonomy rows that
// would move first if the robustness plumbing perturbed the simulation.
type smFingerprint struct {
	name                        string
	elapsed                     int64
	total, comp, miss, bar, msg float64
}

func fingerprintOf(name string, res *machine.Result) smFingerprint {
	s := res.Summary
	return smFingerprint{
		name:    name,
		elapsed: res.Elapsed,
		total:   math.Round(s.TotalCyclesAll()),
		comp:    math.Round(s.CyclesAll(stats.Comp)),
		miss:    math.Round(s.CyclesAll(stats.SharedMiss)),
		bar:     math.Round(s.CyclesAll(stats.BarrierWait)),
		msg:     math.Round(s.CountsAll(stats.CntMessages)),
	}
}

// smGolden holds fingerprints captured from the tree before the robustness
// layers existed. With every layer off, the four SM applications must
// reproduce them bit-for-bit; deviation means the plumbing leaked into the
// lossless timing model.
var smGolden = []smFingerprint{
	{"em3d", 2205154, 2205154, 922400, 662080, 206790, 8392},
	{"gauss", 1187616, 1187616, 370560, 170027, 437782, 2176},
	{"lcp", 526335, 526335, 336720, 76906, 35330, 1084},
	{"mse", 29579485, 29579485, 22569060, 76776, 891933, 1072},
}

// runSMApp runs one of the four golden app configurations, with cfg mutated
// by the caller to arm robustness layers.
func runSMApp(name string, mutate func(*cost.Config)) *machine.Result {
	switch name {
	case "em3d":
		cfg := cost.Default(8)
		if mutate != nil {
			mutate(&cfg)
		}
		return em3d.RunSM(cfg, parmacs.RoundRobin,
			em3d.Params{NodesPer: 100, Degree: 4, RemotePct: 20, Iters: 10, Seed: 1}).Res
	case "gauss":
		cfg := cost.Default(8)
		if mutate != nil {
			mutate(&cfg)
		}
		return gauss.RunSM(cfg, gauss.Params{N: 64, Seed: 1}).Res
	case "lcp":
		cfg := cost.Default(4)
		if mutate != nil {
			mutate(&cfg)
		}
		return lcp.RunSM(cfg, lcp.Params{
			N: 256, NNZ: 16, Sweeps: 2, MaxSteps: 5, Tol: 1e-6,
			Omega: 1.0, LocalFrac: 0.5, DiagFactor: 1.2, Seed: 1,
		}).Res
	case "mse":
		cfg := cost.Default(4)
		if mutate != nil {
			mutate(&cfg)
		}
		return mse.RunSM(cfg, mse.Params{Bodies: 64, Elems: 8, Iters: 3, Seed: 1}).Res
	}
	panic("unknown app " + name)
}

// TestSMAppsBitIdenticalToSeed is the golden regression: with every
// robustness layer off, all four SM applications reproduce the fingerprints
// captured before the layers existed.
func TestSMAppsBitIdenticalToSeed(t *testing.T) {
	for _, want := range smGolden {
		res := runSMApp(want.name, nil)
		if res.Err != nil {
			t.Fatalf("%s: unexpected error: %v", want.name, res.Err)
		}
		if got := fingerprintOf(want.name, res); got != want {
			t.Errorf("%s fingerprint changed:\n got %+v\nwant %+v", want.name, got, want)
		}
	}
}

// TestCheckerCleanOnAllApps is the property test: every SM application, run
// with the invariant checker armed, completes with zero violations — and,
// because the checker is pure inspection, with timing bit-identical to the
// unchecked golden runs.
func TestCheckerCleanOnAllApps(t *testing.T) {
	for _, want := range smGolden {
		res := runSMApp(want.name, func(c *cost.Config) { c.SMCheck = true })
		if res.Err != nil {
			t.Fatalf("%s with checker: %v", want.name, res.Err)
		}
		if got := fingerprintOf(want.name, res); got != want {
			t.Errorf("%s: checker perturbed timing:\n got %+v\nwant %+v", want.name, got, want)
		}
	}
}

// TestCheckerCatchesMutation plants a lost-invalidation protocol bug (the
// cache controller acknowledges an invalidation without invalidating) and
// asserts the checker aborts the run with a structured single-writer
// violation carrying the block's transition history.
func TestCheckerCatchesMutation(t *testing.T) {
	coherence.SetMutation(coherence.MutateSkipInval)
	t.Cleanup(func() { coherence.SetMutation(0) })

	cfg := cost.Default(2)
	cfg.SMCheck = true
	var v memsim.IVec
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			v = n.RT.GMallocIOn(0, 8)
			v.Set(n.Mem, 0, 1)
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()
		if n.ID == 1 {
			v.Get(n.Mem, 0) // take a Shared copy
		}
		n.Barrier()
		if n.ID == 0 {
			// Upgrade: the invalidation of node 1's copy is silently skipped
			// by the mutation, so node 1 keeps a stale Shared copy while
			// node 0 becomes Modified.
			v.Set(n.Mem, 0, 2)
		}
		n.Barrier()
	})
	res := m.Run()
	var inv *coherence.InvariantError
	if !errors.As(res.Err, &inv) {
		t.Fatalf("corrupted protocol not caught: err = %v", res.Err)
	}
	if inv.Rule != "single-writer" {
		t.Errorf("violated rule = %q, want single-writer", inv.Rule)
	}
	if len(inv.History) == 0 {
		t.Errorf("violation report carries no transition history:\n%v", inv)
	}
	if m.Pr.Checker().Violations == 0 {
		t.Errorf("checker counted no violations")
	}
}

// smFaultCfg arms control-message fault injection on cfg.
func smFaultCfg(c *cost.Config, seed uint64, nack, reorder float64) {
	c.SMFaults = &cost.SMFaultsConfig{Seed: seed, NACKRate: nack, ReorderRate: reorder}
}

// TestSMFaultsDeterministic: identical seeds replay identical degraded runs
// bit-for-bit; a different seed diverges. NACK retries appear in the
// separate Dir Retry taxonomy row, not smeared into miss time.
func TestSMFaultsDeterministic(t *testing.T) {
	run := func(seed uint64) (*machine.Result, smFingerprint) {
		res := runSMApp("em3d", func(c *cost.Config) {
			c.SMCheck = true // faults + checker together: still zero violations
			smFaultCfg(c, seed, 0.05, 0.05)
		})
		if res.Err != nil {
			t.Fatalf("faulty em3d run failed: %v", res.Err)
		}
		return res, fingerprintOf("em3d", res)
	}
	resA, fpA := run(7)
	_, fpB := run(7)
	if fpA != fpB {
		t.Errorf("same seed diverged:\n  %+v\n  %+v", fpA, fpB)
	}
	_, fpC := run(8)
	if fpA == fpC {
		t.Errorf("different seeds produced identical runs: %+v", fpA)
	}
	clean := smGolden[0]
	if resA.Elapsed <= clean.elapsed {
		t.Errorf("faults did not slow the run: %d <= clean %d", resA.Elapsed, clean.elapsed)
	}
	s := resA.Summary
	if s.CountsAll(stats.CntNACKs) == 0 || s.CountsAll(stats.CntDirRetries) == 0 {
		t.Errorf("no NACKs/retries counted under 5%% NACK rate")
	}
	if s.CyclesAll(stats.DirRetry) == 0 {
		t.Errorf("retry backoff charged no cycles to the Dir Retry row")
	}
}

// TestNACKStarvationAborts: a home that NACKs every request exhausts the
// requester's retry budget, and the run aborts with the structured
// starvation report instead of livelocking.
func TestNACKStarvationAborts(t *testing.T) {
	cfg := cost.Default(2)
	smFaultCfg(&cfg, 3, 1.0, 0)
	res := machine.RunSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		v := n.RT.GMallocFOn(0, 8)
		v.Get(n.Mem, 0)
		n.Barrier()
	})
	var starve *faults.RetryStarvationError
	if !errors.As(res.Err, &starve) {
		t.Fatalf("err = %v, want RetryStarvationError", res.Err)
	}
	if starve.Retries <= 16 {
		t.Errorf("gave up after %d retries, want > budget of 16", starve.Retries)
	}
}

// TestWatchdogReportsStall: with an always-NACKing home and a retry budget
// too large to save it, the coherence watchdog notices that requests stay
// outstanding with no transaction granting for a full window, and aborts
// with a stall report naming each node's last protocol action.
func TestWatchdogReportsStall(t *testing.T) {
	cfg := cost.Default(2)
	smFaultCfg(&cfg, 3, 1.0, 0)
	cfg.SMFaults.RetryBudget = 1 << 20 // never rescued by the budget
	cfg.SMWatchdog = 20000
	res := machine.RunSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		v := n.RT.GMallocFOn(0, 8)
		v.Get(n.Mem, 0)
		n.Barrier()
	})
	var stall *sim.StallError
	if !errors.As(res.Err, &stall) {
		t.Fatalf("err = %v, want StallError", res.Err)
	}
	if stall.Source != "coherence" {
		t.Errorf("stall source = %q, want coherence", stall.Source)
	}
	if stall.Report == "" {
		t.Errorf("stall report is empty")
	}
}

// TestWatchdogQuietOnCleanRuns: a generous watchdog never fires on the
// golden applications, and arming it does not perturb timing.
func TestWatchdogQuietOnCleanRuns(t *testing.T) {
	want := smGolden[2] // lcp: lock-heavy, the likeliest false positive
	res := runSMApp(want.name, func(c *cost.Config) { c.SMWatchdog = 100000 })
	if res.Err != nil {
		t.Fatalf("watchdog fired on a clean run: %v", res.Err)
	}
	if got := fingerprintOf(want.name, res); got != want {
		t.Errorf("watchdog perturbed timing:\n got %+v\nwant %+v", got, want)
	}
}
