package coherence

import (
	"sort"

	"repro/internal/snapshot"
)

// EncodeState contributes the whole coherence layer's image to a canonical
// state snapshot: aggregate transaction counters, then per node the
// directory-server clock and every directory entry — sharer sets, owners,
// in-flight transactions, queued waiters, settle windows, and (when
// forensics are armed) the transition-history rings — plus in-flight fills,
// spin-wait watchers, and the invariant checker's conservation tallies.
// Every map is iterated in sorted key order so the bytes are canonical.
func (pr *Protocol) EncodeState(enc *snapshot.Enc) {
	enc.Section("coherence", func(enc *snapshot.Enc) {
		enc.I64(pr.Reads)
		enc.I64(pr.Writes)
		enc.I64(pr.Upgrades)
		enc.I64(pr.Writebacks)
		enc.I64(pr.Invals)
		enc.I64(pr.QueueDelay)
		enc.I64(pr.QueueEvents)
		enc.I64(pr.NACKsSent)
		enc.I64(int64(pr.outstanding))
		enc.Bool(pr.forensics)

		enc.U32(uint32(len(pr.nodes)))
		for _, n := range pr.nodes {
			pr.encodeNode(enc, n)
		}

		if pr.ctrl != nil {
			pr.ctrl.EncodeState(enc)
		}
		if pr.check != nil {
			enc.Section("checker", func(enc *snapshot.Enc) {
				enc.I64(pr.check.Violations)
				enc.I64(pr.check.Checks)
				enc.I64s(pr.check.reqsIn)
				enc.I64s(pr.check.grantsOut)
				enc.I64s(pr.check.nacksOut)
				enc.I64s(pr.check.ctrlOut)
				enc.I64s(pr.check.acksIn)
			})
		}
	})
}

func (pr *Protocol) encodeNode(enc *snapshot.Enc, n *node) {
	enc.Section("dirnode", func(enc *snapshot.Enc) {
		enc.I64(n.busyUntil)

		blocks := make([]uint64, 0, len(n.dir))
		for b := range n.dir {
			blocks = append(blocks, b)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		enc.U32(uint32(len(blocks)))
		for _, b := range blocks {
			enc.U64(b)
			encodeEntry(enc, n.dir[b], pr.forensics)
		}

		fills := make([]uint64, 0, len(n.fills))
		for b := range n.fills {
			fills = append(fills, b)
		}
		sort.Slice(fills, func(i, j int) bool { return fills[i] < fills[j] })
		enc.U32(uint32(len(fills)))
		for _, b := range fills {
			enc.U64(b)
			enc.I64(n.fills[b])
		}

		watched := make([]uint64, 0, len(n.watchers))
		for b := range n.watchers {
			watched = append(watched, b)
		}
		sort.Slice(watched, func(i, j int) bool { return watched[i] < watched[j] })
		enc.U32(uint32(len(watched)))
		for _, b := range watched {
			enc.U64(b)
			ws := n.watchers[b]
			enc.U32(uint32(len(ws)))
			for _, p := range ws {
				enc.I64(int64(p.ID))
			}
		}

		if pr.forensics {
			enc.Str(n.lastAct)
			enc.I64(n.lastActAt)
		}
	})
}

func encodeEntry(enc *snapshot.Enc, e *entry, forensics bool) {
	enc.U8(uint8(e.state))
	enc.U64s(e.sharers)
	enc.I64(int64(e.owner))
	enc.Bool(e.busy)
	enc.I64(e.settleUntil)

	if t := e.pend; t != nil {
		enc.Bool(true)
		enc.I64(int64(t.r.kind))
		enc.I64(int64(t.r.reqID))
		enc.U64(t.r.block)
		enc.I64(t.arrive)
		enc.I64(int64(t.acksLeft))
		enc.Bool(t.needData)
		enc.Bool(t.recall)
		enc.I64(int64(t.recallFrom))
		enc.Bool(t.gotData)
		enc.Bool(t.awaitWB)
	} else {
		enc.Bool(false)
	}

	enc.U32(uint32(len(e.waiters)))
	for _, w := range e.waiters {
		enc.I64(int64(w.r.kind))
		enc.I64(int64(w.r.reqID))
		enc.U64(w.r.block)
		enc.I64(w.arrive)
	}

	if forensics {
		enc.I64(int64(e.histCount()))
		for _, h := range e.history() {
			enc.Str(h)
		}
	}
}
