// Package coherence implements the shared-memory machine's full-map
// write-invalidate Dir_nNB cache-coherence protocol (Agarwal et al., ISCA
// 1988), as simulated in the paper's shared-memory Wind Tunnel (§4.2).
//
// Every node's local memory has global addresses. A directory at each
// block's home node tracks the copyset; read misses fetch a read-only copy,
// writes to blocks with other sharers invalidate them (the fewest possible
// invalidations, since the map is full), and writes stall the processor
// until ownership is granted — the memory is sequentially consistent. The
// directory at each node is a serial server, so bursts of requests to one
// home queue and experience contention delay (the paper observes ~200-cycle
// average queuing delay at Gauss's pivot-row home).
//
// Data values live in the applications' Go backing stores; the protocol
// provides timing, traffic accounting, and the invalidation signals that
// spin-wait primitives sleep on.
package coherence

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Protocol is the machine-wide coherence state: one directory and cache
// controller per node.
type Protocol struct {
	Eng *sim.Engine
	Cfg *cost.Config

	nodes  []*node
	pshift uint

	// Aggregate transaction counters, for tests and reports. Reads, Writes,
	// Upgrades, and Writebacks are bumped from processor context (atomically
	// — requesters on different nodes run concurrently within a quantum);
	// the rest are only touched by directory events (engine context).
	Reads, Writes, Upgrades, Writebacks, Invals int64
	QueueDelay, QueueEvents                     int64
	NACKsSent                                   int64

	// Robustness layers, all off by default (see the Enable methods). With
	// every one disabled the protocol takes none of their paths and runs
	// bit-identical to a tree without them.
	check *Checker            // runtime invariant checker
	ctrl  *faults.CtrlPlan    // control-message fault injection
	smf   cost.SMFaultsConfig // retry/backoff tuning, valid when ctrl != nil
	wd    *sim.Watchdog       // livelock watchdog

	// forensics enables the per-entry transition rings and per-node
	// last-action records that the layers above report from. Host-CPU cost
	// only; gating it keeps the common case fast, not the timing honest.
	forensics bool

	// outstanding counts requests issued but not yet granted, so the
	// watchdog knows whether quiet means idle or stalled. Accessed
	// atomically: requesters increment concurrently, the engine's watchdog
	// gate reads at quantum boundaries.
	outstanding int64

	// evPool recycles protocol events scheduled from engine context;
	// per-node pools cover processor-context scheduling (see cohPool).
	evPool cohPool

	// scratch is dirServe's reusable sharer-id buffer (engine context only).
	scratch []int
}

type node struct {
	id        int
	mem       *memsim.Mem
	dir       map[uint64]*entry
	busyUntil sim.Time
	watchers  map[uint64][]*sim.Proc

	// fills maps block -> arrival time of a granted reply still in flight to
	// this node's cache. Maintained only under fault injection, where a
	// delayed fill can be overtaken by an invalidation or recall for the
	// same block; the controller defers such messages past the fill (MSHR
	// behavior) so stale ghost copies can never form.
	fills map[uint64]sim.Time

	// lastAct/lastActAt are the node's most recent protocol action, for
	// stall reports (forensics only).
	lastAct   string
	lastActAt sim.Time

	// evPool recycles events this node's processor schedules from processor
	// context (request issue, evictions, flush hints).
	evPool cohPool

	// pend is the node's in-flight step-form requester transaction (see
	// step.go); unused when the processor runs as a coroutine.
	pend stepPend
}

// New creates the protocol for cfg.Procs nodes.
func New(eng *sim.Engine, cfg *cost.Config) *Protocol {
	pr := &Protocol{Eng: eng, Cfg: cfg}
	for 1<<pr.pshift < cfg.PageBytes {
		pr.pshift++
	}
	pr.nodes = make([]*node, cfg.Procs)
	for i := range pr.nodes {
		pr.nodes[i] = &node{
			id:       i,
			dir:      make(map[uint64]*entry),
			watchers: make(map[uint64][]*sim.Proc),
			fills:    make(map[uint64]sim.Time),
		}
	}
	return pr
}

// AttachMem registers node i's memory system. Must be called for every node
// before the simulation starts.
func (pr *Protocol) AttachMem(i int, m *memsim.Mem) {
	pr.nodes[i].mem = m
	m.Shared = pr
}

func (pr *Protocol) homeOf(block uint64) int {
	addr := block << pr.nodes[0].mem.Cache.BlockShift()
	return memsim.HomeOf(addr, pr.Cfg.Procs, pr.pshift)
}

// latency returns the one-way message latency between two nodes: the network
// latency, or the cheaper message-to-self for a node's own directory.
func (pr *Protocol) latency(a, b int) int64 {
	if a == b {
		return pr.Cfg.MsgToSelf
	}
	return pr.Cfg.NetLatency
}

// countMsg tallies one protocol message sent by node n. Messages a node
// sends to itself never enter the network and are not counted as bytes.
func (pr *Protocol) countMsg(n, dst int, carriesBlock bool) {
	if n == dst {
		return
	}
	acct := pr.nodes[n].mem.P.Acct
	acct.Add(stats.CntMessages, 1)
	if carriesBlock {
		acct.Add(stats.CntBytesData, int64(pr.Cfg.SMMsgBytes-pr.Cfg.SMMsgControlBytes))
		acct.Add(stats.CntBytesControl, int64(pr.Cfg.SMMsgControlBytes))
	} else {
		acct.Add(stats.CntBytesControl, int64(pr.Cfg.SMMsgBytes))
	}
}

// Requester wakes carry two typed values through sim.Proc.WakeVals — the
// replacement cost of whatever the installed block displaced, and whether
// the home refused the request (NACK) and it must be retried. Typed values
// rather than a struct payload because Proc.Wake's interface payload would
// box a heap allocation onto every miss.

// EnableChecker arms the runtime invariant checker (see check.go). Must be
// called before the simulation starts; returns the checker for end-of-run
// verification and counters. Idempotent.
func (pr *Protocol) EnableChecker() *Checker {
	if pr.check == nil {
		pr.check = newChecker(pr)
		pr.forensics = true
	}
	return pr.check
}

// Checker returns the armed invariant checker, or nil.
func (pr *Protocol) Checker() *Checker { return pr.check }

// EnableCtrlFaults arms control-message fault injection with the given
// tuning (pass it through cost.SMFaultsConfig.WithDefaults first). Must be
// called before the simulation starts.
func (pr *Protocol) EnableCtrlFaults(f cost.SMFaultsConfig) *faults.CtrlPlan {
	pr.smf = f
	pr.ctrl = faults.CtrlFromConfig(f, pr.Cfg.NetLatency)
	pr.forensics = true
	return pr.ctrl
}

// CtrlPlan returns the armed control-fault plan, or nil.
func (pr *Protocol) CtrlPlan() *faults.CtrlPlan { return pr.ctrl }

// EnableWatchdog arms the coherence livelock watchdog: if some request has
// been outstanding and no directory transaction granted a reply for window
// cycles of virtual time, the run aborts with a sim.StallError carrying the
// stall report (hot blocks, pending requests, per-node last actions). Must
// be called before the simulation starts.
func (pr *Protocol) EnableWatchdog(window sim.Time) *sim.Watchdog {
	pr.wd = pr.Eng.AddWatchdog("coherence", window,
		func() bool { return atomic.LoadInt64(&pr.outstanding) > 0 }, pr.stallReport)
	pr.forensics = true
	return pr.wd
}

// record appends one event to block entry e's bounded transition ring.
// Forensics only: costs host CPU, never virtual time.
func (pr *Protocol) record(e *entry, at sim.Time, format string, args ...any) {
	if !pr.forensics {
		return
	}
	if e.hist == nil {
		e.hist = &histRing{}
	}
	e.hist.recs[e.hist.n%histLen] = histRec{at: at, ev: fmt.Sprintf(format, args...)}
	e.hist.n++
}

// note updates node id's last-protocol-action forensics line.
func (pr *Protocol) note(id int, at sim.Time, format string, args ...any) {
	if !pr.forensics {
		return
	}
	n := pr.nodes[id]
	n.lastAct = fmt.Sprintf(format, args...)
	n.lastActAt = at
}

// sendDelay returns the fault-injected extra latency, if any, for a protocol
// message sent from src to dst at time when.
func (pr *Protocol) sendDelay(when sim.Time, src, dst int) sim.Time {
	if pr.ctrl == nil {
		return 0
	}
	return pr.ctrl.DecideMessage(when, src, dst).Delay
}

// fillDeferral reports whether a cache-controller action on node id must be
// deferred because a granted fill for block is still in flight to that node
// — an invalidation or recall that overtook the data reply it logically
// follows — and if so, until when. Real controllers hold such messages in
// the MSHR until the fill completes; without this, a delayed fill would
// install a ghost copy the directory no longer records. Only possible under
// fault injection; callers reschedule themselves at the returned time.
func (pr *Protocol) fillDeferral(id int, block uint64, at sim.Time) (sim.Time, bool) {
	if pr.ctrl == nil {
		return 0, false
	}
	fa, ok := pr.nodes[id].fills[block]
	if !ok {
		return 0, false
	}
	if fa < at {
		fa = at
	}
	return fa, true
}

/// ReadMiss implements memsim.SharedHandler: fetch a readable copy. The
// block is installed by the cache controller at reply-arrival time (in
// event context), so a subsequent recall or invalidation always observes
// the installed line; the processor is charged when it wakes.
func (pr *Protocol) ReadMiss(m *memsim.Mem, block uint64) {
	p := m.P
	home := pr.homeOf(block)
	cat := p.SharedMissCategory()
	if home == p.ID {
		p.Acct.Add(stats.CntSharedMissLocal, 1)
	} else {
		p.Acct.Add(stats.CntSharedMissRemote, 1)
	}
	atomic.AddInt64(&pr.Reads, 1)
	p.ChargeStall(cat, pr.Cfg.SharedMissCycles)
	pr.issue(home, request{kind: reqGETS, block: block, reqID: p.ID, m: m},
		cat, "shared read miss")
}

// WriteAccess implements memsim.SharedHandler: obtain a writable copy.
// resident == Shared is an upgrade — a write fault in the paper's terms;
// resident == Invalid is a write miss.
func (pr *Protocol) WriteAccess(m *memsim.Mem, block uint64, resident uint8) {
	p := m.P
	home := pr.homeOf(block)
	var cat stats.Category
	var kind reqKind
	if resident == memsim.Shared {
		cat = p.WriteFaultCategory()
		p.Acct.Add(stats.CntWriteFaults, 1)
		kind = reqUPGRADE
		atomic.AddInt64(&pr.Upgrades, 1)
	} else {
		cat = p.SharedMissCategory()
		if home == p.ID {
			p.Acct.Add(stats.CntSharedMissLocal, 1)
		} else {
			p.Acct.Add(stats.CntSharedMissRemote, 1)
		}
		kind = reqGETX
		atomic.AddInt64(&pr.Writes, 1)
	}
	p.ChargeStall(cat, pr.Cfg.SharedMissCycles)
	pr.issue(home, request{kind: kind, block: block, reqID: p.ID, m: m},
		cat, "shared write access")
}

// issue sends request r to its home and blocks until the grant installs,
// charging the victim's replacement cost on wake. Under fault injection the
// home may NACK instead: the requester then backs off exponentially —
// charged to its own taxonomy row (stats.DirRetry), so degradation is
// visible as a separate cost, not smeared into miss time — and reissues,
// up to the configured retry budget; exhausting it aborts the run with a
// structured starvation report instead of livelocking.
func (pr *Protocol) issue(home int, r request, cat stats.Category, why string) {
	p := r.m.P
	if pr.wd != nil {
		// The engine restarts the watchdog window itself when it observes
		// the quiet→active transition at a quantum boundary; issue only
		// maintains the outstanding count the activity gate reads.
		atomic.AddInt64(&pr.outstanding, 1)
		defer atomic.AddInt64(&pr.outstanding, -1)
	}
	firstSent := p.Clock()
	retries := 0
	var backoff int64
	for {
		if pr.forensics {
			pr.note(p.ID, p.Clock(), "sent %v %#x to home %d", r.kind, r.block, home)
		}
		pr.countMsg(p.ID, home, false)
		arrive := p.Clock() + pr.latency(p.ID, home)
		ev := pr.nodes[p.ID].evPool.get(pr)
		ev.kind, ev.home, ev.r = evDirHandle, home, r
		p.ScheduleAction(arrive, ev)
		repl, nacked := p.BlockVals(cat, why)
		if nacked == 0 {
			p.ChargeStall(cat, repl)
			return
		}
		retries++
		p.Acct.Add(stats.CntNACKs, 1)
		if retries > pr.smf.RetryBudget {
			p.Fail(&faults.RetryStarvationError{
				Node: p.ID, Home: home, Block: r.block, Kind: r.kind.String(),
				Retries: retries, FirstSent: firstSent, Now: p.Clock(),
			})
		}
		if backoff == 0 {
			backoff = pr.smf.Backoff
		} else if backoff < pr.smf.BackoffMax {
			backoff *= 2
			if backoff > pr.smf.BackoffMax {
				backoff = pr.smf.BackoffMax
			}
		}
		p.Acct.Add(stats.CntDirRetries, 1)
		p.ChargeStall(stats.DirRetry, pr.Cfg.NACKRetryCycles+backoff)
	}
}

// installAt runs in event context at reply arrival: the cache controller
// installs (or upgrades) the block and disposes of the victim. It returns
// the replacement cycles to charge the waking processor.
func (pr *Protocol) installAt(m *memsim.Mem, block uint64, state uint8, at sim.Time) int64 {
	if cur := m.Cache.Lookup(block); cur != memsim.Invalid {
		// Upgrade of a still-resident read-only line (or a redundant grant).
		if state == memsim.Modified && cur == memsim.Shared {
			m.Cache.SetState(block, memsim.Modified)
		}
		return 0
	}
	victim := m.Cache.Insert(block, state)
	switch {
	case victim.State == memsim.Invalid:
		return 0
	case !memsim.IsShared(victim.Tag << m.Cache.BlockShift()):
		return pr.Cfg.ReplPrivate
	case victim.State == memsim.Shared:
		return pr.Cfg.ReplSharedClean
	default: // dirty shared victim: write back from event context
		home := pr.homeOf(victim.Tag)
		atomic.AddInt64(&pr.Writebacks, 1)
		pr.countMsg(m.P.ID, home, true)
		ev := pr.evPool.get(pr)
		ev.kind, ev.home, ev.block, ev.id = evWriteback, home, victim.Tag, m.P.ID
		pr.Eng.ScheduleAction(at+pr.latency(m.P.ID, home), ev)
		return pr.Cfg.ReplSharedDirty
	}
}

// Evict implements memsim.SharedHandler: replacement of a shared block.
// Clean copies are dropped silently (the directory learns when it next
// invalidates); dirty blocks write back to their home.
func (pr *Protocol) Evict(m *memsim.Mem, victim memsim.Line, cat stats.Category) {
	p := m.P
	if victim.State == memsim.Shared {
		p.ChargeStall(cat, pr.Cfg.ReplSharedClean)
		return
	}
	p.ChargeStall(cat, pr.Cfg.ReplSharedDirty)
	home := pr.homeOf(victim.Tag)
	atomic.AddInt64(&pr.Writebacks, 1)
	pr.countMsg(p.ID, home, true)
	ev := pr.nodes[p.ID].evPool.get(pr)
	ev.kind, ev.home, ev.block, ev.id = evWriteback, home, victim.Tag, p.ID
	p.ScheduleAction(p.Clock()+pr.latency(p.ID, home), ev)
}

// Flush implements memsim.SharedHandler: an explicit software flush. Dirty
// data writes back as usual; a clean copy sends the home a replacement
// hint, removing this node from the copyset so future writers need not
// invalidate it — "changing a 2-message invalidate into a single-message
// cache replacement operation" (paper §5.3.4).
func (pr *Protocol) Flush(m *memsim.Mem, victim memsim.Line, cat stats.Category) {
	p := m.P
	if victim.State == memsim.Modified {
		pr.Evict(m, victim, cat)
		return
	}
	p.ChargeStall(cat, pr.Cfg.ReplSharedClean)
	home := pr.homeOf(victim.Tag)
	pr.countMsg(p.ID, home, false)
	ev := pr.nodes[p.ID].evPool.get(pr)
	ev.kind, ev.home, ev.block, ev.id = evFlushHint, home, victim.Tag, p.ID
	p.ScheduleAction(p.Clock()+pr.latency(p.ID, home), ev)
}

// Watch registers p to be woken when the block containing addr is
// invalidated in p's own cache. Used by spin-wait primitives: an MCS lock
// holder's release write invalidates the spinner's cached copy, which is
// exactly the wake signal. A spinner may only sleep while it holds a valid
// copy — if the line has already been invalidated (the signal raced ahead of
// the registration), Watch reports false and the caller must re-read.
func (pr *Protocol) Watch(m *memsim.Mem, addr uint64) bool {
	n := pr.nodes[m.P.ID]
	block := m.Cache.BlockOf(addr)
	if m.Cache.Lookup(block) == memsim.Invalid {
		if Debug {
			trace("watch-refused node=%d block=%#x clock=%d", m.P.ID, block, m.P.Clock())
		}
		return false
	}
	n.watchers[block] = append(n.watchers[block], m.P)
	return true
}

// wakeWatchers releases every processor watching block on node id.
func (pr *Protocol) wakeWatchers(id int, block uint64, at sim.Time) {
	n := pr.nodes[id]
	ws := n.watchers[block]
	if len(ws) == 0 {
		return
	}
	delete(n.watchers, block)
	for _, p := range ws {
		if Debug {
			trace("wakeWatcher node=%d block=%#x at=%d", id, block, at)
		}
		p.Wake(at, nil)
	}
}

// AtomicSwapI performs the machine's atomic swap instruction on an IVec
// element: it obtains exclusive ownership (stalling like a write) and
// exchanges the value.
func (pr *Protocol) AtomicSwapI(m *memsim.Mem, vec *memsim.IVec, i int, newV int64) int64 {
	m.Write(vec.Addr(i))
	old := vec.V[i]
	vec.V[i] = newV
	return old
}

// AtomicCASI is a compare-and-swap on an IVec element. The paper's machine
// provides only atomic swap; MCS release uses compare-and-swap in the
// original algorithm, and we model it with the same write-ownership cost as
// swap (see parmacs for discussion).
func (pr *Protocol) AtomicCASI(m *memsim.Mem, vec *memsim.IVec, i int, old, newV int64) bool {
	m.Write(vec.Addr(i))
	if vec.V[i] != old {
		return false
	}
	vec.V[i] = newV
	return true
}

// SpinI reads vec[i] through the cache until cond holds, sleeping on
// invalidation between polls; the wait is charged to cat. Returns the value
// that satisfied cond.
func (pr *Protocol) SpinI(m *memsim.Mem, vec *memsim.IVec, i int, cat stats.Category, cond func(int64) bool) int64 {
	p := m.P
	p.Interact()
	for {
		m.Read(vec.Addr(i))
		if v := vec.V[i]; cond(v) {
			return v
		}
		// Sleep only while holding a valid copy; if an invalidation raced
		// in before we could arm the watch, re-read immediately.
		if pr.Watch(m, vec.Addr(i)) {
			p.Block(cat, "spin")
		}
	}
}

// SpinF is SpinI for float vectors.
func (pr *Protocol) SpinF(m *memsim.Mem, vec *memsim.FVec, i int, cat stats.Category, cond func(float64) bool) float64 {
	p := m.P
	p.Interact()
	for {
		m.Read(vec.Addr(i))
		if v := vec.V[i]; cond(v) {
			return v
		}
		if pr.Watch(m, vec.Addr(i)) {
			p.Block(cat, "spin")
		}
	}
}

// DirStateOf reports the directory state of the block containing addr, for
// tests: "idle", "shared", or "excl", plus the sharer count.
func (pr *Protocol) DirStateOf(addr uint64) (string, int) {
	bs := pr.nodes[0].mem.Cache.BlockShift()
	block := addr >> bs
	home := pr.homeOf(block)
	e := pr.nodes[home].dir[block]
	if e == nil {
		return "idle", 0
	}
	switch e.state {
	case dirIdle:
		return "idle", 0
	case dirShared:
		return "shared", e.sharers.count()
	case dirExcl:
		return "excl", 1
	}
	return fmt.Sprintf("state(%d)", e.state), 0
}

// mutation is a test-only protocol-corruption switch (see export_test.go):
// the mutation tests plant a known protocol bug and assert the invariant
// checker catches it, proving the checker actually discriminates.
var mutation int

const (
	mutateNone = iota
	// mutateSkipInval makes the cache controller acknowledge an
	// invalidation without invalidating — the classic lost-invalidation bug,
	// which leaves a stale Shared copy alive across a write.
	mutateSkipInval
)

// Debug enables protocol event tracing to stdout (tests only).
var Debug bool

func trace(format string, args ...any) {
	if Debug {
		fmt.Printf("coh: "+format+"\n", args...)
	}
}
