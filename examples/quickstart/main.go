// Quickstart: the smallest end-to-end tour of both simulated machines.
//
// It runs a ping-pong on the message-passing machine (two nodes bouncing a
// packet through the CM-5-style network interface) and a shared counter on
// the shared-memory machine (MCS lock + coherent loads/stores), then prints
// where each program's virtual cycles went — the same accounting taxonomy
// the paper's tables use.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/ni"
	"repro/internal/parmacs"
	"repro/internal/stats"
)

func main() {
	pingPong()
	sharedCounter()
}

// pingPong bounces a value between two nodes 100 times using raw active
// messages. Each hop costs the software send overhead, the network
// interface accesses, and the 100-cycle wire latency.
func pingPong() {
	const hops = 100
	cfg := cost.Default(2)
	var last float64
	m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
		count := 0
		h := n.AM.Register(func(pkt *ni.Packet) {
			count++
			last = math.Float64frombits(pkt.Args[0])
		})
		peer := 1 - n.ID
		for i := 0; i < hops/2; i++ {
			if n.ID == 0 {
				n.AM.Request(peer, h, [4]uint64{math.Float64bits(float64(i))}, 8, nil)
				n.AM.PollUntil(func() bool { return count > i })
			} else {
				n.AM.PollUntil(func() bool { return count > i })
				n.AM.Request(peer, h, [4]uint64{math.Float64bits(float64(i) + 0.5)}, 8, nil)
			}
		}
		n.Barrier()
	})
	res := m.Run()
	fmt.Printf("ping-pong: %d hops in %d cycles (%.0f cycles/hop), last value %v\n",
		hops, res.Elapsed, float64(res.Elapsed)/hops, last)
	fmt.Printf("  per-node avg: lib comp %.0f cycles, NI access %.0f cycles\n\n",
		res.Summary.CyclesAll(stats.LibComp), res.Summary.CyclesAll(stats.NetAccess))
}

// sharedCounter has four nodes increment one shared counter under an MCS
// lock. Watch the coherence protocol at work: the counter block bounces
// between caches, and lock handoffs show up in the Locks category.
func sharedCounter() {
	const perNode = 50
	cfg := cost.Default(4)
	var lock *parmacs.Lock
	var counter memsim.IVec
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		if n.ID == 0 {
			lock = parmacs.NewLock(n.RT)
			counter = n.RT.GMallocI(0, 1)
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()
		for i := 0; i < perNode; i++ {
			lock.Acquire(n.Mem)
			counter.Set(n.Mem, 0, counter.Get(n.Mem, 0)+1)
			lock.Release(n.Mem)
			n.Compute(200) // some private work between increments
		}
		n.Barrier()
	})
	res := m.Run()
	fmt.Printf("shared counter: 4 nodes x %d increments -> %d (in %d cycles)\n",
		perNode, counter.V[0], res.Elapsed)
	s := res.Summary
	fmt.Printf("  per-node avg cycles: compute %.0f, shared misses %.0f, locks %.0f, barriers %.0f\n",
		s.CyclesAll(stats.Comp), s.CyclesAll(stats.SharedMiss),
		s.CyclesAll(stats.LockWait), s.CyclesAll(stats.BarrierWait))
	fmt.Printf("  protocol transactions: %d reads, %d writes, %d upgrades, %d invalidations\n",
		m.Pr.Reads, m.Pr.Writes, m.Pr.Upgrades, m.Pr.Invals)
}
