// Heat: a 1-D heat-diffusion stencil written both ways, the textbook
// nearest-neighbor workload the paper's machinery makes easy to compare.
//
// The message-passing version exchanges halo cells with ring neighbors over
// pre-established CMMD channels each step; the shared-memory version keeps
// the rod in one shared array and reads neighbors' boundary cells directly,
// with barriers separating steps. Both compute identical temperatures; the
// simulator reports where their time went and who was faster.
//
// Run with: go run ./examples/heat
package main

import (
	"fmt"
	"math"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
	"repro/internal/stats"
)

const (
	procs    = 8
	cellsPer = 512
	steps    = 200
	alpha    = 0.1
	cCell    = 12 // cycles per cell update
)

func initial(i int) float64 { return math.Sin(float64(i) * 0.01) }

func main() {
	mpTemps, mpRes := runMP()
	smTemps, smRes := runSM()

	maxDiff := 0.0
	for i := range mpTemps {
		if d := math.Abs(mpTemps[i] - smTemps[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("heat: %d cells, %d steps on %d nodes; versions agree within %.2g\n",
		procs*cellsPer, steps, procs, maxDiff)
	fmt.Printf("  message passing: %8d cycles (lib %.2fM, NI %.2fM)\n",
		mpRes.Elapsed, mpRes.Summary.CyclesAll(stats.LibComp)/1e6,
		mpRes.Summary.CyclesAll(stats.NetAccess)/1e6)
	fmt.Printf("  shared memory:   %8d cycles (shared misses %.2fM, barriers %.2fM)\n",
		smRes.Elapsed, smRes.Summary.CyclesAll(stats.SharedMiss)/1e6,
		smRes.Summary.CyclesAll(stats.BarrierWait)/1e6)
	ratio := float64(mpRes.Elapsed) / float64(smRes.Elapsed)
	fmt.Printf("  MP/SM elapsed ratio: %.2f\n", ratio)
}

func runMP() ([]float64, *machine.Result) {
	cfg := cost.Default(procs)
	final := make([]float64, procs*cellsPer)
	m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
		me := n.ID
		mem := n.Mem
		// Local rod segment with two halo cells: [halo][cells][halo].
		rod := n.AllocF(cellsPer + 2)
		buf := n.AllocF(cellsPer + 2)
		for i := 0; i < cellsPer; i++ {
			rod.V[i+1] = initial(me*cellsPer + i)
		}
		rod.WriteRange(mem, 0, cellsPer+2)

		left, right := (me-1+procs)%procs, (me+1)%procs
		// Halo channels: slot 0 receives from the left, slot cells+1 from
		// the right. Open in fixed order so ids agree everywhere.
		chFromLeft := n.EP.OpenRecvChannelF(&rod, 0, 1)
		chFromRight := n.EP.OpenRecvChannelF(&rod, cellsPer+1, cellsPer+2)
		n.Barrier()

		for t := 1; t <= steps; t++ {
			// Ship boundary cells: my leftmost goes to the left neighbor's
			// right halo (its channel 1), my rightmost to the right
			// neighbor's left halo (its channel 0).
			n.EP.ChannelWriteF(left, 1, &rod, 1, 2)
			n.EP.ChannelWriteF(right, 0, &rod, cellsPer, cellsPer+1)
			n.EP.WaitChannel(chFromLeft, int64(t))
			n.EP.WaitChannel(chFromRight, int64(t))

			rod.ReadRange(mem, 0, cellsPer+2)
			for i := 1; i <= cellsPer; i++ {
				buf.V[i] = rod.V[i] + alpha*(rod.V[i-1]-2*rod.V[i]+rod.V[i+1])
			}
			buf.WriteRange(mem, 1, cellsPer+1)
			n.Compute(cellsPer * cCell)
			copy(rod.V[1:cellsPer+1], buf.V[1:cellsPer+1])
			rod.WriteRange(mem, 1, cellsPer+1)
		}
		n.Barrier()
		copy(final[me*cellsPer:(me+1)*cellsPer], rod.V[1:cellsPer+1])
	})
	res := m.Run()
	return final, res
}

func runSM() ([]float64, *machine.Result) {
	cfg := cost.Default(procs)
	var rod, next memsim.FVec
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		me := n.ID
		mem := n.Mem
		if me == 0 {
			rod = n.RT.GMallocF(0, procs*cellsPer)
			next = n.RT.GMallocF(0, procs*cellsPer)
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		lo, hi := me*cellsPer, (me+1)*cellsPer
		for i := lo; i < hi; i++ {
			rod.V[i] = initial(i)
		}
		rod.WriteRange(mem, lo, hi)
		n.Barrier()

		total := procs * cellsPer
		for t := 0; t < steps; t++ {
			// Neighbor boundary cells come straight from shared memory.
			rod.ReadRange(mem, lo, hi)
			lval := rod.Get(mem, (lo-1+total)%total)
			rval := rod.Get(mem, hi%total)
			for i := lo; i < hi; i++ {
				l, r := lval, rval
				if i > lo {
					l = rod.V[i-1]
				}
				if i < hi-1 {
					r = rod.V[i+1]
				}
				next.V[i] = rod.V[i] + alpha*(l-2*rod.V[i]+r)
			}
			next.WriteRange(mem, lo, hi)
			n.Compute(cellsPer * cCell)
			n.Barrier()
			for i := lo; i < hi; i++ {
				rod.V[i] = next.V[i]
			}
			rod.WriteRange(mem, lo, hi)
			n.Barrier()
		}
	})
	res := m.Run()
	return append([]float64(nil), rod.V...), res
}
