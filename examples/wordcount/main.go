// Wordcount: a map-reduce-style histogram written for both machines —
// the kind of irregular, reduction-heavy workload where the two
// communication mechanisms pull in different directions.
//
// Each node owns a shard of deterministic "documents" and counts word
// classes into a histogram. The message-passing version counts locally and
// funnels per-bucket totals up a combining tree of active messages; the
// shared-memory version updates one shared histogram, either under a lock
// per bucket group (contended) or into per-node slices merged at the end.
//
// Run with: go run ./examples/wordcount
package main

import (
	"fmt"

	"repro/internal/cmmd"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/parmacs"
	"repro/internal/sim"
	"repro/internal/stats"
)

const (
	procs   = 8
	words   = 20000 // per node
	buckets = 64
	cWord   = 30 // cycles to hash and classify one word
)

// wordAt deterministically generates the bucket of word i on node p.
func wordAt(rng *sim.RNG) int { return rng.Intn(buckets) }

func main() {
	mpHist, mpRes := runMP()
	smHist, smRes := runSM()

	same := true
	for b := range mpHist {
		if mpHist[b] != smHist[b] {
			same = false
		}
	}
	fmt.Printf("wordcount: %d words on %d nodes into %d buckets; histograms agree: %v\n",
		procs*words, procs, buckets, same)
	fmt.Printf("  message passing: %8d cycles (lib %.2fM)\n",
		mpRes.Elapsed, mpRes.Summary.CyclesAll(stats.LibComp)/1e6)
	fmt.Printf("  shared memory:   %8d cycles (shared misses %.2fM, locks %.2fM)\n",
		smRes.Elapsed, smRes.Summary.CyclesAll(stats.SharedMiss)/1e6,
		smRes.Summary.CyclesAll(stats.LockWait)/1e6)
	fmt.Printf("  MP/SM elapsed ratio: %.2f\n", float64(mpRes.Elapsed)/float64(smRes.Elapsed))
}

func runMP() ([]int64, *machine.Result) {
	cfg := cost.Default(procs)
	final := make([]int64, buckets)
	m := machine.NewMP(cfg, cmmd.Binary, func(n *machine.MPNode) {
		me := n.ID
		mem := n.Mem
		local := n.AllocI(buckets)
		rng := sim.NewRNG(uint64(me) + 17)
		for w := 0; w < words; w++ {
			b := wordAt(rng)
			local.Set(mem, b, local.Get(mem, b)+1)
			n.Compute(cWord)
		}
		// Funnel the whole histogram to node 0 bucket by bucket through the
		// combining tree (one reduction per bucket).
		for b := 0; b < buckets; b++ {
			v, _ := n.Comm.Reduce(0, float64(local.V[b]), 0, cmmd.OpSum)
			if me == 0 {
				final[b] = int64(v)
			}
		}
		n.Barrier()
	})
	res := m.Run()
	return final, res
}

func runSM() ([]int64, *machine.Result) {
	cfg := cost.Default(procs)
	var hist memsim.IVec
	var locks []*parmacs.Lock
	m := machine.NewSM(cfg, parmacs.RoundRobin, func(n *machine.SMNode) {
		me := n.ID
		mem := n.Mem
		if me == 0 {
			hist = n.RT.GMallocI(0, buckets)
			// One lock per group of 8 buckets: coarse enough to be cheap,
			// fine enough to limit contention.
			for g := 0; g < buckets/8; g++ {
				locks = append(locks, parmacs.NewLock(n.RT))
			}
			n.RT.Create(n.P)
		} else {
			n.RT.WaitCreate(n.P)
		}
		n.Barrier()

		// Count privately first (the locality lesson every shared-memory
		// study teaches), then merge under the group locks.
		local := n.AllocI(buckets)
		rng := sim.NewRNG(uint64(me) + 17)
		for w := 0; w < words; w++ {
			b := wordAt(rng)
			local.Set(mem, b, local.Get(mem, b)+1)
			n.Compute(cWord)
		}
		for g := 0; g < buckets/8; g++ {
			locks[g].Acquire(mem)
			for b := g * 8; b < (g+1)*8; b++ {
				hist.Set(mem, b, hist.Get(mem, b)+local.Get(mem, b))
			}
			locks[g].Release(mem)
		}
		n.Barrier()
	})
	res := m.Run()
	return append([]int64(nil), hist.V...), res
}
